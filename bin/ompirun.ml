(* ompirun — compile an OpenMP C program and execute it end-to-end on
   the simulated Jetson Nano 2GB, reporting device statistics. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Accept "examples/quickstart" as shorthand for "examples/quickstart.c". *)
let resolve_input path =
  if Sys.file_exists path && not (Sys.is_directory path) then Some path
  else if Sys.file_exists (path ^ ".c") then Some (path ^ ".c")
  else None

let run_cmd input entry binary_mode trace_file faults_spec max_retries fault_seed streams devices zerocopy elide mem_policy no_jit verbose =
  let input =
    match resolve_input input with
    | Some p -> p
    | None ->
      Printf.eprintf "ompirun: no such file: %s (also tried %s.c)\n" input input;
      exit 1
  in
  let source = read_file input in
  let stem = Filename.remove_extension (Filename.basename input) in
  let mode = if binary_mode = "ptx" then Gpusim.Nvcc.Ptx else Gpusim.Nvcc.Cubin in
  let faults =
    match faults_spec with
    | None -> []
    | Some spec -> (
      match Hostrt.Faults.parse spec with
      | Ok rules -> rules
      | Error msg ->
        Printf.eprintf "ompirun: bad --faults spec: %s\n%s\n" msg Hostrt.Faults.spec_syntax;
        exit 1)
  in
  if streams <= 0 then begin
    Printf.eprintf "ompirun: --streams must be positive (got %d)\n" streams;
    exit 1
  end;
  if devices <= 0 then begin
    Printf.eprintf "ompirun: --devices must be positive (got %d)\n" devices;
    exit 1
  end;
  (* The explicit legacy flags force their mode; otherwise --mem-policy
     decides (default: the per-buffer auto policy). *)
  let mem_policy_sel =
    if zerocopy || elide then None
    else
      match Hostrt.Mempolicy.sel_of_string mem_policy with
      | Some sel -> Some sel
      | None ->
        Printf.eprintf "ompirun: bad --mem-policy %s (want auto|copy|elide|zerocopy)\n" mem_policy;
        exit 1
  in
  let config =
    {
      Ompi.default_config with
      binary_mode = mode;
      faults;
      fault_seed;
      max_retries;
      streams;
      zerocopy;
      elide;
      mem_policy = mem_policy_sel;
      jit = not no_jit;
      devices;
    }
  in
  try
    let compiled = Ompi.compile ~config ~name:stem source in
    let instance = Ompi.load ~config ~trace:(trace_file <> None) compiled in
    let result = Ompi.run instance ~entry () in
    print_string result.Ompi.run_output;
    Printf.eprintf "[%s on %s%s]\n" stem Gpusim.Spec.jetson_nano_2gb.Gpusim.Spec.name
      (if devices > 1 then Printf.sprintf " x%d devices" devices else "");
    (match instance.Ompi.i_rt.Hostrt.Rt.faults with
    | Some f ->
      let dataenv = (Hostrt.Rt.device instance.Ompi.i_rt 0).Hostrt.Rt.dev_dataenv in
      Printf.eprintf "[faults: %d injected out of %d fallible calls%s]\n"
        (Hostrt.Faults.total_fired f) (Hostrt.Faults.total_calls f)
        (match Hostrt.Dataenv.dead_reason dataenv with
        | Some reason -> Printf.sprintf "; device dead (%s), host fallback used" reason
        | None -> "")
    | None -> ());
    (let interesting =
       zerocopy || elide
       || match mem_policy_sel with
          | Some Hostrt.Mempolicy.Auto -> true
          | Some (Hostrt.Mempolicy.Forced m) -> not (Hostrt.Mempolicy.equal_mode m Hostrt.Mempolicy.Copy)
          | None -> false
     in
     if interesting then begin
       let dataenv = (Hostrt.Rt.device instance.Ompi.i_rt 0).Hostrt.Rt.dev_dataenv in
       let st = Hostrt.Dataenv.stats dataenv in
       Printf.eprintf "[mem: %d h2d + %d d2h elided, %d zero-copy accesses, %d resident buffer(s)]\n"
         st.Hostrt.Dataenv.elided_h2d st.Hostrt.Dataenv.elided_d2h
         st.Hostrt.Dataenv.zerocopy_accesses
         (Hostrt.Dataenv.resident_buffers dataenv);
       if
         st.Hostrt.Dataenv.elided_h2d_pages + st.Hostrt.Dataenv.elided_d2h_pages
         + st.Hostrt.Dataenv.elided_update_to + st.Hostrt.Dataenv.elided_update_from
         > 0
       then
         Printf.eprintf
           "[mem: dirty tracking: %d h2d + %d d2h clean page(s) skipped, %d update-to + %d \
            update-from elided]\n"
           st.Hostrt.Dataenv.elided_h2d_pages st.Hostrt.Dataenv.elided_d2h_pages
           st.Hostrt.Dataenv.elided_update_to st.Hostrt.Dataenv.elided_update_from;
       List.iter
         (fun ((off, bytes), row) ->
           Printf.eprintf "[mem: buffer 0x%x+%d -> %s]\n" off bytes
             (String.concat ", " (List.map (fun (m, n) -> Printf.sprintf "%s x%d" m n) row)))
         (Hostrt.Dataenv.policy_decisions dataenv)
     end);
    Printf.eprintf "[simulated time: %.6f s, %d kernel launch(es), exit code %d]\n"
      result.Ompi.run_time_s result.Ompi.run_kernel_launches result.Ompi.run_exit;
    (match (trace_file, instance.Ompi.i_trace) with
    | Some path, Some tr ->
      (match Perf.Chrome_trace.write_file path tr with
      | () ->
        Printf.eprintf "[trace: %d events written to %s (Chrome trace format)]\n"
          (Perf.Trace.length tr) path
      | exception Sys_error msg -> Printf.eprintf "ompirun: cannot write trace: %s\n" msg);
      if verbose then Perf.Report.print_trace_summary ~oc:stderr tr
    | _ -> ());
    if verbose then begin
      let dev = Hostrt.Rt.device instance.Ompi.i_rt 0 in
      List.iter
        (fun (s : Gpusim.Driver.launch_stats) ->
          Printf.eprintf "  launch %s grid=(%d,%d,%d) block=(%d,%d,%d): %s\n"
            s.Gpusim.Driver.st_entry s.Gpusim.Driver.st_grid.Gpusim.Simt.x
            s.Gpusim.Driver.st_grid.Gpusim.Simt.y s.Gpusim.Driver.st_grid.Gpusim.Simt.z
            s.Gpusim.Driver.st_block.Gpusim.Simt.x s.Gpusim.Driver.st_block.Gpusim.Simt.y
            s.Gpusim.Driver.st_block.Gpusim.Simt.z
            (Format.asprintf "%a" Gpusim.Costmodel.pp_breakdown s.Gpusim.Driver.st_breakdown))
        (List.rev dev.Hostrt.Rt.dev_driver.Gpusim.Driver.launches)
    end;
    exit result.Ompi.run_exit
  with
  | Minic.Parser.Parse_error (msg, loc) ->
    Printf.eprintf "%s:%d:%d: syntax error: %s\n" input loc.Minic.Token.line loc.Minic.Token.col msg;
    exit 1
  | Translator.Pipeline.Translate_error msg | Translator.Region.Unsupported msg ->
    Printf.eprintf "%s: translation error: %s\n" input msg;
    exit 1
  | Cinterp.Interp.Runtime_error msg ->
    Printf.eprintf "%s: runtime error: %s\n" input msg;
    exit 1

let input_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE.c" ~doc:"OpenMP C source file (the .c suffix may be omitted)")

let entry_arg = Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"FN" ~doc:"Entry function")

let mode_arg =
  Arg.(value & opt string "cubin" & info [ "b"; "binary-mode" ] ~docv:"MODE" ~doc:"cubin or ptx")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record device init, transfers, the three launch phases and JIT-cache activity, and \
           write a Chrome-trace JSON file (open in chrome://tracing or Perfetto)")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          ("Inject deterministic device faults and exercise the recovery path (retry with \
            backoff, JIT-cache invalidation, host fallback). " ^ Hostrt.Faults.spec_syntax))

let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Bound the per-operation retries of the fault recovery policy (default 3)")

let fault_seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed for probabilistic fault rules")

let streams_arg =
  Arg.(
    value
    & opt int Hostrt.Async.default_streams
    & info [ "streams" ] ~docv:"N"
        ~doc:
          "Size of the device stream pool used by target nowait regions (default 4); 1 \
           serializes all async work on a single stream")

let devices_arg =
  Arg.(
    value
    & opt int 1
    & info [ "devices" ] ~docv:"N"
        ~doc:
          "Number of simulated device instances (default 1).  With more than one, default-device \
           distribute launches are sharded across the farm by compute weight; device(n) clauses \
           pin a region to one device, and omp_get_num_devices() reports N")

let zerocopy_arg =
  Arg.(
    value
    & flag
    & info [ "zerocopy" ]
        ~doc:
          "Map target data through pinned host memory instead of device buffers: kernels access \
           the shared DRAM in place (the Nano's CPU and GPU share LPDDR4), trading copy time for \
           uncached device access")

let elide_arg =
  Arg.(
    value
    & flag
    & info [ "elide" ]
        ~doc:
          "Park released device buffers in a resident cache and skip host/device transfers whose \
           source and destination provably hold the same bytes (map(always, ...) forces the \
           transfer)")

let mem_policy_arg =
  Arg.(
    value
    & opt string "auto"
    & info [ "mem-policy" ] ~docv:"MODE"
        ~doc:
          "Per-buffer memory-mode policy: $(b,auto) (default) classifies each mapped buffer as \
           copy, elide or zerocopy from its observed history and the device cost model; \
           $(b,copy), $(b,elide) or $(b,zerocopy) force that mode for every buffer.  The \
           explicit --zerocopy / --elide flags override this option")

let no_jit_arg =
  Arg.(
    value
    & flag
    & info [ "no-jit" ]
        ~doc:
          "Disable the closure JIT: execute kernels with the reference tree-walking interpreter \
           instead of the closure-compiled form built at module load.  Results, counters and \
           simulated times are identical; only real (host) execution is slower")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-launch statistics")

let cmd =
  let doc = "run an OpenMP C program on the simulated Jetson Nano 2GB" in
  Cmd.v
    (Cmd.info "ompirun" ~doc)
    Term.(
      const run_cmd $ input_arg $ entry_arg $ mode_arg $ trace_arg $ faults_arg $ max_retries_arg
      $ fault_seed_arg $ streams_arg $ devices_arg $ zerocopy_arg $ elide_arg $ mem_policy_arg
      $ no_jit_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
