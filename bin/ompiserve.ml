(* ompiserve — a long-lived offload server on the simulated Jetson Nano
   2GB: many clients, one device context.  Sessions keep persistent
   data environments, requests multiplex onto the stream pool, closed
   sessions warm the resident cache for the next generation.  Prints
   throughput/latency/queue statistics and verifies every response
   bit-identical against a sequential host reference. *)

open Cmdliner

let run_cmd devices streams inflight generations seed smoke no_elide mem_policy resident_cap
    faults_spec fault_seed max_retries trace_file =
  let cf_mem_policy =
    match mem_policy with
    | None -> None
    | Some spec -> (
      match Hostrt.Mempolicy.sel_of_string spec with
      | Some sel -> Some sel
      | None ->
        Printf.eprintf "ompiserve: bad --mem-policy %s (want auto|copy|elide|zerocopy)\n" spec;
        exit 1)
  in
  let faults =
    match faults_spec with
    | None -> []
    | Some spec -> (
      match Hostrt.Faults.parse spec with
      | Ok rules -> rules
      | Error msg ->
        Printf.eprintf "ompiserve: bad --faults spec: %s\n%s\n" msg Hostrt.Faults.spec_syntax;
        exit 1)
  in
  let cfg =
    {
      Serve.cf_devices = devices;
      cf_streams = streams;
      cf_max_inflight = inflight;
      cf_generations = generations;
      cf_seed = seed;
      cf_elide = not no_elide;
      cf_mem_policy;
      (* applied after the legacy elide knob, so --mem-policy wins *)
      cf_resident_cap_bytes = resident_cap;
      cf_faults = faults;
      cf_fault_seed = fault_seed;
      cf_max_retries = max_retries;
      cf_trace = trace_file <> None;
    }
  in
  let sessions = Serve.default_sessions ~smoke in
  (* spread the default workload round-robin across the farm *)
  let sessions =
    if devices > 1 then
      List.mapi (fun i s -> { s with Serve.ss_device = i mod devices }) sessions
    else sessions
  in
  match Serve.run cfg sessions with
  | exception Invalid_argument msg ->
    Printf.eprintf "ompiserve: %s\n" msg;
    exit 1
  | r, trace ->
    Printf.printf "ompiserve: %d clients, %d device(s), %d stream(s), max %d in flight, %d generation(s)\n"
      (List.length sessions) devices streams inflight generations;
    Printf.printf "  %d/%d requests served in %.6f s busy time -> %.1f req/s\n"
      r.Serve.rp_completed r.Serve.rp_requests r.Serve.rp_busy_s r.Serve.rp_throughput_rps;
    Printf.printf "  latency p50/p95/p99: %.3f / %.3f / %.3f ms; queue depth mean %.2f max %d\n"
      r.Serve.rp_p50_ms r.Serve.rp_p95_ms r.Serve.rp_p99_ms r.Serve.rp_mean_queue_depth
      r.Serve.rp_max_queue_depth;
    Printf.printf
      "  data env: %.0f%% persistent-map hits; %d warm-open H2Ds elided (%d h2d + %d d2h total), \
       %d resident buffer(s)\n"
      (100.0 *. r.Serve.rp_env_hit_rate)
      r.Serve.rp_open_elisions r.Serve.rp_elided_h2d r.Serve.rp_elided_d2h
      r.Serve.rp_resident_buffers_end;
    if r.Serve.rp_elided_pages > 0 then
      Printf.printf "  dirty tracking: %d clean page(s) skipped by partial transfers\n"
        r.Serve.rp_elided_pages;
    (match cf_mem_policy with
    | Some sel ->
      Printf.printf "  mem policy: %s\n" (Hostrt.Mempolicy.sel_name sel);
      List.iter
        (fun (dev, rows) ->
          List.iter
            (fun ((off, bytes), row) ->
              Printf.printf "    dev %d buffer 0x%x+%d -> %s\n" dev off bytes
                (String.concat ", " (List.map (fun (m, n) -> Printf.sprintf "%s x%d" m n) row)))
            rows)
        r.Serve.rp_policy
    | None -> ());
    if r.Serve.rp_faults_injected > 0 || r.Serve.rp_device_dead then
      Printf.printf "  faults: %d injected%s\n" r.Serve.rp_faults_injected
        (if r.Serve.rp_device_dead then "; device dead, host fallback" else "");
    List.iter
      (fun s ->
        Printf.printf "    session %d %-7s n=%-4d %3d req, mean %.3f ms, env %d/%d, %s\n"
          s.Serve.sr_id s.Serve.sr_app s.Serve.sr_n s.Serve.sr_requests s.Serve.sr_mean_ms
          s.Serve.sr_env_hits s.Serve.sr_env_lookups
          (if s.Serve.sr_ok then "ok" else "MISMATCH"))
      r.Serve.rp_sessions;
    (match (trace_file, trace) with
    | Some path, Some tr ->
      Perf.Chrome_trace.write_file path tr;
      Printf.printf "  [trace: %d events written to %s]\n" (Perf.Trace.length tr) path
    | _ -> ());
    if r.Serve.rp_all_identical then print_endline "  all responses bit-identical to host reference"
    else begin
      print_endline "  RESPONSE MISMATCH against host reference";
      exit 1
    end

let devices_arg =
  Arg.(
    value
    & opt int 1
    & info [ "devices" ] ~docv:"N"
        ~doc:
          "Number of simulated device instances; the default workload's sessions are pinned \
           round-robin across the farm, each with its own data environment and resident cache")

let streams_arg =
  Arg.(value & opt int 4 & info [ "streams" ] ~docv:"N" ~doc:"Stream-pool size (1 = serialized)")

let inflight_arg =
  Arg.(
    value & opt int 8 & info [ "inflight" ] ~docv:"N" ~doc:"Admission bound on in-flight requests")

let generations_arg =
  Arg.(
    value
    & opt int 2
    & info [ "generations" ] ~docv:"N"
        ~doc:"Open-serve-close cycles; generation 2+ re-opens sessions against the resident cache")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Arrival-process seed")

let smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Small CI-sized workload")

let no_elide_arg =
  Arg.(value & flag & info [ "no-elide" ] ~doc:"Disable the resident cache / transfer elision")

let mem_policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mem-policy" ] ~docv:"MODE"
        ~doc:
          "Per-buffer memory-mode policy for every session's persistent data environment: \
           $(b,auto) classifies each buffer copy/elide/zerocopy from its observed history; \
           $(b,copy), $(b,elide) or $(b,zerocopy) force one mode.  Overrides --no-elide; unset \
           keeps the legacy elide behaviour")

let resident_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "resident-cap" ] ~docv:"BYTES" ~doc:"Resident-cache byte budget override")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          ("Inject deterministic device faults under load; responses must stay bit-identical. "
          ^ Hostrt.Faults.spec_syntax))

let fault_seed_arg =
  Arg.(
    value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed for probabilistic fault rules")

let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"Bound the per-operation retries of the recovery policy")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the request lifecycle (cat:\"serve\": enqueue/admit/map/launch/complete) \
           alongside the runtime's async/mem/launch events and write a Chrome-trace JSON file")

let cmd =
  let doc = "serve concurrent offload requests on one simulated device context" in
  Cmd.v
    (Cmd.info "ompiserve" ~doc)
    Term.(
      const run_cmd $ devices_arg $ streams_arg $ inflight_arg $ generations_arg $ seed_arg
      $ smoke_arg $ no_elide_arg $ mem_policy_arg $ resident_cap_arg $ faults_arg $ fault_seed_arg
      $ max_retries_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
