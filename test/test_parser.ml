(* Parser tests: declarators, expressions, statements, top level, and a
   pretty-print/re-parse fixpoint property over a corpus. *)

open Minic

let parse = Parser.parse_program

let parse_expr = Parser.parse_expr_string

let expr = Alcotest.testable (Fmt.of_to_string Ast.show_expr) Ast.equal_expr

let fundef_of src =
  match parse src with
  | [ Ast.Gfun f ] -> f
  | _ -> Alcotest.fail "expected exactly one function"

(* ------------------------- declarators ------------------------- *)

let cty = Alcotest.testable (Fmt.of_to_string Machine.Cty.show) Machine.Cty.equal

let var_of src =
  match parse src with
  | [ Ast.Gvar (d, _) ] -> d
  | _ -> Alcotest.fail "expected a single global variable"

let test_declarators () =
  Alcotest.check cty "pointer" (Machine.Cty.Ptr Machine.Cty.Float) (var_of "float *p;").Ast.d_ty;
  Alcotest.check cty "array" (Machine.Cty.Array (Machine.Cty.Int, Some 8)) (var_of "int a[8];").Ast.d_ty;
  Alcotest.check cty "2d array"
    (Machine.Cty.Array (Machine.Cty.Array (Machine.Cty.Float, Some 3), Some 2))
    (var_of "float m[2][3];").Ast.d_ty;
  Alcotest.check cty "pointer to array"
    (Machine.Cty.Ptr (Machine.Cty.Array (Machine.Cty.Int, Some 96)))
    (var_of "int (*x)[96];").Ast.d_ty;
  Alcotest.check cty "array of pointers"
    (Machine.Cty.Array (Machine.Cty.Ptr Machine.Cty.Int, Some 4))
    (var_of "int *x[4];").Ast.d_ty;
  Alcotest.check cty "const dims fold"
    (Machine.Cty.Array (Machine.Cty.Int, Some 64))
    (var_of "int a[8 * 8];").Ast.d_ty

let test_function_params () =
  let f = fundef_of "void f(float a, float x[], int *p, int n) { }" in
  Alcotest.(check (list string)) "names" [ "a"; "x"; "p"; "n" ] (List.map fst f.Ast.f_params);
  Alcotest.check cty "array param decays" (Machine.Cty.Ptr Machine.Cty.Float)
    (List.assoc "x" f.Ast.f_params);
  let g = fundef_of "int g(void) { return 0; }" in
  Alcotest.(check int) "void params" 0 (List.length g.Ast.f_params)

let test_struct_def () =
  match parse "struct pair { int a; float b; }; struct pair p;" with
  | [ Ast.Gstruct ("pair", fields); Ast.Gvar (d, _) ] ->
    Alcotest.(check (list string)) "fields" [ "a"; "b" ] (List.map fst fields);
    Alcotest.check cty "var type" (Machine.Cty.Struct "pair") d.Ast.d_ty
  | _ -> Alcotest.fail "unexpected parse"

(* ------------------------- expressions ------------------------- *)

let test_precedence () =
  Alcotest.check expr "mul binds tighter"
    (Ast.Binop (Ast.Add, Ast.int_lit 1, Ast.Binop (Ast.Mul, Ast.int_lit 2, Ast.int_lit 3)))
    (parse_expr "1 + 2 * 3");
  Alcotest.check expr "shift vs compare"
    (Ast.Binop (Ast.Lt, Ast.Binop (Ast.Shl, Ast.ident "a", Ast.int_lit 1), Ast.ident "b"))
    (parse_expr "a << 1 < b");
  Alcotest.check expr "logical precedence"
    (Ast.Binop (Ast.LogOr, Ast.ident "a", Ast.Binop (Ast.LogAnd, Ast.ident "b", Ast.ident "c")))
    (parse_expr "a || b && c");
  Alcotest.check expr "assignment right assoc"
    (Ast.Assign (None, Ast.ident "a", Ast.Assign (None, Ast.ident "b", Ast.int_lit 1)))
    (parse_expr "a = b = 1");
  Alcotest.check expr "unary minus"
    (Ast.Binop (Ast.Sub, Ast.int_lit 0, Ast.Unop (Ast.Neg, Ast.ident "x")))
    (parse_expr "0 - -x")

let test_postfix () =
  Alcotest.check expr "index chain"
    (Ast.Index (Ast.Index (Ast.ident "a", Ast.int_lit 1), Ast.int_lit 2))
    (parse_expr "a[1][2]");
  Alcotest.check expr "member then call arg"
    (Ast.Call ("f", [ Ast.Member (Ast.ident "s", "x") ]))
    (parse_expr "f(s.x)");
  Alcotest.check expr "arrow" (Ast.Arrow (Ast.ident "p", "y")) (parse_expr "p->y");
  Alcotest.check expr "postinc on index"
    (Ast.Unop (Ast.PostInc, Ast.Index (Ast.ident "a", Ast.ident "i")))
    (parse_expr "a[i]++")

let test_casts_sizeof () =
  Alcotest.check expr "cast" (Ast.Cast (Machine.Cty.Ptr Machine.Cty.Float, Ast.ident "p"))
    (parse_expr "(float *)p");
  Alcotest.check expr "cast to ptr-to-array"
    (Ast.Cast (Machine.Cty.Ptr (Machine.Cty.Array (Machine.Cty.Int, Some 96)), Ast.ident "v"))
    (parse_expr "(int (*)[96])v");
  Alcotest.check expr "sizeof type" (Ast.SizeofT Machine.Cty.Double) (parse_expr "sizeof(double)");
  Alcotest.check expr "sizeof expr" (Ast.SizeofE (Ast.ident "x")) (parse_expr "sizeof(x)");
  Alcotest.check expr "parenthesised expr is not a cast"
    (Ast.Binop (Ast.Mul, Ast.ident "a", Ast.ident "b"))
    (parse_expr "(a) * b")

let test_conditional_comma () =
  Alcotest.check expr "ternary"
    (Ast.Cond (Ast.ident "c", Ast.int_lit 1, Ast.int_lit 2))
    (parse_expr "c ? 1 : 2");
  Alcotest.check expr "comma"
    (Ast.Comma (Ast.Assign (None, Ast.ident "a", Ast.int_lit 1), Ast.ident "b"))
    (parse_expr "a = 1, b")

(* ------------------------- statements ------------------------- *)

let body_of src = (fundef_of ("void t(void) { " ^ src ^ " }")).Ast.f_body

let test_statements () =
  (match body_of "if (x) y = 1; else y = 2;" with
  | Ast.Sblock [ Ast.Sif (_, _, Some _) ] -> ()
  | s -> Alcotest.failf "if/else: %s" (Ast.show_stmt s));
  (match body_of "while (i < 10) i++;" with
  | Ast.Sblock [ Ast.Swhile (_, _) ] -> ()
  | _ -> Alcotest.fail "while");
  (match body_of "do i--; while (i);" with
  | Ast.Sblock [ Ast.Sdo (_, _) ] -> ()
  | _ -> Alcotest.fail "do-while");
  (match body_of "for (int i = 0; i < n; i++) s += i;" with
  | Ast.Sblock [ Ast.Sfor (Some (Ast.Sdecl _), Some _, Some _, _) ] -> ()
  | _ -> Alcotest.fail "for with decl");
  (match body_of "for (;;) break;" with
  | Ast.Sblock [ Ast.Sfor (None, None, None, Ast.Sbreak) ] -> ()
  | _ -> Alcotest.fail "empty for");
  match body_of "int a = 1, b = 2;" with
  | Ast.Sblock [ Ast.Sdecl [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "multi declarator"

let test_dangling_else () =
  match body_of "if (a) if (b) x = 1; else x = 2;" with
  | Ast.Sblock [ Ast.Sif (_, Ast.Sif (_, _, Some _), None) ] -> ()
  | s -> Alcotest.failf "dangling else binds to inner if: %s" (Ast.show_stmt s)

let test_pragma_attachment () =
  (match body_of "#pragma omp barrier\nx = 1;" with
  | Ast.Sblock [ Ast.Spragma (Ast.Raw _, None); Ast.Sexpr _ ] -> ()
  | s -> Alcotest.failf "standalone pragma: %s" (Ast.show_stmt s));
  match body_of "#pragma omp parallel\n{ x = 1; }" with
  | Ast.Sblock [ Ast.Spragma (Ast.Raw _, Some (Ast.Sblock _)) ] -> ()
  | s -> Alcotest.failf "pragma with body: %s" (Ast.show_stmt s)

let test_shared_qualifier () =
  match body_of "__shared__ struct dim3 v;" with
  | Ast.Sblock [ Ast.Sdecl [ d ] ] -> Alcotest.(check bool) "shared flag" true d.Ast.d_shared
  | _ -> Alcotest.fail "shared decl"

let test_initializer_lists () =
  match body_of "int a[3] = { 1, 2, 3 };" with
  | Ast.Sblock [ Ast.Sdecl [ { Ast.d_init = Some (Ast.Ilist [ _; _; _ ]); _ } ] ] -> ()
  | _ -> Alcotest.fail "initializer list"

let test_parse_errors () =
  let fails src = match parse src with exception Parser.Parse_error _ -> true | _ -> false in
  Alcotest.(check bool) "missing semi" true (fails "int x");
  Alcotest.(check bool) "unbalanced paren" true (fails "void f(void) { g(1; }");
  Alcotest.(check bool) "vla dimension" true (fails "void f(int n) { int a[n]; }")

(* pretty -> parse fixpoint over a corpus *)
let corpus =
  [
    "void saxpy(float a, float *x, float *y, int n)\n{\n  int i;\n  for (i = 0; i < n; i++)\n    y[i] = a * x[i] + y[i];\n}";
    "int fib(int n)\n{\n  if (n < 2)\n    return n;\n  return fib(n - 1) + fib(n - 2);\n}";
    "struct p { int a; float b; };\n\nfloat get(struct p *s)\n{\n  return s->b + s->a;\n}";
    "void k(int *out)\n{\n  int i = 0;\n  while (i < 10)\n  {\n    out[i] = i % 3 == 0 ? -i : i;\n    i++;\n  }\n}";
    "void m(float (*a)[16], int n)\n{\n  for (int i = 0; i < n; i++)\n    for (int j = 0; j < n; j++)\n      a[i][j] = (float)(i * j) / 2.0f;\n}";
  ]

let test_pretty_parse_fixpoint () =
  List.iter
    (fun src ->
      let p1 = parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 = parse printed in
      if not (Ast.equal_program p1 p2) then
        Alcotest.failf "fixpoint failure.\n-- source --\n%s\n-- printed --\n%s" src printed)
    corpus

(* Reduction clauses survive a pragma-parse -> pretty -> pragma-parse
   round trip for every operator, including the min/max identifier
   forms; unknown operators are rejected at parse time. *)
let parse_omp_directive (line : string) : Ast.directive option =
  match Lexer.tokenize ("#pragma " ^ line ^ "\nx;") |> List.map (fun s -> s.Token.tok) with
  | Token.TPRAGMA toks :: _ -> Omp.Pragma_parser.parse toks
  | _ -> None

let test_reduction_roundtrip () =
  List.iter
    (fun op ->
      let line = Printf.sprintf "omp target teams distribute parallel for reduction(%s: s, t)" op in
      let d1 =
        match parse_omp_directive line with
        | Some d -> d
        | None -> Alcotest.failf "'%s' not recognised" line
      in
      let printed = Format.asprintf "%a" Pretty.pp_directive d1 in
      let reparse_line = String.sub printed 8 (String.length printed - 8) in
      let d2 =
        match parse_omp_directive reparse_line with
        | Some d -> d
        | None -> Alcotest.failf "printed form '%s' not recognised" printed
      in
      if d1 <> d2 then
        Alcotest.failf "reduction(%s) round trip changed the directive:\n%s" op printed;
      match List.filter (function Ast.Creduction _ -> true | _ -> false) d2.Ast.dir_clauses with
      | [ Ast.Creduction (_, [ "s"; "t" ]) ] -> ()
      | _ -> Alcotest.failf "reduction(%s) lost its variable list" op)
    [ "+"; "*"; "max"; "min"; "&"; "|"; "^"; "&&"; "||" ]

(* device(n) survives parse -> pretty -> parse with the constant
   intact; negative and non-constant arguments are pragma errors. *)
let test_device_roundtrip () =
  let line = "omp target teams distribute parallel for device(2) map(tofrom: x[0:n])" in
  let d1 =
    match parse_omp_directive line with
    | Some d -> d
    | None -> Alcotest.failf "'%s' not recognised" line
  in
  let printed = Format.asprintf "%a" Pretty.pp_directive d1 in
  Alcotest.(check bool) "printed form names the device" true
    (let rec go i =
       i + 9 <= String.length printed && (String.sub printed i 9 = "device(2)" || go (i + 1))
     in
     go 0);
  let d2 =
    match parse_omp_directive (String.sub printed 8 (String.length printed - 8)) with
    | Some d -> d
    | None -> Alcotest.failf "printed form '%s' not recognised" printed
  in
  if d1 <> d2 then Alcotest.failf "device(2) round trip changed the directive:\n%s" printed;
  match List.filter (function Ast.Cdevice _ -> true | _ -> false) d2.Ast.dir_clauses with
  | [ Ast.Cdevice e ] -> Alcotest.(check bool) "constant kept" true (Ast.const_eval_opt e = Some 2L)
  | _ -> Alcotest.fail "device clause lost"

let test_device_bad_args () =
  List.iter
    (fun arg ->
      let line = Printf.sprintf "omp target device(%s)" arg in
      match parse_omp_directive line with
      | exception Omp.Pragma_parser.Pragma_error _ -> ()
      | _ -> Alcotest.failf "device(%s) should be a pragma error" arg)
    [ "-1"; "n"; "2 * k" ]

let test_reduction_bad_ops () =
  List.iter
    (fun op ->
      let line = Printf.sprintf "omp parallel for reduction(%s: s)" op in
      match parse_omp_directive line with
      | exception Omp.Pragma_parser.Pragma_error _ -> ()
      | _ -> Alcotest.failf "reduction(%s) should be a pragma error" op)
    [ "-"; "/"; "%"; "<<"; "avg"; "minmax" ]

let () =
  Alcotest.run "parser"
    [
      ( "declarations",
        [
          Alcotest.test_case "declarators" `Quick test_declarators;
          Alcotest.test_case "function parameters" `Quick test_function_params;
          Alcotest.test_case "struct definitions" `Quick test_struct_def;
          Alcotest.test_case "initializer lists" `Quick test_initializer_lists;
          Alcotest.test_case "__shared__ qualifier" `Quick test_shared_qualifier;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "postfix" `Quick test_postfix;
          Alcotest.test_case "casts and sizeof" `Quick test_casts_sizeof;
          Alcotest.test_case "conditional and comma" `Quick test_conditional_comma;
        ] );
      ( "statements",
        [
          Alcotest.test_case "statement forms" `Quick test_statements;
          Alcotest.test_case "dangling else" `Quick test_dangling_else;
          Alcotest.test_case "pragma attachment" `Quick test_pragma_attachment;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "pretty-parse fixpoint" `Quick test_pretty_parse_fixpoint;
          Alcotest.test_case "reduction operators" `Quick test_reduction_roundtrip;
          Alcotest.test_case "unknown reduction operators" `Quick test_reduction_bad_ops;
          Alcotest.test_case "device clause" `Quick test_device_roundtrip;
          Alcotest.test_case "bad device arguments" `Quick test_device_bad_args;
        ] );
    ]
