(* Data-environment tests: OpenMP map semantics with refcounts (the
   machinery behind target data / enter / exit / update). *)

open Machine
open Gpusim

let make () =
  let clock = Simclock.create () in
  let host = Mem.create ~space:Addr.Host "host" in
  let driver = Driver.create clock in
  Driver.ensure_initialized driver;
  let env = Hostrt.Dataenv.create ~host ~driver in
  (env, host, driver, clock)

let set_f32 (m : Mem.t) (a : Addr.t) i v =
  Bytes.set_int32_le m.Mem.data (a.Addr.off + (4 * i)) (Int32.bits_of_float v)

let get_f32 (m : Mem.t) (a : Addr.t) i =
  Int32.float_of_bits (Bytes.get_int32_le m.Mem.data (a.Addr.off + (4 * i)))

let test_map_to_copies () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 3 42.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.To in
  Alcotest.(check bool) "device copy initialised" true (get_f32 driver.Driver.global d 3 = 42.0)

let test_alloc_does_not_copy () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 0 7.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Alloc in
  Alcotest.(check bool) "device buffer zeroed, not copied" true (get_f32 driver.Driver.global d 0 = 0.0)

let test_tofrom_roundtrip () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 1 1.5;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom in
  (* device-side mutation *)
  set_f32 driver.Driver.global d 1 9.75;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check bool) "copied back on final unmap" true (get_f32 host h 1 = 9.75);
  Alcotest.(check int) "entry removed" 0 (Hostrt.Dataenv.active_mappings env)

let test_present_reuses () =
  let env, host, _, clock = make () in
  let h = Mem.alloc host 1024 in
  let d1 = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.To in
  let t = Simclock.now_s clock in
  let d2 = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.Tofrom in
  Alcotest.(check bool) "same device address" true (Addr.equal d1 d2);
  Alcotest.(check bool) "no second transfer" true (Simclock.now_s clock -. t < 1e-6);
  (* inner unmap: still present *)
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check int) "refcount keeps mapping" 1 (Hostrt.Dataenv.active_mappings env);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "released at zero" 0 (Hostrt.Dataenv.active_mappings env)

let test_containment_lookup () =
  let env, host, _, _ = make () in
  let h = Mem.alloc host 1024 in
  let d = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.Alloc in
  (* interior address translates with the right offset *)
  let inner = Addr.add h 100 in
  (match Hostrt.Dataenv.lookup env inner with
  | Some di -> Alcotest.(check int) "offset preserved" (d.Addr.off + 100) di.Addr.off
  | None -> Alcotest.fail "interior address should be present");
  Alcotest.(check bool) "outside not present" true
    (Hostrt.Dataenv.lookup env (Addr.add h 5000) = None)

let test_update_to_from () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 0 1.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.To in
  set_f32 host h 0 2.0;
  Hostrt.Dataenv.update_to env h ~bytes:64;
  Alcotest.(check bool) "update to pushes" true (get_f32 driver.Driver.global d 0 = 2.0);
  set_f32 driver.Driver.global d 0 3.0;
  Hostrt.Dataenv.update_from env h ~bytes:64;
  Alcotest.(check bool) "update from pulls" true (get_f32 host h 0 = 3.0)

let test_errors () =
  let env, host, _, _ = make () in
  let h = Mem.alloc host 64 in
  let fails f = match f () with exception Hostrt.Dataenv.Map_error _ -> true | _ -> false in
  Alcotest.(check bool) "unmap of unmapped" true
    (fails (fun () -> Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To));
  Alcotest.(check bool) "update of unmapped" true
    (fails (fun () -> Hostrt.Dataenv.update_to env h ~bytes:64));
  Alcotest.(check bool) "lookup_exn of unmapped" true
    (match Hostrt.Dataenv.lookup_exn env h with
    | exception Hostrt.Dataenv.Map_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "zero-byte map" true
    (fails (fun () -> Hostrt.Dataenv.map env h ~bytes:0 Hostrt.Dataenv.To))

let test_from_copies_back_only () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 2 5.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.From in
  Alcotest.(check bool) "from does not initialise device" true (get_f32 driver.Driver.global d 2 = 0.0);
  set_f32 driver.Driver.global d 2 8.0;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.From;
  Alcotest.(check bool) "from copies back at release" true (get_f32 host h 2 = 8.0)

(* ----------------- async interaction (nowait regions) ----------------- *)

(* Fake async hooks: a mutable "in flight" flag plus a log of sync_range
   calls, standing in for the runtime's dependency tracker. *)
let install_fake_hooks env =
  let in_flight = ref false in
  let synced = ref [] in
  Hostrt.Dataenv.set_async_hooks env
    ~pending:(fun _addr ~bytes:_ -> !in_flight)
    ~sync_range:(fun addr ~bytes ->
      synced := (addr, bytes) :: !synced;
      in_flight := false);
  (in_flight, synced)

(* Unmapping a range with async work in flight is a clean Map_error at
   the *final* release only — inner (refcounted) unmaps stay legal. *)
let test_unmap_pending_refcount () =
  let env, host, _, _ = make () in
  let in_flight, _ = install_fake_hooks env in
  let h = Mem.alloc host 256 in
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  in_flight := true;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "inner unmap is refcount-only, no pending check" 1
    (Hostrt.Dataenv.active_mappings env);
  Alcotest.(check bool) "final unmap while pending errors" true
    (match Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To with
    | exception Hostrt.Dataenv.Map_error _ -> true
    | () -> false);
  Alcotest.(check int) "failed release keeps the mapping intact" 1
    (Hostrt.Dataenv.active_mappings env);
  in_flight := false;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "released once quiet" 0 (Hostrt.Dataenv.active_mappings env)

(* target update on an in-flight range synchronizes the range first,
   then transfers — the transfer must see post-sync device data. *)
let test_update_syncs_in_flight_range () =
  let env, host, _, _ = make () in
  let in_flight, synced = install_fake_hooks env in
  let h = Mem.alloc host 64 in
  ignore (Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom);
  in_flight := true;
  Hostrt.Dataenv.update_to env h ~bytes:64;
  (match !synced with
  | [ (addr, bytes) ] ->
    Alcotest.(check bool) "synced the updated range" true (Addr.equal addr h);
    Alcotest.(check int) "synced the full extent" 64 bytes
  | l -> Alcotest.failf "expected one sync_range call, got %d" (List.length l));
  in_flight := true;
  Hostrt.Dataenv.update_from env h ~bytes:64;
  Alcotest.(check int) "update from also syncs first" 2 (List.length !synced);
  in_flight := false;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom

(* map_async/unmap_async: eager memory effects over async copies; the
   caller IS the in-flight work, so no pending checks apply. *)
let test_map_async_eager_effects () =
  let env, host, driver, clock = make () in
  let in_flight, _ = install_fake_hooks env in
  let s = Driver.stream_create driver in
  let h = Mem.alloc host 64 in
  set_f32 host h 2 4.5;
  let d = Hostrt.Dataenv.map_async env ~stream:s h ~bytes:64 Hostrt.Dataenv.Tofrom in
  Alcotest.(check bool) "async map(to:) copies in eagerly" true
    (get_f32 driver.Driver.global d 2 = 4.5);
  set_f32 driver.Driver.global d 2 6.25;
  in_flight := true;
  (* no Map_error even though the hook reports pending work *)
  Hostrt.Dataenv.unmap_async env ~stream:s h Hostrt.Dataenv.Tofrom;
  Alcotest.(check bool) "async unmap copies back eagerly" true (get_f32 host h 2 = 6.25);
  Alcotest.(check int) "entry removed" 0 (Hostrt.Dataenv.active_mappings env);
  Alcotest.(check bool) "work landed on the stream, not the clock" true
    (s.Driver.str_done_ns > Simclock.now_ns clock)

(* -------------- unified-memory optimisations (elide/zerocopy) -------------- *)

let test_decode_map_code () =
  let pp fmt (mt, a) = Format.fprintf fmt "(%a, %b)" Hostrt.Dataenv.pp_map_type mt a in
  let code = Alcotest.testable pp (fun (m1, a1) (m2, a2) -> m1 = m2 && a1 = a2) in
  let check n exp = Alcotest.check code (Printf.sprintf "code %d" n) exp (Hostrt.Dataenv.decode_map_code n) in
  check 0 (Hostrt.Dataenv.Alloc, false);
  check 1 (Hostrt.Dataenv.To, false);
  check 2 (Hostrt.Dataenv.From, false);
  check 3 (Hostrt.Dataenv.Tofrom, false);
  check 4 (Hostrt.Dataenv.Alloc, true);
  check 5 (Hostrt.Dataenv.To, true);
  check 6 (Hostrt.Dataenv.From, true);
  check 7 (Hostrt.Dataenv.Tofrom, true)

let elided_h2d env = (Hostrt.Dataenv.stats env).Hostrt.Dataenv.elided_h2d

let elided_d2h env = (Hostrt.Dataenv.stats env).Hostrt.Dataenv.elided_d2h

(* Re-mapping a released range whose bytes changed on neither side skips
   the h2d; dirtying the host image forces the copy again. *)
let test_elide_clean_remap () =
  let env, host, _, clock = make () in
  Hostrt.Dataenv.set_elide env true;
  let h = Mem.alloc host 256 in
  set_f32 host h 0 1.0;
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "released buffer parked" 1 (Hostrt.Dataenv.resident_buffers env);
  let t = Simclock.now_s clock in
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check int) "clean re-map elides the h2d" 1 (elided_h2d env);
  Alcotest.(check bool) "no copy time charged" true (Simclock.now_s clock -. t < 1e-9);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  set_f32 host h 0 2.0;
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check int) "dirty host forces the copy" 1 (elided_h2d env);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To

(* Copy-back of a tofrom range the device never wrote is a no-op; once
   kernel stores are recorded against the allocation it must happen. *)
let test_elide_d2h_unwritten () =
  let env, host, driver, _ = make () in
  Hostrt.Dataenv.set_elide env true;
  let h = Mem.alloc host 64 in
  set_f32 host h 1 3.5;
  ignore (Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check int) "unwritten tofrom skips the copy-back" 1 (elided_d2h env);
  Alcotest.(check bool) "host bytes intact" true (get_f32 host h 1 = 3.5);
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom in
  set_f32 driver.Driver.global d 1 9.0;
  (match Driver.alloc_id_of driver d with
  | Some id -> Driver.note_stores driver id 1
  | None -> Alcotest.fail "device address should carry an allocation id");
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check int) "written buffer is copied back" 1 (elided_d2h env);
  Alcotest.(check bool) "device value landed on host" true (get_f32 host h 1 = 9.0)

(* The [always] modifier defeats elision in both directions. *)
let test_always_forces_transfers () =
  let env, host, driver, clock = make () in
  Hostrt.Dataenv.set_elide env true;
  let h = Mem.alloc host 128 in
  ignore (Hostrt.Dataenv.map env h ~bytes:128 Hostrt.Dataenv.To);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  let t = Simclock.now_s clock in
  let d = Hostrt.Dataenv.map ~always:true env h ~bytes:128 Hostrt.Dataenv.Tofrom in
  Alcotest.(check int) "always map: no h2d elision" 0 (elided_h2d env);
  Alcotest.(check bool) "always map: copy time charged" true (Simclock.now_s clock -. t > 0.0);
  (* an unrecorded device write — exactly what always is for *)
  set_f32 driver.Driver.global d 0 5.0;
  Hostrt.Dataenv.unmap ~always:true env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check int) "always unmap: no d2h elision" 0 (elided_d2h env);
  Alcotest.(check bool) "unrecorded write still copied back" true (get_f32 host h 0 = 5.0)

(* A revived range with async work in flight is synchronized and copied,
   never elided. *)
let test_elide_pending_never_elided () =
  let env, host, _, _ = make () in
  let in_flight, synced = install_fake_hooks env in
  Hostrt.Dataenv.set_elide env true;
  let h = Mem.alloc host 256 in
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  in_flight := true;
  ignore (Hostrt.Dataenv.map env h ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check int) "in-flight range not elided" 0 (elided_h2d env);
  Alcotest.(check int) "range synchronized before the copy" 1 (List.length !synced);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To

(* The resident cache is byte-accounted: a buffer larger than the whole
   budget is freed instead of parked. *)
let test_resident_oversized_not_parked () =
  let env, host, _, _ = make () in
  Hostrt.Dataenv.set_elide env true;
  Hostrt.Dataenv.set_resident_cap_bytes env 512;
  let h = Mem.alloc host 1024 in
  ignore (Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.To);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "oversized buffer not parked" 0 (Hostrt.Dataenv.resident_buffers env);
  Alcotest.(check int) "no bytes accounted" 0 (Hostrt.Dataenv.resident_bytes env)

(* Parking beyond the byte budget evicts the oldest parked buffers until
   the total fits again. *)
let test_resident_lru_byte_eviction () =
  let env, host, _, _ = make () in
  Hostrt.Dataenv.set_elide env true;
  Hostrt.Dataenv.set_resident_cap_bytes env 512;
  let park bytes =
    let h = Mem.alloc host bytes in
    ignore (Hostrt.Dataenv.map env h ~bytes Hostrt.Dataenv.To);
    Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
    h
  in
  let a = park 256 in
  let c = ignore (park 256); park 256 in
  Alcotest.(check int) "two newest remain parked" 2 (Hostrt.Dataenv.resident_buffers env);
  Alcotest.(check int) "bytes stay within the budget" 512 (Hostrt.Dataenv.resident_bytes env);
  ignore (Hostrt.Dataenv.map env a ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check int) "evicted buffer cannot elide" 0 (elided_h2d env);
  ignore (Hostrt.Dataenv.map env c ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check int) "surviving buffer elides its h2d" 1 (elided_h2d env);
  Hostrt.Dataenv.unmap env a Hostrt.Dataenv.To;
  Hostrt.Dataenv.unmap env c Hostrt.Dataenv.To

(* One large session must not flush every small session's parked
   buffer: an over-budget release is freed, the smalls stay warm. *)
let test_resident_large_spares_smalls () =
  let env, host, _, _ = make () in
  Hostrt.Dataenv.set_elide env true;
  Hostrt.Dataenv.set_resident_cap_bytes env 1024;
  let cycle bytes =
    let h = Mem.alloc host bytes in
    ignore (Hostrt.Dataenv.map env h ~bytes Hostrt.Dataenv.To);
    Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
    h
  in
  let smalls = List.init 4 (fun _ -> cycle 128) in
  ignore (cycle 4096);
  Alcotest.(check int) "small sessions stay parked" 4 (Hostrt.Dataenv.resident_buffers env);
  List.iter (fun h -> ignore (Hostrt.Dataenv.map env h ~bytes:128 Hostrt.Dataenv.To)) smalls;
  Alcotest.(check int) "every small re-open elides" 4 (elided_h2d env);
  List.iter (fun h -> Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To) smalls

(* Shrinking the budget evicts immediately; a negative budget is
   rejected. *)
let test_resident_cap_shrink () =
  let env, host, _, _ = make () in
  Hostrt.Dataenv.set_elide env true;
  let park bytes =
    let h = Mem.alloc host bytes in
    ignore (Hostrt.Dataenv.map env h ~bytes Hostrt.Dataenv.To);
    Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To
  in
  park 256;
  park 256;
  Alcotest.(check int) "both parked under the default budget" 2
    (Hostrt.Dataenv.resident_buffers env);
  Hostrt.Dataenv.set_resident_cap_bytes env 256;
  Alcotest.(check int) "shrink evicts down to the new budget" 1
    (Hostrt.Dataenv.resident_buffers env);
  Alcotest.(check int) "bytes follow" 256 (Hostrt.Dataenv.resident_bytes env);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Dataenv.set_resident_cap_bytes: negative budget") (fun () ->
      Hostrt.Dataenv.set_resident_cap_bytes env (-1))

(* Zero-copy: the map pins the host range and hands kernels the host
   address itself — one shared image, no transfers. *)
let test_zerocopy_map_in_place () =
  let env, host, driver, _ = make () in
  Hostrt.Dataenv.set_zerocopy env true;
  let h = Mem.alloc host 64 in
  set_f32 host h 0 2.5;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom in
  Alcotest.(check bool) "map returns the host address itself" true (Addr.equal d h);
  Alcotest.(check bool) "range pinned in the driver" true (driver.Driver.pinned <> []);
  Alcotest.(check bool) "lookup is the identity" true
    (match Hostrt.Dataenv.lookup env h with Some a -> Addr.equal a h | None -> false);
  (* host writes are device-visible: there is no separate device image *)
  set_f32 host h 0 4.0;
  Alcotest.(check bool) "shared DRAM" true (get_f32 host d 0 = 4.0);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check bool) "unpinned at release" true (driver.Driver.pinned = []);
  Alcotest.(check int) "entry removed" 0 (Hostrt.Dataenv.active_mappings env)

let test_geometry () =
  let grid, block = Hostrt.Rt.geometry ~num_teams:100 ~num_threads:256 in
  Alcotest.(check int) "grid 1d" 100 grid.Gpusim.Simt.x;
  Alcotest.(check int) "block folded to 32xN" 32 block.Gpusim.Simt.x;
  Alcotest.(check int) "block y" 8 block.Gpusim.Simt.y;
  let grid2, _ = Hostrt.Rt.geometry ~num_teams:100000 ~num_threads:128 in
  Alcotest.(check bool) "grid folded into 2D over 65535" true (grid2.Gpusim.Simt.y > 1);
  Alcotest.(check bool) "total preserved or padded" true
    (grid2.Gpusim.Simt.x * grid2.Gpusim.Simt.y >= 100000)

let () =
  Alcotest.run "dataenv"
    [
      ( "mapping",
        [
          Alcotest.test_case "map(to:) copies in" `Quick test_map_to_copies;
          Alcotest.test_case "map(alloc:) does not copy" `Quick test_alloc_does_not_copy;
          Alcotest.test_case "map(tofrom:) roundtrip" `Quick test_tofrom_roundtrip;
          Alcotest.test_case "map(from:) copies back only" `Quick test_from_copies_back_only;
        ] );
      ( "present table",
        [
          Alcotest.test_case "present ranges are reused" `Quick test_present_reuses;
          Alcotest.test_case "interior-address lookup" `Quick test_containment_lookup;
          Alcotest.test_case "target update to/from" `Quick test_update_to_from;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "async",
        [
          Alcotest.test_case "unmap-while-pending vs refcount" `Quick test_unmap_pending_refcount;
          Alcotest.test_case "target update syncs in-flight range" `Quick
            test_update_syncs_in_flight_range;
          Alcotest.test_case "map_async eager effects" `Quick test_map_async_eager_effects;
        ] );
      ( "unified memory",
        [
          Alcotest.test_case "map-code decoding" `Quick test_decode_map_code;
          Alcotest.test_case "clean re-map elides h2d" `Quick test_elide_clean_remap;
          Alcotest.test_case "unwritten tofrom elides d2h" `Quick test_elide_d2h_unwritten;
          Alcotest.test_case "always modifier forces transfers" `Quick test_always_forces_transfers;
          Alcotest.test_case "in-flight ranges never elided" `Quick test_elide_pending_never_elided;
          Alcotest.test_case "oversized buffer freed not parked" `Quick
            test_resident_oversized_not_parked;
          Alcotest.test_case "resident cache evicts by bytes (LRU)" `Quick
            test_resident_lru_byte_eviction;
          Alcotest.test_case "large release spares small sessions" `Quick
            test_resident_large_spares_smalls;
          Alcotest.test_case "shrinking the byte budget evicts" `Quick test_resident_cap_shrink;
          Alcotest.test_case "zero-copy maps in place" `Quick test_zerocopy_map_in_place;
        ] );
      ("geometry", [ Alcotest.test_case "teams/threads to grid/block" `Quick test_geometry ]);
    ]
