(* Asynchronous offloading tests: driver stream/engine timeline
   semantics, the Hostrt.Async dependency tracker (unit + QCheck
   properties), and end-to-end `target ... nowait` differentials
   (async vs sync vs stripped host reference must be bit-identical). *)

open Machine
open Gpusim

let make_driver () =
  let clock = Simclock.create () in
  let host = Mem.create ~space:Addr.Host "host" in
  let driver = Driver.create clock in
  Driver.ensure_initialized driver;
  (driver, host, clock)

(* ---------------------------------------------------------------- *)
(* Driver: stream timelines and the two engines                       *)
(* ---------------------------------------------------------------- *)

(* An async copy charges the host clock only the API-issue overhead;
   the transfer's full cost lives on the stream timeline until a sync
   point pulls the clock forward. *)
let test_async_copy_advances_stream_only () =
  let driver, host, clock = make_driver () in
  let len = 1 lsl 20 in
  let src = Mem.alloc host len and dst = Driver.mem_alloc driver len in
  Bytes.set host.Mem.data src.Addr.off 'A';
  let s = Driver.stream_create driver in
  let t0 = Simclock.now_ns clock in
  Driver.memcpy_h2d_async driver ~stream:s ~host ~src ~dst ~len;
  let host_cost = Simclock.now_ns clock -. t0 in
  Alcotest.(check bool) "host pays only the API overhead" true
    (host_cost <= (Driver.async_api_overhead_us *. 1e3) +. 1.0);
  Alcotest.(check bool) "stream is busy" true (Driver.stream_busy driver s);
  Alcotest.(check bool) "memory effect is eager" true
    (Bytes.get driver.Driver.global.Mem.data dst.Addr.off
    = Bytes.get host.Mem.data src.Addr.off);
  let before_sync = Simclock.now_ns clock in
  Driver.stream_sync driver s;
  Alcotest.(check bool) "sync advances to the stream's completion" true
    (Simclock.now_ns clock > before_sync);
  Alcotest.(check bool) "drained after sync" true (not (Driver.stream_busy driver s))

(* One copy engine: transfers on different streams serialize. *)
let test_copy_engine_serializes () =
  let driver, host, _ = make_driver () in
  let len = 1 lsl 18 in
  let src = Mem.alloc host (2 * len) and dst = Driver.mem_alloc driver (2 * len) in
  let s1 = Driver.stream_create driver and s2 = Driver.stream_create driver in
  Driver.memcpy_h2d_async driver ~stream:s1 ~host ~src ~dst ~len;
  let d1 = s1.Driver.str_done_ns in
  Driver.memcpy_h2d_async driver ~stream:s2 ~host ~src:(Addr.add src len)
    ~dst:(Addr.add dst len) ~len;
  Alcotest.(check bool) "second transfer queues behind the first" true
    (s2.Driver.str_done_ns >= d1);
  Driver.device_sync driver;
  Alcotest.(check bool) "device_sync drains every stream" true
    (not (Driver.stream_busy driver s1 || Driver.stream_busy driver s2))

(* The engine is work-conserving: a transfer that only becomes ready
   late (its stream is blocked) leaves the engine idle for other
   streams' ready work, instead of holding the queue hostage. *)
let test_engine_backfills_idle_gaps () =
  let driver, host, clock = make_driver () in
  let len = 1 lsl 18 in
  let src = Mem.alloc host (2 * len) and dst = Driver.mem_alloc driver (2 * len) in
  let s1 = Driver.stream_create driver and s2 = Driver.stream_create driver in
  let blocked_until = Simclock.now_ns clock +. 1e7 (* 10 ms *) in
  Driver.stream_wait_until s1 blocked_until;
  Driver.memcpy_h2d_async driver ~stream:s1 ~host ~src ~dst ~len;
  Alcotest.(check bool) "blocked stream starts after its wait" true
    (s1.Driver.str_done_ns > blocked_until);
  Driver.memcpy_h2d_async driver ~stream:s2 ~host ~src:(Addr.add src len)
    ~dst:(Addr.add dst len) ~len;
  Alcotest.(check bool) "ready work fills the engine's idle gap" true
    (s2.Driver.str_done_ns < blocked_until)

(* stream_wait_until never moves a timeline backwards. *)
let test_stream_wait_monotone () =
  let driver, _, clock = make_driver () in
  let s = Driver.stream_create driver in
  let d0 = s.Driver.str_done_ns in
  Driver.stream_wait_until s (d0 -. 1000.0);
  Alcotest.(check (float 0.0)) "past wait is a no-op" d0 s.Driver.str_done_ns;
  Driver.stream_wait_until s (d0 +. 1000.0);
  Alcotest.(check (float 0.0)) "future wait pushes" (d0 +. 1000.0) s.Driver.str_done_ns;
  ignore clock

(* Complete events carry the scheduled interval and the stream id. *)
let test_async_trace_events () =
  let driver, host, clock = make_driver () in
  let tr = Perf.Trace.create clock in
  Driver.set_trace driver (Some tr);
  let len = 4096 in
  let src = Mem.alloc host len and dst = Driver.mem_alloc driver len in
  let s = Driver.stream_create driver in
  Driver.memcpy_h2d_async driver ~stream:s ~host ~src ~dst ~len;
  match Perf.Trace.find_events tr ~cat:"async" ~name:"HtoD" () with
  | [ e ] ->
    Alcotest.(check int) "tid is the stream id" s.Driver.str_id e.Perf.Trace.ev_tid;
    Alcotest.(check bool) "kind is Complete" true (e.Perf.Trace.ev_kind = Perf.Trace.Complete);
    Alcotest.(check bool) "duration is the transfer cost" true (e.Perf.Trace.ev_dur_ns > 0.0);
    Alcotest.(check (float 0.0)) "interval ends at the stream's done time"
      s.Driver.str_done_ns
      (e.Perf.Trace.ev_ts_ns +. e.Perf.Trace.ev_dur_ns)
  | evs -> Alcotest.failf "expected 1 async HtoD event, got %d" (List.length evs)

(* ---------------------------------------------------------------- *)
(* Async dependency tracker                                           *)
(* ---------------------------------------------------------------- *)

let r ~off ~len = { Hostrt.Async.rg_off = off; rg_len = len }

let test_ranges_overlap () =
  let check = Alcotest.(check bool) in
  check "identical" true (Hostrt.Async.ranges_overlap (r ~off:0 ~len:8) (r ~off:0 ~len:8));
  check "partial" true (Hostrt.Async.ranges_overlap (r ~off:0 ~len:8) (r ~off:4 ~len:8));
  check "contained" true (Hostrt.Async.ranges_overlap (r ~off:0 ~len:16) (r ~off:4 ~len:4));
  check "adjacent do not touch" false
    (Hostrt.Async.ranges_overlap (r ~off:0 ~len:8) (r ~off:8 ~len:8));
  check "disjoint" false (Hostrt.Async.ranges_overlap (r ~off:0 ~len:4) (r ~off:100 ~len:4))

(* Test rig: every submitted task performs one real async copy so it
   occupies the copy engine and has a genuine completion timestamp. *)
type rig = {
  rg_driver : Driver.t;
  rg_host : Mem.t;
  rg_clock : Simclock.t;
  rg_async : Hostrt.Async.t;
  rg_src : Addr.t;
  rg_dst : Addr.t;
  rg_len : int;
}

let make_rig ?(streams = 4) ?(len = 1 lsl 18) () =
  let driver, host, clock = make_driver () in
  let async = Hostrt.Async.create ~streams driver in
  { rg_driver = driver; rg_host = host; rg_clock = clock;
    rg_async = async; rg_src = Mem.alloc host len; rg_dst = Driver.mem_alloc driver len;
    rg_len = len }

let submit_copy rig ~label ~reads ~writes =
  Hostrt.Async.submit rig.rg_async ~label ~reads ~writes (fun stream ->
      Driver.memcpy_h2d_async rig.rg_driver ~stream ~host:rig.rg_host ~src:rig.rg_src
        ~dst:rig.rg_dst ~len:rig.rg_len)

let find_task rig label =
  match List.find_opt (fun t -> t.Hostrt.Async.t_label = label) (Hostrt.Async.pending rig.rg_async) with
  | Some t -> t
  | None -> Alcotest.failf "task %s not pending" label

let test_independent_tasks_spread () =
  let rig = make_rig () in
  submit_copy rig ~label:"a" ~reads:[] ~writes:[ r ~off:0 ~len:64 ];
  submit_copy rig ~label:"b" ~reads:[] ~writes:[ r ~off:64 ~len:64 ];
  submit_copy rig ~label:"c" ~reads:[ r ~off:1000 ~len:8 ] ~writes:[ r ~off:128 ~len:64 ];
  let a = find_task rig "a" and b = find_task rig "b" and c = find_task rig "c" in
  Alcotest.(check (list int)) "no dependencies" [] (a.Hostrt.Async.t_deps @ b.Hostrt.Async.t_deps @ c.Hostrt.Async.t_deps);
  let ids = List.map (fun t -> t.Hostrt.Async.t_stream.Driver.str_id) [ a; b; c ] in
  Alcotest.(check int) "three distinct streams" 3 (List.length (List.sort_uniq compare ids))

let conflict_case name reads1 writes1 reads2 writes2 =
  let rig = make_rig () in
  submit_copy rig ~label:"first" ~reads:reads1 ~writes:writes1;
  submit_copy rig ~label:"second" ~reads:reads2 ~writes:writes2;
  let t1 = find_task rig "first" and t2 = find_task rig "second" in
  Alcotest.(check (list int)) (name ^ ": dep edge recorded") [ t1.Hostrt.Async.t_id ]
    t2.Hostrt.Async.t_deps;
  Alcotest.(check bool) (name ^ ": serialized on the timeline") true
    (t2.Hostrt.Async.t_done_ns > t1.Hostrt.Async.t_done_ns);
  Alcotest.(check int) (name ^ ": dependent task reuses the stream")
    t1.Hostrt.Async.t_stream.Driver.str_id t2.Hostrt.Async.t_stream.Driver.str_id

let test_raw_conflict () =
  conflict_case "RAW" [] [ r ~off:0 ~len:64 ] [ r ~off:32 ~len:8 ] []

let test_war_conflict () =
  conflict_case "WAR" [ r ~off:0 ~len:64 ] [] [] [ r ~off:0 ~len:64 ]

let test_waw_conflict () =
  conflict_case "WAW" [] [ r ~off:0 ~len:64 ] [] [ r ~off:60 ~len:64 ]

let test_read_read_no_conflict () =
  let rig = make_rig () in
  submit_copy rig ~label:"first" ~reads:[ r ~off:0 ~len:64 ] ~writes:[ r ~off:100 ~len:4 ];
  submit_copy rig ~label:"second" ~reads:[ r ~off:0 ~len:64 ] ~writes:[ r ~off:200 ~len:4 ];
  let t2 = find_task rig "second" in
  Alcotest.(check (list int)) "shared read input needs no edge" [] t2.Hostrt.Async.t_deps

let test_transitive_chain () =
  let rig = make_rig () in
  submit_copy rig ~label:"t1" ~reads:[] ~writes:[ r ~off:0 ~len:64 ];
  submit_copy rig ~label:"t2" ~reads:[ r ~off:0 ~len:64 ] ~writes:[ r ~off:64 ~len:64 ];
  submit_copy rig ~label:"t3" ~reads:[ r ~off:64 ~len:64 ] ~writes:[ r ~off:128 ~len:64 ];
  let t1 = find_task rig "t1" and t2 = find_task rig "t2" and t3 = find_task rig "t3" in
  Alcotest.(check bool) "chain is ordered end to end" true
    (t1.Hostrt.Async.t_done_ns < t2.Hostrt.Async.t_done_ns
    && t2.Hostrt.Async.t_done_ns < t3.Hostrt.Async.t_done_ns);
  Alcotest.(check (list int)) "t3 depends only on its direct producer"
    [ t2.Hostrt.Async.t_id ] t3.Hostrt.Async.t_deps

let test_wait_all_and_sync_range () =
  let rig = make_rig () in
  submit_copy rig ~label:"a" ~reads:[] ~writes:[ r ~off:0 ~len:64 ];
  submit_copy rig ~label:"b" ~reads:[] ~writes:[ r ~off:64 ~len:64 ];
  let a_done = (find_task rig "a").Hostrt.Async.t_done_ns in
  let b_done = (find_task rig "b").Hostrt.Async.t_done_ns in
  (* sync only a's range: the clock lands between the two completions *)
  Hostrt.Async.sync_range rig.rg_async (r ~off:0 ~len:64);
  let now = Simclock.now_ns rig.rg_clock in
  Alcotest.(check bool) "range sync reaches a's completion" true (now >= a_done);
  Alcotest.(check bool) "but not b's" true (now < b_done);
  Alcotest.(check int) "b still pending" 1 (Hostrt.Async.pending_count rig.rg_async);
  Hostrt.Async.wait_all rig.rg_async;
  Alcotest.(check bool) "taskwait reaches the last completion" true
    (Simclock.now_ns rig.rg_clock >= b_done);
  Alcotest.(check int) "queue drained" 0 (Hostrt.Async.pending_count rig.rg_async)

let test_set_streams_guard () =
  let rig = make_rig () in
  submit_copy rig ~label:"a" ~reads:[] ~writes:[ r ~off:0 ~len:64 ];
  Alcotest.(check bool) "resize with work in flight is refused" true
    (match Hostrt.Async.set_streams rig.rg_async 2 with
    | exception Invalid_argument _ -> true
    | () -> false);
  Hostrt.Async.wait_all rig.rg_async;
  Hostrt.Async.set_streams rig.rg_async 2;
  Alcotest.(check bool) "non-positive count is refused" true
    (match Hostrt.Async.create ~streams:0 rig.rg_driver with
    | exception Invalid_argument _ -> true
    | _ -> false)

exception Task_failed

let test_failed_submit_records_nothing () =
  let rig = make_rig () in
  let before = Hostrt.Async.pending_count rig.rg_async in
  (match
     Hostrt.Async.submit rig.rg_async ~label:"boom" ~reads:[] ~writes:[ r ~off:0 ~len:4 ]
       (fun _stream -> raise Task_failed)
   with
  | exception Task_failed -> ()
  | _ -> Alcotest.fail "expected the task body's exception to propagate");
  Alcotest.(check int) "no task recorded" before (Hostrt.Async.pending_count rig.rg_async)

(* -------------------- QCheck properties -------------------- *)

(* Random task soup over 8 adjacent 64-byte slots: every pair with a
   genuine RAW/WAR/WAW conflict must complete in submission order, and
   recorded dep edges must point only at genuinely conflicting tasks. *)
let access_gen =
  QCheck.Gen.(
    list_size (int_range 2 8)
      (pair (int_range 0 7) (pair (int_range 0 7) bool)))

let accesses_conflict (r1, w1) (r2, w2) =
  let overlap a b =
    List.exists (fun x -> List.exists (Hostrt.Async.ranges_overlap x) b) a
  in
  overlap w2 w1 || overlap w2 r1 || overlap r2 w1

let prop_conflicts_serialize =
  QCheck.Test.make ~name:"conflicting tasks complete in submission order" ~count:60
    (QCheck.make access_gen) (fun tasks ->
      (* large copies so nothing retires while we submit *)
      let rig = make_rig ~len:(1 lsl 20) () in
      let specs =
        List.mapi
          (fun i (rslot, (wslot, heavy)) ->
            let reads = [ r ~off:(64 * rslot) ~len:64 ] in
            let writes = [ r ~off:(64 * wslot) ~len:(if heavy then 128 else 64) ] in
            (i, reads, writes))
          tasks
      in
      List.iter
        (fun (i, reads, writes) ->
          submit_copy rig ~label:(string_of_int i) ~reads ~writes)
        specs;
      let task i = find_task rig (string_of_int i) in
      let ok_order =
        List.for_all
          (fun (i, ri, wi) ->
            List.for_all
              (fun (j, rj, wj) ->
                i >= j
                || (not (accesses_conflict (ri, wi) (rj, wj)))
                || (task i).Hostrt.Async.t_done_ns < (task j).Hostrt.Async.t_done_ns)
              specs)
          specs
      in
      let ok_edges =
        List.for_all
          (fun (j, rj, wj) ->
            List.for_all
              (fun dep_id ->
                List.exists
                  (fun (i, ri, wi) ->
                    (task i).Hostrt.Async.t_id = dep_id
                    && accesses_conflict (ri, wi) (rj, wj))
                  specs)
              (task j).Hostrt.Async.t_deps)
          specs
      in
      Hostrt.Async.wait_all rig.rg_async;
      ok_order && ok_edges && Hostrt.Async.pending_count rig.rg_async = 0)

(* ---------------------------------------------------------------- *)
(* Rt integration: dataenv hooks against the live tracker             *)
(* ---------------------------------------------------------------- *)

let pending_marker rt ~(haddr : Addr.t) ~bytes =
  (* a queued task writing [haddr .. haddr+bytes) that completes 1 ms out *)
  let dev = Hostrt.Rt.device rt 0 in
  let clock = rt.Hostrt.Rt.clock in
  Hostrt.Async.submit dev.Hostrt.Rt.dev_async ~label:"marker"
    ~reads:[] ~writes:[ Hostrt.Async.range_of_addr haddr ~bytes ]
    (fun stream -> Driver.stream_wait_until stream (Simclock.now_ns clock +. 1e6))

let test_unmap_while_pending_errors () =
  let rt = Hostrt.Rt.create () in
  let dev = Hostrt.Rt.device rt 0 in
  let h = Mem.alloc rt.Hostrt.Rt.host_mem 256 in
  ignore (Hostrt.Dataenv.map dev.Hostrt.Rt.dev_dataenv h ~bytes:256 Hostrt.Dataenv.To);
  pending_marker rt ~haddr:h ~bytes:256;
  let errored =
    match Hostrt.Dataenv.unmap dev.Hostrt.Rt.dev_dataenv h Hostrt.Dataenv.To with
    | exception Hostrt.Dataenv.Map_error _ -> true
    | () -> false
  in
  Alcotest.(check bool) "final unmap with work in flight is a Map_error" true errored;
  (* after the barrier the release goes through *)
  Hostrt.Async.wait_all dev.Hostrt.Rt.dev_async;
  Hostrt.Dataenv.unmap dev.Hostrt.Rt.dev_dataenv h Hostrt.Dataenv.To;
  Alcotest.(check int) "released after taskwait" 0
    (Hostrt.Dataenv.active_mappings dev.Hostrt.Rt.dev_dataenv)

let test_update_waits_for_pending () =
  let rt = Hostrt.Rt.create () in
  let dev = Hostrt.Rt.device rt 0 in
  let h = Mem.alloc rt.Hostrt.Rt.host_mem 256 in
  ignore (Hostrt.Dataenv.map dev.Hostrt.Rt.dev_dataenv h ~bytes:256 Hostrt.Dataenv.Tofrom);
  pending_marker rt ~haddr:h ~bytes:256;
  let marker_done = (List.hd (Hostrt.Async.pending dev.Hostrt.Rt.dev_async)).Hostrt.Async.t_done_ns in
  Hostrt.Dataenv.update_to dev.Hostrt.Rt.dev_dataenv h ~bytes:256;
  Alcotest.(check bool) "target update synced the in-flight range first" true
    (Simclock.now_ns rt.Hostrt.Rt.clock >= marker_done);
  Hostrt.Async.wait_all dev.Hostrt.Rt.dev_async;
  Hostrt.Dataenv.unmap dev.Hostrt.Rt.dev_dataenv h Hostrt.Dataenv.Tofrom

(* ---------------------------------------------------------------- *)
(* End-to-end: target nowait differential and barriers                *)
(* ---------------------------------------------------------------- *)

(* Two-tile pipeline over one reused kernel; tile bases are pointer
   locals because array sections must start at offset 0. *)
let pipeline_source ~nowait ~taskwait =
  Printf.sprintf
    {|
void pipeline(int n, int rows, int tiles, float A[], float x[], float y[])
{
  #pragma omp target data map(to: x[0:n], n, rows)
  {
    for (int t = 0; t < tiles; t++) {
      float *At = A + t * rows * n;
      float *yt = y + t * rows;
      #pragma omp target teams distribute parallel for %s num_teams(1) num_threads(128) \
          map(to: n, rows, At[0:rows*n], x[0:n]) map(from: yt[0:rows])
      for (int i = 0; i < rows; i++) {
        float s = 0.0f;
        for (int j = 0; j < n; j++)
          s += At[i * n + j] * x[j];
        yt[i] = s;
      }
    }
    %s
  }
}
|}
    (if nowait then "nowait" else "")
    (if taskwait then "#pragma omp taskwait" else "")

let run_pipeline ?(host_interp = false) ?(trace = false) ~source () =
  (* one row per device thread; the tile matvec time stays close to its
     HtoD time, so overlap has something to hide *)
  let n = 64 and rows = 128 and tiles = 3 in
  let ctx = Polybench.Harness.create () in
  Polybench.Harness.set_sampling ctx None;
  let tr = if trace then Some (Polybench.Harness.enable_trace ctx) else None in
  let total = tiles * rows in
  let a = Polybench.Harness.alloc_f32 ctx (total * n) in
  let x = Polybench.Harness.alloc_f32 ctx n in
  let y = Polybench.Harness.alloc_f32 ctx total in
  Polybench.Harness.fill_f32 ctx a (total * n) (fun i -> float_of_int ((i mod 11) - 5) *. 0.5);
  Polybench.Harness.fill_f32 ctx x n (fun i -> float_of_int ((i mod 5) - 2) *. 0.25);
  let p = Polybench.Harness.prepare_omp ~host_interp ctx ~name:"pipeline" source in
  let t =
    Polybench.Harness.measure ctx (fun () ->
        Polybench.Harness.(
          call_omp p "pipeline" [ vint n; vint rows; vint tiles; fptr a; fptr x; fptr y ]))
  in
  (t, Polybench.Harness.read_f32_array ctx y total, tr)

let test_nowait_differential () =
  let _, y_host, _ = run_pipeline ~host_interp:true ~source:(pipeline_source ~nowait:false ~taskwait:false) () in
  let t_sync, y_sync, _ = run_pipeline ~source:(pipeline_source ~nowait:false ~taskwait:false) () in
  let t_async, y_async, _ = run_pipeline ~source:(pipeline_source ~nowait:true ~taskwait:true) () in
  Alcotest.(check bool) "async replays bit-identical to sync" true (y_async = y_sync);
  Alcotest.(check bool) "both match the stripped host reference" true (y_sync = y_host);
  Alcotest.(check bool) "async is never slower than sync" true (t_async <= t_sync)

(* No explicit taskwait: the end-of-data-environment barrier alone must
   drain the queue before the enclosing unmaps release x. *)
let test_target_data_end_barrier () =
  let _, y_host, _ = run_pipeline ~host_interp:true ~source:(pipeline_source ~nowait:false ~taskwait:false) () in
  let _, y_async, tr = run_pipeline ~trace:true ~source:(pipeline_source ~nowait:true ~taskwait:false) () in
  Alcotest.(check bool) "implicit barrier preserves the results" true (y_async = y_host);
  let tr = Option.get tr in
  Alcotest.(check bool) "a taskwait event marks the barrier" true
    (Perf.Trace.count_events tr ~cat:"async" ~name:"taskwait" () >= 1);
  Alcotest.(check bool) "enqueues visible in the trace" true
    (Perf.Trace.count_events tr ~cat:"async" ~name:"enqueue" () >= 3)

(* Differential across a real Polybench kernel: offloaded nowait tiles
   vs the suite's sequential reference. *)
let test_polybench_differential () =
  let _, y_host, _ = run_pipeline ~host_interp:true ~source:(pipeline_source ~nowait:false ~taskwait:false) () in
  let _, y_async, _ = run_pipeline ~source:(pipeline_source ~nowait:true ~taskwait:true) () in
  Alcotest.(check (float 0.0)) "max relative error is exactly zero" 0.0
    (Polybench.Harness.max_rel_error y_async y_host)

let () =
  Alcotest.run "async"
    [
      ( "driver streams",
        [
          Alcotest.test_case "async copy advances only the stream" `Quick
            test_async_copy_advances_stream_only;
          Alcotest.test_case "copy engine serializes" `Quick test_copy_engine_serializes;
          Alcotest.test_case "engine backfills idle gaps" `Quick test_engine_backfills_idle_gaps;
          Alcotest.test_case "stream_wait_until is monotone" `Quick test_stream_wait_monotone;
          Alcotest.test_case "async Complete trace events" `Quick test_async_trace_events;
        ] );
      ( "dependency tracker",
        [
          Alcotest.test_case "ranges_overlap" `Quick test_ranges_overlap;
          Alcotest.test_case "independent tasks spread over streams" `Quick
            test_independent_tasks_spread;
          Alcotest.test_case "RAW serializes" `Quick test_raw_conflict;
          Alcotest.test_case "WAR serializes" `Quick test_war_conflict;
          Alcotest.test_case "WAW serializes" `Quick test_waw_conflict;
          Alcotest.test_case "read-read stays parallel" `Quick test_read_read_no_conflict;
          Alcotest.test_case "transitive chains" `Quick test_transitive_chain;
          Alcotest.test_case "wait_all and sync_range" `Quick test_wait_all_and_sync_range;
          Alcotest.test_case "set_streams guards" `Quick test_set_streams_guard;
          Alcotest.test_case "failed submit records nothing" `Quick
            test_failed_submit_records_nothing;
          QCheck_alcotest.to_alcotest prop_conflicts_serialize;
        ] );
      ( "dataenv integration",
        [
          Alcotest.test_case "unmap while pending errors" `Quick test_unmap_while_pending_errors;
          Alcotest.test_case "target update waits for pending" `Quick
            test_update_waits_for_pending;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "nowait differential (async = sync = host)" `Quick
            test_nowait_differential;
          Alcotest.test_case "target data end barrier" `Quick test_target_data_end_barrier;
          Alcotest.test_case "polybench tile differential" `Quick test_polybench_differential;
        ] );
    ]
