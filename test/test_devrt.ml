(* Device-runtime (cudadev) tests at the kernel level: the builtins are
   exercised directly from hand-written kernels, the way the generated
   code calls them. *)

open Machine
open Gpusim

let make_driver () = Driver.create (Simclock.create ())

let launch ?(grid = Simt.dim3 1) ?(block = Simt.dim3 128) (d : Driver.t) src entry args =
  let prog = Minic.Parser.parse_program src in
  (match Minic.Typecheck.check_program ~cuda:true prog with
  | [] -> ()
  | errs -> Alcotest.failf "kernel type errors: %s" (String.concat "; " errs));
  let m = Driver.load_module d (Nvcc.compile ~mode:Nvcc.Cubin ~name:entry prog) in
  Driver.launch_kernel d ~modul:m ~entry ~grid ~block ~args ~install_builtins:Devrt.Api.install ()

let read_i32 (d : Driver.t) (a : Addr.t) i =
  Int32.to_int (Bytes.get_int32_le d.Driver.global.Mem.data (a.Addr.off + (4 * i)))

let read_f32 (d : Driver.t) (a : Addr.t) i =
  Int32.float_of_bits (Bytes.get_int32_le d.Driver.global.Mem.data (a.Addr.off + (4 * i)))

let fi = Value.ptr ~ty:Cty.Int

let ff = Value.ptr ~ty:Cty.Float

let test_atomic_reductions () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d 16 in
  let src =
    {|
void k(float *facc, int *iacc)
{
  int t = threadIdx.x;
  cudadev_reduce_fadd(&facc[0], 0.5f);
  cudadev_reduce_imax(&iacc[0], t);
  cudadev_reduce_iadd(&iacc[1], 2);
}
|}
  in
  ignore (launch ~block:(Simt.dim3 64) d src "k" [ ff buf; fi (Addr.add buf 8) ]);
  Alcotest.(check bool) "fadd" true (read_f32 d buf 0 = 32.0);
  Alcotest.(check int) "imax" 63 (read_i32 d buf 2);
  Alcotest.(check int) "iadd" 128 (read_i32 d buf 3)

let test_static_chunk_partition () =
  let d = make_driver () in
  (* every thread marks its static chunk of [0, 1000); afterwards each
     iteration must be marked exactly once *)
  let n = 1000 in
  let buf = Driver.mem_alloc d (4 * n) in
  let src =
    {|
void k(int n, int *marks)
{
  int lb;
  int ub;
  cudadev_get_static_chunk(&lb, &ub, 0, n);
  int i;
  for (i = lb; i < ub; i++)
    marks[i] = marks[i] + 1;
}
|}
  in
  ignore (launch ~block:(Simt.dim3 96) d src "k" [ Value.of_int n; fi buf ]);
  for i = 0 to n - 1 do
    if read_i32 d buf i <> 1 then Alcotest.failf "iteration %d marked %d times" i (read_i32 d buf i)
  done

let test_dynamic_chunk_partition () =
  let d = make_driver () in
  let n = 777 in
  let buf = Driver.mem_alloc d (4 * n) in
  let src =
    {|
void k(int n, int *marks)
{
  int lb;
  int ub;
  while (cudadev_get_dynamic_chunk(1, 5, 0, n, &lb, &ub)) {
    int i;
    for (i = lb; i < ub; i++)
      marks[i] = marks[i] + 1;
  }
}
|}
  in
  ignore (launch ~block:(Simt.dim3 64) d src "k" [ Value.of_int n; fi buf ]);
  for i = 0 to n - 1 do
    if read_i32 d buf i <> 1 then Alcotest.failf "iteration %d marked %d times" i (read_i32 d buf i)
  done

let test_dynamic_chunk_reentry () =
  (* Two sequential visits to the same nowait-style worksharing loops
     (no cudadev_ws_barrier, which is what normally resets the shared
     counters).  Before the drain-recycling fix the second pass found
     the counters parked at [hi] and handed out zero iterations. *)
  let d = make_driver () in
  let n = 37 in
  let buf = Driver.mem_alloc d (4 * n) in
  let src =
    {|
void k(int n, int *marks)
{
  int pass;
  for (pass = 0; pass < 2; pass++) {
    int lb;
    int ub;
    while (cudadev_get_dynamic_chunk(9, 5, 0, n, &lb, &ub)) {
      int i;
      for (i = lb; i < ub; i++)
        marks[i] = marks[i] + 1;
    }
    /* a thread reaching here has drained region 9 exactly once; the
       barrier keeps fast threads from re-entering it early */
    cudadev_barrier(0);
    while (cudadev_get_guided_chunk(11, 2, 0, n, &lb, &ub)) {
      int i;
      for (i = lb; i < ub; i++)
        marks[i] = marks[i] + 10;
    }
    cudadev_barrier(0);
  }
}
|}
  in
  ignore (launch ~block:(Simt.dim3 16) d src "k" [ Value.of_int n; fi buf ]);
  for i = 0 to n - 1 do
    if read_i32 d buf i <> 22 then
      Alcotest.failf "iteration %d marked %d (expected 22: both passes, both schedules)" i
        (read_i32 d buf i)
  done

let test_dynamic_chunk_invalid_rid () =
  let d = make_driver () in
  let src =
    {|
void k(void)
{
  int lb;
  int ub;
  cudadev_get_dynamic_chunk(-1, 4, 0, 8, &lb, &ub);
}
|}
  in
  Alcotest.(check bool) "negative region id rejected" true
    (match launch ~block:(Simt.dim3 8) d src "k" [] with
    | exception Devrt.Api.Devrt_error _ -> true
    | _ -> false)

let test_distribute_across_teams () =
  let d = make_driver () in
  let n = 512 in
  let buf = Driver.mem_alloc d (4 * n) in
  let src =
    {|
void k(int n, int *marks)
{
  int dlb;
  int dub;
  cudadev_get_distribute_chunk(&dlb, &dub, 0, n);
  int lb;
  int ub;
  cudadev_get_static_chunk(&lb, &ub, dlb, dub);
  int i;
  for (i = lb; i < ub; i++)
    marks[i] = marks[i] + 1;
}
|}
  in
  ignore (launch ~grid:(Simt.dim3 8) ~block:(Simt.dim3 32) d src "k" [ Value.of_int n; fi buf ]);
  for i = 0 to n - 1 do
    if read_i32 d buf i <> 1 then Alcotest.failf "iteration %d marked %d times" i (read_i32 d buf i)
  done

let test_shmem_stack_mismatch () =
  let d = make_driver () in
  let src =
    {|
void k(void)
{
  if (threadIdx.x == 0) {
    int a = 1;
    int b = 2;
    cudadev_push_shmem(&a, sizeof(a));
    /* popping the wrong variable must be caught */
    cudadev_pop_shmem(&b, sizeof(b));
  }
}
|}
  in
  Alcotest.(check bool) "mismatched pop detected" true
    (match launch ~block:(Simt.dim3 32) d src "k" [] with
    | exception Devrt.Api.Devrt_error _ -> true
    | _ -> false)

let test_workerfunc_guard () =
  let d = make_driver () in
  let src = "void k(void) { cudadev_workerfunc(0); }" in
  Alcotest.(check bool) "workerfunc from master warp rejected" true
    (match launch ~block:(Simt.dim3 128) d src "k" [] with
    | exception Devrt.Api.Devrt_error _ -> true
    | _ -> false)

let test_b1_participants () =
  (* 128-thread block: 1 master + 96 workers *)
  let d = make_driver () in
  let buf = Driver.mem_alloc d 4 in
  let src =
    {|
void k(int *out)
{
  if (threadIdx.x == 0)
    out[0] = 1;
}
|}
  in
  ignore (launch ~block:(Simt.dim3 128) d src "k" [ fi buf ]);
  (* the arithmetic itself *)
  Alcotest.(check int) "fixed master/worker geometry" 128 Translator.Kernelgen.mw_block_threads

let test_sections_exhaustion () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d 16 in
  (* 2 sections, 8 threads: each section granted once, others get -1 *)
  let src =
    {|
void k(int *hits)
{
  int s;
  while ((s = cudadev_sections_next(7, 2)) >= 0)
    hits[s] = hits[s] + 1;
}
|}
  in
  ignore (launch ~block:(Simt.dim3 8) d src "k" [ fi buf ]);
  Alcotest.(check int) "section 0 once" 1 (read_i32 d buf 0);
  Alcotest.(check int) "section 1 once" 1 (read_i32 d buf 1)

let () =
  Alcotest.run "devrt"
    [
      ( "reductions",
        [ Alcotest.test_case "atomic reduction builtins" `Quick test_atomic_reductions ] );
      ( "worksharing",
        [
          Alcotest.test_case "static chunk partition" `Quick test_static_chunk_partition;
          Alcotest.test_case "dynamic chunk partition" `Quick test_dynamic_chunk_partition;
          Alcotest.test_case "nowait loop re-entry (counter recycling)" `Quick
            test_dynamic_chunk_reentry;
          Alcotest.test_case "invalid region id" `Quick test_dynamic_chunk_invalid_rid;
          Alcotest.test_case "distribute across teams" `Quick test_distribute_across_teams;
          Alcotest.test_case "sections exhaustion" `Quick test_sections_exhaustion;
        ] );
      ( "protocol guards",
        [
          Alcotest.test_case "shared-memory stack mismatch" `Quick test_shmem_stack_mismatch;
          Alcotest.test_case "workerfunc guard" `Quick test_workerfunc_guard;
          Alcotest.test_case "master/worker geometry" `Quick test_b1_participants;
        ] );
    ]
