(* SIMT engine tests: thread identities, barriers, shared memory,
   atomics, divergence accounting, deadlock detection. *)

open Machine
open Gpusim

let make_driver () = Driver.create (Simclock.create ())

(* Compile a CUDA-style kernel source and launch it. *)
let launch ?(grid = Simt.dim3 1) ?(block = Simt.dim3 32) (d : Driver.t) src entry args =
  let prog = Minic.Parser.parse_program src in
  (match Minic.Typecheck.check_program ~cuda:true prog with
  | [] -> ()
  | errs -> Alcotest.failf "kernel type errors: %s" (String.concat "; " errs));
  let artifact = Nvcc.compile ~mode:Nvcc.Cubin ~name:entry prog in
  let m = Driver.load_module d artifact in
  Driver.launch_kernel d ~modul:m ~entry ~grid ~block ~args ~install_builtins:Devrt.Api.install ()

let read_i32 (d : Driver.t) (a : Addr.t) i =
  Int32.to_int (Bytes.get_int32_le d.Driver.global.Mem.data (a.Addr.off + (4 * i)))

let fi = Value.ptr ~ty:Cty.Int

let test_thread_identity () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 128) in
  let src =
    {|
void k(int *out)
{
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  out[tid] = tid * 3;
}
|}
  in
  ignore (launch ~grid:(Simt.dim3 4) ~block:(Simt.dim3 32) d src "k" [ fi buf ]);
  for i = 0 to 127 do
    Alcotest.(check int) (Printf.sprintf "out[%d]" i) (i * 3) (read_i32 d buf i)
  done

let test_dim_variables () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 8) in
  let src =
    {|
void k(int *out)
{
  if (threadIdx.x == 0 && threadIdx.y == 0 && blockIdx.x == 0 && blockIdx.y == 0) {
    out[0] = blockDim.x;
    out[1] = blockDim.y;
    out[2] = blockDim.z;
    out[3] = gridDim.x;
    out[4] = gridDim.y;
  }
}
|}
  in
  ignore (launch ~grid:(Simt.dim3 3 ~y:2) ~block:(Simt.dim3 8 ~y:4) d src "k" [ fi buf ]);
  Alcotest.(check (list int)) "dims" [ 8; 4; 1; 3; 2 ] (List.init 5 (read_i32 d buf))

let test_syncthreads_shared () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 64) in
  (* reverse within the block through shared memory: requires the barrier *)
  let src =
    {|
void k(int *out)
{
  __shared__ int stage[64];
  int t = threadIdx.x;
  stage[t] = t * 10;
  __syncthreads();
  out[t] = stage[63 - t];
}
|}
  in
  ignore (launch ~block:(Simt.dim3 64) d src "k" [ fi buf ]);
  for i = 0 to 63 do
    Alcotest.(check int) (Printf.sprintf "out[%d]" i) ((63 - i) * 10) (read_i32 d buf i)
  done

let test_shared_is_per_block () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 4) in
  (* each block accumulates its own shared counter; blocks must not interfere *)
  let src =
    {|
void k(int *out)
{
  __shared__ int acc;
  if (threadIdx.x == 0)
    acc = 0;
  __syncthreads();
  atomicAdd(&acc, 1);
  __syncthreads();
  if (threadIdx.x == 0)
    out[blockIdx.x] = acc;
}
|}
  in
  ignore (launch ~grid:(Simt.dim3 4) ~block:(Simt.dim3 32) d src "k" [ fi buf ]);
  Alcotest.(check (list int)) "per-block counters" [ 32; 32; 32; 32 ] (List.init 4 (read_i32 d buf))

let test_atomic_add () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d 4 in
  let src = "void k(int *c) { atomicAdd(c, 1); }" in
  ignore (launch ~grid:(Simt.dim3 8) ~block:(Simt.dim3 64) d src "k" [ fi buf ]);
  Alcotest.(check int) "all increments landed" 512 (read_i32 d buf 0)

let test_atomic_cas_lock () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d 8 in
  (* non-atomic increment guarded by the cudadev CAS lock *)
  let src =
    {|
void k(int *data)
{
  cudadev_lock(&data[0]);
  data[1] = data[1] + 1;
  cudadev_unlock(&data[0]);
}
|}
  in
  ignore (launch ~grid:(Simt.dim3 2) ~block:(Simt.dim3 64) d src "k" [ fi buf ]);
  Alcotest.(check int) "mutual exclusion" 128 (read_i32 d buf 1);
  Alcotest.(check int) "lock released" 0 (read_i32 d buf 0)

let test_device_printf () =
  let d = make_driver () in
  let src = "void k(void) { if (threadIdx.x == 0) printf(\"hello from block %d\\n\", blockIdx.x); }" in
  ignore (launch ~grid:(Simt.dim3 2) ~block:(Simt.dim3 32) d src "k" []);
  Alcotest.(check string) "device printf" "hello from block 0\nhello from block 1\n" (Driver.take_output d)

let test_deadlock_detection () =
  let d = make_driver () in
  let src =
    {|
void k(int *out)
{
  if (threadIdx.x < 16)
    cudadev_barrier(32);
  out[0] = 1;
}
|}
  in
  let buf = Driver.mem_alloc d 4 in
  Alcotest.(check bool) "deadlock raises" true
    (match launch ~block:(Simt.dim3 32) d src "k" [ fi buf ] with
    | exception Simt.Simt_error _ -> true
    | _ -> false)

let test_mismatched_barrier () =
  let d = make_driver () in
  let src =
    {|
void k(void)
{
  if (threadIdx.x < 16)
    cudadev_barrier(16);
  else
    cudadev_barrier(32);
}
|}
  in
  Alcotest.(check bool) "mismatched counts raise" true
    (match launch ~block:(Simt.dim3 32) d src "k" [] with
    | exception Simt.Simt_error _ -> true
    | _ -> false)

let test_divergence_metric () =
  let d = make_driver () in
  let src =
    {|
void k(int *out)
{
  if (threadIdx.x == 0) {
    int i;
    int s = 0;
    for (i = 0; i < 1000; i++)
      s += i;
    out[0] = s;
  }
}
|}
  in
  let buf = Driver.mem_alloc d 4 in
  let stats = launch ~block:(Simt.dim3 32) d src "k" [ fi buf ] in
  Alcotest.(check bool) "one hot lane inflates divergence" true
    (stats.Driver.st_breakdown.Costmodel.bd_divergence > 10.0);
  Alcotest.(check int) "result" 499500 (read_i32 d buf 0)

let test_early_return_threads () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 64) in
  (* guarded threads return immediately; __syncthreads uses live count *)
  let src =
    {|
void k(int n, int *out)
{
  int t = threadIdx.x;
  if (t >= n)
    return;
  out[t] = 1;
  __syncthreads();
  out[t] = out[t] + 1;
}
|}
  in
  ignore (launch ~block:(Simt.dim3 64) d src "k" [ Value.of_int 40; fi buf ]);
  Alcotest.(check int) "active thread" 2 (read_i32 d buf 10);
  Alcotest.(check int) "inactive thread untouched" 0 (read_i32 d buf 63)

(* Master/worker scheme (paper §3.2): the master thread registers a
   parallel region and releases the worker warps through named barrier
   B1; participating workers join named barrier B2 after running the
   region.  The requested thread count (50) is deliberately not a
   multiple of the warp size (32), so B2's arrival count exercises the
   X = W * ceil(N/W) rounding, and the block (96 threads = 64 workers)
   leaves 14 workers idle. *)
let test_master_worker_protocol () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 64) in
  Driver.memset_d d ~dst:buf ~len:(4 * 64);
  let src =
    {|
void region(int *data)
{
  int id = omp_get_thread_num();
  data[id] = 1000 + id * omp_get_num_threads();
}

void k(int *data)
{
  int t = cudadev_thread_id();
  if (cudadev_in_masterwarp(t)) {
    if (!cudadev_is_masterthr(t))
      return;
    cudadev_register_parallel(region, data, 50);
    cudadev_exit_target();
  } else {
    cudadev_workerfunc(t);
  }
}
|}
  in
  ignore (launch ~block:(Simt.dim3 96) d src "k" [ fi buf ]);
  for id = 0 to 49 do
    Alcotest.(check int)
      (Printf.sprintf "participant %d ran the region" id)
      (1000 + (id * 50))
      (read_i32 d buf id)
  done;
  for id = 50 to 63 do
    Alcotest.(check int) (Printf.sprintf "idle worker %d untouched" id) 0 (read_i32 d buf id)
  done

(* Regression: a live-count barrier (__syncthreads) must be re-evaluated
   when a thread retires.  Threads 0..n-1 arrive at the barrier while
   all block threads are still live, so the expected count is initially
   too high; threads n.. then do real work and return without ever
   syncing.  Only the retire-path recheck can release the waiters —
   without it this deadlocks. *)
let test_retiring_thread_reevaluates_barrier () =
  let d = make_driver () in
  let buf = Driver.mem_alloc d (4 * 64) in
  Driver.memset_d d ~dst:buf ~len:(4 * 64);
  let src =
    {|
void k(int n, int *out)
{
  int t = threadIdx.x;
  if (t >= n) {
    int i;
    for (i = 0; i < 25; i++)
      out[t] = out[t] + 1;
    return;
  }
  out[t] = 1;
  __syncthreads();
  out[t] = out[t] + 1;
}
|}
  in
  ignore (launch ~block:(Simt.dim3 64) d src "k" [ Value.of_int 40; fi buf ]);
  Alcotest.(check int) "waiter released after retires" 2 (read_i32 d buf 10);
  Alcotest.(check int) "last waiter" 2 (read_i32 d buf 39);
  Alcotest.(check int) "retiring thread did its work" 25 (read_i32 d buf 50)

(* The shared-memory tree the reduction lowering emits, hand-written:
   a guarded log-step combine where fewer and fewer threads are active
   at each barrier (the others arrive idle), and a CAS-based
   cross-block publish.  Exercised at awkward block sizes — a single
   thread (the tree degenerates to the publish), a sub-warp odd size,
   and a non-power-of-two multi-warp size where [t + s < num] clips the
   top stride. *)
let test_tree_reduce_divergent_shapes () =
  let src =
    {|
void k(int *out)
{
  __shared__ int sh[128];
  int t = threadIdx.x;
  int num = blockDim.x;
  int s = 1;
  sh[t] = t + 1;
  __syncthreads();
  while (s < num)
    s = s * 2;
  s = s / 2;
  while (s > 0) {
    if (t < s && t + s < num)
      sh[t] = sh[t] + sh[t + s];
    __syncthreads();
    s = s / 2;
  }
  if (t == 0)
    cudadev_reduce_iadd(out, sh[0]);
}
|}
  in
  List.iter
    (fun (blocks, threads) ->
      let d = make_driver () in
      let buf = Driver.mem_alloc d 4 in
      let stats =
        launch ~grid:(Simt.dim3 blocks) ~block:(Simt.dim3 threads) d src "k" [ fi buf ]
      in
      let label = Printf.sprintf "%d blocks x %d threads" blocks threads in
      Alcotest.(check int) label
        (blocks * (threads * (threads + 1) / 2))
        (read_i32 d buf 0);
      (* exactly one publish atomic per block, regardless of tree shape *)
      Alcotest.(check int) (label ^ ": atomics") blocks stats.Driver.st_counters.Counters.atomics)
    [ (3, 1); (2, 7); (2, 37); (1, 100); (4, 64) ]

let test_block_limit () =
  let d = make_driver () in
  Alcotest.(check bool) "block too large" true
    (match launch ~block:(Simt.dim3 2048) d "void k(void) { }" "k" [] with
    | exception Simt.Simt_error _ -> true
    | _ -> false)

let test_host_memory_guard () =
  let d = make_driver () in
  let src = "void k(int *p) { p[0] = 1; }" in
  (* passing a host address into a kernel must be caught at access time *)
  Alcotest.(check bool) "host access from device raises" true
    (match launch d src "k" [ Value.ptr ~ty:Cty.Int { Addr.space = Addr.Host; off = 64 } ] with
    | exception Simt.Simt_error _ -> true
    | _ -> false)

let () =
  Alcotest.run "simt"
    [
      ( "identity",
        [
          Alcotest.test_case "thread ids" `Quick test_thread_identity;
          Alcotest.test_case "dim variables" `Quick test_dim_variables;
        ] );
      ( "synchronisation",
        [
          Alcotest.test_case "syncthreads + shared memory" `Quick test_syncthreads_shared;
          Alcotest.test_case "shared memory is per block" `Quick test_shared_is_per_block;
          Alcotest.test_case "atomicAdd" `Quick test_atomic_add;
          Alcotest.test_case "CAS lock mutual exclusion" `Quick test_atomic_cas_lock;
          Alcotest.test_case "early-returning threads" `Quick test_early_return_threads;
          Alcotest.test_case "retiring thread re-evaluates barrier" `Quick
            test_retiring_thread_reevaluates_barrier;
          Alcotest.test_case "tree reduce, divergent shapes" `Quick
            test_tree_reduce_divergent_shapes;
        ] );
      ( "master-worker",
        [ Alcotest.test_case "B1/B2 protocol, non-warp-multiple team" `Quick test_master_worker_protocol ] );
      ( "failure modes",
        [
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "mismatched barrier counts" `Quick test_mismatched_barrier;
          Alcotest.test_case "block size limit" `Quick test_block_limit;
          Alcotest.test_case "host-memory access guard" `Quick test_host_memory_guard;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "device printf" `Quick test_device_printf;
          Alcotest.test_case "divergence metric" `Quick test_divergence_metric;
        ] );
    ]
