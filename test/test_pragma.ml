(* OpenMP pragma parsing and validation tests. *)

open Minic

let parse_dir (line : string) : Ast.directive =
  match Lexer.tokenize ("#pragma " ^ line ^ "\nx;") |> List.map (fun s -> s.Token.tok) with
  | Token.TPRAGMA toks :: _ -> (
    match Omp.Pragma_parser.parse toks with
    | Some d -> d
    | None -> Alcotest.fail "not recognised as OpenMP")
  | _ -> Alcotest.fail "no pragma token"

let constructs line = (parse_dir line).Ast.dir_constructs

let clauses line = (parse_dir line).Ast.dir_clauses

let clist =
  Alcotest.testable
    (Fmt.of_to_string (fun cs -> String.concat " " (List.map Ast.show_construct cs)))
    ( = )

let test_constructs () =
  Alcotest.check clist "target" [ Ast.C_target ] (constructs "omp target");
  Alcotest.check clist "combined"
    [ Ast.C_target; Ast.C_teams; Ast.C_distribute; Ast.C_parallel; Ast.C_for ]
    (constructs "omp target teams distribute parallel for");
  Alcotest.check clist "parallel for" [ Ast.C_parallel; Ast.C_for ] (constructs "omp parallel for");
  Alcotest.check clist "target data" [ Ast.C_target_data ] (constructs "omp target data map(to: x)");
  Alcotest.check clist "enter data" [ Ast.C_target_enter_data ]
    (constructs "omp target enter data map(to: x)");
  Alcotest.check clist "exit data" [ Ast.C_target_exit_data ]
    (constructs "omp target exit data map(from: x)");
  Alcotest.check clist "update" [ Ast.C_target_update ] (constructs "omp target update to(x)");
  Alcotest.check clist "barrier" [ Ast.C_barrier ] (constructs "omp barrier");
  Alcotest.check clist "critical named" [ Ast.C_critical (Some "lk") ] (constructs "omp critical(lk)");
  Alcotest.check clist "critical anon" [ Ast.C_critical None ] (constructs "omp critical");
  Alcotest.check clist "declare target" [ Ast.C_declare_target ] (constructs "omp declare target");
  Alcotest.check clist "end declare target" [ Ast.C_end_declare_target ]
    (constructs "omp end declare target");
  Alcotest.check clist "sections" [ Ast.C_sections ] (constructs "omp sections");
  Alcotest.check clist "single" [ Ast.C_single ] (constructs "omp single")

let test_scalar_clauses () =
  (match clauses "omp teams num_teams(16) thread_limit(n * 2)" with
  | [ Ast.Cnum_teams (Ast.IntLit (16L, _)); Ast.Cthread_limit (Ast.Binop (Ast.Mul, _, _)) ] -> ()
  | cs -> Alcotest.failf "got %s" (String.concat ";" (List.map Ast.show_clause cs)));
  (match clauses "omp parallel num_threads(96) if(n > 0)" with
  | [ Ast.Cnum_threads _; Ast.Cif _ ] -> ()
  | _ -> Alcotest.fail "num_threads/if");
  (match clauses "omp for collapse(2) nowait" with
  | [ Ast.Ccollapse 2; Ast.Cnowait ] -> ()
  | _ -> Alcotest.fail "collapse/nowait");
  match clauses "omp target device(3) map(to: x)" with
  | [ Ast.Cdevice e; Ast.Cmap _ ] ->
    Alcotest.(check bool) "device id folded" true (Ast.const_eval_opt e = Some 3L)
  | cs -> Alcotest.failf "device: got %s" (String.concat ";" (List.map Ast.show_clause cs))

let test_map_clauses () =
  (match clauses "omp target map(to: a, x[0:n]) map(tofrom: y[0:n*2])" with
  | [ Ast.Cmap (Ast.Map_to, false, [ a; x ]); Ast.Cmap (Ast.Map_tofrom, false, [ y ]) ] ->
    Alcotest.(check string) "a" "a" a.Ast.mi_var;
    Alcotest.(check string) "x" "x" x.Ast.mi_var;
    Alcotest.(check int) "x sections" 1 (List.length x.Ast.mi_sections);
    (match y.Ast.mi_sections with
    | [ (Some (Ast.IntLit (0L, _)), Some (Ast.Binop (Ast.Mul, _, _))) ] -> ()
    | _ -> Alcotest.fail "y section exprs")
  | cs -> Alcotest.failf "got %s" (String.concat ";" (List.map Ast.show_clause cs)));
  (* default map type is tofrom *)
  (match clauses "omp target map(z)" with
  | [ Ast.Cmap (Ast.Map_tofrom, false, [ _ ]) ] -> ()
  | _ -> Alcotest.fail "default tofrom");
  (* the always modifier, with and without an explicit map type *)
  (match clauses "omp target map(always, to: x[0:n])" with
  | [ Ast.Cmap (Ast.Map_to, true, [ _ ]) ] -> ()
  | _ -> Alcotest.fail "always to");
  (match clauses "omp target map(always: z)" with
  | [ Ast.Cmap (Ast.Map_tofrom, true, [ _ ]) ] -> ()
  | _ -> Alcotest.fail "always default tofrom");
  (* open-lower-bound section x[:n] *)
  match clauses "omp target map(alloc: x[:n])" with
  | [ Ast.Cmap (Ast.Map_alloc, false, [ { Ast.mi_sections = [ (None, Some _) ]; _ } ]) ] -> ()
  | _ -> Alcotest.fail "open section"

let test_schedule_clauses () =
  (match clauses "omp for schedule(static)" with
  | [ Ast.Cschedule (Ast.Sch_static, None) ] -> ()
  | _ -> Alcotest.fail "static");
  (match clauses "omp for schedule(dynamic, 16)" with
  | [ Ast.Cschedule (Ast.Sch_dynamic, Some (Ast.IntLit (16L, _))) ] -> ()
  | _ -> Alcotest.fail "dynamic chunk");
  match clauses "omp for schedule(guided, c + 1)" with
  | [ Ast.Cschedule (Ast.Sch_guided, Some (Ast.Binop (Ast.Add, _, _))) ] -> ()
  | _ -> Alcotest.fail "guided expr chunk"

let test_data_sharing_clauses () =
  (match clauses "omp parallel private(a, b) firstprivate(c) shared(d)" with
  | [ Ast.Cprivate [ "a"; "b" ]; Ast.Cfirstprivate [ "c" ]; Ast.Cshared [ "d" ] ] -> ()
  | _ -> Alcotest.fail "data sharing");
  match clauses "omp parallel default(none)" with
  | [ Ast.Cdefault_none ] -> ()
  | _ -> Alcotest.fail "default none"

let test_reduction_clauses () =
  (match clauses "omp parallel for reduction(+: sum)" with
  | [ Ast.Creduction (Ast.Rd_add, [ "sum" ]) ] -> ()
  | _ -> Alcotest.fail "+ reduction");
  (match clauses "omp parallel for reduction(max: hi) reduction(*: prod)" with
  | [ Ast.Creduction (Ast.Rd_max, [ "hi" ]); Ast.Creduction (Ast.Rd_mul, [ "prod" ]) ] -> ()
  | _ -> Alcotest.fail "max/mul");
  match clauses "omp parallel reduction(&&: all)" with
  | [ Ast.Creduction (Ast.Rd_land, [ "all" ]) ] -> ()
  | _ -> Alcotest.fail "logical and"

let test_update_clauses () =
  match clauses "omp target update to(a[0:n]) from(b)" with
  | [ Ast.Cupdate_to [ _ ]; Ast.Cupdate_from [ _ ] ] -> ()
  | _ -> Alcotest.fail "update to/from"

let test_non_omp_pragma () =
  match
    Lexer.tokenize "#pragma once\nx;" |> List.map (fun s -> s.Token.tok) |> function
    | Token.TPRAGMA toks :: _ -> Omp.Pragma_parser.parse toks
    | _ -> None
  with
  | None -> ()
  | Some _ -> Alcotest.fail "non-omp pragma should be ignored"

let test_pragma_errors () =
  let fails line = match parse_dir line with exception Omp.Pragma_parser.Pragma_error _ -> true | _ -> false in
  Alcotest.(check bool) "bad clause" true (fails "omp parallel bogus_clause(1)");
  Alcotest.(check bool) "bad schedule" true (fails "omp for schedule(bogus)");
  Alcotest.(check bool) "bad map type" true (fails "omp target map(sideways: x)");
  Alcotest.(check bool) "empty directive" true (fails "omp");
  Alcotest.(check bool) "collapse non-const" true (fails "omp for collapse(n)");
  Alcotest.(check bool) "device negative" true (fails "omp target device(-1)");
  Alcotest.(check bool) "device non-const" true (fails "omp target device(n)")

(* ----------------------- validation ----------------------- *)

let diags_of line stmt_body =
  let src = Printf.sprintf "void f(int n, float x[]) { #pragma %s\n%s }" line stmt_body in
  let prog = Omp.Rewrite.rewrite_program (Parser.parse_program src) in
  Omp.Validate.check_program prog

let test_validate_ok () =
  Alcotest.(check int) "legal combined" 0
    (List.length
       (diags_of "omp target teams distribute parallel for map(tofrom: x[0:n])"
          "for (int i = 0; i < n; i++) x[i] = i;"));
  Alcotest.(check int) "legal parallel" 0
    (List.length (diags_of "omp parallel num_threads(4)" "{ x[0] = 1.0f; }"))

let test_validate_bad_combination () =
  Alcotest.(check bool) "for teams is illegal" true
    (List.length (diags_of "omp for teams" "for (int i = 0; i < n; i++) x[i] = i;") > 0)

let test_validate_clause_placement () =
  Alcotest.(check bool) "num_teams without teams" true
    (List.length (diags_of "omp parallel num_teams(4)" "{ x[0] = 1.0f; }") > 0);
  Alcotest.(check bool) "map on parallel" true
    (List.length (diags_of "omp parallel map(to: x)" "{ x[0] = 1.0f; }") > 0);
  Alcotest.(check bool) "schedule without for" true
    (List.length (diags_of "omp parallel schedule(static)" "{ x[0] = 1.0f; }") > 0)

let test_validate_duplicates () =
  Alcotest.(check bool) "duplicate num_threads" true
    (List.length (diags_of "omp parallel num_threads(2) num_threads(3)" "{ x[0] = 1.0f; }") > 0)

(* A reduction variable must not also be privatised on the same
   construct, and mapping it 'to'-only (or alloc) would discard the
   combined value before it ever reaches the host. *)
let test_validate_reduction_conflicts () =
  let has_msg needle diags =
    List.exists
      (fun d ->
        let m = d.Omp.Validate.diag_msg in
        let rec find i =
          i + String.length needle <= String.length m
          && (String.sub m i (String.length needle) = needle || find (i + 1))
        in
        find 0)
      diags
  in
  let loop = "for (int i = 0; i < n; i++) x[0] += x[i];" in
  Alcotest.(check bool) "reduction + private rejected" true
    (has_msg "both reduction and private"
       (diags_of "omp target teams distribute parallel for reduction(+: n) private(n)" loop));
  Alcotest.(check bool) "reduction + firstprivate rejected" true
    (has_msg "both reduction and private"
       (diags_of "omp target teams distribute parallel for reduction(+: n) firstprivate(n)" loop));
  Alcotest.(check bool) "reduction mapped to-only rejected" true
    (has_msg "mapped 'to' only"
       (diags_of "omp target teams distribute parallel for reduction(+: n) map(to: n)" loop));
  Alcotest.(check bool) "reduction mapped alloc-only rejected" true
    (has_msg "mapped 'to' only"
       (diags_of "omp target teams distribute parallel for reduction(+: n) map(alloc: n)" loop));
  Alcotest.(check int) "reduction mapped tofrom accepted" 0
    (List.length
       (diags_of "omp target teams distribute parallel for reduction(+: n) map(tofrom: n)" loop));
  Alcotest.(check int) "reduction with no map accepted (implicit tofrom)" 0
    (List.length (diags_of "omp target teams distribute parallel for reduction(+: n)" loop));
  (* to-only on one construct is fine when a later clause writes back *)
  Alcotest.(check int) "reduction mapped to and from accepted" 0
    (List.length
       (diags_of "omp target teams distribute parallel for reduction(+: n) map(to: n) map(from: n)"
          loop))

let test_declare_target_region () =
  let src =
    "#pragma omp declare target\nint dbl(int v) { return v * 2; }\n#pragma omp end declare target\nint main(void) { return dbl(21); }"
  in
  let prog = Omp.Rewrite.rewrite_program (Parser.parse_program src) in
  let devices =
    List.filter_map (function Ast.Gfun f when f.Ast.f_device -> Some f.Ast.f_name | _ -> None) prog
  in
  Alcotest.(check (list string)) "marked device" [ "dbl" ] devices;
  Alcotest.(check int) "no leftover pragma globals" 0
    (List.length (List.filter (function Ast.Gpragma _ -> true | _ -> false) prog))

let () =
  Alcotest.run "pragma"
    [
      ( "parsing",
        [
          Alcotest.test_case "constructs" `Quick test_constructs;
          Alcotest.test_case "scalar clauses" `Quick test_scalar_clauses;
          Alcotest.test_case "map clauses" `Quick test_map_clauses;
          Alcotest.test_case "schedule clauses" `Quick test_schedule_clauses;
          Alcotest.test_case "data-sharing clauses" `Quick test_data_sharing_clauses;
          Alcotest.test_case "reduction clauses" `Quick test_reduction_clauses;
          Alcotest.test_case "update clauses" `Quick test_update_clauses;
          Alcotest.test_case "non-OpenMP pragmas kept raw" `Quick test_non_omp_pragma;
          Alcotest.test_case "errors" `Quick test_pragma_errors;
        ] );
      ( "validation",
        [
          Alcotest.test_case "well-formed directives pass" `Quick test_validate_ok;
          Alcotest.test_case "illegal combinations" `Quick test_validate_bad_combination;
          Alcotest.test_case "clause placement" `Quick test_validate_clause_placement;
          Alcotest.test_case "duplicate unique clauses" `Quick test_validate_duplicates;
          Alcotest.test_case "reduction clause conflicts" `Quick test_validate_reduction_conflicts;
          Alcotest.test_case "declare target regions" `Quick test_declare_target_region;
        ] );
    ]
