(* End-to-end tests: complete OpenMP C programs through the full
   pipeline (translate, "nvcc", load, execute on the simulated device),
   checking program outputs. *)

let run ?(binary_mode = Gpusim.Nvcc.Cubin) src =
  let config = { Ompi.default_config with binary_mode } in
  let r = Ompi.compile_and_run ~config ~name:"e2e" src in
  (r.Ompi.run_output, r.Ompi.run_exit)

let check_output ?binary_mode name expected src =
  let out, exit_code = run ?binary_mode src in
  Alcotest.(check int) (name ^ " exit") 0 exit_code;
  Alcotest.(check string) name expected out

let test_saxpy () =
  check_output "saxpy"
    "y[0]=10.000000 y[9]=28.000000\n"
    {|
int main(void)
{
  float x[10];
  float y[10];
  int i;
  for (i = 0; i < 10; i++) { x[i] = i; y[i] = 10.0f; }
  #pragma omp target map(to: x[0:10]) map(tofrom: y[0:10])
  {
    #pragma omp parallel for
    for (i = 0; i < 10; i++)
      y[i] = 2.0f * x[i] + y[i];
  }
  printf("y[0]=%f y[9]=%f\n", y[0], y[9]);
  return 0;
}
|}

let test_combined_reduction () =
  check_output "dot product via reduction"
    "dot=332833504.000000\n"  (* f32 tree-order accumulation of 332,833,500 *)
    {|
int main(void)
{
  float a[1000];
  float b[1000];
  float dot = 0.0f;
  int i;
  for (i = 0; i < 1000; i++) { a[i] = i; b[i] = i; }
  #pragma omp target teams distribute parallel for num_teams(4) num_threads(128) \
      reduction(+: dot) map(to: a[0:1000], b[0:1000]) map(tofrom: dot)
  for (i = 0; i < 1000; i++)
    dot += a[i] * b[i];
  printf("dot=%f\n", dot);
  return 0;
}
|}

let test_max_reduction () =
  check_output "max reduction" "m=996.000000\n"
    {|
int main(void)
{
  float v[200];
  float m = -1.0f;
  int i;
  for (i = 0; i < 200; i++) v[i] = (i * 17) % 998;
  #pragma omp target teams distribute parallel for reduction(max: m) \
      map(to: v[0:200]) map(tofrom: m)
  for (i = 0; i < 200; i++)
    if (v[i] > m) m = v[i];
  printf("m=%f\n", m);
  return 0;
}
|}

let test_sections () =
  check_output "sections run exactly once each" "a=1 b=1 c=1 d=1\n"
    {|
int main(void)
{
  int hits[4] = { 0, 0, 0, 0 };
  #pragma omp target map(tofrom: hits[0:4])
  {
    #pragma omp parallel num_threads(16)
    {
      #pragma omp sections
      {
        #pragma omp section
        { hits[0] = hits[0] + 1; }
        #pragma omp section
        { hits[1] = hits[1] + 1; }
        #pragma omp section
        { hits[2] = hits[2] + 1; }
        #pragma omp section
        { hits[3] = hits[3] + 1; }
      }
    }
  }
  printf("a=%d b=%d c=%d d=%d\n", hits[0], hits[1], hits[2], hits[3]);
  return 0;
}
|}

let test_single_master_critical () =
  check_output "single + critical" "single=1 count=24\n"
    {|
int main(void)
{
  int data[2] = { 0, 0 };
  #pragma omp target map(tofrom: data[0:2])
  {
    #pragma omp parallel num_threads(24)
    {
      #pragma omp single
      { data[0] = data[0] + 1; }
      #pragma omp critical
      { data[1] = data[1] + 1; }
    }
  }
  printf("single=%d count=%d\n", data[0], data[1]);
  return 0;
}
|}

let test_barrier_phases () =
  (* without the barrier, phase 2 could read unwritten values *)
  check_output "barrier separates phases" "ok=32\n"
    {|
int main(void)
{
  int stage[32];
  int ok = 0;
  #pragma omp target map(tofrom: stage[0:32], ok)
  {
    #pragma omp parallel num_threads(32)
    {
      int me = omp_get_thread_num();
      stage[me] = me * 2;
      #pragma omp barrier
      int other = stage[31 - me];
      #pragma omp critical
      { if (other == (31 - me) * 2) ok = ok + 1; }
    }
  }
  printf("ok=%d\n", ok);
  return 0;
}
|}

let test_private_firstprivate () =
  check_output "private and firstprivate" "sum=96 base=5\n"
    {|
int main(void)
{
  int base = 5;
  int out[96];
  #pragma omp target map(tofrom: out[0:96], base)
  {
    int seed = 1;
    #pragma omp parallel num_threads(96) firstprivate(seed)
    {
      seed = seed + 0;  /* private copy initialised to 1 */
      out[omp_get_thread_num()] = seed;
    }
  }
  int s = 0;
  int i;
  for (i = 0; i < 96; i++) s += out[i];
  printf("sum=%d base=%d\n", s, base);
  return 0;
}
|}

let test_target_data_consistency () =
  check_output "target data + update" "after update: 7.000000, final: 14.000000\n"
    {|
int main(void)
{
  float v[64];
  int i;
  for (i = 0; i < 64; i++) v[i] = 7.0f;
  #pragma omp target data map(tofrom: v[0:64])
  {
    /* host change is invisible to the device until target update */
    v[3] = 999.0f;
    #pragma omp target update to(v[0:64])
    v[3] = 0.0f;
    #pragma omp target update from(v[0:64])
    printf("after update: %f, ", v[0]);
    #pragma omp target teams distribute parallel for map(tofrom: v[0:64])
    for (i = 0; i < 64; i++)
      v[i] = v[i] * 2.0f;
  }
  printf("final: %f\n", v[0]);
  return 0;
}
|}

let test_enter_exit_data () =
  check_output "enter/exit data" "r=4950\n"
    {|
int acc[100];

void prepare(void)
{
  #pragma omp target enter data map(to: acc[0:100])
}

void finish(void)
{
  #pragma omp target exit data map(from: acc[0:100])
}

int main(void)
{
  int i;
  for (i = 0; i < 100; i++) acc[i] = i;
  prepare();
  #pragma omp target teams distribute parallel for map(tofrom: acc[0:100])
  for (i = 0; i < 100; i++)
    acc[i] = acc[i];
  finish();
  int r = 0;
  for (i = 0; i < 100; i++) r += acc[i];
  printf("r=%d\n", r);
  return 0;
}
|}

let test_if_clause () =
  check_output "if() host fallback" "small=10 big=200\n"
    {|
int run(int n, int x[])
{
  int i;
  #pragma omp target if(n > 50) map(to: n) map(tofrom: x[0:100])
  {
    #pragma omp parallel for
    for (i = 0; i < n; i++)
      x[i] = 2;
  }
  int s = 0;
  for (i = 0; i < n; i++) s += x[i];
  return s;
}

int main(void)
{
  int a[100];
  int b[100];
  printf("small=%d big=%d\n", run(5, a), run(100, b));
  return 0;
}
|}

let test_declare_target_function () =
  check_output "declare target function" "v=25\n"
    {|
#pragma omp declare target
int sq(int v) { return v * v; }
#pragma omp end declare target

int main(void)
{
  int out[1];
  #pragma omp target map(tofrom: out[0:1])
  {
    out[0] = sq(5);
  }
  printf("v=%d\n", out[0]);
  return 0;
}
|}

let test_collapse_correctness () =
  check_output "collapse(2) covers the full space" "sum=4950 corners=0 99\n"
    {|
int main(void)
{
  int m[100];
  int i;
  int j;
  #pragma omp target teams distribute parallel for collapse(2) num_teams(5) num_threads(32) \
      map(tofrom: m[0:100])
  for (i = 0; i < 10; i++)
    for (j = 0; j < 10; j++)
      m[i * 10 + j] = i * 10 + j;
  int s = 0;
  for (i = 0; i < 100; i++) s += m[i];
  printf("sum=%d corners=%d %d\n", s, m[0], m[99]);
  return 0;
}
|}

let test_ptx_mode_same_result () =
  check_output ~binary_mode:Gpusim.Nvcc.Ptx "ptx mode" "y=42.000000\n"
    {|
int main(void)
{
  float y[1];
  y[0] = 21.0f;
  #pragma omp target teams distribute parallel for map(tofrom: y[0:1])
  for (int i = 0; i < 1; i++)
    y[i] = y[i] * 2.0f;
  printf("y=%f\n", y[0]);
  return 0;
}
|}

let test_multiple_targets_share_env () =
  check_output "two targets, one data region" "v=6.000000\n"
    {|
int main(void)
{
  float v[32];
  int i;
  for (i = 0; i < 32; i++) v[i] = 1.0f;
  #pragma omp target data map(tofrom: v[0:32])
  {
    #pragma omp target teams distribute parallel for map(tofrom: v[0:32])
    for (i = 0; i < 32; i++)
      v[i] = v[i] + 2.0f;
    #pragma omp target teams distribute parallel for map(tofrom: v[0:32])
    for (i = 0; i < 32; i++)
      v[i] = v[i] * 2.0f;
  }
  printf("v=%f\n", v[0]);
  return 0;
}
|}

let test_dynamic_schedule_e2e () =
  check_output "dynamic schedule correctness" "total=499500\n"
    {|
int main(void)
{
  int v[1000];
  int i;
  #pragma omp target map(tofrom: v[0:1000])
  {
    #pragma omp parallel num_threads(64)
    {
      #pragma omp for schedule(dynamic, 7)
      for (i = 0; i < 1000; i++)
        v[i] = i;
    }
  }
  int t = 0;
  for (i = 0; i < 1000; i++) t += v[i];
  printf("total=%d\n", t);
  return 0;
}
|}

let test_guided_schedule_e2e () =
  check_output "guided schedule correctness" "total=499500\n"
    {|
int main(void)
{
  int v[1000];
  int i;
  #pragma omp target map(tofrom: v[0:1000])
  {
    #pragma omp parallel num_threads(64)
    {
      #pragma omp for schedule(guided, 4)
      for (i = 0; i < 1000; i++)
        v[i] = i;
    }
  }
  int t = 0;
  for (i = 0; i < 1000; i++) t += v[i];
  printf("total=%d\n", t);
  return 0;
}
|}

let test_device_api_queries () =
  check_output "device API inside kernel" "teams=4 threads=32 dev=0 host=1\n"
    {|
int main(void)
{
  int info[4];
  #pragma omp target teams distribute parallel for num_teams(4) num_threads(32) \
      map(tofrom: info[0:4])
  for (int i = 0; i < 4; i++) {
    if (i == 0) {
      info[0] = omp_get_num_teams();
      info[1] = omp_get_num_threads();
      info[2] = omp_is_initial_device();
    }
  }
  info[3] = omp_is_initial_device();
  printf("teams=%d threads=%d dev=%d host=%d\n", info[0], info[1], info[2], info[3]);
  return 0;
}
|}


let test_atomic_update () =
  check_output "atomic update" "acc=96.000000 cnt=96\n"
    {|
int main(void)
{
  float acc[1];
  int cnt[1];
  acc[0] = 0.0f;
  cnt[0] = 0;
  #pragma omp target map(tofrom: acc[0:1], cnt[0:1])
  {
    #pragma omp parallel num_threads(96)
    {
      #pragma omp atomic
      acc[0] += 1.0f;
      #pragma omp atomic update
      cnt[0] = cnt[0] + 1;
    }
  }
  printf("acc=%f cnt=%d\n", acc[0], cnt[0]);
  return 0;
}
|}

let test_atomic_in_combined () =
  check_output "atomic histogram in combined kernel" "h=125 125 125 125\n"
    {|
int main(void)
{
  int hist[4] = { 0, 0, 0, 0 };
  #pragma omp target teams distribute parallel for num_teams(4) num_threads(125) \
      map(tofrom: hist[0:4])
  for (int i = 0; i < 500; i++) {
    #pragma omp atomic
    hist[i % 4] += 1;
  }
  printf("h=%d %d %d %d\n", hist[0], hist[1], hist[2], hist[3]);
  return 0;
}
|}

let test_thread_limit () =
  check_output "thread_limit caps the team" "threads=64\n"
    {|
int main(void)
{
  int seen[1];
  #pragma omp target teams distribute parallel for num_teams(1) num_threads(256) \
      thread_limit(64) map(tofrom: seen[0:1])
  for (int i = 0; i < 64; i++) {
    if (i == 0)
      seen[0] = omp_get_num_threads();
  }
  printf("threads=%d\n", seen[0]);
  return 0;
}
|}


let test_collapse3 () =
  check_output "collapse(3)" "sum=2016 last=63\n"
    {|
int main(void)
{
  int v[64];
  int i;
  int j;
  int k;
  #pragma omp target teams distribute parallel for collapse(3) num_teams(2) num_threads(32) \
      map(tofrom: v[0:64])
  for (i = 0; i < 4; i++)
    for (j = 0; j < 4; j++)
      for (k = 0; k < 4; k++)
        v[i * 16 + j * 4 + k] = i * 16 + j * 4 + k;
  int s = 0;
  for (i = 0; i < 64; i++) s += v[i];
  printf("sum=%d last=%d\n", s, v[63]);
  return 0;
}
|}

let test_nested_target_data () =
  check_output "nested target data regions" "x=4.000000\n"
    {|
int main(void)
{
  float x[8];
  int i;
  for (i = 0; i < 8; i++) x[i] = 1.0f;
  #pragma omp target data map(tofrom: x[0:8])
  {
    #pragma omp target data map(tofrom: x[0:8])
    {
      #pragma omp target teams distribute parallel for map(tofrom: x[0:8])
      for (i = 0; i < 8; i++)
        x[i] = x[i] * 2.0f;
    }
    #pragma omp target teams distribute parallel for map(tofrom: x[0:8])
    for (i = 0; i < 8; i++)
      x[i] = x[i] * 2.0f;
  }
  printf("x=%f\n", x[3]);
  return 0;
}
|}

let test_named_critical () =
  check_output "two named critical sections" "a=48 b=48\n"
    {|
int main(void)
{
  int c[2] = { 0, 0 };
  #pragma omp target map(tofrom: c[0:2])
  {
    #pragma omp parallel num_threads(48)
    {
      #pragma omp critical(left)
      { c[0] = c[0] + 1; }
      #pragma omp critical(right)
      { c[1] = c[1] + 1; }
    }
  }
  printf("a=%d b=%d\n", c[0], c[1]);
  return 0;
}
|}

let test_min_mul_reductions () =
  check_output "min and * reductions" "min=2.000000 prod=720.000000\n"
    {|
int main(void)
{
  float v[6];
  int i;
  for (i = 0; i < 6; i++) v[i] = i + 1.0f;
  v[0] = 2.0f;
  v[3] = 2.0f;
  float lo = 1.0e38f;
  float prod = 2.0f;
  #pragma omp target teams distribute parallel for reduction(min: lo) \
      map(to: v[0:6]) map(tofrom: lo)
  for (i = 0; i < 6; i++)
    if (v[i] < lo) lo = v[i];
  #pragma omp target teams distribute parallel for reduction(*: prod) \
      map(to: v[0:6]) map(tofrom: prod)
  for (i = 1; i < 6; i++)
    prod *= v[i];
  printf("min=%f prod=%f\n", lo, prod);
  return 0;
}
|}

let test_master_region () =
  check_output "master construct" "done=1 total=12\n"
    {|
int main(void)
{
  int d[2] = { 0, 0 };
  #pragma omp target map(tofrom: d[0:2])
  {
    #pragma omp parallel num_threads(12)
    {
      #pragma omp master
      { d[0] = d[0] + 1; }
      #pragma omp critical
      { d[1] = d[1] + 1; }
    }
  }
  printf("done=%d total=%d\n", d[0], d[1]);
  return 0;
}
|}

let test_nowait_single () =
  check_output "single nowait" "v=1\n"
    {|
int main(void)
{
  int v[1] = { 0 };
  #pragma omp target map(tofrom: v[0:1])
  {
    #pragma omp parallel num_threads(8)
    {
      #pragma omp single nowait
      { v[0] = v[0] + 1; }
    }
  }
  printf("v=%d\n", v[0]);
  return 0;
}
|}


(* property: the combined construct fills an iteration space completely
   for arbitrary sizes, schedules and geometry *)
let prop_combined_covers_space =
  QCheck.Test.make ~name:"combined construct covers the space (any schedule/geometry)" ~count:20
    QCheck.(
      triple (int_range 1 400)
        (oneofl [ "static"; "static, 3"; "dynamic, 5"; "guided, 2" ])
        (pair (int_range 1 6) (oneofl [ 32; 64; 128; 256 ])))
    (fun (n, sched, (teams, threads)) ->
      let src =
        Printf.sprintf
          {|
int main(void)
{
  int v[%d];
  int i;
  #pragma omp target teams distribute parallel for num_teams(%d) num_threads(%d) \
      schedule(%s) map(tofrom: v[0:%d])
  for (i = 0; i < %d; i++)
    v[i] = i + 1;
  int bad = 0;
  for (i = 0; i < %d; i++)
    if (v[i] != i + 1) bad = bad + 1;
  printf("%%d", bad);
  return 0;
}
|}
          n teams threads sched n n n
      in
      let out, exit_code = run src in
      exit_code = 0 && out = "0")


(* JIT disk cache (paper §3.3): in PTX mode the first launch of a kernel
   JIT-compiles it; a later process on the same machine finds the
   compiled binary in the driver's disk cache and skips the JIT step.
   Within one process a relaunched kernel is simply module-resident.
   All three behaviours are asserted from the launch trace. *)
let test_jit_cache_across_instances () =
  let src =
    {|
int main(void)
{
  float y[8];
  int i;
  int r;
  for (i = 0; i < 8; i++) y[i] = 1.0f;
  for (r = 0; r < 2; r++) {
    #pragma omp target teams distribute parallel for map(tofrom: y[0:8])
    for (i = 0; i < 8; i++)
      y[i] = y[i] * 2.0f;
  }
  printf("y=%f\n", y[0]);
  return 0;
}
|}
  in
  let config = { Ompi.default_config with binary_mode = Gpusim.Nvcc.Ptx } in
  let compiled = Ompi.compile ~config ~name:"jitcache" src in
  let count tr ~name = Perf.Trace.count_events tr ~cat:"jit" ~name () in
  (* cold start: the PTX is JIT-compiled exactly once, and the second
     launch of the same kernel finds the module already resident *)
  let inst1 = Ompi.load ~config ~trace:true compiled in
  let r1 = Ompi.run inst1 () in
  Alcotest.(check string) "cold output" "y=4.000000\n" r1.Ompi.run_output;
  let tr1 = Option.get inst1.Ompi.i_trace in
  Alcotest.(check int) "cold run JIT-compiles once" 1 (count tr1 ~name:"jit_compile");
  Alcotest.(check int) "cold run has no cache hit" 0 (count tr1 ~name:"jit_cache_hit");
  Alcotest.(check int) "relaunch is module-resident" 1
    (Perf.Trace.count_events tr1 ~cat:"load" ~name:"module_resident" ());
  (* warm start: a new runtime instance on the same "machine" — carry the
     driver's disk cache over, as a second process would see it *)
  let inst2 = Ompi.load ~config ~trace:true compiled in
  let driver_of inst = (Hostrt.Rt.device inst.Ompi.i_rt 0).Hostrt.Rt.dev_driver in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace (driver_of inst2).Gpusim.Driver.jit_cache k v)
    (driver_of inst1).Gpusim.Driver.jit_cache;
  let r2 = Ompi.run inst2 () in
  Alcotest.(check string) "warm output" "y=4.000000\n" r2.Ompi.run_output;
  let tr2 = Option.get inst2.Ompi.i_trace in
  Alcotest.(check int) "warm run hits the disk cache" 1 (count tr2 ~name:"jit_cache_hit");
  Alcotest.(check int) "warm run does not recompile" 0 (count tr2 ~name:"jit_compile");
  (* and the cache makes module load measurably cheaper *)
  let load_ns tr =
    List.filter_map
      (fun (s : Perf.Trace.span) -> if s.sp_name = "module_load" then Some s.sp_dur_ns else None)
      (Perf.Trace.spans tr)
  in
  match (load_ns tr1, load_ns tr2) with
  | [ cold ], [ warm ] ->
    Alcotest.(check bool)
      (Printf.sprintf "cached load is cheaper (%.0f ns < %.0f ns)" warm cold)
      true (warm < cold)
  | l1, l2 ->
    Alcotest.failf "expected one module_load span per run, got %d and %d" (List.length l1)
      (List.length l2)

let test_dist_schedule () =
  check_output "dist_schedule(static, c) covers the space" "sum=19900 first=0 last=199\n"
    {|
int main(void)
{
  int v[200];
  int i;
  #pragma omp target teams distribute parallel for num_teams(3) num_threads(32) \
      dist_schedule(static, 16) map(tofrom: v[0:200])
  for (i = 0; i < 200; i++)
    v[i] = i;
  int s = 0;
  for (i = 0; i < 200; i++) s += v[i];
  printf("sum=%d first=%d last=%d\n", s, v[0], v[199]);
  return 0;
}
|}

let () =
  Alcotest.run "endtoend"
    [
      ( "offloading",
        [
          Alcotest.test_case "saxpy (Fig.1)" `Quick test_saxpy;
          Alcotest.test_case "combined + reduction" `Quick test_combined_reduction;
          Alcotest.test_case "max reduction" `Quick test_max_reduction;
          Alcotest.test_case "collapse correctness" `Quick test_collapse_correctness;
          Alcotest.test_case "PTX binary mode" `Quick test_ptx_mode_same_result;
          Alcotest.test_case "device API queries" `Quick test_device_api_queries;
          Alcotest.test_case "JIT cache across instances" `Quick test_jit_cache_across_instances;
        ] );
      ( "device worksharing",
        [
          Alcotest.test_case "sections" `Quick test_sections;
          Alcotest.test_case "single + critical" `Quick test_single_master_critical;
          Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
          Alcotest.test_case "private/firstprivate" `Quick test_private_firstprivate;
          Alcotest.test_case "dynamic schedule" `Quick test_dynamic_schedule_e2e;
          Alcotest.test_case "atomic update" `Quick test_atomic_update;
          Alcotest.test_case "atomic in combined kernel" `Quick test_atomic_in_combined;
          Alcotest.test_case "thread_limit" `Quick test_thread_limit;
          Alcotest.test_case "collapse(3)" `Quick test_collapse3;
          Alcotest.test_case "named critical" `Quick test_named_critical;
          Alcotest.test_case "min and * reductions" `Quick test_min_mul_reductions;
          Alcotest.test_case "master construct" `Quick test_master_region;
          Alcotest.test_case "single nowait" `Quick test_nowait_single;
          Alcotest.test_case "dist_schedule(static, c)" `Quick test_dist_schedule;
          Alcotest.test_case "guided schedule" `Quick test_guided_schedule_e2e;
          QCheck_alcotest.to_alcotest prop_combined_covers_space;
        ] );
      ( "data environment",
        [
          Alcotest.test_case "target data + update" `Quick test_target_data_consistency;
          Alcotest.test_case "enter/exit data" `Quick test_enter_exit_data;
          Alcotest.test_case "if clause fallback" `Quick test_if_clause;
          Alcotest.test_case "declare target function" `Quick test_declare_target_function;
          Alcotest.test_case "multiple targets share env" `Quick test_multiple_targets_share_env;
          Alcotest.test_case "nested target data" `Quick test_nested_target_data;
        ] );
    ]
