(* Cost-model and reporting tests. *)

open Gpusim

let spec = Spec.jetson_nano_2gb

let base_counters () =
  let c = Counters.create spec in
  c.Counters.blocks_total <- 1;
  c.Counters.blocks_executed <- 1;
  c

let time c = (Costmodel.kernel_time spec c ~block_threads:256 ~total_blocks:64 ()).Costmodel.bd_time_ns

let test_monotone_in_instructions () =
  let c1 = base_counters () in
  c1.Counters.warp_inst_sum <- 1000.0;
  c1.Counters.thread_inst_sum <- 32000.0;
  c1.Counters.classes.Counters.arith <- 32000;
  let c2 = base_counters () in
  c2.Counters.warp_inst_sum <- 2000.0;
  c2.Counters.thread_inst_sum <- 64000.0;
  c2.Counters.classes.Counters.arith <- 64000;
  Alcotest.(check bool) "more instructions, more time" true (time c2 > time c1)

let test_barrier_cost () =
  let c1 = base_counters () in
  let c2 = base_counters () in
  c2.Counters.barrier_warp_arrivals <- 1000;
  Alcotest.(check bool) "barriers cost cycles" true (time c2 > time c1)

let test_divergence_ratio () =
  let c = base_counters () in
  c.Counters.warp_inst_sum <- 1000.0;
  c.Counters.thread_inst_sum <- 8000.0 (* avg 250 per warp of 32 lanes -> divergence 4 *);
  let b = Costmodel.kernel_time spec c ~block_threads:256 ~total_blocks:64 () in
  Alcotest.(check bool) "divergence = warp-max vs average" true
    (Float.abs (b.Costmodel.bd_divergence -. 4.0) < 0.01)

let test_occupancy_penalty_scales () =
  let c = base_counters () in
  c.Counters.warp_inst_sum <- 10000.0;
  c.Counters.thread_inst_sum <- 320000.0;
  c.Counters.classes.Counters.arith <- 320000;
  let t1 = (Costmodel.kernel_time spec c ~block_threads:256 ~total_blocks:64 ()).Costmodel.bd_time_ns in
  let t2 =
    (Costmodel.kernel_time spec c ~block_threads:256 ~total_blocks:64 ~occupancy_penalty:1.18 ())
      .Costmodel.bd_time_ns
  in
  Alcotest.(check bool) "penalty multiplies" true (Float.abs ((t2 /. t1) -. 1.18) < 1e-6)

let test_latency_floor_low_occupancy () =
  (* same access volume: 1 resident warp pays latency, 64 blocks hide it *)
  let mk () =
    let c = base_counters () in
    let s =
      {
        Counters.a_loads = 100000;
        a_stores = 0;
        a_store_lo = max_int;
        a_store_hi = 0;
        a_atomic_lo = max_int;
        a_atomic_hi = 0;
        samples = Hashtbl.create 1;
      }
    in
    Hashtbl.replace c.Counters.per_alloc 0 s;
    c
  in
  let busy = Costmodel.kernel_time spec (mk ()) ~block_threads:256 ~total_blocks:64 () in
  let lonely = Costmodel.kernel_time spec (mk ()) ~block_threads:32 ~total_blocks:1 () in
  Alcotest.(check bool) "low occupancy pays memory latency" true
    (lonely.Costmodel.bd_mem_cycles > busy.Costmodel.bd_mem_cycles *. 2.0)

(* ------------------------- report ------------------------- *)

let fig () =
  {
    Perf.Report.f_id = "figX";
    f_title = "test";
    f_series =
      [
        { Perf.Report.s_label = "A"; s_points = [ (1, 1.0); (2, 2.0); (4, 4.0) ] };
        { Perf.Report.s_label = "B"; s_points = [ (1, 1.1); (2, 2.4); (4, 4.0) ] };
      ];
    f_notes = [];
  }

let test_max_gap () =
  match Perf.Report.max_relative_gap (fig ()) with
  | Some (size, gap) ->
    Alcotest.(check int) "worst size" 2 size;
    Alcotest.(check bool) "gap 20%" true (Float.abs (gap -. 0.2) < 1e-9)
  | None -> Alcotest.fail "expected a gap"

let test_csv_format () =
  let buf = Buffer.create 64 in
  let tmp = Filename.temp_file "fig" ".csv" in
  let oc = open_out tmp in
  Perf.Report.print_csv ~oc (fig ());
  close_out oc;
  let ic = open_in tmp in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check string) "header" "size,A,B" (List.nth lines 1);
  Alcotest.(check string) "row" "1,1.000000,1.100000" (List.nth lines 2)

let () =
  Alcotest.run "perf"
    [
      ( "costmodel",
        [
          Alcotest.test_case "monotone in instructions" `Quick test_monotone_in_instructions;
          Alcotest.test_case "barrier cost" `Quick test_barrier_cost;
          Alcotest.test_case "divergence ratio" `Quick test_divergence_ratio;
          Alcotest.test_case "occupancy penalty" `Quick test_occupancy_penalty_scales;
          Alcotest.test_case "latency floor at low occupancy" `Quick test_latency_floor_low_occupancy;
        ] );
      ( "report",
        [
          Alcotest.test_case "max relative gap" `Quick test_max_gap;
          Alcotest.test_case "CSV output" `Quick test_csv_format;
        ] );
    ]
