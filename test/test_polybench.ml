(* Benchmark-suite validation: every application, in both the CUDA and
   the OMPi variant, must reproduce the sequential reference bit-for-bit
   at the validation sizes; the two variants must also agree with each
   other. *)

let validate_case (app : Polybench.Suite.app) variant n () =
  match Polybench.Suite.validate app variant ~n with
  | Ok err -> Alcotest.(check bool) "within tolerance" true (err < 1e-3)
  | Error msg -> Alcotest.fail msg

let agreement_case (app : Polybench.Suite.app) () =
  let n = List.hd app.Polybench.Suite.ap_validate_sizes in
  let ctx = Polybench.Harness.create () in
  let _, cuda = app.Polybench.Suite.ap_run ctx Polybench.Harness.Cuda ~n in
  let ctx2 = Polybench.Harness.create () in
  let _, ompi = app.Polybench.Suite.ap_run ctx2 Polybench.Harness.Ompi_cudadev ~n in
  let err = Polybench.Harness.max_rel_error ompi cuda in
  Alcotest.(check bool) "CUDA and OMPi agree" true (err < 1e-5)

(* Differential test: the offloaded result must match the
   host-interpreter reference (directives stripped, run sequentially
   through Cinterp on host memory) within tolerance.  The tolerance is
   loose enough for reduction-order differences between the sequential
   host loops and the device's parallel execution. *)
let differential_case (app : Polybench.Suite.app) () =
  let n = List.hd app.Polybench.Suite.ap_validate_sizes in
  let ctx = Polybench.Harness.create () in
  let _, offloaded = app.Polybench.Suite.ap_run ctx Polybench.Harness.Ompi_cudadev ~n in
  let ctx2 = Polybench.Harness.create () in
  let _, host = app.Polybench.Suite.ap_run ctx2 Polybench.Harness.Host_interp ~n in
  Alcotest.(check int) "same result length" (Array.length host) (Array.length offloaded);
  let err = Polybench.Harness.max_rel_error offloaded host in
  if err >= 1e-3 then
    Alcotest.failf "%s n=%d: offloaded vs host-interpreter max relative error %.3e"
      app.Polybench.Suite.ap_name n err

let suite_metadata () =
  Alcotest.(check int) "six applications" 6 (List.length Polybench.Suite.all);
  Alcotest.(check int) "five extras" 5 (List.length Polybench.Suite.extras);
  let figures = List.map (fun a -> a.Polybench.Suite.ap_figure) Polybench.Suite.all in
  Alcotest.(check (list string)) "one per paper sub-figure"
    [ "fig4a"; "fig4b"; "fig4c"; "fig4d"; "fig4e"; "fig4f" ]
    (List.sort compare figures);
  List.iter
    (fun (a : Polybench.Suite.app) ->
      Alcotest.(check bool) (a.Polybench.Suite.ap_name ^ " has sizes") true
        (List.length a.Polybench.Suite.ap_sizes = 5))
    Polybench.Suite.all

let validation_tests =
  List.concat_map
    (fun (app : Polybench.Suite.app) ->
      let n = List.hd app.Polybench.Suite.ap_validate_sizes in
      [
        Alcotest.test_case
          (Printf.sprintf "%s/CUDA n=%d" app.Polybench.Suite.ap_name n)
          `Quick
          (validate_case app Polybench.Harness.Cuda n);
        Alcotest.test_case
          (Printf.sprintf "%s/OMPi n=%d" app.Polybench.Suite.ap_name n)
          `Quick
          (validate_case app Polybench.Harness.Ompi_cudadev n);
        Alcotest.test_case
          (Printf.sprintf "%s variants agree" app.Polybench.Suite.ap_name)
          `Quick (agreement_case app);
      ])
    (Polybench.Suite.all @ Polybench.Suite.extras)

let differential_tests =
  List.map
    (fun (app : Polybench.Suite.app) ->
      Alcotest.test_case
        (Printf.sprintf "%s offloaded vs host interp" app.Polybench.Suite.ap_name)
        `Quick (differential_case app))
    (Polybench.Suite.all @ Polybench.Suite.extras)

let () =
  Alcotest.run "polybench"
    [
      ("suite", [ Alcotest.test_case "metadata" `Quick suite_metadata ]);
      ("validation", validation_tests);
      ("differential", differential_tests);
    ]
