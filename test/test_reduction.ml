(* GPU tree reductions, end to end (ROADMAP item 1).

   The translator lowers [reduction(op: v)] on combined constructs as a
   per-thread private accumulator, a per-team shared-memory tree reduce
   (log-step strides from the next power of two, a team barrier between
   levels, a [tid + s < n] guard for non-power-of-two team sizes) and a
   single thread-0 atomic publishing each team's partial value into the
   mapped result.  Because the simulator schedules threads cooperatively
   and runs blocks sequentially, the whole combine order is
   deterministic — so this suite can demand *bit* equality against a
   host-side model that replays the exact same order:

   - per-op differential tests: every operator over int and float, run
     with the closure JIT and with the tree-walking interpreter
     (--no-jit), comparing output bits, per-launch dynamic counters,
     cycle costs and simulated time between the two executors, and
     output bits against the order-exact host model (0 ulps);

   - a QCheck property over random sizes x num_teams x num_threads x
     thread_limit x dist_schedule chunk geometries, asserting the same
     0-ulp match against the model at each sampled geometry;

   - a geometry-invariance property: for integer reductions (associative
     and commutative in wrapping int32 arithmetic) changing the
     geometry may move simulated time but never the result bytes;

   - a cost-shape check: the tree publishes exactly one atomic per team
     (the naive per-thread lowering would publish one per thread). *)

open Gpusim
open Polybench
open Refmath

(* ---------------------------------------------------------------- *)
(* Observation (same shape as test_jit): bits + counters + time       *)
(* ---------------------------------------------------------------- *)

let counters_summary (c : Counters.t) : string =
  let cl = c.Counters.classes in
  Printf.sprintf
    "arith=%d mul=%d div=%d branch=%d call=%d special=%d thread_sum=%.3f warp_sum=%.3f \
     warp_max=%.3f shared=%d local=%d barriers=%d atomics=%d chunks=%d blocks=%d/%d glb=%d \
     tx=%.3f"
    cl.Counters.arith cl.Counters.mul cl.Counters.div cl.Counters.branch cl.Counters.call
    cl.Counters.special c.Counters.thread_inst_sum c.Counters.warp_inst_sum
    c.Counters.warp_inst_max c.Counters.shared_accesses c.Counters.local_accesses
    c.Counters.barrier_warp_arrivals c.Counters.atomics c.Counters.chunk_grabs
    c.Counters.blocks_executed c.Counters.blocks_total
    (Counters.global_accesses c)
    (Counters.global_transactions c)

let launch_log ctx : string list =
  List.rev_map
    (fun (s : Driver.launch_stats) ->
      Printf.sprintf "%s: %s | cycles=%.6f time_ns=%.6f" s.Driver.st_entry
        (counters_summary s.Driver.st_counters)
        s.Driver.st_breakdown.Costmodel.bd_total_cycles
        s.Driver.st_breakdown.Costmodel.bd_time_ns)
    (Harness.driver ctx).Driver.launches

type obs = { ob_time : float; ob_bits : int32; ob_log : string list }

let check_executors label (jit : obs) (interp : obs) =
  Alcotest.(check int32) (label ^ ": bit-identical output (jit vs --no-jit)") interp.ob_bits
    jit.ob_bits;
  Alcotest.(check (list string))
    (label ^ ": identical launch counters and cycle costs")
    interp.ob_log jit.ob_log;
  Alcotest.(check (float 0.0)) (label ^ ": identical simulated time") interp.ob_time jit.ob_time

(* ---------------------------------------------------------------- *)
(* The operator table                                                 *)
(* ---------------------------------------------------------------- *)

let wrap32 (i : int) : int = Int32.to_int (Int32.of_int i)

(* One reduction operator: the pragma token, the C update statement the
   kernel loop runs, and the host-side mirrors of (a) that update, (b)
   the tree's pairwise combine and (c) the devrt publish atomic. *)
type fop = {
  f_tag : string;
  f_upd : string; (* C statement; [s] accumulator, [a[i]] element *)
  f_id : float;
  f_init : float;
  f_elem : int -> float;
  f_thread : float -> float -> float; (* mirrors f_upd *)
  f_comb : float -> float -> float; (* mirrors the tree combine *)
  f_pub : float -> float -> float; (* mirrors cudadev_reduce_* *)
}

let f01 cond = if cond then 1.0 else 0.0

let float_ops : fop list =
  [
    {
      f_tag = "+";
      f_upd = "s += a[i]";
      f_id = 0.0;
      f_init = 3.25;
      f_elem = (fun i -> r32 (float_of_int (((i * 7) mod 29) - 14) *. 0.0625));
      f_thread = ( +% );
      f_comb = ( +% );
      f_pub = ( +% );
    };
    {
      f_tag = "*";
      f_upd = "s *= a[i]";
      f_id = 1.0;
      f_init = 2.0;
      f_elem = (fun i -> r32 (1.0 +. (float_of_int (((i * 3) mod 7) - 3) *. 0.001)));
      f_thread = ( *% );
      f_comb = ( *% );
      f_pub = ( *% );
    };
    {
      f_tag = "max";
      f_upd = "s = s < a[i] ? a[i] : s";
      f_id = r32 (-3.0e38);
      f_init = 4.5;
      f_elem = (fun i -> r32 (float_of_int (((i * 13) mod 101) - 50) *. 0.5));
      f_thread = (fun s e -> if s < e then e else s);
      f_comb = (fun a b -> if a < b then b else a);
      f_pub = (fun a b -> Float.max a b);
    };
    {
      f_tag = "min";
      f_upd = "s = a[i] < s ? a[i] : s";
      f_id = r32 3.0e38;
      f_init = -4.5;
      f_elem = (fun i -> r32 (float_of_int (((i * 13) mod 101) - 50) *. 0.5));
      f_thread = (fun s e -> if e < s then e else s);
      f_comb = (fun a b -> if b < a then b else a);
      f_pub = (fun a b -> Float.min a b);
    };
    {
      f_tag = "&&";
      f_upd = "s = s && a[i]";
      f_id = 1.0;
      f_init = 2.0;
      f_elem = (fun i -> f01 ((i * 5) mod 89 <> 0));
      f_thread = (fun s e -> f01 (s <> 0.0 && e <> 0.0));
      f_comb = (fun a b -> f01 (a <> 0.0 && b <> 0.0));
      f_pub = (fun a b -> f01 (a <> 0.0 && b <> 0.0));
    };
    {
      f_tag = "||";
      f_upd = "s = s || a[i]";
      f_id = 0.0;
      f_init = 0.0;
      f_elem = (fun i -> f01 ((i * 5) mod 89 = 0));
      f_thread = (fun s e -> f01 (s <> 0.0 || e <> 0.0));
      f_comb = (fun a b -> f01 (a <> 0.0 || b <> 0.0));
      f_pub = (fun a b -> f01 (a <> 0.0 || b <> 0.0));
    };
  ]

type iop = {
  i_tag : string;
  i_upd : string;
  i_id : int;
  i_init : int;
  i_elem : int -> int;
  i_thread : int -> int -> int;
  i_comb : int -> int -> int;
  i_pub : int -> int -> int;
}

let i01 cond = if cond then 1 else 0

let int_ops : iop list =
  [
    {
      i_tag = "+";
      i_upd = "s += a[i]";
      i_id = 0;
      i_init = 5;
      i_elem = (fun i -> ((i * 7) mod 29) - 14);
      i_thread = (fun a b -> wrap32 (a + b));
      i_comb = (fun a b -> wrap32 (a + b));
      i_pub = (fun a b -> wrap32 (a + b));
    };
    {
      i_tag = "*";
      i_upd = "s *= a[i]";
      i_id = 1;
      i_init = 3;
      i_elem = (fun i -> (i mod 7) + 1);
      i_thread = (fun a b -> wrap32 (a * b));
      i_comb = (fun a b -> wrap32 (a * b));
      i_pub = (fun a b -> wrap32 (a * b));
    };
    {
      i_tag = "max";
      i_upd = "s = s < a[i] ? a[i] : s";
      i_id = Int32.to_int Int32.min_int;
      i_init = -7;
      i_elem = (fun i -> ((i * 13) mod 1001) - 500);
      i_thread = (fun s e -> if s < e then e else s);
      i_comb = (fun a b -> if a < b then b else a);
      i_pub = max;
    };
    {
      i_tag = "min";
      i_upd = "s = a[i] < s ? a[i] : s";
      i_id = Int32.to_int Int32.max_int;
      i_init = 9;
      i_elem = (fun i -> ((i * 13) mod 1001) - 500);
      i_thread = (fun s e -> if e < s then e else s);
      i_comb = (fun a b -> if b < a then b else a);
      i_pub = min;
    };
    {
      i_tag = "&";
      i_upd = "s = s & a[i]";
      i_id = -1;
      i_init = 0x3FFF;
      i_elem = (fun i -> 0xFFF lor ((i * 2654435761) land 0xFFFF));
      i_thread = (fun a b -> a land b);
      i_comb = (fun a b -> a land b);
      i_pub = (fun a b -> a land b);
    };
    {
      i_tag = "|";
      i_upd = "s = s | a[i]";
      i_id = 0;
      i_init = 0x1001;
      i_elem = (fun i -> (i * 2654435761) land 0xFF);
      i_thread = (fun a b -> a lor b);
      i_comb = (fun a b -> a lor b);
      i_pub = (fun a b -> a lor b);
    };
    {
      i_tag = "^";
      i_upd = "s = s ^ a[i]";
      i_id = 0;
      i_init = 0x55;
      i_elem = (fun i -> (i * 2654435761) land 0xFFFF);
      i_thread = (fun a b -> a lxor b);
      i_comb = (fun a b -> a lxor b);
      i_pub = (fun a b -> a lxor b);
    };
    {
      i_tag = "&&";
      i_upd = "s = s && a[i]";
      i_id = 1;
      i_init = 2;
      i_elem = (fun i -> if (i * 5) mod 89 <> 0 then 7 else 0);
      i_thread = (fun a b -> i01 (a <> 0 && b <> 0));
      i_comb = (fun a b -> i01 (a <> 0 && b <> 0));
      i_pub = (fun a b -> i01 (a <> 0 && b <> 0));
    };
    {
      (* note: the cross-team publish for int || is the bitwise-or
         atomic (cudadev_reduce_ior), exactly as the devrt installs it;
         partials are always 0/1 so with a 0/1 initial value this is
         indistinguishable from logical or *)
      i_tag = "||";
      i_upd = "s = s || a[i]";
      i_id = 0;
      i_init = 0;
      i_elem = (fun i -> if (i * 5) mod 89 = 0 then 3 else 0);
      i_thread = (fun a b -> i01 (a <> 0 || b <> 0));
      i_comb = (fun a b -> i01 (a <> 0 || b <> 0));
      i_pub = (fun a b -> a lor b);
    };
  ]

(* ---------------------------------------------------------------- *)
(* The order-exact host model                                         *)
(* ---------------------------------------------------------------- *)

type geom = { g_teams : int; g_nthr : int; g_tl : int; g_dist : int option }

let threads_of g = min g.g_nthr g.g_tl

(* The flat ranges thread [tid] of team [team] iterates, in order:
   the team's distribute chunk (or its block-cyclic chunk sequence
   under dist_schedule(static, c)), cut by the default static
   schedule.  Reuses the same pure Devrt.Sched arithmetic the device
   builtins call. *)
let thread_ranges ~total ~g ~team ~tid : Devrt.Sched.range list =
  let open Devrt.Sched in
  let space = { lo = 0; hi = total } in
  let nthr = threads_of g in
  match g.g_dist with
  | None -> [ static_chunk ~thread:tid ~num_threads:nthr (distribute_chunk ~team ~num_teams:g.g_teams space) ]
  | Some c ->
    let rec go k acc =
      match static_cyclic_chunk ~thread:team ~num_threads:g.g_teams ~chunk:c ~k space with
      | None -> List.rev acc
      | Some r -> go (k + 1) (static_chunk ~thread:tid ~num_threads:nthr r :: acc)
    in
    go 0 []

(* Replay the exact device order: per-thread sequential accumulation,
   per-team log-step tree from the next power of two, sequential
   cross-team publish (blocks run in linear order in the simulator). *)
let model ~identity ~init ~thread ~comb ~pub ~elem ~total ~g =
  let nthr = threads_of g in
  let result = ref init in
  for team = 0 to g.g_teams - 1 do
    let slots =
      Array.init nthr (fun tid ->
          List.fold_left
            (fun acc (r : Devrt.Sched.range) ->
              let acc = ref acc in
              for i = r.Devrt.Sched.lo to r.Devrt.Sched.hi - 1 do
                acc := thread !acc (elem i)
              done;
              !acc)
            identity
            (thread_ranges ~total ~g ~team ~tid))
    in
    let s = ref 1 in
    while !s < nthr do
      s := !s * 2
    done;
    s := !s / 2;
    while !s > 0 do
      for tid = 0 to !s - 1 do
        if tid + !s < nthr then slots.(tid) <- comb slots.(tid) slots.(tid + !s)
      done;
      s := !s / 2
    done;
    result := pub !result slots.(0)
  done;
  !result

(* ---------------------------------------------------------------- *)
(* Device runners                                                     *)
(* ---------------------------------------------------------------- *)

let dist_clause = function
  | None -> ""
  | Some c -> Printf.sprintf "dist_schedule(static, %d)" c

let float_src op dist =
  Printf.sprintf
    {|
void red_f(int n, int teams, int nthr, int tl, float init, float a[], float out[])
{
  float s = init;
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(nthr) thread_limit(tl) %s reduction(%s: s) map(to: n, a[0:n+1]) map(tofrom: s)
  for (int i = 0; i < n; i++)
    %s;
  out[0] = s;
}
|}
    (dist_clause dist) op.f_tag op.f_upd

let int_src op dist =
  Printf.sprintf
    {|
void red_i(int n, int teams, int nthr, int tl, int init, int a[], int out[])
{
  int s = init;
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(nthr) thread_limit(tl) %s reduction(%s: s) map(to: n, a[0:n+1]) map(tofrom: s)
  for (int i = 0; i < n; i++)
    %s;
  out[0] = s;
}
|}
    (dist_clause dist) op.i_tag op.i_upd

let run_float ?(host_interp = false) ~jit op ~n ~g : obs =
  let ctx = Harness.create () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  let a = Harness.alloc_f32 ctx (n + 1) and out = Harness.alloc_f32 ctx 1 in
  Harness.fill_f32 ctx a n op.f_elem;
  let p = Harness.prepare_omp ~host_interp ctx ~name:"red_f" (float_src op g.g_dist) in
  let time =
    Harness.measure ctx (fun () ->
        Harness.call_omp p "red_f"
          [
            Harness.vint n; Harness.vint g.g_teams; Harness.vint g.g_nthr; Harness.vint g.g_tl;
            Harness.vf32 op.f_init; Harness.fptr a; Harness.fptr out;
          ])
  in
  { ob_time = time; ob_bits = Int32.bits_of_float (Harness.get_f32 ctx out 0); ob_log = launch_log ctx }

let run_int ?(host_interp = false) ~jit op ~n ~g : obs =
  let ctx = Harness.create () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  let a = Harness.alloc_i32 ctx (n + 1) and out = Harness.alloc_i32 ctx 1 in
  Harness.fill_i32 ctx a n op.i_elem;
  let p = Harness.prepare_omp ~host_interp ctx ~name:"red_i" (int_src op g.g_dist) in
  let time =
    Harness.measure ctx (fun () ->
        Harness.call_omp p "red_i"
          [
            Harness.vint n; Harness.vint g.g_teams; Harness.vint g.g_nthr; Harness.vint g.g_tl;
            Harness.vint op.i_init; Harness.fptr a; Harness.fptr out;
          ])
  in
  { ob_time = time; ob_bits = Int32.of_int (Harness.get_i32 ctx out 0); ob_log = launch_log ctx }

let model_float op ~n ~g =
  model ~identity:op.f_id ~init:op.f_init ~thread:op.f_thread ~comb:op.f_comb ~pub:op.f_pub
    ~elem:op.f_elem ~total:n ~g

let model_int op ~n ~g =
  model ~identity:op.i_id ~init:op.i_init ~thread:op.i_thread ~comb:op.i_comb ~pub:op.i_pub
    ~elem:op.i_elem ~total:n ~g

(* ---------------------------------------------------------------- *)
(* Per-op differential tests                                          *)
(* ---------------------------------------------------------------- *)

(* Geometries exercising the awkward tree shapes: a non-power-of-two
   team (100 threads), a thread_limit cap (20), block-cyclic distribute
   chunks, single-thread teams, and an empty iteration space. *)
let geometries =
  [
    ("teams4x100", 257, { g_teams = 4; g_nthr = 100; g_tl = 1000; g_dist = None });
    ("dist-cyclic", 257, { g_teams = 3; g_nthr = 32; g_tl = 20; g_dist = Some 16 });
    ("1-thread-teams", 61, { g_teams = 5; g_nthr = 1; g_tl = 1000; g_dist = None });
    ("empty-space", 0, { g_teams = 2; g_nthr = 64; g_tl = 1000; g_dist = None });
  ]

let test_float_ops () =
  List.iter
    (fun op ->
      List.iter
        (fun (gname, n, g) ->
          let label = Printf.sprintf "float %s %s" op.f_tag gname in
          let jit = run_float ~jit:true op ~n ~g in
          let interp = run_float ~jit:false op ~n ~g in
          check_executors label jit interp;
          Alcotest.(check int32)
            (label ^ ": 0 ulps from the order-exact host model")
            (Int32.bits_of_float (model_float op ~n ~g))
            jit.ob_bits)
        geometries)
    float_ops

let test_int_ops () =
  List.iter
    (fun op ->
      List.iter
        (fun (gname, n, g) ->
          let label = Printf.sprintf "int %s %s" op.i_tag gname in
          let jit = run_int ~jit:true op ~n ~g in
          let interp = run_int ~jit:false op ~n ~g in
          check_executors label jit interp;
          Alcotest.(check int32)
            (label ^ ": bit-identical to the order-exact host model")
            (Int32.of_int (model_int op ~n ~g))
            jit.ob_bits)
        geometries)
    int_ops

(* The sequential host lowering (directives stripped) anchors the model:
   int reductions are associative/commutative in wrapping int32, so the
   sequential order must give the very same bytes; float sums agree
   within accumulation tolerance. *)
let test_host_anchor () =
  let _, n, g = List.nth geometries 0 in
  List.iter
    (fun op ->
      let dev = run_int ~jit:true op ~n ~g in
      let host = run_int ~host_interp:true ~jit:true op ~n ~g in
      Alcotest.(check int32)
        (Printf.sprintf "int %s: device == sequential host reference" op.i_tag)
        host.ob_bits dev.ob_bits)
    int_ops;
  List.iter
    (fun op ->
      let dev = run_float ~jit:true op ~n ~g in
      let host = run_float ~host_interp:true ~jit:true op ~n ~g in
      let d = Int32.float_of_bits dev.ob_bits and h = Int32.float_of_bits host.ob_bits in
      Alcotest.(check bool)
        (Printf.sprintf "float %s: device within 1e-3 of sequential host reference" op.f_tag)
        true
        (Float.abs (d -. h) <= 1e-3 *. Float.max 1.0 (Float.abs h)))
    float_ops

(* Cost shape: one atomic publish per team (the whole point of the
   tree), shared-memory traffic and barrier arrivals present. *)
let test_tree_cost_shape () =
  let g = { g_teams = 6; g_nthr = 96; g_tl = 1000; g_dist = None } in
  let op = List.hd float_ops in
  let ctx = Harness.create () in
  Harness.set_sampling ctx None;
  let n = 480 in
  let a = Harness.alloc_f32 ctx n and out = Harness.alloc_f32 ctx 1 in
  Harness.fill_f32 ctx a n op.f_elem;
  let p = Harness.prepare_omp ctx ~name:"red_cost" (float_src op g.g_dist) in
  Harness.call_omp p "red_f"
    [
      Harness.vint n; Harness.vint g.g_teams; Harness.vint g.g_nthr; Harness.vint g.g_tl;
      Harness.vf32 op.f_init; Harness.fptr a; Harness.fptr out;
    ];
  match (Harness.driver ctx).Driver.launches with
  | [ s ] ->
    let c = s.Driver.st_counters in
    Alcotest.(check int) "exactly one atomic per team" g.g_teams c.Counters.atomics;
    Alcotest.(check bool) "tree goes through shared memory" true (c.Counters.shared_accesses > 0);
    Alcotest.(check bool) "tree synchronises between levels" true
      (c.Counters.barrier_warp_arrivals > 0)
  | l -> Alcotest.failf "expected one launch, got %d" (List.length l)

(* ---------------------------------------------------------------- *)
(* QCheck properties                                                  *)
(* ---------------------------------------------------------------- *)

let geom_gen =
  QCheck.Gen.(
    let* teams = int_range 1 5 in
    let* nthr = int_range 1 130 in
    let* tl = int_range 1 130 in
    let* dist = oneof [ return None; map (fun c -> Some c) (int_range 1 40) ] in
    return { g_teams = teams; g_nthr = nthr; g_tl = tl; g_dist = dist })

let pp_geom g =
  Printf.sprintf "teams=%d nthr=%d tl=%d dist=%s" g.g_teams g.g_nthr g.g_tl
    (match g.g_dist with None -> "-" | Some c -> string_of_int c)

let geom_arb = QCheck.make ~print:pp_geom geom_gen

(* Any op x size x geometry: the device result equals the order-exact
   model bit for bit — 0 ulps for floats, by construction for ints. *)
let prop_matches_model =
  QCheck.Test.make ~name:"random geometry: device == order-exact model (0 ulps)" ~count:20
    QCheck.(
      triple (int_range 0 300) geom_arb
        (oneofl
           (List.map (fun o -> `F o) float_ops @ List.map (fun o -> `I o) int_ops)))
    (fun (n, g, which) ->
      match which with
      | `F op ->
        let dev = run_float ~jit:true op ~n ~g in
        dev.ob_bits = Int32.bits_of_float (model_float op ~n ~g)
      | `I op ->
        let dev = run_int ~jit:true op ~n ~g in
        dev.ob_bits = Int32.of_int (model_int op ~n ~g))

(* Integer reductions are exact: moving the geometry may move simulated
   time but never the bytes. *)
let prop_geometry_invariance =
  QCheck.Test.make ~name:"geometry invariance: int bytes never move" ~count:12
    QCheck.(triple (oneofl int_ops) geom_arb geom_arb)
    (fun (op, g1, g2) ->
      let n = 223 in
      let a = run_int ~jit:true op ~n ~g:g1 in
      let b = run_int ~jit:true op ~n ~g:g2 in
      a.ob_bits = b.ob_bits)

let () =
  Alcotest.run "reduction"
    [
      ( "differential",
        [
          Alcotest.test_case "float ops, all tree shapes" `Quick test_float_ops;
          Alcotest.test_case "int ops, all tree shapes" `Quick test_int_ops;
          Alcotest.test_case "sequential host anchor" `Quick test_host_anchor;
          Alcotest.test_case "one atomic per team" `Quick test_tree_cost_shape;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_matches_model;
          QCheck_alcotest.to_alcotest prop_geometry_invariance;
        ] );
    ]
