(* Translator tests: outlining, combined-construct lowering, the
   master/worker transformation, host-side code generation, and
   diagnostics for unsupported inputs. *)

open Minic
open Translator

let compile src = Pipeline.compile_source ~name:"t" src

let kernel_text compiled name = List.assoc name compiled.Pipeline.c_kernel_texts

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let assert_contains text needle =
  if not (contains text needle) then Alcotest.failf "expected to find %S in:\n%s" needle text

let assert_not_contains text needle =
  if contains text needle then Alcotest.failf "did not expect %S in:\n%s" needle text

(* ----------------------- combined constructs ----------------------- *)

let combined_src =
  {|
void f(int n, float a[], float b[])
{
  #pragma omp target teams distribute parallel for num_teams(8) num_threads(128) \
      map(to: n, a[0:n]) map(tofrom: b[0:n])
  for (int i = 0; i < n; i++)
    b[i] = a[i] * 2.0f;
}
|}

let test_combined_structure () =
  let c = compile combined_src in
  Alcotest.(check int) "one kernel" 1 (List.length c.Pipeline.c_kernels);
  let k = List.hd c.Pipeline.c_kernels in
  Alcotest.(check string) "kernel name" "f_kernel0" k.Kernelgen.k_entry;
  Alcotest.(check bool) "combined mode" true (k.Kernelgen.k_mode = Kernelgen.Combined);
  let text = kernel_text c "f_kernel0" in
  assert_contains text "cudadev_get_distribute_chunk";
  assert_contains text "cudadev_get_static_chunk";
  assert_not_contains text "cudadev_workerfunc";
  (* mapped read-only scalar is pre-loaded into a local *)
  assert_contains text "int _loc_n = *n;";
  (* host side maps in clause order and offloads *)
  assert_contains c.Pipeline.c_host_text "ort_map(-1, (void *)&n, sizeof(int), 1)";
  assert_contains c.Pipeline.c_host_text "ort_map(-1, (void *)b, n * sizeof(float), 3)";
  assert_contains c.Pipeline.c_host_text "ort_offload(-1, \"f_kernel0\", \"f_kernel0\", 8, 128";
  assert_contains c.Pipeline.c_host_text "ort_unmap(-1, (void *)b, 3)"

let test_collapse () =
  let c =
    compile
      {|
void g(int n, float m[])
{
  #pragma omp target teams distribute parallel for collapse(2) map(to: n) map(tofrom: m[0:n*n])
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      m[i * n + j] = i + j;
}
|}
  in
  let text = kernel_text c "g_kernel0" in
  (* index recovery for both loop variables *)
  assert_contains text "int i =";
  assert_contains text "int j =";
  (* carry-chain strength reduction instead of per-iteration div/mod *)
  assert_contains text "j >="

let test_schedules_codegen () =
  let src sched =
    Printf.sprintf
      {|
void h(int n, float x[])
{
  #pragma omp target teams distribute parallel for schedule(%s) map(to: n) map(tofrom: x[0:n])
  for (int i = 0; i < n; i++)
    x[i] = i;
}
|}
      sched
  in
  assert_contains (kernel_text (compile (src "dynamic, 4")) "h_kernel0") "cudadev_get_dynamic_chunk";
  assert_contains (kernel_text (compile (src "guided, 4")) "h_kernel0") "cudadev_get_guided_chunk";
  assert_contains (kernel_text (compile (src "static, 4")) "h_kernel0") "omp_get_num_threads";
  let static_text = kernel_text (compile (src "static")) "h_kernel0" in
  assert_not_contains static_text "cudadev_get_dynamic_chunk"

let test_reduction_codegen () =
  let c =
    compile
      {|
void dot(int n, float a[], float b[], float result)
{
  #pragma omp target teams distribute parallel for reduction(+: result) \
      map(to: n, a[0:n], b[0:n]) map(tofrom: result)
  for (int i = 0; i < n; i++)
    result += a[i] * b[i];
}
|}
  in
  let text = kernel_text c "dot_kernel0" in
  assert_contains text "float _red_result = 0";
  (* per-team shared-memory tree: slot store, barrier ladder, pairwise
     combine, and a single thread-0 atomic publish per team *)
  assert_contains text "__shared__ float _redsh_result[1024]";
  assert_contains text "_redsh_result[_rtid] = _red_result";
  assert_contains text "cudadev_barrier(0)";
  assert_contains text "if (_rtid < _rs && _rtid + _rs < _rnum)";
  assert_contains text "_redsh_result[_rtid] = _redsh_result[_rtid] + _redsh_result[_rtid + _rs]";
  assert_contains text "if (_rtid == 0)";
  assert_contains text "cudadev_reduce_fadd(result, _redsh_result[0])"

let test_default_teams () =
  let c =
    compile
      {|
void h(int n, float x[])
{
  #pragma omp target teams distribute parallel for map(to: n) map(tofrom: x[0:n])
  for (int i = 0; i < n; i++)
    x[i] = i;
}
|}
  in
  (* without num_teams the host computes ceil(total / threads) *)
  assert_contains c.Pipeline.c_host_text "(n + 128 - 1) / 128"

(* ----------------------- master/worker ----------------------- *)

let mw_src =
  {|
void f(int x[])
{
  #pragma omp target map(tofrom: x[0:96])
  {
    int i = 2;
    #pragma omp parallel num_threads(96)
    {
      x[omp_get_thread_num()] = i + 1;
    }
    printf("done %d\n", x[0]);
  }
}
|}

let test_masterworker_structure () =
  let c = compile mw_src in
  let k = List.hd c.Pipeline.c_kernels in
  Alcotest.(check bool) "master/worker mode" true (k.Kernelgen.k_mode = Kernelgen.Masterworker);
  let text = kernel_text c "f_kernel0" in
  (* the Fig. 3 skeleton *)
  assert_contains text "cudadev_in_masterwarp(_mw_thrid)";
  assert_contains text "cudadev_is_masterthr(_mw_thrid)";
  assert_contains text "cudadev_workerfunc(_mw_thrid)";
  assert_contains text "cudadev_exit_target()";
  (* shared variable staged through the shared-memory stack *)
  assert_contains text "__shared__ struct _vars_st";
  assert_contains text "cudadev_push_shmem(&i, sizeof(i))";
  assert_contains text "cudadev_pop_shmem(&i, sizeof(i))";
  assert_contains text "cudadev_register_parallel(_thrFunc";
  (* mapped array goes through getaddr *)
  assert_contains text "cudadev_getaddr(x)";
  (* thread function dereferences the vars struct *)
  assert_contains text "_vars->x";
  assert_contains text "*_vars->i";
  (* host launches a single team of 128 threads *)
  assert_contains c.Pipeline.c_host_text "\"f_kernel0\", 1, 128"

let test_worksharing_in_parallel () =
  let c =
    compile
      {|
void f(int n, float x[])
{
  #pragma omp target map(to: n) map(tofrom: x[0:n])
  {
    #pragma omp parallel
    {
      #pragma omp for
      for (int i = 0; i < n; i++)
        x[i] = i;
      #pragma omp single
      { x[0] = -1.0f; }
      #pragma omp barrier
      #pragma omp critical
      { x[1] = x[1] + 1.0f; }
    }
  }
}
|}
  in
  let text = kernel_text c "f_kernel0" in
  assert_contains text "cudadev_get_static_chunk";
  assert_contains text "omp_get_thread_num() == 0"; (* single -> if-master *)
  assert_contains text "cudadev_barrier(0)";
  assert_contains text "cudadev_lock(&_ompi_lock_default)";
  assert_contains text "cudadev_unlock(&_ompi_lock_default)";
  assert_contains text "int _ompi_lock_default;"

let test_sections_codegen () =
  let c =
    compile
      {|
void f(float x[])
{
  #pragma omp target map(tofrom: x[0:4])
  {
    #pragma omp parallel num_threads(8)
    {
      #pragma omp sections
      {
        #pragma omp section
        { x[0] = 1.0f; }
        #pragma omp section
        { x[1] = 2.0f; }
      }
    }
  }
}
|}
  in
  let text = kernel_text c "f_kernel0" in
  assert_contains text "cudadev_sections_next";
  assert_contains text "cudadev_ws_barrier"

let test_callgraph_injection () =
  let c =
    compile
      {|
float square(float v) { return v * v; }
float affine(float v) { return square(v) + 1.0f; }

void f(int n, float x[])
{
  #pragma omp target teams distribute parallel for map(to: n) map(tofrom: x[0:n])
  for (int i = 0; i < n; i++)
    x[i] = affine(x[i]);
}
|}
  in
  let text = kernel_text c "f_kernel0" in
  (* transitive call graph lands in the kernel file *)
  assert_contains text "float affine(float v)";
  assert_contains text "float square(float v)"

(* ----------------------- data directives ----------------------- *)

let test_target_data_lowering () =
  let c =
    compile
      {|
void f(int n, float x[])
{
  #pragma omp target data map(to: x[0:n]) map(to: n)
  {
    #pragma omp target teams distribute parallel for map(to: n, x[0:n])
    for (int i = 0; i < n; i++)
      x[i];
  }
}
|}
  in
  ignore c
  (* just verifying it compiles; semantics covered by end-to-end tests *)

let test_enter_exit_update () =
  let c =
    compile
      {|
void f(int n, float x[])
{
  #pragma omp target enter data map(to: x[0:n])
  #pragma omp target update from(x[0:n])
  #pragma omp target update to(x[0:n])
  #pragma omp target exit data map(from: x[0:n])
}
|}
  in
  assert_contains c.Pipeline.c_host_text "ort_map(-1, (void *)x, n * sizeof(float), 1)";
  assert_contains c.Pipeline.c_host_text "ort_update_from(-1, (void *)x, n * sizeof(float))";
  assert_contains c.Pipeline.c_host_text "ort_update_to(-1, (void *)x, n * sizeof(float))";
  assert_contains c.Pipeline.c_host_text "ort_unmap(-1, (void *)x, 2)"

let test_if_clause_fallback () =
  let c =
    compile
      {|
void f(int n, float x[])
{
  #pragma omp target if(n > 100) map(to: n) map(tofrom: x[0:n])
  {
    #pragma omp parallel for
    for (int i = 0; i < n; i++)
      x[i] = i;
  }
}
|}
  in
  (* both the offload path and a stripped sequential fallback *)
  assert_contains c.Pipeline.c_host_text "if (n > 100)";
  assert_contains c.Pipeline.c_host_text "ort_offload";
  assert_contains c.Pipeline.c_host_text "else"

let test_host_parallel_stripped () =
  let c =
    compile
      {|
int main(void)
{
  int s = 0;
  #pragma omp parallel for
  for (int i = 0; i < 10; i++)
    s += i;
  return s;
}
|}
  in
  Alcotest.(check int) "no kernels for host regions" 0 (List.length c.Pipeline.c_kernels);
  assert_not_contains c.Pipeline.c_host_text "#pragma"

(* ----------------------- diagnostics ----------------------- *)

let fails_with src =
  match compile src with
  | exception Pipeline.Translate_error _ -> true
  | exception Region.Unsupported _ -> true
  | exception Loops.Not_canonical _ -> true
  | _ -> false

let test_diagnostics () =
  Alcotest.(check bool) "unmapped pointer" true
    (fails_with
       "void f(int n, float *x) {\n#pragma omp target teams distribute parallel for map(to: n)\nfor (int i = 0; i < n; i++) x[i] = i;\n}");
  Alcotest.(check bool) "non-canonical loop" true
    (fails_with
       "void f(int n, float x[]) {\n#pragma omp target teams distribute parallel for map(to: n) map(tofrom: x[0:n])\nfor (int i = n; i != 0; i = i / 2) x[i] = i;\n}");
  Alcotest.(check bool) "nested parallel" true
    (fails_with
       "void f(float x[]) {\n#pragma omp target map(tofrom: x[0:4])\n{\n#pragma omp parallel\n{\n#pragma omp parallel\n{ x[0] = 1.0f; }\n}\n}\n}");
  Alcotest.(check bool) "call to undefined function in kernel" true
    (fails_with
       "void f(float x[]) {\n#pragma omp target map(tofrom: x[0:4])\n{ x[0] = external_thing(); }\n}")

let test_strip () =
  let prog =
    Omp.Rewrite.rewrite_program
      (Parser.parse_program
         "int main(void) {\nint s = 0;\n#pragma omp parallel\n{\n#pragma omp sections\n{\n#pragma omp section\n{ s += 1; }\n#pragma omp section\n{ s += 2; }\n}\n}\nreturn s;\n}")
  in
  let stripped = Strip.strip_program prog in
  let text = Pretty.program_to_string stripped in
  assert_not_contains text "#pragma";
  assert_contains text "s += 1";
  assert_contains text "s += 2"



let test_dist_schedule_codegen () =
  let c =
    compile
      {|
void h(int n, float x[])
{
  #pragma omp target teams distribute parallel for dist_schedule(static, 8) \
      map(to: n) map(tofrom: x[0:n])
  for (int i = 0; i < n; i++)
    x[i] = i;
}
|}
  in
  let text = kernel_text c "h_kernel0" in
  assert_contains text "cudadev_get_distribute_cyclic";
  assert_not_contains text "cudadev_get_distribute_chunk(";
  (* unsupported combination is rejected, not miscompiled *)
  Alcotest.(check bool) "dist_schedule + dynamic rejected" true
    (fails_with
       "void h(int n, float x[]) {\n#pragma omp target teams distribute parallel for dist_schedule(static, 8) schedule(dynamic, 4) map(to: n) map(tofrom: x[0:n])\nfor (int i = 0; i < n; i++) x[i] = i;\n}")

(* ----------------------- OpenCL back end ----------------------- *)

let test_opencl_backend () =
  let c = compile combined_src in
  let cl = Opencl.of_kernel (List.hd c.Pipeline.c_kernels) in
  assert_contains cl "__kernel void f_kernel0";
  assert_contains cl "__global float *a";
  assert_contains cl "ocldev_get_distribute_chunk";
  assert_contains cl "ocldev_get_static_chunk";
  assert_not_contains cl "cudadev_";
  (* master/worker kernel: shared memory becomes __local *)
  let cmw = compile mw_src in
  let clmw = Opencl.of_kernel (List.hd cmw.Pipeline.c_kernels) in
  assert_contains clmw "__local";
  assert_not_contains clmw "__shared__";
  assert_contains clmw "ocldev_register_parallel";
  assert_contains clmw "ocldev_workerfunc"

let () =
  Alcotest.run "translator"
    [
      ( "combined",
        [
          Alcotest.test_case "structure and host calls" `Quick test_combined_structure;
          Alcotest.test_case "collapse" `Quick test_collapse;
          Alcotest.test_case "schedule codegen" `Quick test_schedules_codegen;
          Alcotest.test_case "reduction codegen" `Quick test_reduction_codegen;
          Alcotest.test_case "default num_teams" `Quick test_default_teams;
          Alcotest.test_case "dist_schedule codegen" `Quick test_dist_schedule_codegen;
        ] );
      ( "masterworker",
        [
          Alcotest.test_case "Fig.3 structure" `Quick test_masterworker_structure;
          Alcotest.test_case "worksharing in parallel" `Quick test_worksharing_in_parallel;
          Alcotest.test_case "sections" `Quick test_sections_codegen;
          Alcotest.test_case "call-graph injection" `Quick test_callgraph_injection;
        ] );
      ( "data directives",
        [
          Alcotest.test_case "target data" `Quick test_target_data_lowering;
          Alcotest.test_case "enter/exit/update" `Quick test_enter_exit_update;
          Alcotest.test_case "if clause host fallback" `Quick test_if_clause_fallback;
          Alcotest.test_case "host parallel stripped" `Quick test_host_parallel_stripped;
          Alcotest.test_case "OpenCL back end" `Quick test_opencl_backend;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "unsupported constructs" `Quick test_diagnostics;
          Alcotest.test_case "sequential strip" `Quick test_strip;
        ] );
    ]
