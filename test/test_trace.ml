(* Perf.Trace / Perf.Json / Perf.Chrome_trace unit tests: ring-buffer
   retention and drop accounting, span pairing, exception safety,
   JSON round-trips and the Chrome trace-event export shape. *)

open Perf

let make ?capacity () =
  let clock = Machine.Simclock.create () in
  (clock, Trace.create ?capacity clock)

(* ---------------- ring buffer ---------------- *)

let test_emit_and_read () =
  let clock, tr = make () in
  Trace.instant tr ~cat:"a" "first";
  Machine.Simclock.advance_ns clock 500.0;
  Trace.instant tr ~args:[ ("n", Trace.Int 7) ] ~cat:"a" "second";
  Alcotest.(check int) "length" 2 (Trace.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  match Trace.events tr with
  | [ e1; e2 ] ->
    Alcotest.(check string) "oldest first" "first" e1.Trace.ev_name;
    Alcotest.(check (float 0.0)) "timestamp zero" 0.0 e1.Trace.ev_ts_ns;
    Alcotest.(check (float 0.0)) "timestamp advanced" 500.0 e2.Trace.ev_ts_ns;
    Alcotest.(check (option int)) "args preserved" (Some 7) (Trace.int_arg e2 "n")
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_ring_wraps () =
  let _, tr = make ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant tr ~args:[ ("i", Trace.Int i) ] ~cat:"w" "tick"
  done;
  Alcotest.(check int) "retains capacity" 4 (Trace.length tr);
  Alcotest.(check int) "drop count" 6 (Trace.dropped tr);
  let kept = List.filter_map (fun e -> Trace.int_arg e "i") (Trace.events tr) in
  Alcotest.(check (list int)) "newest survive, oldest first" [ 6; 7; 8; 9 ] kept

let test_clear () =
  let _, tr = make ~capacity:4 () in
  for _ = 0 to 9 do
    Trace.instant tr ~cat:"w" "tick"
  done;
  Trace.clear tr;
  Alcotest.(check int) "empty" 0 (Trace.length tr);
  Alcotest.(check int) "drops reset" 0 (Trace.dropped tr)

(* ---------------- spans ---------------- *)

let test_span_pairing () =
  let clock, tr = make () in
  Trace.begin_span tr ~args:[ ("file", Trace.Str "k1.cu") ] ~cat:"launch" "load";
  Machine.Simclock.advance_us clock 3.0;
  Trace.begin_span tr ~cat:"launch" "launch";
  Machine.Simclock.advance_us clock 2.0;
  Trace.end_span tr ~cat:"launch" "launch";
  Trace.end_span tr ~cat:"launch" "load";
  match Trace.spans tr with
  | [ inner; outer ] ->
    (* completion order: the nested span closes first *)
    Alcotest.(check string) "inner name" "launch" inner.Trace.sp_name;
    Alcotest.(check (float 0.0)) "inner duration" 2000.0 inner.Trace.sp_dur_ns;
    Alcotest.(check string) "outer name" "load" outer.Trace.sp_name;
    Alcotest.(check (float 0.0)) "outer duration" 5000.0 outer.Trace.sp_dur_ns;
    Alcotest.(check bool) "begin args kept" true
      (List.mem_assoc "file" outer.Trace.sp_args)
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

let test_unmatched_end_skipped () =
  let _, tr = make () in
  Trace.end_span tr ~cat:"x" "stray";
  Trace.begin_span tr ~cat:"x" "ok";
  Trace.end_span tr ~cat:"x" "ok";
  Alcotest.(check int) "only the matched pair" 1 (List.length (Trace.spans tr))

exception Boom

let test_with_span_on_exception () =
  let _, tr = make () in
  (match Trace.with_span tr ~cat:"launch" "load" (fun () -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "exception must propagate");
  match Trace.events tr with
  | [ b; e ] ->
    Alcotest.(check bool) "begin kind" true (b.Trace.ev_kind = Trace.Begin);
    Alcotest.(check bool) "end emitted despite raise" true (e.Trace.ev_kind = Trace.End);
    Alcotest.(check bool) "end carries the error" true (Trace.str_arg e "error" <> None)
  | evs -> Alcotest.failf "expected begin+end, got %d events" (List.length evs)

let test_find_and_count () =
  let _, tr = make () in
  Trace.instant tr ~cat:"jit" "jit_compile";
  Trace.instant tr ~cat:"jit" "jit_cache_hit";
  Trace.instant tr ~cat:"mem" "mem_alloc";
  Alcotest.(check int) "by cat" 2 (Trace.count_events tr ~cat:"jit" ());
  Alcotest.(check int) "by cat+name" 1 (Trace.count_events tr ~cat:"jit" ~name:"jit_compile" ());
  Alcotest.(check int) "by name" 1 (List.length (Trace.find_events tr ~name:"mem_alloc" ()))

(* ---------------- JSON ---------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("n", Json.Num 1536.0);
        ("f", Json.Num 2.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str "two"; Json.Bool false ]);
        ("empty", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_accessors () =
  let v =
    match Json.of_string {|{"a": [1, 2], "b": {"c": "x"}, "d": true}|} with
    | Ok v -> v
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  Alcotest.(check (option bool)) "bool" (Some true) (Option.bind (Json.member "d" v) Json.to_bool_opt);
  Alcotest.(check (option string)) "nested string" (Some "x")
    (Option.bind (Json.member "b" v) (fun b -> Option.bind (Json.member "c" b) Json.to_string_opt));
  Alcotest.(check (option int)) "list length" (Some 2)
    (Option.map List.length (Option.bind (Json.member "a" v) Json.to_list_opt));
  Alcotest.(check bool) "missing member" true (Json.member "zz" v = None)

(* ---------------- Chrome export ---------------- *)

let test_chrome_export_shape () =
  let clock, tr = make () in
  Trace.begin_span tr ~args:[ ("bytes", Trace.Int 4096) ] ~cat:"transfer" "HtoD";
  Machine.Simclock.advance_us clock 10.0;
  Trace.end_span tr ~cat:"transfer" "HtoD";
  Trace.instant tr ~cat:"jit" "jit_compile";
  Trace.counter tr ~args:[ ("chunk_grabs", Trace.Int 3) ] ~cat:"kernel" "launch_counters";
  let doc =
    match Json.of_string (Chrome_trace.to_string tr) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "export does not parse: %s" msg
  in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array"
  in
  let phases =
    List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.to_string_opt) events
  in
  Alcotest.(check (list string)) "phases in order" [ "B"; "E"; "i"; "C" ] phases;
  (* Chrome timestamps are microseconds *)
  let ts =
    List.filter_map (fun e -> Option.bind (Json.member "ts" e) Json.to_number_opt) events
  in
  Alcotest.(check (list (float 0.0))) "ts in us" [ 0.0; 10.0; 10.0; 10.0 ] ts;
  (match List.nth_opt events 0 with
  | Some b ->
    Alcotest.(check (option string)) "cat" (Some "transfer")
      (Option.bind (Json.member "cat" b) Json.to_string_opt);
    Alcotest.(check (option (float 0.0))) "args.bytes" (Some 4096.0)
      (Option.bind (Json.member "args" b) (fun a ->
           Option.bind (Json.member "bytes" a) Json.to_number_opt))
  | None -> Alcotest.fail "no events");
  match Option.bind (Json.member "otherData" doc) (Json.member "droppedEvents") with
  | Some (Json.Num 0.0) -> ()
  | _ -> Alcotest.fail "otherData.droppedEvents missing or wrong"

(* ---------------- Complete ("X") events ---------------- *)

let test_complete_events () =
  let clock, tr = make () in
  Machine.Simclock.advance_us clock 5.0;
  (* the interval may start ahead of the current clock (enqueue time) *)
  Trace.complete tr ~tid:2 ~cat:"async" ~ts_ns:9000.0 ~dur_ns:3000.0 "HtoD"
    ~args:[ ("bytes", Trace.Int 4096) ];
  (match Trace.events tr with
  | [ e ] ->
    Alcotest.(check bool) "kind" true (e.Trace.ev_kind = Trace.Complete);
    Alcotest.(check (float 0.0)) "scheduled start, not clock" 9000.0 e.Trace.ev_ts_ns;
    Alcotest.(check (float 0.0)) "duration" 3000.0 e.Trace.ev_dur_ns;
    Alcotest.(check int) "timeline id" 2 e.Trace.ev_tid
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  Alcotest.(check bool) "negative duration raises" true
    (match Trace.complete tr ~cat:"async" ~ts_ns:0.0 ~dur_ns:(-1.0) "bad" with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_complete_in_spans () =
  let clock, tr = make () in
  Trace.begin_span tr ~cat:"kernel" "launch";
  Machine.Simclock.advance_us clock 4.0;
  Trace.end_span tr ~cat:"kernel" "launch";
  Trace.complete tr ~tid:1 ~cat:"async" ~ts_ns:10000.0 ~dur_ns:2000.0 "DtoH";
  let spans = Trace.spans tr in
  Alcotest.(check int) "pair and Complete both reported" 2 (List.length spans);
  let sp = List.find (fun s -> s.Trace.sp_name = "DtoH") spans in
  Alcotest.(check (float 0.0)) "span start" 10000.0 sp.Trace.sp_ts_ns;
  Alcotest.(check (float 0.0)) "span duration" 2000.0 sp.Trace.sp_dur_ns

let test_chrome_export_complete () =
  let _, tr = make () in
  Trace.complete tr ~tid:3 ~cat:"async" ~ts_ns:2000.0 ~dur_ns:1500.0 "HtoD";
  let doc =
    match Json.of_string (Chrome_trace.to_string tr) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "export does not parse: %s" msg
  in
  let e =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
    | Some [ e ] -> e
    | _ -> Alcotest.fail "expected exactly one trace event"
  in
  let num k = Option.bind (Json.member k e) Json.to_number_opt in
  Alcotest.(check (option string)) "ph X" (Some "X")
    (Option.bind (Json.member "ph" e) Json.to_string_opt);
  (* Chrome wants microseconds *)
  Alcotest.(check (option (float 0.0))) "ts us" (Some 2.0) (num "ts");
  Alcotest.(check (option (float 0.0))) "dur us" (Some 1.5) (num "dur");
  Alcotest.(check (option (float 0.0))) "tid is the stream" (Some 3.0) (num "tid")

let test_chrome_write_file () =
  let _, tr = make () in
  Trace.instant tr ~cat:"init" "device_init";
  let path = Filename.temp_file "trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome_trace.write_file path tr;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string s with
      | Ok doc -> Alcotest.(check bool) "file parses" true (Json.member "traceEvents" doc <> None)
      | Error msg -> Alcotest.failf "written file invalid: %s" msg)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "emit and read back" `Quick test_emit_and_read;
          Alcotest.test_case "wrap-around drops oldest" `Quick test_ring_wraps;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nested pairing" `Quick test_span_pairing;
          Alcotest.test_case "unmatched end skipped" `Quick test_unmatched_end_skipped;
          Alcotest.test_case "with_span on exception" `Quick test_with_span_on_exception;
          Alcotest.test_case "find and count" `Quick test_find_and_count;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "complete events",
        [
          Alcotest.test_case "emit, read, negative dur" `Quick test_complete_events;
          Alcotest.test_case "reported as spans" `Quick test_complete_in_spans;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "event shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "Complete as ph X" `Quick test_chrome_export_complete;
          Alcotest.test_case "write_file" `Quick test_chrome_write_file;
        ] );
    ]
