(* Property tests for the device-library worksharing arithmetic: chunk
   calculators must partition iteration spaces exactly. *)

open Devrt.Sched

let range_gen = QCheck.Gen.(map2 (fun lo len -> { lo; hi = lo + len }) (int_range 0 1000) (int_range 0 5000))

let arb_range = QCheck.make ~print:show_range range_gen

let iter_list r = List.init (range_len r) (fun i -> r.lo + i)

(* distribute chunks over all teams partition the range *)
let prop_distribute_partition =
  QCheck.Test.make ~name:"distribute chunks partition the range" ~count:300
    QCheck.(pair arb_range (int_range 1 40))
    (fun (total, num_teams) ->
      let chunks = List.init num_teams (fun team -> distribute_chunk ~team ~num_teams total) in
      let covered = List.concat_map iter_list chunks in
      List.sort_uniq compare covered = iter_list total
      && List.length covered = range_len total (* no duplicates *))

let prop_static_partition =
  QCheck.Test.make ~name:"static chunks partition the team range" ~count:300
    QCheck.(pair arb_range (int_range 1 64))
    (fun (team_range, num_threads) ->
      let chunks = List.init num_threads (fun thread -> static_chunk ~thread ~num_threads team_range) in
      let covered = List.concat_map iter_list chunks in
      List.sort_uniq compare covered = iter_list team_range
      && List.length covered = range_len team_range)

let prop_static_cyclic_partition =
  QCheck.Test.make ~name:"block-cyclic chunks partition the range" ~count:200
    QCheck.(triple arb_range (int_range 1 16) (int_range 1 20))
    (fun (team_range, num_threads, chunk) ->
      let covered = ref [] in
      for thread = 0 to num_threads - 1 do
        let k = ref 0 in
        let continue_loop = ref true in
        while !continue_loop do
          match static_cyclic_chunk ~thread ~num_threads ~chunk ~k:!k team_range with
          | Some r ->
            covered := iter_list r @ !covered;
            incr k
          | None -> continue_loop := false
        done
      done;
      List.sort_uniq compare !covered = iter_list team_range
      && List.length !covered = range_len team_range)

let prop_dynamic_progress =
  QCheck.Test.make ~name:"dynamic chunks consume the whole range exactly once" ~count:300
    QCheck.(pair arb_range (int_range 1 50))
    (fun (range, chunk) ->
      let counter = ref range.lo in
      let covered = ref [] in
      let continue_loop = ref true in
      while !continue_loop do
        match dynamic_chunk ~counter:!counter ~chunk range with
        | Some r ->
          covered := iter_list r @ !covered;
          counter := r.hi
        | None -> continue_loop := false
      done;
      List.sort_uniq compare !covered = iter_list range
      && List.length !covered = range_len range)

let prop_guided_progress =
  QCheck.Test.make ~name:"guided chunks consume the whole range, sizes never below min" ~count:300
    QCheck.(triple arb_range (int_range 1 32) (int_range 1 16))
    (fun (range, num_threads, min_chunk) ->
      let counter = ref range.lo in
      let covered = ref [] in
      let ok_sizes = ref true in
      let continue_loop = ref true in
      while !continue_loop do
        match guided_chunk ~counter:!counter ~num_threads ~min_chunk range with
        | Some r ->
          (* chunk is min_chunk or more, except possibly the tail *)
          if r.hi <> range.hi && range_len r < min_chunk then ok_sizes := false;
          covered := iter_list r @ !covered;
          counter := r.hi
        | None -> continue_loop := false
      done;
      !ok_sizes
      && List.sort_uniq compare !covered = iter_list range
      && List.length !covered = range_len range)

let prop_guided_decreasing =
  QCheck.Test.make ~name:"guided chunk sizes are non-increasing" ~count:200
    QCheck.(pair (int_range 100 5000) (int_range 1 32))
    (fun (n, num_threads) ->
      let range = { lo = 0; hi = n } in
      let counter = ref 0 in
      let sizes = ref [] in
      let continue_loop = ref true in
      while !continue_loop do
        match guided_chunk ~counter:!counter ~num_threads ~min_chunk:1 range with
        | Some r ->
          sizes := range_len r :: !sizes;
          counter := r.hi
        | None -> continue_loop := false
      done;
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a <= b && non_increasing rest
        | _ -> true
      in
      (* sizes were accumulated in reverse *)
      non_increasing !sizes)

(* dynamic chunks are exactly the requested size except the tail *)
let prop_dynamic_chunk_sizes =
  QCheck.Test.make ~name:"dynamic chunks have the requested size except the tail" ~count:300
    QCheck.(pair arb_range (int_range 1 50))
    (fun (range, chunk) ->
      let counter = ref range.lo in
      let ok = ref true in
      let continue_loop = ref true in
      while !continue_loop do
        match dynamic_chunk ~counter:!counter ~chunk range with
        | Some r ->
          if r.hi <> range.hi && range_len r <> chunk then ok := false;
          if r.hi = range.hi && range_len r > chunk then ok := false;
          counter := r.hi
        | None -> continue_loop := false
      done;
      !ok)

(* the satellite property: guided sizes are monotone non-increasing for
   ANY (range, num_threads, min_chunk), not just min_chunk=1 starting at
   zero — sizes shrink towards min_chunk, plateau there, and only the
   final tail may be smaller *)
let prop_guided_decreasing_general =
  QCheck.Test.make ~name:"guided sizes non-increasing over randomized range/threads/chunk"
    ~count:400
    QCheck.(triple arb_range (int_range 1 32) (int_range 1 16))
    (fun (range, num_threads, min_chunk) ->
      let counter = ref range.lo in
      let sizes = ref [] in
      let continue_loop = ref true in
      while !continue_loop do
        match guided_chunk ~counter:!counter ~num_threads ~min_chunk range with
        | Some r ->
          sizes := range_len r :: !sizes;
          counter := r.hi
        | None -> continue_loop := false
      done;
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a <= b && non_increasing rest
        | _ -> true
      in
      (* sizes were accumulated in reverse *)
      non_increasing !sizes)

let prop_uncollapse_bijection =
  QCheck.Test.make ~name:"uncollapse is a bijection onto the index space" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 3) (int_range 1 12))
    (fun extents ->
      let total = collapsed_total extents in
      let all = List.init total (uncollapse ~extents) in
      List.length (List.sort_uniq compare all) = total
      && List.for_all (fun idx -> List.for_all2 (fun i e -> i >= 0 && i < e) idx extents) all)


(* property: canonical-loop analysis recovers the iteration count of
   randomly shaped loops *)
let prop_loop_extent =
  QCheck.Test.make ~name:"canonical-loop extent matches the executed count" ~count:200
    QCheck.(triple (int_range (-50) 50) (int_range 0 200) (int_range 1 9))
    (fun (lb, len, step) ->
      let ub = lb + len in
      let src =
        Printf.sprintf "void f(void) { for (int i = %d; i < %d; i += %d) { } }" lb ub step
      in
      match Minic.Parser.parse_program src with
      | [ Minic.Ast.Gfun { f_body = Minic.Ast.Sblock [ (Minic.Ast.Sfor _ as loop) ]; _ } ] ->
        let c = Translator.Loops.analyze loop in
        let expected =
          let rec count i acc = if i < ub then count (i + step) (acc + 1) else acc in
          count lb 0
        in
        (match Minic.Ast.const_eval_opt (Translator.Loops.extent c) with
        | Some e -> Int64.to_int e = expected
        | None -> false)
      | _ -> false)

let prop_le_bound =
  QCheck.Test.make ~name:"<= bounds analyze as exclusive + 1" ~count:100
    QCheck.(int_range 0 100)
    (fun ub ->
      let src = Printf.sprintf "void f(void) { for (int i = 0; i <= %d; i++) { } }" ub in
      match Minic.Parser.parse_program src with
      | [ Minic.Ast.Gfun { f_body = Minic.Ast.Sblock [ (Minic.Ast.Sfor _ as loop) ]; _ } ] ->
        let c = Translator.Loops.analyze loop in
        Minic.Ast.const_eval_opt (Translator.Loops.extent c) = Some (Int64.of_int (ub + 1))
      | _ -> false)

(* ------------------------- unit cases ------------------------- *)

let test_distribute_examples () =
  let r = distribute_chunk ~team:0 ~num_teams:4 { lo = 0; hi = 100 } in
  Alcotest.(check (pair int int)) "team 0" (0, 25) (r.lo, r.hi);
  let r = distribute_chunk ~team:3 ~num_teams:4 { lo = 0; hi = 100 } in
  Alcotest.(check (pair int int)) "team 3" (75, 100) (r.lo, r.hi);
  (* more teams than iterations: tail teams get empty chunks *)
  let r = distribute_chunk ~team:7 ~num_teams:8 { lo = 0; hi = 4 } in
  Alcotest.(check int) "surplus team empty" 0 (range_len r)

let test_static_examples () =
  let r = static_chunk ~thread:1 ~num_threads:3 { lo = 10; hi = 20 } in
  Alcotest.(check (pair int int)) "middle thread" (14, 18) (r.lo, r.hi);
  let r = static_chunk ~thread:2 ~num_threads:3 { lo = 10; hi = 20 } in
  Alcotest.(check (pair int int)) "tail clamped" (18, 20) (r.lo, r.hi)

let test_barrier_round () =
  let spec = Gpusim.Spec.jetson_nano_2gb in
  List.iter
    (fun (n, x) -> Alcotest.(check int) (Printf.sprintf "N=%d" n) x (Gpusim.Spec.barrier_round spec n))
    [ (1, 32); (32, 32); (33, 64); (64, 64); (65, 96); (96, 96); (97, 128); (128, 128) ]

(* Empty range: both demand-driven schedulers must refuse immediately. *)
let test_empty_range () =
  let empty = { lo = 42; hi = 42 } in
  Alcotest.(check bool) "dynamic: empty range yields no chunk" true
    (dynamic_chunk ~counter:empty.lo ~chunk:4 empty = None);
  Alcotest.(check bool) "guided: empty range yields no chunk" true
    (guided_chunk ~counter:empty.lo ~num_threads:8 ~min_chunk:2 empty = None);
  (* inverted bounds behave as empty too *)
  let inverted = { lo = 10; hi = 3 } in
  Alcotest.(check bool) "dynamic: inverted range yields no chunk" true
    (dynamic_chunk ~counter:inverted.lo ~chunk:4 inverted = None);
  Alcotest.(check bool) "guided: inverted range yields no chunk" true
    (guided_chunk ~counter:inverted.lo ~num_threads:8 ~min_chunk:2 inverted = None)

(* Single iteration: exactly one chunk of size one, then exhaustion. *)
let test_single_iteration () =
  let one = { lo = 7; hi = 8 } in
  (match dynamic_chunk ~counter:one.lo ~chunk:16 one with
  | Some r ->
    Alcotest.(check (pair int int)) "dynamic single chunk" (7, 8) (r.lo, r.hi);
    Alcotest.(check bool) "dynamic then exhausted" true
      (dynamic_chunk ~counter:r.hi ~chunk:16 one = None)
  | None -> Alcotest.fail "dynamic: single-iteration range yielded nothing");
  match guided_chunk ~counter:one.lo ~num_threads:4 ~min_chunk:3 one with
  | Some r ->
    Alcotest.(check (pair int int)) "guided single chunk" (7, 8) (r.lo, r.hi);
    Alcotest.(check bool) "guided then exhausted" true
      (guided_chunk ~counter:r.hi ~num_threads:4 ~min_chunk:3 one = None)
  | None -> Alcotest.fail "guided: single-iteration range yielded nothing"

(* Block-cyclic edge cases: a chunk wider than the whole range, stride
   indices past the last chunk, and empty/inverted ranges. *)
let test_static_cyclic_edges () =
  let range = { lo = 0; hi = 10 } in
  (* chunk > range: thread 0's first chunk clamps to the whole range... *)
  (match static_cyclic_chunk ~thread:0 ~num_threads:4 ~chunk:64 ~k:0 range with
  | Some r -> Alcotest.(check (pair int int)) "oversized chunk clamps" (0, 10) (r.lo, r.hi)
  | None -> Alcotest.fail "oversized chunk yielded nothing");
  (* ...and every other thread's first chunk starts past the range *)
  List.iter
    (fun thread ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d gets nothing" thread)
        true
        (static_cyclic_chunk ~thread ~num_threads:4 ~chunk:64 ~k:0 range = None))
    [ 1; 2; 3 ];
  (* stride walk at num_threads=2, chunk=3 over [0,10):
     thread 0 owns [0,3) then [6,9); thread 1 owns [3,6) then the
     clamped tail [9,10); both are exhausted at k=2 *)
  (match static_cyclic_chunk ~thread:0 ~num_threads:2 ~chunk:3 ~k:1 range with
  | Some r -> Alcotest.(check (pair int int)) "thread 0 second chunk" (6, 9) (r.lo, r.hi)
  | None -> Alcotest.fail "thread 0 k=1 yielded nothing");
  (match static_cyclic_chunk ~thread:1 ~num_threads:2 ~chunk:3 ~k:1 range with
  | Some r -> Alcotest.(check (pair int int)) "thread 1 clamped tail" (9, 10) (r.lo, r.hi)
  | None -> Alcotest.fail "thread 1 k=1 yielded nothing");
  Alcotest.(check bool) "k past the last chunk yields None" true
    (static_cyclic_chunk ~thread:0 ~num_threads:2 ~chunk:3 ~k:2 range = None);
  Alcotest.(check bool) "far-past k yields None" true
    (static_cyclic_chunk ~thread:1 ~num_threads:2 ~chunk:3 ~k:1000 range = None);
  (* empty and inverted ranges yield nothing for any thread *)
  Alcotest.(check bool) "empty range" true
    (static_cyclic_chunk ~thread:0 ~num_threads:2 ~chunk:3 ~k:0 { lo = 5; hi = 5 } = None);
  Alcotest.(check bool) "inverted range" true
    (static_cyclic_chunk ~thread:0 ~num_threads:2 ~chunk:3 ~k:0 { lo = 9; hi = 2 } = None);
  (* nonzero base offset: chunks are relative to range.lo *)
  match static_cyclic_chunk ~thread:1 ~num_threads:3 ~chunk:2 ~k:0 { lo = 100; hi = 110 } with
  | Some r -> Alcotest.(check (pair int int)) "offset base" (102, 104) (r.lo, r.hi)
  | None -> Alcotest.fail "offset base yielded nothing"

let test_invalid_args () =
  let inv f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "zero teams" true (inv (fun () -> distribute_chunk ~team:0 ~num_teams:0 { lo = 0; hi = 1 }));
  Alcotest.(check bool) "team out of range" true
    (inv (fun () -> distribute_chunk ~team:5 ~num_teams:3 { lo = 0; hi = 10 }));
  Alcotest.(check bool) "bad chunk" true (inv (fun () -> dynamic_chunk ~counter:0 ~chunk:0 { lo = 0; hi = 10 }))

(* The chunk shapes the reduction tree consumes: composing distribute
   and static must still partition the space when teams outnumber
   iterations (empty team chunks), when every team has a single thread
   (the tree degenerates to the publish), and when threads outnumber a
   team's chunk (tail threads hold the identity). *)
let test_reduction_geometry_chunks () =
  let cover ~teams ~threads total =
    let hits = Array.make (max total 1) 0 in
    for team = 0 to teams - 1 do
      let tr = distribute_chunk ~team ~num_teams:teams { lo = 0; hi = total } in
      for thread = 0 to threads - 1 do
        let r = static_chunk ~thread ~num_threads:threads tr in
        for i = r.lo to r.hi - 1 do
          hits.(i) <- hits.(i) + 1
        done
      done
    done;
    Array.for_all (fun c -> c = 1) (Array.sub hits 0 total)
  in
  Alcotest.(check bool) "surplus teams + surplus threads partition" true
    (cover ~teams:8 ~threads:32 5);
  Alcotest.(check bool) "single-thread teams partition" true (cover ~teams:5 ~threads:1 61);
  Alcotest.(check bool) "empty space touches nothing" true (cover ~teams:4 ~threads:16 0);
  Alcotest.(check bool) "non-power-of-two threads partition" true (cover ~teams:3 ~threads:100 257);
  (* block-cyclic distribute composed with static: same invariant *)
  let cover_cyclic ~teams ~threads ~chunk total =
    let hits = Array.make (max total 1) 0 in
    for team = 0 to teams - 1 do
      let k = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match static_cyclic_chunk ~thread:team ~num_threads:teams ~chunk ~k:!k { lo = 0; hi = total } with
        | None -> continue_ := false
        | Some tr ->
          incr k;
          for thread = 0 to threads - 1 do
            let r = static_chunk ~thread ~num_threads:threads tr in
            for i = r.lo to r.hi - 1 do
              hits.(i) <- hits.(i) + 1
            done
          done
      done
    done;
    Array.for_all (fun c -> c = 1) (Array.sub hits 0 total)
  in
  Alcotest.(check bool) "dist_schedule(static,16) x static partition" true
    (cover_cyclic ~teams:3 ~threads:20 ~chunk:16 257);
  Alcotest.(check bool) "dist_schedule(static,1) single-thread teams" true
    (cover_cyclic ~teams:7 ~threads:1 ~chunk:1 29)

let () =
  Alcotest.run "sched"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_distribute_partition;
          QCheck_alcotest.to_alcotest prop_static_partition;
          QCheck_alcotest.to_alcotest prop_static_cyclic_partition;
          QCheck_alcotest.to_alcotest prop_dynamic_progress;
          QCheck_alcotest.to_alcotest prop_guided_progress;
          QCheck_alcotest.to_alcotest prop_guided_decreasing;
          QCheck_alcotest.to_alcotest prop_dynamic_chunk_sizes;
          QCheck_alcotest.to_alcotest prop_guided_decreasing_general;
          QCheck_alcotest.to_alcotest prop_uncollapse_bijection;
          QCheck_alcotest.to_alcotest prop_loop_extent;
          QCheck_alcotest.to_alcotest prop_le_bound;
        ] );
      ( "units",
        [
          Alcotest.test_case "distribute examples" `Quick test_distribute_examples;
          Alcotest.test_case "static examples" `Quick test_static_examples;
          Alcotest.test_case "barrier rounding rule" `Quick test_barrier_round;
          Alcotest.test_case "empty ranges" `Quick test_empty_range;
          Alcotest.test_case "single-iteration ranges" `Quick test_single_iteration;
          Alcotest.test_case "block-cyclic edge cases" `Quick test_static_cyclic_edges;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
          Alcotest.test_case "reduction geometry chunks" `Quick test_reduction_geometry_chunks;
        ] );
    ]
