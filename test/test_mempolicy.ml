(* Memory-autopilot tests: per-page dirty digests (partial transfers,
   clean-range update elision), the automatic per-buffer
   copy/elide/zerocopy policy (cold heuristics, history, async-pending
   and map(always) overrides), zero-copy composed with streams, and a
   QCheck differential property — random map/offload/update/unmap
   sequences are bit-identical between the automatic policy and a
   forced-copy runtime, with transient faults and streams enabled. *)

open Machine
open Gpusim
module De = Hostrt.Dataenv
module Mp = Hostrt.Mempolicy

let make () =
  let clock = Simclock.create () in
  let host = Mem.create ~space:Addr.Host "host" in
  let driver = Driver.create clock in
  Driver.ensure_initialized driver;
  let env = De.create ~host ~driver in
  (env, host, driver, clock)

let set_f32 (m : Mem.t) (a : Addr.t) i v =
  Bytes.set_int32_le m.Mem.data (a.Addr.off + (4 * i)) (Int32.bits_of_float v)

let get_f32 (m : Mem.t) (a : Addr.t) i =
  Int32.float_of_bits (Bytes.get_int32_le m.Mem.data (a.Addr.off + (4 * i)))

let fill_words host (a : Addr.t) words f =
  for i = 0 to words - 1 do
    set_f32 host a i (f i)
  done

(* ----------------------- per-page dirty digests ----------------------- *)

(* 4 pages of 64 bytes; dirty one byte in page 2 after parking: the
   revival moves only that page and counts the other three as elided. *)
let test_partial_h2d_single_dirty_page () =
  let env, host, driver, _ = make () in
  De.set_elide env true;
  De.set_page_bytes env 64;
  let h = Mem.alloc host 256 in
  fill_words host h 64 float_of_int;
  ignore (De.map env h ~bytes:256 De.To);
  De.unmap env h De.To;
  Alcotest.(check int) "parked" 1 (De.resident_buffers env);
  Bytes.set host.Mem.data (h.Addr.off + 130) 'X';
  let before = (De.stats env).De.elided_h2d_pages in
  let d = De.map env h ~bytes:256 De.To in
  Alcotest.(check int) "three clean pages elided" (before + 3) (De.stats env).De.elided_h2d_pages;
  Alcotest.(check char) "dirty byte reached the device" 'X'
    (Bytes.get driver.Driver.global.Mem.data (d.Addr.off + 130));
  Alcotest.(check bool) "clean page content intact" true (get_f32 driver.Driver.global d 0 = 0.0)

(* Writes hugging a page boundary dirty exactly the two adjacent pages;
   they form one run, so the partial path still beats a full copy. *)
let test_page_boundary_writes () =
  let env, host, driver, _ = make () in
  De.set_elide env true;
  De.set_page_bytes env 64;
  let h = Mem.alloc host 256 in
  fill_words host h 64 float_of_int;
  ignore (De.map env h ~bytes:256 De.To);
  De.unmap env h De.To;
  Bytes.set host.Mem.data (h.Addr.off + 63) 'a';
  Bytes.set host.Mem.data (h.Addr.off + 64) 'b';
  let before = (De.stats env).De.elided_h2d_pages in
  let d = De.map env h ~bytes:256 De.To in
  Alcotest.(check int) "two of four pages elided" (before + 2) (De.stats env).De.elided_h2d_pages;
  Alcotest.(check char) "last byte of page 0" 'a'
    (Bytes.get driver.Driver.global.Mem.data (d.Addr.off + 63));
  Alcotest.(check char) "first byte of page 1" 'b'
    (Bytes.get driver.Driver.global.Mem.data (d.Addr.off + 64))

(* Two separate single-page runs cost two transfer latencies — more than
   one full copy of this small buffer — so the latency-dominance
   fallback does a whole-extent copy and elides nothing. *)
let test_partial_falls_back_when_latency_dominates () =
  let env, host, _, _ = make () in
  De.set_elide env true;
  De.set_page_bytes env 64;
  let h = Mem.alloc host 256 in
  ignore (De.map env h ~bytes:256 De.To);
  De.unmap env h De.To;
  Bytes.set host.Mem.data (h.Addr.off + 10) 'x';
  Bytes.set host.Mem.data (h.Addr.off + 140) 'y';
  let before = (De.stats env).De.elided_h2d_pages in
  ignore (De.map env h ~bytes:256 De.To);
  Alcotest.(check int) "no page elision: full copy was cheaper" before
    (De.stats env).De.elided_h2d_pages

(* An untouched host image revives whole-buffer: zero transfers. *)
let test_clean_remap_elides_whole_buffer () =
  let env, host, _, clock = make () in
  De.set_elide env true;
  let h = Mem.alloc host 256 in
  fill_words host h 64 float_of_int;
  ignore (De.map env h ~bytes:256 De.To);
  De.unmap env h De.To;
  let before = (De.stats env).De.elided_h2d in
  let t0 = Simclock.now_ns clock in
  ignore (De.map env h ~bytes:256 De.To);
  Alcotest.(check int) "whole-buffer h2d elided" (before + 1) (De.stats env).De.elided_h2d;
  Alcotest.(check bool) "no transfer time charged" true (Simclock.now_ns clock -. t0 < 1000.0)

(* ---------------------- clean-range update elision ---------------------- *)

let test_update_to_clean_elides () =
  let env, host, driver, _ = make () in
  De.set_elide env true;
  De.set_page_bytes env 64;
  let h = Mem.alloc host 256 in
  fill_words host h 64 float_of_int;
  let d = De.map env h ~bytes:256 De.To in
  let s0 = De.stats env in
  De.update_to env h ~bytes:256;
  Alcotest.(check int) "clean update to fully elided" (s0.De.elided_update_to + 1)
    (De.stats env).De.elided_update_to;
  (* dirty one page: the next update moves it and elides the rest *)
  set_f32 host h 40 99.0;
  De.update_to env h ~bytes:256;
  let s1 = De.stats env in
  Alcotest.(check int) "partial update: three pages elided" (s0.De.elided_h2d_pages + 4 + 3)
    s1.De.elided_h2d_pages;
  Alcotest.(check int) "partial update is not a full elision" (s0.De.elided_update_to + 1)
    s1.De.elided_update_to;
  Alcotest.(check bool) "dirty word pushed" true (get_f32 driver.Driver.global d 40 = 99.0);
  (* everything agrees again: fully elided once more *)
  De.update_to env h ~bytes:256;
  Alcotest.(check int) "clean again after partial sync" (s1.De.elided_update_to + 1)
    (De.stats env).De.elided_update_to

let test_update_from_clean_elides () =
  let env, host, driver, _ = make () in
  De.set_elide env true;
  De.set_page_bytes env 64;
  let h = Mem.alloc host 256 in
  fill_words host h 64 float_of_int;
  let d = De.map env h ~bytes:256 De.Tofrom in
  let s0 = De.stats env in
  De.update_from env h ~bytes:256;
  Alcotest.(check int) "no device stores: update from elided" (s0.De.elided_update_from + 1)
    (De.stats env).De.elided_update_from;
  Alcotest.(check bool) "host untouched" true (get_f32 host h 5 = 5.0);
  (* a device write makes the extent dirty: the update transfers for real *)
  set_f32 driver.Driver.global d 5 77.0;
  (match Driver.alloc_id_of driver d with
  | Some id -> Driver.note_stores driver id 1
  | None -> Alcotest.fail "device buffer should have an allocation id");
  De.update_from env h ~bytes:256;
  Alcotest.(check int) "dirty update not elided" (s0.De.elided_update_from + 1)
    (De.stats env).De.elided_update_from;
  Alcotest.(check bool) "device write pulled" true (get_f32 host h 5 = 77.0)

(* --------------------- automatic per-buffer policy --------------------- *)

let decisions_for env (h : Addr.t) ~bytes =
  match List.assoc_opt (h.Addr.off, bytes) (De.policy_decisions env) with
  | Some row -> row
  | None -> []

(* Small tofrom buffer, cold: transfers are latency-dominated, so the
   static model pins it zero-copy — the map returns the host address. *)
let test_auto_cold_small_tofrom_zerocopy () =
  let env, host, driver, _ = make () in
  De.set_mem_mode env Mp.Auto;
  let h = Mem.alloc host 64 in
  fill_words host h 16 float_of_int;
  let d = De.map env h ~bytes:64 De.Tofrom in
  Alcotest.(check bool) "kernel addresses host memory in place" true (Addr.equal d h);
  Alcotest.(check bool) "range is pinned" true (Driver.pin_id_of driver h <> None);
  Alcotest.(check (list (pair string int))) "decision tally" [ ("zerocopy", 1) ]
    (decisions_for env h ~bytes:64);
  Alcotest.(check bool) "contents undisturbed" true (get_f32 host h 7 = 7.0);
  De.unmap env h De.Tofrom;
  Alcotest.(check bool) "unpinned at release" true (Driver.pin_id_of driver h = None)

(* A zero-copy from map must present the zero-filled device image the
   copying runtime would have produced: the host range is zeroed in
   place at map, and kernel writes land directly in host memory. *)
let test_auto_from_zerocopy_zeroes_host () =
  let env, host, _, _ = make () in
  De.set_mem_mode env Mp.Auto;
  let h = Mem.alloc host 64 in
  fill_words host h 16 (fun _ -> 42.0);
  let d = De.map env h ~bytes:64 De.From in
  Alcotest.(check (list (pair string int))) "from pins zero-copy" [ ("zerocopy", 1) ]
    (decisions_for env h ~bytes:64);
  Alcotest.(check bool) "host range zeroed like a fresh device image" true
    (get_f32 host h 0 = 0.0 && get_f32 host h 15 = 0.0);
  set_f32 host d 2 8.0;
  De.unmap env h De.From;
  Alcotest.(check bool) "kernel result survives the release" true (get_f32 host h 2 = 8.0);
  Alcotest.(check bool) "unwritten words stay zero, as under copy" true (get_f32 host h 3 = 0.0)

(* A large to-mapped buffer starts as a copy (elision cannot beat the
   first transfer, [to] may not pin cold); the release parks it, and the
   next map's history makes elision free — the mode flips. *)
let test_auto_large_to_copy_then_elide () =
  let env, host, _, _ = make () in
  De.set_mem_mode env Mp.Auto;
  let bytes = 1 lsl 18 in
  let h = Mem.alloc host bytes in
  ignore (De.map env h ~bytes De.To);
  Alcotest.(check (list (pair string int))) "cold large to is a copy" [ ("copy", 1) ]
    (decisions_for env h ~bytes);
  De.unmap env h De.To;
  Alcotest.(check int) "parked under auto despite copy mode" 1 (De.resident_buffers env);
  let before = (De.stats env).De.elided_h2d in
  ignore (De.map env h ~bytes De.To);
  Alcotest.(check (list (pair string int))) "history flips it to elide"
    [ ("copy", 1); ("elide", 1) ]
    (decisions_for env h ~bytes);
  Alcotest.(check int) "revival elided the h2d" (before + 1) (De.stats env).De.elided_h2d;
  De.unmap env h De.To;
  Alcotest.(check bool) "both modes appear in the summary" true
    (List.mem Mp.Copy (De.policy_modes_used env) && List.mem Mp.Elide (De.policy_modes_used env))

(* Fake async hooks as in test_dataenv: an in-flight flag plus logs of
   the pinned-range registrations zero-copy maps must perform. *)
let install_fake_hooks env =
  let in_flight = ref false in
  let registered = ref [] in
  let unregistered = ref [] in
  De.set_async_hooks env
    ~register_pinned:(fun addr ~bytes -> registered := (addr, bytes) :: !registered)
    ~unregister_pinned:(fun addr ~bytes -> unregistered := (addr, bytes) :: !unregistered)
    ~pending:(fun _addr ~bytes:_ -> !in_flight)
    ~sync_range:(fun _addr ~bytes:_ -> in_flight := false);
  (in_flight, registered, unregistered)

(* Queued stream work over the range forces a real copy — pinning or
   reviving under in-flight transfers would race them. *)
let test_auto_async_pending_forces_copy () =
  let env, host, driver, _ = make () in
  De.set_mem_mode env Mp.Auto;
  let in_flight, _, _ = install_fake_hooks env in
  let h = Mem.alloc host 64 in
  in_flight := true;
  let d = De.map env h ~bytes:64 De.Tofrom in
  Alcotest.(check bool) "not pinned" true (Driver.pin_id_of driver h = None);
  Alcotest.(check bool) "a real device buffer exists" true
    (Addr.equal_space d.Addr.space Addr.Global);
  Alcotest.(check (list (pair string int))) "decision tally" [ ("copy", 1) ]
    (decisions_for env h ~bytes:64);
  in_flight := false;
  De.unmap env h De.Tofrom

(* map(always, ...) overrides the policy: transfers happen even where
   the model would pin or elide. *)
let test_auto_always_forces_transfers () =
  let env, host, driver, clock = make () in
  De.set_mem_mode env Mp.Auto;
  let h = Mem.alloc host 64 in
  ignore (De.map ~always:true env h ~bytes:64 De.Tofrom);
  Alcotest.(check bool) "always map is not pinned" true (Driver.pin_id_of driver h = None);
  De.unmap env h De.Tofrom;
  let t0 = Simclock.now_ns clock in
  ignore (De.map ~always:true env h ~bytes:64 De.Tofrom);
  Alcotest.(check bool) "clean re-map still pays the transfer" true
    (Simclock.now_ns clock -. t0 >= 15000.0);
  Alcotest.(check (list (pair string int))) "both decisions were copies" [ ("copy", 2) ]
    (decisions_for env h ~bytes:64);
  De.unmap env h De.Tofrom

(* Zero-copy maps advertise their pinned range to the stream dependency
   tracker, and withdraw it at release. *)
let test_zerocopy_registers_pinned_range () =
  let env, host, _, _ = make () in
  De.set_mem_mode env Mp.Auto;
  let _, registered, unregistered = install_fake_hooks env in
  let h = Mem.alloc host 64 in
  ignore (De.map env h ~bytes:64 De.Tofrom);
  (match !registered with
  | [ (addr, bytes) ] ->
    Alcotest.(check bool) "registered the mapped range" true (Addr.equal addr h);
    Alcotest.(check int) "registered the full extent" 64 bytes
  | l -> Alcotest.failf "expected one register_pinned call, got %d" (List.length l));
  Alcotest.(check int) "still registered while mapped" 0 (List.length !unregistered);
  De.unmap env h De.Tofrom;
  Alcotest.(check int) "unregistered at release" 1 (List.length !unregistered)

(* Through the full runtime: the pinned range lands in the real stream
   tracker's table, so nowait tasks can serialize against it. *)
let test_rt_zerocopy_pins_in_stream_tracker () =
  let rt = Hostrt.Rt.create ~streams:2 () in
  Hostrt.Rt.set_mem_mode rt Mp.Auto;
  let dev = Hostrt.Rt.default_dev rt in
  let h = Mem.alloc rt.Hostrt.Rt.host_mem 64 in
  ignore (De.map dev.Hostrt.Rt.dev_dataenv h ~bytes:64 De.Tofrom);
  Alcotest.(check int) "pinned range visible to the stream tracker" 1
    (List.length (Hostrt.Async.pinned_ranges dev.Hostrt.Rt.dev_async));
  De.unmap dev.Hostrt.Rt.dev_dataenv h De.Tofrom;
  Alcotest.(check int) "withdrawn at release" 0
    (List.length (Hostrt.Async.pinned_ranges dev.Hostrt.Rt.dev_async))

let test_sel_of_string () =
  Alcotest.(check bool) "auto" true (Mp.sel_of_string "auto" = Some Mp.Auto);
  Alcotest.(check bool) "copy" true (Mp.sel_of_string "copy" = Some (Mp.Forced Mp.Copy));
  Alcotest.(check bool) "elide" true (Mp.sel_of_string "elide" = Some (Mp.Forced Mp.Elide));
  Alcotest.(check bool) "zerocopy" true
    (Mp.sel_of_string "zerocopy" = Some (Mp.Forced Mp.Zerocopy));
  Alcotest.(check bool) "junk" true (Mp.sel_of_string "unified" = None)

(* ------------- differential property: auto ≡ forced copy ------------- *)

(* One simulated runtime plus the mutable mirror the interpreter needs:
   per-buffer refcounts it keeps in lockstep with the data environment. *)
type world = {
  w_env : De.t;
  w_host : Mem.t;
  w_driver : Driver.t;
  w_async : Hostrt.Async.t;
  w_bufs : Addr.t array;
  w_rc : int array;
}

(* Every buffer keeps one role for the whole sequence — map type and
   whether the kernel stores into it — mirroring a real program that
   re-runs the same kernel, which is what keeps the history-gated
   [to]-zero-copy unlock sound. *)
type role = { r_mt : De.map_type; r_writes : bool }

let sizes = [| 64; 256; 4096 |]

let transient_transfer_faults () =
  Hostrt.Faults.create
    [
      {
        Hostrt.Faults.r_sites = [ Hostrt.Faults.H2d; Hostrt.Faults.D2h ];
        r_kind = Hostrt.Faults.Transient;
        r_nths = [];
        r_from = None;
        r_every = Some 5;
        r_prob = 0.0;
      };
    ]

let make_world sel =
  let rt = Hostrt.Rt.create ~streams:2 () in
  Hostrt.Rt.set_mem_mode rt sel;
  Hostrt.Rt.set_faults rt (Some (transient_transfer_faults ()));
  let dev = Hostrt.Rt.default_dev rt in
  let host = rt.Hostrt.Rt.host_mem in
  let bufs = Array.map (fun sz -> Mem.alloc host sz) sizes in
  Array.iteri
    (fun b a -> fill_words host a (sizes.(b) / 4) (fun i -> float_of_int ((b * 1000) + i)))
    bufs;
  {
    w_env = dev.Hostrt.Rt.dev_dataenv;
    w_host = host;
    w_driver = dev.Hostrt.Rt.dev_driver;
    w_async = dev.Hostrt.Rt.dev_async;
    w_bufs = bufs;
    w_rc = Array.make (Array.length sizes) 0;
  }

(* The stand-in kernel: a read-modify-write through [lookup], into
   whichever memory holds the device image (host for pinned zero-copy,
   device global otherwise), so a stale image anywhere changes the final
   bits.  Device-side stores are logged like a real launch would. *)
let kernel_exec w b (r : role) =
  let h = w.w_bufs.(b) in
  let words = sizes.(b) / 4 in
  let d = De.lookup_exn w.w_env h in
  let m = if Addr.equal_space d.Addr.space Addr.Host then w.w_host else w.w_driver.Driver.global in
  if r.r_writes then begin
    for j = 0 to words - 1 do
      set_f32 m d j ((get_f32 m d j *. 0.5) +. float_of_int (j land 7))
    done;
    if not (Addr.equal_space d.Addr.space Addr.Host) then
      match Driver.alloc_id_of w.w_driver d with
      | Some id -> Driver.note_stores w.w_driver id words
      | None -> ()
  end
  else
    for j = 0 to words - 1 do
      ignore (get_f32 m d j)
    done

(* Interpret one op identically in both worlds.  [k] is the op's index
   in the sequence, the seed for the deterministic values host writes
   produce. *)
let step w (roles : role array) k op =
  let b = op mod Array.length sizes in
  let h = w.w_bufs.(b) in
  let bytes = sizes.(b) in
  let r = roles.(b) in
  let words = bytes / 4 in
  match (op / Array.length sizes) mod 7 with
  | 0 ->
    if w.w_rc.(b) < 3 then begin
      ignore (De.map w.w_env h ~bytes r.r_mt);
      w.w_rc.(b) <- w.w_rc.(b) + 1
    end
  | 1 ->
    if w.w_rc.(b) > 0 then begin
      (* a final release needs quiet streams, like a taskwait *)
      if w.w_rc.(b) = 1 then Hostrt.Async.wait_all w.w_async;
      De.unmap w.w_env h r.r_mt;
      w.w_rc.(b) <- w.w_rc.(b) - 1
    end
  | 2 -> if w.w_rc.(b) > 0 then kernel_exec w b r
  | 3 ->
    if w.w_rc.(b) > 0 then begin
      let range = Hostrt.Async.range_of_addr h ~bytes in
      Hostrt.Async.submit w.w_async ~label:"prop_kernel" ~reads:[ range ]
        ~writes:(if r.r_writes then [ range ] else [])
        (fun _stream -> kernel_exec w b r)
    end
  | 4 ->
    (match r.r_mt with
    | De.To | De.Tofrom ->
      if w.w_rc.(b) > 0 then begin
        (* a host write to a mapped range, pushed with an update of
           exactly the written bytes.  Updating a *wider* extent than
           the host wrote would push stale words over device stores —
           behaviour that legitimately differs between a copying and a
           unified-memory implementation (omp requires
           unified_shared_memory), so it is outside the equivalence
           this property claims *)
        let j = k * 7 mod words in
        set_f32 w.w_host h j (float_of_int (k * 13 mod 1000));
        De.update_to w.w_env (Addr.add h (4 * j)) ~bytes:4
      end
    | De.From | De.Alloc -> ())
  | 5 ->
    (match r.r_mt with
    | De.From | De.Tofrom -> if w.w_rc.(b) > 0 then De.update_from w.w_env h ~bytes
    | De.To | De.Alloc -> ())
  | _ ->
    if w.w_rc.(b) = 0 then set_f32 w.w_host h (k * 5 mod words) (float_of_int (k * 11 mod 1000))

let drain w (roles : role array) =
  Hostrt.Async.wait_all w.w_async;
  Array.iteri
    (fun b h ->
      while w.w_rc.(b) > 0 do
        De.unmap w.w_env h roles.(b).r_mt;
        w.w_rc.(b) <- w.w_rc.(b) - 1
      done)
    w.w_bufs

let run_world sel roles ops =
  let w = make_world sel in
  List.iteri (step w roles) ops;
  drain w roles;
  Array.mapi (fun b h -> Bytes.sub w.w_host.Mem.data h.Addr.off sizes.(b)) w.w_bufs

let role_of_int v =
  { r_mt = [| De.To; De.From; De.Tofrom; De.Alloc |].(v mod 4); r_writes = v land 4 <> 0 }

let prop_auto_equals_copy =
  QCheck.Test.make ~count:40 ~long_factor:2
    ~name:"auto policy bit-identical to forced copy (faults + streams)"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 10 60) (int_bound 1000))
        (triple (int_bound 7) (int_bound 7) (int_bound 7)))
    (fun (ops, (r0, r1, r2)) ->
      let roles = Array.map role_of_int [| r0; r1; r2 |] in
      let auto = run_world Mp.Auto roles ops in
      let copy = run_world (Mp.Forced Mp.Copy) roles ops in
      Array.iteri
        (fun b a ->
          if not (Bytes.equal a copy.(b)) then
            QCheck.Test.fail_reportf
              "buffer %d (%s, writes=%b, %d bytes) diverged between auto and forced copy" b
              (De.show_map_type roles.(b).r_mt)
              roles.(b).r_writes sizes.(b))
        auto;
      true)

let () =
  Alcotest.run "mempolicy"
    [
      ( "pages",
        [
          Alcotest.test_case "partial h2d, single dirty page" `Quick
            test_partial_h2d_single_dirty_page;
          Alcotest.test_case "page-boundary writes dirty both pages" `Quick
            test_page_boundary_writes;
          Alcotest.test_case "latency-dominance falls back to full copy" `Quick
            test_partial_falls_back_when_latency_dominates;
          Alcotest.test_case "clean re-map elides whole buffer" `Quick
            test_clean_remap_elides_whole_buffer;
        ] );
      ( "update",
        [
          Alcotest.test_case "clean update-to elided, dirty page partial" `Quick
            test_update_to_clean_elides;
          Alcotest.test_case "clean update-from elided, device store transfers" `Quick
            test_update_from_clean_elides;
        ] );
      ( "auto",
        [
          Alcotest.test_case "cold small tofrom pins zero-copy" `Quick
            test_auto_cold_small_tofrom_zerocopy;
          Alcotest.test_case "from zero-copy zeroes the host range" `Quick
            test_auto_from_zerocopy_zeroes_host;
          Alcotest.test_case "large to: copy cold, elide on history" `Quick
            test_auto_large_to_copy_then_elide;
          Alcotest.test_case "async-pending range forces copy" `Quick
            test_auto_async_pending_forces_copy;
          Alcotest.test_case "map(always) overrides the policy" `Quick
            test_auto_always_forces_transfers;
          Alcotest.test_case "selector parsing" `Quick test_sel_of_string;
        ] );
      ( "streams",
        [
          Alcotest.test_case "zero-copy registers its pinned range" `Quick
            test_zerocopy_registers_pinned_range;
          Alcotest.test_case "pinned range visible in the rt stream tracker" `Quick
            test_rt_zerocopy_pins_in_stream_tracker;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_auto_equals_copy ]);
    ]
