(* Offload-server tests: the Serve library's session/request machinery
   (bit-identical responses, persistent data environments, resident-
   cache warm re-opens, admission control, serve-event pairing), its
   composition with fault injection, and the QCheck isolation property:
   random interleavings of N sessions — including sessions whose
   persistent matrices are overlapping slices of one shared pool —
   produce bit-identical per-session outputs vs running each session
   alone. *)

let mk_spec ?(shared = None) ?(device = 0) ~tag ~app ~n ~requests ~rate () =
  {
    Serve.ss_tag = tag;
    ss_app = app;
    ss_n = n;
    ss_requests = requests;
    ss_rate_hz = rate;
    ss_shared_off = shared;
    ss_device = device;
  }

let base_cfg =
  {
    Serve.cf_devices = 1;
    cf_streams = 4;
    cf_max_inflight = 8;
    cf_generations = 2;
    cf_seed = 42;
    cf_elide = true;
    cf_mem_policy = None;
    cf_resident_cap_bytes = None;
    cf_faults = [];
    cf_fault_seed = 7;
    cf_max_retries = None;
    cf_trace = false;
  }

let small_mix =
  [
    mk_spec ~tag:0 ~app:Serve.Matvec ~n:24 ~requests:3 ~rate:5000.0 ~shared:(Some 0) ();
    mk_spec ~tag:1 ~app:Serve.Matvec ~n:24 ~requests:3 ~rate:5000.0 ~shared:(Some (24 * 12)) ();
    mk_spec ~tag:2 ~app:Serve.Ingest ~n:32 ~requests:3 ~rate:6000.0 ();
    mk_spec ~tag:3 ~app:Serve.Scale ~n:32 ~requests:4 ~rate:7000.0 ();
  ]

(* ---------------------------------------------------------------- *)
(* Unit tests                                                         *)
(* ---------------------------------------------------------------- *)

let test_smoke_run () =
  let r, _ = Serve.run base_cfg small_mix in
  Alcotest.(check bool) "all responses bit-identical" true r.Serve.rp_all_identical;
  Alcotest.(check int) "every request completed" r.Serve.rp_requests r.Serve.rp_completed;
  Alcotest.(check int) "13 requests per generation, 2 generations" 26 r.Serve.rp_requests;
  Alcotest.(check bool) "positive throughput" true (r.Serve.rp_throughput_rps > 0.0);
  Alcotest.(check bool) "latency percentiles ordered" true
    (r.Serve.rp_p50_ms <= r.Serve.rp_p95_ms && r.Serve.rp_p95_ms <= r.Serve.rp_p99_ms);
  List.iter
    (fun s -> Alcotest.(check bool) (s.Serve.sr_app ^ " session ok") true s.Serve.sr_ok)
    r.Serve.rp_sessions

(* Sessions with persistent inputs must hit their data environment on
   every request; generation 2 re-opens against the resident cache. *)
let test_persistent_env_and_warm_reopen () =
  let r, _ = Serve.run base_cfg small_mix in
  Alcotest.(check bool) "persistent maps all hit" true (r.Serve.rp_env_hit_rate >= 0.999);
  Alcotest.(check bool) "warm re-open elided at least one h2d" true (r.Serve.rp_open_elisions >= 1);
  List.iter
    (fun s ->
      if s.Serve.sr_app <> "scale" then begin
        Alcotest.(check bool) (s.Serve.sr_app ^ " had env lookups") true (s.Serve.sr_env_lookups > 0);
        Alcotest.(check int)
          (s.Serve.sr_app ^ " env hits = lookups")
          s.Serve.sr_env_lookups s.Serve.sr_env_hits
      end)
    r.Serve.rp_sessions

(* Scheduling must move time, never bytes: per-session outputs are
   bit-identical across stream-pool sizes and admission bounds. *)
let test_outputs_invariant_under_scheduling () =
  let out cfg =
    let r, _ = Serve.run cfg small_mix in
    Alcotest.(check bool) "leg bit-identical" true r.Serve.rp_all_identical;
    List.map (fun s -> s.Serve.sr_output_bits) r.Serve.rp_sessions
  in
  let reference = out base_cfg in
  List.iter
    (fun cfg ->
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "outputs bit-identical across scheduling configs" true (a = b))
        reference (out cfg))
    [
      { base_cfg with Serve.cf_streams = 1 };
      { base_cfg with Serve.cf_streams = 2; cf_max_inflight = 1 };
      { base_cfg with Serve.cf_max_inflight = 3 };
    ]

(* Transient faults recover in place; a fatal fault kills the device
   and every later request rides the host fallback — in both cases
   every response stays bit-identical. *)
let test_fault_legs () =
  let rules spec =
    match Hostrt.Faults.parse spec with Ok r -> r | Error m -> Alcotest.fail m
  in
  let transient, _ =
    Serve.run
      { base_cfg with Serve.cf_faults = rules "h2d:every=5,kind=transient;launch:every=7,kind=transient" }
      small_mix
  in
  Alcotest.(check bool) "transient leg injected" true (transient.Serve.rp_faults_injected >= 1);
  Alcotest.(check bool) "transient leg bit-identical" true transient.Serve.rp_all_identical;
  Alcotest.(check bool) "transient leg device alive" false transient.Serve.rp_device_dead;
  let fatal, _ =
    Serve.run { base_cfg with Serve.cf_faults = rules "launch:nth=5,kind=fatal" } small_mix
  in
  Alcotest.(check bool) "fatal leg kills the device" true fatal.Serve.rp_device_dead;
  Alcotest.(check bool) "fatal leg still bit-identical" true fatal.Serve.rp_all_identical;
  Alcotest.(check int) "fatal leg completes everything" fatal.Serve.rp_requests
    fatal.Serve.rp_completed

(* Two sessions pinned to distinct devices of a 2-device farm: every
   request resolves on its own device (its persistent environment lives
   there), and each session's output is bit-identical to the same
   session running alone on the farm. *)
let test_two_device_pinning () =
  let cfg = { base_cfg with Serve.cf_devices = 2 } in
  let mix =
    [
      mk_spec ~tag:0 ~app:Serve.Matvec ~n:24 ~requests:3 ~rate:5000.0 ~device:0 ();
      mk_spec ~tag:1 ~app:Serve.Ingest ~n:32 ~requests:3 ~rate:6000.0 ~device:1 ();
      mk_spec ~tag:2 ~app:Serve.Scale ~n:32 ~requests:4 ~rate:7000.0 ~device:1 ();
    ]
  in
  let mixed, _ = Serve.run cfg mix in
  Alcotest.(check bool) "2-device mix bit-identical" true mixed.Serve.rp_all_identical;
  Alcotest.(check int) "every request completed" mixed.Serve.rp_requests mixed.Serve.rp_completed;
  List.iteri
    (fun i spec ->
      let alone, _ = Serve.run cfg [ spec ] in
      Alcotest.(check bool) "solo leg bit-identical" true alone.Serve.rp_all_identical;
      Alcotest.(check bool)
        (Printf.sprintf "session %d (device %d) matches its solo run" i spec.Serve.ss_device)
        true
        ((List.nth mixed.Serve.rp_sessions i).Serve.sr_output_bits
        = (List.hd alone.Serve.rp_sessions).Serve.sr_output_bits))
    mix

let test_device_out_of_range_rejected () =
  let bad = [ mk_spec ~tag:0 ~app:Serve.Scale ~n:16 ~requests:1 ~rate:5000.0 ~device:2 () ] in
  match Serve.run { base_cfg with Serve.cf_devices = 2 } bad with
  | _ -> Alcotest.fail "session pinned past the farm must be rejected"
  | exception Invalid_argument _ -> ()

(* The resident cache is per device: parking and byte-accounted
   eviction on one device never touch what another device has parked. *)
let test_resident_cache_isolation () =
  let rt = Hostrt.Rt.create ~devices:2 () in
  let env d = (Hostrt.Rt.device rt d).Hostrt.Rt.dev_dataenv in
  let host = rt.Hostrt.Rt.host_mem in
  Hostrt.Dataenv.set_elide (env 0) true;
  Hostrt.Dataenv.set_elide (env 1) true;
  Hostrt.Dataenv.set_resident_cap_bytes (env 0) 512;
  Hostrt.Dataenv.set_resident_cap_bytes (env 1) 4096;
  (* park one buffer on device 1 *)
  let h1 = Machine.Mem.alloc host 256 in
  ignore (Hostrt.Dataenv.map (env 1) h1 ~bytes:256 Hostrt.Dataenv.To);
  Hostrt.Dataenv.unmap (env 1) h1 Hostrt.Dataenv.To;
  Alcotest.(check int) "device 1 parked its buffer" 1 (Hostrt.Dataenv.resident_buffers (env 1));
  (* churn device 0 past its byte budget *)
  for _ = 1 to 4 do
    let h = Machine.Mem.alloc host 256 in
    ignore (Hostrt.Dataenv.map (env 0) h ~bytes:256 Hostrt.Dataenv.To);
    Hostrt.Dataenv.unmap (env 0) h Hostrt.Dataenv.To
  done;
  Alcotest.(check bool) "device 0 evicted down to its budget" true
    (Hostrt.Dataenv.resident_bytes (env 0) <= 512);
  Alcotest.(check int) "device 1's parked buffer untouched" 1
    (Hostrt.Dataenv.resident_buffers (env 1));
  Alcotest.(check int) "device 1's bytes untouched" 256 (Hostrt.Dataenv.resident_bytes (env 1));
  (* re-opening device 1's range elides its H2D; device 0's stats don't move *)
  let d0_elided = (Hostrt.Dataenv.stats (env 0)).Hostrt.Dataenv.elided_h2d in
  ignore (Hostrt.Dataenv.map (env 1) h1 ~bytes:256 Hostrt.Dataenv.To);
  Alcotest.(check bool) "warm re-open elided on device 1" true
    ((Hostrt.Dataenv.stats (env 1)).Hostrt.Dataenv.elided_h2d >= 1);
  Alcotest.(check int) "device 0 accounting unmoved" d0_elided
    (Hostrt.Dataenv.stats (env 0)).Hostrt.Dataenv.elided_h2d

(* Every admitted request must emit a matching complete instant. *)
let test_serve_trace_pairing () =
  let r, tr = Serve.run { base_cfg with Serve.cf_trace = true } small_mix in
  let tr = match tr with Some tr -> tr | None -> Alcotest.fail "no trace ring" in
  let count name = Perf.Trace.count_events tr ~cat:"serve" ~name () in
  Alcotest.(check int) "one enqueue per request" r.Serve.rp_requests (count "enqueue");
  Alcotest.(check int) "one admit per request" r.Serve.rp_requests (count "admit");
  Alcotest.(check int) "one map per request" r.Serve.rp_requests (count "map");
  Alcotest.(check int) "one launch per request" r.Serve.rp_requests (count "launch");
  Alcotest.(check int) "one complete per admit" (count "admit") (count "complete")

let test_invalid_configs () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty workload rejected" true
    (raises (fun () -> ignore (Serve.run base_cfg [])));
  Alcotest.(check bool) "zero streams rejected" true
    (raises (fun () -> ignore (Serve.run { base_cfg with Serve.cf_streams = 0 } small_mix)));
  Alcotest.(check bool) "zero inflight rejected" true
    (raises (fun () -> ignore (Serve.run { base_cfg with Serve.cf_max_inflight = 0 } small_mix)));
  Alcotest.(check bool) "zero generations rejected" true
    (raises (fun () -> ignore (Serve.run { base_cfg with Serve.cf_generations = 0 } small_mix)))

(* -------------------- QCheck isolation property -------------------- *)

(* Random workloads of 2-3 sessions; matvec sessions draw their
   persistent matrices from overlapping offsets of the shared pool. *)
let workload_gen =
  QCheck.Gen.(
    let session_gen i =
      let* kind = int_range 0 2 in
      let* n = map (fun k -> 16 + (8 * k)) (int_range 0 2) in
      let* requests = int_range 1 3 in
      let* rate = map (fun k -> 3000.0 +. (1000.0 *. float_of_int k)) (int_range 0 3) in
      let* tag = int_range 0 5 in
      match kind with
      | 0 ->
        (* overlapping slices: session i starts at half the previous
           slice, so neighbours share half their matrix *)
        let shared = Some (i * n * n / 2) in
        return (mk_spec ~tag ~app:Serve.Matvec ~n ~requests ~rate ~shared ())
      | 1 -> return (mk_spec ~tag ~app:Serve.Ingest ~n ~requests ~rate ())
      | _ -> return (mk_spec ~tag ~app:Serve.Scale ~n ~requests ~rate ())
    in
    let* count = int_range 2 3 in
    let* seed = int_range 0 1000 in
    let* sessions =
      List.fold_right
        (fun i acc ->
          let* rest = acc in
          let* s = session_gen i in
          return (s :: rest))
        (List.init count (fun i -> i))
        (return [])
    in
    return (seed, sessions))

let prop_interleaving_isolation =
  QCheck.Test.make ~name:"interleaved sessions match each session run alone" ~count:8
    (QCheck.make workload_gen) (fun (seed, specs) ->
      let cfg = { base_cfg with Serve.cf_seed = seed; cf_generations = 1 } in
      let mixed, _ = Serve.run cfg specs in
      if not mixed.Serve.rp_all_identical then
        QCheck.Test.fail_report "mixed run not bit-identical to host reference";
      List.iteri
        (fun i spec ->
          let alone, _ = Serve.run cfg [ spec ] in
          if not alone.Serve.rp_all_identical then
            QCheck.Test.fail_report "solo run not bit-identical to host reference";
          let mixed_out = (List.nth mixed.Serve.rp_sessions i).Serve.sr_output_bits in
          let alone_out = (List.hd alone.Serve.rp_sessions).Serve.sr_output_bits in
          if mixed_out <> alone_out then
            QCheck.Test.fail_reportf "session %d (tag %d) output differs mixed vs alone" i
              spec.Serve.ss_tag)
        specs;
      true)

let () =
  Alcotest.run "serve"
    [
      ( "server",
        [
          Alcotest.test_case "smoke run" `Quick test_smoke_run;
          Alcotest.test_case "persistent env + warm re-open" `Quick
            test_persistent_env_and_warm_reopen;
          Alcotest.test_case "outputs invariant under scheduling" `Quick
            test_outputs_invariant_under_scheduling;
          Alcotest.test_case "fault legs stay bit-identical" `Quick test_fault_legs;
          Alcotest.test_case "two-device pinning" `Quick test_two_device_pinning;
          Alcotest.test_case "pin past the farm rejected" `Quick
            test_device_out_of_range_rejected;
          Alcotest.test_case "resident cache is per device" `Quick
            test_resident_cache_isolation;
          Alcotest.test_case "serve trace pairing" `Quick test_serve_trace_pairing;
          Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs;
        ] );
      ("isolation", [ QCheck_alcotest.to_alcotest prop_interleaving_isolation ]);
    ]
