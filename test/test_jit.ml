(* The closure JIT (Cinterp.Jit) compiles each kernel AST once at module
   load into slot-indexed OCaml closures; the tree-walking interpreter
   stays available as the reference executor (--no-jit).  This suite
   proves the two executors equivalent:

   - differentially: every Polybench app, in both the hand-written CUDA
     and the OMPi-translated variant, must produce bit-identical outputs,
     identical per-launch dynamic counters, identical simulated cycle
     costs and identical simulated times with the JIT on and off — also
     under fault injection, zero-copy, transfer elision and a resized
     stream pool;

   - property-based: a QCheck generator of random mini-C kernels
     (straight-line float arithmetic, bounded uniform loops, shared
     memory with barriers, branches divergent on the thread id) checks
     the same bit-identity on kernels nobody hand-wrote, with a shrinker
     that reduces failures to minimal statement lists;

   - and for the recovery path: a corrupt JIT-cache entry must force a
     recompile of *both* the PTX and the closure form. *)

open Gpusim
open Polybench

let parse_ok spec =
  match Hostrt.Faults.parse spec with
  | Ok rules -> rules
  | Error msg -> Alcotest.fail (Printf.sprintf "bad fault spec %S: %s" spec msg)

(* ---------------------------------------------------------------- *)
(* Observation: everything a launch did, as comparable data           *)
(* ---------------------------------------------------------------- *)

(* Every dynamic statistic the cost model consumes, flattened to a
   string so launch lists compare (and print on failure) wholesale. *)
let counters_summary (c : Counters.t) : string =
  let cl = c.Counters.classes in
  Printf.sprintf
    "arith=%d mul=%d div=%d branch=%d call=%d special=%d thread_sum=%.3f warp_sum=%.3f \
     warp_max=%.3f shared=%d local=%d barriers=%d atomics=%d chunks=%d blocks=%d/%d zc=%d/%d \
     glb=%d tx=%.3f"
    cl.Counters.arith cl.Counters.mul cl.Counters.div cl.Counters.branch cl.Counters.call
    cl.Counters.special c.Counters.thread_inst_sum c.Counters.warp_inst_sum
    c.Counters.warp_inst_max c.Counters.shared_accesses c.Counters.local_accesses
    c.Counters.barrier_warp_arrivals c.Counters.atomics c.Counters.chunk_grabs
    c.Counters.blocks_executed c.Counters.blocks_total c.Counters.zerocopy_loads
    c.Counters.zerocopy_stores
    (Counters.global_accesses c)
    (Counters.global_transactions c)

(* Per-launch record (oldest first): entry, counters, cycles, time. *)
let launch_log ctx : string list =
  List.rev_map
    (fun (s : Driver.launch_stats) ->
      Printf.sprintf "%s: %s | cycles=%.6f time_ns=%.6f" s.Driver.st_entry
        (counters_summary s.Driver.st_counters)
        s.Driver.st_breakdown.Costmodel.bd_total_cycles
        s.Driver.st_breakdown.Costmodel.bd_time_ns)
    (Harness.driver ctx).Driver.launches

let bits (a : float array) : int32 list = Array.to_list (Array.map Int32.bits_of_float a)

type obs = { ob_time : float; ob_out : float array; ob_log : string list }

let check_identical name (jit : obs) (interp : obs) =
  Alcotest.(check (list int32))
    (name ^ ": bit-identical outputs") (bits interp.ob_out) (bits jit.ob_out);
  Alcotest.(check (list string))
    (name ^ ": identical launch counters and cycle costs")
    interp.ob_log jit.ob_log;
  Alcotest.(check (float 0.0)) (name ^ ": identical simulated time") interp.ob_time jit.ob_time

(* ---------------------------------------------------------------- *)
(* Differential suite over the Polybench apps                         *)
(* ---------------------------------------------------------------- *)

let run_app ?(faults = []) ?streams ?(zerocopy = false) ?(elide = false) (app : Suite.app)
    (variant : Harness.variant) ~(jit : bool) ~(n : int) : obs =
  let ctx = Harness.create () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  (match streams with Some k -> Harness.set_streams ctx k | None -> ());
  if zerocopy then Harness.set_zerocopy ctx true;
  if elide then Harness.set_elide ctx true;
  (match faults with [] -> () | rules -> Harness.set_faults ctx rules);
  let time, out = app.Suite.ap_run ctx variant ~n in
  { ob_time = time; ob_out = out; ob_log = launch_log ctx }

let smallest (app : Suite.app) : int =
  match app.Suite.ap_validate_sizes with
  | n :: _ -> n
  | [] -> Alcotest.fail (app.Suite.ap_name ^ " has no validation sizes")

(* JIT vs interpreter on both device variants, plus the host-reference
   anchor: equivalence alone would be vacuous if both executors were
   wrong the same way. *)
let test_app_differential (app : Suite.app) () =
  let n = smallest app in
  let jit = run_app app Harness.Ompi_cudadev ~jit:true ~n in
  let interp = run_app app Harness.Ompi_cudadev ~jit:false ~n in
  check_identical (app.Suite.ap_name ^ "/omp") jit interp;
  let want = app.Suite.ap_reference ~n in
  Alcotest.(check bool)
    (app.Suite.ap_name ^ ": JIT output matches the host reference")
    true
    (Array.length jit.ob_out = Array.length want && Harness.max_rel_error jit.ob_out want < 1e-3);
  let cjit = run_app app Harness.Cuda ~jit:true ~n in
  let cinterp = run_app app Harness.Cuda ~jit:false ~n in
  check_identical (app.Suite.ap_name ^ "/cuda") cjit cinterp

(* The runtime configuration legs: the JIT must stay invisible when the
   launch path is perturbed by recovery, memory policy or stream
   count. *)
let config_leg label ~run = check_identical label (run ~jit:true) (run ~jit:false)

let test_config_legs () =
  let app =
    match Suite.find "atax" with Some a -> a | None -> Alcotest.fail "atax not in suite"
  in
  let n = smallest app in
  config_leg "atax faulted launch" ~run:(fun ~jit ->
      run_app ~faults:(parse_ok "launch:nth=1") app Harness.Ompi_cudadev ~jit ~n);
  config_leg "atax zero-copy" ~run:(fun ~jit ->
      run_app ~zerocopy:true app Harness.Ompi_cudadev ~jit ~n);
  config_leg "atax transfer elision" ~run:(fun ~jit ->
      run_app ~elide:true app Harness.Ompi_cudadev ~jit ~n);
  config_leg "atax single stream" ~run:(fun ~jit ->
      run_app ~streams:1 app Harness.Ompi_cudadev ~jit ~n)

(* The gate itself: modules carry a closure form exactly when the JIT is
   enabled on the driver. *)
let tiny_src = "void k(float *out) { out[threadIdx.x] = 1.0f + threadIdx.x; }"

let test_module_carries_closures () =
  let ctx = Harness.create () in
  let m = Harness.cuda_module ctx ~name:"tiny" ~source:tiny_src in
  Alcotest.(check bool) "jit on: module carries the closure form" true
    (Option.is_some m.Driver.lm_compiled);
  let ctx2 = Harness.create () in
  Harness.set_jit ctx2 false;
  let m2 = Harness.cuda_module ctx2 ~name:"tiny" ~source:tiny_src in
  Alcotest.(check bool) "jit off: module loads without a closure form" false
    (Option.is_some m2.Driver.lm_compiled)

(* ---------------------------------------------------------------- *)
(* QCheck: random kernels                                             *)
(* ---------------------------------------------------------------- *)

(* A tiny structured kernel language, rendered to mini-C CUDA source.
   Every generated kernel reads [in], accumulates into a local [acc],
   round-trips through __shared__ memory, and writes out[i] — with
   [t = threadIdx.x] available for divergence.  Barriers are generated
   at top level and inside uniform-trip loops only, never under the
   tid-divergent branch (that would deadlock a real block). *)

let sh_size = 32

type rexpr =
  | Rin of int (* in[(i + k) % n] *)
  | Rsh of int (* sh[(t + k) % sh_size] *)
  | Racc
  | Rconst of int (* k.0f, k >= 0 *)
  | Rbin of char * rexpr * rexpr

type rstmt =
  | Racc_upd of char * rexpr (* acc = acc OP (e); *)
  | Rsh_write of int * rexpr (* sh[(t + k) % sh_size] = e; *)
  | Rbarrier
  | Rif of rstmt list (* if (t % 2 == 0) { ... }  — divergent *)
  | Rloop of int * rstmt list (* for (jL = 0; jL < c; jL++) { ... } — uniform *)

type rkernel = { rk_stmts : rstmt list }

let rec render_expr (b : Buffer.t) = function
  | Rin k -> Buffer.add_string b (Printf.sprintf "in[(i + %d) %% n]" k)
  | Rsh k -> Buffer.add_string b (Printf.sprintf "sh[(t + %d) %% %d]" k sh_size)
  | Racc -> Buffer.add_string b "acc"
  | Rconst k -> Buffer.add_string b (Printf.sprintf "%d.0f" k)
  | Rbin (op, x, y) ->
    Buffer.add_char b '(';
    render_expr b x;
    Buffer.add_char b ' ';
    Buffer.add_char b op;
    Buffer.add_char b ' ';
    render_expr b y;
    Buffer.add_char b ')'

let rec render_stmt (b : Buffer.t) ~(lvl : int) (indent : string) = function
  | Racc_upd (op, e) ->
    Buffer.add_string b (Printf.sprintf "%sacc = acc %c " indent op);
    render_expr b e;
    Buffer.add_string b ";\n"
  | Rsh_write (k, e) ->
    Buffer.add_string b (Printf.sprintf "%ssh[(t + %d) %% %d] = " indent k sh_size);
    render_expr b e;
    Buffer.add_string b ";\n"
  | Rbarrier -> Buffer.add_string b (indent ^ "__syncthreads();\n")
  | Rif body ->
    Buffer.add_string b (indent ^ "if (t % 2 == 0) {\n");
    List.iter (render_stmt b ~lvl:(lvl + 1) (indent ^ "  ")) body;
    Buffer.add_string b (indent ^ "}\n")
  | Rloop (c, body) ->
    Buffer.add_string b (Printf.sprintf "%sfor (j%d = 0; j%d < %d; j%d++) {\n" indent lvl lvl c lvl);
    List.iter (render_stmt b ~lvl:(lvl + 1) (indent ^ "  ")) body;
    Buffer.add_string b (indent ^ "}\n")

let render (k : rkernel) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "void randk(float *in, float *out, int n)\n{\n";
  Buffer.add_string b "  int t = threadIdx.x;\n";
  Buffer.add_string b "  int i = blockIdx.x * blockDim.x + t;\n";
  Buffer.add_string b "  int j0; int j1; int j2; int j3;\n";
  Buffer.add_string b (Printf.sprintf "  __shared__ float sh[%d];\n" sh_size);
  Buffer.add_string b (Printf.sprintf "  sh[t %% %d] = in[i %% n] + t;\n" sh_size);
  Buffer.add_string b "  __syncthreads();\n";
  Buffer.add_string b "  float acc = in[i % n];\n";
  List.iter (render_stmt b ~lvl:0 "  ") k.rk_stmts;
  Buffer.add_string b "  out[i % n] = acc;\n}\n";
  Buffer.contents b

let gen_expr : rexpr QCheck.Gen.t =
  QCheck.Gen.(
    sized_size (int_bound 3)
      (fix (fun self d ->
           let leaf =
             oneof
               [
                 map (fun k -> Rin k) (int_bound 5);
                 map (fun k -> Rsh k) (int_bound 5);
                 return Racc;
                 map (fun k -> Rconst k) (int_bound 5);
               ]
           in
           if d = 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 ( 3,
                   map3
                     (fun op x y -> Rbin (op, x, y))
                     (oneofl [ '+'; '-'; '*'; '/' ])
                     (self (d - 1)) (self (d - 1)) );
               ])))

(* [div] is true once we are under the tid-divergent branch: no barriers
   below that point.  [depth] bounds statement nesting at 2. *)
let rec gen_stmt ~(div : bool) ~(depth : int) : rstmt QCheck.Gen.t =
  QCheck.Gen.(
    let base =
      [
        (3, map2 (fun op e -> Racc_upd (op, e)) (oneofl [ '+'; '-'; '*' ]) gen_expr);
        (2, map2 (fun k e -> Rsh_write (k, e)) (int_bound 5) gen_expr);
      ]
    in
    let base = if div then base else (1, return Rbarrier) :: base in
    let nested =
      if depth = 0 then []
      else
        [
          (1, map (fun ss -> Rif ss) (gen_stmts ~div:true ~depth:(depth - 1)));
          ( 1,
            map2 (fun c ss -> Rloop (c, ss)) (int_range 1 3) (gen_stmts ~div ~depth:(depth - 1))
          );
        ]
    in
    frequency (base @ nested))

and gen_stmts ~div ~depth : rstmt list QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 1 4) (gen_stmt ~div ~depth))

let gen_kernel : rkernel QCheck.Gen.t =
  QCheck.Gen.map (fun ss -> { rk_stmts = ss }) (gen_stmts ~div:false ~depth:2)

(* Shrink by dropping statements, thinning nested bodies and shortening
   loops: counterexamples come back as minimal statement lists. *)
let rec shrink_stmt (s : rstmt) : rstmt QCheck.Iter.t =
  QCheck.Iter.(
    match s with
    | Racc_upd _ | Rsh_write _ | Rbarrier -> empty
    | Rif body -> map (fun b -> Rif b) (shrink_stmts body)
    | Rloop (c, body) ->
      append
        (if c > 1 then return (Rloop (c - 1, body)) else empty)
        (map (fun b -> Rloop (c, b)) (shrink_stmts body)))

and shrink_stmts (ss : rstmt list) : rstmt list QCheck.Iter.t =
  QCheck.Shrink.list ~shrink:shrink_stmt ss

let shrink_kernel (k : rkernel) : rkernel QCheck.Iter.t =
  QCheck.Iter.map (fun ss -> { rk_stmts = ss }) (shrink_stmts k.rk_stmts)

let print_kernel (k : rkernel) : string = render k

(* Run one random kernel through the driver: 2 blocks of 32 threads over
   a 64-element buffer, explicit h2d/launch/d2h as in the CUDA variant. *)
let run_random ~(jit : bool) (k : rkernel) : obs =
  let n = 64 in
  let ctx = Harness.create () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  let m = Harness.cuda_module ctx ~name:"randk" ~source:(render k) in
  let h_in = Harness.alloc_f32 ctx n and h_out = Harness.alloc_f32 ctx n in
  Harness.fill_f32 ctx h_in n (fun i -> (0.5 *. float_of_int ((i mod 7) + 1)) -. 1.0);
  Harness.fill_f32 ctx h_out n (fun _ -> 0.0);
  let d_in = Harness.dev_alloc ctx (4 * n) and d_out = Harness.dev_alloc ctx (4 * n) in
  Harness.h2d ctx ~src:h_in ~dst:d_in ~bytes:(4 * n);
  Harness.h2d ctx ~src:h_out ~dst:d_out ~bytes:(4 * n);
  let time =
    Harness.measure ctx (fun () ->
        ignore
          (Harness.launch_cuda ctx m ~entry:"randk" ~grid:(Simt.dim3 2) ~block:(Simt.dim3 32)
             [ Harness.fptr d_in; Harness.fptr d_out; Harness.vint n ]))
  in
  Harness.d2h ctx ~src:d_out ~dst:h_out ~bytes:(4 * n);
  { ob_time = time; ob_out = Harness.read_f32_array ctx h_out n; ob_log = launch_log ctx }

let prop_random_kernel_equivalence =
  QCheck.Test.make ~name:"random kernel: JIT == tree-walking interpreter" ~count:40
    (QCheck.make gen_kernel ~shrink:shrink_kernel ~print:print_kernel) (fun k ->
      let jit = run_random ~jit:true k in
      let interp = run_random ~jit:false k in
      bits jit.ob_out = bits interp.ob_out
      && jit.ob_log = interp.ob_log
      && jit.ob_time = interp.ob_time)

(* ---------------------------------------------------------------- *)
(* Corrupt JIT cache: both compiled forms must be rebuilt             *)
(* ---------------------------------------------------------------- *)

let saxpy_src =
  {|
int main(void)
{
  float x[10];
  float y[10];
  int i;
  for (i = 0; i < 10; i++) { x[i] = i; y[i] = 10.0f; }
  #pragma omp target map(to: x[0:10]) map(tofrom: y[0:10])
  {
    #pragma omp parallel for
    for (i = 0; i < 10; i++)
      y[i] = 2.0f * x[i] + y[i];
  }
  printf("y[0]=%f y[9]=%f\n", y[0], y[9]);
  return 0;
}
|}

let saxpy_expected = "y[0]=10.000000 y[9]=28.000000\n"

(* PTX mode.  The first run JIT-compiles the PTX and closure-compiles
   the module.  After a device reset (module table cleared, disk cache
   kept) the reload's cache hit is injected as corrupt: recovery must
   invalidate the entry AND the resident module, so the retry recompiles
   both forms — a second jit_compile and a second closure_compile. *)
let test_corrupt_cache_recompiles_both_forms () =
  let config = { Ompi.default_config with Ompi.binary_mode = Nvcc.Ptx } in
  let inst = Ompi.load ~config ~trace:true (Ompi.compile ~config ~name:"jit_corrupt" saxpy_src) in
  let tr =
    match inst.Ompi.i_trace with Some tr -> tr | None -> Alcotest.fail "instance has no trace"
  in
  let jit_events name = Perf.Trace.count_events tr ~cat:"jit" ~name () in
  let r1 = Ompi.run inst () in
  Alcotest.(check string) "clean run correct" saxpy_expected r1.Ompi.run_output;
  Alcotest.(check int) "one initial PTX compile" 1 (jit_events "jit_compile");
  Alcotest.(check int) "one initial closure compile" 1 (jit_events "closure_compile");
  Driver.reset (Hostrt.Rt.device inst.Ompi.i_rt 0).Hostrt.Rt.dev_driver;
  Hostrt.Rt.set_faults inst.Ompi.i_rt (Some (Hostrt.Faults.create (parse_ok "jit:nth=1")));
  let r2 = Ompi.run inst () in
  Alcotest.(check string) "recovered run correct" saxpy_expected r2.Ompi.run_output;
  Alcotest.(check int) "corrupt cache entry injected" 1
    (Perf.Trace.count_events tr ~cat:"fault" ~name:"fault_injected" ());
  Alcotest.(check int) "PTX recompiled after invalidation" 2 (jit_events "jit_compile");
  Alcotest.(check int) "closure form recompiled too" 2 (jit_events "closure_compile");
  Alcotest.(check (option string)) "device stays alive" None
    (Hostrt.Dataenv.dead_reason (Hostrt.Rt.device inst.Ompi.i_rt 0).Hostrt.Rt.dev_dataenv)

(* Compilation is once per module load, not per launch: relaunching must
   not add closure_compile events. *)
let test_compile_once_per_module () =
  let ctx = Harness.create () in
  let tr = Harness.enable_trace ctx in
  let app =
    match Suite.find "atax" with Some a -> a | None -> Alcotest.fail "atax not in suite"
  in
  let n = smallest app in
  ignore (app.Suite.ap_run ctx Harness.Ompi_cudadev ~n);
  let after_first = Perf.Trace.count_events tr ~cat:"jit" ~name:"closure_compile" () in
  Alcotest.(check bool) "at least one closure compile" true (after_first >= 1);
  ignore (app.Suite.ap_run ctx Harness.Ompi_cudadev ~n);
  let launches = List.length (Harness.driver ctx).Driver.launches in
  Alcotest.(check bool) "several launches recorded" true (launches > after_first);
  Alcotest.(check int) "no recompilation on relaunch" after_first
    (Perf.Trace.count_events tr ~cat:"jit" ~name:"closure_compile" ())

(* ---------------------------------------------------------------- *)

let () =
  let app_cases =
    List.map
      (fun (app : Suite.app) ->
        Alcotest.test_case (app.Suite.ap_name ^ " JIT == interpreter == reference") `Slow
          (test_app_differential app))
      Suite.all
  in
  Alcotest.run "jit"
    [
      ("differential", app_cases);
      ( "legs",
        [
          Alcotest.test_case "fault/zerocopy/elide/stream legs" `Slow test_config_legs;
          Alcotest.test_case "module carries closures iff jit on" `Quick
            test_module_carries_closures;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_random_kernel_equivalence ]);
      ( "cache",
        [
          Alcotest.test_case "corrupt cache recompiles PTX and closures" `Quick
            test_corrupt_cache_recompiles_both_forms;
          Alcotest.test_case "closure compile once per module load" `Quick
            test_compile_once_per_module;
        ] );
    ]
