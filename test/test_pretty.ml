(* Pretty-printer tests: C emission fidelity — precedence parentheses,
   declarators, directives — backed by re-parse checks. *)

open Minic

let expr_str src = Pretty.expr_to_string (Parser.parse_expr_string src)

let check = Alcotest.(check string)

let test_precedence_parens () =
  check "no spurious parens" "a + b * c" (expr_str "a + b * c");
  check "needed parens kept" "(a + b) * c" (expr_str "(a + b) * c");
  check "nested unary" "-(a + b)" (expr_str "-(a + b)");
  check "assign in condition" "a = b == 1" (expr_str "a = b == 1");
  check "comparison chain (parens redundant in C)" "a < b == c" (expr_str "(a < b) == c");
  check "shift vs add (add binds tighter)" "a << b + 1" (expr_str "a << (b + 1)");
  check "deref of sum" "*(p + i)" (expr_str "*(p + i)");
  check "addr of index" "&a[i]" (expr_str "&a[i]");
  check "cast tight binding" "(float)a / b" (expr_str "(float)a / b");
  check "ternary" "c ? 1 : 2" (expr_str "c ? 1 : 2");
  check "comma op" "f(a, (b, c))" (expr_str "f(a, (b, c))")

let test_float_literals () =
  check "float suffix" "1.5f" (expr_str "1.5f");
  check "double no suffix" "1.5" (expr_str "1.5");
  check "integral double gets point" "2.0" (expr_str "2.0");
  check "small float" "0.25f" (expr_str "0.25f")

let test_directive_printing () =
  let dir =
    {
      Ast.dir_constructs = [ Ast.C_target; Ast.C_teams; Ast.C_distribute; Ast.C_parallel; Ast.C_for ];
      dir_clauses =
        [
          Ast.Cnum_teams (Ast.int_lit 8);
          Ast.Ccollapse 2;
          Ast.Cmap (Ast.Map_tofrom, false, [ { Ast.mi_var = "x"; mi_sections = [ (Some (Ast.int_lit 0), Some (Ast.ident "n")) ] } ]);
          Ast.Creduction (Ast.Rd_add, [ "s" ]);
        ];
    }
  in
  check "combined directive"
    "#pragma omp target teams distribute parallel for num_teams(8) collapse(2) map(tofrom: x[0:n]) reduction(+: s)"
    (Format.asprintf "%a" Pretty.pp_directive dir)

let test_struct_and_globals () =
  let prog =
    Parser.parse_program "struct p { int a; float *b; };\nint counter;\nfloat table[4][4];"
  in
  let printed = Pretty.program_to_string prog in
  let reparsed = Parser.parse_program printed in
  Alcotest.(check bool) "globals roundtrip" true (Ast.equal_program prog reparsed)

let test_statement_shapes () =
  let roundtrip src =
    let p = Parser.parse_program src in
    Alcotest.(check bool) src true (Ast.equal_program p (Parser.parse_program (Pretty.program_to_string p)))
  in
  roundtrip "void f(void) { if (1) { } else { g(); } }\nvoid g(void) { }";
  roundtrip "void f(int n) { do { n--; } while (n > 0); }";
  roundtrip "void f(int n) { for (int i = 0, j = 1; i < n; i++) j += i; }";
  roundtrip "void f(int *p) { p[0] = p[1] = 0; }";
  roundtrip "void f(void) { int a[2][2] = { { 1, 2 }, { 3, 4 } }; }"

let test_kernel_file_emission () =
  (* a generated kernel file is valid C for our own parser *)
  let c = Ompi.compile ~name:"t" "void f(int n, float x[]) {\n#pragma omp target teams distribute parallel for map(to: n) map(tofrom: x[0:n])\nfor (int i = 0; i < n; i++) x[i] = i;\n}" in
  List.iter
    (fun (_, text) ->
      match Parser.parse_program text with
      | _ -> ()
      | exception Parser.Parse_error (m, _) -> Alcotest.failf "kernel not reparseable: %s\n%s" m text)
    c.Ompi.c_kernel_texts

let () =
  Alcotest.run "pretty"
    [
      ( "expressions",
        [
          Alcotest.test_case "precedence parentheses" `Quick test_precedence_parens;
          Alcotest.test_case "float literals" `Quick test_float_literals;
        ] );
      ( "programs",
        [
          Alcotest.test_case "directive printing" `Quick test_directive_printing;
          Alcotest.test_case "structs and globals" `Quick test_struct_and_globals;
          Alcotest.test_case "statement shapes" `Quick test_statement_shapes;
          Alcotest.test_case "kernel files reparse" `Quick test_kernel_file_emission;
        ] );
    ]
