(* Multi-device offloading, end to end (the PR 9 tentpole).

   A runtime created with [~devices:n] holds n simultaneously-live
   device instances; default-device [distribute] launches shard the
   team space across the farm under a three-phase memory protocol
   (broadcast, ascending launches with atomic-byte exchange, ascending
   merge) that must replay the single-device schedule byte for byte.
   This suite checks:

   - differential legs: a pure-writes gemm and an atomic-chain dot run
     on 1/2/3/4-device farms, against the host interpreter, under the
     closure JIT and the tree-walking interpreter, and with transfer
     elision — every leg bit-identical, with one shard launch per
     device and the shard block counts summing to the full grid;

   - [Multidev.plan] unit tests: contiguous non-empty proportional
     intervals, skew following the compute weights, and the
     [Invalid_argument] cases;

   - a QCheck property over random grid geometries x farm sizes x
     heterogeneous device specs (clock skews move the shard boundaries)
     asserting bit-identity against the 1-device run for both the
     pure-writes and the atomic-chain kernel;

   - the cross-device RAW rule: the dot publish chain forces a
     D2H-from-device-A-before-H2D-to-device-B exchange, visible as a
     cat:"shard" [xdev_dep] instant, without moving the bytes;

   - device(n) pinning (no sharding, runs on that device alone),
     omp_get_num_devices / default-device bookkeeping, the graceful
     Map_error for device(n) past the farm, and the fault leg: a fatal
     fault on a secondary's shard host-falls-back that shard only,
     bit-identically, leaving the primary alive. *)

open Polybench

(* ---------------------------------------------------------------- *)
(* Kernels                                                            *)
(* ---------------------------------------------------------------- *)

(* Pure writes: every c element produced by exactly one thread. *)
let gemm_src =
  {|
void gemm_md(int n, int teams, int nthr, float a[], float b[], float c[])
{
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(nthr) \
      map(to: n, a[0:n*n], b[0:n*n]) map(tofrom: c[0:n*n])
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      float acc = 0.0f;
      for (int k = 0; k < n; k++)
        acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc + c[i * n + j];
    }
}
|}

(* Atomic chain: one publish atomic per team into s, so shard k+1's
   result depends on the bytes shard k left behind. *)
let dot_src =
  {|
void dot_md(int n, int teams, int nthr, float x[], float y[], float out[])
{
  float s = 0.0f;
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(nthr) \
      reduction(+: s) map(to: n, x[0:n], y[0:n]) map(tofrom: s)
  for (int i = 0; i < n; i++)
    s += x[i] * y[i];
  out[0] = s;
}
|}

let f_a i = Refmath.r32 (float_of_int ((i * 7) mod 23) /. 23.0)

let f_b i = Refmath.r32 (float_of_int ((i * 5) mod 17) /. 17.0)

let f_c i = Refmath.r32 (float_of_int ((i mod 9) - 4) /. 8.0)

(* ---------------------------------------------------------------- *)
(* Observation: bits + per-device launch counters + simulated time    *)
(* ---------------------------------------------------------------- *)

let launch_log ctx : string list =
  let rt = ctx.Harness.rt in
  List.concat
    (List.init (Hostrt.Rt.num_devices rt) (fun d ->
         List.rev_map
           (fun (s : Gpusim.Driver.launch_stats) ->
             let c = s.Gpusim.Driver.st_counters in
             Printf.sprintf "dev%d %s: blocks=%d/%d atomics=%d thread_sum=%.3f time_ns=%.6f" d
               s.Gpusim.Driver.st_entry c.Gpusim.Counters.blocks_executed
               c.Gpusim.Counters.blocks_total c.Gpusim.Counters.atomics
               c.Gpusim.Counters.thread_inst_sum
               s.Gpusim.Driver.st_breakdown.Gpusim.Costmodel.bd_time_ns)
           (Hostrt.Rt.device rt d).Hostrt.Rt.dev_driver.Gpusim.Driver.launches))

let launches_on ctx d =
  List.length (Hostrt.Rt.device ctx.Harness.rt d).Hostrt.Rt.dev_driver.Gpusim.Driver.launches

let blocks_executed ctx : int =
  let rt = ctx.Harness.rt in
  List.fold_left ( + ) 0
    (List.concat
       (List.init (Hostrt.Rt.num_devices rt) (fun d ->
            List.map
              (fun (s : Gpusim.Driver.launch_stats) ->
                s.Gpusim.Driver.st_counters.Gpusim.Counters.blocks_executed)
              (Hostrt.Rt.device rt d).Hostrt.Rt.dev_driver.Gpusim.Driver.launches)))

let dead ctx d = Hostrt.Dataenv.is_dead (Hostrt.Rt.device ctx.Harness.rt d).Hostrt.Rt.dev_dataenv

type obs = { ob_bits : int32 array; ob_time : float; ob_log : string list }

let run_gemm ?(host_interp = false) ?(jit = true) ?(elide = false) ?specs ?faults ~devices ~n
    ~teams ~nthr () : obs * Harness.ctx =
  let ctx = Harness.create ~devices ?specs () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  Harness.set_elide ctx elide;
  (match faults with None -> () | Some rules -> Harness.set_faults ctx ~seed:7 rules);
  let nn = n * n in
  let a = Harness.alloc_f32 ctx nn and b = Harness.alloc_f32 ctx nn in
  let c = Harness.alloc_f32 ctx nn in
  Harness.fill_f32 ctx a nn f_a;
  Harness.fill_f32 ctx b nn f_b;
  Harness.fill_f32 ctx c nn f_c;
  let p = Harness.prepare_omp ~host_interp ctx ~name:"md_gemm" gemm_src in
  let t =
    Harness.measure ctx (fun () ->
        Harness.call_omp p "gemm_md"
          [ Harness.vint n; Harness.vint teams; Harness.vint nthr; Harness.fptr a; Harness.fptr b;
            Harness.fptr c ])
  in
  ( { ob_bits = Array.map Int32.bits_of_float (Harness.read_f32_array ctx c nn);
      ob_time = t;
      ob_log = launch_log ctx
    },
    ctx )

let run_dot ?(host_interp = false) ?(jit = true) ?specs ~devices ~n ~teams ~nthr () :
    obs * Harness.ctx =
  let ctx = Harness.create ~devices ?specs () in
  Harness.set_sampling ctx None;
  Harness.set_jit ctx jit;
  let x = Harness.alloc_f32 ctx n and y = Harness.alloc_f32 ctx n in
  let out = Harness.alloc_f32 ctx 1 in
  Harness.fill_f32 ctx x n f_a;
  Harness.fill_f32 ctx y n f_b;
  let p = Harness.prepare_omp ~host_interp ctx ~name:"md_dot" dot_src in
  let t =
    Harness.measure ctx (fun () ->
        Harness.call_omp p "dot_md"
          [ Harness.vint n; Harness.vint teams; Harness.vint nthr; Harness.fptr x; Harness.fptr y;
            Harness.fptr out ])
  in
  ( { ob_bits = [| Int32.bits_of_float (Harness.get_f32 ctx out 0) |];
      ob_time = t;
      ob_log = launch_log ctx
    },
    ctx )

(* ---------------------------------------------------------------- *)
(* Differential legs                                                  *)
(* ---------------------------------------------------------------- *)

let gemm_n = 24

let gemm_teams = 12

let dot_n = 1024

let dot_teams = 8

let test_gemm_farm_differential () =
  let solo, solo_ctx = run_gemm ~devices:1 ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  let host, _ = run_gemm ~host_interp:true ~devices:1 ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  Alcotest.(check bool) "1-device bytes = host interpreter" true (solo.ob_bits = host.ob_bits);
  Alcotest.(check int) "1 device: full grid executed" gemm_teams (blocks_executed solo_ctx);
  List.iter
    (fun devices ->
      let farm, ctx = run_gemm ~devices ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
      Alcotest.(check bool)
        (Printf.sprintf "%d-device bytes = 1-device bytes" devices)
        true (farm.ob_bits = solo.ob_bits);
      for d = 0 to devices - 1 do
        Alcotest.(check int) (Printf.sprintf "%d devices: one shard on device %d" devices d) 1
          (launches_on ctx d)
      done;
      Alcotest.(check int)
        (Printf.sprintf "%d devices: shard blocks sum to the grid" devices)
        gemm_teams (blocks_executed ctx))
    [ 2; 3; 4 ]

let test_dot_farm_differential () =
  let solo, _ = run_dot ~devices:1 ~n:dot_n ~teams:dot_teams ~nthr:64 () in
  let host, _ = run_dot ~host_interp:true ~devices:1 ~n:dot_n ~teams:dot_teams ~nthr:64 () in
  let dev = Int32.float_of_bits solo.ob_bits.(0) in
  let ref_ = Int32.float_of_bits host.ob_bits.(0) in
  Alcotest.(check bool) "1-device dot close to sequential host" true
    (Float.abs (dev -. ref_) <= 1e-3 *. Float.max 1.0 (Float.abs ref_));
  List.iter
    (fun devices ->
      let farm, ctx = run_dot ~devices ~n:dot_n ~teams:dot_teams ~nthr:64 () in
      Alcotest.(check bool)
        (Printf.sprintf "%d-device atomic chain bit-identical to 1 device" devices)
        true (farm.ob_bits = solo.ob_bits);
      Alcotest.(check int)
        (Printf.sprintf "%d devices: shard blocks sum to the grid" devices)
        dot_teams (blocks_executed ctx))
    [ 2; 3; 4 ]

(* The closure JIT may only move wall clock: bits, per-shard counters
   and simulated time are identical on a sharded farm. *)
let test_executors_agree_on_farm () =
  let jit, _ = run_gemm ~devices:3 ~jit:true ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  let interp, _ = run_gemm ~devices:3 ~jit:false ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  Alcotest.(check bool) "bits identical (jit vs --no-jit)" true (jit.ob_bits = interp.ob_bits);
  Alcotest.(check (list string)) "per-shard counters identical" interp.ob_log jit.ob_log;
  Alcotest.(check (float 0.0)) "simulated time identical" interp.ob_time jit.ob_time

(* Transfer elision may drop broadcasts, never bytes. *)
let test_elision_on_farm () =
  let plain, _ = run_gemm ~devices:2 ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  let elided, _ = run_gemm ~devices:2 ~elide:true ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  Alcotest.(check bool) "elided farm bytes identical" true (elided.ob_bits = plain.ob_bits)

(* A fatal fault on the second shard launch (device 1, ascending order)
   host-falls-back that shard only: same bytes, device 0 alive. *)
let test_secondary_death_fallback () =
  let rules =
    match Hostrt.Faults.parse "launch:nth=2,kind=fatal" with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let solo, _ = run_gemm ~devices:1 ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  let faulted, ctx = run_gemm ~devices:2 ~faults:rules ~n:gemm_n ~teams:gemm_teams ~nthr:64 () in
  Alcotest.(check bool) "bytes survive the secondary's death" true
    (faulted.ob_bits = solo.ob_bits);
  Alcotest.(check bool) "device 1 dead" true (dead ctx 1);
  Alcotest.(check bool) "device 0 alive" false (dead ctx 0)

(* ---------------------------------------------------------------- *)
(* Cross-device RAW arbitration                                       *)
(* ---------------------------------------------------------------- *)

(* The dot publish chain makes shard 1 (device 1) read the s bytes
   shard 0 (device 0) wrote: the runtime must drain device 0's D2H
   before device 1's H2D, surfacing as an xdev_dep wait instant. *)
let test_xdev_raw_arbitration () =
  let ctx = Harness.create ~devices:2 () in
  Harness.set_sampling ctx None;
  let tr = Harness.enable_trace ctx in
  let x = Harness.alloc_f32 ctx dot_n and y = Harness.alloc_f32 ctx dot_n in
  let out = Harness.alloc_f32 ctx 1 in
  Harness.fill_f32 ctx x dot_n f_a;
  Harness.fill_f32 ctx y dot_n f_b;
  let p = Harness.prepare_omp ctx ~name:"md_dot_tr" dot_src in
  Harness.call_omp p "dot_md"
    [ Harness.vint dot_n; Harness.vint dot_teams; Harness.vint 64; Harness.fptr x;
      Harness.fptr y; Harness.fptr out ];
  let solo, _ = run_dot ~devices:1 ~n:dot_n ~teams:dot_teams ~nthr:64 () in
  Alcotest.(check int32) "chained value bit-identical" solo.ob_bits.(0)
    (Int32.bits_of_float (Harness.get_f32 ctx out 0));
  Alcotest.(check bool) "cross-device dependency wait recorded" true
    (Perf.Trace.count_events tr ~cat:"shard" ~name:"xdev_dep" () >= 1);
  Alcotest.(check bool) "shard plan recorded" true
    (Perf.Trace.count_events tr ~cat:"shard" ~name:"shard_plan" () >= 1)

(* ---------------------------------------------------------------- *)
(* device(n) pinning and the omp_* device API                         *)
(* ---------------------------------------------------------------- *)

let pinned_src =
  {|
void vs1(int n, int teams, float x[], float y[])
{
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(64) \
      device(1) map(to: n, x[0:n]) map(tofrom: y[0:n])
  for (int i = 0; i < n; i++)
    y[i] = 2.0f * x[i] + y[i];
}
|}

let test_device_clause_pins () =
  let n = 256 in
  let ctx = Harness.create ~devices:3 () in
  Harness.set_sampling ctx None;
  let x = Harness.alloc_f32 ctx n and y = Harness.alloc_f32 ctx n in
  Harness.fill_f32 ctx x n f_a;
  Harness.fill_f32 ctx y n f_b;
  let p = Harness.prepare_omp ctx ~name:"md_pin" pinned_src in
  Harness.call_omp p "vs1"
    [ Harness.vint n; Harness.vint 4; Harness.fptr x; Harness.fptr y ];
  Alcotest.(check int) "pinned device ran the whole region" 1 (launches_on ctx 1);
  Alcotest.(check int) "device 0 idle" 0 (launches_on ctx 0);
  Alcotest.(check int) "device 2 idle" 0 (launches_on ctx 2);
  let expect = Array.init n (fun i -> Refmath.r32 ((2.0 *. f_a i) +. f_b i)) in
  Alcotest.(check bool) "pinned bytes correct" true
    (Array.map Int32.bits_of_float (Harness.read_f32_array ctx y n)
    = Array.map Int32.bits_of_float expect)

let query_src =
  {|
void qdev(int out[])
{
  out[0] = omp_get_num_devices();
  out[1] = omp_get_default_device();
  omp_set_default_device(1);
  out[2] = omp_get_default_device();
  out[3] = omp_is_initial_device();
}
|}

let test_device_api () =
  let ctx = Harness.create ~devices:3 () in
  let out = Harness.alloc_i32 ctx 4 in
  Harness.fill_i32 ctx out 4 (fun _ -> -1);
  let p = Harness.prepare_omp ctx ~name:"md_query" query_src in
  Harness.call_omp p "qdev" [ Harness.fptr out ];
  Alcotest.(check (list int)) "omp device API bookkeeping" [ 3; 0; 1; 1 ]
    (Array.to_list (Harness.read_i32_array ctx out 4))

let oob_src =
  {|
void vs9(int n, float x[], float y[])
{
  #pragma omp target teams distribute parallel for num_teams(2) num_threads(32) \
      device(9) map(to: n, x[0:n]) map(tofrom: y[0:n])
  for (int i = 0; i < n; i++)
    y[i] = x[i] + y[i];
}
|}

let test_device_out_of_range () =
  let n = 64 in
  let ctx = Harness.create ~devices:2 () in
  let x = Harness.alloc_f32 ctx n and y = Harness.alloc_f32 ctx n in
  Harness.fill_f32 ctx x n f_a;
  Harness.fill_f32 ctx y n f_b;
  let p = Harness.prepare_omp ctx ~name:"md_oob" oob_src in
  match Harness.call_omp p "vs9" [ Harness.vint n; Harness.fptr x; Harness.fptr y ] with
  | () -> Alcotest.fail "device(9) on a 2-device farm did not fail"
  | exception Hostrt.Dataenv.Map_error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) ("error names the device: " ^ msg) true (contains msg "device(9)")

(* ---------------------------------------------------------------- *)
(* Multidev.plan units                                                *)
(* ---------------------------------------------------------------- *)

let check_cover ~total (bounds : (int * int) array) =
  Alcotest.(check int) "first shard starts at 0" 0 (fst bounds.(0));
  Alcotest.(check int) "last shard ends at total" total (snd bounds.(Array.length bounds - 1));
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) (Printf.sprintf "shard %d non-empty" i) true (hi > lo);
      if i > 0 then
        Alcotest.(check int) (Printf.sprintf "shard %d contiguous" i) (snd bounds.(i - 1)) lo)
    bounds

let test_plan_units () =
  let even = Hostrt.Multidev.plan ~total_blocks:64 ~weights:[| 1.0; 1.0; 1.0; 1.0 |] in
  check_cover ~total:64 even;
  Array.iter (fun (lo, hi) -> Alcotest.(check int) "even split" 16 (hi - lo)) even;
  let skew = Hostrt.Multidev.plan ~total_blocks:30 ~weights:[| 2.0; 1.0 |] in
  check_cover ~total:30 skew;
  Alcotest.(check int) "heavy device gets 2/3" 20 (snd skew.(0) - fst skew.(0));
  let tight = Hostrt.Multidev.plan ~total_blocks:3 ~weights:[| 5.0; 1.0; 1.0 |] in
  check_cover ~total:3 tight;
  Array.iter (fun (lo, hi) -> Alcotest.(check int) "one block each" 1 (hi - lo)) tight;
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "fewer blocks than devices rejected" true
    (raises (fun () -> ignore (Hostrt.Multidev.plan ~total_blocks:1 ~weights:[| 1.0; 1.0 |])));
  Alcotest.(check bool) "no weights rejected" true
    (raises (fun () -> ignore (Hostrt.Multidev.plan ~total_blocks:8 ~weights:[||])));
  let w = Hostrt.Multidev.device_weight Gpusim.Spec.jetson_nano_2gb in
  let double =
    Hostrt.Multidev.device_weight
      { Gpusim.Spec.jetson_nano_2gb with Gpusim.Spec.gpu_clock_hz = 2.0 *. Gpusim.Spec.jetson_nano_2gb.Gpusim.Spec.gpu_clock_hz }
  in
  Alcotest.(check (float 1e-6)) "weight scales with clock" (2.0 *. w) double

(* ---------------------------------------------------------------- *)
(* QCheck: bit-identity over geometry x farm x heterogeneous specs     *)
(* ---------------------------------------------------------------- *)

let spec_of_mult m =
  let base = Gpusim.Spec.jetson_nano_2gb in
  {
    base with
    Gpusim.Spec.name = Printf.sprintf "%s x%.2g" base.Gpusim.Spec.name m;
    gpu_clock_hz = base.Gpusim.Spec.gpu_clock_hz *. m;
  }

let farm_gen =
  QCheck.Gen.(
    let* devices = int_range 1 4 in
    let* mults =
      List.fold_right
        (fun _ acc ->
          let* rest = acc in
          let* m = oneofl [ 0.5; 1.0; 1.5; 2.0 ] in
          return (m :: rest))
        (List.init devices (fun i -> i))
        (return [])
    in
    let* teams = int_range 1 20 in
    let* nthr = oneofl [ 32; 64 ] in
    let* n = map (fun k -> 128 * (k + 1)) (int_range 0 7) in
    let* atomic = bool in
    return (devices, mults, teams, nthr, n, atomic))

let prop_farm_bit_identity =
  QCheck.Test.make ~name:"any farm reproduces the 1-device bytes" ~count:10
    (QCheck.make farm_gen) (fun (devices, mults, teams, nthr, n, atomic) ->
      let specs = List.map spec_of_mult mults in
      let run ~devices ~specs =
        if atomic then fst (run_dot ~devices ~specs ~n ~teams ~nthr ())
        else fst (run_gemm ~devices ~specs ~n:24 ~teams ~nthr ())
      in
      let solo = run ~devices:1 ~specs:[ Gpusim.Spec.jetson_nano_2gb ] in
      let farm = run ~devices ~specs in
      if farm.ob_bits <> solo.ob_bits then
        QCheck.Test.fail_reportf
          "bytes differ: %d device(s), mults [%s], teams=%d nthr=%d n=%d %s" devices
          (String.concat "; " (List.map string_of_float mults))
          teams nthr n
          (if atomic then "atomic dot" else "gemm");
      true)

let () =
  Alcotest.run "multidev"
    [
      ( "differential",
        [
          Alcotest.test_case "gemm across farm sizes" `Quick test_gemm_farm_differential;
          Alcotest.test_case "dot atomic chain across farm sizes" `Quick
            test_dot_farm_differential;
          Alcotest.test_case "executors agree on a farm" `Quick test_executors_agree_on_farm;
          Alcotest.test_case "elision moves no bytes" `Quick test_elision_on_farm;
          Alcotest.test_case "secondary death host-falls-back its shard" `Quick
            test_secondary_death_fallback;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "cross-device RAW arbitration" `Quick test_xdev_raw_arbitration;
          Alcotest.test_case "device(n) pins without sharding" `Quick test_device_clause_pins;
          Alcotest.test_case "omp device API" `Quick test_device_api;
          Alcotest.test_case "device(n) past the farm fails gracefully" `Quick
            test_device_out_of_range;
        ] );
      ("plan", [ Alcotest.test_case "plan units" `Quick test_plan_units ]);
      ("property", [ QCheck_alcotest.to_alcotest prop_farm_bit_identity ]);
    ]
