(* Fault-injection + recovery tests (Hostrt.Faults / Hostrt.Resilience):
   spec parsing, deterministic schedules, the backoff formula, and the
   three end-to-end recovery stories — retry with backoff on a transient
   fault, JIT-cache invalidation + recompile on a corrupt cache entry,
   and graceful degradation to the host path (with device-state salvage)
   when the device is declared dead. *)

open Hostrt

(* ---------------- spec parsing ---------------- *)

let parse_ok spec =
  match Faults.parse spec with
  | Ok rules -> rules
  | Error msg -> Alcotest.failf "spec %S should parse: %s" spec msg

let test_parse_ok () =
  (match parse_ok "transfer:nth=2" with
  | [ r ] ->
    Alcotest.(check bool) "transfer watches h2d+d2h" true
      (List.mem Faults.H2d r.Faults.r_sites
      && List.mem Faults.D2h r.Faults.r_sites
      && List.length r.Faults.r_sites = 2);
    Alcotest.(check (list int)) "nth" [ 2 ] r.Faults.r_nths;
    Alcotest.(check bool) "transfers default transient" true
      (Faults.equal_kind r.Faults.r_kind Faults.Transient)
  | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs));
  (match parse_ok "alloc" with
  | [ r ] ->
    Alcotest.(check bool) "alloc defaults fatal" true
      (Faults.equal_kind r.Faults.r_kind Faults.Fatal);
    Alcotest.(check (option int)) "bare site = fail every call" (Some 1) r.Faults.r_from
  | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs));
  (match parse_ok "jit:nth=1" with
  | [ r ] ->
    Alcotest.(check bool) "jit cache defaults corrupt" true
      (Faults.equal_kind r.Faults.r_kind Faults.Corrupt_cache)
  | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs));
  (match parse_ok "h2d:nth=1,nth=3,kind=fatal" with
  | [ r ] ->
    Alcotest.(check (list int)) "repeatable nth" [ 1; 3 ] r.Faults.r_nths;
    Alcotest.(check bool) "kind override" true (Faults.equal_kind r.Faults.r_kind Faults.Fatal)
  | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs));
  match parse_ok "launch:p=0.5;transfer:p=0.1" with
  | [ a; b ] ->
    Alcotest.(check (float 0.0)) "p of rule 1" 0.5 a.Faults.r_prob;
    Alcotest.(check (float 0.0)) "p of rule 2" 0.1 b.Faults.r_prob
  | rs -> Alcotest.failf "expected 2 rules, got %d" (List.length rs)

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Faults.parse spec with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" spec
      | Error _ -> ())
    [ ""; ";"; "warp"; "launch:nth=x"; "launch:nth=0"; "h2d:p=1.5"; "h2d:wibble=1";
      "launch:kind=flaky"; "launch:nth" ]

(* ---------------- deterministic schedules ---------------- *)

let fire_pattern ~seed n =
  let t = Faults.create ~seed (parse_ok "launch:p=0.3") in
  List.init n (fun _ ->
      match Faults.check t Faults.Launch with
      | () -> false
      | exception Faults.Injected _ -> true)

let test_probability_deterministic () =
  Alcotest.(check (list bool)) "same seed, same schedule" (fire_pattern ~seed:7 200)
    (fire_pattern ~seed:7 200);
  Alcotest.(check bool) "different seed, different schedule" true
    (fire_pattern ~seed:7 200 <> fire_pattern ~seed:8 200)

let test_scripted_nth_and_reset () =
  let t = Faults.create (parse_ok "launch:nth=2") in
  let fires () =
    List.init 4 (fun _ ->
        match Faults.check t Faults.Launch with
        | () -> false
        | exception Faults.Injected { i_site; _ } ->
          Alcotest.(check bool) "site" true (Faults.equal_site i_site Faults.Launch);
          true)
  in
  Alcotest.(check (list bool)) "only the 2nd call" [ false; true; false; false ] (fires ());
  Alcotest.(check int) "fired once" 1 (Faults.total_fired t);
  Alcotest.(check int) "4 calls counted" 4 (Faults.total_calls t);
  Faults.reset t;
  Alcotest.(check (list bool)) "reset replays the plan" [ false; true; false; false ] (fires ())

(* ---------------- backoff formula ---------------- *)

let test_backoff_formula () =
  let p = Resilience.default_policy in
  Alcotest.(check (list (float 0.0))) "50us * 4^(attempt-1)" [ 50.0; 200.0; 800.0 ]
    (List.map (Resilience.backoff_us p) [ 1; 2; 3 ]);
  let p2 = { p with Resilience.rp_base_backoff_us = 10.0; Resilience.rp_backoff_mult = 2.0 } in
  Alcotest.(check (float 0.0)) "custom policy" 40.0 (Resilience.backoff_us p2 3)

(* ---------------- end-to-end recovery ---------------- *)

let saxpy_src =
  {|
int main(void)
{
  float x[10];
  float y[10];
  int i;
  for (i = 0; i < 10; i++) { x[i] = i; y[i] = 10.0f; }
  #pragma omp target map(to: x[0:10]) map(tofrom: y[0:10])
  {
    #pragma omp parallel for
    for (i = 0; i < 10; i++)
      y[i] = 2.0f * x[i] + y[i];
  }
  printf("y[0]=%f y[9]=%f\n", y[0], y[9]);
  return 0;
}
|}

let saxpy_expected = "y[0]=10.000000 y[9]=28.000000\n"

let load ?(mode = Gpusim.Nvcc.Cubin) ?(faults = "") src =
  let rules = if faults = "" then [] else parse_ok faults in
  let config = { Ompi.default_config with Ompi.binary_mode = mode; Ompi.faults = rules } in
  Ompi.load ~config ~trace:true (Ompi.compile ~config ~name:"faults_e2e" src)

let trace_of inst =
  match inst.Ompi.i_trace with Some tr -> tr | None -> Alcotest.fail "instance has no trace"

let count inst name = Perf.Trace.count_events (trace_of inst) ~cat:"fault" ~name ()

let backoff_delays inst =
  Perf.Trace.find_events (trace_of inst) ~cat:"fault" ~name:"retry_backoff" ()
  |> List.filter_map (fun e ->
         match List.assoc_opt "delay_us" e.Perf.Trace.ev_args with
         | Some (Perf.Trace.Float f) -> Some f
         | _ -> None)

let dead_reason inst =
  Dataenv.dead_reason (Rt.device inst.Ompi.i_rt 0).Rt.dev_dataenv

let test_transient_transfer_retries () =
  (* Fail the 2nd and 3rd transfer calls: the h2d of y fails twice in a
     row, then succeeds; the two backoffs must grow geometrically and be
     charged to the simulated clock. *)
  let clean = Ompi.run (load saxpy_src) () in
  let inst = load ~faults:"transfer:nth=2,nth=3" saxpy_src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "result correct despite faults" saxpy_expected r.Ompi.run_output;
  Alcotest.(check int) "two faults injected" 2 (count inst "fault_injected");
  Alcotest.(check (list (float 0.0))) "backoff grows per attempt" [ 50.0; 200.0 ]
    (backoff_delays inst);
  Alcotest.(check (option string)) "device stays alive" None (dead_reason inst);
  Alcotest.(check int) "no fallback" 0 (count inst "host_fallback");
  Alcotest.(check bool) "backoff charged to the simulated clock" true
    (r.Ompi.run_time_s -. clean.Ompi.run_time_s >= 250e-6)

let test_retry_exhaustion_falls_back () =
  (* Every launch fails: 1 try + 3 retries, then the device is declared
     dead and the target region re-executes on the host path. *)
  let inst = load ~faults:"launch:from=1" saxpy_src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "host fallback result correct" saxpy_expected r.Ompi.run_output;
  Alcotest.(check int) "1 try + 3 retries" 4 (count inst "fault_injected");
  Alcotest.(check (list (float 0.0))) "full backoff ladder" [ 50.0; 200.0; 800.0 ]
    (backoff_delays inst);
  Alcotest.(check int) "retries exhausted" 1 (count inst "retry_exhausted");
  Alcotest.(check int) "device declared dead" 1 (count inst "device_dead");
  Alcotest.(check int) "host fallback taken" 1 (count inst "host_fallback");
  Alcotest.(check bool) "dead reason recorded" true (dead_reason inst <> None);
  Alcotest.(check int) "nothing ran on the device" 0 r.Ompi.run_kernel_launches

let test_fatal_alloc_no_retry () =
  (* Alloc faults are fatal (OOM on a 2GB board): no retries, immediate
     degradation, still the right answer. *)
  let inst = load ~faults:"alloc:nth=1" saxpy_src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "host fallback result correct" saxpy_expected r.Ompi.run_output;
  Alcotest.(check int) "fatal recorded" 1 (count inst "fault_fatal");
  Alcotest.(check int) "no retries for fatal faults" 0 (count inst "retry_backoff");
  Alcotest.(check int) "host fallback taken" 1 (count inst "host_fallback");
  Alcotest.(check bool) "device dead" true (dead_reason inst <> None)

let test_corrupt_jit_cache_recompiles () =
  (* PTX mode.  First run JIT-compiles and populates the cache.  After a
     device reset (which keeps the on-disk JIT cache), the reload hits
     the cache — injected as corrupt — so recovery must invalidate the
     entry and recompile, visible as a second jit_compile event. *)
  let inst = load ~mode:Gpusim.Nvcc.Ptx saxpy_src in
  let r1 = Ompi.run inst () in
  Alcotest.(check string) "warm run correct" saxpy_expected r1.Ompi.run_output;
  let tr = trace_of inst in
  Alcotest.(check int) "one initial jit compile" 1
    (Perf.Trace.count_events tr ~cat:"jit" ~name:"jit_compile" ());
  Gpusim.Driver.reset (Rt.device inst.Ompi.i_rt 0).Rt.dev_driver;
  Rt.set_faults inst.Ompi.i_rt (Some (Faults.create (parse_ok "jit:nth=1")));
  let r2 = Ompi.run inst () in
  Alcotest.(check string) "recovered run correct" saxpy_expected r2.Ompi.run_output;
  Alcotest.(check int) "corrupt cache entry injected" 1 (count inst "fault_injected");
  Alcotest.(check int) "retried after invalidation" 1 (count inst "retry_backoff");
  Alcotest.(check int) "recompiled from source" 2
    (Perf.Trace.count_events tr ~cat:"jit" ~name:"jit_compile" ());
  Alcotest.(check (option string)) "device stays alive" None (dead_reason inst)

let test_dead_device_salvages_resident_data () =
  (* [target enter data] keeps [a] resident across two regions; the
     second region's launches all fail.  The first region's result lives
     only in device memory at that point, so declaring the device dead
     must salvage it back before the host path re-runs region two. *)
  let src =
    {|
int main(void)
{
  float a[4];
  int i;
  for (i = 0; i < 4; i++) a[i] = 1.0f;
  #pragma omp target enter data map(to: a[0:4])
  #pragma omp target map(tofrom: a[0:4])
  {
    #pragma omp parallel for
    for (i = 0; i < 4; i++)
      a[i] = a[i] + 1.0f;
  }
  #pragma omp target map(tofrom: a[0:4])
  {
    #pragma omp parallel for
    for (i = 0; i < 4; i++)
      a[i] = a[i] * 2.0f;
  }
  #pragma omp target exit data map(from: a[0:4])
  printf("a0=%f a3=%f\n", a[0], a[3]);
  return 0;
}
|}
  in
  let inst = load ~faults:"launch:from=2" src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "salvaged (1+1)*2" "a0=4.000000 a3=4.000000\n" r.Ompi.run_output;
  Alcotest.(check int) "first region ran on the device" 1 r.Ompi.run_kernel_launches;
  Alcotest.(check bool) "resident data salvaged" true (count inst "salvage" >= 1);
  Alcotest.(check int) "second region fell back" 1 (count inst "host_fallback");
  Alcotest.(check bool) "device dead" true (dead_reason inst <> None)

(* ----------------- faults under asynchronous offloading ----------------- *)

(* Two nowait tiles behind a taskwait; each tile writes its half of y
   through a pointer local (array sections must start at 0). *)
let nowait_src =
  {|
int main(void)
{
  float x[8];
  float y[16];
  int t;
  int i;
  for (i = 0; i < 8; i++) x[i] = i;
  for (i = 0; i < 16; i++) y[i] = 0.0f;
  #pragma omp target data map(to: x[0:8])
  {
    for (t = 0; t < 2; t++) {
      float *yt = y + t * 8;
      #pragma omp target nowait map(to: x[0:8]) map(from: yt[0:8])
      {
        #pragma omp parallel for
        for (i = 0; i < 8; i++)
          yt[i] = 2.0f * x[i] + 1.0f;
      }
    }
    #pragma omp taskwait
  }
  printf("y[0]=%f y[15]=%f\n", y[0], y[15]);
  return 0;
}
|}

let nowait_expected = "y[0]=1.000000 y[15]=15.000000\n"

let test_async_transient_launch_recovers () =
  (* The second tile's launch fails once inside its nowait region; the
     retry ladder absorbs it without abandoning the device. *)
  let inst = load ~faults:"launch:nth=2" nowait_src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "async result correct despite fault" nowait_expected r.Ompi.run_output;
  Alcotest.(check int) "one fault injected" 1 (count inst "fault_injected");
  Alcotest.(check bool) "absorbed by retry" true (List.length (backoff_delays inst) >= 1);
  Alcotest.(check int) "no fallback" 0 (count inst "host_fallback");
  Alcotest.(check (option string)) "device stays alive" None (dead_reason inst);
  Alcotest.(check bool) "both tiles enqueued async" true
    (Perf.Trace.count_events (trace_of inst) ~cat:"async" ~name:"enqueue" () >= 2)

let test_async_persistent_transfer_falls_back () =
  (* From the 3rd transfer on, every copy fails: retries exhaust inside
     a nowait region, the queue is quiesced, the device declared dead,
     and the region re-executes inline on the host.  Eager effects keep
     the already-completed tile's result intact. *)
  let inst = load ~faults:"transfer:from=3" nowait_src in
  let r = Ompi.run inst () in
  Alcotest.(check string) "host fallback converges to the reference" nowait_expected
    r.Ompi.run_output;
  Alcotest.(check bool) "faults injected" true (count inst "fault_injected" >= 1);
  Alcotest.(check bool) "host fallback taken" true (count inst "host_fallback" >= 1);
  Alcotest.(check int) "device declared dead" 1 (count inst "device_dead");
  Alcotest.(check bool) "dead reason recorded" true (dead_reason inst <> None)

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse accepts the documented grammar" `Quick test_parse_ok;
          Alcotest.test_case "parse rejects malformed specs" `Quick test_parse_errors;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "probabilistic rules are seed-deterministic" `Quick
            test_probability_deterministic;
          Alcotest.test_case "scripted nth plan and reset" `Quick test_scripted_nth_and_reset;
        ] );
      ( "policy",
        [ Alcotest.test_case "exponential backoff formula" `Quick test_backoff_formula ] );
      ( "recovery",
        [
          Alcotest.test_case "transient transfer fault retries with backoff" `Quick
            test_transient_transfer_retries;
          Alcotest.test_case "retry exhaustion degrades to the host path" `Quick
            test_retry_exhaustion_falls_back;
          Alcotest.test_case "fatal alloc fault skips retries" `Quick test_fatal_alloc_no_retry;
          Alcotest.test_case "corrupt JIT cache invalidates and recompiles" `Quick
            test_corrupt_jit_cache_recompiles;
          Alcotest.test_case "dead device salvages kernel-written residents" `Quick
            test_dead_device_salvages_resident_data;
        ] );
      ( "async",
        [
          Alcotest.test_case "transient launch fault in a nowait region recovers" `Quick
            test_async_transient_launch_recovers;
          Alcotest.test_case "persistent transfer faults fall back to the host" `Quick
            test_async_persistent_transfer_falls_back;
        ] );
    ]
