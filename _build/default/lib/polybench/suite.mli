(** The benchmark suite of the paper's Section 5: the six plotted
    applications plus extras, each in a pure-CUDA and an OMPi-compiled
    OpenMP variant, swept over the paper's problem sizes. *)

type app = {
  ap_name : string;
  ap_figure : string;  (** paper figure id, e.g. "fig4e" *)
  ap_title : string;
  ap_sizes : int list;
  ap_validate_sizes : int list;
  ap_reference : n:int -> float array;
  ap_run : Harness.ctx -> Harness.variant -> n:int -> float * float array;
  ap_penalty : int -> float;
      (** occupancy penalty for translated kernels (EXPERIMENTS.md D2) *)
}

val no_penalty : int -> float

(** The 18% penalty the paper measured (and left unexplained) for the
    OpenMP gemm at n = 2048 only, keyed on its 16384-block grid. *)
val gemm_penalty : int -> float

(** The paper's six applications, in figure order (4a..4f). *)
val all : app list

(** Applications beyond the six plots ("We get similar results with the
    rest of the applications in the suite"). *)
val extras : app list

val find : string -> app option

(** Full functional validation of one variant at one (small) size
    against the sequential binary32 reference. *)
val validate : app -> Harness.variant -> n:int -> (float, string) result

val sweep :
  app -> Harness.variant -> ?sample_blocks:int option -> ?sizes:int list -> unit ->
  Perf.Report.series

val figure : app -> ?sample_blocks:int option -> ?sizes:int list -> unit -> Perf.Report.figure
