(** mvt: x1 += A y1 and x2 += A^T y2 (Fig. 4d).

    Exposes the three-variant structure shared by all suite
    applications: a sequential binary32 reference, a hand-written CUDA
    version and the OpenMP version compiled by the translator. *)

val name : string

val figure : string

val sizes : int list

val validate_sizes : int list

val threads : int

(** OpenMP C source of the translated variant (also used by goldens and
    the micro-benchmarks). *)
val omp_source : string

(** Hand-written CUDA C kernels of the reference variant. *)
val cuda_source : string

(** Sequential binary32 reference of the output array(s). *)
val reference : n:int -> float array

(** Run one variant; returns (simulated seconds, result array). *)
val run : Harness.ctx -> Harness.variant -> n:int -> float * float array
