(* Binary32 arithmetic for the sequential reference implementations:
   every operation rounds to float32, mirroring what the simulated GPU
   (and a real Maxwell) computes, so references and kernels can be
   compared with tight tolerances. *)

let r32 (f : float) = Int32.float_of_bits (Int32.bits_of_float f)

let ( +% ) a b = r32 (a +. b)

let ( -% ) a b = r32 (a -. b)

let ( *% ) a b = r32 (a *. b)

let ( /% ) a b = r32 (a /. b)

let sqrt32 a = r32 (sqrt a)
