lib/polybench/gesummv.pp.mli: Harness
