lib/polybench/mvt.pp.mli: Harness
