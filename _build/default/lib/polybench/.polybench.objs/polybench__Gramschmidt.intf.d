lib/polybench/gramschmidt.pp.mli: Harness
