lib/polybench/jacobi2d.pp.mli: Harness
