lib/polybench/atax.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
