lib/polybench/mvt.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
