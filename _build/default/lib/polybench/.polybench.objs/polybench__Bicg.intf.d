lib/polybench/bicg.pp.mli: Harness
