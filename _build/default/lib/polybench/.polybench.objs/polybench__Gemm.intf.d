lib/polybench/gemm.pp.mli: Harness
