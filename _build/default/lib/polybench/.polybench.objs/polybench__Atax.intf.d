lib/polybench/atax.pp.mli: Harness
