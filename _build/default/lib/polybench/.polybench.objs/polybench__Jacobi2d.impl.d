lib/polybench/jacobi2d.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
