lib/polybench/gramschmidt.pp.ml: Array Cty Fun Gpusim Harness Hostrt List Machine Refmath Value
