lib/polybench/gemm.pp.ml: Array Cty Gpusim Harness Machine Refmath Value
