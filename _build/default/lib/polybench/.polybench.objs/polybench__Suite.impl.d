lib/polybench/suite.pp.ml: Array Atax Bicg Conv3d Gemm Gesummv Gramschmidt Harness Jacobi2d List Mm2 Mvt Option Perf Printexc Printf Syrk
