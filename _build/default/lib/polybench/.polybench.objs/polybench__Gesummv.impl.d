lib/polybench/gesummv.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
