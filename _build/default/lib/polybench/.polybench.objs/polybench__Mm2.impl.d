lib/polybench/mm2.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
