lib/polybench/refmath.pp.ml: Int32
