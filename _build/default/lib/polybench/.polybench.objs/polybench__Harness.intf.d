lib/polybench/harness.pp.mli: Addr Cinterp Driver Format Gpusim Hostrt Machine Nvcc Ompi Simt Value
