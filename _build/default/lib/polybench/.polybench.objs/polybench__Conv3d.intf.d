lib/polybench/conv3d.pp.mli: Harness
