lib/polybench/conv3d.pp.ml: Array Cty Gpusim Harness List Machine Printf Refmath Value
