lib/polybench/mm2.pp.mli: Harness
