lib/polybench/bicg.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
