lib/polybench/syrk.pp.mli: Harness
