lib/polybench/suite.pp.mli: Harness Perf
