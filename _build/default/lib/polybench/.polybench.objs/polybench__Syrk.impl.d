lib/polybench/syrk.pp.ml: Array Cty Gpusim Harness List Machine Refmath Value
