(** Parser for OpenMP pragma lines (the token lists stored in
    [Minic.Ast.Raw]).  Produces the typed directive representation
    consumed by the translator; the construct combination is kept
    ordered, so "target teams distribute parallel for" round-trips. *)

open Minic

exception Pragma_error of string

(** Parse the token list of one ["#pragma ..."] line.  Returns [None]
    for non-OpenMP pragmas (which are left untouched in the program);
    raises {!Pragma_error} on malformed OpenMP directives. *)
val parse : Token.t list -> Ast.directive option
