(* Rewrites raw pragma nodes produced by the C parser into typed OpenMP
   directives, and resolves declare-target regions by marking the
   functions and globals they enclose as device entities. *)

open Minic

let rewrite_stmt (s : Ast.stmt) : Ast.stmt =
  Ast.map_stmt
    (function
      | Ast.Spragma (Ast.Raw toks, body) as s -> (
        match Pragma_parser.parse toks with
        | Some dir -> Ast.Spragma (Ast.Omp dir, body)
        | None -> s (* non-OpenMP pragma: keep verbatim *))
      | s -> s)
    s

(* Process the top level: rewrite pragmas inside every function body and
   apply declare-target regions to the globals they span. *)
let rewrite_program (p : Ast.program) : Ast.program =
  let in_declare_target = ref false in
  List.filter_map
    (fun g ->
      match g with
      | Ast.Gpragma (Ast.Raw toks) -> (
        match Pragma_parser.parse toks with
        | Some { Ast.dir_constructs = [ Ast.C_declare_target ]; _ } ->
          in_declare_target := true;
          None (* region markers are consumed *)
        | Some { Ast.dir_constructs = [ Ast.C_end_declare_target ]; _ } ->
          in_declare_target := false;
          None
        | Some dir -> Some (Ast.Gpragma (Ast.Omp dir))
        | None -> Some g)
      | Ast.Gpragma (Ast.Omp _) -> Some g
      | Ast.Gfun f ->
        Some (Ast.Gfun { f with f_body = rewrite_stmt f.f_body; f_device = !in_declare_target })
      | Ast.Gvar (d, _) -> Some (Ast.Gvar (d, !in_declare_target))
      | Ast.Gstruct _ | Ast.Gfundecl _ -> Some g)
    p
