lib/omp/rewrite.pp.mli: Ast Minic
