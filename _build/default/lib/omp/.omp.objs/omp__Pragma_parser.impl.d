lib/omp/pragma_parser.pp.ml: Ast Format Int64 List Minic Parser String Token
