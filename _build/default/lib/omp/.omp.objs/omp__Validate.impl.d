lib/omp/validate.pp.ml: Ast Format List Minic Pretty String
