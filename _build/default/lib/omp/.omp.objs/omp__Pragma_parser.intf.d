lib/omp/pragma_parser.pp.mli: Ast Minic Token
