lib/omp/validate.pp.mli: Ast Minic
