lib/omp/rewrite.pp.ml: Ast List Minic Pragma_parser
