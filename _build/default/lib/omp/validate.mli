(** Semantic validation of OpenMP directives: clause/construct
    compatibility, legal combined-construct orderings, duplicate unique
    clauses.  The translator refuses to run on a program with
    validation errors. *)

open Minic

type diagnostic = { diag_msg : string; diag_directive : Ast.directive }

val clause_name : Ast.clause -> string

val clause_allowed : Ast.construct list -> Ast.clause -> bool

val legal_combination : Ast.construct list -> bool

val check_directive : Ast.directive -> diagnostic list

(** All diagnostics of a pragma-rewritten program (empty = valid). *)
val check_program : Ast.program -> diagnostic list
