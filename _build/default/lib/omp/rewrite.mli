(** Rewrites raw pragma nodes produced by the C parser into typed OpenMP
    directives, and resolves [declare target] regions by marking the
    functions and globals they enclose as device entities (consuming the
    region markers). *)

open Minic

val rewrite_stmt : Ast.stmt -> Ast.stmt

val rewrite_program : Ast.program -> Ast.program
