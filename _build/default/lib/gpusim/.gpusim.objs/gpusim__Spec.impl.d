lib/gpusim/spec.pp.ml:
