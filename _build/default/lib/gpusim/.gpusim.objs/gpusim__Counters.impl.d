lib/gpusim/counters.pp.ml: Addr Array Cinterp Hashtbl Int Machine Set Spec
