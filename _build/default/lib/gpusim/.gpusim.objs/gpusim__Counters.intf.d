lib/gpusim/counters.pp.mli: Cinterp Hashtbl Set Spec
