lib/gpusim/simt.pp.mli: Addr Ast Buffer Cinterp Counters Cty Format Hashtbl Machine Mem Minic Queue Spec Stack Value
