lib/gpusim/driver.pp.ml: Addr Array Ast Buffer Bytes Cinterp Costmodel Counters Format Hashtbl List Machine Mem Minic Nvcc Simclock Simt Spec Value
