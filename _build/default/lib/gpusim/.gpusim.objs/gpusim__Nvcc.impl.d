lib/gpusim/nvcc.pp.ml: Ast Digest Hashtbl Minic Ppx_deriving_runtime Pretty String
