lib/gpusim/simt.pp.ml: Addr Array Ast Buffer Cinterp Counters Cty Effect Format Hashtbl List Machine Mem Minic Ppx_deriving_runtime Printf Queue Spec Stack String Value
