lib/gpusim/nvcc.pp.mli: Ast Format Hashtbl Minic
