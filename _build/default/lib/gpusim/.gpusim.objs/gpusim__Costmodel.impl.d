lib/gpusim/costmodel.pp.ml: Counters Float Format Spec
