lib/gpusim/spec.pp.mli:
