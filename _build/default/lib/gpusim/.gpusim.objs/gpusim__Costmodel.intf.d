lib/gpusim/costmodel.pp.mli: Counters Format Spec
