lib/gpusim/driver.pp.mli: Addr Ast Buffer Cinterp Costmodel Counters Hashtbl Machine Mem Minic Nvcc Simclock Simt Spec Value
