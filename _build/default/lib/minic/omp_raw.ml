(* Shallow classification of raw pragma token lists, needed by the C
   parser to decide whether a pragma swallows the following statement.
   Full pragma parsing lives in lib/omp. *)

let words (toks : Token.t list) : string list =
  List.filter_map (function Token.TIDENT w -> Some w | _ -> None) toks

let is_omp toks = match toks with Token.TIDENT "omp" :: _ -> true | _ -> false

(* Stand-alone OpenMP directives never apply to a following statement. *)
let is_standalone (toks : Token.t list) : bool =
  is_omp toks
  &&
  match words toks with
  | "omp" :: "barrier" :: _ -> true
  | "omp" :: "target" :: "update" :: _ -> true
  | "omp" :: "target" :: "enter" :: "data" :: _ -> true
  | "omp" :: "target" :: "exit" :: "data" :: _ -> true
  | "omp" :: "declare" :: "target" :: _ -> true
  | "omp" :: "end" :: "declare" :: "target" :: _ -> true
  | "omp" :: "taskwait" :: _ -> true
  | "omp" :: "flush" :: _ -> true
  | _ -> false
