(* Lexical tokens of the C subset.  A whole [#pragma ...] line is lexed
   into a [TPRAGMA] carrying its own token list; the OpenMP pragma parser
   (lib/omp) consumes those nested lists. *)

type t =
  | TINT of int64
  | TFLOAT of float * bool (* value, is_double (no 'f' suffix) *)
  | TCHAR of char
  | TSTRING of string
  | TIDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED | KW_SIGNED
  | KW_FLOAT | KW_DOUBLE | KW_STRUCT | KW_IF | KW_ELSE | KW_WHILE | KW_DO
  | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF | KW_CONST
  | KW_STATIC | KW_EXTERN | KW_TYPEDEF
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR | SHL | SHR
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | TPRAGMA of t list
  | EOF
[@@deriving show { with_path = false }, eq]

type loc = { line : int; col : int } [@@deriving show { with_path = false }, eq]

type spanned = { tok : t; loc : loc } [@@deriving show { with_path = false }, eq]

let keyword_table =
  [
    ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT); ("int", KW_INT);
    ("long", KW_LONG); ("unsigned", KW_UNSIGNED); ("signed", KW_SIGNED);
    ("float", KW_FLOAT); ("double", KW_DOUBLE); ("struct", KW_STRUCT);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("do", KW_DO);
    ("for", KW_FOR); ("return", KW_RETURN); ("break", KW_BREAK);
    ("continue", KW_CONTINUE); ("sizeof", KW_SIZEOF); ("const", KW_CONST);
    ("static", KW_STATIC); ("extern", KW_EXTERN); ("typedef", KW_TYPEDEF);
  ]

let to_source = function
  | TINT i -> Int64.to_string i
  | TFLOAT (f, true) -> string_of_float f
  | TFLOAT (f, false) -> string_of_float f ^ "f"
  | TCHAR c -> Printf.sprintf "%C" c
  | TSTRING s -> Printf.sprintf "%S" s
  | TIDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short" | KW_INT -> "int"
  | KW_LONG -> "long" | KW_UNSIGNED -> "unsigned" | KW_SIGNED -> "signed"
  | KW_FLOAT -> "float" | KW_DOUBLE -> "double" | KW_STRUCT -> "struct"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for" | KW_RETURN -> "return" | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue" | KW_SIZEOF -> "sizeof" | KW_CONST -> "const"
  | KW_STATIC -> "static" | KW_EXTERN -> "extern" | KW_TYPEDEF -> "typedef"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||" | SHL -> "<<" | SHR -> ">>"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/=" | PERCENTEQ -> "%=" | AMPEQ -> "&=" | PIPEEQ -> "|="
  | CARETEQ -> "^=" | SHLEQ -> "<<=" | SHREQ -> ">>="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | TPRAGMA _ -> "#pragma"
  | EOF -> "<eof>"
