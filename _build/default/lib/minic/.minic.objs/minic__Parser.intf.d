lib/minic/parser.pp.mli: Ast Token
