lib/minic/parser.pp.ml: Ast Buffer Cty Format Int64 Lexer List Machine Omp_raw Option Printf String Token
