lib/minic/pretty.pp.mli: Ast Format
