lib/minic/ast.pp.ml: Char Cty Int64 List Machine Option Ppx_deriving_runtime Token
