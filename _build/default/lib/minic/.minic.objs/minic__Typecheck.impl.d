lib/minic/typecheck.pp.ml: Ast Cty Format Fun Hashtbl List Machine Option
