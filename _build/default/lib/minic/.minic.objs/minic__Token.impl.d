lib/minic/token.pp.ml: Int64 List Ppx_deriving_runtime Printf
