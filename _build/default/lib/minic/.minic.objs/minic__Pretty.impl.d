lib/minic/pretty.pp.ml: Ast Cty Format List Machine String Token
