lib/minic/omp_raw.pp.mli: Token
