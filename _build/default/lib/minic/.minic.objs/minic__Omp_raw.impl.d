lib/minic/omp_raw.pp.ml: List Token
