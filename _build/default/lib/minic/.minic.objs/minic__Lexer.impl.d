lib/minic/lexer.pp.ml: Buffer Format Int64 List String Token
