lib/minic/lexer.pp.mli: Token
