lib/minic/typecheck.pp.mli: Ast Cty Format Hashtbl Machine
