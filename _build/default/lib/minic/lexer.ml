(* Hand-written lexer for the C subset.  [#pragma] lines are lexed into a
   single TPRAGMA token carrying the tokens of the rest of the line;
   [#include] and [#define]-style lines we do not model are skipped. *)

exception Lex_error of string * Token.loc

let lex_error loc fmt = Format.kasprintf (fun s -> raise (Lex_error (s, loc))) fmt

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* position of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let loc st = { Token.line = st.line; col = st.pos - st.bol + 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments ?(stop_at_newline = false) st =
  match peek st with
  | Some '\n' when stop_at_newline -> ()
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments ~stop_at_newline st
  | Some '\\' when peek2 st = Some '\n' ->
    (* Line continuation, notably inside pragma lines. *)
    advance st;
    advance st;
    skip_ws_and_comments ~stop_at_newline st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments ~stop_at_newline st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec finish () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> lex_error (loc st) "unterminated comment"
      | _ ->
        advance st;
        finish ()
    in
    finish ();
    skip_ws_and_comments ~stop_at_newline st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let l = loc st in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let h0 = st.pos in
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    if st.pos = h0 then lex_error l "bad hex literal";
    let text = String.sub st.src start (st.pos - start) in
    (* swallow integer suffixes *)
    while (match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
      advance st
    done;
    Token.TINT (Int64.of_string text)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float = ref false in
    if peek st = Some '.' && (match peek2 st with Some c -> is_digit c | _ -> true) then begin
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    end;
    (match peek st with
    | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    if !is_float then begin
      let is_double =
        match peek st with
        | Some ('f' | 'F') ->
          advance st;
          false
        | _ -> true
      in
      Token.TFLOAT (float_of_string text, is_double)
    end
    else begin
      while (match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
        advance st
      done;
      match peek st with
      | Some ('f' | 'F') ->
        advance st;
        Token.TFLOAT (float_of_string text, false)
      | _ -> Token.TINT (Int64.of_string text)
    end
  end

let lex_escaped st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> advance st; c
  | None -> lex_error (loc st) "unterminated escape"

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escaped st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> lex_error (loc st) "unterminated string literal"
  in
  go ();
  Token.TSTRING (Buffer.contents buf)

let lex_char st =
  advance st (* opening quote *);
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escaped st
    | Some c ->
      advance st;
      c
    | None -> lex_error (loc st) "unterminated char literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> lex_error (loc st) "unterminated char literal");
  Token.TCHAR c

let op2 st tok =
  advance st;
  advance st;
  tok

let op3 st tok =
  advance st;
  advance st;
  advance st;
  tok

let op1 st tok =
  advance st;
  tok

(* Lex one token assuming whitespace has been skipped.  Never returns
   TPRAGMA; pragma handling is in [next]. *)
let lex_simple st : Token.t =
  let l = loc st in
  match (peek st, peek2 st) with
  | None, _ -> Token.EOF
  | Some c, _ when is_digit c -> lex_number st
  | Some '.', Some c when is_digit c -> lex_number st
  | Some c, _ when is_ident_start c ->
    let start = st.pos in
    while (match peek st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    (match List.assoc_opt text Token.keyword_table with
    | Some kw -> kw
    | None -> Token.TIDENT text)
  | Some '"', _ -> lex_string st
  | Some '\'', _ -> lex_char st
  | Some '<', Some '<' ->
    if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then op3 st Token.SHLEQ
    else op2 st Token.SHL
  | Some '>', Some '>' ->
    if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then op3 st Token.SHREQ
    else op2 st Token.SHR
  | Some '<', Some '=' -> op2 st Token.LE
  | Some '>', Some '=' -> op2 st Token.GE
  | Some '=', Some '=' -> op2 st Token.EQEQ
  | Some '!', Some '=' -> op2 st Token.NEQ
  | Some '&', Some '&' -> op2 st Token.ANDAND
  | Some '|', Some '|' -> op2 st Token.OROR
  | Some '+', Some '+' -> op2 st Token.PLUSPLUS
  | Some '-', Some '-' -> op2 st Token.MINUSMINUS
  | Some '-', Some '>' -> op2 st Token.ARROW
  | Some '+', Some '=' -> op2 st Token.PLUSEQ
  | Some '-', Some '=' -> op2 st Token.MINUSEQ
  | Some '*', Some '=' -> op2 st Token.STAREQ
  | Some '/', Some '=' -> op2 st Token.SLASHEQ
  | Some '%', Some '=' -> op2 st Token.PERCENTEQ
  | Some '&', Some '=' -> op2 st Token.AMPEQ
  | Some '|', Some '=' -> op2 st Token.PIPEEQ
  | Some '^', Some '=' -> op2 st Token.CARETEQ
  | Some '(', _ -> op1 st Token.LPAREN
  | Some ')', _ -> op1 st Token.RPAREN
  | Some '{', _ -> op1 st Token.LBRACE
  | Some '}', _ -> op1 st Token.RBRACE
  | Some '[', _ -> op1 st Token.LBRACKET
  | Some ']', _ -> op1 st Token.RBRACKET
  | Some ';', _ -> op1 st Token.SEMI
  | Some ',', _ -> op1 st Token.COMMA
  | Some '.', _ -> op1 st Token.DOT
  | Some '?', _ -> op1 st Token.QUESTION
  | Some ':', _ -> op1 st Token.COLON
  | Some '+', _ -> op1 st Token.PLUS
  | Some '-', _ -> op1 st Token.MINUS
  | Some '*', _ -> op1 st Token.STAR
  | Some '/', _ -> op1 st Token.SLASH
  | Some '%', _ -> op1 st Token.PERCENT
  | Some '&', _ -> op1 st Token.AMP
  | Some '|', _ -> op1 st Token.PIPE
  | Some '^', _ -> op1 st Token.CARET
  | Some '~', _ -> op1 st Token.TILDE
  | Some '!', _ -> op1 st Token.BANG
  | Some '<', _ -> op1 st Token.LT
  | Some '>', _ -> op1 st Token.GT
  | Some '=', _ -> op1 st Token.ASSIGN
  | Some c, _ -> lex_error l "unexpected character %C" c

(* Lex the remainder of a pragma line (respecting backslash continuations,
   which [skip_ws_and_comments] folds away). *)
let lex_pragma_line st =
  let toks = ref [] in
  let rec go () =
    skip_ws_and_comments ~stop_at_newline:true st;
    match peek st with
    | None | Some '\n' -> ()
    | _ ->
      toks := lex_simple st :: !toks;
      go ()
  in
  go ();
  List.rev !toks

let rec next st : Token.spanned =
  skip_ws_and_comments st;
  let l = loc st in
  match peek st with
  | Some '#' ->
    advance st;
    skip_ws_and_comments ~stop_at_newline:true st;
    let start = st.pos in
    while (match peek st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let word = String.sub st.src start (st.pos - start) in
    if word = "pragma" then { Token.tok = Token.TPRAGMA (lex_pragma_line st); loc = l }
    else begin
      (* Skip unsupported preprocessor directives (include, define, ...). *)
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      next st
    end
  | _ -> { Token.tok = lex_simple st; loc = l }

let tokenize src : Token.spanned list =
  let st = make src in
  let rec go acc =
    let t = next st in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
