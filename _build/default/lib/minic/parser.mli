(** Recursive-descent parser for the C subset.  Understands full C
    declarator syntax (pointers, arrays, pointer-to-array, function
    parameters): the master/worker code generator relies on
    pointer-to-array parameter types, cf. Fig. 3 of the paper. *)



exception Parse_error of string * Token.loc

val parse_program : string -> Ast.program

val parse_program_tokens : Token.spanned list -> Ast.program

val parse_expr_string : string -> Ast.expr

(** Parse one assignment-level expression from a raw token list,
    returning the remaining tokens (used by the pragma parser to read
    clause arguments, which are comma-separated). *)
val parse_assignment_tokens : Token.t list -> Ast.expr * Token.t list
