(** Shallow classification of raw pragma token lists, needed by the C
    parser to decide whether a pragma swallows the following statement.
    Full pragma parsing lives in lib/omp. *)

val is_omp : Token.t list -> bool

(** Stand-alone OpenMP directives (barrier, target update, target
    enter/exit data, declare target markers, ...) never apply to a
    following statement. *)
val is_standalone : Token.t list -> bool
