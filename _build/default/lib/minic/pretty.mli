(** C source emission for the mini-C AST.  Used to write translated host
    files and generated CUDA kernel files; the output re-parses to an
    equal AST (golden-tested). *)



val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

(** Comma-separated declarator group sharing one specifier, as required
    in for-init clauses. *)
val pp_decl_group : Format.formatter -> Ast.decl list -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_fundef : ?cuda_global:bool -> Format.formatter -> Ast.fundef -> unit

val pp_global : Format.formatter -> Ast.global -> unit

val pp_program : Format.formatter -> Ast.program -> unit

(** {1 OpenMP directives back to pragma syntax} *)

val pp_directive : Format.formatter -> Ast.directive -> unit

val pp_clause : Format.formatter -> Ast.clause -> unit

val construct_str : Ast.construct -> string

val sched_str : Ast.sched_kind -> string

val map_type_str : Ast.map_type -> string

val red_op_str : Ast.reduction_op -> string

(** {1 To-string conveniences} *)

val program_to_string : Ast.program -> string

val stmt_to_string : Ast.stmt -> string

val expr_to_string : Ast.expr -> string
