(** Scoped symbol table and expression typing for the mini-C AST.  The
    translator uses it to find the types of variables referenced in a
    target region (for map sizes and kernel parameters); the whole-
    program check backs both ompicc diagnostics and the test suites. *)

open Machine

exception Error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type env = {
  structs : Cty.layout_env;
  funcs : (string, Cty.t * (string * Cty.t) list) Hashtbl.t;
  globals : (string, Cty.t) Hashtbl.t;
  mutable scopes : (string, Cty.t) Hashtbl.t list;
}

(** Return types of the builtin functions available inside kernels and
    host code (OpenMP API, libc subset, cudadev entry points, CUDA
    intrinsics). *)
val builtin_return_types : (string * Cty.t) list

val create : unit -> env

val push_scope : env -> unit

val pop_scope : env -> unit

val add_var : env -> string -> Cty.t -> unit

val lookup_var : env -> string -> Cty.t option

val in_scope : (unit -> 'a) -> env -> 'a

(** Collect top-level declarations (struct layouts, signatures, globals)
    without entering function bodies. *)
val of_program : Ast.program -> env

val type_of_expr : env -> Ast.expr -> Cty.t

(** Scoped top-down statement walk; the workhorse for analyses that need
    typing context at arbitrary program points. *)
val walk_stmt : env -> on_stmt:(env -> Ast.stmt -> unit) -> Ast.stmt -> unit

(** CUDA's implicit device variables ([threadIdx], ...). *)
val cuda_globals : string list

(** Whole-program check; returns the error list (empty = well typed).
    [cuda] additionally provides the implicit device variables. *)
val check_program : ?cuda:bool -> Ast.program -> string list
