(** Hand-written lexer for the C subset.  ["#pragma"] lines are lexed
    into a single {!Token.TPRAGMA} carrying the tokens of the rest of
    the line (honouring backslash continuations); other preprocessor
    lines ([#include], [#define], ...) are skipped. *)

exception Lex_error of string * Token.loc

(** Lex a whole source string; the result always ends with {!Token.EOF}. *)
val tokenize : string -> Token.spanned list
