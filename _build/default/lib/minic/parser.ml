(* Recursive-descent parser for the C subset.  Understands full C
   declarator syntax (pointers, arrays, pointer-to-array, function
   parameters) because the master/worker code generator relies on
   pointer-to-array parameter types, cf. Fig. 3 of the paper. *)

open Machine

exception Parse_error of string * Token.loc

let parse_error loc fmt = Format.kasprintf (fun s -> raise (Parse_error (s, loc))) fmt

type state = { mutable toks : Token.spanned list; mutable structs : string list }

let make toks = { toks; structs = [] }

let peek st =
  match st.toks with
  | [] -> Token.EOF
  | { tok; _ } :: _ -> tok

let peek2 st =
  match st.toks with
  | _ :: { tok; _ } :: _ -> tok
  | _ -> Token.EOF

let cur_loc st =
  match st.toks with
  | [] -> { Token.line = 0; col = 0 }
  | { loc; _ } :: _ -> loc

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else parse_error (cur_loc st) "expected '%s' but found '%s'" (Token.to_source tok) (Token.to_source (peek st))

let expect_ident st =
  match peek st with
  | Token.TIDENT x ->
    advance st;
    x
  | t -> parse_error (cur_loc st) "expected identifier, found '%s'" (Token.to_source t)

(* ---------------------------------------------------------------- *)
(* Type specifiers and declarators                                    *)
(* ---------------------------------------------------------------- *)

let starts_type st =
  match peek st with
  | Token.TIDENT "__shared__" -> true
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT | Token.KW_LONG
  | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT | Token.KW_DOUBLE
  | Token.KW_STRUCT | Token.KW_CONST | Token.KW_STATIC | Token.KW_EXTERN -> true
  | Token.TIDENT _ -> false
  | _ -> false

(* Parse declaration specifiers: a base type plus storage flags. *)
let parse_specifiers st : Cty.t * bool (* static *) =
  let signed = ref None and base = ref None and is_static = ref false in
  let set_base b =
    match !base with
    | None -> base := Some b
    | Some Cty.Long when b = Cty.Long -> () (* long long ~ long *)
    | Some Cty.Long when b = Cty.Int -> base := Some Cty.Long (* long int *)
    | Some Cty.Int when b = Cty.Long -> base := Some Cty.Long
    | Some Cty.Short when b = Cty.Int -> base := Some Cty.Short
    | Some _ -> parse_error (cur_loc st) "conflicting type specifiers"
  in
  let rec go () =
    match peek st with
    | Token.KW_CONST -> advance st; go ()
    | Token.KW_STATIC -> advance st; is_static := true; go ()
    | Token.KW_EXTERN -> advance st; go ()
    | Token.KW_VOID -> advance st; set_base Cty.Void; go ()
    | Token.KW_CHAR -> advance st; set_base Cty.Char; go ()
    | Token.KW_SHORT -> advance st; set_base Cty.Short; go ()
    | Token.KW_INT -> advance st; set_base Cty.Int; go ()
    | Token.KW_LONG -> advance st; set_base Cty.Long; go ()
    | Token.KW_FLOAT -> advance st; set_base Cty.Float; go ()
    | Token.KW_DOUBLE -> advance st; set_base Cty.Double; go ()
    | Token.KW_UNSIGNED -> advance st; signed := Some false; go ()
    | Token.KW_SIGNED -> advance st; signed := Some true; go ()
    | Token.KW_STRUCT ->
      advance st;
      let name = expect_ident st in
      set_base (Cty.Struct name);
      go ()
    | _ -> ()
  in
  go ();
  let base =
    match (!base, !signed) with
    | Some b, _ when !signed <> Some false -> b
    | Some Cty.Char, Some false -> Cty.Uchar
    | Some Cty.Short, Some false -> Cty.Ushort
    | Some Cty.Int, Some false -> Cty.Uint
    | Some Cty.Long, Some false -> Cty.Ulong
    | Some b, _ -> b
    | None, Some _ -> Cty.Int (* bare signed/unsigned *)
    | None, None -> parse_error (cur_loc st) "expected type specifier"
  in
  (base, !is_static)

(* Declarator parsing.  We parse the declarator shape into a function
   that transforms the base type ("type algebra" approach), handling
   precedence: arrays/functions bind tighter than pointers. *)
type declarator = {
  decl_name : string option;
  wrap : Cty.t -> Cty.t;
  fn_params : (string * Cty.t) list option; (* set when declaring a function *)
}

let rec parse_declarator st ~parse_params : declarator =
  match peek st with
  | Token.STAR ->
    advance st;
    (* const after * *)
    (match peek st with Token.KW_CONST -> advance st | _ -> ());
    let inner = parse_declarator st ~parse_params in
    { inner with wrap = (fun ty -> inner.wrap (Cty.Ptr ty)) }
  | _ -> parse_direct_declarator st ~parse_params

and parse_direct_declarator st ~parse_params : declarator =
  let base =
    match peek st with
    | Token.TIDENT x ->
      advance st;
      { decl_name = Some x; wrap = (fun ty -> ty); fn_params = None }
    | Token.LPAREN when not (starts_abstract_params st) ->
      advance st;
      let inner = parse_declarator st ~parse_params in
      expect st Token.RPAREN;
      inner
    | _ -> { decl_name = None; wrap = (fun ty -> ty); fn_params = None }
  in
  parse_suffixes st base ~parse_params

(* In an abstract declarator context, '(' followed by a type or ')' starts a
   parameter list, not a parenthesised declarator. *)
and starts_abstract_params st =
  match peek2 st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT | Token.KW_LONG
  | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT | Token.KW_DOUBLE
  | Token.KW_STRUCT | Token.KW_CONST | Token.RPAREN -> true
  | _ -> false

and parse_suffixes st (d : declarator) ~parse_params : declarator =
  match peek st with
  | Token.LBRACKET ->
    advance st;
    let dim =
      if Token.equal (peek st) Token.RBRACKET then None
      else begin
        let e = parse_assignment st in
        match Ast.const_eval_opt e with
        | Some n -> Some (Int64.to_int n)
        | None -> parse_error (cur_loc st) "array dimension must be a constant expression"
      end
    in
    expect st Token.RBRACKET;
    (* remaining suffixes describe the ELEMENT type: in D[2][3], the
       first dimension is outermost — Array(Array(elt, 3), 2) *)
    let rest = parse_suffixes st { decl_name = None; wrap = (fun ty -> ty); fn_params = None } ~parse_params in
    { d with wrap = (fun ty -> d.wrap (Cty.Array (rest.wrap ty, dim))) }
  | Token.LPAREN when parse_params ->
    advance st;
    let params = parse_param_list st in
    expect st Token.RPAREN;
    let d = parse_suffixes st d ~parse_params in
    let ptys = List.map snd params in
    {
      d with
      wrap = (fun ty -> d.wrap (Cty.Func (ty, ptys, false)));
      fn_params = (match d.fn_params with Some _ as p -> p | None -> Some params);
    }
  | _ -> d

and parse_param_list st : (string * Cty.t) list =
  match peek st with
  | Token.RPAREN -> []
  | Token.KW_VOID when Token.equal (peek2 st) Token.RPAREN ->
    advance st;
    []
  | _ ->
    let rec go acc =
      let base, _ = parse_specifiers st in
      let d = parse_declarator st ~parse_params:true in
      let ty = Cty.decay (d.wrap base) in
      let name = Option.value d.decl_name ~default:"" in
      let acc = (name, ty) :: acc in
      if Token.equal (peek st) Token.COMMA then begin
        advance st;
        go acc
      end
      else List.rev acc
    in
    go []

(* Type names appearing in casts and sizeof. *)
and parse_type_name st : Cty.t =
  let base, _ = parse_specifiers st in
  let d = parse_declarator st ~parse_params:true in
  d.wrap base

(* ---------------------------------------------------------------- *)
(* Expressions (precedence climbing)                                  *)
(* ---------------------------------------------------------------- *)

and parse_primary st : Ast.expr =
  match peek st with
  | Token.TINT i ->
    advance st;
    let ty = if Int64.compare i 0x7FFFFFFFL > 0 then Cty.Long else Cty.Int in
    Ast.IntLit (i, ty)
  | Token.TFLOAT (f, is_double) ->
    advance st;
    Ast.FloatLit (f, if is_double then Cty.Double else Cty.Float)
  | Token.TCHAR c ->
    advance st;
    Ast.CharLit c
  | Token.TSTRING s ->
    advance st;
    (* adjacent string literal concatenation *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match peek st with
      | Token.TSTRING s2 ->
        advance st;
        Buffer.add_string buf s2;
        more ()
      | _ -> ()
    in
    more ();
    Ast.StrLit (Buffer.contents buf)
  | Token.TIDENT x ->
    advance st;
    Ast.Ident x
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | t -> parse_error (cur_loc st) "unexpected token '%s' in expression" (Token.to_source t)

and parse_postfix st : Ast.expr =
  let rec loop e =
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      loop (Ast.Index (e, idx))
    | Token.LPAREN ->
      advance st;
      let args =
        if Token.equal (peek st) Token.RPAREN then []
        else begin
          let rec go acc =
            let a = parse_assignment st in
            if Token.equal (peek st) Token.COMMA then begin
              advance st;
              go (a :: acc)
            end
            else List.rev (a :: acc)
          in
          go []
        end
      in
      expect st Token.RPAREN;
      (match e with
      | Ast.Ident f -> loop (Ast.Call (f, args))
      | _ -> parse_error (cur_loc st) "only direct calls by name are supported")
    | Token.DOT ->
      advance st;
      let f = expect_ident st in
      loop (Ast.Member (e, f))
    | Token.ARROW ->
      advance st;
      let f = expect_ident st in
      loop (Ast.Arrow (e, f))
    | Token.PLUSPLUS ->
      advance st;
      loop (Ast.Unop (Ast.PostInc, e))
    | Token.MINUSMINUS ->
      advance st;
      loop (Ast.Unop (Ast.PostDec, e))
    | _ -> e
  in
  loop (parse_primary st)

and starts_type_name st =
  match peek st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT | Token.KW_LONG
  | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT | Token.KW_DOUBLE
  | Token.KW_STRUCT | Token.KW_CONST -> true
  | _ -> false

and parse_unary st : Ast.expr =
  match peek st with
  | Token.PLUSPLUS ->
    advance st;
    Ast.Unop (Ast.PreInc, parse_unary st)
  | Token.MINUSMINUS ->
    advance st;
    Ast.Unop (Ast.PreDec, parse_unary st)
  | Token.PLUS ->
    advance st;
    parse_cast st
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_cast st)
  | Token.BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_cast st)
  | Token.TILDE ->
    advance st;
    Ast.Unop (Ast.BitNot, parse_cast st)
  | Token.STAR ->
    advance st;
    Ast.Deref (parse_cast st)
  | Token.AMP ->
    advance st;
    Ast.AddrOf (parse_cast st)
  | Token.KW_SIZEOF ->
    advance st;
    if Token.equal (peek st) Token.LPAREN then begin
      (* sizeof(type) or sizeof(expr) *)
      advance st;
      if starts_type_name st then begin
        let ty = parse_type_name st in
        expect st Token.RPAREN;
        Ast.SizeofT ty
      end
      else begin
        let e = parse_expr st in
        expect st Token.RPAREN;
        Ast.SizeofE e
      end
    end
    else Ast.SizeofE (parse_unary st)
  | _ -> parse_postfix st

and parse_cast st : Ast.expr =
  match peek st with
  | Token.LPAREN when starts_type_name_after_lparen st ->
    advance st;
    let ty = parse_type_name st in
    expect st Token.RPAREN;
    Ast.Cast (ty, parse_cast st)
  | _ -> parse_unary st

and starts_type_name_after_lparen st =
  match st.toks with
  | _ :: { tok; _ } :: _ -> (
    match tok with
    | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT | Token.KW_LONG
    | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_FLOAT | Token.KW_DOUBLE
    | Token.KW_STRUCT | Token.KW_CONST -> true
    | _ -> false)
  | _ -> false

and binop_of_token = function
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.NEQ -> Some (Ast.Ne, 6)
  | Token.AMP -> Some (Ast.BitAnd, 5)
  | Token.CARET -> Some (Ast.BitXor, 4)
  | Token.PIPE -> Some (Ast.BitOr, 3)
  | Token.ANDAND -> Some (Ast.LogAnd, 2)
  | Token.OROR -> Some (Ast.LogOr, 1)
  | _ -> None

and parse_binary st min_prec : Ast.expr =
  let lhs = ref (parse_cast st) in
  let continue_loop = ref true in
  while !continue_loop do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := Ast.Binop (op, !lhs, rhs)
    | _ -> continue_loop := false
  done;
  !lhs

and parse_conditional st : Ast.expr =
  let cond = parse_binary st 1 in
  if Token.equal (peek st) Token.QUESTION then begin
    advance st;
    let t = parse_expr st in
    expect st Token.COLON;
    let f = parse_assignment st in
    Ast.Cond (cond, t, f)
  end
  else cond

and parse_assignment st : Ast.expr =
  let lhs = parse_conditional st in
  let mk op =
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (op, lhs, rhs)
  in
  match peek st with
  | Token.ASSIGN -> mk None
  | Token.PLUSEQ -> mk (Some Ast.Add)
  | Token.MINUSEQ -> mk (Some Ast.Sub)
  | Token.STAREQ -> mk (Some Ast.Mul)
  | Token.SLASHEQ -> mk (Some Ast.Div)
  | Token.PERCENTEQ -> mk (Some Ast.Mod)
  | Token.AMPEQ -> mk (Some Ast.BitAnd)
  | Token.PIPEEQ -> mk (Some Ast.BitOr)
  | Token.CARETEQ -> mk (Some Ast.BitXor)
  | Token.SHLEQ -> mk (Some Ast.Shl)
  | Token.SHREQ -> mk (Some Ast.Shr)
  | _ -> lhs

and parse_expr st : Ast.expr =
  let e = parse_assignment st in
  if Token.equal (peek st) Token.COMMA then begin
    advance st;
    Ast.Comma (e, parse_expr st)
  end
  else e

(* ---------------------------------------------------------------- *)
(* Statements                                                         *)
(* ---------------------------------------------------------------- *)

let rec parse_initializer st : Ast.init =
  if Token.equal (peek st) Token.LBRACE then begin
    advance st;
    let rec go acc =
      if Token.equal (peek st) Token.RBRACE then List.rev acc
      else begin
        let i = parse_initializer st in
        if Token.equal (peek st) Token.COMMA then advance st;
        go (i :: acc)
      end
    in
    let items = go [] in
    expect st Token.RBRACE;
    Ast.Ilist items
  end
  else Ast.Iexpr (parse_assignment st)

let parse_decl_group st : Ast.decl list =
  let shared =
    match peek st with
    | Token.TIDENT "__shared__" ->
      advance st;
      true
    | _ -> false
  in
  let base, _static = parse_specifiers st in
  let rec go acc =
    let d = parse_declarator st ~parse_params:true in
    let name =
      match d.decl_name with
      | Some n -> n
      | None -> parse_error (cur_loc st) "expected declarator name"
    in
    let ty = d.wrap base in
    let init = if Token.equal (peek st) Token.ASSIGN then (advance st; Some (parse_initializer st)) else None in
    let acc = { Ast.d_name = name; d_ty = ty; d_init = init; d_shared = shared } :: acc in
    if Token.equal (peek st) Token.COMMA then begin
      advance st;
      go acc
    end
    else List.rev acc
  in
  let ds = go [] in
  expect st Token.SEMI;
  ds

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Token.SEMI ->
    advance st;
    Ast.Snop
  | Token.LBRACE -> parse_block st
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_s = parse_stmt st in
    if Token.equal (peek st) Token.KW_ELSE then begin
      advance st;
      Ast.Sif (cond, then_s, Some (parse_stmt st))
    end
    else Ast.Sif (cond, then_s, None)
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    Ast.Swhile (cond, parse_stmt st)
  | Token.KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st Token.KW_WHILE;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Ast.Sdo (body, cond)
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if Token.equal (peek st) Token.SEMI then begin
        advance st;
        None
      end
      else if starts_type st then Some (Ast.Sdecl (parse_decl_group st))
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Some (Ast.Sexpr e)
      end
    in
    let cond = if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let update = if Token.equal (peek st) Token.RPAREN then None else Some (parse_expr st) in
    expect st Token.RPAREN;
    Ast.Sfor (init, cond, update, parse_stmt st)
  | Token.KW_RETURN ->
    advance st;
    if Token.equal (peek st) Token.SEMI then begin
      advance st;
      Ast.Sreturn None
    end
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Sreturn (Some e)
    end
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    Ast.Scontinue
  | Token.TPRAGMA toks ->
    advance st;
    (* A pragma may be stand-alone or apply to the following statement;
       the OpenMP rewriter (lib/omp) decides which, so at this stage we
       conservatively attach the next statement unless the pragma is
       obviously stand-alone. *)
    if Omp_raw.is_standalone toks then Ast.Spragma (Ast.Raw toks, None)
    else Ast.Spragma (Ast.Raw toks, Some (parse_stmt st))
  | _ when starts_type st -> Ast.Sdecl (parse_decl_group st)
  | _ ->
    let e = parse_expr st in
    expect st Token.SEMI;
    Ast.Sexpr e

and parse_block st : Ast.stmt =
  expect st Token.LBRACE;
  let rec go acc =
    if Token.equal (peek st) Token.RBRACE then begin
      advance st;
      Ast.Sblock (List.rev acc)
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---------------------------------------------------------------- *)
(* Top level                                                          *)
(* ---------------------------------------------------------------- *)

let parse_struct_def st : Ast.global =
  (* struct NAME { fields } ; *)
  expect st Token.KW_STRUCT;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] in
  while not (Token.equal (peek st) Token.RBRACE) do
    let base, _ = parse_specifiers st in
    let rec go () =
      let d = parse_declarator st ~parse_params:true in
      (match d.decl_name with
      | Some n -> fields := (n, d.wrap base) :: !fields
      | None -> parse_error (cur_loc st) "expected field name");
      if Token.equal (peek st) Token.COMMA then begin
        advance st;
        go ()
      end
    in
    go ();
    expect st Token.SEMI
  done;
  expect st Token.RBRACE;
  expect st Token.SEMI;
  st.structs <- name :: st.structs;
  Ast.Gstruct (name, List.rev !fields)

let declarator_params (d : declarator) ty =
  match (d.fn_params, ty) with
  | Some params, _ -> params
  | None, Cty.Func (_, ptys, _) -> List.mapi (fun i ty -> (Printf.sprintf "arg%d" i, ty)) ptys
  | None, _ -> []

let parse_global st : Ast.global option =
  match peek st with
  | Token.EOF -> None
  | Token.TPRAGMA toks ->
    advance st;
    Some (Ast.Gpragma (Ast.Raw toks))
  | Token.KW_STRUCT when (match peek2 st with Token.TIDENT _ -> true | _ -> false)
                         && (match st.toks with
                            | _ :: _ :: { tok = Token.LBRACE; _ } :: _ -> true
                            | _ -> false) -> Some (parse_struct_def st)
  | _ ->
    let base, is_static = parse_specifiers st in
    let d = parse_declarator st ~parse_params:true in
    let name =
      match d.decl_name with
      | Some n -> n
      | None -> parse_error (cur_loc st) "expected declarator at top level"
    in
    let ty = d.wrap base in
    (match (ty, peek st) with
    | Cty.Func (ret, _, _), Token.LBRACE ->
      let params = declarator_params d ty in
      let params = List.map (fun (n, t) -> (n, Cty.decay t)) params in
      let body = parse_block st in
      Some (Ast.Gfun { f_name = name; f_ret = ret; f_params = params; f_body = body; f_static = is_static; f_device = false })
    | Cty.Func (ret, _, _), Token.SEMI ->
      advance st;
      let params = declarator_params d ty in
      Some (Ast.Gfundecl (name, ret, params))
    | _, _ ->
      let init =
        if Token.equal (peek st) Token.ASSIGN then begin
          advance st;
          Some (parse_initializer st)
        end
        else None
      in
      expect st Token.SEMI;
      Some (Ast.Gvar ({ d_name = name; d_ty = ty; d_init = init; d_shared = false }, false)))

let parse_program_tokens toks : Ast.program =
  let st = make toks in
  let rec go acc =
    match parse_global st with
    | None -> List.rev acc
    | Some g -> go (g :: acc)
  in
  go []

let parse_program (src : string) : Ast.program = parse_program_tokens (Lexer.tokenize src)

let parse_expr_string (src : string) : Ast.expr =
  let st = make (Lexer.tokenize src) in
  parse_expr st

(* Parse an expression from a raw token list (used by the pragma parser).
   Stops at the first comma so clause argument lists can be split. *)
let parse_assignment_tokens (toks : Token.t list) : Ast.expr * Token.t list =
  let spanned = List.map (fun tok -> { Token.tok; loc = { Token.line = 0; col = 0 } }) toks in
  let st = make spanned in
  let e = parse_assignment st in
  (e, List.map (fun s -> s.Token.tok) st.toks)
