(** Executes a translated host program (mini-C) under the interpreter,
    with the ORT runtime entry points installed as builtins.  This is
    the execution half of [ompirun]: the translator turns target
    constructs into ort_* calls, and those calls land here, driving the
    data environment and the simulated device. *)

open Minic

exception Host_error of string

type run_result = {
  rr_output : string;  (** everything printf produced (host and device) *)
  rr_exit : int;
  rr_time_s : float;  (** simulated seconds *)
}

(** Build an interpreter context over the translated program: ort_* and
    omp_* builtins installed, globals allocated and initialised, host
    execution charged to the runtime's simulated clock. *)
val make_context : Rt.t -> Ast.program -> Cinterp.Interp.t

(** Run [entry] (default ["main"]). *)
val run :
  Rt.t -> Ast.program -> ?entry:string -> ?args:Machine.Value.t list -> unit -> run_result
