lib/hostrt/rt.pp.ml: Addr Array Dataenv Driver Format Gpusim Hashtbl Machine Mem Nvcc Simclock Simt Spec
