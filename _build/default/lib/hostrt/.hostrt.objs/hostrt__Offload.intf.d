lib/hostrt/offload.pp.mli: Addr Driver Gpusim Machine Rt Value
