lib/hostrt/dataenv.pp.mli: Addr Driver Format Gpusim Machine Mem
