lib/hostrt/hostexec.pp.ml: Addr Ast Buffer Cinterp Cty Dataenv Format Hashtbl List Machine Mem Minic Offload Option Rt Simclock Value
