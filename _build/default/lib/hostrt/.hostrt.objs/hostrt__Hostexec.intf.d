lib/hostrt/hostexec.pp.mli: Ast Cinterp Machine Minic Rt
