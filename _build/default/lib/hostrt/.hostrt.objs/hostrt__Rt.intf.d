lib/hostrt/rt.pp.mli: Dataenv Driver Format Gpusim Hashtbl Machine Mem Nvcc Simclock Simt Spec
