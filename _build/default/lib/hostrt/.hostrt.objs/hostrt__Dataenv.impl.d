lib/hostrt/dataenv.pp.ml: Addr Driver Format Gpusim List Machine Mem Ppx_deriving_runtime
