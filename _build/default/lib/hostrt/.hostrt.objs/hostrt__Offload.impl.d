lib/hostrt/offload.pp.ml: Addr Cty Dataenv Devrt Driver Gpusim List Machine Minic Rt Simt Value
