(* Device data environment (paper §2, §4.2.1): tracks which host ranges
   are mapped to device memory, with OpenMP present/refcount semantics:

   - mapping an already-present range only increments its refcount (no
     transfer), which is what makes [target data] regions effective at
     eliminating redundant movement;
   - the final unmap performs the from/tofrom copy-back and frees the
     device buffer;
   - [target update] moves data for present ranges without changing
     refcounts. *)

open Machine
open Gpusim

exception Map_error of string

let map_error fmt = Format.kasprintf (fun s -> raise (Map_error s)) fmt

type map_type = Alloc | To | From | Tofrom [@@deriving show { with_path = false }, eq]

let map_type_of_int = function
  | 0 -> Alloc
  | 1 -> To
  | 2 -> From
  | 3 -> Tofrom
  | n -> map_error "bad map type code %d" n

type entry = {
  e_host : Addr.t;
  e_bytes : int;
  e_dev : Addr.t;
  mutable e_refcount : int;
  e_map : map_type; (* type used at initial mapping *)
}

type t = { mutable entries : entry list; host : Mem.t; driver : Driver.t }

let create ~(host : Mem.t) ~(driver : Driver.t) = { entries = []; host; driver }

let find_containing t (haddr : Addr.t) ~bytes =
  List.find_opt
    (fun e ->
      Addr.equal_space e.e_host.Addr.space haddr.Addr.space
      && haddr.Addr.off >= e.e_host.Addr.off
      && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes)
    t.entries

(* Translate a host address inside a mapped range to its device image. *)
let lookup t (haddr : Addr.t) : Addr.t option =
  match find_containing t haddr ~bytes:1 with
  | Some e -> Some (Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
  | None -> None

let lookup_exn t haddr =
  match lookup t haddr with
  | Some d -> d
  | None -> map_error "host address %s is not mapped on the device" (Addr.show haddr)

let is_present t haddr ~bytes = find_containing t haddr ~bytes <> None

(* Map a host range; returns the corresponding device address. *)
let map t (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  match find_containing t haddr ~bytes with
  | Some e ->
    e.e_refcount <- e.e_refcount + 1;
    Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)
  | None ->
    let dev = Driver.mem_alloc t.driver bytes in
    (match mt with
    | To | Tofrom -> Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:dev ~len:bytes
    | Alloc | From -> ());
    t.entries <- { e_host = haddr; e_bytes = bytes; e_dev = dev; e_refcount = 1; e_map = mt } :: t.entries;
    dev

(* Unmap (end of construct / target exit data).  The map type decides
   whether data flows back on the final release. *)
let unmap t (haddr : Addr.t) (mt : map_type) : unit =
  match find_containing t haddr ~bytes:1 with
  | None -> map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e ->
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then begin
      (match mt with
      | From | Tofrom ->
        Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes
      | Alloc | To -> ());
      Driver.mem_free t.driver e.e_dev;
      t.entries <- List.filter (fun e' -> e' != e) t.entries
    end

let update_to t (haddr : Addr.t) ~(bytes : int) : unit =
  match find_containing t haddr ~bytes with
  | None -> map_error "target update to: range not mapped"
  | Some e ->
    Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr
      ~dst:(Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
      ~len:bytes

let update_from t (haddr : Addr.t) ~(bytes : int) : unit =
  match find_containing t haddr ~bytes with
  | None -> map_error "target update from: range not mapped"
  | Some e ->
    Driver.memcpy_d2h t.driver ~host:t.host
      ~src:(Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
      ~dst:haddr ~len:bytes

let active_mappings t = List.length t.entries
