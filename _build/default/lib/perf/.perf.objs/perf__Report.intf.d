lib/perf/report.pp.mli:
