lib/perf/report.pp.ml: Float List Printf String
