(* Result tables for the benchmark harness: per-figure series in the
   shape the paper plots them (problem size on the x-axis, one line per
   implementation), printed both as aligned text and as CSV. *)

type series = { s_label : string; s_points : (int * float) list (* size, seconds *) }

type figure = {
  f_id : string; (* e.g. "fig4e" *)
  f_title : string; (* e.g. "gemm kernel" *)
  f_series : series list;
  f_notes : string list;
}

let find_point series size = List.assoc_opt size series.s_points

let sizes_of figure =
  List.concat_map (fun s -> List.map fst s.s_points) figure.f_series
  |> List.sort_uniq compare

let print_figure ?(oc = stdout) (f : figure) : unit =
  let pr fmt = Printf.fprintf oc fmt in
  pr "\n=== %s: %s ===\n" f.f_id f.f_title;
  let sizes = sizes_of f in
  pr "%-10s" "size";
  List.iter (fun s -> pr "%14s" s.s_label) f.f_series;
  if List.length f.f_series = 2 then pr "%10s" "ratio";
  pr "\n";
  List.iter
    (fun size ->
      pr "%-10d" size;
      List.iter
        (fun s ->
          match find_point s size with
          | Some t -> pr "%14.4f" t
          | None -> pr "%14s" "-")
        f.f_series;
      (match f.f_series with
      | [ a; b ] -> (
        match (find_point a size, find_point b size) with
        | Some ta, Some tb when ta > 0.0 -> pr "%10.3f" (tb /. ta)
        | _ -> pr "%10s" "-")
      | _ -> ());
      pr "\n")
    sizes;
  List.iter (fun n -> pr "  note: %s\n" n) f.f_notes

let print_csv ?(oc = stdout) (f : figure) : unit =
  let pr fmt = Printf.fprintf oc fmt in
  pr "# %s,%s\n" f.f_id f.f_title;
  pr "size%s\n" (String.concat "" (List.map (fun s -> "," ^ s.s_label) f.f_series));
  List.iter
    (fun size ->
      pr "%d" size;
      List.iter
        (fun s ->
          match find_point s size with
          | Some t -> pr ",%.6f" t
          | None -> pr ",")
        f.f_series;
      pr "\n")
    (sizes_of f)

(* Shape checks used by EXPERIMENTS.md: is the second series within
   [tolerance] (relative) of the first at every size? *)
let max_relative_gap (f : figure) : (int * float) option =
  match f.f_series with
  | [ a; b ] ->
    List.fold_left
      (fun acc size ->
        match (find_point a size, find_point b size) with
        | Some ta, Some tb when ta > 0.0 ->
          let gap = Float.abs (tb -. ta) /. ta in
          (match acc with
          | Some (_, g) when g >= gap -> acc
          | _ -> Some (size, gap))
        | _ -> acc)
      None (sizes_of f)
  | _ -> None
