lib/cinterp/interp.pp.ml: Addr Ast Buffer Char Cty Float Format Fun Hashtbl Int64 List Machine Mem Minic Option Pretty Printf Scanf String Value
