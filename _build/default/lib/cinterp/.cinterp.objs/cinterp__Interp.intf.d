lib/cinterp/interp.pp.mli: Addr Ast Buffer Cty Format Hashtbl Machine Mem Minic Value
