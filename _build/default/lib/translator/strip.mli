(** Sequential lowering: removes OpenMP directives while preserving the
    program's meaning for single-threaded execution.  Used for the host
    fallback path of an [if()] clause and for host-side parallel
    constructs (the paper's contribution is the device side). *)

open Minic

val strip_stmt : Ast.stmt -> Ast.stmt

(** Sections blocks flatten to their sections in order. *)
val strip_sections : Ast.stmt -> Ast.stmt

val strip_program : Ast.program -> Ast.program
