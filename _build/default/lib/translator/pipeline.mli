(** Whole-program translation driver (the ompicc pipeline of the paper's
    Fig. 2):

    {v
    source --parse--> AST --pragma rewrite--> typed directives
           --transform--> host AST with ort_* calls  +  kernel files
    v}

    Each target construct is outlined into its own kernel file, named
    [<function>_kernel<N>], matching OMPi's one-file-per-kernel layout
    (paper 3.3). *)

open Minic

exception Translate_error of string

type output = { out_host : Ast.program; out_kernels : Kernelgen.kernel list }

(** Translate a pragma-rewritten program. *)
val translate : Ast.program -> output

type compiled = {
  c_source_name : string;
  c_host : Ast.program;
  c_kernels : Kernelgen.kernel list;
  c_host_text : string;
  c_kernel_texts : (string * string) list;  (** kernel file name -> CUDA C *)
}

(** Front-to-back: parse, rewrite pragmas, validate, typecheck,
    translate, pretty-print.  Raises {!Translate_error} (with collected
    diagnostics) on invalid programs. *)
val compile_source : name:string -> string -> compiled
