(** Identifier substitution with shadowing awareness, plus generic
    expression mapping.  Used to retarget variable references when a
    region body is outlined into a kernel or a thread function. *)

open Minic

(** Bottom-up expression rewriting. *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** Substitute free identifier occurrences; names shadowed by local or
    loop-scope declarations are left alone. *)
val subst_stmt : (string -> Ast.expr option) -> Ast.stmt -> Ast.stmt

val subst_assoc : (string * Ast.expr) list -> Ast.stmt -> Ast.stmt

val subst_expr_assoc : (string * Ast.expr) list -> Ast.expr -> Ast.expr

(** Identifiers referenced but not declared within, in order of first
    appearance.  Declarations anywhere in the subtree bind their name
    for the whole analysis — a sound over-approximation for outlining. *)
val free_vars : Ast.stmt -> string list
