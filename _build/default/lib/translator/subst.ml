(* Identifier substitution with shadowing awareness, plus generic
   expression mapping.  Used to retarget variable references when a
   region body is outlined into a kernel or a thread function. *)

open Minic

let rec map_expr (f : Ast.expr -> Ast.expr) (e : Ast.expr) : Ast.expr =
  let r = map_expr f in
  let e' =
    match e with
    | Ast.IntLit _ | Ast.FloatLit _ | Ast.CharLit _ | Ast.StrLit _ | Ast.Ident _ | Ast.SizeofT _ ->
      e
    | Ast.Unop (op, a) -> Ast.Unop (op, r a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, r a, r b)
    | Ast.Assign (op, a, b) -> Ast.Assign (op, r a, r b)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map r args)
    | Ast.Index (a, b) -> Ast.Index (r a, r b)
    | Ast.Member (a, fld) -> Ast.Member (r a, fld)
    | Ast.Arrow (a, fld) -> Ast.Arrow (r a, fld)
    | Ast.Deref a -> Ast.Deref (r a)
    | Ast.AddrOf a -> Ast.AddrOf (r a)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, r a)
    | Ast.SizeofE a -> Ast.SizeofE (r a)
    | Ast.Cond (a, b, c) -> Ast.Cond (r a, r b, r c)
    | Ast.Comma (a, b) -> Ast.Comma (r a, r b)
  in
  f e'

(* Substitute free identifier occurrences.  [lookup] returns the
   replacement expression for a name; names shadowed by local
   declarations or loop-scope declarations are left alone. *)
let subst_stmt (lookup : string -> Ast.expr option) (s : Ast.stmt) : Ast.stmt =
  let rec subst_e bound e =
    map_expr
      (function
        | Ast.Ident x when not (List.mem x bound) -> (
          match lookup x with Some repl -> repl | None -> Ast.Ident x)
        | e -> e)
      e
    |> fun e' ->
    ignore bound;
    e'
  and subst_init bound = function
    | Ast.Iexpr e -> Ast.Iexpr (subst_e bound e)
    | Ast.Ilist l -> Ast.Ilist (List.map (subst_init bound) l)
  and subst_decls bound ds =
    (* declarations extend the bound set left-to-right; initialisers of a
       declaration may still see the outer binding of later names. *)
    let rec go bound acc = function
      | [] -> (List.rev acc, bound)
      | (d : Ast.decl) :: rest ->
        let d' = { d with d_init = Option.map (subst_init bound) d.d_init } in
        go (d.d_name :: bound) (d' :: acc) rest
    in
    go bound [] ds
  and subst_block bound stmts =
    let rec go bound acc = function
      | [] -> List.rev acc
      | Ast.Sdecl ds :: rest ->
        let ds', bound' = subst_decls bound ds in
        go bound' (Ast.Sdecl ds' :: acc) rest
      | s :: rest -> go bound (subst_s bound s :: acc) rest
    in
    go bound [] stmts
  and subst_s bound s =
    match s with
    | Ast.Sexpr e -> Ast.Sexpr (subst_e bound e)
    | Ast.Sdecl ds -> Ast.Sdecl (fst (subst_decls bound ds))
    | Ast.Sblock stmts -> Ast.Sblock (subst_block bound stmts)
    | Ast.Sif (c, t, e) -> Ast.Sif (subst_e bound c, subst_s bound t, Option.map (subst_s bound) e)
    | Ast.Swhile (c, b) -> Ast.Swhile (subst_e bound c, subst_s bound b)
    | Ast.Sdo (b, c) -> Ast.Sdo (subst_s bound b, subst_e bound c)
    | Ast.Sfor (init, cond, update, b) ->
      let init', bound' =
        match init with
        | Some (Ast.Sdecl ds) ->
          let ds', bound' = subst_decls bound ds in
          (Some (Ast.Sdecl ds'), bound')
        | Some (Ast.Sexpr e) -> (Some (Ast.Sexpr (subst_e bound e)), bound)
        | Some s -> (Some (subst_s bound s), bound)
        | None -> (None, bound)
      in
      Ast.Sfor (init', Option.map (subst_e bound') cond, Option.map (subst_e bound') update, subst_s bound' b)
    | Ast.Sreturn e -> Ast.Sreturn (Option.map (subst_e bound) e)
    | Ast.Sbreak | Ast.Scontinue | Ast.Snop -> s
    | Ast.Spragma (p, body) -> Ast.Spragma (p, Option.map (subst_s bound) body)
  in
  subst_s [] s

let subst_assoc (pairs : (string * Ast.expr) list) (s : Ast.stmt) : Ast.stmt =
  subst_stmt (fun x -> List.assoc_opt x pairs) s

let subst_expr_assoc (pairs : (string * Ast.expr) list) (e : Ast.expr) : Ast.expr =
  map_expr
    (function Ast.Ident x -> (match List.assoc_opt x pairs with Some r -> r | None -> Ast.Ident x) | e -> e)
    e

(* Free variables of a statement: identifiers referenced but not
   declared within, in order of first appearance.  Declarations anywhere
   in the subtree bind their name for the whole analysis (a sound
   over-approximation for outlining: a name both declared inside and
   referencing an outer binding would be ill-formed OpenMP anyway). *)
let free_vars (s : Ast.stmt) : string list =
  let declared = ref [] in
  let collect_decls s =
    match s with
    | Ast.Sdecl ds -> List.iter (fun (d : Ast.decl) -> declared := d.Ast.d_name :: !declared) ds
    | _ -> ()
  in
  Ast.iter_stmt ~on_expr:(fun _ -> ()) ~on_stmt:collect_decls s;
  let seen = ref [] in
  let on_expr e =
    match e with
    | Ast.Ident x when (not (List.mem x !declared)) && not (List.mem x !seen) -> seen := x :: !seen
    | _ -> ()
  in
  Ast.iter_stmt ~on_expr ~on_stmt:(fun _ -> ()) s;
  List.rev !seen
