(** Canonical-loop analysis: OpenMP worksharing loops must have the
    shape [for (i = lb; i REL ub; i STEP)]; the lowering turns a
    (possibly collapsed) nest into a flat iteration space distributed
    through the device library's chunk calls. *)

open Minic

exception Not_canonical of string

type canon = {
  cl_var : string;
  cl_var_decl : bool;  (** loop variable declared in the init clause *)
  cl_lb : Ast.expr;
  cl_ub : Ast.expr;  (** exclusive upper bound *)
  cl_step : Ast.expr;  (** positive *)
  cl_body : Ast.stmt;
}

(** Raises {!Not_canonical} with a diagnostic when the statement is not
    an OpenMP canonical loop. *)
val analyze : Ast.stmt -> canon

(** Peel [n] perfectly nested canonical loops (collapse(n)); returns the
    loops outermost-first and the innermost body. *)
val analyze_nest : int -> Ast.stmt -> canon list * Ast.stmt

(** Iteration count of one loop: (ub - lb + step - 1) / step. *)
val extent : canon -> Ast.expr

(** Product of the nest's extents.  [extents] lets callers supply
    hoisted extent variables. *)
val total_extent : ?extents:Ast.expr list -> canon list -> Ast.expr

(** Declarations recovering each original loop variable from a flat
    index. *)
val index_recovery : ?extents:Ast.expr list -> canon list -> flat:Ast.expr -> Ast.stmt list

(** Strength-reduced recovery for contiguous chunks: div/mod once at the
    chunk start ([flat_start]), then a carry-chain expression to append
    to the loop update.  Valid only when consecutive flat indices are
    executed in order. *)
val incremental_recovery :
  ?extents:Ast.expr list -> canon list -> flat_start:Ast.expr -> Ast.stmt list * Ast.expr option
