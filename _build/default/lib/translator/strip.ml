(* Sequential lowering: removes OpenMP directives while preserving the
   program's meaning when executed by a single thread.  Used for the
   host fallback path of an if() clause and for host-side parallel
   constructs (this implementation runs the host single-threaded; the
   paper's contribution is the device side). *)

open Minic

let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  Ast.map_stmt
    (function
      | Ast.Spragma (Ast.Omp dir, body) -> strip_directive dir body
      | s -> s)
    s

and strip_directive (dir : Ast.directive) (body : Ast.stmt option) : Ast.stmt =
  match (dir.Ast.dir_constructs, body) with
  (* stand-alone directives have no sequential effect *)
  | _, None -> Ast.Snop
  | constructs, Some body ->
    if List.mem Ast.C_sections constructs then
      (* each section executes once, in order *)
      strip_sections body
    else
      (* target/teams/distribute/parallel/for/single/master/critical all
         reduce to their body for one thread *)
      body

and strip_sections (body : Ast.stmt) : Ast.stmt =
  match body with
  | Ast.Sblock stmts ->
    Ast.Sblock
      (List.map
         (function
           | Ast.Spragma (Ast.Omp { Ast.dir_constructs = [ Ast.C_section ]; _ }, Some b) -> b
           | s -> s)
         stmts)
  | s -> s

let strip_program (p : Ast.program) : Ast.program =
  List.filter_map
    (function
      | Ast.Gfun f -> Some (Ast.Gfun { f with f_body = strip_stmt f.f_body })
      | Ast.Gpragma (Ast.Omp _) -> None
      | g -> Some g)
    p
