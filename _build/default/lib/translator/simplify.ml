(* Algebraic cleanup of generated expressions: constant folding and
   neutral-element elimination.  Keeps the emitted kernel files close to
   what a human would write (and the golden tests readable). *)

open Machine
open Minic

let is_zero = function Ast.IntLit (0L, _) -> true | _ -> false

let is_one = function Ast.IntLit (1L, _) -> true | _ -> false

let expr (e : Ast.expr) : Ast.expr =
  Subst.map_expr
    (fun e ->
      match e with
      | Ast.Binop (op, a, b) -> (
        match Ast.const_eval_opt e with
        | Some v when Int64.compare v 0L >= 0 && Int64.compare v 0x7FFFFFFFL <= 0 ->
          Ast.IntLit (v, Cty.Int)
        | _ -> (
          match (op, a, b) with
          | Ast.Add, a, b when is_zero a -> b
          | (Ast.Add | Ast.Sub), a, b when is_zero b -> a
          | Ast.Mul, a, b when is_one a -> b
          | (Ast.Mul | Ast.Div), a, b when is_one b -> a
          | Ast.Mul, a, b when is_zero a || is_zero b -> Ast.int_lit 0
          | _ -> e))
      | e -> e)
    e
