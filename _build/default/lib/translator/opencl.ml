(* Preliminary OpenCL back end (paper §3: "there also exists preliminary
   support for OpenCL devices, offered by a corresponding OpenCL
   module"; the conclusion lists extending it as ongoing work).

   The transformation set reuses the kernels built for the CUDA module
   and retargets them to OpenCL C:
   - the entry point becomes a [__kernel] function and its pointer
     parameters are qualified [__global];
   - the device-library calls are renamed to their ocldev_* equivalents;
   - thread/team identity maps onto get_local_id / get_group_id /
     get_local_size / get_num_groups;
   - [__shared__] declarations become [__local].

   Like OMPi's, this back end is code-generation only: the simulator
   executes the CUDA-module kernels, and the OpenCL files are emitted
   for inspection ([ompicc --opencl]) and golden-tested. *)

open Machine
open Minic

(* cudadev entry points whose OpenCL runtime twin keeps the same shape *)
let renamed_call = function
  | "cudadev_thread_id" -> Some ("get_local_linear_id", [])
  | "cudadev_team_id" -> Some ("get_group_linear_id", [])
  | "cudadev_num_threads" -> Some ("get_local_size", [ Ast.int_lit 0 ])
  | "cudadev_num_teams" -> Some ("get_num_groups", [ Ast.int_lit 0 ])
  | "__syncthreads" -> Some ("barrier", [ Ast.ident "CLK_LOCAL_MEM_FENCE" ])
  | name ->
    if String.length name > 8 && String.sub name 0 8 = "cudadev_" then
      Some ("ocldev_" ^ String.sub name 8 (String.length name - 8), [])
    else None

let retarget_expr (e : Ast.expr) : Ast.expr =
  Subst.map_expr
    (function
      | Ast.Call (f, args) -> (
        match renamed_call f with
        | Some (f', extra) -> Ast.Call (f', (if args = [] then extra else args))
        | None -> Ast.Call (f, args))
      | e -> e)
    e

let rec retarget_stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Sexpr e -> Ast.Sexpr (retarget_expr e)
  | Ast.Sdecl ds ->
    Ast.Sdecl
      (List.map
         (fun (d : Ast.decl) ->
           let init =
             match d.Ast.d_init with
             | Some (Ast.Iexpr e) -> Some (Ast.Iexpr (retarget_expr e))
             | other -> other
           in
           { d with Ast.d_init = init })
         ds)
  | Ast.Sblock ss -> Ast.Sblock (List.map retarget_stmt ss)
  | Ast.Sif (c, t, e) -> Ast.Sif (retarget_expr c, retarget_stmt t, Option.map retarget_stmt e)
  | Ast.Swhile (c, b) -> Ast.Swhile (retarget_expr c, retarget_stmt b)
  | Ast.Sdo (b, c) -> Ast.Sdo (retarget_stmt b, retarget_expr c)
  | Ast.Sfor (i, c, u, b) ->
    Ast.Sfor
      (Option.map retarget_stmt i, Option.map retarget_expr c, Option.map retarget_expr u, retarget_stmt b)
  | Ast.Sreturn e -> Ast.Sreturn (Option.map retarget_expr e)
  | Ast.Sbreak | Ast.Scontinue | Ast.Snop -> s
  | Ast.Spragma (p, b) -> Ast.Spragma (p, Option.map retarget_stmt b)

let retarget_fundef ~(is_entry : bool) (f : Ast.fundef) : string =
  let body = retarget_stmt f.Ast.f_body in
  let param (n, ty) =
    match Cty.decay ty with
    | Cty.Ptr _ when is_entry -> "__global " ^ Cty.to_c_string ~name:n (Cty.decay ty)
    | ty -> Cty.to_c_string ~name:n ty
  in
  let params =
    match f.Ast.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map param ps)
  in
  let qual = if is_entry then "__kernel " else "" in
  Format.asprintf "@[<v>%s%s(%s)@,%a@]" qual
    (Cty.to_c_string ~name:f.Ast.f_name f.Ast.f_ret)
    params Pretty.pp_stmt body

(* Emit the OpenCL C translation of one kernel file. *)
let of_kernel (k : Kernelgen.kernel) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "/* OpenCL translation of kernel %s (preliminary OpenCL module) */\n\n"
       k.Kernelgen.k_entry);
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct (name, fields) ->
        Buffer.add_string buf
          (Format.asprintf "@[<v>struct %s {@;<0 2>@[<v>%a@]@,};@]@.@." name
             (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (n, ty) ->
                  Format.fprintf fmt "%s;" (Cty.to_c_string ~name:n ty)))
             fields)
      | Ast.Gvar (d, _) ->
        Buffer.add_string buf (Printf.sprintf "__global %s;\n\n" (Cty.to_c_string ~name:d.Ast.d_name d.Ast.d_ty))
      | Ast.Gfun f ->
        let is_entry = f.Ast.f_name = k.Kernelgen.k_entry in
        Buffer.add_string buf (retarget_fundef ~is_entry f);
        Buffer.add_string buf "\n\n"
      | Ast.Gfundecl _ | Ast.Gpragma _ -> ())
    k.Kernelgen.k_program;
  (* local-memory qualifier: the mini-C AST carries the CUDA spelling *)
  let text = Buffer.contents buf in
  let b = Buffer.create (String.length text) in
  let shared = "__shared__" in
  let n = String.length text and m = String.length shared in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub text !i m = shared then begin
      Buffer.add_string b "__local";
      i := !i + m
    end
    else begin
      Buffer.add_char b text.[!i];
      incr i
    end
  done;
  Buffer.contents b
