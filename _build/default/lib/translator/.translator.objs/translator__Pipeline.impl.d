lib/translator/pipeline.pp.ml: Ast Cty Format Kernelgen List Machine Minic Omp Option Parser Pretty Printf Region String Strip Typecheck
