lib/translator/region.pp.ml: Ast Cty Format List Machine Minic Typecheck
