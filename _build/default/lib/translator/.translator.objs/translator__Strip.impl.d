lib/translator/strip.pp.ml: Ast List Minic
