lib/translator/opencl.pp.ml: Ast Buffer Cty Format Kernelgen List Machine Minic Option Pretty Printf String Subst
