lib/translator/opencl.pp.mli: Kernelgen
