lib/translator/loops.pp.mli: Ast Minic
