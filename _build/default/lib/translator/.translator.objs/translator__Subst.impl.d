lib/translator/subst.pp.ml: Ast List Minic Option
