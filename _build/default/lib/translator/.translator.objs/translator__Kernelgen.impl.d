lib/translator/kernelgen.pp.ml: Ast Cty Hashtbl Int32 Int64 List Loops Machine Minic Option Ppx_deriving_runtime Pretty Printf Region String Strip Subst Typecheck
