lib/translator/pipeline.pp.mli: Ast Kernelgen Minic
