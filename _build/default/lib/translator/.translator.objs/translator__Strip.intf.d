lib/translator/strip.pp.mli: Ast Minic
