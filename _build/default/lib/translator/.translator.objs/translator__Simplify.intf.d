lib/translator/simplify.pp.mli: Ast Minic
