lib/translator/kernelgen.pp.mli: Ast Format Minic Region Typecheck
