lib/translator/simplify.pp.ml: Ast Cty Int64 Machine Minic Subst
