lib/translator/region.pp.mli: Ast Cty Format Machine Minic Typecheck
