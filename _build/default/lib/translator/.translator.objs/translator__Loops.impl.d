lib/translator/loops.pp.ml: Ast Format List Machine Minic Simplify
