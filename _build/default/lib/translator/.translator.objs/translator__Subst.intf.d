lib/translator/subst.pp.mli: Ast Minic
