(** Algebraic cleanup of generated expressions: constant folding and
    neutral-element elimination, keeping emitted kernel files close to
    what a human would write. *)

open Minic

val is_zero : Ast.expr -> bool

val is_one : Ast.expr -> bool

val expr : Ast.expr -> Ast.expr
