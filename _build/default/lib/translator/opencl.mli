(** Preliminary OpenCL back end (paper section 3 mentions it; the
    conclusion lists extending it as ongoing work).  Retargets the
    kernels built for the CUDA module to OpenCL C — [__kernel] entry
    points, [__global] pointer parameters, get_local_id-style identity,
    ocldev_* runtime names, [__local] shared declarations.

    Code generation only, as in OMPi: the simulator executes the CUDA
    kernels; the OpenCL files are emitted for inspection
    ([ompicc --opencl]). *)

val of_kernel : Kernelgen.kernel -> string
