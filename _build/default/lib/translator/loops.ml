(* Canonical-loop analysis: OpenMP worksharing loops must have the shape
   for (i = lb; i REL ub; i STEP), which the lowering turns into a flat
   iteration space distributed via the device library's chunk calls. *)

open Minic

exception Not_canonical of string

let not_canonical fmt = Format.kasprintf (fun s -> raise (Not_canonical s)) fmt

type canon = {
  cl_var : string;
  cl_var_decl : bool; (* loop variable declared in the init clause *)
  cl_lb : Ast.expr;
  cl_ub : Ast.expr; (* exclusive upper bound *)
  cl_step : Ast.expr; (* positive *)
  cl_body : Ast.stmt;
}

let one = Ast.int_lit 1

(* extent = (ub - lb + step - 1) / step, simplified when step = 1 *)
let extent (c : canon) : Ast.expr =
  Simplify.expr
    (match c.cl_step with
    | Ast.IntLit (1L, _) -> Ast.sub c.cl_ub c.cl_lb
    | step -> Ast.Binop (Ast.Div, Ast.sub (Ast.add c.cl_ub (Ast.sub step one)) c.cl_lb, step))

let analyze (s : Ast.stmt) : canon =
  match s with
  | Ast.Sfor (init, Some cond, Some update, body) ->
    let var, lb, var_decl =
      match init with
      | Some (Ast.Sexpr (Ast.Assign (None, Ast.Ident v, lb))) -> (v, lb, false)
      | Some (Ast.Sdecl [ { Ast.d_name = v; d_init = Some (Ast.Iexpr lb); _ } ]) -> (v, lb, true)
      | _ -> not_canonical "loop initialisation must be 'i = lb' or 'int i = lb'"
    in
    let ub =
      match cond with
      | Ast.Binop (Ast.Lt, Ast.Ident v, ub) when v = var -> ub
      | Ast.Binop (Ast.Le, Ast.Ident v, ub) when v = var -> Ast.add ub one
      | Ast.Binop (Ast.Gt, ub, Ast.Ident v) when v = var -> ub
      | Ast.Binop (Ast.Ge, ub, Ast.Ident v) when v = var -> Ast.add ub one
      | _ -> not_canonical "loop condition must compare the loop variable against a bound"
    in
    let step =
      match update with
      | Ast.Unop ((Ast.PreInc | Ast.PostInc), Ast.Ident v) when v = var -> one
      | Ast.Assign (Some Ast.Add, Ast.Ident v, step) when v = var -> step
      | Ast.Assign (None, Ast.Ident v, Ast.Binop (Ast.Add, Ast.Ident v', step)) when v = var && v' = var ->
        step
      | _ -> not_canonical "loop update must be i++, i += c or i = i + c"
    in
    { cl_var = var; cl_var_decl = var_decl; cl_lb = lb; cl_ub = ub; cl_step = step; cl_body = body }
  | _ -> not_canonical "worksharing construct must be applied to a for loop"

(* Peel [n] perfectly nested canonical loops for collapse(n).  Returns
   the loops outermost-first and the innermost body. *)
let rec analyze_nest (n : int) (s : Ast.stmt) : canon list * Ast.stmt =
  if n <= 0 then invalid_arg "analyze_nest";
  let c = analyze s in
  if n = 1 then ([ c ], c.cl_body)
  else begin
    let inner =
      match c.cl_body with
      | Ast.Sblock [ (Ast.Sfor _ as f) ] -> f
      | Ast.Sfor _ as f -> f
      | _ -> not_canonical "collapse requires perfectly nested loops"
    in
    let rest, body = analyze_nest (n - 1) inner in
    (c :: rest, body)
  end

(* Build the index-recovery declarations for a collapsed nest: given the
   flat index variable [flat], declare each original loop variable.
   For loops [c1; c2; c3], with extents e2, e3:
     i1 = lb1 + (flat / (e2*e3)) * s1
     i2 = lb2 + ((flat / e3) mod e2) * s2
     i3 = lb3 + (flat mod e3) * s3
   [extents] lets callers supply hoisted extent variables. *)
let index_recovery ?(extents : Ast.expr list option) (loops : canon list) ~(flat : Ast.expr) :
    Ast.stmt list =
  let extents = match extents with Some e -> e | None -> List.map extent loops in
  let n = List.length loops in
  List.mapi
    (fun i c ->
      (* product of extents of the loops strictly inner to i *)
      let inner_prod =
        List.filteri (fun j _ -> j > i) extents
        |> List.fold_left (fun acc e -> match acc with None -> Some e | Some p -> Some (Ast.mul p e)) None
      in
      let quotient = match inner_prod with None -> flat | Some p -> Ast.Binop (Ast.Div, flat, p) in
      let index =
        if i = 0 then quotient
        else Ast.Binop (Ast.Mod, quotient, List.nth extents i)
      in
      let scaled =
        match c.cl_step with Ast.IntLit (1L, _) -> index | s -> Ast.mul index s
      in
      let value =
        Simplify.expr (match c.cl_lb with Ast.IntLit (0L, _) -> scaled | lb -> Ast.add lb scaled)
      in
      Ast.Sdecl [ Ast.mk_decl ~init:(Ast.Iexpr value) c.cl_var Machine.Cty.Int ])
    loops
  |> fun l ->
  ignore n;
  l

let total_extent ?(extents : Ast.expr list option) (loops : canon list) : Ast.expr =
  let extents = match extents with Some e -> e | None -> List.map extent loops in
  match extents with
  | [] -> invalid_arg "total_extent: empty nest"
  | e :: rest -> Simplify.expr (List.fold_left Ast.mul e rest)

(* Incremental (strength-reduced) index recovery for contiguous chunks:
   the indices are recovered with div/mod once at the chunk start and
   then maintained by carry propagation, avoiding the per-iteration
   divisions a naive flattening would pay.  Returns the initial
   declarations and the carry expression to append to the loop update.
   Only valid when consecutive flat indices are executed in order. *)
let incremental_recovery ?(extents : Ast.expr list option) (loops : canon list)
    ~(flat_start : Ast.expr) : Ast.stmt list * Ast.expr option =
  let inits = index_recovery ?extents loops ~flat:flat_start in
  match loops with
  | [] -> (inits, None)
  | _ ->
    (* innermost-first carry chain:
       (k += s3, k >= ub3 ? (k = lb3, j += s2, j >= ub2 ? (j = lb2, i += s1) : 0) : 0) *)
    let rec chain = function
      | [] -> invalid_arg "incremental_recovery"
      | [ (c : canon) ] ->
        (* outermost: plain increment, no reset *)
        Ast.Assign (Some Ast.Add, Ast.Ident c.cl_var, c.cl_step)
      | (c : canon) :: rest ->
        let bump = Ast.Assign (Some Ast.Add, Ast.Ident c.cl_var, c.cl_step) in
        let reset = Ast.Assign (None, Ast.Ident c.cl_var, c.cl_lb) in
        Ast.Comma
          ( bump,
            Ast.Cond
              ( Ast.Binop (Ast.Ge, Ast.Ident c.cl_var, c.cl_ub),
                Ast.Comma (reset, chain rest),
                Ast.int_lit 0 ) )
    in
    (inits, Some (chain (List.rev loops)))
