(** Runtime values of the interpreted C subset.  Integers are normalised
    to the width and signedness of their C type; [float]-typed values
    are rounded to binary32 on creation, matching the FP32 units of the
    simulated GPU. *)

type t =
  | VInt of int64 * Cty.t
  | VFlt of float * Cty.t
  | VPtr of Addr.t * Cty.t  (** address and pointee type *)
  | VVoid

val pp : Format.formatter -> t -> unit

val show : t -> string

val equal : t -> t -> bool

exception Value_error of string

(** Round to binary32 (the C [float] type). *)
val round32 : float -> float

(** Truncate/sign-extend an [int64] to the representation of the given
    integer type. *)
val normalise_int : Cty.t -> int64 -> int64

(** {1 Constructors} *)

val int : ?ty:Cty.t -> int64 -> t

val of_int : ?ty:Cty.t -> int -> t

val flt : ?ty:Cty.t -> float -> t

val ptr : ?ty:Cty.t -> Addr.t -> t

val bool : bool -> t

(** {1 Accessors and conversions} *)

val ty_of : t -> Cty.t

val as_int : t -> int64

val to_int : t -> int

val as_float : t -> float

val as_addr : t -> Addr.t

val is_true : t -> bool

(** C conversion rules ([(ty) v]). *)
val cast : Cty.t -> t -> t
