(** C type representation shared by the front end, the interpreter and
    the memory model.  Sizes follow the LP64 ABI of the Jetson Nano's
    AArch64 Linux: [char] 1, [short] 2, [int] 4, [long] 8, [float] 4,
    [double] 8, pointers 8 bytes. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Uchar
  | Ushort
  | Uint
  | Ulong
  | Float
  | Double
  | Ptr of t
  | Array of t * int option  (** element type, dimension ([None] = incomplete) *)
  | Struct of string
  | Func of t * t list * bool  (** return type, parameter types, variadic *)

val pp : Format.formatter -> t -> unit

val show : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

(** Raised on ill-typed requests (sizeof void, unknown struct, ...). *)
exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Struct layouts}

    Layouts are resolved against an explicit environment so that
    independent compilations share no hidden global state. *)

type field = { fld_name : string; fld_ty : t; fld_off : int }

type layout = { lay_name : string; lay_fields : field list; lay_size : int; lay_align : int }

type layout_env

val create_layout_env : unit -> layout_env

(** Compute natural-alignment offsets and register the layout. *)
val define_struct : layout_env -> string -> (string * t) list -> layout

val lookup_layout : layout_env -> string -> layout

val has_layout : layout_env -> string -> bool

val find_field : layout_env -> string -> string -> field

(** {1 Queries} *)

val is_integer : t -> bool

val is_unsigned : t -> bool

val is_float : t -> bool

val is_arith : t -> bool

val is_pointer : t -> bool

val is_scalar : t -> bool

val sizeof : layout_env -> t -> int

val alignof : layout_env -> t -> int

val align_up : int -> int -> int

(** Array-to-pointer decay, as applied to rvalue uses and parameters. *)
val decay : t -> t

(** Element type behind a pointer or array; raises {!Type_error} otherwise. *)
val pointee : t -> t

(** The usual arithmetic conversions (integer promotion included). *)
val common_arith : t -> t -> t

val rank : t -> int

(** Render as C syntax around the given declarator name, handling the
    inside-out declarator rules (pointers to arrays and the like). *)
val to_c_string : ?name:string -> t -> string
