lib/machine/addr.pp.mli: Format
