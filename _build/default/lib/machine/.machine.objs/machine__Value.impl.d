lib/machine/value.pp.ml: Addr Cty Format Int32 Int64 Ppx_deriving_runtime
