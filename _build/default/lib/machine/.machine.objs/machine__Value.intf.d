lib/machine/value.pp.mli: Addr Cty Format
