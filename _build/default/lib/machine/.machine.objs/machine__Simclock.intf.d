lib/machine/simclock.pp.mli:
