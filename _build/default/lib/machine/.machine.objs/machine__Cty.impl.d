lib/machine/cty.pp.ml: Format Hashtbl List Ppx_deriving_runtime String
