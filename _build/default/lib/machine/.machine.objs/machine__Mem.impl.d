lib/machine/mem.pp.ml: Addr Bytes Char Cty Hashtbl Int32 Int64 List Printf Value
