lib/machine/mem.pp.mli: Addr Bytes Cty Hashtbl Value
