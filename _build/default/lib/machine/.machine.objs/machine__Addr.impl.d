lib/machine/addr.pp.ml: Int64 Ppx_deriving_runtime Printf
