lib/machine/cty.pp.mli: Format
