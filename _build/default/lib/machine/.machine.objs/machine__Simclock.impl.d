lib/machine/simclock.pp.ml:
