(* Simulated wall clock.  All components of the virtual platform advance
   this clock with modelled durations; benchmark harnesses read it to
   report "execution time" the way the paper reports seconds on the real
   board. *)

type t = { mutable ns : float }

let create () = { ns = 0.0 }

let now_ns t = t.ns

let now_s t = t.ns *. 1e-9

let advance_ns t d =
  if d < 0.0 then invalid_arg "Simclock.advance_ns: negative duration";
  t.ns <- t.ns +. d

let advance_us t d = advance_ns t (d *. 1e3)

let advance_ms t d = advance_ns t (d *. 1e6)

let reset t = t.ns <- 0.0

(* Time an action: returns the simulated duration it accounted for. *)
let time t f =
  let before = t.ns in
  let result = f () in
  (result, (t.ns -. before) *. 1e-9)
