(** Simulated wall clock.  All components of the virtual platform
    advance it with modelled durations; benchmark harnesses read it to
    report "execution time" the way the paper reports seconds. *)

type t

val create : unit -> t

val now_ns : t -> float

val now_s : t -> float

(** Raises [Invalid_argument] on negative durations. *)
val advance_ns : t -> float -> unit

val advance_us : t -> float -> unit

val advance_ms : t -> float -> unit

val reset : t -> unit

(** [time t f] runs [f] and returns its result together with the
    simulated seconds it accounted for. *)
val time : t -> (unit -> 'a) -> 'a * float
