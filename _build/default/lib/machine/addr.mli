(** Tagged addresses: every pointer in the simulated system knows which
    memory space it lives in, so the SIMT engine can enforce the
    platform's visibility rules (e.g. device code never dereferences
    host memory). *)

type space =
  | Host  (** the host program's memory *)
  | Global  (** device global memory (cuMemAlloc arena) *)
  | Shared of int  (** per-block shared memory; the id is the block *)
  | Local of int  (** per-thread local stack; the id is the thread *)
  | Strings  (** interpreter-private arena for interned string literals *)

val pp_space : Format.formatter -> space -> unit

val show_space : space -> string

val equal_space : space -> space -> bool

val compare_space : space -> space -> int

type t = { space : space; off : int }

val pp : Format.formatter -> t -> unit

val show : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val null : t

val is_null : t -> bool

(** Pointer arithmetic: move the offset by a byte count. *)
val add : t -> int -> t

(** Byte distance between two addresses of the same space. *)
val diff : t -> t -> int

(** {1 Integer encoding}

    Addresses round-trip through [int64] so that interpreted C code can
    cast pointers to integers and back (8-bit space tag, 24-bit space
    id, 32-bit offset). *)

val to_int64 : t -> int64

val of_int64 : int64 -> t
