(* C type representation shared by the front end, the interpreter and the
   memory model.  Sizes follow the LP64 ABI of the Jetson Nano's AArch64
   Linux: char 1, short 2, int 4, long 8, float 4, double 8, pointer 8. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Uchar
  | Ushort
  | Uint
  | Ulong
  | Float
  | Double
  | Ptr of t
  | Array of t * int option
  | Struct of string
  | Func of t * t list * bool (* return, params, variadic *)
[@@deriving show { with_path = false }, eq, ord]

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* Struct layouts are resolved against an environment so that independent
   compilations do not share hidden global state. *)
type field = { fld_name : string; fld_ty : t; fld_off : int }

type layout = { lay_name : string; lay_fields : field list; lay_size : int; lay_align : int }

type layout_env = (string, layout) Hashtbl.t

let create_layout_env () : layout_env = Hashtbl.create 16

let is_integer = function
  | Char | Short | Int | Long | Uchar | Ushort | Uint | Ulong -> true
  | Void | Float | Double | Ptr _ | Array _ | Struct _ | Func _ -> false

let is_unsigned = function
  | Uchar | Ushort | Uint | Ulong -> true
  | Char | Short | Int | Long | Void | Float | Double | Ptr _ | Array _ | Struct _ | Func _ ->
    false

let is_float = function
  | Float | Double -> true
  | Char | Short | Int | Long | Uchar | Ushort | Uint | Ulong -> false
  | Void | Ptr _ | Array _ | Struct _ | Func _ -> false

let is_arith ty = is_integer ty || is_float ty

let is_pointer = function Ptr _ | Array _ -> true | _ -> false

let is_scalar ty = is_arith ty || is_pointer ty

let rec sizeof (env : layout_env) = function
  | Void -> type_error "sizeof(void)"
  | Char | Uchar -> 1
  | Short | Ushort -> 2
  | Int | Uint | Float -> 4
  | Long | Ulong | Double | Ptr _ -> 8
  | Array (elt, Some n) -> n * sizeof env elt
  | Array (_, None) -> type_error "sizeof of incomplete array"
  | Struct name -> (lookup_layout env name).lay_size
  | Func _ -> type_error "sizeof of function type"

and alignof (env : layout_env) = function
  | Array (elt, _) -> alignof env elt
  | Struct name -> (lookup_layout env name).lay_align
  | Void -> 1
  | ty -> sizeof env ty

and lookup_layout env name =
  match Hashtbl.find_opt env name with
  | Some l -> l
  | None -> type_error "unknown struct '%s'" name

let has_layout env name = Hashtbl.mem env name

let align_up off align = (off + align - 1) / align * align

(* Compute and register the layout of a struct definition. *)
let define_struct env name (fields : (string * t) list) : layout =
  let off = ref 0 and max_align = ref 1 in
  let lay_fields =
    List.map
      (fun (fld_name, fld_ty) ->
        let a = alignof env fld_ty in
        if a > !max_align then max_align := a;
        let fld_off = align_up !off a in
        off := fld_off + sizeof env fld_ty;
        { fld_name; fld_ty; fld_off })
      fields
  in
  let lay = { lay_name = name; lay_fields; lay_size = align_up !off !max_align; lay_align = !max_align } in
  Hashtbl.replace env name lay;
  lay

let find_field env sname fname =
  let lay = lookup_layout env sname in
  match List.find_opt (fun f -> f.fld_name = fname) lay.lay_fields with
  | Some f -> f
  | None -> type_error "struct '%s' has no field '%s'" sname fname

(* Array-to-pointer decay, as applied to rvalue uses and parameters. *)
let decay = function Array (elt, _) -> Ptr elt | ty -> ty

let pointee = function
  | Ptr t | Array (t, _) -> t
  | ty -> type_error "dereferencing non-pointer type %s" (show ty)

(* Usual arithmetic conversions, restricted to the types we support. *)
let rank = function
  | Char | Uchar -> 1
  | Short | Ushort -> 2
  | Int | Uint -> 3
  | Long | Ulong -> 4
  | _ -> 0

let common_arith a b =
  match (a, b) with
  | Double, _ | _, Double -> Double
  | Float, _ | _, Float -> Float
  | a, b when is_integer a && is_integer b ->
    let r = max (max (rank a) (rank b)) 3 in
    let unsigned = is_unsigned a || is_unsigned b in
    (match (r, unsigned) with
    | 3, false -> Int
    | 3, true -> Uint
    | 4, false -> Long
    | 4, true -> Ulong
    | _ -> Int)
  | a, b -> type_error "no common arithmetic type for %s and %s" (show a) (show b)

let rec to_c_string ?(name = "") ty =
  (* Render [ty] as C syntax around declarator [name]. *)
  match ty with
  | Void -> spaced "void" name
  | Char -> spaced "char" name
  | Short -> spaced "short" name
  | Int -> spaced "int" name
  | Long -> spaced "long" name
  | Uchar -> spaced "unsigned char" name
  | Ushort -> spaced "unsigned short" name
  | Uint -> spaced "unsigned int" name
  | Ulong -> spaced "unsigned long" name
  | Float -> spaced "float" name
  | Double -> spaced "double" name
  | Struct s -> spaced ("struct " ^ s) name
  | Ptr inner ->
    let name = "*" ^ name in
    (match inner with
    | Array _ | Func _ -> to_c_string ~name:("(" ^ name ^ ")") inner
    | _ -> to_c_string ~name inner)
  | Array (elt, n) ->
    let dim = match n with Some n -> string_of_int n | None -> "" in
    to_c_string ~name:(name ^ "[" ^ dim ^ "]") elt
  | Func (ret, params, variadic) ->
    let ps = List.map (fun p -> to_c_string p) params in
    let ps = if variadic then ps @ [ "..." ] else ps in
    let ps = if ps = [] then [ "void" ] else ps in
    to_c_string ~name:(name ^ "(" ^ String.concat ", " ps ^ ")") ret

and spaced base name = if name = "" then base else base ^ " " ^ name
