(** A byte-addressed memory region backing one address space.

    Device global memory uses {!alloc}/{!free} (first-fit free list with
    coalescing, mirroring cuMemAlloc/cuMemFree); shared memory and
    thread-local stacks use the {!push}/{!mark}/{!release} stack
    discipline.  Offset 0 is reserved so a zero offset can act as NULL. *)

type t = {
  name : string;
  space : Addr.space;
  mutable data : Bytes.t;  (** raw storage; grows lazily up to [limit] *)
  mutable brk : int;
  mutable free_list : (int * int) list;
  sizes : (int, int) Hashtbl.t;
  mutable limit : int;
}

exception Out_of_memory of string

exception Bad_access of string

val create : ?initial:int -> ?limit:int -> space:Addr.space -> string -> t

val capacity : t -> int

(** {1 Heap discipline} *)

(** First-fit allocation, 8-byte aligned, zero-filled. *)
val alloc : t -> int -> Addr.t

(** Raises {!Bad_access} on double free or foreign addresses; coalesces
    adjacent holes. *)
val free : t -> Addr.t -> unit

val allocated_bytes : t -> int

(** {1 Stack discipline} *)

val push : t -> int -> Addr.t

val mark : t -> int

val release : t -> int -> unit

(** {1 Scalar access}

    Bounds-checked little-endian loads/stores of C scalars.  Loading an
    array type yields the decayed pointer; struct access goes through
    field offsets at a higher layer. *)

val load_scalar : t -> Cty.layout_env -> Addr.t -> Cty.t -> Value.t

val store_scalar : t -> Cty.layout_env -> Addr.t -> Cty.t -> Value.t -> unit

(** {1 Bulk transfer} *)

val blit_out : t -> src_off:int -> len:int -> Bytes.t

val blit_in : t -> dst_off:int -> Bytes.t -> unit

val copy : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
