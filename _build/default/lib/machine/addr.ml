(* Addresses are tagged with the memory space they live in; pointer
   arithmetic only moves the offset.  Space identifiers for [Shared] and
   [Local] are assigned by the simulator (block index / linear thread id). *)

type space =
  | Host
  | Global
  | Shared of int
  | Local of int
  | Strings (* interpreter-private arena for interned string literals *)
[@@deriving show { with_path = false }, eq, ord]

type t = { space : space; off : int } [@@deriving show { with_path = false }, eq, ord]

let null = { space = Host; off = 0 }

let is_null a = a.off = 0

let add a bytes = { a with off = a.off + bytes }

let diff a b =
  if a.space <> b.space then invalid_arg "Addr.diff: different spaces";
  a.off - b.off

(* Encode an address as a 64-bit integer so that pointers can transit
   through integer casts inside interpreted C code.  Layout: 8-bit space
   tag, 24-bit space id, 32-bit offset. *)
let tag_of_space = function Host -> 0 | Global -> 1 | Shared _ -> 2 | Local _ -> 3 | Strings -> 4

let id_of_space = function Host | Global | Strings -> 0 | Shared i | Local i -> i

let to_int64 a =
  let tag = tag_of_space a.space and id = id_of_space a.space in
  Int64.(
    logor
      (shift_left (of_int tag) 56)
      (logor (shift_left (of_int (id land 0xFFFFFF)) 32) (logand (of_int a.off) 0xFFFFFFFFL)))

let of_int64 i =
  let tag = Int64.(to_int (shift_right_logical i 56)) land 0xFF in
  let id = Int64.(to_int (shift_right_logical i 32)) land 0xFFFFFF in
  let off = Int64.(to_int (logand i 0xFFFFFFFFL)) in
  let space =
    match tag with
    | 0 -> Host
    | 1 -> Global
    | 2 -> Shared id
    | 3 -> Local id
    | 4 -> Strings
    | n -> invalid_arg (Printf.sprintf "Addr.of_int64: bad space tag %d" n)
  in
  { space; off }
