(** The cudadev device runtime library (paper 4.2.2), exposed to kernel
    code as interpreter builtins.

    One {!install} call per GPU thread wires the library to that
    thread's interpreter instance, closing over the SIMT block/thread
    state.  Installed entry points include:

    - identity: [cudadev_thread_id], [cudadev_team_id],
      [omp_get_thread_num], [omp_get_num_threads], ...;
    - the master/worker scheme: [cudadev_in_masterwarp],
      [cudadev_is_masterthr], [cudadev_register_parallel],
      [cudadev_workerfunc], [cudadev_exit_target] (B1/B2 protocol);
    - the shared-memory stack: [cudadev_push_shmem],
      [cudadev_pop_shmem], [cudadev_getaddr];
    - worksharing: [cudadev_get_distribute_chunk],
      [cudadev_get_static_chunk], [cudadev_get_dynamic_chunk],
      [cudadev_get_guided_chunk], [cudadev_ws_barrier],
      [cudadev_barrier], [cudadev_sections_next];
    - synchronisation: [cudadev_lock]/[cudadev_unlock] (CAS spin locks),
      atomic reductions ([cudadev_reduce_*]);
    - CUDA intrinsics for hand-written kernels: [__syncthreads],
      [atomicAdd], [atomicCAS], [atomicExch]. *)

exception Devrt_error of string

(** Per-thread OpenMP execution context (thread id / team size); the
    master/worker engine overrides it for the duration of a region. *)
type omp_ctx = { mutable omp_id : int; mutable omp_num : int }

val b1_participants : Gpusim.Simt.block_state -> int

val barrier_id_b1 : int

val barrier_id_b2 : int

val barrier_id_user : int

val install : Cinterp.Interp.t -> Gpusim.Simt.block_state -> Gpusim.Simt.thread_state -> unit
