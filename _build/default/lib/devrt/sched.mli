(** Pure worksharing arithmetic of the cudadev device library: how
    iteration spaces are cut into chunks for [distribute] (among teams)
    and for static / dynamic / guided [for] loops (among the threads of
    a team).  Side-effect free, so the invariants — full coverage, no
    overlap, monotone bounds — are property-tested directly
    ([test/test_sched.ml]). *)

(** Half-open iteration range [lo, hi). *)
type range = { lo : int; hi : int }

val pp_range : Format.formatter -> range -> unit

val show_range : range -> string

val equal_range : range -> range -> bool

val range_len : range -> int

val empty_range : range

val ceil_div : int -> int -> int

(** Contiguous slice for one team: every team gets ceil(n/T) iterations,
    the tail teams the remainder (OMPi's distribute policy). *)
val distribute_chunk : team:int -> num_teams:int -> range -> range

(** schedule(static): contiguous even split of the team chunk. *)
val static_chunk : thread:int -> num_threads:int -> range -> range

(** schedule(static, c): the [k]-th block-cyclic chunk owned by
    [thread], or [None] when exhausted. *)
val static_cyclic_chunk :
  thread:int -> num_threads:int -> chunk:int -> k:int -> range -> range option

(** schedule(dynamic, c): the next chunk given the shared counter value
    (the counter itself lives in the device runtime). *)
val dynamic_chunk : counter:int -> chunk:int -> range -> range option

(** schedule(guided, c): chunk sized max(c, remaining / 2T). *)
val guided_chunk : counter:int -> num_threads:int -> min_chunk:int -> range -> range option

val guided_chunk_size : remaining:int -> num_threads:int -> min_chunk:int -> int

(** Map a flat collapsed index back to the n-dimensional loop indices
    (row-major, innermost last). *)
val uncollapse : extents:int list -> int -> int list

val collapsed_total : int list -> int
