lib/devrt/config.pp.mli: Hashtbl
