lib/devrt/sched.pp.mli: Format
