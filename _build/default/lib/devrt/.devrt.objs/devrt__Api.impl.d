lib/devrt/api.pp.ml: Addr Cinterp Config Counters Cty Float Format Gpusim Hashtbl Int64 List Machine Mem Minic Sched Simt Spec Stack Value
