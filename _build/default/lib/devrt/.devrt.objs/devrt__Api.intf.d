lib/devrt/api.pp.mli: Cinterp Gpusim
