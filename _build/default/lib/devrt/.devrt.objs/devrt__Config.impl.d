lib/devrt/config.pp.ml: Hashtbl
