lib/devrt/sched.pp.ml: List Ppx_deriving_runtime
