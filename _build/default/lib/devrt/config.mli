(** Tunable policies of the device runtime, exposed for the ablation
    benchmarks (bench/main.exe ablate-sections). *)

(** Assign sections to lanes of different warps first (paper 4.2.2).
    Disabling reverts to a plain shared counter, which tends to hand all
    sections to lanes of the same warp and serialise them under SIMT. *)
val sections_anti_divergence : bool ref

(** Ablation statistics: grants to a warp that already owned a section. *)
val sections_same_warp_grants : int ref

val sections_total_grants : int ref

val sections_warp_owners : (int * int, int list ref) Hashtbl.t

val reset_sections_stats : unit -> unit
