(* Pure worksharing arithmetic of the cudadev device library: how
   iteration spaces are cut into chunks for distribute (among teams) and
   for static / dynamic / guided for-loops (among the threads of a
   team).  Kept side-effect free so the invariants — full coverage, no
   overlap, monotone bounds — can be property-tested directly. *)

(* Half-open iteration range [lo, hi). *)
type range = { lo : int; hi : int } [@@deriving show { with_path = false }, eq]

let range_len r = max 0 (r.hi - r.lo)

let empty_range = { lo = 0; hi = 0 }

let ceil_div a b = (a + b - 1) / b

(* distribute: team [team] of [num_teams] takes a contiguous slice of
   [total].  OMPi gives every team ceil(n/T) iterations, the tail team
   getting the remainder. *)
let distribute_chunk ~(team : int) ~(num_teams : int) (total : range) : range =
  if num_teams <= 0 then invalid_arg "distribute_chunk: num_teams <= 0";
  if team < 0 || team >= num_teams then invalid_arg "distribute_chunk: team out of range";
  let n = range_len total in
  if n = 0 then empty_range
  else begin
    let per_team = ceil_div n num_teams in
    let lo = total.lo + (team * per_team) in
    let hi = min total.hi (lo + per_team) in
    if lo >= total.hi then empty_range else { lo; hi }
  end

(* schedule(static): contiguous even split of the team chunk among the
   [num_threads] threads. *)
let static_chunk ~(thread : int) ~(num_threads : int) (team_range : range) : range =
  if num_threads <= 0 then invalid_arg "static_chunk: num_threads <= 0";
  if thread < 0 || thread >= num_threads then invalid_arg "static_chunk: thread out of range";
  let n = range_len team_range in
  if n = 0 then empty_range
  else begin
    let per_thread = ceil_div n num_threads in
    let lo = team_range.lo + (thread * per_thread) in
    let hi = min team_range.hi (lo + per_thread) in
    if lo >= team_range.hi then empty_range else { lo; hi }
  end

(* schedule(static, c): block-cyclic.  Returns the [k]-th chunk owned by
   [thread], or None when exhausted. *)
let static_cyclic_chunk ~(thread : int) ~(num_threads : int) ~(chunk : int) ~(k : int)
    (team_range : range) : range option =
  if chunk <= 0 then invalid_arg "static_cyclic_chunk: chunk <= 0";
  let lo = team_range.lo + (((k * num_threads) + thread) * chunk) in
  if lo >= team_range.hi then None else Some { lo; hi = min team_range.hi (lo + chunk) }

(* schedule(dynamic, c): given the shared counter value, the next chunk.
   The counter state itself lives in the device runtime. *)
let dynamic_chunk ~(counter : int) ~(chunk : int) (team_range : range) : range option =
  if chunk <= 0 then invalid_arg "dynamic_chunk: chunk <= 0";
  if counter >= team_range.hi then None
  else Some { lo = counter; hi = min team_range.hi (counter + chunk) }

(* schedule(guided, c): chunk size proportional to the remaining
   iterations divided by the thread count, never below [chunk]. *)
let guided_chunk_size ~(remaining : int) ~(num_threads : int) ~(min_chunk : int) : int =
  max min_chunk (ceil_div remaining (2 * num_threads))

let guided_chunk ~(counter : int) ~(num_threads : int) ~(min_chunk : int) (team_range : range) :
    range option =
  if min_chunk <= 0 then invalid_arg "guided_chunk: min_chunk <= 0";
  if counter >= team_range.hi then None
  else begin
    let size = guided_chunk_size ~remaining:(team_range.hi - counter) ~num_threads ~min_chunk in
    Some { lo = counter; hi = min team_range.hi (counter + size) }
  end

(* Collapse: map a flat index back to the [n]-dimensional loop indices
   given the extent of each dimension (row-major, innermost last). *)
let uncollapse ~(extents : int list) (flat : int) : int list =
  let rec go acc flat = function
    | [] -> acc
    | extent :: rest ->
      if extent <= 0 then invalid_arg "uncollapse: non-positive extent";
      go ((flat mod extent) :: acc) (flat / extent) rest
  in
  go [] flat (List.rev extents)

let collapsed_total (extents : int list) = List.fold_left ( * ) 1 extents
