(* Tunable policies of the device runtime, exposed for the ablation
   benchmarks. *)

(* Assign sections to lanes of different warps first (paper §4.2.2).
   Disabling reverts to a plain shared counter, which tends to hand all
   sections to lanes of the same warp and serialise them under SIMT. *)
let sections_anti_divergence = ref true

(* Ablation statistics: how often a section was granted to a warp that
   already owned one (same-warp co-location causes SIMT serialisation on
   real hardware). *)
let sections_same_warp_grants = ref 0

let sections_total_grants = ref 0

(* (block, region) -> warps that own a section of that region *)
let sections_warp_owners : (int * int, int list ref) Hashtbl.t = Hashtbl.create 32

let reset_sections_stats () =
  sections_same_warp_grants := 0;
  sections_total_grants := 0;
  Hashtbl.reset sections_warp_owners
