(* ompicc — the source-to-source compiler CLI (paper Fig. 2).

   Takes a C file with OpenMP directives and emits:
   - <stem>_host.c       the translated host program (ort_* calls), and
   - <kernel>.cu         one CUDA C file per target region,
   exactly the artefact layout OMPi produces before handing the kernel
   files to nvcc.  With --run the program is also executed on the
   simulated Jetson Nano. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_cmd input output_dir binary_mode run entry show opencl =
  try
    let source = read_file input in
    let stem = Filename.remove_extension (Filename.basename input) in
    let mode =
      match binary_mode with
      | "ptx" -> Gpusim.Nvcc.Ptx
      | "cubin" -> Gpusim.Nvcc.Cubin
      | m ->
        prerr_endline ("unknown binary mode '" ^ m ^ "' (expected ptx or cubin)");
        exit 2
    in
    let config = { Ompi.default_config with binary_mode = mode } in
    let compiled = Ompi.compile ~config ~name:stem source in
    if show then begin
      print_endline "/* ---------------- translated host file ---------------- */";
      print_string compiled.Ompi.c_host_text;
      List.iter
        (fun (name, text) ->
          Printf.printf "/* ---------------- kernel file %s.cu ---------------- */\n%s" name text)
        compiled.Ompi.c_kernel_texts
    end;
    let files = Ompi.emit_files compiled ~dir:output_dir in
    List.iter (fun f -> Printf.eprintf "wrote %s\n" f) files;
    if opencl then
      List.iter
        (fun (k : Translator.Kernelgen.kernel) ->
          let path = Filename.concat output_dir (k.Translator.Kernelgen.k_entry ^ ".cl") in
          let oc = open_out path in
          output_string oc (Translator.Opencl.of_kernel k);
          close_out oc;
          Printf.eprintf "wrote %s (preliminary OpenCL module)\n" path)
        compiled.Ompi.c_kernels;
    Printf.eprintf "%d kernel file(s) generated (mode: %s)\n"
      (List.length compiled.Ompi.c_kernel_texts)
      binary_mode;
    if run then begin
      let instance = Ompi.load ~config compiled in
      let result = Ompi.run instance ~entry () in
      print_string result.Ompi.run_output;
      Printf.eprintf "[simulated time: %.6f s, %d kernel launch(es), exit %d]\n"
        result.Ompi.run_time_s result.Ompi.run_kernel_launches result.Ompi.run_exit;
      exit result.Ompi.run_exit
    end
  with
  | Minic.Lexer.Lex_error (msg, loc) ->
    Printf.eprintf "%s:%d:%d: lexical error: %s\n" input loc.Minic.Token.line loc.Minic.Token.col msg;
    exit 1
  | Minic.Parser.Parse_error (msg, loc) ->
    Printf.eprintf "%s:%d:%d: syntax error: %s\n" input loc.Minic.Token.line loc.Minic.Token.col msg;
    exit 1
  | Omp.Pragma_parser.Pragma_error msg ->
    Printf.eprintf "%s: OpenMP pragma error: %s\n" input msg;
    exit 1
  | Translator.Pipeline.Translate_error msg | Translator.Region.Unsupported msg ->
    Printf.eprintf "%s: translation error: %s\n" input msg;
    exit 1

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c" ~doc:"OpenMP C source file")

let output_arg =
  Arg.(value & opt string "." & info [ "o"; "output-dir" ] ~docv:"DIR" ~doc:"Output directory")

let mode_arg =
  Arg.(
    value
    & opt string "cubin"
    & info [ "b"; "binary-mode" ] ~docv:"MODE" ~doc:"Kernel binary mode: cubin (default) or ptx")

let run_arg = Arg.(value & flag & info [ "r"; "run" ] ~doc:"Execute on the simulated Jetson Nano after compiling")

let entry_arg = Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"FN" ~doc:"Entry function for --run")

let show_arg = Arg.(value & flag & info [ "s"; "show" ] ~doc:"Print the generated files to stdout")

let opencl_arg =
  Arg.(value & flag & info [ "opencl" ] ~doc:"Also emit OpenCL C kernel files (preliminary back end)")

let cmd =
  let doc = "OMPi-style OpenMP-to-CUDA source-to-source compiler for the simulated Jetson Nano" in
  Cmd.v
    (Cmd.info "ompicc" ~doc)
    Term.(const compile_cmd $ input_arg $ output_arg $ mode_arg $ run_arg $ entry_arg $ show_arg $ opencl_arg)

let () = exit (Cmd.eval cmd)
