(* Facade-level tests: the Ompi public API (compile / load / run /
   emit_files) and both CLI-relevant error paths. *)

let saxpy =
  {|
int main(void)
{
  float y[16];
  int i;
  for (i = 0; i < 16; i++) y[i] = i;
  #pragma omp target teams distribute parallel for map(tofrom: y[0:16])
  for (i = 0; i < 16; i++)
    y[i] = y[i] * 2.0f;
  printf("%f\n", y[15]);
  return 0;
}
|}

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_compile_shape () =
  let c = Ompi.compile ~name:"saxpy" saxpy in
  Alcotest.(check int) "one kernel" 1 (List.length c.Ompi.c_kernels);
  Alcotest.(check (list string)) "kernel names" [ "main_kernel0" ] (List.map fst c.Ompi.c_kernel_texts);
  Alcotest.(check bool) "host text mentions ort_offload" true
    (contains c.Ompi.c_host_text "ort_offload")

let test_run () =
  let r = Ompi.compile_and_run ~name:"saxpy" saxpy in
  Alcotest.(check string) "output" "30.000000\n" r.Ompi.run_output;
  Alcotest.(check int) "exit" 0 r.Ompi.run_exit;
  Alcotest.(check int) "launches" 1 r.Ompi.run_kernel_launches;
  Alcotest.(check bool) "time advanced" true (r.Ompi.run_time_s > 0.0)

let test_ptx_config () =
  let config = { Ompi.default_config with binary_mode = Gpusim.Nvcc.Ptx } in
  let r = Ompi.compile_and_run ~config ~name:"saxpy" saxpy in
  Alcotest.(check string) "ptx output equal" "30.000000\n" r.Ompi.run_output;
  (* PTX pays the JIT at first launch *)
  let r2 = Ompi.compile_and_run ~name:"saxpy" saxpy in
  Alcotest.(check bool) "ptx slower than cubin on first run" true
    (r.Ompi.run_time_s > r2.Ompi.run_time_s)

let test_emit_files () =
  let c = Ompi.compile ~name:"saxpy" saxpy in
  let dir = Filename.temp_file "ompi" "" in
  Sys.remove dir;
  let files = Ompi.emit_files c ~dir in
  Alcotest.(check int) "two files" 2 (List.length files);
  List.iter (fun f -> Alcotest.(check bool) f true (Sys.file_exists f)) files;
  List.iter Sys.remove files;
  Sys.rmdir dir

let test_compile_errors () =
  let fails src =
    match Ompi.compile ~name:"bad" src with
    | exception Translator.Pipeline.Translate_error _ -> true
    | exception Minic.Parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "syntax error" true (fails "int main(void { return 0; }");
  Alcotest.(check bool) "type error" true (fails "int main(void) { return ghost_var; }");
  Alcotest.(check bool) "validation error" true
    (fails "int main(void) { int x;\n#pragma omp parallel num_teams(4)\n{ x = 1; }\nreturn x; }")

let test_custom_entry () =
  let src =
    {|
int helper(int v)
{
  int out[1];
  #pragma omp target map(to: v) map(tofrom: out[0:1])
  { out[0] = v * 3; }
  return out[0];
}

int main(void) { return 0; }
|}
  in
  let inst = Ompi.load (Ompi.compile ~name:"t" src) in
  (* run main first to make sure both entries work on one instance *)
  let r = Ompi.run inst () in
  Alcotest.(check int) "main exit" 0 r.Ompi.run_exit


(* property: for arbitrary sizes and scalars, the offloaded SAXPY equals
   the host-computed float32 reference *)
let prop_saxpy_correct =
  let parametric_src =
    {|
void saxpy(int n, float alpha, float x[], float y[])
{
  #pragma omp target teams distribute parallel for num_threads(64) \
      map(to: n, alpha, x[0:n]) map(tofrom: y[0:n])
  for (int i = 0; i < n; i++)
    y[i] = alpha * x[i] + y[i];
}
|}
  in
  let ctx = Polybench.Harness.create () in
  let p = Polybench.Harness.prepare_omp ctx ~name:"saxpy_prop" parametric_src in
  QCheck.Test.make ~name:"offloaded saxpy matches float32 reference" ~count:25
    QCheck.(pair (int_range 1 300) (float_range (-4.0) 4.0))
    (fun (n, alpha) ->
      let alpha = Machine.Value.round32 alpha in
      let open Polybench.Harness in
      let x = alloc_f32 ctx n and y = alloc_f32 ctx n in
      fill_f32 ctx x n (fun i -> float_of_int (i mod 13) /. 13.0);
      fill_f32 ctx y n (fun i -> float_of_int (i mod 7) /. 7.0);
      call_omp p "saxpy" [ vint n; vf32 alpha; fptr x; fptr y ];
      let got = read_f32_array ctx y n in
      let want =
        Array.init n (fun i ->
            let open Polybench.Refmath in
            let xi = r32 (float_of_int (i mod 13) /. 13.0) in
            let yi = r32 (float_of_int (i mod 7) /. 7.0) in
            (r32 alpha *% xi) +% yi)
      in
      max_rel_error got want < 1e-6)

let () =
  Alcotest.run "facade"
    [
      ( "ompi",
        [
          Alcotest.test_case "compile shape" `Quick test_compile_shape;
          Alcotest.test_case "compile_and_run" `Quick test_run;
          Alcotest.test_case "PTX config" `Quick test_ptx_config;
          Alcotest.test_case "emit_files" `Quick test_emit_files;
          Alcotest.test_case "error paths" `Quick test_compile_errors;
          Alcotest.test_case "multiple entries" `Quick test_custom_entry;
          QCheck_alcotest.to_alcotest prop_saxpy_correct;
        ] );
    ]
