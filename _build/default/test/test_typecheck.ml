(* Typechecker tests: expression typing, scoping, whole-program checks. *)

open Machine
open Minic

let cty = Alcotest.testable (Fmt.of_to_string Cty.show) Cty.equal

(* type an expression in a context with some declared variables *)
let type_in (decls : (string * Cty.t) list) (src : string) : Cty.t =
  let env = Typecheck.create () in
  Typecheck.push_scope env;
  List.iter (fun (n, ty) -> Typecheck.add_var env n ty) decls;
  Typecheck.type_of_expr env (Parser.parse_expr_string src)

let base = [ ("i", Cty.Int); ("n", Cty.Int); ("f", Cty.Float); ("d", Cty.Double);
             ("p", Cty.Ptr Cty.Float); ("a", Cty.Array (Cty.Float, Some 8));
             ("m", Cty.Array (Cty.Array (Cty.Float, Some 4), Some 4));
             ("u", Cty.Uint); ("l", Cty.Long) ]

let test_literals () =
  Alcotest.check cty "int" Cty.Int (type_in [] "42");
  Alcotest.check cty "float suffix" Cty.Float (type_in [] "1.5f");
  Alcotest.check cty "double" Cty.Double (type_in [] "1.5");
  Alcotest.check cty "string" (Cty.Ptr Cty.Char) (type_in [] "\"hi\"");
  Alcotest.check cty "char is int" Cty.Int (type_in [] "'c'")

let test_arithmetic () =
  Alcotest.check cty "int+int" Cty.Int (type_in base "i + n");
  Alcotest.check cty "int*float" Cty.Float (type_in base "i * f");
  Alcotest.check cty "float+double" Cty.Double (type_in base "f + d");
  Alcotest.check cty "int+uint" Cty.Uint (type_in base "i + u");
  Alcotest.check cty "long+int" Cty.Long (type_in base "l + i");
  Alcotest.check cty "comparison is int" Cty.Int (type_in base "f < d");
  Alcotest.check cty "logical is int" Cty.Int (type_in base "i && n")

let test_pointers () =
  Alcotest.check cty "deref" Cty.Float (type_in base "*p");
  Alcotest.check cty "index ptr" Cty.Float (type_in base "p[3]");
  Alcotest.check cty "index array" Cty.Float (type_in base "a[3]");
  Alcotest.check cty "2d row" (Cty.Array (Cty.Float, Some 4)) (type_in base "m[1]");
  Alcotest.check cty "2d element" Cty.Float (type_in base "m[1][2]");
  Alcotest.check cty "ptr arith" (Cty.Ptr Cty.Float) (type_in base "p + 4");
  Alcotest.check cty "ptr diff" Cty.Long (type_in base "p - p");
  Alcotest.check cty "addrof" (Cty.Ptr Cty.Int) (type_in base "&i");
  Alcotest.check cty "array decay in addrof ctx" (Cty.Ptr (Cty.Array (Cty.Float, Some 8)))
    (type_in base "&a")

let test_assign_cast_sizeof () =
  Alcotest.check cty "assign has lhs type" Cty.Float (type_in base "f = i");
  Alcotest.check cty "compound assign" Cty.Float (type_in base "f += d");
  Alcotest.check cty "cast" (Cty.Ptr Cty.Int) (type_in base "(int *)p");
  Alcotest.check cty "sizeof" Cty.Ulong (type_in base "sizeof(a)");
  Alcotest.check cty "conditional" Cty.Double (type_in base "i ? f : d")

let test_struct_typing () =
  let env = Typecheck.create () in
  ignore (Cty.define_struct env.Typecheck.structs "pt" [ ("x", Cty.Int); ("y", Cty.Float) ]);
  Typecheck.push_scope env;
  Typecheck.add_var env "s" (Cty.Struct "pt");
  Typecheck.add_var env "sp" (Cty.Ptr (Cty.Struct "pt"));
  Alcotest.check cty "member" Cty.Int (Typecheck.type_of_expr env (Parser.parse_expr_string "s.x"));
  Alcotest.check cty "arrow" Cty.Float (Typecheck.type_of_expr env (Parser.parse_expr_string "sp->y"))

let test_errors () =
  let fails decls src =
    match type_in decls src with
    | exception Typecheck.Error _ -> true
    | exception Machine.Cty.Type_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unbound" true (fails [] "nope");
  Alcotest.(check bool) "deref int" true (fails base "*i");
  Alcotest.(check bool) "member of int" true (fails base "i.x");
  Alcotest.(check bool) "unknown call" true (fails base "mystery(1)")

let test_scoping () =
  let env = Typecheck.create () in
  Typecheck.push_scope env;
  Typecheck.add_var env "x" Cty.Int;
  Typecheck.push_scope env;
  Typecheck.add_var env "x" Cty.Float;
  Alcotest.check cty "inner shadows" Cty.Float (Option.get (Typecheck.lookup_var env "x"));
  Typecheck.pop_scope env;
  Alcotest.check cty "outer restored" Cty.Int (Option.get (Typecheck.lookup_var env "x"))

let test_check_program () =
  let ok = Typecheck.check_program (Parser.parse_program
    "int add(int a, int b) { return a + b; }\nint main(void) { int x = add(1, 2); return x; }") in
  Alcotest.(check (list string)) "clean program" [] ok;
  let errs = Typecheck.check_program (Parser.parse_program
    "int main(void) { return bogus + 1; }") in
  Alcotest.(check bool) "reports unbound" true (List.length errs > 0);
  (* for-init declared variables are visible in the condition *)
  let errs2 = Typecheck.check_program (Parser.parse_program
    "int main(void) { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }") in
  Alcotest.(check (list string)) "for-scope" [] errs2

let test_cuda_globals () =
  let src = "void k(float *x) { int i = blockIdx.x * blockDim.x + threadIdx.x; x[i] = i; }" in
  Alcotest.(check bool) "cuda mode accepts builtins" true
    (Typecheck.check_program ~cuda:true (Parser.parse_program src) = []);
  Alcotest.(check bool) "host mode rejects them" true
    (List.length (Typecheck.check_program (Parser.parse_program src)) > 0)

let () =
  Alcotest.run "typecheck"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "arithmetic conversions" `Quick test_arithmetic;
          Alcotest.test_case "pointers and arrays" `Quick test_pointers;
          Alcotest.test_case "assign, cast, sizeof" `Quick test_assign_cast_sizeof;
          Alcotest.test_case "structs" `Quick test_struct_typing;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "program",
        [
          Alcotest.test_case "scoping" `Quick test_scoping;
          Alcotest.test_case "whole-program check" `Quick test_check_program;
          Alcotest.test_case "CUDA implicit globals" `Quick test_cuda_globals;
        ] );
    ]
