(* Lexer tests: token streams, literals, comments, pragma lines. *)

open Minic

let toks src = List.map (fun s -> s.Token.tok) (Lexer.tokenize src)

let tok_list = Alcotest.testable (Fmt.of_to_string (fun ts -> String.concat " " (List.map Token.show ts))) ( = )

let check expected src = Alcotest.check tok_list src (expected @ [ Token.EOF ]) (toks src)

let test_idents_keywords () =
  check [ Token.KW_INT; Token.TIDENT "x"; Token.SEMI ] "int x;";
  check [ Token.KW_FLOAT; Token.TIDENT "_f00"; Token.SEMI ] "float _f00;";
  check [ Token.KW_UNSIGNED; Token.KW_LONG; Token.TIDENT "u"; Token.SEMI ] "unsigned long u;";
  check [ Token.TIDENT "intx" ] "intx" (* not the keyword *)

let test_numbers () =
  check [ Token.TINT 42L ] "42";
  check [ Token.TINT 255L ] "0xFF";
  check [ Token.TINT 10L ] "10L";
  check [ Token.TINT 7L ] "7u";
  check [ Token.TFLOAT (1.5, true) ] "1.5";
  check [ Token.TFLOAT (1.5, false) ] "1.5f";
  check [ Token.TFLOAT (0.25, false) ] "0.25F";
  check [ Token.TFLOAT (2e3, true) ] "2e3";
  check [ Token.TFLOAT (1.5e-2, true) ] "1.5e-2";
  check [ Token.TFLOAT (3.0, false) ] "3f" (* integer with float suffix *)

let test_strings_chars () =
  check [ Token.TSTRING "hi" ] {|"hi"|};
  check [ Token.TSTRING "a\nb" ] {|"a\nb"|};
  check [ Token.TSTRING "q\"q" ] {|"q\"q"|};
  check [ Token.TCHAR 'x' ] "'x'";
  check [ Token.TCHAR '\n' ] {|'\n'|};
  check [ Token.TCHAR '\000' ] {|'\0'|}

let test_operators () =
  check [ Token.TIDENT "a"; Token.SHLEQ; Token.TINT 2L; Token.SEMI ] "a <<= 2;";
  check [ Token.TIDENT "a"; Token.ARROW; Token.TIDENT "b" ] "a->b";
  check [ Token.TIDENT "a"; Token.PLUSPLUS; Token.PLUS; Token.TIDENT "b" ] "a++ + b";
  check [ Token.AMP; Token.AMPEQ; Token.ANDAND ] "& &= &&";
  check [ Token.LT; Token.SHL; Token.LE; Token.SHLEQ ] "< << <= <<="

let test_comments () =
  check [ Token.TINT 1L; Token.TINT 2L ] "1 /* comment */ 2";
  check [ Token.TINT 1L; Token.TINT 2L ] "1 // line\n2";
  check [ Token.TINT 1L; Token.TINT 2L ] "1 /* multi\nline\n*/ 2";
  Alcotest.(check bool) "unterminated comment raises" true
    (match toks "1 /* oops" with exception Lexer.Lex_error _ -> true | _ -> false)

let test_pragma_lines () =
  match toks "#pragma omp parallel for\nint x;" with
  | [ Token.TPRAGMA inner; Token.KW_INT; Token.TIDENT "x"; Token.SEMI; Token.EOF ] ->
    Alcotest.check tok_list "pragma payload"
      [ Token.TIDENT "omp"; Token.TIDENT "parallel"; Token.KW_FOR; Token.EOF ]
      (inner @ [ Token.EOF ])
  | ts -> Alcotest.failf "unexpected tokens: %s" (String.concat ";" (List.map Token.show ts))

let test_pragma_continuation () =
  match toks "#pragma omp target map(to: a) \\\n    map(from: b)\nx;" with
  | Token.TPRAGMA inner :: _ -> Alcotest.(check int) "continuation joins lines" 14 (List.length inner)
  | _ -> Alcotest.fail "expected pragma"

let test_preprocessor_skipped () =
  check [ Token.KW_INT; Token.TIDENT "x"; Token.SEMI ] "#include <stdio.h>\nint x;";
  check [ Token.KW_INT; Token.TIDENT "y"; Token.SEMI ] "#define N 10\nint y;"

let test_locations () =
  let spanned = Lexer.tokenize "int\n  x;" in
  (match spanned with
  | { Token.tok = Token.KW_INT; loc } :: { Token.tok = Token.TIDENT "x"; loc = loc2 } :: _ ->
    Alcotest.(check int) "line 1" 1 loc.Token.line;
    Alcotest.(check int) "line 2" 2 loc2.Token.line;
    Alcotest.(check int) "col 3" 3 loc2.Token.col
  | _ -> Alcotest.fail "unexpected stream");
  Alcotest.(check bool) "bad char raises" true
    (match toks "int @" with exception Lexer.Lex_error _ -> true | _ -> false)

let prop_roundtrip_ints =
  QCheck.Test.make ~name:"integer literals roundtrip" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun i -> toks (string_of_int i) = [ Token.TINT (Int64.of_int i); Token.EOF ])

let () =
  Alcotest.run "lexer"
    [
      ( "tokens",
        [
          Alcotest.test_case "identifiers and keywords" `Quick test_idents_keywords;
          Alcotest.test_case "numeric literals" `Quick test_numbers;
          Alcotest.test_case "strings and chars" `Quick test_strings_chars;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "locations and errors" `Quick test_locations;
          QCheck_alcotest.to_alcotest prop_roundtrip_ints;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "pragma token lists" `Quick test_pragma_lines;
          Alcotest.test_case "backslash continuation" `Quick test_pragma_continuation;
          Alcotest.test_case "other preprocessor lines skipped" `Quick test_preprocessor_skipped;
        ] );
    ]
