(* Unit and property tests for the machine substrate: C types and
   layouts, value semantics, memory regions, addresses, clock. *)

open Machine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------- Cty ------------------------- *)

let env () = Cty.create_layout_env ()

let test_scalar_sizes () =
  let e = env () in
  List.iter
    (fun (ty, size) -> check_int (Cty.show ty) size (Cty.sizeof e ty))
    [
      (Cty.Char, 1); (Cty.Uchar, 1); (Cty.Short, 2); (Cty.Ushort, 2); (Cty.Int, 4);
      (Cty.Uint, 4); (Cty.Long, 8); (Cty.Ulong, 8); (Cty.Float, 4); (Cty.Double, 8);
      (Cty.Ptr Cty.Float, 8); (Cty.Ptr (Cty.Ptr Cty.Int), 8);
    ]

let test_array_sizes () =
  let e = env () in
  check_int "float[10]" 40 (Cty.sizeof e (Cty.Array (Cty.Float, Some 10)));
  check_int "float[4][8]" 128 (Cty.sizeof e (Cty.Array (Cty.Array (Cty.Float, Some 8), Some 4)));
  Alcotest.check_raises "incomplete array" (Cty.Type_error "sizeof of incomplete array") (fun () ->
      ignore (Cty.sizeof e (Cty.Array (Cty.Int, None))))

let test_struct_layout () =
  let e = env () in
  let lay = Cty.define_struct e "s" [ ("c", Cty.Char); ("i", Cty.Int); ("d", Cty.Double); ("c2", Cty.Char) ] in
  check_int "size (padded)" 24 lay.Cty.lay_size;
  check_int "align" 8 lay.Cty.lay_align;
  check_int "offset c" 0 (Cty.find_field e "s" "c").Cty.fld_off;
  check_int "offset i" 4 (Cty.find_field e "s" "i").Cty.fld_off;
  check_int "offset d" 8 (Cty.find_field e "s" "d").Cty.fld_off;
  check_int "offset c2" 16 (Cty.find_field e "s" "c2").Cty.fld_off

let test_struct_nesting () =
  let e = env () in
  ignore (Cty.define_struct e "inner" [ ("x", Cty.Int); ("y", Cty.Int) ]);
  let lay = Cty.define_struct e "outer" [ ("c", Cty.Char); ("in", Cty.Struct "inner") ] in
  check_int "outer size" 12 lay.Cty.lay_size;
  check_int "inner at offset 4" 4 (Cty.find_field e "outer" "in").Cty.fld_off

let test_common_arith () =
  let t = Alcotest.testable (Fmt.of_to_string Cty.show) Cty.equal in
  Alcotest.check t "int+int" Cty.Int (Cty.common_arith Cty.Int Cty.Int);
  Alcotest.check t "char+short promotes" Cty.Int (Cty.common_arith Cty.Char Cty.Short);
  Alcotest.check t "int+float" Cty.Float (Cty.common_arith Cty.Int Cty.Float);
  Alcotest.check t "float+double" Cty.Double (Cty.common_arith Cty.Float Cty.Double);
  Alcotest.check t "int+uint" Cty.Uint (Cty.common_arith Cty.Int Cty.Uint);
  Alcotest.check t "long+int" Cty.Long (Cty.common_arith Cty.Long Cty.Int)

let test_c_syntax () =
  let s ?name ty = Cty.to_c_string ?name ty in
  Alcotest.(check string) "ptr" "float *x" (s ~name:"x" (Cty.Ptr Cty.Float));
  Alcotest.(check string) "array" "int a[10]" (s ~name:"a" (Cty.Array (Cty.Int, Some 10)));
  Alcotest.(check string) "ptr to array" "int (*x)[96]"
    (s ~name:"x" (Cty.Ptr (Cty.Array (Cty.Int, Some 96))));
  Alcotest.(check string) "array of ptr" "int *x[4]"
    (s ~name:"x" (Cty.Array (Cty.Ptr Cty.Int, Some 4)));
  Alcotest.(check string) "2d" "float m[2][3]"
    (s ~name:"m" (Cty.Array (Cty.Array (Cty.Float, Some 3), Some 2)))

let test_decay_pointee () =
  let t = Alcotest.testable (Fmt.of_to_string Cty.show) Cty.equal in
  Alcotest.check t "array decays" (Cty.Ptr Cty.Float) (Cty.decay (Cty.Array (Cty.Float, Some 4)));
  Alcotest.check t "scalar unchanged" Cty.Int (Cty.decay Cty.Int);
  Alcotest.check t "pointee of ptr" Cty.Float (Cty.pointee (Cty.Ptr Cty.Float));
  Alcotest.check t "pointee of array" Cty.Int (Cty.pointee (Cty.Array (Cty.Int, Some 3)))

(* ------------------------- Value ------------------------- *)

let test_normalise_int () =
  let v ty i = Value.as_int (Value.int ~ty i) in
  Alcotest.(check int64) "char wrap" (-128L) (v Cty.Char 128L);
  Alcotest.(check int64) "uchar wrap" 255L (v Cty.Uchar (-1L));
  Alcotest.(check int64) "short wrap" (-32768L) (v Cty.Short 32768L);
  Alcotest.(check int64) "int wrap" Int64.(of_int32 Int32.min_int) (v Cty.Int 0x80000000L);
  Alcotest.(check int64) "uint wrap" 0xFFFFFFFFL (v Cty.Uint (-1L));
  Alcotest.(check int64) "long identity" Int64.max_int (v Cty.Long Int64.max_int)

let test_float32_rounding () =
  let v = Value.flt ~ty:Cty.Float 0.1 in
  let f = Value.as_float v in
  check_bool "rounded to binary32" true (f <> 0.1);
  check_bool "close to 0.1" true (Float.abs (f -. 0.1) < 1e-7);
  let d = Value.flt ~ty:Cty.Double 0.1 in
  check_bool "double keeps precision" true (Value.as_float d = 0.1)

let test_casts () =
  Alcotest.(check int64) "float->int truncates" 3L (Value.as_int (Value.cast Cty.Int (Value.flt 3.9)));
  Alcotest.(check int64) "negative float->int" (-3L)
    (Value.as_int (Value.cast Cty.Int (Value.flt (-3.9))));
  check_bool "int->float" true (Value.as_float (Value.cast Cty.Double (Value.of_int 42)) = 42.0);
  Alcotest.(check int64) "int->char" 1L (Value.as_int (Value.cast Cty.Char (Value.int 257L)))

let test_truthiness () =
  check_bool "zero false" false (Value.is_true (Value.of_int 0));
  check_bool "nonzero true" true (Value.is_true (Value.of_int (-7)));
  check_bool "0.0 false" false (Value.is_true (Value.flt 0.0));
  check_bool "null false" false (Value.is_true (Value.ptr Addr.null))

let prop_normalise_idempotent =
  QCheck.Test.make ~name:"int normalisation is idempotent" ~count:500
    QCheck.(pair (oneofl [ Cty.Char; Cty.Uchar; Cty.Short; Cty.Ushort; Cty.Int; Cty.Uint; Cty.Long ]) int64)
    (fun (ty, i) ->
      let once = Value.normalise_int ty i in
      Value.normalise_int ty once = once)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"address int64 encoding roundtrips" ~count:500
    QCheck.(pair (int_bound 0xFFFFF) (int_bound 3))
    (fun (off, tag) ->
      let space =
        match tag with
        | 0 -> Addr.Host
        | 1 -> Addr.Global
        | 2 -> Addr.Shared (off land 0xFF)
        | _ -> Addr.Local (off land 0xFF)
      in
      let a = { Addr.space; off } in
      Addr.equal (Addr.of_int64 (Addr.to_int64 a)) a)

(* ------------------------- Mem ------------------------- *)

let test_mem_alloc_free () =
  let m = Mem.create ~space:Addr.Global "test" in
  let a = Mem.alloc m 100 in
  let b = Mem.alloc m 50 in
  check_bool "distinct" true (a.Addr.off <> b.Addr.off);
  check_bool "no overlap" true (abs (a.Addr.off - b.Addr.off) >= 50);
  Mem.free m a;
  let c = Mem.alloc m 64 in
  check_int "freed space reused (first fit)" a.Addr.off c.Addr.off

let test_mem_free_coalescing () =
  let m = Mem.create ~space:Addr.Global "test" in
  let a = Mem.alloc m 64 in
  let b = Mem.alloc m 64 in
  let _c = Mem.alloc m 64 in
  Mem.free m a;
  Mem.free m b;
  (* coalesced hole of 128 bytes should satisfy this *)
  let d = Mem.alloc m 128 in
  check_int "coalesced reuse" a.Addr.off d.Addr.off

let test_mem_double_free () =
  let m = Mem.create ~space:Addr.Global "test" in
  let a = Mem.alloc m 16 in
  Mem.free m a;
  check_bool "double free raises" true
    (match Mem.free m a with exception Mem.Bad_access _ -> true | () -> false)

let test_mem_limit () =
  let m = Mem.create ~initial:64 ~limit:1024 ~space:Addr.Global "test" in
  check_bool "over-limit alloc raises" true
    (match Mem.alloc m 4096 with exception Mem.Out_of_memory _ -> true | _ -> false)

let test_mem_scalar_roundtrip () =
  let m = Mem.create ~space:Addr.Host "test" in
  let e = env () in
  let a = Mem.alloc m 64 in
  Mem.store_scalar m e a Cty.Int (Value.of_int (-123456));
  Alcotest.(check int64) "int roundtrip" (-123456L) (Value.as_int (Mem.load_scalar m e a Cty.Int));
  Mem.store_scalar m e (Addr.add a 8) Cty.Float (Value.flt ~ty:Cty.Float 1.5);
  check_bool "float roundtrip" true
    (Value.as_float (Mem.load_scalar m e (Addr.add a 8) Cty.Float) = 1.5);
  Mem.store_scalar m e (Addr.add a 16) Cty.Double (Value.flt 2.25);
  check_bool "double roundtrip" true
    (Value.as_float (Mem.load_scalar m e (Addr.add a 16) Cty.Double) = 2.25);
  let p = { Addr.space = Addr.Global; off = 4242 } in
  Mem.store_scalar m e (Addr.add a 24) (Cty.Ptr Cty.Float) (Value.ptr p);
  check_bool "pointer roundtrip" true
    (Addr.equal p (Value.as_addr (Mem.load_scalar m e (Addr.add a 24) (Cty.Ptr Cty.Float))))

let test_mem_stack () =
  let m = Mem.create ~space:(Addr.Local 0) "stack" in
  let mark = Mem.mark m in
  let a = Mem.push m 32 in
  let b = Mem.push m 32 in
  check_bool "stack grows" true (b.Addr.off > a.Addr.off);
  Mem.release m mark;
  let c = Mem.push m 32 in
  check_int "released space reused" a.Addr.off c.Addr.off

let test_mem_bounds () =
  let m = Mem.create ~initial:64 ~limit:64 ~space:Addr.Host "test" in
  let e = env () in
  check_bool "out-of-bounds load raises" true
    (match Mem.load_scalar m e { Addr.space = Addr.Host; off = 1000 } Cty.Int with
    | exception Mem.Bad_access _ -> true
    | _ -> false)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 1 200))
    (fun sizes ->
      let m = Mem.create ~space:Addr.Global "test" in
      let allocs = List.map (fun s -> (Mem.alloc m s, s)) sizes in
      (* free every other allocation, then allocate again *)
      List.iteri (fun i (a, _) -> if i mod 2 = 0 then Mem.free m a) allocs;
      let live = List.filteri (fun i _ -> i mod 2 = 1) allocs in
      let fresh = List.map (fun s -> (Mem.alloc m s, s)) sizes in
      let regions = List.map (fun (a, s) -> (a.Addr.off, s)) (live @ fresh) in
      List.for_all
        (fun (o1, s1) ->
          List.for_all
            (fun (o2, s2) -> o1 = o2 || o1 + s1 <= o2 || o2 + s2 <= o1)
            regions)
        regions)

(* ------------------------- Simclock ------------------------- *)

let test_clock () =
  let c = Simclock.create () in
  check_bool "starts at 0" true (Simclock.now_ns c = 0.0);
  Simclock.advance_us c 5.0;
  Simclock.advance_ms c 1.0;
  check_bool "accumulates" true (Float.abs (Simclock.now_s c -. 0.001005) < 1e-12);
  check_bool "negative rejected" true
    (match Simclock.advance_ns c (-1.0) with exception Invalid_argument _ -> true | _ -> false);
  let (), d = Simclock.time c (fun () -> Simclock.advance_ms c 2.0) in
  check_bool "time measures" true (Float.abs (d -. 0.002) < 1e-12)

let () =
  Alcotest.run "machine"
    [
      ( "cty",
        [
          Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
          Alcotest.test_case "array sizes" `Quick test_array_sizes;
          Alcotest.test_case "struct layout" `Quick test_struct_layout;
          Alcotest.test_case "struct nesting" `Quick test_struct_nesting;
          Alcotest.test_case "usual arithmetic conversions" `Quick test_common_arith;
          Alcotest.test_case "C declarator syntax" `Quick test_c_syntax;
          Alcotest.test_case "decay and pointee" `Quick test_decay_pointee;
        ] );
      ( "value",
        [
          Alcotest.test_case "integer normalisation" `Quick test_normalise_int;
          Alcotest.test_case "float32 rounding" `Quick test_float32_rounding;
          Alcotest.test_case "casts" `Quick test_casts;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          QCheck_alcotest.to_alcotest prop_normalise_idempotent;
          QCheck_alcotest.to_alcotest prop_addr_roundtrip;
        ] );
      ( "mem",
        [
          Alcotest.test_case "alloc/free first fit" `Quick test_mem_alloc_free;
          Alcotest.test_case "free-list coalescing" `Quick test_mem_free_coalescing;
          Alcotest.test_case "double free" `Quick test_mem_double_free;
          Alcotest.test_case "capacity limit" `Quick test_mem_limit;
          Alcotest.test_case "scalar roundtrips" `Quick test_mem_scalar_roundtrip;
          Alcotest.test_case "stack discipline" `Quick test_mem_stack;
          Alcotest.test_case "bounds checking" `Quick test_mem_bounds;
          QCheck_alcotest.to_alcotest prop_alloc_no_overlap;
        ] );
      ("simclock", [ Alcotest.test_case "advance and time" `Quick test_clock ]);
    ]
