(* Block-sampling validation (DESIGN.md section 5): for uniform kernels,
   the simulated time obtained from a sampled subset of blocks must
   agree with a full simulation. *)

let gemm_time ~sampling n =
  let ctx = Polybench.Harness.create () in
  Polybench.Harness.set_sampling ctx sampling;
  let t, _ = Polybench.Gemm.run ctx Polybench.Harness.Cuda ~n in
  t

let test_sampled_vs_full () =
  let full = gemm_time ~sampling:None 96 in
  let sampled = gemm_time ~sampling:(Some 2) 96 in
  let gap = Float.abs (sampled -. full) /. full in
  Alcotest.(check bool)
    (Printf.sprintf "gemm n=96: sampled %.6f vs full %.6f (gap %.1f%%)" sampled full (gap *. 100.))
    true (gap < 0.10)

let test_sampled_vs_full_ompi () =
  let run sampling =
    let ctx = Polybench.Harness.create () in
    Polybench.Harness.set_sampling ctx sampling;
    fst (Polybench.Atax.run ctx Polybench.Harness.Ompi_cudadev ~n:512)
  in
  let full = run None and sampled = run (Some 1) in
  let gap = Float.abs (sampled -. full) /. full in
  Alcotest.(check bool)
    (Printf.sprintf "atax n=512: sampled %.6f vs full %.6f (gap %.1f%%)" sampled full (gap *. 100.))
    true (gap < 0.10)

let test_block_scale () =
  let c = Gpusim.Counters.create Gpusim.Spec.jetson_nano_2gb in
  c.Gpusim.Counters.blocks_total <- 100;
  c.Gpusim.Counters.blocks_executed <- 4;
  Alcotest.(check bool) "scale" true (Gpusim.Counters.block_scale c = 25.0);
  let c2 = Gpusim.Counters.create Gpusim.Spec.jetson_nano_2gb in
  Alcotest.(check bool) "no execution -> scale 1" true (Gpusim.Counters.block_scale c2 = 1.0)

let test_filter_shape () =
  (* the filter picks ~k interior blocks *)
  match Hostrt.Rt.sampling_filter ~total_blocks:100 (Some 4) with
  | None -> Alcotest.fail "expected a filter"
  | Some f ->
    let picked = List.filter f (List.init 100 Fun.id) in
    Alcotest.(check int) "about k blocks" 4 (List.length picked);
    Alcotest.(check bool) "block 0 avoided (edge bias)" true (not (List.mem 0 picked));
    (* no filter when the grid is small enough *)
    Alcotest.(check bool) "small grids unfiltered" true
      (Hostrt.Rt.sampling_filter ~total_blocks:3 (Some 4) = None)

let () =
  Alcotest.run "sampling"
    [
      ( "agreement",
        [
          Alcotest.test_case "CUDA gemm sampled vs full" `Slow test_sampled_vs_full;
          Alcotest.test_case "OMPi atax sampled vs full" `Slow test_sampled_vs_full_ompi;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "block scale factor" `Quick test_block_scale;
          Alcotest.test_case "filter shape" `Quick test_filter_shape;
        ] );
    ]
