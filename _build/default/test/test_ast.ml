(* AST utility tests: constant folding, traversals, simplification. *)

open Minic

let e = Parser.parse_expr_string

let test_const_eval () =
  let check src expected =
    Alcotest.(check (option int64)) src expected
      (Ast.const_eval_opt (e src))
  in
  check "4 * 8" (Some 32L);
  check "(1 << 10) - 1" (Some 1023L);
  check "-7 / 2" (Some (-3L));
  check "100 % 7" (Some 2L);
  check "1 / 0" None;
  check "n + 1" None;
  check "'a'" (Some 97L);
  check "~0 & 15" (Some 15L);
  check "!3" (Some 0L)

let prop_const_eval_matches_ocaml =
  QCheck.Test.make ~name:"const folding matches OCaml arithmetic" ~count:300
    QCheck.(triple (int_range (-500) 500) (int_range (-500) 500) (int_range 1 40))
    (fun (a, b, c) ->
      let src = Printf.sprintf "(%d + %d) * 3 - %d / %d" a b a c in
      Ast.const_eval_opt (e src) = Some (Int64.of_int (((a + b) * 3) - (a / c))))

let test_simplify () =
  let s src = Minic.Pretty.expr_to_string (Translator.Simplify.expr (e src)) in
  Alcotest.(check string) "fold" "12" (s "3 * 4");
  Alcotest.(check string) "x + 0" "x" (s "x + 0");
  Alcotest.(check string) "0 + x" "x" (s "0 + x");
  Alcotest.(check string) "x * 1" "x" (s "x * 1");
  Alcotest.(check string) "x * 0" "0" (s "x * 0");
  Alcotest.(check string) "x / 1" "x" (s "x / 1");
  Alcotest.(check string) "untouched" "x / 2" (s "x / 2");
  (* negative results are not folded into literals (kept symbolic) *)
  Alcotest.(check string) "nested" "x" (s "(x + 0) * 1")

let test_free_vars () =
  let body src =
    match Parser.parse_program ("void f(void) { " ^ src ^ " }") with
    | [ Ast.Gfun f ] -> f.Ast.f_body
    | _ -> Alcotest.fail "parse"
  in
  Alcotest.(check (list string)) "order of appearance" [ "b"; "a"; "c" ]
    (Translator.Subst.free_vars (body "x_unused(); int x = b + a; c[x] = a;"))
  |> ignore;
  Alcotest.(check (list string)) "declared names excluded" [ "n" ]
    (Translator.Subst.free_vars (body "int i; for (i = 0; i < n; i++) { int t = i; t++; }"))

let test_subst_shadowing () =
  let body src =
    match Parser.parse_program ("void f(void) { " ^ src ^ " }") with
    | [ Ast.Gfun f ] -> f.Ast.f_body
    | _ -> Alcotest.fail "parse"
  in
  let s = Translator.Subst.subst_assoc [ ("x", Ast.ident "REPL") ] (body "y = x; { int x = 1; y = x; } y = x;") in
  let text = Pretty.stmt_to_string s in
  (* outer x replaced, shadowed x untouched *)
  Alcotest.(check bool) "outer replaced" true
    (String.length text > 0
    && (let count needle =
          let n = ref 0 in
          for i = 0 to String.length text - String.length needle do
            if String.sub text i (String.length needle) = needle then incr n
          done;
          !n
        in
        count "REPL" = 2 && count "y = x" = 1))

let test_iter_expr_coverage () =
  let count = ref 0 in
  Ast.iter_expr (fun _ -> incr count) (e "f(a + b, c ? d[2] : *p)");
  (* call, 2 args, binop, 2 idents, cond, 3 branches incl index+deref... *)
  Alcotest.(check bool) "visits all nodes" true (!count >= 10)

let () =
  Alcotest.run "ast"
    [
      ( "const folding",
        [
          Alcotest.test_case "const_eval" `Quick test_const_eval;
          QCheck_alcotest.to_alcotest prop_const_eval_matches_ocaml;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "free variables" `Quick test_free_vars;
          Alcotest.test_case "substitution shadowing" `Quick test_subst_shadowing;
          Alcotest.test_case "iter_expr coverage" `Quick test_iter_expr_coverage;
        ] );
    ]
