test/test_endtoend.mli:
