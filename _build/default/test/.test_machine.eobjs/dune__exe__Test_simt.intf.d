test/test_simt.mli:
