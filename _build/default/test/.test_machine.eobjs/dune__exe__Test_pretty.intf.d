test/test_pretty.mli:
