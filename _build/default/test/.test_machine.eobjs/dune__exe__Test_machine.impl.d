test/test_machine.ml: Addr Alcotest Cty Float Fmt Gen Int32 Int64 List Machine Mem QCheck QCheck_alcotest Simclock Value
