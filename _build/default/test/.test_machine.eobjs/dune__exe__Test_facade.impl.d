test/test_facade.ml: Alcotest Array Filename Gpusim List Machine Minic Ompi Polybench QCheck QCheck_alcotest String Sys Translator
