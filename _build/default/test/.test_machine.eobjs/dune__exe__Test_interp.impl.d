test/test_interp.ml: Addr Alcotest Ast Buffer Cinterp Cty Float Hashtbl List Machine Mem Minic Parser QCheck QCheck_alcotest String Typecheck Value
