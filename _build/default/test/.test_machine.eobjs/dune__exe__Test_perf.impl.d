test/test_perf.ml: Alcotest Buffer Costmodel Counters Filename Float Gpusim Hashtbl List Perf Spec String Sys
