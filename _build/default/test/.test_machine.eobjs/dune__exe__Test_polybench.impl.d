test/test_polybench.ml: Alcotest List Polybench Printf
