test/test_dataenv.mli:
