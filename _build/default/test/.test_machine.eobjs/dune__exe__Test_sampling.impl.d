test/test_sampling.ml: Alcotest Float Fun Gpusim Hostrt List Polybench Printf
