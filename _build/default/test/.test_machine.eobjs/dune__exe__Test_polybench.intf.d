test/test_polybench.mli:
