test/test_devrt.mli:
