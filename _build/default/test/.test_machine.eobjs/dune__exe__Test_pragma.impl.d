test/test_pragma.ml: Alcotest Ast Fmt Lexer List Minic Omp Parser Printf String Token
