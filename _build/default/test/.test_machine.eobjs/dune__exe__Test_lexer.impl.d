test/test_lexer.ml: Alcotest Fmt Int64 Lexer List Minic QCheck QCheck_alcotest String Token
