test/test_ast.ml: Alcotest Ast Int64 Minic Parser Pretty Printf QCheck QCheck_alcotest String Translator
