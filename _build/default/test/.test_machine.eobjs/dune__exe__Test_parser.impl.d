test/test_parser.ml: Alcotest Ast Fmt List Machine Minic Parser Pretty
