test/test_sched.ml: Alcotest Devrt Gen Gpusim Int64 List Minic Printf QCheck QCheck_alcotest Translator
