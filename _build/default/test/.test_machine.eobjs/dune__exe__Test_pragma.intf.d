test/test_pragma.mli:
