test/test_endtoend.ml: Alcotest Gpusim Ompi Printf QCheck QCheck_alcotest
