test/test_dataenv.ml: Addr Alcotest Bytes Driver Gpusim Hostrt Int32 Machine Mem Simclock
