test/test_translator.ml: Alcotest Kernelgen List Loops Minic Omp Opencl Parser Pipeline Pretty Printf Region String Strip Translator
