test/test_typecheck.ml: Alcotest Cty Fmt List Machine Minic Option Parser Typecheck
