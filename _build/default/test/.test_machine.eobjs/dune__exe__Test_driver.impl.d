test/test_driver.ml: Addr Alcotest Bytes Costmodel Cty Devrt Driver Float Gpusim Hashtbl Int32 Machine Mem Minic Nvcc Simclock Simt Value
