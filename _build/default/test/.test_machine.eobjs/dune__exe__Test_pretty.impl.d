test/test_pretty.ml: Alcotest Ast Format List Minic Ompi Parser Pretty
