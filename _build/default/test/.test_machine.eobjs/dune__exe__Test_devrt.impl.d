test/test_devrt.ml: Addr Alcotest Bytes Cty Devrt Driver Gpusim Int32 Machine Mem Minic Nvcc Simclock Simt String Translator Value
