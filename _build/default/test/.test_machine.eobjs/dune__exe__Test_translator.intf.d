test/test_translator.mli:
