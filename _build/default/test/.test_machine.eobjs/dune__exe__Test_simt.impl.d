test/test_simt.ml: Addr Alcotest Bytes Costmodel Cty Devrt Driver Gpusim Int32 List Machine Mem Minic Nvcc Printf Simclock Simt String Value
