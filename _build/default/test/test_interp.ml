(* Interpreter tests: C semantics of the tree-walking engine — values,
   control flow, functions, pointers, structs, printf, float32. *)

open Machine
open Minic

(* Run [fn] of [src] with [args] in a host-only context. *)
let run ?(check = true) (src : string) (fn : string) (args : Value.t list) : Value.t * string =
  let prog = Parser.parse_program src in
  if check then
    (match Typecheck.check_program prog with
    | [] -> ()
    | errs -> Alcotest.failf "type errors: %s" (String.concat "; " errs));
  let host = Mem.create ~space:Addr.Host "host" in
  let structs = Cty.create_layout_env () in
  let funcs = Hashtbl.create 8 in
  let resolve = function
    | Addr.Host -> host
    | _ -> Alcotest.fail "non-host access in interp test"
  in
  let ctx = Cinterp.Interp.create ~structs ~funcs ~resolve ~local:host () in
  Cinterp.Interp.install_common_builtins ctx;
  Cinterp.Interp.load_program ctx prog;
  (* allocate program globals, as the host runtime does *)
  List.iter
    (function
      | Ast.Gvar (d, _) ->
        let addr = Mem.alloc host (Cty.sizeof structs d.Ast.d_ty) in
        Cinterp.Interp.register_global ctx d.Ast.d_name d.Ast.d_ty addr
      | _ -> ())
    prog;
  Cinterp.Interp.push_frame ctx;
  let fd = Hashtbl.find funcs fn in
  let v = Cinterp.Interp.call_fundef ctx fd args in
  (v, Buffer.contents ctx.Cinterp.Interp.output)

let run_int ?check src fn args = Value.to_int (fst (run ?check src fn args))

let run_float src fn args = Value.as_float (fst (run src fn args))

let check_int = Alcotest.(check int)

let test_arith () =
  check_int "add" 7 (run_int "int f(int a, int b) { return a + b; }" "f" [ Value.of_int 3; Value.of_int 4 ]);
  check_int "precedence" 14 (run_int "int f(void) { return 2 + 3 * 4; }" "f" []);
  check_int "division truncates" (-3) (run_int "int f(void) { return -7 / 2; }" "f" []);
  check_int "mod" 1 (run_int "int f(void) { return 7 % 3; }" "f" []);
  check_int "bitops" 6 (run_int "int f(void) { return (5 ^ 3) | (4 & 6); }" "f" []);
  check_int "shifts" 40 (run_int "int f(void) { return (5 << 3) % 41; }" "f" []);
  check_int "int overflow wraps" (-2147483648) (run_int "int f(void) { int x = 2147483647; return x + 1; }" "f" [])

let test_unsigned () =
  check_int "unsigned division" 2147483647
    (run_int "int f(void) { unsigned int u = 0xFFFFFFFE; return u / 2; }" "f" []);
  check_int "unsigned compare" 1
    (run_int "int f(void) { unsigned int u = 0xFFFFFFFF; return u > 10; }" "f" [])

let test_float32 () =
  let v = run_float "float f(float a, float b) { return a + b; }" "f" [ Value.flt ~ty:Cty.Float 0.1; Value.flt ~ty:Cty.Float 0.2 ] in
  Alcotest.(check bool) "f32 addition rounds" true (Float.abs (v -. 0.3) < 1e-6 && v <> 0.3);
  let d = run_float "double f(double a) { return a / 3.0; }" "f" [ Value.flt 1.0 ] in
  Alcotest.(check bool) "double division" true (d = 1.0 /. 3.0)

let test_short_circuit () =
  (* the second operand must not be evaluated (would divide by zero) *)
  check_int "&& short-circuits" 0 (run_int "int f(int z) { return z != 0 && 10 / z > 1; }" "f" [ Value.of_int 0 ]);
  check_int "|| short-circuits" 1 (run_int "int f(int z) { return z == 0 || 10 / z > 1; }" "f" [ Value.of_int 0 ])

let test_control_flow () =
  check_int "if/else" 2 (run_int "int f(int x) { if (x > 0) return 1; else return 2; }" "f" [ Value.of_int (-5) ]);
  check_int "while" 10 (run_int "int f(void) { int i = 0; while (i < 10) i++; return i; }" "f" []);
  check_int "do-while runs once" 1 (run_int "int f(void) { int i = 0; do i++; while (0); return i; }" "f" []);
  check_int "for with break" 5
    (run_int "int f(void) { int i; for (i = 0; i < 100; i++) if (i == 5) break; return i; }" "f" []);
  check_int "continue skips" 25
    (run_int "int f(void) { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } return s; }" "f" []);
  check_int "nested loops" 100
    (run_int "int f(void) { int s = 0; for (int i = 0; i < 10; i++) for (int j = 0; j < 10; j++) s++; return s; }" "f" [])

let test_functions () =
  check_int "recursion (fib)" 55
    (run_int "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }" "fib"
       [ Value.of_int 10 ]);
  check_int "mutual helpers" 43
    (run_int "int dbl(int x) { return 2 * x; }\nint f(int x) { return dbl(x) + dbl(x / 2) + 1; }" "f"
       [ Value.of_int 14 ]);
  Alcotest.(check bool) "stack overflow detected" true
    (match run ~check:true "int f(int n) { return f(n + 1); }" "f" [ Value.of_int 0 ] with
    | exception Cinterp.Interp.Runtime_error _ -> true
    | _ -> false)

let test_pointers_arrays () =
  check_int "array sum" 45
    (run_int "int f(void) { int a[10]; int i; for (i = 0; i < 10; i++) a[i] = i; int s = 0; for (i = 0; i < 10; i++) s += a[i]; return s; }" "f" []);
  check_int "pointer write-through" 7
    (run_int "void set(int *p, int v) { *p = v; }\nint f(void) { int x = 0; set(&x, 7); return x; }" "f" []);
  check_int "pointer arithmetic" 30
    (run_int "int f(void) { int a[5] = { 10, 20, 30, 40, 50 }; int *p = a; p++; return *(p + 1); }" "f" []);
  check_int "2d array" 12
    (run_int "int f(void) { int m[3][4]; int i; int j; for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) m[i][j] = i * 4 + j + 1; return m[2][3]; }" "f" []);
  check_int "array decay to function" 6
    (run_int "int sum3(int *a) { return a[0] + a[1] + a[2]; }\nint f(void) { int x[3] = { 1, 2, 3 }; return sum3(x); }" "f" [])

let test_structs () =
  check_int "member access" 30
    (run_int "struct pt { int x; int y; };\nint f(void) { struct pt p; p.x = 10; p.y = 20; return p.x + p.y; }" "f" []);
  check_int "arrow through pointer" 99
    (run_int "struct pt { int x; int y; };\nvoid init(struct pt *p) { p->x = 99; }\nint f(void) { struct pt p; init(&p); return p.x; }" "f" []);
  check_int "nested struct" 5
    (run_int "struct in { int v; };\nstruct out { struct in a; struct in b; };\nint f(void) { struct out o; o.a.v = 2; o.b.v = 3; return o.a.v + o.b.v; }" "f" [])

let test_incdec () =
  check_int "pre vs post" 21
    (run_int "int f(void) { int i = 10; int a = i++; int b = ++i; return a * 0 + i + b - 3; }" "f" []
    |> fun v -> v);
  check_int "post returns old" 10
    (run_int "int f(void) { int i = 10; int old = i++; return old; }" "f" []);
  check_int "pointer increment" 2
    (run_int "int f(void) { int a[3] = { 1, 2, 3 }; int *p = a; p++; return *p; }" "f" [])

let test_sizeof_cast () =
  check_int "sizeof int" 4 (run_int "int f(void) { return sizeof(int); }" "f" []);
  check_int "sizeof array" 40 (run_int "int f(void) { int a[10]; return sizeof(a); }" "f" []);
  check_int "sizeof expr deref" 4 (run_int "int f(int *p) { return sizeof(*p); }" "f" [ Value.ptr Addr.null ]);
  check_int "float to int cast" 3 (run_int "int f(void) { float x = 3.7f; return (int)x; }" "f" []);
  check_int "int to char truncation" 1 (run_int "int f(void) { return (char)257; }" "f" [])

let test_printf () =
  let _, out =
    run "int f(void) { printf(\"i=%d f=%.2f s=%s c=%c\\n\", 42, 3.14159, \"ok\", 'x'); return 0; }" "f" []
  in
  Alcotest.(check string) "formatting" "i=42 f=3.14 s=ok c=x\n" out;
  let _, out2 = run "int f(void) { printf(\"%5d|%-3d|\", 7, 7); return 0; }" "f" [] in
  Alcotest.(check string) "width and flags" "    7|7  |" out2

let test_runtime_errors () =
  let raises src =
    match run ~check:false src "f" [] with exception Cinterp.Interp.Runtime_error _ -> true | _ -> false
  in
  Alcotest.(check bool) "div by zero" true (raises "int f(void) { int z = 0; return 1 / z; }");
  Alcotest.(check bool) "mod by zero" true (raises "int f(void) { int z = 0; return 1 % z; }");
  Alcotest.(check bool) "unknown function" true (raises "int f(void) { return ghost(); }");
  Alcotest.(check bool) "unbound variable" true (raises "int f(void) { return phantom; }")

let test_globals_and_strings () =
  (* string interning survives frame push/pop cycles *)
  let src = "int f(void) { printf(\"tick \"); printf(\"tick \"); return 0; }" in
  let _, out = run src "f" [] in
  Alcotest.(check string) "repeated interned strings" "tick tick " out

let test_math_builtins () =
  Alcotest.(check bool) "sqrt" true (run_float "double f(double x) { return sqrt(x); }" "f" [ Value.flt 16.0 ] = 4.0);
  Alcotest.(check bool) "sqrtf rounds to f32" true
    (let v = run_float "float f(float x) { return sqrtf(x); }" "f" [ Value.flt ~ty:Cty.Float 2.0 ] in
     Float.abs (v -. sqrt 2.0) < 1e-6);
  Alcotest.(check bool) "fabs" true (run_float "double f(void) { return fabs(-2.5); }" "f" [] = 2.5);
  check_int "abs" 9 (run_int "int f(void) { return abs(-9); }" "f" [])

let prop_int_expr_eval =
  (* compare interpreted arithmetic against OCaml semantics *)
  QCheck.Test.make ~name:"interpreted int arithmetic matches reference" ~count:200
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000) (int_range 1 100))
    (fun (a, b, c) ->
      let src = "int f(int a, int b, int c) { return (a + b) * 2 - a / c + b % c; }" in
      let got = run_int src "f" [ Value.of_int a; Value.of_int b; Value.of_int c ] in
      (* C semantics: division truncates toward zero, as OCaml's / does *)
      got = ((a + b) * 2) - (a / c) + (b mod c))


let test_comma_ternary () =
  check_int "comma in for-update" 10
    (run_int "int f(void) { int s = 0; int j = 0; for (int i = 0; i < 5; i++, j++) s = i + j; return s - (-2); }" "f" []);
  check_int "nested ternary" 2
    (run_int "int f(int x) { return x < 0 ? -1 : x == 0 ? 0 : x < 10 ? 2 : 3; }" "f" [ Value.of_int 5 ]);
  check_int "comma value is rhs" 7
    (run_int "int f(void) { int a; int b; a = (b = 3, b + 4); return a; }" "f" [])

let test_char_arith () =
  check_int "char arithmetic" 3 (run_int "int f(void) { char c = 'd'; return c - 'a'; }" "f" []);
  check_int "char wraps" (-126) (run_int "int f(void) { char c = 127; c = c + 3; return c; }" "f" []);
  check_int "uchar stays positive" 130 (run_int "int f(void) { unsigned char c = 127; c = c + 3; return c; }" "f" [])

let test_shadowing () =
  check_int "block shadowing" 12
    (run_int "int f(void) { int x = 10; { int x = 1; x = x + 1; } return x + 2; }" "f" []);
  check_int "loop variable scope" 5
    (run_int "int f(void) { int i = 5; for (int i = 0; i < 3; i++) { } return i; }" "f" [])

let test_while_side_effects () =
  check_int "assignment in condition" 4
    (run_int "int f(void) { int n = 16; int c = 0; while ((n = n / 2) > 0) c++; return c; }" "f" []);
  check_int "post-increment in index" 3
    (run_int "int f(void) { int a[4] = { 0, 1, 2, 3 }; int i = 0; int s = 0; while (i < 3) s = a[i++] + 1; return s; }" "f" [])

let test_global_variables () =
  check_int "globals persist across calls" 3
    (run_int "int counter;\nvoid bump(void) { counter = counter + 1; }\nint f(void) { bump(); bump(); bump(); return counter; }" "f" [])

let () =
  Alcotest.run "interp"
    [
      ( "expressions",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_arith;
          Alcotest.test_case "unsigned semantics" `Quick test_unsigned;
          Alcotest.test_case "float32 vs double" `Quick test_float32;
          Alcotest.test_case "short-circuit evaluation" `Quick test_short_circuit;
          Alcotest.test_case "increment/decrement" `Quick test_incdec;
          Alcotest.test_case "sizeof and casts" `Quick test_sizeof_cast;
          Alcotest.test_case "comma and ternary" `Quick test_comma_ternary;
          Alcotest.test_case "char arithmetic" `Quick test_char_arith;
          QCheck_alcotest.to_alcotest prop_int_expr_eval;
        ] );
      ( "statements",
        [
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions and recursion" `Quick test_functions;
          Alcotest.test_case "shadowing" `Quick test_shadowing;
          Alcotest.test_case "condition side effects" `Quick test_while_side_effects;
          Alcotest.test_case "global variables" `Quick test_global_variables;
        ] );
      ( "memory",
        [
          Alcotest.test_case "pointers and arrays" `Quick test_pointers_arrays;
          Alcotest.test_case "structs" `Quick test_structs;
          Alcotest.test_case "interned strings" `Quick test_globals_and_strings;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "printf" `Quick test_printf;
          Alcotest.test_case "math builtins" `Quick test_math_builtins;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
        ] );
    ]
