(* Driver API tests: memory management, transfers, module loading with
   PTX/CUBIN cost behaviour, lazy initialisation. *)

open Machine
open Gpusim

let saxpy_kernel =
  "void k(int n, float *x) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) x[i] = x[i] * 2.0f; }"

let artifact ?(mode = Nvcc.Cubin) ?(name = "k") src = Nvcc.compile ~mode ~name (Minic.Parser.parse_program src)

let test_lazy_init () =
  let clock = Simclock.create () in
  let d = Driver.create clock in
  Alcotest.(check bool) "no cost until first use" true (Simclock.now_s clock = 0.0);
  ignore (Driver.mem_alloc d 64);
  Alcotest.(check bool) "first use pays initialisation" true (Simclock.now_s clock > 0.1);
  let t = Simclock.now_s clock in
  ignore (Driver.mem_alloc d 64);
  Alcotest.(check bool) "initialisation paid once" true (Simclock.now_s clock -. t < 0.001)

let test_alloc_free () =
  let d = Driver.create (Simclock.create ()) in
  let a = Driver.mem_alloc d 1024 in
  Alcotest.(check bool) "global space" true (a.Addr.space = Addr.Global);
  Driver.mem_free d a;
  Alcotest.(check bool) "zero-size alloc rejected" true
    (match Driver.mem_alloc d 0 with exception Driver.Cuda_error _ -> true | _ -> false)

let test_memcpy_roundtrip () =
  let d = Driver.create (Simclock.create ()) in
  let host = Mem.create ~space:Addr.Host "host" in
  let src = Mem.alloc host 64 and dst = Mem.alloc host 64 in
  for i = 0 to 15 do
    Bytes.set_int32_le host.Mem.data (src.Addr.off + (4 * i)) (Int32.of_int (i * i))
  done;
  let dev = Driver.mem_alloc d 64 in
  Driver.memcpy_h2d d ~host ~src ~dst:dev ~len:64;
  Driver.memcpy_d2h d ~host ~src:dev ~dst ~len:64;
  for i = 0 to 15 do
    Alcotest.(check int32) "roundtrip" (Int32.of_int (i * i))
      (Bytes.get_int32_le host.Mem.data (dst.Addr.off + (4 * i)))
  done

let test_memcpy_direction_checks () =
  let d = Driver.create (Simclock.create ()) in
  let host = Mem.create ~space:Addr.Host "host" in
  let h = Mem.alloc host 16 in
  Alcotest.(check bool) "h2d rejects host destination" true
    (match Driver.memcpy_h2d d ~host ~src:h ~dst:h ~len:16 with
    | exception Driver.Cuda_error _ -> true
    | _ -> false)

let test_transfer_time_scales () =
  let clock = Simclock.create () in
  let d = Driver.create clock in
  let host = Mem.create ~space:Addr.Host "host" in
  let small = Mem.alloc host 1024 and big = Mem.alloc host (1024 * 1024) in
  let dsmall = Driver.mem_alloc d 1024 and dbig = Driver.mem_alloc d (1024 * 1024) in
  let t0 = Simclock.now_s clock in
  Driver.memcpy_h2d d ~host ~src:small ~dst:dsmall ~len:1024;
  let t_small = Simclock.now_s clock -. t0 in
  let t1 = Simclock.now_s clock in
  Driver.memcpy_h2d d ~host ~src:big ~dst:dbig ~len:(1024 * 1024) ;
  let t_big = Simclock.now_s clock -. t1 in
  Alcotest.(check bool) "1MB slower than 1KB" true (t_big > t_small);
  Alcotest.(check bool) "latency floor on small copies" true (t_small > 1e-6)

let test_module_loading_modes () =
  (* CUBIN loads cheaply; PTX pays JIT once, then hits the disk cache *)
  let load mode jit_seed =
    let clock = Simclock.create () in
    let d = Driver.create clock in
    Driver.ensure_initialized d;
    (match jit_seed with
    | Some cache -> Hashtbl.iter (fun k v -> Hashtbl.replace d.Driver.jit_cache k v) cache
    | None -> ());
    let t0 = Simclock.now_s clock in
    ignore (Driver.load_module d (artifact ~mode saxpy_kernel));
    (Simclock.now_s clock -. t0, Hashtbl.copy d.Driver.jit_cache)
  in
  let t_cubin, _ = load Nvcc.Cubin None in
  let t_ptx_cold, cache = load Nvcc.Ptx None in
  let t_ptx_warm, _ = load Nvcc.Ptx (Some cache) in
  Alcotest.(check bool) "JIT cold is the slowest" true (t_ptx_cold > t_cubin);
  Alcotest.(check bool) "disk cache removes the JIT cost" true (t_ptx_warm < t_ptx_cold /. 5.0);
  Alcotest.(check bool) "ptx binaries are lighter than cubins" true
    ((artifact ~mode:Nvcc.Ptx saxpy_kernel).Nvcc.art_size_bytes
    < (artifact ~mode:Nvcc.Cubin saxpy_kernel).Nvcc.art_size_bytes)

let test_module_caching () =
  let clock = Simclock.create () in
  let d = Driver.create clock in
  Driver.ensure_initialized d;
  let a = artifact saxpy_kernel in
  ignore (Driver.load_module d a);
  let t = Simclock.now_s clock in
  ignore (Driver.load_module d a);
  Alcotest.(check bool) "second load is nearly free" true (Simclock.now_s clock -. t < 1e-4)

let test_get_function () =
  let d = Driver.create (Simclock.create ()) in
  let m = Driver.load_module d (artifact saxpy_kernel) in
  ignore (Driver.get_function m "k");
  Alcotest.(check bool) "missing kernel" true
    (match Driver.get_function m "nope" with exception Driver.Cuda_error _ -> true | _ -> false)

let test_launch_accounting () =
  let clock = Simclock.create () in
  let d = Driver.create clock in
  let buf = Driver.mem_alloc d (4 * 256) in
  let m = Driver.load_module d (artifact saxpy_kernel) in
  let t0 = Simclock.now_s clock in
  let stats =
    Driver.launch_kernel d ~modul:m ~entry:"k" ~grid:(Simt.dim3 8) ~block:(Simt.dim3 32)
      ~args:[ Value.of_int 256; Value.ptr ~ty:Cty.Float buf ]
      ~install_builtins:Devrt.Api.install ()
  in
  Alcotest.(check bool) "clock advanced" true (Simclock.now_s clock > t0);
  Alcotest.(check int) "all blocks simulated" 8 stats.Driver.st_blocks_simulated;
  Alcotest.(check int) "launch recorded" 1 d.Driver.kernels_launched;
  Alcotest.(check bool) "breakdown has issue cycles" true
    (stats.Driver.st_breakdown.Costmodel.bd_issue_cycles > 0.0)

let test_occupancy_penalty () =
  let run penalty =
    let d = Driver.create (Simclock.create ()) in
    let buf = Driver.mem_alloc d (4 * 256) in
    let m = Driver.load_module d (artifact saxpy_kernel) in
    let stats =
      Driver.launch_kernel d ~modul:m ~entry:"k" ~grid:(Simt.dim3 8) ~block:(Simt.dim3 32)
        ~args:[ Value.of_int 256; Value.ptr ~ty:Cty.Float buf ]
        ~install_builtins:Devrt.Api.install ~occupancy_penalty:penalty ()
    in
    stats.Driver.st_breakdown.Costmodel.bd_time_ns
  in
  let base = run 1.0 and penalised = run 1.18 in
  Alcotest.(check bool) "18% penalty applied" true
    (Float.abs ((penalised /. base) -. 1.18) < 0.01)

let () =
  Alcotest.run "driver"
    [
      ( "memory",
        [
          Alcotest.test_case "lazy initialisation" `Quick test_lazy_init;
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "memcpy roundtrip" `Quick test_memcpy_roundtrip;
          Alcotest.test_case "direction checks" `Quick test_memcpy_direction_checks;
          Alcotest.test_case "transfer time model" `Quick test_transfer_time_scales;
        ] );
      ( "modules",
        [
          Alcotest.test_case "ptx vs cubin loading" `Quick test_module_loading_modes;
          Alcotest.test_case "module caching" `Quick test_module_caching;
          Alcotest.test_case "get_function" `Quick test_get_function;
        ] );
      ( "launch",
        [
          Alcotest.test_case "launch accounting" `Quick test_launch_accounting;
          Alcotest.test_case "occupancy penalty hook" `Quick test_occupancy_penalty;
        ] );
    ]
