(* Data-environment tests: OpenMP map semantics with refcounts (the
   machinery behind target data / enter / exit / update). *)

open Machine
open Gpusim

let make () =
  let clock = Simclock.create () in
  let host = Mem.create ~space:Addr.Host "host" in
  let driver = Driver.create clock in
  Driver.ensure_initialized driver;
  let env = Hostrt.Dataenv.create ~host ~driver in
  (env, host, driver, clock)

let set_f32 (m : Mem.t) (a : Addr.t) i v =
  Bytes.set_int32_le m.Mem.data (a.Addr.off + (4 * i)) (Int32.bits_of_float v)

let get_f32 (m : Mem.t) (a : Addr.t) i =
  Int32.float_of_bits (Bytes.get_int32_le m.Mem.data (a.Addr.off + (4 * i)))

let test_map_to_copies () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 3 42.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.To in
  Alcotest.(check bool) "device copy initialised" true (get_f32 driver.Driver.global d 3 = 42.0)

let test_alloc_does_not_copy () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 0 7.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Alloc in
  Alcotest.(check bool) "device buffer zeroed, not copied" true (get_f32 driver.Driver.global d 0 = 0.0)

let test_tofrom_roundtrip () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 1 1.5;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.Tofrom in
  (* device-side mutation *)
  set_f32 driver.Driver.global d 1 9.75;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check bool) "copied back on final unmap" true (get_f32 host h 1 = 9.75);
  Alcotest.(check int) "entry removed" 0 (Hostrt.Dataenv.active_mappings env)

let test_present_reuses () =
  let env, host, _, clock = make () in
  let h = Mem.alloc host 1024 in
  let d1 = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.To in
  let t = Simclock.now_s clock in
  let d2 = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.Tofrom in
  Alcotest.(check bool) "same device address" true (Addr.equal d1 d2);
  Alcotest.(check bool) "no second transfer" true (Simclock.now_s clock -. t < 1e-6);
  (* inner unmap: still present *)
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.Tofrom;
  Alcotest.(check int) "refcount keeps mapping" 1 (Hostrt.Dataenv.active_mappings env);
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To;
  Alcotest.(check int) "released at zero" 0 (Hostrt.Dataenv.active_mappings env)

let test_containment_lookup () =
  let env, host, _, _ = make () in
  let h = Mem.alloc host 1024 in
  let d = Hostrt.Dataenv.map env h ~bytes:1024 Hostrt.Dataenv.Alloc in
  (* interior address translates with the right offset *)
  let inner = Addr.add h 100 in
  (match Hostrt.Dataenv.lookup env inner with
  | Some di -> Alcotest.(check int) "offset preserved" (d.Addr.off + 100) di.Addr.off
  | None -> Alcotest.fail "interior address should be present");
  Alcotest.(check bool) "outside not present" true
    (Hostrt.Dataenv.lookup env (Addr.add h 5000) = None)

let test_update_to_from () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 0 1.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.To in
  set_f32 host h 0 2.0;
  Hostrt.Dataenv.update_to env h ~bytes:64;
  Alcotest.(check bool) "update to pushes" true (get_f32 driver.Driver.global d 0 = 2.0);
  set_f32 driver.Driver.global d 0 3.0;
  Hostrt.Dataenv.update_from env h ~bytes:64;
  Alcotest.(check bool) "update from pulls" true (get_f32 host h 0 = 3.0)

let test_errors () =
  let env, host, _, _ = make () in
  let h = Mem.alloc host 64 in
  let fails f = match f () with exception Hostrt.Dataenv.Map_error _ -> true | _ -> false in
  Alcotest.(check bool) "unmap of unmapped" true
    (fails (fun () -> Hostrt.Dataenv.unmap env h Hostrt.Dataenv.To));
  Alcotest.(check bool) "update of unmapped" true
    (fails (fun () -> Hostrt.Dataenv.update_to env h ~bytes:64));
  Alcotest.(check bool) "lookup_exn of unmapped" true
    (match Hostrt.Dataenv.lookup_exn env h with
    | exception Hostrt.Dataenv.Map_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "zero-byte map" true
    (fails (fun () -> Hostrt.Dataenv.map env h ~bytes:0 Hostrt.Dataenv.To))

let test_from_copies_back_only () =
  let env, host, driver, _ = make () in
  let h = Mem.alloc host 64 in
  set_f32 host h 2 5.0;
  let d = Hostrt.Dataenv.map env h ~bytes:64 Hostrt.Dataenv.From in
  Alcotest.(check bool) "from does not initialise device" true (get_f32 driver.Driver.global d 2 = 0.0);
  set_f32 driver.Driver.global d 2 8.0;
  Hostrt.Dataenv.unmap env h Hostrt.Dataenv.From;
  Alcotest.(check bool) "from copies back at release" true (get_f32 host h 2 = 8.0)

let test_geometry () =
  let grid, block = Hostrt.Rt.geometry ~num_teams:100 ~num_threads:256 in
  Alcotest.(check int) "grid 1d" 100 grid.Gpusim.Simt.x;
  Alcotest.(check int) "block folded to 32xN" 32 block.Gpusim.Simt.x;
  Alcotest.(check int) "block y" 8 block.Gpusim.Simt.y;
  let grid2, _ = Hostrt.Rt.geometry ~num_teams:100000 ~num_threads:128 in
  Alcotest.(check bool) "grid folded into 2D over 65535" true (grid2.Gpusim.Simt.y > 1);
  Alcotest.(check bool) "total preserved or padded" true
    (grid2.Gpusim.Simt.x * grid2.Gpusim.Simt.y >= 100000)

let () =
  Alcotest.run "dataenv"
    [
      ( "mapping",
        [
          Alcotest.test_case "map(to:) copies in" `Quick test_map_to_copies;
          Alcotest.test_case "map(alloc:) does not copy" `Quick test_alloc_does_not_copy;
          Alcotest.test_case "map(tofrom:) roundtrip" `Quick test_tofrom_roundtrip;
          Alcotest.test_case "map(from:) copies back only" `Quick test_from_copies_back_only;
        ] );
      ( "present table",
        [
          Alcotest.test_case "present ranges are reused" `Quick test_present_reuses;
          Alcotest.test_case "interior-address lookup" `Quick test_containment_lookup;
          Alcotest.test_case "target update to/from" `Quick test_update_to_from;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("geometry", [ Alcotest.test_case "teams/threads to grid/block" `Quick test_geometry ]);
    ]
