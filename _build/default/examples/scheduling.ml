(* Loop schedules on the device (paper §4.2.2): static, dynamic and
   guided worksharing on a triangular (imbalanced) loop, inside a
   standalone parallel region served by the master/worker scheme.

     dune exec examples/scheduling.exe *)

let source sched =
  Printf.sprintf
    {|
int main(void)
{
  float acc[96];
  int n = 512;
  #pragma omp target map(to: n) map(tofrom: acc[0:96])
  {
    #pragma omp parallel num_threads(96)
    {
      float local = 0.0f;
      #pragma omp for schedule(%s)
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++)
          local += 1.0f;
      }
      acc[omp_get_thread_num()] = local;
    }
  }
  float total = 0.0f;
  int t;
  for (t = 0; t < 96; t++) total += acc[t];
  printf("schedule(%s): total iterations executed = %%f (expect %%d)\n", total, n * (n - 1) / 2);
  return 0;
}
|}
    sched sched

let () =
  print_endline "device worksharing schedules on a triangular loop (96 worker threads):";
  List.iter
    (fun sched ->
      let src = source sched in
      let result = Ompi.compile_and_run ~name:("sched_" ^ String.map (function ',' | ' ' -> '_' | c -> c) sched) src in
      print_string result.Ompi.run_output;
      Printf.printf "  -> %.6f simulated s\n" result.Ompi.run_time_s)
    [ "static"; "dynamic, 8"; "guided, 8" ]
