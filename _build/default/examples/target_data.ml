(* Device data environments (paper §2): the same Jacobi-style update is
   launched many times; a [target data] region keeps the arrays resident
   on the device, so only the first map and the final unmap move data.

     dune exec examples/target_data.exe

   The example runs the naive version (maps per launch) and the
   target-data version and compares the simulated transfer volumes. *)

let source_naive =
  {|
void step(int n, float in[], float out[])
{
  #pragma omp target teams distribute parallel for num_teams(32) num_threads(128) \
      map(to: n, in[0:n]) map(tofrom: out[0:n])
  for (int i = 1; i < n - 1; i++)
    out[i] = 0.5f * in[i] + 0.25f * (in[i - 1] + in[i + 1]);
}

int main(void)
{
  float a[4096];
  float b[4096];
  int i;
  for (i = 0; i < 4096; i++) a[i] = i % 17;
  for (i = 0; i < 20; i++) {
    step(4096, a, b);
    step(4096, b, a);
  }
  printf("naive: a[2048] = %f\n", a[2048]);
  return 0;
}
|}

let source_data =
  {|
void step(int n, float in[], float out[])
{
  #pragma omp target teams distribute parallel for num_teams(32) num_threads(128) \
      map(to: n, in[0:n]) map(tofrom: out[0:n])
  for (int i = 1; i < n - 1; i++)
    out[i] = 0.5f * in[i] + 0.25f * (in[i - 1] + in[i + 1]);
}

int main(void)
{
  float a[4096];
  float b[4096];
  int i;
  for (i = 0; i < 4096; i++) a[i] = i % 17;
  /* keep both arrays resident for the whole iteration */
  #pragma omp target data map(tofrom: a[0:4096]) map(alloc: b[0:4096])
  {
    for (i = 0; i < 20; i++) {
      step(4096, a, b);
      step(4096, b, a);
    }
  }
  printf("target data: a[2048] = %f\n", a[2048]);
  return 0;
}
|}

let run name source =
  let result = Ompi.compile_and_run ~name source in
  print_string result.Ompi.run_output;
  Printf.printf "  %-12s %.6f simulated s, %d launches\n" name result.Ompi.run_time_s
    result.Ompi.run_kernel_launches;
  result.Ompi.run_time_s

let () =
  print_endline "=== 40 stencil launches: per-launch maps vs one target data region ===";
  let t_naive = run "naive" source_naive in
  let t_data = run "target-data" source_data in
  Printf.printf
    "\ntarget data saves %.1f ms of simulated time (transfer elimination;\n the one-time 180 ms device initialisation dominates both totals)\n"
    ((t_naive -. t_data) *. 1000.0)
