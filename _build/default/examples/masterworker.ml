(* The master/worker transformation (paper §3.2, Fig. 3): a target
   region whose body mixes sequential code, a standalone parallel region
   with a num_threads clause, and device-side printf.

     dune exec examples/masterworker.exe

   The generated kernel shows the full scheme: master-warp masking, the
   shared-variable struct staged through the shared-memory stack, and
   the cudadev_register_parallel / cudadev_workerfunc protocol. *)

let source =
  {|
int main(void)
{
  int x[96];
  #pragma omp target map(tofrom: x[0:96])
  {
    int i = 2;
    #pragma omp parallel num_threads(96)
    {
      x[omp_get_thread_num()] = i + 1;
    }
    printf(" x[0] = %d\n", x[0]);
    printf("x[95] = %d\n", x[95]);
  }
  printf("host:  x[42] = %d\n", x[42]);
  return 0;
}
|}

let () =
  let compiled = Ompi.compile ~name:"masterworker" source in
  print_endline "=== generated kernel (cf. paper Fig. 3b) ===";
  List.iter (fun (_, text) -> print_string text) compiled.Ompi.c_kernel_texts;
  print_endline "\n=== execution (device printf runs on the master thread) ===";
  let result = Ompi.run (Ompi.load compiled) () in
  print_string result.Ompi.run_output;
  Printf.printf "[%d kernel launch(es), %.6f simulated s]\n" result.Ompi.run_kernel_launches
    result.Ompi.run_time_s
