(* Reductions on the device: a dot product under the combined construct
   (per-thread accumulators + one atomic combine) and a max reduction,
   validated against host computations.

     dune exec examples/reduction.exe *)

let source =
  {|
float dot(int n, int teams, float a[], float b[])
{
  float result = 0.0f;
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(256) \
      reduction(+: result) map(to: n, a[0:n], b[0:n]) map(tofrom: result)
  for (int i = 0; i < n; i++)
    result += a[i] * b[i];
  return result;
}

float maxval(int n, int teams, float a[])
{
  float m = -1.0e38f;
  #pragma omp target teams distribute parallel for num_teams(teams) num_threads(256) \
      reduction(max: m) map(to: n, a[0:n]) map(tofrom: m)
  for (int i = 0; i < n; i++)
    if (a[i] > m) m = a[i];
  return m;
}

int main(void)
{
  float a[4096];
  float b[4096];
  int i;
  for (i = 0; i < 4096; i++) {
    a[i] = (i % 100) * 0.01f;
    b[i] = ((i + 37) % 50) * 0.02f;
  }
  printf("dot(a,b) = %f\n", dot(4096, 16, a, b));
  printf("max(a)   = %f\n", maxval(4096, 16, a));
  /* host check */
  float hd = 0.0f;
  float hm = -1.0e38f;
  for (i = 0; i < 4096; i++) {
    hd += a[i] * b[i];
    if (a[i] > hm) hm = a[i];
  }
  printf("host dot = %f, host max = %f\n", hd, hm);
  return 0;
}
|}

let () =
  print_endline "=== device reductions (per-thread accumulators + atomic combine) ===";
  let compiled = Ompi.compile ~name:"reduction" source in
  (* show the generated reduction machinery of the dot kernel *)
  (match compiled.Ompi.c_kernel_texts with
  | (name, text) :: _ ->
    Printf.printf "--- kernel %s (note _red_result and cudadev_reduce_fadd) ---\n%s\n" name text
  | [] -> ());
  let r = Ompi.run (Ompi.load compiled) () in
  print_string r.Ompi.run_output;
  Printf.printf "[%d launches, %.6f simulated s]\n" r.Ompi.run_kernel_launches r.Ompi.run_time_s
