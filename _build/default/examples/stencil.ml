(* 3dconv mini-app: runs the paper's stencil benchmark (Fig. 4a) at one
   size in both variants — hand-written CUDA and OMPi-compiled OpenMP —
   validates both against the sequential reference, and prints the
   timing comparison.

     dune exec examples/stencil.exe *)

let () =
  let n = 16 in
  Printf.printf "3D convolution, %dx%dx%d, both implementations validated:\n" n n n;
  let want = Polybench.Conv3d.reference ~n in
  List.iter
    (fun variant ->
      let ctx = Polybench.Harness.create () in
      let time, got = Polybench.Conv3d.run ctx variant ~n in
      let err = Polybench.Harness.max_rel_error got want in
      Printf.printf "  %-14s %.6f simulated s   max rel. error vs reference: %.2e  %s\n"
        (Polybench.Harness.variant_label variant)
        time err
        (if err < 1e-3 then "OK" else "MISMATCH"))
    [ Polybench.Harness.Cuda; Polybench.Harness.Ompi_cudadev ];
  print_endline "\nGenerated OpenMP kernel (collapse(3) lowered onto the grid):";
  let compiled = Ompi.compile ~name:"conv3d" Polybench.Conv3d.omp_source in
  List.iter (fun (_, text) -> print_string text) compiled.Ompi.c_kernel_texts
