(* Quickstart: the paper's Fig. 1 SAXPY example, end to end.

     dune exec examples/quickstart.exe

   The OpenMP C program below is translated by the OMPi-style compiler
   (host file + one CUDA kernel file), the kernel is "compiled" in CUBIN
   mode, and the program runs on the simulated Jetson Nano 2GB. *)

let source =
  {|
/* Host function that performs SAXPY on the device (paper Fig. 1) */
void saxpy_device(float a, float x[], float y[], int size)
{
  #pragma omp target map(to: a, size, x[0:size]) \
                     map(tofrom: y[0:size])
  {
    int i;
    #pragma omp parallel for
    for (i = 0; i < size; i++)
      y[i] = a * x[i] + y[i];
  }
}

int main(void)
{
  float x[1024];
  float y[1024];
  int i;
  for (i = 0; i < 1024; i++) {
    x[i] = i * 1.0f;
    y[i] = 1000.0f;
  }
  saxpy_device(2.0f, x, y, 1024);
  printf("y[0]    = %f (expect 1000)\n", y[0]);
  printf("y[1]    = %f (expect 1002)\n", y[1]);
  printf("y[1023] = %f (expect 3046)\n", y[1023]);
  return 0;
}
|}

let () =
  print_endline "=== compiling (ompicc pipeline) ===";
  let compiled = Ompi.compile ~name:"saxpy" source in
  Printf.printf "host file: %d bytes of C; %d kernel file(s): %s\n\n"
    (String.length compiled.Ompi.c_host_text)
    (List.length compiled.Ompi.c_kernel_texts)
    (String.concat ", " (List.map fst compiled.Ompi.c_kernel_texts));
  print_endline "=== generated kernel file ===";
  List.iter (fun (_, text) -> print_string text) compiled.Ompi.c_kernel_texts;
  print_endline "\n=== running on the simulated Jetson Nano 2GB ===";
  let instance = Ompi.load compiled in
  let result = Ompi.run instance () in
  print_string result.Ompi.run_output;
  Printf.printf "\n[simulated time %.6f s, %d kernel launch(es)]\n" result.Ompi.run_time_s
    result.Ompi.run_kernel_launches
