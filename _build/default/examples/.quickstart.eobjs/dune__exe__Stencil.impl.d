examples/stencil.ml: List Ompi Polybench Printf
