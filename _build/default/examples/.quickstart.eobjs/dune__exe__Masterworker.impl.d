examples/masterworker.ml: List Ompi Printf
