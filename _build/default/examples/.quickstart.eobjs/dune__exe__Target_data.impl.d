examples/target_data.ml: Ompi Printf
