examples/reduction.mli:
