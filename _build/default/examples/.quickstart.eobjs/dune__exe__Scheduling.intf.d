examples/scheduling.mli:
