examples/stencil.mli:
