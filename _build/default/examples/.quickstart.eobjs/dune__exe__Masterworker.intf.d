examples/masterworker.mli:
