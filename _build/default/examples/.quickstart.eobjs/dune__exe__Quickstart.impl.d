examples/quickstart.ml: List Ompi Printf String
