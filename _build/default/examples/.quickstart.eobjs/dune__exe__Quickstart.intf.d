examples/quickstart.mli:
