examples/scheduling.ml: List Ompi Printf String
