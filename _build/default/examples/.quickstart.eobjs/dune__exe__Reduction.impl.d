examples/reduction.ml: Ompi Printf
