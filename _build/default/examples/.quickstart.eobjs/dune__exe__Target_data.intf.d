examples/target_data.mli:
