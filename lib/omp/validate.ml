(* Semantic validation of OpenMP directives: clause/construct
   compatibility and combined-construct well-formedness.  Reports
   human-readable diagnostics; the translator refuses to run on a
   program with validation errors. *)

open Minic

type diagnostic = { diag_msg : string; diag_directive : Ast.directive }

let clause_name = function
  | Ast.Cnum_teams _ -> "num_teams"
  | Ast.Cnum_threads _ -> "num_threads"
  | Ast.Cthread_limit _ -> "thread_limit"
  | Ast.Cmap _ -> "map"
  | Ast.Cprivate _ -> "private"
  | Ast.Cfirstprivate _ -> "firstprivate"
  | Ast.Cshared _ -> "shared"
  | Ast.Cdefault_shared | Ast.Cdefault_none -> "default"
  | Ast.Cschedule _ -> "schedule"
  | Ast.Cdist_schedule _ -> "dist_schedule"
  | Ast.Ccollapse _ -> "collapse"
  | Ast.Creduction _ -> "reduction"
  | Ast.Cif _ -> "if"
  | Ast.Cdevice _ -> "device"
  | Ast.Cnowait -> "nowait"
  | Ast.Cupdate_to _ -> "to"
  | Ast.Cupdate_from _ -> "from"

(* Which construct of a (possibly combined) directive accepts a clause. *)
let clause_allowed (constructs : Ast.construct list) (c : Ast.clause) : bool =
  let has c = List.mem c constructs in
  let data_dir =
    has Ast.C_target || has Ast.C_target_data || has Ast.C_target_enter_data
    || has Ast.C_target_exit_data
  in
  match c with
  | Ast.Cnum_teams _ | Ast.Cthread_limit _ -> has Ast.C_teams
  | Ast.Cnum_threads _ -> has Ast.C_parallel
  | Ast.Cmap _ -> data_dir
  | Ast.Cschedule _ -> has Ast.C_for
  | Ast.Cdist_schedule _ -> has Ast.C_distribute
  | Ast.Ccollapse _ -> has Ast.C_for || has Ast.C_distribute
  | Ast.Creduction _ -> has Ast.C_parallel || has Ast.C_for || has Ast.C_teams || has Ast.C_sections
  | Ast.Cprivate _ | Ast.Cfirstprivate _ ->
    has Ast.C_parallel || has Ast.C_for || has Ast.C_teams || has Ast.C_distribute
    || has Ast.C_target || has Ast.C_sections || has Ast.C_single
  | Ast.Cshared _ | Ast.Cdefault_shared | Ast.Cdefault_none -> has Ast.C_parallel || has Ast.C_teams
  | Ast.Cif _ -> has Ast.C_target || has Ast.C_parallel || data_dir || has Ast.C_target_update
  | Ast.Cdevice _ -> data_dir || has Ast.C_target_update
  | Ast.Cnowait ->
    has Ast.C_for || has Ast.C_sections || has Ast.C_single || has Ast.C_target
  | Ast.Cupdate_to _ | Ast.Cupdate_from _ -> has Ast.C_target_update

(* Legal orderings of combined constructs (a strict nesting chain). *)
let legal_combination (constructs : Ast.construct list) : bool =
  match constructs with
  | [ _ ] -> true
  | [ Ast.C_target; Ast.C_teams ]
  | [ Ast.C_target; Ast.C_parallel ]
  | [ Ast.C_target; Ast.C_parallel; Ast.C_for ]
  | [ Ast.C_target; Ast.C_teams; Ast.C_distribute ]
  | [ Ast.C_target; Ast.C_teams; Ast.C_distribute; Ast.C_parallel; Ast.C_for ]
  | [ Ast.C_teams; Ast.C_distribute ]
  | [ Ast.C_teams; Ast.C_distribute; Ast.C_parallel; Ast.C_for ]
  | [ Ast.C_distribute; Ast.C_parallel; Ast.C_for ]
  | [ Ast.C_parallel; Ast.C_for ]
  | [ Ast.C_parallel; Ast.C_sections ] -> true
  | _ -> false

let check_directive (dir : Ast.directive) : diagnostic list =
  let errs = ref [] in
  let err fmt =
    Format.kasprintf (fun diag_msg -> errs := { diag_msg; diag_directive = dir } :: !errs) fmt
  in
  if not (legal_combination dir.dir_constructs) then
    err "illegal construct combination '%s'"
      (String.concat " " (List.map Pretty.construct_str dir.dir_constructs));
  List.iter
    (fun c ->
      if not (clause_allowed dir.dir_constructs c) then
        err "clause '%s' is not valid on '%s'" (clause_name c)
          (String.concat " " (List.map Pretty.construct_str dir.dir_constructs)))
    dir.dir_clauses;
  (* duplicate unique clauses *)
  let uniques = [ "num_teams"; "num_threads"; "thread_limit"; "schedule"; "dist_schedule"; "collapse"; "if"; "device"; "default" ] in
  List.iter
    (fun name ->
      let n = List.length (List.filter (fun c -> clause_name c = name) dir.dir_clauses) in
      if n > 1 then err "clause '%s' appears %d times" name n)
    uniques;
  (* reduction variables must keep a path back to the original list
     item: privatisation or a to-only/alloc map on the same construct
     would silently discard the combined value *)
  let reduction_vars =
    List.concat_map (function Ast.Creduction (_, vs) -> vs | _ -> []) dir.dir_clauses
  in
  if reduction_vars <> [] then begin
    let private_vars =
      List.concat_map
        (function Ast.Cprivate vs | Ast.Cfirstprivate vs -> vs | _ -> [])
        dir.dir_clauses
    in
    let mapped mts =
      List.concat_map
        (function
          | Ast.Cmap (mt, _, items) when List.mem mt mts ->
            List.map (fun i -> i.Ast.mi_var) items
          | _ -> [])
        dir.dir_clauses
    in
    let to_only = mapped [ Ast.Map_to; Ast.Map_alloc ] in
    let writes_back = mapped [ Ast.Map_from; Ast.Map_tofrom ] in
    List.iter
      (fun v ->
        if List.mem v private_vars then
          err "variable '%s' appears in both reduction and private/firstprivate clauses" v;
        if List.mem v to_only && not (List.mem v writes_back) then
          err
            "reduction variable '%s' is mapped 'to' only; the combined value would never reach \
             the host (map it tofrom)"
            v)
      reduction_vars
  end;
  List.rev !errs

(* Collect diagnostics over a whole (rewritten) program. *)
let check_program (p : Ast.program) : diagnostic list =
  let diags = ref [] in
  let on_stmt s =
    match s with
    | Ast.Spragma (Ast.Omp dir, body) ->
      diags := check_directive dir @ !diags;
      (match (body, Ast.has_construct dir Ast.C_target) with
      | None, _ -> ()
      | Some _, _ -> ())
    | _ -> ()
  in
  List.iter
    (function
      | Ast.Gfun f -> Ast.iter_stmt ~on_expr:(fun _ -> ()) ~on_stmt f.f_body
      | Ast.Gpragma (Ast.Omp dir) -> diags := check_directive dir @ !diags
      | _ -> ())
    p;
  List.rev !diags
