(* Parser for OpenMP pragma lines (the token lists stored in [Ast.Raw]).
   Produces the typed [Ast.directive] representation consumed by the
   translator.  The construct combination is kept ordered, so the
   combined form "target teams distribute parallel for" round-trips. *)

open Minic

exception Pragma_error of string

let pragma_error fmt = Format.kasprintf (fun s -> raise (Pragma_error s)) fmt

type cursor = { mutable toks : Token.t list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let eat_word c w =
  match peek c with
  | Some (Token.TIDENT x) when x = w ->
    advance c;
    true
  | _ -> false

let expect c tok =
  match peek c with
  | Some t when Token.equal t tok -> advance c
  | Some t -> pragma_error "expected '%s', found '%s'" (Token.to_source tok) (Token.to_source t)
  | None -> pragma_error "expected '%s' at end of pragma" (Token.to_source tok)

let expect_ident c =
  match peek c with
  | Some (Token.TIDENT x) ->
    advance c;
    x
  | Some t -> pragma_error "expected identifier, found '%s'" (Token.to_source t)
  | None -> pragma_error "expected identifier at end of pragma"

(* Take the tokens up to the ')' closing the currently open '(' paren,
   respecting nesting; the cursor is left after the ')'. *)
let take_paren_contents c : Token.t list =
  let rec go depth acc =
    match peek c with
    | None -> pragma_error "unterminated clause parenthesis"
    | Some Token.RPAREN when depth = 0 ->
      advance c;
      List.rev acc
    | Some t ->
      advance c;
      let depth =
        match t with Token.LPAREN -> depth + 1 | Token.RPAREN -> depth - 1 | _ -> depth
      in
      go depth (t :: acc)
  in
  go 0 []

(* Split a token list on top-level commas. *)
let split_commas (toks : Token.t list) : Token.t list list =
  let rec go depth cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | Token.COMMA :: rest when depth = 0 -> go 0 [] (List.rev cur :: acc) rest
    | (Token.LPAREN as t) :: rest | (Token.LBRACKET as t) :: rest ->
      go (depth + 1) (t :: cur) acc rest
    | (Token.RPAREN as t) :: rest | (Token.RBRACKET as t) :: rest ->
      go (depth - 1) (t :: cur) acc rest
    | t :: rest -> go depth (t :: cur) acc rest
  in
  match toks with [] -> [] | _ -> go 0 [] [] toks

let parse_expr_exactly (toks : Token.t list) : Ast.expr =
  match Parser.parse_assignment_tokens toks with
  | e, [] -> e
  | _, t :: _ -> pragma_error "trailing token '%s' in clause expression" (Token.to_source t)

(* Parse one list item of a map/update clause: IDENT ([lb?:len?])* *)
let parse_map_item (toks : Token.t list) : Ast.map_item =
  let c = { toks } in
  let var = expect_ident c in
  let rec sections acc =
    match peek c with
    | Some Token.LBRACKET ->
      advance c;
      (* collect until matching ']' with a top-level ':' separator *)
      let rec collect depth pre post in_post =
        match peek c with
        | None -> pragma_error "unterminated array section in map clause"
        | Some Token.RBRACKET when depth = 0 ->
          advance c;
          (List.rev pre, List.rev post)
        | Some Token.COLON when depth = 0 && not in_post ->
          advance c;
          collect depth pre post true
        | Some t ->
          advance c;
          let depth =
            match t with
            | Token.LBRACKET | Token.LPAREN -> depth + 1
            | Token.RBRACKET | Token.RPAREN -> depth - 1
            | _ -> depth
          in
          if in_post then collect depth pre (t :: post) true else collect depth (t :: pre) post false
      in
      let pre, post = collect 0 [] [] false in
      let lb = if pre = [] then None else Some (parse_expr_exactly pre) in
      let len = if post = [] then None else Some (parse_expr_exactly post) in
      sections ((lb, len) :: acc)
    | Some t -> pragma_error "unexpected '%s' in map item" (Token.to_source t)
    | None -> List.rev acc
  in
  { Ast.mi_var = var; mi_sections = sections [] }

let parse_var_list (toks : Token.t list) : string list =
  List.map
    (function
      | [ Token.TIDENT x ] -> x
      | ts ->
        pragma_error "expected variable name in clause list, found '%s'"
          (String.concat " " (List.map Token.to_source ts)))
    (split_commas toks)

let sched_kind_of_string = function
  | "static" -> Ast.Sch_static
  | "dynamic" -> Ast.Sch_dynamic
  | "guided" -> Ast.Sch_guided
  | "auto" -> Ast.Sch_auto
  | "runtime" -> Ast.Sch_runtime
  | s -> pragma_error "unknown schedule kind '%s'" s

let map_type_of_string = function
  | "to" -> Ast.Map_to
  | "from" -> Ast.Map_from
  | "tofrom" -> Ast.Map_tofrom
  | "alloc" -> Ast.Map_alloc
  | s -> pragma_error "unknown map type '%s'" s

let reduction_op_of_tokens = function
  | [ Token.PLUS ] -> Ast.Rd_add
  | [ Token.STAR ] -> Ast.Rd_mul
  | [ Token.TIDENT "max" ] -> Ast.Rd_max
  | [ Token.TIDENT "min" ] -> Ast.Rd_min
  | [ Token.ANDAND ] -> Ast.Rd_land
  | [ Token.OROR ] -> Ast.Rd_lor
  | [ Token.AMP ] -> Ast.Rd_band
  | [ Token.PIPE ] -> Ast.Rd_bor
  | [ Token.CARET ] -> Ast.Rd_bxor
  | ts -> pragma_error "unknown reduction operator '%s'" (String.concat "" (List.map Token.to_source ts))

(* Split "head: rest" at the first top-level colon. *)
let split_colon (toks : Token.t list) : Token.t list option * Token.t list =
  let rec go depth acc = function
    | [] -> (None, List.rev acc)
    | Token.COLON :: rest when depth = 0 -> (Some (List.rev acc), rest)
    | (Token.LPAREN as t) :: rest | (Token.LBRACKET as t) :: rest -> go (depth + 1) (t :: acc) rest
    | (Token.RPAREN as t) :: rest | (Token.RBRACKET as t) :: rest -> go (depth - 1) (t :: acc) rest
    | t :: rest -> go depth (t :: acc) rest
  in
  go 0 [] toks

let parse_clause c (name : string) ~(is_update : bool) : Ast.clause =
  let with_args f =
    expect c Token.LPAREN;
    f (take_paren_contents c)
  in
  match name with
  | "num_teams" -> with_args (fun ts -> Ast.Cnum_teams (parse_expr_exactly ts))
  | "num_threads" -> with_args (fun ts -> Ast.Cnum_threads (parse_expr_exactly ts))
  | "thread_limit" -> with_args (fun ts -> Ast.Cthread_limit (parse_expr_exactly ts))
  | "if" -> with_args (fun ts -> Ast.Cif (parse_expr_exactly ts))
  | "device" ->
    with_args (fun ts ->
        let e = parse_expr_exactly ts in
        match Ast.const_eval_opt e with
        | Some n when n >= 0L -> Ast.Cdevice e
        | Some _ -> pragma_error "device requires a non-negative device number"
        | None -> pragma_error "device requires a constant expression")
  | "collapse" ->
    with_args (fun ts ->
        match Ast.const_eval_opt (parse_expr_exactly ts) with
        | Some n when n > 0L -> Ast.Ccollapse (Int64.to_int n)
        | _ -> pragma_error "collapse requires a positive constant")
  | "private" -> with_args (fun ts -> Ast.Cprivate (parse_var_list ts))
  | "firstprivate" -> with_args (fun ts -> Ast.Cfirstprivate (parse_var_list ts))
  | "shared" -> with_args (fun ts -> Ast.Cshared (parse_var_list ts))
  | "default" ->
    with_args (function
      | [ Token.TIDENT "shared" ] -> Ast.Cdefault_shared
      | [ Token.TIDENT "none" ] -> Ast.Cdefault_none
      | _ -> pragma_error "default expects shared or none")
  | "schedule" | "dist_schedule" ->
    let kind_of = function
      | [ Token.TIDENT kind ] -> sched_kind_of_string kind
      | [ Token.KW_STATIC ] -> Ast.Sch_static (* "static" lexes as a C keyword *)
      | ts ->
        pragma_error "bad schedule kind '%s'" (String.concat " " (List.map Token.to_source ts))
    in
    let dist = name = "dist_schedule" in
    let mk kind chunk =
      if dist then begin
        if kind <> Ast.Sch_static then pragma_error "dist_schedule only supports static";
        Ast.Cdist_schedule (kind, chunk)
      end
      else Ast.Cschedule (kind, chunk)
    in
    with_args (fun ts ->
        match split_commas ts with
        | [ kind ] -> mk (kind_of kind) None
        | [ kind; chunk ] -> mk (kind_of kind) (Some (parse_expr_exactly chunk))
        | _ -> pragma_error "malformed schedule clause")
  | "reduction" ->
    with_args (fun ts ->
        match split_colon ts with
        | Some op_toks, rest -> Ast.Creduction (reduction_op_of_tokens op_toks, parse_var_list rest)
        | None, _ -> pragma_error "reduction clause requires 'op: list'")
  | "map" ->
    with_args (fun ts ->
        (* map([always,] [map-type:] list) — the head before the colon is
           a comma-separated modifier/type list *)
        let (mt, always), items_toks =
          match split_colon ts with
          | Some head, rest ->
            let parts = split_commas head in
            let step (mt, always) part =
              match part with
              | [ Token.TIDENT "always" ] ->
                if always then pragma_error "duplicate 'always' map modifier";
                (mt, true)
              | [ Token.TIDENT name ] -> (
                match mt with
                | None -> (Some (map_type_of_string name), always)
                | Some _ -> pragma_error "duplicate map type '%s'" name)
              | other ->
                pragma_error "bad map modifier '%s'"
                  (String.concat " " (List.map Token.to_source other))
            in
            let mt, always = List.fold_left step (None, false) parts in
            ((Option.value mt ~default:Ast.Map_tofrom, always), rest)
          | None, rest -> ((Ast.Map_tofrom, false), rest)
        in
        Ast.Cmap (mt, always, List.map parse_map_item (split_commas items_toks)))
  | "to" when is_update -> with_args (fun ts -> Ast.Cupdate_to (List.map parse_map_item (split_commas ts)))
  | "from" when is_update ->
    with_args (fun ts -> Ast.Cupdate_from (List.map parse_map_item (split_commas ts)))
  | "nowait" -> Ast.Cnowait
  | name -> pragma_error "unsupported clause '%s'" name

(* Parse the construct-name prefix of the directive. *)
let parse_constructs c : Ast.construct list =
  let rec go acc =
    match peek c with
    | Some (Token.TIDENT "target") ->
      advance c;
      if eat_word c "data" then go (Ast.C_target_data :: acc)
      else if eat_word c "enter" then begin
        if not (eat_word c "data") then pragma_error "expected 'data' after 'target enter'";
        go (Ast.C_target_enter_data :: acc)
      end
      else if eat_word c "exit" then begin
        if not (eat_word c "data") then pragma_error "expected 'data' after 'target exit'";
        go (Ast.C_target_exit_data :: acc)
      end
      else if eat_word c "update" then go (Ast.C_target_update :: acc)
      else go (Ast.C_target :: acc)
    | Some (Token.TIDENT "teams") ->
      advance c;
      go (Ast.C_teams :: acc)
    | Some (Token.TIDENT "distribute") ->
      advance c;
      go (Ast.C_distribute :: acc)
    | Some (Token.TIDENT "parallel") ->
      advance c;
      go (Ast.C_parallel :: acc)
    | Some Token.KW_FOR ->
      advance c;
      go (Ast.C_for :: acc)
    | Some (Token.TIDENT "sections") ->
      advance c;
      go (Ast.C_sections :: acc)
    | Some (Token.TIDENT "section") ->
      advance c;
      go (Ast.C_section :: acc)
    | Some (Token.TIDENT "single") ->
      advance c;
      go (Ast.C_single :: acc)
    | Some (Token.TIDENT "master") ->
      advance c;
      go (Ast.C_master :: acc)
    | Some (Token.TIDENT "barrier") ->
      advance c;
      go (Ast.C_barrier :: acc)
    | Some (Token.TIDENT "taskwait") ->
      advance c;
      go (Ast.C_taskwait :: acc)
    | Some (Token.TIDENT "atomic") ->
      advance c;
      (* optional atomic-clause keyword; only the update form is
         supported (read/write/capture would need result capture) *)
      (match peek c with
      | Some (Token.TIDENT "update") -> advance c
      | Some (Token.TIDENT (("read" | "write" | "capture") as k)) ->
        pragma_error "atomic %s is not supported (only atomic update)" k
      | _ -> ());
      go (Ast.C_atomic :: acc)
    | Some (Token.TIDENT "critical") ->
      advance c;
      let name =
        match peek c with
        | Some Token.LPAREN ->
          advance c;
          let n = expect_ident c in
          expect c Token.RPAREN;
          Some n
        | _ -> None
      in
      go (Ast.C_critical name :: acc)
    | Some (Token.TIDENT "declare") ->
      advance c;
      if not (eat_word c "target") then pragma_error "expected 'target' after 'declare'";
      go (Ast.C_declare_target :: acc)
    | Some (Token.TIDENT "end") ->
      advance c;
      if not (eat_word c "declare") then pragma_error "expected 'declare' after 'end'";
      if not (eat_word c "target") then pragma_error "expected 'target' after 'end declare'";
      go (Ast.C_end_declare_target :: acc)
    | _ -> List.rev acc
  in
  go []

(* Entry point: parse the token list of an "#pragma omp ..." line.
   Returns [None] for non-OpenMP pragmas, which are left untouched. *)
let parse (toks : Token.t list) : Ast.directive option =
  match toks with
  | Token.TIDENT "omp" :: rest ->
    let c = { toks = rest } in
    let constructs = parse_constructs c in
    if constructs = [] then pragma_error "empty OpenMP directive";
    let is_update = List.mem Ast.C_target_update constructs in
    let rec clauses acc =
      match peek c with
      | None -> List.rev acc
      | Some Token.COMMA ->
        advance c;
        clauses acc
      | Some (Token.TIDENT name) ->
        advance c;
        clauses (parse_clause c name ~is_update :: acc)
      | Some Token.KW_IF ->
        advance c;
        clauses (parse_clause c "if" ~is_update :: acc)
      | Some t -> pragma_error "unexpected token '%s' in clause list" (Token.to_source t)
    in
    Some { Ast.dir_constructs = constructs; dir_clauses = clauses [] }
  | _ -> None
