(** [ompiserve]: a long-lived offload server multiplexing many
    simulated clients onto one device context.

    The server owns a single runtime (one device, one data environment,
    one stream pool).  Each client session opens a {e persistent data
    environment} — its long-lived input arrays are mapped once, target
    -enter-data style, so per-request maps of those ranges hit the
    present table and move nothing — then issues a stream of offload
    requests with Poisson arrivals on the simulated clock.  Requests
    from independent sessions multiplex onto the stream pool (the PR 4
    dependency tracker serializes cross-session range conflicts and
    within-session read-after-write chains); transfers of one request
    overlap compute of another on the device's copy/compute engines.
    Closed sessions park their buffers in the PR 5 resident cache,
    which is shared across sessions and generations: re-opening a
    session elides the warm-up H2D.

    Every response is verified bit-identical against a sequential host
    reference computed ahead of serving, including under fault
    injection (retry/backoff and host fallback compose with the load).
    The request lifecycle emits cat:"serve" trace instants:
    enqueue → admit → map → launch → complete. *)

(** Request classes served:
    - [Matvec]: n×n matrix persistent in the session's data
      environment; each request streams a fresh x payload in and an
      accumulating y in/out (compute-bound, persistent-environment
      win);
    - [Ingest]: each request streams a fresh rows×{!ingest_cols} slab
      to the device and reduces it against a persistent x (transfer-
      bound: the overlap win);
    - [Scale]: light elementwise update of a small in/out vector
      (latency-sensitive chaff). *)
type app_kind = Matvec | Ingest | Scale

val app_name : app_kind -> string

(** Columns of an [Ingest] slab (rows come from [ss_n]). *)
val ingest_cols : int

type session_spec = {
  ss_tag : int;
      (** client identity: seeds this session's deterministic array
          contents and payloads, independent of its position in the
          workload — running the same spec alone reproduces the same
          data as running it in a mix *)
  ss_app : app_kind;
  ss_n : int;  (** problem size: matrix order / slab rows / vector length *)
  ss_requests : int;  (** requests this client issues per generation *)
  ss_rate_hz : float;  (** Poisson arrival rate of this client *)
  ss_shared_off : int option;
      (** [Matvec] only: draw the persistent matrix from the server's
          shared read-only input pool at this float offset — sessions
          whose slices overlap exercise cross-session present-table
          sharing and tracker arbitration *)
  ss_device : int;
      (** device the session is pinned to: its persistent environment
          lives on that device and every request resolves there (0 on a
          single-device server) *)
}

type config = {
  cf_devices : int;
      (** simultaneously-live device instances; sessions pin to one via
          [ss_device] (and must name a device below this count) *)
  cf_streams : int;  (** stream-pool size; 1 = fully serialized baseline *)
  cf_max_inflight : int;  (** admission bound on in-flight requests *)
  cf_generations : int;
      (** open-serve-close cycles: generation ≥ 2 re-opens sessions
          against the resident cache *)
  cf_seed : int;  (** arrival-process seed *)
  cf_elide : bool;
  cf_mem_policy : Hostrt.Mempolicy.sel option;
      (** per-buffer memory-mode policy applied to every device (see
          {!Hostrt.Rt.set_mem_mode}); [None] keeps the [cf_elide] legacy
          knob *)
  cf_resident_cap_bytes : int option;  (** resident-cache byte budget override *)
  cf_faults : Hostrt.Faults.rule list;
  cf_fault_seed : int;
  cf_max_retries : int option;
  cf_trace : bool;  (** attach a trace ring and emit cat:"serve" events *)
}

val default_config : config

(** A mixed default workload: [smoke] keeps it small enough for CI. *)
val default_sessions : smoke:bool -> session_spec list

type session_report = {
  sr_id : int;
  sr_app : string;
  sr_n : int;
  sr_requests : int;  (** completed requests (over all generations) *)
  sr_ok : bool;  (** every response bit-identical to the host reference *)
  sr_env_hits : int;
      (** request map operations satisfied by the session's persistent
          data environment *)
  sr_env_lookups : int;
  sr_mean_ms : float;  (** mean request latency *)
  sr_output_bits : int32 array;
      (** final output array of the last generation, as IEEE bits — the
          isolation property compares these across interleavings *)
}

type report = {
  rp_requests : int;
  rp_completed : int;
  rp_busy_s : float;  (** summed serving spans (first arrival → last completion) *)
  rp_throughput_rps : float;
  rp_p50_ms : float;
  rp_p95_ms : float;
  rp_p99_ms : float;
  rp_mean_queue_depth : float;  (** sampled at admissions *)
  rp_max_queue_depth : int;
  rp_env_hit_rate : float;  (** persistent-environment hit rate over all requests *)
  rp_open_elisions : int;
      (** session-open H2Ds elided via the resident cache (warm
          re-opens in generation ≥ 2) *)
  rp_elided_h2d : int;  (** total, summed over every device's data environment *)
  rp_elided_d2h : int;
  rp_elided_pages : int;
      (** clean pages skipped by partial transfers (h2d + d2h), summed
          over devices *)
  rp_policy : (int * ((int * int) * (string * int) list) list) list;
      (** per device: per-buffer tally of cold-map mode decisions
          (devices with no decisions omitted) *)
  rp_resident_buffers_end : int;  (** summed over devices *)
  rp_faults_injected : int;
  rp_device_dead : bool;  (** true when any device of the farm is dead *)
  rp_all_identical : bool;
  rp_sessions : session_report list;
}

(** Run the server over the workload; returns the report and, when
    [cf_trace] is set, the trace ring (for Chrome-trace export).
    @raise Invalid_argument on an empty workload or non-positive
    streams / inflight bound / generations *)
val run : config -> session_spec list -> report * Perf.Trace.t option
