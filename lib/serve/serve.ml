(* ompiserve: a long-lived offload server multiplexing many simulated
   clients onto one device context.

   One runtime, one data environment, one stream pool.  A client
   session opens a persistent data environment (its long-lived inputs
   are mapped once, enter-data style); each request then re-maps those
   ranges through the translated region's map clauses and hits the
   present table — only the per-request payload moves.  Requests carry
   `target ... nowait` regions, so independent sessions multiplex onto
   the stream pool and the dependency tracker serializes exactly the
   cross-session range conflicts and within-session RAW chains.

   Time is simulated: arrivals are Poisson on the Simclock, request
   completion is read off the enqueueing task's stream timeline, and
   the serving loop advances the clock to completion events in order —
   so throughput/latency numbers are deterministic for a given seed.

   Correctness is checked per response: because async memory effects
   are eager, the output array holds its final bytes as soon as the
   region is enqueued, and we compare them (as IEEE bits) against a
   sequential host-interpreter reference trajectory computed on mirror
   arrays before the serving window opens.  This holds under fault
   injection too — retries and host fallback must not corrupt any
   session. *)

open Machine
module H = Polybench.Harness
module Trace = Perf.Trace

type app_kind = Matvec | Ingest | Scale

let app_name = function Matvec -> "matvec" | Ingest -> "ingest" | Scale -> "scale"

let ingest_cols = 64

type session_spec = {
  ss_tag : int;  (* client identity: seeds array contents and payloads *)
  ss_app : app_kind;
  ss_n : int;
  ss_requests : int;
  ss_rate_hz : float;
  ss_shared_off : int option;
  ss_device : int;  (* device the session is pinned to (0 on a 1-device server) *)
}

type config = {
  cf_devices : int; (* device instances; sessions pin to one via ss_device *)
  cf_streams : int;
  cf_max_inflight : int;
  cf_generations : int;
  cf_seed : int;
  cf_elide : bool;
  cf_mem_policy : Hostrt.Mempolicy.sel option;
  (* per-buffer memory-mode policy; None keeps the cf_elide legacy knob *)
  cf_resident_cap_bytes : int option;
  cf_faults : Hostrt.Faults.rule list;
  cf_fault_seed : int;
  cf_max_retries : int option;
  cf_trace : bool;
}

let default_config =
  {
    cf_devices = 1;
    cf_streams = 4;
    cf_max_inflight = 8;
    cf_generations = 2;
    cf_seed = 42;
    cf_elide = true;
    cf_mem_policy = None;
    cf_resident_cap_bytes = None;
    cf_faults = [];
    cf_fault_seed = 7;
    cf_max_retries = None;
    cf_trace = false;
  }

(* The default workload mixes the three service classes so the stream
   pool has both transfer-heavy and compute-heavy work to overlap:
   ingest saturates the copy engine, matvec the compute engine, scale
   fills the gaps.  Two matvec sessions share overlapping slices of the
   server's input pool. *)
let default_sessions ~smoke =
  let mk tag app n requests rate shared =
    {
      ss_tag = tag;
      ss_app = app;
      ss_n = n;
      ss_requests = requests;
      ss_rate_hz = rate;
      ss_shared_off = shared;
      ss_device = 0;
    }
  in
  if smoke then
    [
      mk 0 Matvec 48 5 4000.0 (Some 0);
      mk 1 Matvec 48 5 4000.0 (Some (48 * 24));
      mk 2 Ingest 96 6 5000.0 None;
      mk 3 Ingest 96 6 5000.0 None;
      mk 4 Scale 64 8 6000.0 None;
    ]
  else
    [
      mk 5 Matvec 96 12 3000.0 (Some 0);
      mk 6 Matvec 96 12 3000.0 (Some (96 * 48));
      mk 7 Matvec 64 12 3500.0 None;
      mk 8 Ingest 128 16 4000.0 None;
      mk 9 Ingest 128 16 4000.0 None;
      mk 10 Ingest 96 16 4500.0 None;
      mk 11 Scale 128 20 6000.0 None;
      mk 12 Scale 64 20 6000.0 None;
    ]

(* Service sources.  All regions are bare `nowait` combined constructs
   (no enclosing target data), so the translator emits no implicit
   barrier — the host thread returns as soon as the region is enqueued
   and the serving loop is free to admit the next request. *)

let matvec_source =
  {|
void serve_matvec(int n, float A[], float x[], float y[])
{
  #pragma omp target teams distribute parallel for nowait num_teams(1) num_threads(128) \
      map(to: n, A[0:n*n], x[0:n]) map(tofrom: y[0:n])
  for (int i = 0; i < n; i++) {
    float s = 0.0f;
    for (int j = 0; j < n; j++)
      s += A[i * n + j] * x[j];
    y[i] = y[i] * 0.5f + s;
  }
}
|}

let ingest_source =
  {|
void serve_ingest(int rows, int cols, float S[], float x[], float y[])
{
  #pragma omp target teams distribute parallel for nowait num_teams(1) num_threads(128) \
      map(to: rows, cols, S[0:rows*cols], x[0:cols]) map(from: y[0:rows])
  for (int i = 0; i < rows; i++) {
    float s = 0.0f;
    for (int j = 0; j < cols; j++)
      s += S[i * cols + j] * x[j];
    y[i] = s;
  }
}
|}

let scale_source =
  {|
void serve_scale(int n, float y[])
{
  #pragma omp target teams distribute parallel for nowait num_teams(1) num_threads(64) \
      map(to: n) map(tofrom: y[0:n])
  for (int i = 0; i < n; i++)
    y[i] = y[i] * 1.5f + 2.0f;
}
|}

let source_of = function
  | Matvec -> matvec_source
  | Ingest -> ingest_source
  | Scale -> scale_source

let entry_of k = "serve_" ^ app_name k

(* Deterministic fills, all exactly representable in binary32 so the
   bit-identity check is meaningful rather than vacuously fuzzy. *)
let q16 v = float_of_int v /. 16.0
let pool_fill i = q16 (((i * 5) mod 33) - 16)
let mat_fill sid i = q16 (((sid * 11 + i * 3) mod 37) - 18)
let vec_init sid i = q16 (((sid * 7 + i) mod 29) - 14)
let payload_fill sid step i = q16 (((sid * 13 + step * 17 + i * 5) mod 41) - 20)

type arrays =
  | Ar_matvec of { a : Addr.t; x : Addr.t; y : Addr.t }
  | Ar_ingest of { s : Addr.t; x : Addr.t; y : Addr.t }
  | Ar_scale of { y : Addr.t }

type session = {
  se_id : int;
  se_spec : session_spec;
  se_prog : H.omp_program;
  se_ref_prog : H.omp_program;
  se_live : arrays;
  se_mirror : arrays;
  mutable se_refs : int32 array array;  (* expected output bits per step *)
  mutable se_done : int;
  mutable se_ok : bool;
  mutable se_env_hits : int;
  mutable se_env_lookups : int;
  mutable se_lat_sum_ns : float;
  mutable se_out_bits : int32 array;
}

(* Host ranges a session keeps mapped for its whole generation. *)
let persistent_ranges se =
  match se.se_live with
  | Ar_matvec { a; _ } ->
    let n = se.se_spec.ss_n in
    [ (a, n * n * 4) ]
  | Ar_ingest { x; _ } -> [ (x, ingest_cols * 4) ]
  | Ar_scale _ -> []

let output_of = function
  | Ar_matvec { y; _ } | Ar_ingest { y; _ } | Ar_scale { y } -> y

(* Output length is the row/vector count for every service class. *)
let output_len se = se.se_spec.ss_n

type req = { rq_sess : session; rq_gen : int; rq_step : int; rq_arrival : float (* ns *) }

type session_report = {
  sr_id : int;
  sr_app : string;
  sr_n : int;
  sr_requests : int;
  sr_ok : bool;
  sr_env_hits : int;
  sr_env_lookups : int;
  sr_mean_ms : float;
  sr_output_bits : int32 array;
}

type report = {
  rp_requests : int;
  rp_completed : int;
  rp_busy_s : float;
  rp_throughput_rps : float;
  rp_p50_ms : float;
  rp_p95_ms : float;
  rp_p99_ms : float;
  rp_mean_queue_depth : float;
  rp_max_queue_depth : int;
  rp_env_hit_rate : float;
  rp_open_elisions : int;
  rp_elided_h2d : int;
  rp_elided_d2h : int;
  rp_elided_pages : int; (* clean pages skipped by partial transfers, summed over devices *)
  rp_policy : (int * ((int * int) * (string * int) list) list) list;
  (* per device: per-buffer tally of cold-map mode decisions *)
  rp_resident_buffers_end : int;
  rp_faults_injected : int;
  rp_device_dead : bool;
  rp_all_identical : bool;
  rp_sessions : session_report list;
}

let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let run (cfg : config) (specs : session_spec list) : report * Trace.t option =
  if specs = [] then invalid_arg "Serve.run: empty workload";
  if cfg.cf_devices <= 0 then invalid_arg "Serve.run: devices must be positive";
  if cfg.cf_streams <= 0 then invalid_arg "Serve.run: streams must be positive";
  if cfg.cf_max_inflight <= 0 then invalid_arg "Serve.run: max_inflight must be positive";
  if cfg.cf_generations <= 0 then invalid_arg "Serve.run: generations must be positive";
  List.iter
    (fun s ->
      if s.ss_device < 0 || s.ss_device >= cfg.cf_devices then
        invalid_arg
          (Printf.sprintf "Serve.run: session tag %d pinned to device %d of a %d-device server"
             s.ss_tag s.ss_device cfg.cf_devices))
    specs;
  let ctx = H.create ~devices:cfg.cf_devices () in
  let rt = ctx.H.rt in
  (* Pinned sessions own their whole region: the farm must not shard a
     session's grid across devices behind its back. *)
  Hostrt.Rt.set_shard rt false;
  let trace = if cfg.cf_trace then Some (H.enable_trace ctx) else None in
  H.set_sampling ctx None;
  H.set_streams ctx cfg.cf_streams;
  H.set_elide ctx cfg.cf_elide;
  Option.iter (Hostrt.Rt.set_mem_mode rt) cfg.cf_mem_policy;
  (match cfg.cf_resident_cap_bytes with
  | Some cap ->
    Array.iter
      (fun (d : Hostrt.Rt.device) -> Hostrt.Dataenv.set_resident_cap_bytes d.Hostrt.Rt.dev_dataenv cap)
      rt.Hostrt.Rt.devices
  | None -> ());
  (match cfg.cf_max_retries with Some r -> H.set_max_retries ctx r | None -> ());
  if cfg.cf_faults <> [] then H.set_faults ctx ~seed:cfg.cf_fault_seed cfg.cf_faults;
  (* Per-device views: a session's persistent environment, present-table
     lookups and stream completions all live on its pinned device. *)
  let env_of dev = (Hostrt.Rt.device rt dev).Hostrt.Rt.dev_dataenv in
  let async_of dev = (Hostrt.Rt.device rt dev).Hostrt.Rt.dev_async in
  let clock = rt.Hostrt.Rt.clock in
  let now_ns () = Simclock.now_ns clock in
  let advance_to target =
    if target > now_ns () then Simclock.advance_ns clock (target -. now_ns ())
  in
  let emit ?(args = []) name =
    match trace with Some tr -> Trace.instant tr ~args ~cat:"serve" name | None -> ()
  in

  (* One compiled program (and one host-interpreter mirror) per service
     class present in the workload — sessions of a class share them,
     which also exercises the steady-state launch cache under mixing. *)
  let kinds = List.sort_uniq compare (List.map (fun s -> s.ss_app) specs) in
  let progs =
    List.map
      (fun k ->
        let name = entry_of k in
        ( k,
          ( H.prepare_omp ctx ~name (source_of k),
            H.prepare_omp ~host_interp:true ctx ~name:(name ^ "_ref") (source_of k) ) ))
      kinds
  in
  let prog_of k = List.assoc k progs in

  (* Shared read-only input pool for matvec sessions with ss_shared_off:
     overlapping slices make concurrent sessions hit the same present-
     table entries and give the dependency tracker real cross-session
     read sharing to arbitrate against the writes around them. *)
  let pool_len =
    List.fold_left
      (fun acc s ->
        match (s.ss_app, s.ss_shared_off) with
        | Matvec, Some off -> max acc (off + (s.ss_n * s.ss_n))
        | _ -> acc)
      0 specs
  in
  let pool = if pool_len > 0 then Some (H.alloc_f32 ctx pool_len) else None in

  let sessions =
    List.mapi
      (fun i spec ->
        let n = spec.ss_n in
        let dev_prog, ref_prog = prog_of spec.ss_app in
        let alloc = H.alloc_f32 ctx in
        let live, mirror =
          match spec.ss_app with
          | Matvec ->
            let a =
              match (spec.ss_shared_off, pool) with
              | Some off, Some p -> Addr.add p (off * 4)
              | _ -> alloc (n * n)
            in
            ( Ar_matvec { a; x = alloc n; y = alloc n },
              Ar_matvec { a = alloc (n * n); x = alloc n; y = alloc n } )
          | Ingest ->
            ( Ar_ingest { s = alloc (n * ingest_cols); x = alloc ingest_cols; y = alloc n },
              Ar_ingest { s = alloc (n * ingest_cols); x = alloc ingest_cols; y = alloc n } )
          | Scale -> (Ar_scale { y = alloc n }, Ar_scale { y = alloc n })
        in
        {
          se_id = i;
          se_spec = spec;
          se_prog = dev_prog;
          se_ref_prog = ref_prog;
          se_live = live;
          se_mirror = mirror;
          se_refs = [||];
          se_done = 0;
          se_ok = true;
          se_env_hits = 0;
          se_env_lookups = 0;
          se_lat_sum_ns = 0.0;
          se_out_bits = [||];
        })
      specs
  in

  (* Per-generation input state; identical every generation so warm
     re-opens find the resident cache holding exactly these bytes. *)
  let fill_generation () =
    (match pool with Some p -> H.fill_f32 ctx p pool_len pool_fill | None -> ());
    List.iter
      (fun se ->
        let sid = se.se_spec.ss_tag and n = se.se_spec.ss_n in
        let both la ma len g =
          H.fill_f32 ctx la len g;
          H.fill_f32 ctx ma len g
        in
        match (se.se_live, se.se_mirror) with
        | Ar_matvec { a = la; x = lx; y = ly }, Ar_matvec { a = ma; x = mx; y = my } ->
          if se.se_spec.ss_shared_off = None then H.fill_f32 ctx la (n * n) (mat_fill sid);
          (* the mirror gets a private copy of the (possibly pool-backed)
             live matrix *)
          Array.iteri (fun i v -> H.set_f32 ctx ma i v) (H.read_f32_array ctx la (n * n));
          both lx mx n (vec_init sid);
          both ly my n (vec_init (sid + 100))
        | Ar_ingest { x = lx; y = ly; _ }, Ar_ingest { x = mx; y = my; _ } ->
          both lx mx ingest_cols (vec_init sid);
          both ly my n (fun _ -> 0.0)
        | Ar_scale { y = ly }, Ar_scale { y = my } -> both ly my n (vec_init sid)
        | _ -> assert false)
      sessions
  in

  (* Apply the per-request payload to one side (live or mirror). *)
  let apply_payload arrays se step =
    let sid = se.se_spec.ss_tag and n = se.se_spec.ss_n in
    match arrays with
    | Ar_matvec { x; _ } -> H.fill_f32 ctx x n (payload_fill sid step)
    | Ar_ingest { s; _ } -> H.fill_f32 ctx s (n * ingest_cols) (payload_fill sid step)
    | Ar_scale _ -> ()
  in

  let call prog arrays se =
    let n = se.se_spec.ss_n in
    match arrays with
    | Ar_matvec { a; x; y } ->
      H.call_omp prog (entry_of Matvec) [ H.vint n; H.fptr a; H.fptr x; H.fptr y ]
    | Ar_ingest { s; x; y } ->
      H.call_omp prog (entry_of Ingest)
        [ H.vint n; H.vint ingest_cols; H.fptr s; H.fptr x; H.fptr y ]
    | Ar_scale { y } -> H.call_omp prog (entry_of Scale) [ H.vint n; H.fptr y ]
  in

  let output_bits arrays se =
    Array.map Int32.bits_of_float (H.read_f32_array ctx (output_of arrays) (output_len se))
  in

  (* Sequential reference trajectories, computed on the mirrors before
     the serving window: refs.(step) is the expected output image after
     the session's step-th request. *)
  let compute_refs () =
    List.iter
      (fun se ->
        se.se_refs <-
          Array.init se.se_spec.ss_requests (fun step ->
              apply_payload se.se_mirror se step;
              call se.se_ref_prog se.se_mirror se;
              output_bits se.se_mirror se))
      sessions
  in

  let open_sessions () =
    List.iter
      (fun se ->
        let env = env_of se.se_spec.ss_device in
        List.iter
          (fun (addr, bytes) -> ignore (Hostrt.Dataenv.map env addr ~bytes Hostrt.Dataenv.To))
          (persistent_ranges se))
      sessions
  in
  let close_sessions () =
    Array.iter
      (fun (d : Hostrt.Rt.device) -> Hostrt.Offload.taskwait rt ~dev:d.Hostrt.Rt.dev_id)
      rt.Hostrt.Rt.devices;
    List.iter
      (fun se ->
        let env = env_of se.se_spec.ss_device in
        List.iter
          (fun (addr, _) -> Hostrt.Dataenv.unmap env addr Hostrt.Dataenv.To)
          (persistent_ranges se))
      (List.rev sessions)
  in

  (* Poisson arrivals per session, merged into one admission order. *)
  let arrivals gen start_ns =
    List.concat_map
      (fun se ->
        let st = Random.State.make [| cfg.cf_seed; se.se_id; gen |] in
        let t = ref start_ns in
        List.init se.se_spec.ss_requests (fun step ->
            let u = Random.State.float st 1.0 in
            let gap_s = -.Float.log (1.0 -. u) /. se.se_spec.ss_rate_hz in
            t := !t +. (gap_s *. 1e9);
            { rq_sess = se; rq_gen = gen; rq_step = step; rq_arrival = !t }))
      sessions
    |> List.sort (fun a b ->
           compare
             (a.rq_arrival, a.rq_sess.se_id, a.rq_step)
             (b.rq_arrival, b.rq_sess.se_id, b.rq_step))
  in

  let latencies = ref [] in
  let depth_sum = ref 0 and depth_samples = ref 0 and max_depth = ref 0 in
  let busy_ns = ref 0.0 in
  let open_elisions = ref 0 in

  let req_args rq extra =
    ("req", Trace.Str (Printf.sprintf "g%d.s%d.%d" rq.rq_gen rq.rq_sess.se_id rq.rq_step)) :: extra
  in

  (* Issue one request: payload write, translated call (which enqueues
     map/launch/unmap on a stream via the dependency tracker), and the
     eager-effects bit check.  Returns the completion timestamp. *)
  let issue rq =
    let se = rq.rq_sess in
    let env = env_of se.se_spec.ss_device in
    let async = async_of se.se_spec.ss_device in
    (* Pin the session: the translated region's -1 device sentinel
       resolves to the default device at enqueue time. *)
    Hostrt.Rt.set_default_device rt se.se_spec.ss_device;
    apply_payload se.se_live se rq.rq_step;
    List.iter
      (fun (addr, bytes) ->
        se.se_env_lookups <- se.se_env_lookups + 1;
        if Hostrt.Dataenv.is_present env addr ~bytes then se.se_env_hits <- se.se_env_hits + 1)
      (persistent_ranges se);
    emit "map" ~args:(req_args rq []);
    let before = Hostrt.Async.submitted_total async in
    call se.se_prog se.se_live se;
    let launched = Hostrt.Async.submitted_total async > before in
    let done_ns, stream =
      if launched then
        match Hostrt.Async.last_task async with
        | Some tk -> (tk.Hostrt.Async.t_done_ns, tk.Hostrt.Async.t_stream.Gpusim.Driver.str_id)
        | None -> (now_ns (), -1)
      else (now_ns (), -1)
    in
    emit "launch"
      ~args:
        (req_args rq
           [ ("stream", Trace.Int stream); ("fallback", Trace.Bool (not launched)) ]);
    let bits = output_bits se.se_live se in
    if bits <> se.se_refs.(rq.rq_step) then se.se_ok <- false;
    Float.max done_ns (now_ns ())
  in

  let total_elided_h2d () =
    Array.fold_left
      (fun acc (d : Hostrt.Rt.device) ->
        acc + (Hostrt.Dataenv.stats d.Hostrt.Rt.dev_dataenv).Hostrt.Dataenv.elided_h2d)
      0 rt.Hostrt.Rt.devices
  in
  for gen = 1 to cfg.cf_generations do
      fill_generation ();
      let st0 = total_elided_h2d () in
      open_sessions ();
      open_elisions := !open_elisions + (total_elided_h2d () - st0);
      if gen = 1 then compute_refs ();
      let start = now_ns () in
      let reqs = arrivals gen start in
      let outstanding = ref [] in
      let last_complete = ref start in
      let complete (rq, done_ns) =
        advance_to done_ns;
        outstanding := List.filter (fun (o, _) -> o != rq) !outstanding;
        let lat = done_ns -. rq.rq_arrival in
        latencies := lat :: !latencies;
        rq.rq_sess.se_done <- rq.rq_sess.se_done + 1;
        rq.rq_sess.se_lat_sum_ns <- rq.rq_sess.se_lat_sum_ns +. lat;
        last_complete := Float.max !last_complete done_ns;
        emit "complete" ~args:(req_args rq [ ("latency_ms", Trace.Float (lat /. 1e6)) ])
      in
      let earliest () =
        match !outstanding with
        | [] -> None
        | first :: rest ->
          Some
            (List.fold_left
               (fun ((_, bd) as best) ((_, d) as cand) -> if d < bd then cand else best)
               first rest)
      in
      let flush_until limit =
        let continue = ref true in
        while !continue do
          match earliest () with
          | Some (rq, d) when d <= limit -> complete (rq, d)
          | _ -> continue := false
        done
      in
      List.iter
        (fun rq ->
          flush_until rq.rq_arrival;
          advance_to rq.rq_arrival;
          emit "enqueue" ~args:(req_args rq [ ("arrival_ns", Trace.Float rq.rq_arrival) ]);
          while List.length !outstanding >= cfg.cf_max_inflight do
            match earliest () with Some p -> complete p | None -> assert false
          done;
          let depth = List.length !outstanding in
          depth_sum := !depth_sum + depth;
          incr depth_samples;
          if depth > !max_depth then max_depth := depth;
          emit "admit" ~args:(req_args rq [ ("queue_depth", Trace.Int depth) ]);
          let done_ns = issue rq in
          outstanding := (rq, done_ns) :: !outstanding)
        reqs;
      flush_until infinity;
      busy_ns := !busy_ns +. (!last_complete -. start);
      List.iter (fun se -> se.se_out_bits <- output_bits se.se_live se) sessions;
      close_sessions ()
  done;

  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let completed = Array.length lat in
  let total_requests =
    cfg.cf_generations * List.fold_left (fun acc s -> acc + s.ss_requests) 0 specs
  in
  (* Whole-farm data-environment totals: per-device stats summed. *)
  let stats =
    Array.fold_left
      (fun acc (d : Hostrt.Rt.device) ->
        let s = Hostrt.Dataenv.stats d.Hostrt.Rt.dev_dataenv in
        {
          s with
          Hostrt.Dataenv.elided_h2d = acc.Hostrt.Dataenv.elided_h2d + s.Hostrt.Dataenv.elided_h2d;
          elided_d2h = acc.Hostrt.Dataenv.elided_d2h + s.Hostrt.Dataenv.elided_d2h;
          elided_h2d_pages = acc.Hostrt.Dataenv.elided_h2d_pages + s.Hostrt.Dataenv.elided_h2d_pages;
          elided_d2h_pages = acc.Hostrt.Dataenv.elided_d2h_pages + s.Hostrt.Dataenv.elided_d2h_pages;
        })
      (Hostrt.Dataenv.stats (env_of 0))
      (Array.sub rt.Hostrt.Rt.devices 1 (Array.length rt.Hostrt.Rt.devices - 1))
  in
  let env_lookups = List.fold_left (fun acc se -> acc + se.se_env_lookups) 0 sessions in
  let env_hits = List.fold_left (fun acc se -> acc + se.se_env_hits) 0 sessions in
  let report =
    {
      rp_requests = total_requests;
      rp_completed = completed;
      rp_busy_s = !busy_ns /. 1e9;
      rp_throughput_rps =
        (if !busy_ns > 0.0 then float_of_int completed /. (!busy_ns /. 1e9) else 0.0);
      rp_p50_ms = percentile lat 0.50 /. 1e6;
      rp_p95_ms = percentile lat 0.95 /. 1e6;
      rp_p99_ms = percentile lat 0.99 /. 1e6;
      rp_mean_queue_depth =
        (if !depth_samples > 0 then float_of_int !depth_sum /. float_of_int !depth_samples
         else 0.0);
      rp_max_queue_depth = !max_depth;
      rp_env_hit_rate =
        (if env_lookups > 0 then float_of_int env_hits /. float_of_int env_lookups else 1.0);
      rp_open_elisions = !open_elisions;
      rp_elided_h2d = stats.Hostrt.Dataenv.elided_h2d;
      rp_elided_d2h = stats.Hostrt.Dataenv.elided_d2h;
      rp_elided_pages = stats.Hostrt.Dataenv.elided_h2d_pages + stats.Hostrt.Dataenv.elided_d2h_pages;
      rp_policy =
        Array.to_list rt.Hostrt.Rt.devices
        |> List.map (fun (d : Hostrt.Rt.device) ->
               (d.Hostrt.Rt.dev_id, Hostrt.Dataenv.policy_decisions d.Hostrt.Rt.dev_dataenv))
        |> List.filter (fun (_, rows) -> rows <> []);
      rp_resident_buffers_end =
        Array.fold_left
          (fun acc (d : Hostrt.Rt.device) ->
            acc + Hostrt.Dataenv.resident_buffers d.Hostrt.Rt.dev_dataenv)
          0 rt.Hostrt.Rt.devices;
      rp_faults_injected =
        (match rt.Hostrt.Rt.faults with Some f -> Hostrt.Faults.total_fired f | None -> 0);
      rp_device_dead =
        Array.exists
          (fun (d : Hostrt.Rt.device) -> Hostrt.Dataenv.is_dead d.Hostrt.Rt.dev_dataenv)
          rt.Hostrt.Rt.devices;
      rp_all_identical = List.for_all (fun se -> se.se_ok) sessions;
      rp_sessions =
        List.map
          (fun se ->
            {
              sr_id = se.se_id;
              sr_app = app_name se.se_spec.ss_app;
              sr_n = se.se_spec.ss_n;
              sr_requests = se.se_done;
              sr_ok = se.se_ok;
              sr_env_hits = se.se_env_hits;
              sr_env_lookups = se.se_env_lookups;
              sr_mean_ms =
                (if se.se_done > 0 then se.se_lat_sum_ns /. float_of_int se.se_done /. 1e6
                 else 0.0);
              sr_output_bits = se.se_out_bits;
            })
          sessions;
    }
  in
  (report, trace)
