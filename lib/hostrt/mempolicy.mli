(** Per-buffer memory-mode policy: classify each cold mapping as copy,
    elide (resident + transfer elision) or zero-copy, from observed
    per-buffer signals plus the device's transfer/zero-copy bandwidths
    as a cost model.  One instance lives per data environment, so
    multi-device farms keep per-device histories.  Buffers are keyed by
    their stable host (offset, bytes), which survives across data
    environments.

    Zero-copy is only chosen where it is provably bit-identical to the
    copying semantics: tofrom always; from always (pinning plus an
    in-place zero of the host range reproduces the zero-filled device
    image a from map would otherwise get); [to] once history shows the
    kernel reading the buffer without ever storing into it; never for
    alloc. *)

open Gpusim

type mode = Copy | Elide | Zerocopy [@@deriving show, eq]

(** A run-level selection: decide per buffer, or force one mode for
    every buffer (the PR 5 global flags). *)
type sel = Auto | Forced of mode [@@deriving show, eq]

val mode_name : mode -> string

val sel_name : sel -> string

(** Parse "auto" | "copy" | "elide" | "zerocopy". *)
val sel_of_string : string -> sel option

type decision = {
  d_mode : mode;
  d_reason : string;
      (** "forced" | "cold" | "history" | "always" | "async_pending" *)
  d_seq : int;  (** per-buffer ordinal: this is the buffer's d_seq-th decision *)
  d_est_copy_ns : float;
  d_est_elide_ns : float;
  d_est_zerocopy_ns : float;
}

type t

val create : Spec.t -> t

(** Everything the cost model weighs for one cold map. *)
type inputs = {
  i_bytes : int;
  i_needs_h2d : bool;  (** to / tofrom *)
  i_needs_d2h : bool;  (** from / tofrom *)
  i_always : bool;
  i_pending : bool;  (** queued stream work overlaps the range *)
  i_async : bool;  (** mapping from inside a stream task *)
  i_zerocopy_safe : bool;  (** tofrom / from: zero-copy provably bit-identical *)
  i_can_zerocopy_if_readonly : bool;
      (** to-mapped: zero-copy safe once history shows reads but zero
          stores *)
  i_revivable : bool;  (** a parked resident buffer covers the range *)
  i_host_digest : Digest.t Lazy.t;
      (** current host image, for the host-dirty signal (forced lazily,
          only when a history exists to compare against) *)
}

(** Decide the mode for one cold map and record the decision. *)
val decide : t -> key:int * int -> inputs -> decision

(** Record a forced-mode cold map (ordinal + tally), so summaries and
    the trace-consistency check are uniform across modes. *)
val forced : t -> key:int * int -> mode -> decision

(** Fold in the device-side observations of one completed map→unmap
    cycle: access counts, the fraction of bytes the device wrote, and
    the host image at release (compared at the next map to detect host
    mutation). *)
val observe :
  t -> key:int * int -> loads:int -> stores:int -> dev_dirty:float -> digest:Digest.t option -> unit

(** Per-buffer tally of chosen modes, sorted by buffer offset:
    ((off, bytes), [(mode_name, count); ...]), zero counts omitted. *)
val decisions : t -> ((int * int) * (string * int) list) list

(** Distinct modes this policy has chosen across all buffers. *)
val modes_used : t -> mode list
