(** Stream pool and dependency tracker for [target ... nowait] regions.

    Each submitted task names the host byte ranges it reads and writes;
    tasks whose ranges conflict (RAW / WAR / WAW) are serialized on the
    simulated timeline, independent tasks go to the least-loaded stream
    for transfer/compute overlap.  Memory effects of async driver ops
    are eager (host program order), so any admissible schedule replays
    to the same memory image as the fully synchronous one; the tracker
    only shapes the simulated timeline.  Every enqueue, dependency edge
    and synchronization point emits a cat:"async" trace event. *)

open Machine
open Gpusim

(** A host byte range. *)
type range = { rg_off : int; rg_len : int }

val range_of_addr : Addr.t -> bytes:int -> range

val ranges_overlap : range -> range -> bool

type task = {
  t_id : int;
  t_label : string;
  t_stream : Driver.stream;
  t_reads : range list;
  t_writes : range list;
  t_deps : int list;  (** ids of the pending tasks this one waited on *)
  mutable t_done_ns : float;  (** absolute sim time when the task completes *)
}

type t

val default_streams : int

(** @raise Invalid_argument on a non-positive stream count *)
val create : ?streams:int -> Driver.t -> t

(** Resize the stream pool.
    @raise Invalid_argument if non-positive or tasks are in flight *)
val set_streams : t -> int -> unit

(** Total number of tasks ever submitted (monotone; the next task id).
    Callers such as the offload server diff this around a submission to
    learn whether work was actually enqueued or the host-fallback path
    ran instead. *)
val submitted_total : t -> int

(** The most recently submitted task, even when it has already retired
    from the pending list — its [t_done_ns] is the completion timestamp
    a server records for the request that enqueued it. *)
val last_task : t -> task option

(** Tasks whose scheduled completion lies ahead of the current simulated
    time (retired tasks are pruned as a side effect). *)
val pending : t -> task list

val pending_count : t -> int

(** Pending tasks that conflict with an access of the given ranges:
    RAW / WAR / WAW, plus any shared touch of a registered pinned
    range. *)
val conflicting : t -> reads:range list -> writes:range list -> task list

(** Advertise a zero-copy pinned host range: kernels address it in
    place, outside any stream's copy bookkeeping, so tasks touching it
    serialize against each other (even read-read) until it is
    unregistered.  Emits cat:"async" pin_register / pin_unregister
    instants. *)
val register_pinned : t -> range -> unit

val unregister_pinned : t -> range -> unit

val pinned_ranges : t -> range list

(** Pending tasks touching the range at all (read or write). *)
val pending_on : t -> range -> task list

(** [submit t ~label ~reads ~writes f] computes dependencies, picks a
    stream, blocks it behind cross-stream dependencies, then runs
    [f stream] — which enqueues the region's transfers and launch on
    that stream.  Returns [f]'s result.  If [f] raises (e.g. the device
    died), no task is recorded. *)
val submit : t -> label:string -> reads:range list -> writes:range list -> (Driver.stream -> 'a) -> 'a

(** ort_taskwait / end-of-data-environment barrier: advance the global
    clock past every queued task. *)
val wait_all : t -> unit

(** Synchronize just the tasks touching a range (a [target update] on a
    range mid-flight must wait for it). *)
val sync_range : t -> range -> unit

(** Device died with work queued: advance the clock past whatever was
    enqueued and forget the task records (memory is already coherent —
    effects were eager). *)
val quiesce : t -> unit
