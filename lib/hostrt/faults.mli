(** Deterministic fault injection for the offload runtime.

    The simulated cudadev operations (alloc, transfers, module load, JIT
    compilation, kernel launch) consult an injector before doing real
    work; scripted plans ("fail the Nth call") or seeded per-site
    probabilities decide whether the call fails, raising {!Injected}
    with the fault's recovery classification.  The same plan + seed
    reproduces the same failure schedule on every run. *)

(** Injection sites, mirroring the fallible CUDA driver entry points. *)
type site =
  | Alloc  (** cuMemAlloc — on a 2GB board, usually OOM *)
  | H2d  (** cuMemcpyHtoD *)
  | D2h  (** cuMemcpyDtoH *)
  | Module_load  (** cuModuleLoad *)
  | Jit_cache  (** JIT disk cache returned a corrupt entry *)
  | Jit_compile  (** PTX JIT compilation *)
  | Launch  (** cuLaunchKernel *)

val pp_site : Format.formatter -> site -> unit

val show_site : site -> string

val equal_site : site -> site -> bool

(** How the recovery policy should treat an injected fault. *)
type kind =
  | Transient  (** worth retrying in place *)
  | Corrupt_cache  (** retry after invalidating the JIT cache entry *)
  | Fatal  (** device unusable: degrade to host execution *)

val pp_kind : Format.formatter -> kind -> unit

val show_kind : kind -> string

val equal_kind : kind -> kind -> bool

exception Injected of { i_site : site; i_kind : kind; i_count : int }

(** Lower-case wire names, as used in trace events and the CLI spec. *)
val site_name : site -> string

val kind_name : kind -> string

val site_of_name : string -> site option

(** One injection rule.  A rule watching several sites (e.g. "transfer"
    = H2d + D2h) counts their calls against one shared counter, so
    "fail the 2nd transfer" means the 2nd transfer overall. *)
type rule = {
  r_sites : site list;
  r_kind : kind;
  r_nths : int list;  (** fail these call indices (1-based) *)
  r_from : int option;  (** fail every call from this index on *)
  r_every : int option;  (** fail every k-th call *)
  r_prob : float;  (** per-call failure probability *)
}

type t

(** Arm a fresh injector (per-rule counters at zero).  [seed] drives the
    probability rules' deterministic PRNG; default 42. *)
val create : ?seed:int -> rule list -> t

(** Zero all counters and fire counts (the PRNG state is kept). *)
val reset : t -> unit

(** Count a call at [site] against every watching rule; raises
    {!Injected} if a rule's plan says this call fails. *)
val check : t -> site -> unit

(** [check] keyed by wire name; unknown names are ignored.  This is the
    function installed as the driver's injection hook. *)
val hook : t -> string -> unit

(** Total faults injected / total site calls counted so far. *)
val total_fired : t -> int

val total_calls : t -> int

(** {1 Spec parsing} *)

(** One-line description of the [--faults] spec grammar, for CLI docs. *)
val spec_syntax : string

(** Parse a spec like ["transfer:nth=2;launch:p=0.1"].  A bare site
    token means "fail every call".  Unspecified kinds default by site:
    alloc is fatal, jit is corrupt-cache, the rest transient. *)
val parse : string -> (rule list, string) result
