(** The cudadev host module's central operation: kernel launch in three
    phases (paper 4.2.1):
    + loading — locate the kernel file, load (JIT if PTX) the module;
    + parameter preparation — translate each host argument to its device
      image through the data environment;
    + launch — set grid/block dimensions and call the driver's
      launch_kernel. *)

open Machine
open Gpusim

type arg =
  | Mapped of Addr.t  (** host address of a mapped variable: passed as its device pointer *)
  | Scalar of Value.t  (** passed by value *)

type result = { r_stats : Driver.launch_stats; r_output : string }

(** Both launch entry points are fault-aware: the load and launch phases
    retry under the runtime's {!Resilience.policy} (invalidating the JIT
    cache entry on corrupt-cache faults so the retry recompiles), and
    {!Resilience.Device_dead} is raised immediately when the target
    device has already been declared dead, or when a fatal fault /
    retry exhaustion kills it — the caller then degrades to the host
    path. *)

(** [translated] marks kernels produced by the OMPi translator (they
    carry the occupancy-penalty hook); hand-written CUDA passes
    [~translated:false]. *)
val launch :
  Rt.t -> dev:int -> kernel_file:string -> entry:string -> num_teams:int -> num_threads:int ->
  args:arg list -> ?translated:bool -> ?block_filter:(int -> bool) -> unit -> result

(** Like {!launch}, but coerces arguments against the kernel entry's
    declared parameter types so pointer arithmetic inside the kernel
    uses the right element sizes.  This is the path the generated
    ort_offload calls take. *)
val launch_typed :
  Rt.t -> dev:int -> kernel_file:string -> entry:string -> num_teams:int -> num_threads:int ->
  args:arg list -> ?translated:bool -> ?block_filter:(int -> bool) -> unit -> result

(** {1 Asynchronous launch ([target ... nowait])} *)

(** A nowait region's mapped operand: the region owns its whole
    map/launch/unmap sequence, so the maps travel with the launch. *)
type async_map = { am_base : Addr.t; am_bytes : int; am_map : Dataenv.map_type }

(** Submit the region to the device's stream tracker: serialized behind
    conflicting in-flight regions (read/write intersection on host
    ranges), overlapped with independent ones.  The submitted work maps
    the operands, launches, and unmaps — all on one stream.  Returns the
    device-side printf output (available immediately: memory effects are
    eager).  Raises {!Resilience.Device_dead} like the sync path. *)
val launch_nowait :
  Rt.t -> dev:int -> kernel_file:string -> entry:string -> num_teams:int -> num_threads:int ->
  maps:async_map list -> ?translated:bool -> unit -> string

(** Barrier over every queued nowait region of [dev] (ort_taskwait and
    the end-of-data-environment barrier). *)
val taskwait : Rt.t -> dev:int -> unit

(** Device died with regions queued: drop the queue on a coherent
    timeline before running the host fallback. *)
val quiesce : Rt.t -> dev:int -> unit
