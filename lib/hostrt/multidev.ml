(* Multi-device sharding of `distribute` grids.

   When the runtime holds more than one live device and a launch targets
   the default device, the team space is split into contiguous shards —
   one per device, sized by compute weight — and each shard runs as a
   sub-kernel on its own device, on a dedicated stream.  The full grid
   geometry is kept on every device (so cudadev_team_id / num_teams stay
   globally correct) and a block filter selects the shard; the
   [logical_blocks] override charges each device only for the blocks it
   owns.

   Memory protocol (three phases around the launches):

   - broadcast: bring the host image of every mapped operand up to date
     from the primary (the launch's target device, which owns the
     region's data environment), then temporarily map each operand [To]
     on every secondary;
   - launch, ascending shard order: before shard i starts, the bytes
     earlier shards touched with atomic RMWs are exchanged through host
     memory — D2H on the writer's stream, then H2D on shard i's stream,
     with a cross-device arbiter that forbids the H2D from starting
     before the D2H completes;
   - merge: each shard's written byte interval is copied back to host
     memory in ascending shard order (so an atomic chain resolves to the
     last shard's value), and the union is pushed into the primary so
     the primary's image is complete when the region later unmaps.

   Because async driver ops perform their memory effects eagerly at
   enqueue (only time is modelled asynchronously), launching shards in
   ascending block order replays exactly the single-device ascending
   block schedule — sharded results are bit-identical to one device.
   The legality assumption matches `distribute` semantics: different
   teams do not write the same bytes non-atomically, and each shard's
   written interval is dense (no foreign bytes inside its envelope).

   A secondary that dies (fatal fault / retry exhaustion) has its shard
   re-run on the host, reading and writing host memory directly; later
   shards then receive full-extent refreshes instead of the atomic-only
   exchange.  A dead primary before any shard ran degrades to the
   caller's whole-region host fallback. *)

open Machine
open Gpusim

type shard = {
  sh_dev : int; (* device ordinal that owned the shard *)
  sh_lo : int; (* first linear block, inclusive *)
  sh_hi : int; (* past-last linear block *)
  sh_stats : Driver.launch_stats option; (* None: ran on the host after the device died *)
}

type result = { r_shards : shard list; r_stats : Driver.launch_stats; r_output : string }

(* Relative compute throughput of a device, for proportional sharding. *)
let device_weight (spec : Spec.t) : float =
  float_of_int (spec.Spec.sm_count * spec.Spec.cores_per_sm) *. spec.Spec.gpu_clock_hz

(* Split [0, total_blocks) into one contiguous, non-empty interval per
   weight, sized proportionally (cumulative rounding, so the sizes
   differ by at most one block from the ideal split). *)
let plan ~(total_blocks : int) ~(weights : float array) : (int * int) array =
  let n = Array.length weights in
  if n <= 0 then invalid_arg "Multidev.plan: no shards";
  if total_blocks < n then invalid_arg "Multidev.plan: fewer blocks than shards";
  let w = Array.map (fun x -> if Float.is_nan x || x <= 0.0 then 1.0 else x) weights in
  let total_w = Array.fold_left ( +. ) 0.0 w in
  let bounds = Array.make n (0, 0) in
  let cum = ref 0.0 in
  let lo = ref 0 in
  for i = 0 to n - 1 do
    cum := !cum +. w.(i);
    let hi =
      if i = n - 1 then total_blocks
      else
        let target = int_of_float (Float.round (float_of_int total_blocks *. (!cum /. total_w))) in
        min (max target (!lo + 1)) (total_blocks - (n - 1 - i))
    in
    bounds.(i) <- (!lo, hi);
    lo := hi
  done;
  bounds

(* Byte-interval arithmetic (intervals are [lo, hi), hi exclusive). *)
let clamp ~(bytes : int) ((lo, hi) : int * int) : int * int = (max 0 lo, min bytes hi)

let ival_union (a : (int * int) option) ((lo, hi) : int * int) : (int * int) option =
  match a with None -> Some (lo, hi) | Some (l, h) -> Some (min l lo, max h hi)

(* Pieces of [lo, hi) not covered by [sl, sh). *)
let ival_minus ((lo, hi) : int * int) ((sl, sh) : int * int) : (int * int) list =
  if sh <= lo || sl >= hi then [ (lo, hi) ]
  else (if sl > lo then [ (lo, sl) ] else []) @ if sh < hi then [ (sh, hi) ] else []

(* Per-device launch context of one sharded kernel. *)
type dctx = {
  c_dev : Rt.device;
  c_stream : Driver.stream; (* dedicated shard stream *)
  c_artifact : Nvcc.artifact;
  c_modul : Driver.loaded_module;
  c_values : Value.t list; (* kernel arguments, device addresses *)
  (* per extent: device base address + allocation id; None for
     zero-copy extents (the device addresses host memory in place) *)
  c_allocs : (Addr.t * int) option array;
}

exception Not_shardable

let check_alive (device : Rt.device) : unit =
  match Dataenv.dead_reason device.Rt.dev_dataenv with
  | Some reason -> raise (Resilience.Device_dead reason)
  | None -> ()

let resilient (rt : Rt.t) (driver : Driver.t) ~(artifact : Nvcc.artifact) ~label f =
  Resilience.run ~clock:rt.Rt.clock ?trace:rt.Rt.trace ~policy:rt.Rt.fault_policy
    ~on_fault:(fun _site kind ->
      match kind with
      | Faults.Corrupt_cache ->
        Nvcc.invalidate ~jit_cache:driver.Driver.jit_cache ~modules:driver.Driver.modules artifact
      | Faults.Transient | Faults.Fatal -> ())
    ~label f

let tr_instant (rt : Rt.t) ?(args = []) name =
  match rt.Rt.trace with
  | Some tr -> Perf.Trace.instant tr ~cat:"shard" name ~args
  | None -> ()

(* Sharded launches keep the paper's three-phase launch trace schema:
   per-device load and parameter-preparation spans, one launch span per
   shard. *)
let phase (rt : Rt.t) ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  match rt.Rt.trace with
  | Some tr -> Perf.Trace.with_span tr ~args ~cat:"launch" name f
  | None -> f ()

let shard_stream (d : Rt.device) : Driver.stream =
  match d.Rt.dev_shard_stream with
  | Some s -> s
  | None ->
    let s = Driver.stream_create d.Rt.dev_driver in
    d.Rt.dev_shard_stream <- Some s;
    s

(* Wrap a single-device result so every caller sees the shard shape. *)
let single_result (dev : int) (r : Offload.result) : result =
  {
    r_shards =
      [
        {
          sh_dev = dev;
          sh_lo = 0;
          sh_hi = r.Offload.r_stats.Driver.st_blocks_total;
          sh_stats = Some r.Offload.r_stats;
        };
      ];
    r_stats = r.Offload.r_stats;
    r_output = r.Offload.r_output;
  }

(* Ascending-order shard execution with the exchange/merge protocol.
   [ctx_arr.(0)] is the primary; [bounds] pairs each context with its
   [lo, hi) block range. *)
let run_shards (rt : Rt.t) ~(primary : Rt.device) ~(pctx : dctx) ~(ctx_arr : dctx array)
    ~(bounds : (int * int) array) ~(extents : Dataenv.extent list) ~(grid : Simt.dim3)
    ~(block : Simt.dim3) ~(entry : string) ~(args : Offload.arg list) ~(total_blocks : int)
    ~(translated : bool) ~(unmap_secondaries : unit -> unit) : result =
  let host = rt.Rt.host_mem in
  let n = Array.length ctx_arr in
  let out = Buffer.create 256 in
  (* Cross-device copy arbiter: host ranges with an in-flight D2H as
     (host_off, len, done_ns, src_ordinal).  An H2D on another device
     that reads an overlapping range must not start before done_ns. *)
  let arb : (int * int * float * int) list ref = ref [] in
  let ran : (int * dctx * Driver.launch_stats) list ref = ref [] in (* device shards, latest first *)
  let last_host = ref (-1) in (* index of the last host-fallback shard *)
  let shards = ref [] in
  (* Copy an extent byte interval from a shard device to host memory on
     the device's stream; a device that is (or just became) dead is read
     through the injection-bypassing salvage path — simulated global
     memory stays readable after compute faults. *)
  let d2h_to_host (c : dctx) (x : Dataenv.extent) (dbase : Addr.t) ((lo, hi) : int * int) : unit =
    let len = hi - lo in
    if len > 0 then begin
      let driver = c.c_dev.Rt.dev_driver in
      let src = Addr.add dbase lo and dst = Addr.add x.Dataenv.x_host lo in
      if Dataenv.is_dead c.c_dev.Rt.dev_dataenv then
        Driver.salvage_d2h driver ~host ~src ~dst ~len
      else begin
        try
          resilient rt driver ~artifact:c.c_artifact ~label:"shard_d2h" (fun () ->
              Driver.memcpy_d2h_async driver ~stream:c.c_stream ~host ~src ~dst ~len);
          arb :=
            (x.Dataenv.x_host.Addr.off + lo, len, c.c_stream.Driver.str_done_ns, driver.Driver.ordinal)
            :: !arb
        with Resilience.Device_dead reason ->
          Dataenv.declare_dead ~salvage:false c.c_dev.Rt.dev_dataenv ~reason;
          Driver.salvage_d2h driver ~host ~src ~dst ~len
      end
    end
  in
  (* Push host bytes into a shard device's extent image, first waiting
     (cuStreamWaitEvent) for any overlapping cross-device D2H to
     complete — the "D2H from device A before H2D to device B" rule.
     Raises [Device_dead] (after dropping the env without salvage) so
     the caller can host-fall-back the shard. *)
  let h2d_from_host (c : dctx) (x : Dataenv.extent) (dbase : Addr.t) ((lo, hi) : int * int) : unit =
    let len = hi - lo in
    if len > 0 && not (Dataenv.is_dead c.c_dev.Rt.dev_dataenv) then begin
      let driver = c.c_dev.Rt.dev_driver in
      let off = x.Dataenv.x_host.Addr.off + lo in
      let deadline =
        List.fold_left
          (fun acc (o, l, t, src) ->
            if src <> driver.Driver.ordinal && o < off + len && off < o + l then Float.max acc t
            else acc)
          neg_infinity !arb
      in
      if deadline > c.c_stream.Driver.str_done_ns then begin
        Driver.stream_wait_until c.c_stream deadline;
        tr_instant rt "xdev_dep"
          ~args:
            [
              ("device", Perf.Trace.Int driver.Driver.ordinal);
              ("bytes", Perf.Trace.Int len);
              ("until_ns", Perf.Trace.Float deadline);
            ]
      end;
      try
        resilient rt driver ~artifact:c.c_artifact ~label:"shard_h2d" (fun () ->
            Driver.memcpy_h2d_async driver ~stream:c.c_stream ~host
              ~src:(Addr.add x.Dataenv.x_host lo) ~dst:(Addr.add dbase lo) ~len);
        (* the copy changed the device image behind the launch counters'
           back: make sure no later elision trusts the store counts *)
        match Driver.alloc_id_of driver dbase with
        | Some id -> Driver.note_stores driver id len
        | None -> ()
      with Resilience.Device_dead reason ->
        Dataenv.declare_dead ~salvage:false c.c_dev.Rt.dev_dataenv ~reason;
        raise (Resilience.Device_dead reason)
    end
  in
  (* Re-run a dead secondary's shard on the host: same kernel source,
     same grid geometry and block filter, but the arguments are the host
     addresses and loads/stores hit host memory directly.  Module
     globals still live in the dead device's (readable) global memory.
     Time is charged as sequential interpreted host execution. *)
  let host_fallback (c : dctx) ~(lo : int) ~(hi : int) : unit =
    let driver = c.c_dev.Rt.dev_driver in
    tr_instant rt "shard_host_fallback"
      ~args:
        [
          ("device", Perf.Trace.Int driver.Driver.ordinal);
          ("lo", Perf.Trace.Int lo);
          ("hi", Perf.Trace.Int hi);
        ];
    let counters = Counters.create driver.Driver.spec in
    let pins =
      List.mapi (fun i x -> (x.Dataenv.x_host.Addr.off, x.Dataenv.x_bytes, i)) extents
      |> List.sort compare |> Array.of_list
    in
    Counters.set_pinned_table counters pins;
    counters.Counters.blocks_total <- hi - lo;
    let entry_fn = Driver.get_function c.c_modul entry in
    let host_values =
      List.map2
        (fun (_, pty) a ->
          match a with
          | Offload.Scalar v -> Value.cast (Cty.decay pty) v
          | Offload.Mapped haddr -> (
            match Cty.decay pty with
            | Cty.Ptr elt -> Value.ptr ~ty:elt haddr
            | ty ->
              Rt.ort_error "mapped argument bound to non-pointer kernel parameter %s" (Cty.show ty)))
        entry_fn.Minic.Ast.f_params args
    in
    Simt.launch ~spec:driver.Driver.spec
      ~mem:{ Simt.dm_global = driver.Driver.global; dm_host = Some host }
      ~source:c.c_modul.Driver.lm_source
      ?compiled:(if driver.Driver.closure_jit then c.c_modul.Driver.lm_compiled else None)
      ~counters ~install_builtins:Devrt.Api.install ~output:out
      {
        Simt.lc_grid = grid;
        lc_block = block;
        lc_entry = entry;
        lc_args = host_values;
        lc_block_filter = Some (fun b -> b >= lo && b < hi);
      };
    Simclock.advance_ns rt.Rt.clock (counters.Counters.thread_inst_sum *. Rt.host_step_cost_ns rt)
  in
  (* ---- phase 2: launches, ascending shard order ------------------- *)
  for i = 0 to n - 1 do
    let lo, hi = bounds.(i) in
    let c = ctx_arr.(i) in
    try
      if i > 0 then begin
        (* Exchange: pull the atomic-RMW bytes of every prior device
           shard that ran after the last host shard into host memory
           (ascending, so a chained atomic resolves to the latest
           value), then push them — or, after a host shard, the full
           extents — into this shard's device. *)
        let nx = List.length extents in
        let atomic_unions = Array.make nx None in
        List.iteri
          (fun xi x ->
            if c.c_allocs.(xi) <> None then
              List.iter
                (fun (p_idx, pc, (pstats : Driver.launch_stats)) ->
                  if p_idx > !last_host then
                    match pc.c_allocs.(xi) with
                    | None -> ()
                    | Some (pdbase, pid) -> (
                      match Counters.atomic_interval pstats.Driver.st_counters pid with
                      | None -> ()
                      | Some ival ->
                        let l, h = clamp ~bytes:x.Dataenv.x_bytes ival in
                        if h > l then begin
                          d2h_to_host pc x pdbase (l, h);
                          atomic_unions.(xi) <- ival_union atomic_unions.(xi) (l, h)
                        end))
                (List.rev !ran))
          extents;
        List.iteri
          (fun xi x ->
            match c.c_allocs.(xi) with
            | None -> ()
            | Some (dbase, _) ->
              if !last_host >= 0 then h2d_from_host c x dbase (0, x.Dataenv.x_bytes)
              else
                Option.iter (fun ival -> h2d_from_host c x dbase ival) atomic_unions.(xi))
          extents
      end;
      let occupancy_penalty =
        if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0
      in
      let stats =
        phase rt "launch"
          ~args:
            [
              ("device", Perf.Trace.Int c.c_dev.Rt.dev_id);
              ("shard_lo", Perf.Trace.Int lo);
              ("shard_hi", Perf.Trace.Int hi);
            ]
          (fun () ->
            resilient rt c.c_dev.Rt.dev_driver ~artifact:c.c_artifact ~label:"launch" (fun () ->
                Driver.launch_kernel_async c.c_dev.Rt.dev_driver ~stream:c.c_stream ~modul:c.c_modul
                  ~entry ~grid ~block ~args:c.c_values ~install_builtins:Devrt.Api.install
                  ~block_filter:(fun b -> b >= lo && b < hi)
                  ~logical_blocks:(hi - lo) ~occupancy_penalty ()))
      in
      Buffer.add_string out (Driver.take_output c.c_dev.Rt.dev_driver);
      ran := (i, c, stats) :: !ran;
      shards := { sh_dev = c.c_dev.Rt.dev_id; sh_lo = lo; sh_hi = hi; sh_stats = Some stats } :: !shards
    with Resilience.Device_dead reason ->
      if i = 0 then begin
        (* the primary died before any shard ran: clean up the broadcast
           maps and degrade to the caller's whole-region host fallback *)
        unmap_secondaries ();
        raise (Resilience.Device_dead reason)
      end
      else begin
        if not (Dataenv.is_dead c.c_dev.Rt.dev_dataenv) then
          Dataenv.declare_dead ~salvage:false c.c_dev.Rt.dev_dataenv ~reason;
        host_fallback c ~lo ~hi;
        last_host := i;
        shards := { sh_dev = c.c_dev.Rt.dev_id; sh_lo = lo; sh_hi = hi; sh_stats = None } :: !shards
      end
  done;
  (* ---- phase 3: merge into host memory, ascending ----------------- *)
  let device_shards = List.rev !ran in
  List.iter
    (fun (p_idx, pc, (pstats : Driver.launch_stats)) ->
      (* the primary's own results stay on the primary unless a host
         shard ran (then the final full-extent refresh would overwrite
         them with host bytes, so they must reach the host first) *)
      if p_idx > 0 || !last_host >= 0 then
        List.iteri
          (fun xi x ->
            match pc.c_allocs.(xi) with
            | None -> ()
            | Some (pdbase, pid) -> (
              match Counters.store_interval pstats.Driver.st_counters pid with
              | None -> ()
              | Some ival ->
                let ival = clamp ~bytes:x.Dataenv.x_bytes ival in
                let pieces =
                  if p_idx > !last_host then [ ival ]
                  else
                    (* shards that ran before a host-fallback shard
                       already chained their atomic bytes into the host
                       image; copying them back would clobber the newer
                       value *)
                    match Counters.atomic_interval pstats.Driver.st_counters pid with
                    | None -> [ ival ]
                    | Some aiv -> ival_minus ival (clamp ~bytes:x.Dataenv.x_bytes aiv)
                in
                List.iter (fun (l, h) -> if h > l then d2h_to_host pc x pdbase (l, h)) pieces))
          extents)
    device_shards;
  (* ---- primary refresh: make the primary's image complete --------- *)
  (if not (Dataenv.is_dead primary.Rt.dev_dataenv) then
     try
       List.iteri
         (fun xi x ->
           match pctx.c_allocs.(xi) with
           | None -> ()
           | Some (dbase, _) ->
             if !last_host >= 0 then h2d_from_host pctx x dbase (0, x.Dataenv.x_bytes)
             else
               List.iter
                 (fun (p_idx, pc, (pstats : Driver.launch_stats)) ->
                   if p_idx > 0 then
                     match pc.c_allocs.(xi) with
                     | None -> ()
                     | Some (_, pid) -> (
                       match Counters.store_interval pstats.Driver.st_counters pid with
                       | None -> ()
                       | Some ival ->
                         let l, h = clamp ~bytes:x.Dataenv.x_bytes ival in
                         if h > l then h2d_from_host pctx x dbase (l, h)))
                 device_shards)
         extents
     with Resilience.Device_dead _ ->
       (* The primary died while receiving the merge.  Host memory
          already holds every other shard's results; rescue the
          primary's own shard (minus its atomic bytes, whose chained
          value the host already has) so the host image is canonical,
          then let the region's unmaps degrade to no-ops. *)
       (match device_shards with
       | (0, pc, (pstats : Driver.launch_stats)) :: _ when !last_host < 0 ->
         List.iteri
           (fun xi x ->
             match pc.c_allocs.(xi) with
             | None -> ()
             | Some (pdbase, pid) -> (
               match Counters.store_interval pstats.Driver.st_counters pid with
               | None -> ()
               | Some ival ->
                 let ival = clamp ~bytes:x.Dataenv.x_bytes ival in
                 let pieces =
                   match Counters.atomic_interval pstats.Driver.st_counters pid with
                   | None -> [ ival ]
                   | Some aiv -> ival_minus ival (clamp ~bytes:x.Dataenv.x_bytes aiv)
                 in
                 List.iter
                   (fun (l, h) ->
                     if h > l then
                       Driver.salvage_d2h pc.c_dev.Rt.dev_driver ~host ~src:(Addr.add pdbase l)
                         ~dst:(Addr.add x.Dataenv.x_host l) ~len:(h - l))
                   pieces))
           extents
       | _ -> ()));
  (* ---- synchronize and release the broadcast maps ----------------- *)
  Array.iter (fun c -> Driver.device_sync c.c_dev.Rt.dev_driver) ctx_arr;
  unmap_secondaries ();
  let r_stats =
    match List.find_opt (fun (p_idx, _, _) -> p_idx = 0) device_shards with
    | Some (_, _, st) -> st
    | None -> Rt.ort_error "sharded launch lost its primary shard" (* unreachable *)
  in
  { r_shards = List.rev !shards; r_stats; r_output = Buffer.contents out }

let launch (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string) ~(num_teams : int)
    ~(num_threads : int) ~(args : Offload.arg list) ?(translated = true) () : result =
  let primary = Rt.device rt dev in
  check_alive primary;
  let single () =
    single_result dev
      (Offload.launch_typed rt ~dev ~kernel_file ~entry ~num_teams ~num_threads ~args ~translated ())
  in
  let grid, block = Rt.geometry ~num_teams ~num_threads in
  let total_blocks = Simt.dim3_total grid in
  let secondaries = List.filter (fun d -> d.Rt.dev_id <> primary.Rt.dev_id) (Rt.live_devices rt) in
  (* Sharding needs >1 live device, >1 block, no block sampling (sampled
     counters under-report written intervals), and every mapped operand
     present on the primary. *)
  if (not rt.Rt.shard) || secondaries = [] || total_blocks < 2
     || Option.is_some rt.Rt.sample_max_blocks
  then single ()
  else begin
    match
      (try
         let seen = Hashtbl.create 8 in
         Some
           (List.filter_map
              (function
                | Offload.Scalar _ -> None
                | Offload.Mapped haddr -> (
                  match Dataenv.find_extent primary.Rt.dev_dataenv haddr with
                  | None -> raise Not_shardable
                  | Some x ->
                    if Hashtbl.mem seen x.Dataenv.x_host.Addr.off then None
                    else begin
                      Hashtbl.add seen x.Dataenv.x_host.Addr.off ();
                      Some x
                    end))
              args)
       with Not_shardable -> None)
    with
    | None -> single ()
    | Some extents ->
      (* ---- phase 1: broadcast ------------------------------------- *)
      List.iter (fun x -> Dataenv.refresh_host primary.Rt.dev_dataenv x.Dataenv.x_host) extents;
      check_alive primary;
      let secondaries =
        List.filter
          (fun s ->
            List.iter
              (fun x ->
                ignore
                  (Dataenv.map s.Rt.dev_dataenv x.Dataenv.x_host ~bytes:x.Dataenv.x_bytes Dataenv.To))
              extents;
            not (Dataenv.is_dead s.Rt.dev_dataenv))
          secondaries
      in
      let unmap_secondaries () =
        List.iter
          (fun s ->
            List.iter (fun x -> Dataenv.unmap s.Rt.dev_dataenv x.Dataenv.x_host Dataenv.To) extents)
          secondaries
      in
      let primary_artifact = Rt.find_kernel rt ~dev:primary.Rt.dev_id kernel_file in
      (* Build one launch context per participating device: load the
         module, coerce the arguments against the kernel's parameter
         types, resolve each extent's device image. *)
      let mk_ctx (d : Rt.device) : dctx =
        let driver = d.Rt.dev_driver in
        let artifact =
          match Hashtbl.find_opt d.Rt.dev_kernels kernel_file with
          | Some a -> a
          | None -> primary_artifact
        in
        let modul =
          phase rt "load"
            ~args:[ ("device", Perf.Trace.Int d.Rt.dev_id); ("file", Perf.Trace.Str kernel_file) ]
            (fun () ->
              resilient rt driver ~artifact ~label:"load" (fun () ->
                  Driver.load_module driver artifact))
        in
        let entry_fn = Driver.get_function modul entry in
        let params = entry_fn.Minic.Ast.f_params in
        if List.length params <> List.length args then
          Rt.ort_error "kernel '%s' expects %d parameters, got %d" entry (List.length params)
            (List.length args);
        let values =
          phase rt "parameter_preparation"
            ~args:[ ("nargs", Perf.Trace.Int (List.length args)) ]
            (fun () ->
              List.map2
                (fun (_, pty) a ->
                  match a with
                  | Offload.Scalar v -> Value.cast (Cty.decay pty) v
                  | Offload.Mapped haddr -> (
                    let daddr = Dataenv.lookup_exn d.Rt.dev_dataenv haddr in
                    match Cty.decay pty with
                    | Cty.Ptr elt -> Value.ptr ~ty:elt daddr
                    | ty ->
                      Rt.ort_error "mapped argument bound to non-pointer kernel parameter %s"
                        (Cty.show ty)))
                params args)
        in
        let allocs =
          Array.of_list
            (List.map
               (fun x ->
                 let daddr = Dataenv.lookup_exn d.Rt.dev_dataenv x.Dataenv.x_host in
                 if daddr.Addr.space <> Addr.Global then None
                 else Some (daddr, Option.value ~default:(-1) (Driver.alloc_id_of driver daddr)))
               extents)
        in
        {
          c_dev = d;
          c_stream = shard_stream d;
          c_artifact = artifact;
          c_modul = modul;
          c_values = values;
          c_allocs = allocs;
        }
      in
      let pctx =
        try mk_ctx primary
        with Resilience.Device_dead reason ->
          unmap_secondaries ();
          raise (Resilience.Device_dead reason)
      in
      let sctxs =
        List.filter_map
          (fun s ->
            try Some (mk_ctx s)
            with Resilience.Device_dead reason ->
              if not (Dataenv.is_dead s.Rt.dev_dataenv) then
                Dataenv.declare_dead ~salvage:false s.Rt.dev_dataenv ~reason;
              None)
          secondaries
      in
      if sctxs = [] then begin
        unmap_secondaries ();
        single ()
      end
      else begin
        (* ---- plan ------------------------------------------------- *)
        let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl in
        let ctxs = take total_blocks (pctx :: sctxs) in
        let ctx_arr = Array.of_list ctxs in
        let n = Array.length ctx_arr in
        let weights = Array.map (fun c -> device_weight c.c_dev.Rt.dev_driver.Driver.spec) ctx_arr in
        let bounds = plan ~total_blocks ~weights in
        tr_instant rt "shard_plan"
          ~args:
            [
              ("devices", Perf.Trace.Int n);
              ("total_blocks", Perf.Trace.Int total_blocks);
              ("entry", Perf.Trace.Str entry);
            ];
        run_shards rt ~primary ~pctx ~ctx_arr ~bounds ~extents ~grid ~block ~entry ~args
          ~total_blocks ~translated ~unmap_secondaries
      end
  end
