(* The cudadev host module's central operation: kernel launch in three
   phases (paper §4.2.1):
   1. loading    — locate the kernel file, load (JIT if PTX) the module;
   2. parameters — translate each host argument to its device image
                   through the data environment;
   3. launch     — set grid/block dimensions and call cuLaunchKernel. *)

open Machine
open Gpusim

type arg =
  | Mapped of Addr.t (* host address of a mapped variable: passed as device pointer *)
  | Scalar of Value.t (* passed by value *)

type result = { r_stats : Driver.launch_stats; r_output : string }

(* The three phases are spans in the launch trace (category "launch"),
   named exactly as the paper names them, so phase-level overheads can
   be measured and regression-tested. *)
let phase (rt : Rt.t) ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  match rt.Rt.trace with
  | Some tr -> Perf.Trace.with_span tr ~args ~cat:"launch" name f
  | None -> f ()

(* Launching on a device that was declared dead is pointless: fail fast
   so the caller (ort_offload) takes the host fallback path. *)
let check_alive (device : Rt.device) : unit =
  match Dataenv.dead_reason device.Rt.dev_dataenv with
  | Some reason -> raise (Resilience.Device_dead reason)
  | None -> ()

(* Retry-wrap a fallible launch phase under the runtime's policy.  On a
   corrupt-cache fault the artifact's JIT cache entry and any resident
   module are dropped before the retry, so the recovery recompiles —
   visible as a jit_compile event following the fault. *)
let resilient (rt : Rt.t) (device : Rt.device) ~(artifact : Nvcc.artifact) ~label f =
  let driver = device.Rt.dev_driver in
  Resilience.run ~clock:rt.Rt.clock ?trace:rt.Rt.trace ~policy:rt.Rt.fault_policy
    ~on_fault:(fun _site kind ->
      match kind with
      | Faults.Corrupt_cache ->
        Nvcc.invalidate ~jit_cache:driver.Driver.jit_cache artifact;
        Hashtbl.remove driver.Driver.modules artifact.Nvcc.art_hash
      | Faults.Transient | Faults.Fatal -> ())
    ~label f

(* [translated] marks kernels produced by the OMPi translator (as
   opposed to hand-written CUDA); they carry the extra runtime machinery
   and the occupancy penalty hook. *)
let launch (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string) ~(num_teams : int)
    ~(num_threads : int) ~(args : arg list) ?(translated = true) ?(block_filter : (int -> bool) option)
    () : result =
  let device = Rt.device rt dev in
  check_alive device;
  (* Phase 1: loading. *)
  let artifact = Rt.find_kernel rt ~dev kernel_file in
  let modul =
    phase rt "load"
      ~args:[ ("kernel_file", Perf.Trace.Str kernel_file) ]
      (fun () ->
        resilient rt device ~artifact ~label:"load" (fun () ->
            Driver.load_module device.Rt.dev_driver artifact))
  in
  (* Phase 2: parameter preparation. *)
  let values =
    phase rt "parameter_preparation"
      ~args:[ ("nargs", Perf.Trace.Int (List.length args)) ]
      (fun () ->
        List.map
          (function
            | Scalar v -> v
            | Mapped haddr ->
              let daddr = Dataenv.lookup_exn device.Rt.dev_dataenv haddr in
              Value.ptr ~ty:Cty.Void daddr)
          args)
  in
  (* Phase 3: launch. *)
  let grid, block = Rt.geometry ~num_teams ~num_threads in
  let total_blocks = Simt.dim3_total grid in
  let occupancy_penalty = if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0 in
  let block_filter =
    match block_filter with
    | Some _ -> block_filter
    | None -> Rt.sampling_filter ~total_blocks rt.Rt.sample_max_blocks
  in
  let stats =
    phase rt "launch"
      ~args:[ ("entry", Perf.Trace.Str entry) ]
      (fun () ->
        resilient rt device ~artifact ~label:"launch" (fun () ->
            Driver.launch_kernel device.Rt.dev_driver ~modul ~entry ~grid ~block ~args:values
              ~install_builtins:Devrt.Api.install ?block_filter ~occupancy_penalty ()))
  in
  { r_stats = stats; r_output = Driver.take_output device.Rt.dev_driver }

(* Typed-parameter variant used by OCaml-level callers: the kernel entry
   declares pointer parameter types; coerce the raw device addresses so
   that pointer arithmetic inside the kernel uses the right element
   size. *)
let launch_typed (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string)
    ~(num_teams : int) ~(num_threads : int) ~(args : arg list) ?(translated = true)
    ?(block_filter : (int -> bool) option) () : result =
  let device = Rt.device rt dev in
  check_alive device;
  let artifact = Rt.find_kernel rt ~dev kernel_file in
  let modul =
    phase rt "load"
      ~args:[ ("kernel_file", Perf.Trace.Str kernel_file) ]
      (fun () ->
        resilient rt device ~artifact ~label:"load" (fun () ->
            Driver.load_module device.Rt.dev_driver artifact))
  in
  let entry_fn = Driver.get_function modul entry in
  let params = entry_fn.Minic.Ast.f_params in
  if List.length params <> List.length args then
    Rt.ort_error "kernel '%s' expects %d parameters, got %d" entry (List.length params)
      (List.length args);
  let values =
    phase rt "parameter_preparation"
      ~args:[ ("nargs", Perf.Trace.Int (List.length args)) ]
      (fun () ->
        List.map2
          (fun (_, pty) a ->
            match a with
            | Scalar v -> Value.cast (Cty.decay pty) v
            | Mapped haddr ->
              let daddr = Dataenv.lookup_exn device.Rt.dev_dataenv haddr in
              (match Cty.decay pty with
              | Cty.Ptr elt -> Value.ptr ~ty:elt daddr
              | ty -> Rt.ort_error "mapped argument bound to non-pointer kernel parameter %s" (Cty.show ty)))
          params args)
  in
  let grid, block = Rt.geometry ~num_teams ~num_threads in
  let total_blocks = Simt.dim3_total grid in
  let occupancy_penalty = if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0 in
  let block_filter =
    match block_filter with
    | Some _ -> block_filter
    | None -> Rt.sampling_filter ~total_blocks rt.Rt.sample_max_blocks
  in
  let stats =
    phase rt "launch"
      ~args:[ ("entry", Perf.Trace.Str entry) ]
      (fun () ->
        resilient rt device ~artifact ~label:"launch" (fun () ->
            Driver.launch_kernel device.Rt.dev_driver ~modul ~entry ~grid ~block ~args:values
              ~install_builtins:Devrt.Api.install ?block_filter ~occupancy_penalty ()))
  in
  { r_stats = stats; r_output = Driver.take_output device.Rt.dev_driver }
