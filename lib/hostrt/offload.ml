(* The cudadev host module's central operation: kernel launch in three
   phases (paper §4.2.1):
   1. loading    — locate the kernel file, load (JIT if PTX) the module;
   2. parameters — translate each host argument to its device image
                   through the data environment;
   3. launch     — set grid/block dimensions and call cuLaunchKernel. *)

open Machine
open Gpusim

type arg =
  | Mapped of Addr.t (* host address of a mapped variable: passed as device pointer *)
  | Scalar of Value.t (* passed by value *)

type result = { r_stats : Driver.launch_stats; r_output : string }

(* The three phases are spans in the launch trace (category "launch"),
   named exactly as the paper names them, so phase-level overheads can
   be measured and regression-tested. *)
let phase (rt : Rt.t) ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  match rt.Rt.trace with
  | Some tr -> Perf.Trace.with_span tr ~args ~cat:"launch" name f
  | None -> f ()

(* Launching on a device that was declared dead is pointless: fail fast
   so the caller (ort_offload) takes the host fallback path. *)
let check_alive (device : Rt.device) : unit =
  match Dataenv.dead_reason device.Rt.dev_dataenv with
  | Some reason -> raise (Resilience.Device_dead reason)
  | None -> ()

(* Retry-wrap a fallible launch phase under the runtime's policy.  On a
   corrupt-cache fault the artifact's JIT cache entry and any resident
   module are dropped before the retry, so the recovery recompiles —
   visible as a jit_compile event following the fault. *)
let resilient (rt : Rt.t) (device : Rt.device) ~(artifact : Nvcc.artifact) ~label f =
  let driver = device.Rt.dev_driver in
  Resilience.run ~clock:rt.Rt.clock ?trace:rt.Rt.trace ~policy:rt.Rt.fault_policy
    ~on_fault:(fun _site kind ->
      match kind with
      | Faults.Corrupt_cache ->
        (* drops the disk-cache entry AND the resident module (whose
           closure-compiled kernels came from the corrupt entry), so
           the retry re-JITs the PTX and re-runs the closure compile *)
        Nvcc.invalidate ~jit_cache:driver.Driver.jit_cache ~modules:driver.Driver.modules
          artifact
      | Faults.Transient | Faults.Fatal -> ())
    ~label f

(* Phase 1 (loading), shared by every launch flavour: locate the kernel
   file and load (JIT if PTX) the module, retry-wrapped. *)
let load_phase (rt : Rt.t) (device : Rt.device) ~(kernel_file : string) :
    Nvcc.artifact * Driver.loaded_module =
  let artifact = Rt.find_kernel rt ~dev:device.Rt.dev_id kernel_file in
  let modul =
    phase rt "load"
      ~args:[ ("kernel_file", Perf.Trace.Str kernel_file) ]
      (fun () ->
        resilient rt device ~artifact ~label:"load" (fun () ->
            Driver.load_module device.Rt.dev_driver artifact))
  in
  (artifact, modul)

(* Steady-state fast path: when the same (kernel file, entry) launches
   again and its module is still resident in the driver, the cached
   artifact/module handles are reused and the loading phase collapses to
   nothing — not even the residency-check driver call — leaving only the
   launch phase.  Validity is re-checked against the driver's module
   table on every hit, so context resets and corrupt-cache invalidation
   (which clear/remove modules) transparently fall back to the full
   path.  A module_resident instant is still emitted so traces keep
   showing the residency of the relaunch. *)
let try_fast_path (rt : Rt.t) (device : Rt.device) ~(kernel_file : string) ~(entry : string) :
    Rt.launch_cache option =
  match device.Rt.dev_launch_cache with
  | Some c
    when String.equal c.Rt.lc_file kernel_file
         && String.equal c.Rt.lc_entry entry
         && Hashtbl.mem device.Rt.dev_driver.Driver.modules c.Rt.lc_artifact.Nvcc.art_hash ->
    c.Rt.lc_hits <- c.Rt.lc_hits + 1;
    (match rt.Rt.trace with
    | Some tr ->
      Perf.Trace.instant tr ~cat:"load" "module_resident"
        ~args:[ ("module", Perf.Trace.Str c.Rt.lc_artifact.Nvcc.art_name) ];
      Perf.Trace.instant tr ~cat:"launch" "launch_fast_path"
        ~args:[ ("entry", Perf.Trace.Str entry); ("hits", Perf.Trace.Int c.Rt.lc_hits) ]
    | None -> ());
    Some c
  | _ -> None

(* (Re)fill the cache slot after a full-path launch, sizing the
   parameter buffer for this entry. *)
let cache_launch (device : Rt.device) ~kernel_file ~entry ~artifact ~modul ~(nargs : int) : unit =
  device.Rt.dev_launch_cache <-
    Some
      {
        Rt.lc_file = kernel_file;
        lc_entry = entry;
        lc_artifact = artifact;
        lc_modul = modul;
        lc_params = Array.make (max 1 nargs) (Value.of_int 0);
        lc_hits = 0;
      }

(* Write the translated arguments into the cache's preallocated buffer
   (resizing only if the arity changed) and hand back the launch list. *)
let reuse_params (c : Rt.launch_cache) (values : Value.t list) : Value.t list =
  let n = List.length values in
  if Array.length c.Rt.lc_params <> n then c.Rt.lc_params <- Array.make (max 1 n) (Value.of_int 0);
  List.iteri (fun i v -> c.Rt.lc_params.(i) <- v) values;
  Array.to_list c.Rt.lc_params

(* [translated] marks kernels produced by the OMPi translator (as
   opposed to hand-written CUDA); they carry the extra runtime machinery
   and the occupancy penalty hook. *)
let launch (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string) ~(num_teams : int)
    ~(num_threads : int) ~(args : arg list) ?(translated = true) ?(block_filter : (int -> bool) option)
    () : result =
  let device = Rt.device rt dev in
  check_alive device;
  let fast = try_fast_path rt device ~kernel_file ~entry in
  (* Phase 1: loading (skipped entirely on the fast path). *)
  let artifact, modul =
    match fast with
    | Some c -> (c.Rt.lc_artifact, c.Rt.lc_modul)
    | None -> load_phase rt device ~kernel_file
  in
  (* Phase 2: parameter preparation (on the fast path the translation
     lands in the cache's preallocated buffer, without the phase span). *)
  let mk_values () =
    List.map
      (function
        | Scalar v -> v
        | Mapped haddr ->
          let daddr = Dataenv.lookup_exn device.Rt.dev_dataenv haddr in
          Value.ptr ~ty:Cty.Void daddr)
      args
  in
  let values =
    match fast with
    | Some c -> reuse_params c (mk_values ())
    | None ->
      phase rt "parameter_preparation" ~args:[ ("nargs", Perf.Trace.Int (List.length args)) ] mk_values
  in
  if Option.is_none fast then
    cache_launch device ~kernel_file ~entry ~artifact ~modul ~nargs:(List.length args);
  (* Phase 3: launch. *)
  let grid, block = Rt.geometry ~num_teams ~num_threads in
  let total_blocks = Simt.dim3_total grid in
  let occupancy_penalty = if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0 in
  let block_filter =
    match block_filter with
    | Some _ -> block_filter
    | None -> Rt.sampling_filter ~total_blocks rt.Rt.sample_max_blocks
  in
  let stats =
    phase rt "launch"
      ~args:[ ("entry", Perf.Trace.Str entry) ]
      (fun () ->
        resilient rt device ~artifact ~label:"launch" (fun () ->
            Driver.launch_kernel device.Rt.dev_driver ~modul ~entry ~grid ~block ~args:values
              ~install_builtins:Devrt.Api.install ?block_filter ~occupancy_penalty ()))
  in
  { r_stats = stats; r_output = Driver.take_output device.Rt.dev_driver }

(* A `target ... nowait` region's mapped operand: the region owns its
   whole map/launch/unmap sequence, so the maps travel with the launch
   instead of arriving as separate ort_map calls. *)
type async_map = { am_base : Addr.t; am_bytes : int; am_map : Dataenv.map_type }

(* Host byte ranges a region reads and writes, per its map clauses: the
   dependency tracker serializes regions whose ranges intersect.  Alloc
   moves no host data but shares the (refcounted) device buffer with any
   overlapping mapping, so it counts as a write to stay serialized. *)
let access_sets (maps : async_map list) : Async.range list * Async.range list =
  let range m = Async.range_of_addr m.am_base ~bytes:m.am_bytes in
  let reads =
    List.filter_map
      (fun m -> match m.am_map with Dataenv.To | Dataenv.Tofrom -> Some (range m) | _ -> None)
      maps
  in
  let writes =
    List.filter_map
      (fun m ->
        match m.am_map with
        | Dataenv.From | Dataenv.Tofrom | Dataenv.Alloc -> Some (range m)
        | Dataenv.To -> None)
      maps
  in
  (reads, writes)

(* Asynchronous launch (`target ... nowait`): the region is submitted to
   the device's stream tracker, which serializes it behind conflicting
   in-flight regions and otherwise overlaps it with them.  The submitted
   work maps the operands, launches, and unmaps — all on one stream.
   Returns the device-side printf output (available immediately: memory
   effects are eager).  Raises [Resilience.Device_dead] like the sync
   path; the caller takes the host-fallback route. *)
let launch_nowait (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string)
    ~(num_teams : int) ~(num_threads : int) ~(maps : async_map list) ?(translated = true) () :
    string =
  let device = Rt.device rt dev in
  check_alive device;
  let denv = device.Rt.dev_dataenv in
  (* Phase 1 (loading) is a CPU-side driver call: synchronous, as in the
     sync path. *)
  let artifact, modul = load_phase rt device ~kernel_file in
  let entry_fn = Driver.get_function modul entry in
  let params = entry_fn.Minic.Ast.f_params in
  if List.length params <> List.length maps then
    Rt.ort_error "kernel '%s' expects %d parameters, got %d maps" entry (List.length params)
      (List.length maps);
  let reads, writes = access_sets maps in
  Async.submit device.Rt.dev_async ~label:entry ~reads ~writes (fun stream ->
      (* Phase 2: map the operands on this stream and coerce the device
         addresses against the kernel's parameter types. *)
      let values =
        phase rt "parameter_preparation"
          ~args:[ ("nargs", Perf.Trace.Int (List.length maps)) ]
          (fun () ->
            List.map2
              (fun (_, pty) m ->
                let daddr = Dataenv.map_async denv ~stream m.am_base ~bytes:m.am_bytes m.am_map in
                match Cty.decay pty with
                | Cty.Ptr elt -> Value.ptr ~ty:elt daddr
                | ty ->
                  Rt.ort_error "mapped argument bound to non-pointer kernel parameter %s"
                    (Cty.show ty))
              params maps)
      in
      (* The maps may have exhausted their retries and killed the device;
         launching on host addresses would be meaningless. *)
      (match Dataenv.dead_reason denv with
      | Some reason -> raise (Resilience.Device_dead reason)
      | None -> ());
      (* Phase 3: enqueue the launch behind the transfers. *)
      let grid, block = Rt.geometry ~num_teams ~num_threads in
      let total_blocks = Simt.dim3_total grid in
      let occupancy_penalty =
        if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0
      in
      let block_filter = Rt.sampling_filter ~total_blocks rt.Rt.sample_max_blocks in
      let _stats =
        phase rt "launch"
          ~args:[ ("entry", Perf.Trace.Str entry) ]
          (fun () ->
            resilient rt device ~artifact ~label:"launch" (fun () ->
                Driver.launch_kernel_async device.Rt.dev_driver ~stream ~modul ~entry ~grid ~block
                  ~args:values ~install_builtins:Devrt.Api.install ?block_filter ~occupancy_penalty
                  ()))
      in
      (* Copy-backs, reverse map order (mirrors the sync lowering). *)
      List.iter (fun m -> Dataenv.unmap_async denv ~stream m.am_base m.am_map) (List.rev maps);
      Driver.take_output device.Rt.dev_driver)

(* Barrier over every queued nowait region of [dev] (ort_taskwait and
   the end-of-data-environment barrier). *)
let taskwait (rt : Rt.t) ~(dev : int) : unit = Async.wait_all (Rt.device rt dev).Rt.dev_async

(* Device died with regions queued: drop the queue on a coherent
   timeline before running the host fallback. *)
let quiesce (rt : Rt.t) ~(dev : int) : unit = Async.quiesce (Rt.device rt dev).Rt.dev_async

(* Typed-parameter variant used by OCaml-level callers: the kernel entry
   declares pointer parameter types; coerce the raw device addresses so
   that pointer arithmetic inside the kernel uses the right element
   size. *)
let launch_typed (rt : Rt.t) ~(dev : int) ~(kernel_file : string) ~(entry : string)
    ~(num_teams : int) ~(num_threads : int) ~(args : arg list) ?(translated = true)
    ?(block_filter : (int -> bool) option) () : result =
  let device = Rt.device rt dev in
  check_alive device;
  let fast = try_fast_path rt device ~kernel_file ~entry in
  let artifact, modul =
    match fast with
    | Some c -> (c.Rt.lc_artifact, c.Rt.lc_modul)
    | None -> load_phase rt device ~kernel_file
  in
  let entry_fn = Driver.get_function modul entry in
  let params = entry_fn.Minic.Ast.f_params in
  if List.length params <> List.length args then
    Rt.ort_error "kernel '%s' expects %d parameters, got %d" entry (List.length params)
      (List.length args);
  let mk_values () =
    List.map2
      (fun (_, pty) a ->
        match a with
        | Scalar v -> Value.cast (Cty.decay pty) v
        | Mapped haddr ->
          let daddr = Dataenv.lookup_exn device.Rt.dev_dataenv haddr in
          (match Cty.decay pty with
          | Cty.Ptr elt -> Value.ptr ~ty:elt daddr
          | ty -> Rt.ort_error "mapped argument bound to non-pointer kernel parameter %s" (Cty.show ty)))
      params args
  in
  let values =
    match fast with
    | Some c -> reuse_params c (mk_values ())
    | None ->
      phase rt "parameter_preparation" ~args:[ ("nargs", Perf.Trace.Int (List.length args)) ] mk_values
  in
  if Option.is_none fast then
    cache_launch device ~kernel_file ~entry ~artifact ~modul ~nargs:(List.length args);
  let grid, block = Rt.geometry ~num_teams ~num_threads in
  let total_blocks = Simt.dim3_total grid in
  let occupancy_penalty = if translated then rt.Rt.translated_kernel_penalty total_blocks else 1.0 in
  let block_filter =
    match block_filter with
    | Some _ -> block_filter
    | None -> Rt.sampling_filter ~total_blocks rt.Rt.sample_max_blocks
  in
  let stats =
    phase rt "launch"
      ~args:[ ("entry", Perf.Trace.Str entry) ]
      (fun () ->
        resilient rt device ~artifact ~label:"launch" (fun () ->
            Driver.launch_kernel device.Rt.dev_driver ~modul ~entry ~grid ~block ~args:values
              ~install_builtins:Devrt.Api.install ?block_filter ~occupancy_penalty ()))
  in
  { r_stats = stats; r_output = Driver.take_output device.Rt.dev_driver }
