(* Executes a translated host program (mini-C) under the interpreter,
   with the ORT runtime entry points installed as builtins.  This is the
   execution half of `ompirun`: the translator turns target constructs
   into ort_* calls, and those calls land here, driving the data
   environment and the simulated device. *)

open Machine
open Minic

exception Host_error of string

let host_error fmt = Format.kasprintf (fun s -> raise (Host_error s)) fmt

type run_result = { rr_output : string; rr_exit : int; rr_time_s : float }

let int_arg = Value.to_int

let install_ort_builtins (rt : Rt.t) (ctx : Cinterp.Interp.t) : unit =
  let reg name fn = Cinterp.Interp.register_builtin ctx name fn in
  (* Generated ort_* calls carry a device id: -1 = "the current default
     device" (resolved here, so omp_set_default_device takes effect at
     call time), n >= 0 = an explicit device(n) clause.  A device number
     beyond omp_get_num_devices() raises a graceful Map_error — the
     directive is well-formed, the runtime just has no such device. *)
  let resolve_dev raw =
    if raw < 0 then Rt.get_default_device rt
    else if raw >= Rt.num_devices rt then
      raise
        (Dataenv.Map_error
           (Printf.sprintf "device(%d): no such device (omp_get_num_devices() = %d)" raw
              (Rt.num_devices rt)))
    else raw
  in
  let dev_of args =
    match args with
    | d :: rest -> (resolve_dev (int_arg d), rest)
    | [] -> host_error "missing device argument"
  in
  (* ort_offload keeps the raw id too: only default-device launches are
     eligible for multi-device sharding — device(n) pins the region. *)
  let raw_dev_of args =
    match args with
    | d :: rest -> (int_arg d, rest)
    | [] -> host_error "missing device argument"
  in
  reg "ort_map" (fun _ args ->
      let dev, args = dev_of args in
      match args with
      | [ h; bytes; mt ] ->
        let device = Rt.device rt dev in
        let mt, always = Dataenv.decode_map_code (int_arg mt) in
        let daddr =
          Dataenv.map ~always device.Rt.dev_dataenv (Value.as_addr h) ~bytes:(int_arg bytes) mt
        in
        Value.ptr daddr
      | _ -> host_error "ort_map: bad arguments");
  reg "ort_unmap" (fun _ args ->
      let dev, args = dev_of args in
      match args with
      | [ h; mt ] ->
        let device = Rt.device rt dev in
        let mt, always = Dataenv.decode_map_code (int_arg mt) in
        Dataenv.unmap ~always device.Rt.dev_dataenv (Value.as_addr h) mt;
        Value.VVoid
      | _ -> host_error "ort_unmap: bad arguments");
  reg "ort_update_to" (fun _ args ->
      let dev, args = dev_of args in
      match args with
      | [ h; bytes ] ->
        Dataenv.update_to (Rt.device rt dev).Rt.dev_dataenv (Value.as_addr h) ~bytes:(int_arg bytes);
        Value.VVoid
      | _ -> host_error "ort_update_to: bad arguments");
  reg "ort_update_from" (fun _ args ->
      let dev, args = dev_of args in
      match args with
      | [ h; bytes ] ->
        Dataenv.update_from (Rt.device rt dev).Rt.dev_dataenv (Value.as_addr h) ~bytes:(int_arg bytes);
        Value.VVoid
      | _ -> host_error "ort_update_from: bad arguments");
  (* Returns 1 when the kernel ran on the device, 0 when the device is
     (or has just been declared) dead — generated host code then runs
     the target region's sequential body inline:
       if (!ort_offload(...)) { <stripped region body> } *)
  reg "ort_offload" (fun ctx args ->
      let raw, args = raw_dev_of args in
      let dev = resolve_dev raw in
      match args with
      | file :: entry :: teams :: threads :: kargs ->
        let kernel_file = Cinterp.Interp.read_c_string ctx (Value.as_addr file) in
        let entry = Cinterp.Interp.read_c_string ctx (Value.as_addr entry) in
        let device = Rt.device rt dev in
        let fallback reason =
          Dataenv.declare_dead device.Rt.dev_dataenv ~reason;
          (match rt.Rt.trace with
          | Some tr ->
            Perf.Trace.instant tr ~cat:"fault" "host_fallback"
              ~args:
                [
                  ("kernel_file", Perf.Trace.Str kernel_file);
                  ("reason", Perf.Trace.Str reason);
                ]
          | None -> ());
          Value.of_int 0
        in
        (try
           let args = List.map (fun v -> Offload.Mapped (Value.as_addr v)) kargs in
           let num_teams = int_arg teams and num_threads = int_arg threads in
           let output =
             (* default-device launches shard across the farm; an
                explicit device(n) pins the region to that device *)
             if raw < 0 then
               (Multidev.launch rt ~dev ~kernel_file ~entry ~num_teams ~num_threads ~args
                  ~translated:true ())
                 .Multidev.r_output
             else
               (Offload.launch_typed rt ~dev ~kernel_file ~entry ~num_teams ~num_threads ~args
                  ~translated:true ())
                 .Offload.r_output
           in
           Buffer.add_string ctx.Cinterp.Interp.output output;
           Value.of_int 1
         with Resilience.Device_dead reason -> fallback reason)
      | _ -> host_error "ort_offload: bad arguments");
  (* Asynchronous variant for `target ... nowait`: the region's maps
     travel with the call as (base, bytes, map_type) triples —
       ort_offload_nowait(dev, file, entry, teams, threads,
                          base1, bytes1, mt1, ..., basek, bytesk, mtk)
     — because the whole map/launch/unmap sequence is enqueued as one
     stream task.  Same 1/0 protocol as ort_offload: on device death the
     queue is quiesced and 0 routes the generated code to the inline
     sequential body. *)
  reg "ort_offload_nowait" (fun ctx args ->
      let dev, args = dev_of args in
      match args with
      | file :: entry :: teams :: threads :: mapargs ->
        let kernel_file = Cinterp.Interp.read_c_string ctx (Value.as_addr file) in
        let entry = Cinterp.Interp.read_c_string ctx (Value.as_addr entry) in
        let device = Rt.device rt dev in
        let rec triples = function
          | [] -> []
          | base :: bytes :: mt :: rest ->
            {
              Offload.am_base = Value.as_addr base;
              am_bytes = int_arg bytes;
              (* async path ignores the always bit (no elision there anyway) *)
              am_map = fst (Dataenv.decode_map_code (int_arg mt));
            }
            :: triples rest
          | _ -> host_error "ort_offload_nowait: map arguments not in (base, bytes, type) triples"
        in
        let maps = triples mapargs in
        let fallback reason =
          Offload.quiesce rt ~dev;
          Dataenv.declare_dead device.Rt.dev_dataenv ~reason;
          (match rt.Rt.trace with
          | Some tr ->
            Perf.Trace.instant tr ~cat:"fault" "host_fallback"
              ~args:
                [
                  ("kernel_file", Perf.Trace.Str kernel_file);
                  ("reason", Perf.Trace.Str reason);
                ]
          | None -> ());
          Value.of_int 0
        in
        (try
           let output =
             Offload.launch_nowait rt ~dev ~kernel_file ~entry ~num_teams:(int_arg teams)
               ~num_threads:(int_arg threads) ~maps ~translated:true ()
           in
           Buffer.add_string ctx.Cinterp.Interp.output output;
           Value.of_int 1
         with Resilience.Device_dead reason -> fallback reason)
      | _ -> host_error "ort_offload_nowait: bad arguments");
  reg "ort_taskwait" (fun _ args ->
      match args with
      | [] | [ _ ] ->
        (* generated code passes the device id; the -1 sentinel (and a
           bare call) drains every device's queue *)
        let dev = match args with [ d ] -> int_arg d | _ -> -1 in
        if dev < 0 then
          Array.iter (fun (d : Rt.device) -> Offload.taskwait rt ~dev:d.Rt.dev_id) rt.Rt.devices
        else Offload.taskwait rt ~dev:(resolve_dev dev);
        Value.VVoid
      | _ -> host_error "ort_taskwait: bad arguments");
  reg "omp_get_wtime" (fun _ _ -> Value.flt ~ty:Cty.Double (Rt.now_s rt));
  reg "omp_get_num_devices" (fun _ _ -> Value.of_int (Rt.num_devices rt));
  reg "omp_set_default_device" (fun _ args ->
      match args with
      | [ d ] ->
        Rt.set_default_device rt (int_arg d);
        Value.VVoid
      | _ -> host_error "omp_set_default_device: bad arguments");
  reg "omp_get_default_device" (fun _ _ -> Value.of_int (Rt.get_default_device rt));
  reg "omp_is_initial_device" (fun _ _ -> Value.of_int 1);
  (* The host side runs the program single-threaded (host parallelism is
     outside the paper's scope); the API remains available. *)
  reg "omp_get_thread_num" (fun _ _ -> Value.of_int 0);
  reg "omp_get_num_threads" (fun _ _ -> Value.of_int 1);
  reg "malloc" (fun _ args ->
      match args with
      | [ n ] -> Value.ptr ~ty:Cty.Void (Mem.alloc rt.Rt.host_mem (int_arg n))
      | _ -> host_error "malloc: bad arguments");
  reg "free" (fun _ args ->
      match args with
      | [ p ] ->
        Mem.free rt.Rt.host_mem (Value.as_addr p);
        Value.VVoid
      | _ -> host_error "free: bad arguments")

let make_context (rt : Rt.t) (program : Ast.program) : Cinterp.Interp.t =
  let structs = Cty.create_layout_env () in
  let funcs = Hashtbl.create 32 in
  let resolve = function
    | Addr.Host -> rt.Rt.host_mem
    | Addr.Global ->
      (* Direct dereferences of device pointers from host code are a bug
         in the translated program; unified memory is not modelled. *)
      host_error "host code dereferenced a device pointer"
    | Addr.Shared _ | Addr.Local _ -> host_error "host code accessed device-internal memory"
    | Addr.Strings -> host_error "unreachable: string arena is resolved inside the interpreter"
  in
  (* host locals also live in host memory *)
  let ctx = Cinterp.Interp.create ~structs ~funcs ~resolve ~local:rt.Rt.host_mem () in
  Cinterp.Interp.install_common_builtins ctx;
  install_ort_builtins rt ctx;
  (* charge host execution to the simulated clock *)
  let cost = Rt.host_step_cost_ns rt in
  ctx.Cinterp.Interp.on_step <- (fun _ -> Simclock.advance_ns rt.Rt.clock cost);
  Cinterp.Interp.load_program ctx program;
  (* allocate and initialise host globals *)
  Cinterp.Interp.push_frame ctx;
  List.iter
    (function
      | Ast.Gvar (d, _) ->
        let addr = Mem.alloc rt.Rt.host_mem (Cty.sizeof structs d.Ast.d_ty) in
        Cinterp.Interp.register_global ctx d.Ast.d_name d.Ast.d_ty addr;
        Option.iter (fun init -> Cinterp.Interp.exec_init ctx addr d.Ast.d_ty init) d.Ast.d_init
      | Ast.Gfun _ | Ast.Gstruct _ | Ast.Gfundecl _ | Ast.Gpragma _ -> ())
    program;
  ctx

(* Run [entry] (default "main") of a translated host program. *)
let run (rt : Rt.t) (program : Ast.program) ?(entry = "main") ?(args = []) () : run_result =
  let ctx = make_context rt program in
  let t0 = Rt.now_s rt in
  let fd =
    match Hashtbl.find_opt ctx.Cinterp.Interp.funcs entry with
    | Some fd -> fd
    | None -> host_error "host program has no '%s' function" entry
  in
  let ret = Cinterp.Interp.call_fundef ctx fd args in
  (* Implicit end-of-program barrier: nowait regions still queued when
     the entry returns complete here, so the reported simulated time
     covers them. *)
  Array.iter (fun (d : Rt.device) -> Async.wait_all d.Rt.dev_async) rt.Rt.devices;
  let exit_code = match ret with Value.VVoid -> 0 | v -> Value.to_int v in
  {
    rr_output = Buffer.contents ctx.Cinterp.Interp.output;
    rr_exit = exit_code;
    rr_time_s = Rt.now_s rt -. t0;
  }
