(** Device data environment (paper sections 2 and 4.2.1): tracks which
    host ranges are mapped to device memory, with OpenMP
    present/refcount semantics:

    - mapping an already-present range only increments its refcount (no
      transfer) — this is what makes [target data] regions effective at
      eliminating redundant movement;
    - the final unmap performs the from/tofrom copy-back and frees the
      device buffer;
    - [target update] moves data for present ranges without touching
      refcounts.

    Three unified-memory strategies sit on top (the Nano's CPU and GPU
    share DRAM).  Every mapping runs in one of three modes, fixed at its
    cold map: copy (the classic protocol), elide (released buffers park
    in a small resident cache, copies are skipped whole-buffer or
    page-wise where host and device images provably agree), and
    zero-copy (the map pins the host range so kernels address it in
    place — no device buffer, no copies).  The mode comes either from
    the forced run-level flags ({!set_elide} / {!set_zerocopy}) or, under
    {!set_mem_mode} [Auto], from the per-buffer {!Mempolicy} cost model
    fed by observed history; every cold map emits a cat:"mem"
    "policy_decide" trace instant.  A map with the [always] modifier
    forces the transfers regardless.

    Fallible driver calls are retried under a {!Resilience.policy}; when
    one still fails the device is declared dead: live from/tofrom
    mappings are salvaged back to the host and every later operation
    degrades to a host-memory no-op, so execution continues on the
    sequential fallback path. *)

open Machine
open Gpusim

exception Map_error of string

type map_type = Alloc | To | From | Tofrom

val pp_map_type : Format.formatter -> map_type -> unit

val show_map_type : map_type -> string

val equal_map_type : map_type -> map_type -> bool

(** Decode the integer codes used by the generated ort_map calls
    (0 alloc, 1 to, 2 from, 3 tofrom). *)
val map_type_of_int : int -> map_type

(** Decode a full ort_map code: two-bit map type plus the [always]
    modifier as bit 4. *)
val decode_map_code : int -> map_type * bool

type t

val create : host:Mem.t -> driver:Driver.t -> t

(** Map a host range; returns the corresponding device address.
    Present ranges are reference-counted and reused.  [always] forces
    the to/tofrom transfer even when the range is present or provably
    clean in the resident cache. *)
val map : ?always:bool -> t -> Addr.t -> bytes:int -> map_type -> Addr.t

(** Decrement; on the final release perform the map type's copy-back and
    free (or, under elision, park) the device buffer.  [always] forces
    the from/tofrom copy-back on every decrement.
    @raise Map_error if the final release hits a range with async work
    still in flight (missing taskwait) *)
val unmap : ?always:bool -> t -> Addr.t -> map_type -> unit

(** {1 Unified-memory optimisations} *)

(** Enable transfer elision: released device buffers are parked in a
    small resident cache, and h2d/d2h copies are skipped when host and
    device images provably agree (host side: digest at last sync point;
    device side: the driver's per-allocation store counts and write
    epoch).  Off by default. *)
val set_elide : t -> bool -> unit

(** Enable zero-copy mapping: a map pins the host range
    (cuMemHostRegister) and returns the host address itself — kernels
    access the shared DRAM in place, paying the uncached-access cost
    instead of copy time.  Off by default. *)
val set_zerocopy : t -> bool -> unit

(** Select the memory-mode policy: [Auto] decides per buffer via
    {!Mempolicy}; [Forced m] behaves like the corresponding run-level
    flag ([Forced Copy] clears both). *)
val set_mem_mode : t -> Mempolicy.sel -> unit

val mem_mode : t -> Mempolicy.sel

(** Granularity of per-page dirty tracking (default
    {!default_page_bytes}); tests shrink it to exercise page-boundary
    behaviour without megabyte buffers.
    @raise Invalid_argument on a non-positive size *)
val set_page_bytes : t -> int -> unit

val page_bytes : t -> int

val default_page_bytes : int

type stats = {
  elided_h2d : int;  (** whole-buffer h2d elisions *)
  elided_d2h : int;  (** whole-buffer d2h elisions *)
  elided_h2d_pages : int;  (** clean pages skipped by partial h2d / update-to *)
  elided_d2h_pages : int;  (** clean pages skipped by partial d2h / update-from *)
  elided_update_to : int;  (** [target update to] fully elided *)
  elided_update_from : int;  (** [target update from] fully elided *)
  zerocopy_accesses : int;
}

val stats : t -> stats

(** Per-buffer tally of cold-map mode decisions, sorted by host offset:
    ((off, bytes), [(mode_name, count); ...]). *)
val policy_decisions : t -> ((int * int) * (string * int) list) list

(** Distinct modes decided across all buffers of this environment. *)
val policy_modes_used : t -> Mempolicy.mode list

(** Parked buffers currently in the resident cache. *)
val resident_buffers : t -> int

(** Bytes currently parked in the resident cache. *)
val resident_bytes : t -> int

(** Byte budget of the resident cache (default
    {!default_resident_cap_bytes}).  Eviction is byte-accounted — LRU
    buffers are dropped until the parked total fits, and a buffer larger
    than the whole budget is freed instead of parked — so one large
    session cannot flush every small session's parked buffer.  Shrinking
    the budget evicts immediately.
    @raise Invalid_argument on a negative budget *)
val set_resident_cap_bytes : t -> int -> unit

val default_resident_cap_bytes : int

(** {1 Async variants}

    Called from inside a stream task: transfers are enqueued on the
    stream (memory effects eager, costs on the stream's timeline);
    alloc/free stay synchronous.  No pending-range checks — the caller
    is the in-flight work. *)

val map_async : ?always:bool -> t -> stream:Driver.stream -> Addr.t -> bytes:int -> map_type -> Addr.t

val unmap_async : ?always:bool -> t -> stream:Driver.stream -> Addr.t -> map_type -> unit

(** Install the async-awareness hooks (normally done by [Rt] against its
    stream tracker): [pending] answers whether queued stream work
    touches a host range; [sync_range] waits for it; the optional
    [register_pinned]/[unregister_pinned] advertise zero-copy pinned
    ranges so overlapping stream tasks serialize against them.  [unmap]
    refuses a final release on a pending range; [update_to]/[update_from]
    sync the range first. *)
val set_async_hooks :
  ?register_pinned:(Addr.t -> bytes:int -> unit) ->
  ?unregister_pinned:(Addr.t -> bytes:int -> unit) ->
  t ->
  pending:(Addr.t -> bytes:int -> bool) ->
  sync_range:(Addr.t -> bytes:int -> unit) ->
  unit

(** Translate a host address inside a mapped range to its device image. *)
val lookup : t -> Addr.t -> Addr.t option

val lookup_exn : t -> Addr.t -> Addr.t

val is_present : t -> Addr.t -> bytes:int -> bool

val update_to : t -> Addr.t -> bytes:int -> unit

val update_from : t -> Addr.t -> bytes:int -> unit

val active_mappings : t -> int

(** {1 Multi-device sharding support} *)

(** The extent of the present-table entry containing a host address. *)
type extent = { x_host : Addr.t; x_bytes : int; x_zerocopy : bool }

val find_extent : t -> Addr.t -> extent option

(** Bring the host image of the containing entry up to date (d2h) unless
    it provably already is; used before broadcasting an operand to the
    secondary devices of a sharded launch. *)
val refresh_host : t -> Addr.t -> unit

(** {1 Fault handling} *)

(** Set the retry policy used for this environment's driver calls. *)
val set_policy : t -> Resilience.policy -> unit

val is_dead : t -> bool

val dead_reason : t -> string option

(** Declare the device dead (idempotent): emit a "device_dead" trace
    event, salvage live from/tofrom mappings back to host memory, and
    drop the environment.  After this, [map] returns the host address
    unchanged, [unmap]/[update_*] are no-ops, and [lookup] is the
    identity — the host fallback path works on host memory directly.
    [salvage:false] skips the rescue copies, for callers that already
    hold a newer host image of every live mapping (the multi-device
    shard merger). *)
val declare_dead : ?salvage:bool -> t -> reason:string -> unit
