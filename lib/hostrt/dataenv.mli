(** Device data environment (paper sections 2 and 4.2.1): tracks which
    host ranges are mapped to device memory, with OpenMP
    present/refcount semantics:

    - mapping an already-present range only increments its refcount (no
      transfer) — this is what makes [target data] regions effective at
      eliminating redundant movement;
    - the final unmap performs the from/tofrom copy-back and frees the
      device buffer;
    - [target update] moves data for present ranges without touching
      refcounts.

    Fallible driver calls are retried under a {!Resilience.policy}; when
    one still fails the device is declared dead: live from/tofrom
    mappings are salvaged back to the host and every later operation
    degrades to a host-memory no-op, so execution continues on the
    sequential fallback path. *)

open Machine
open Gpusim

exception Map_error of string

type map_type = Alloc | To | From | Tofrom

val pp_map_type : Format.formatter -> map_type -> unit

val show_map_type : map_type -> string

val equal_map_type : map_type -> map_type -> bool

(** Decode the integer codes used by the generated ort_map calls
    (0 alloc, 1 to, 2 from, 3 tofrom). *)
val map_type_of_int : int -> map_type

type t

val create : host:Mem.t -> driver:Driver.t -> t

(** Map a host range; returns the corresponding device address.
    Present ranges are reference-counted and reused. *)
val map : t -> Addr.t -> bytes:int -> map_type -> Addr.t

(** Decrement; on the final release perform the map type's copy-back and
    free the device buffer.
    @raise Map_error if the final release hits a range with async work
    still in flight (missing taskwait) *)
val unmap : t -> Addr.t -> map_type -> unit

(** {1 Async variants}

    Called from inside a stream task: transfers are enqueued on the
    stream (memory effects eager, costs on the stream's timeline);
    alloc/free stay synchronous.  No pending-range checks — the caller
    is the in-flight work. *)

val map_async : t -> stream:Driver.stream -> Addr.t -> bytes:int -> map_type -> Addr.t

val unmap_async : t -> stream:Driver.stream -> Addr.t -> map_type -> unit

(** Install the async-awareness hooks (normally done by [Rt] against its
    stream tracker): [pending] answers whether queued stream work
    touches a host range; [sync_range] waits for it.  [unmap] refuses a
    final release on a pending range; [update_to]/[update_from] sync the
    range first. *)
val set_async_hooks :
  t -> pending:(Addr.t -> bytes:int -> bool) -> sync_range:(Addr.t -> bytes:int -> unit) -> unit

(** Translate a host address inside a mapped range to its device image. *)
val lookup : t -> Addr.t -> Addr.t option

val lookup_exn : t -> Addr.t -> Addr.t

val is_present : t -> Addr.t -> bytes:int -> bool

val update_to : t -> Addr.t -> bytes:int -> unit

val update_from : t -> Addr.t -> bytes:int -> unit

val active_mappings : t -> int

(** {1 Fault handling} *)

(** Set the retry policy used for this environment's driver calls. *)
val set_policy : t -> Resilience.policy -> unit

val is_dead : t -> bool

val dead_reason : t -> string option

(** Declare the device dead (idempotent): emit a "device_dead" trace
    event, salvage live from/tofrom mappings back to host memory, and
    drop the environment.  After this, [map] returns the host address
    unchanged, [unmap]/[update_*] are no-ops, and [lookup] is the
    identity — the host fallback path works on host memory directly. *)
val declare_dead : t -> reason:string -> unit
