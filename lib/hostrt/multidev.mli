(** Multi-device sharding of [distribute] grids.

    When the runtime holds more than one live device and a launch
    targets the default device, the team space is split into contiguous
    per-device shards sized by compute weight.  Every device keeps the
    full grid geometry (global team ids stay correct) and executes only
    its own block range; a three-phase memory protocol (broadcast,
    ascending launches with atomic-byte exchange, merge) keeps the
    result bit-identical to a single-device run.  A dead secondary's
    shard is re-run on the host; a dead primary degrades to the caller's
    whole-region host fallback ({!Resilience.Device_dead}). *)

open Gpusim

type shard = {
  sh_dev : int;  (** device ordinal that owned the shard *)
  sh_lo : int;  (** first linear block, inclusive *)
  sh_hi : int;  (** past-last linear block *)
  sh_stats : Driver.launch_stats option;
      (** [None]: the device died and the shard was re-run on the host *)
}

type result = {
  r_shards : shard list;  (** ascending block order *)
  r_stats : Driver.launch_stats;  (** the primary's shard *)
  r_output : string;  (** concatenated device printf output, shard order *)
}

(** Relative compute throughput of a device spec (cores x clock), the
    weight used to size its shard. *)
val device_weight : Spec.t -> float

(** Split [[0, total_blocks)] into one contiguous non-empty interval per
    weight, sized proportionally.
    @raise Invalid_argument when [total_blocks < Array.length weights]
    or no weights are given *)
val plan : total_blocks:int -> weights:float array -> (int * int) array

(** Sharded launch across every live device.  Falls back to
    {!Offload.launch_typed} on [dev] alone when sharding does not apply
    (single live device, sharding disabled, block sampling active, a
    single-block grid, or an operand not mapped on [dev]).
    Raises {!Resilience.Device_dead} only when the primary [dev] is
    dead — secondary deaths are absorbed by host-fallback shards. *)
val launch :
  Rt.t ->
  dev:int ->
  kernel_file:string ->
  entry:string ->
  num_teams:int ->
  num_threads:int ->
  args:Offload.arg list ->
  ?translated:bool ->
  unit ->
  result
