(* The ORT-style host runtime: device registry with lazy initialisation,
   kernel-file registry (OMPi keeps kernels as separate files located at
   run time, §3.3), and the three-phase kernel launch of the cudadev
   host module (§4.2.1). *)

open Machine
open Gpusim

exception Ort_error of string

let ort_error fmt = Format.kasprintf (fun s -> raise (Ort_error s)) fmt

(* Steady-state launch cache (one slot per device): the last
   (kernel file, entry) launched keeps its artifact/module handles and a
   preallocated parameter buffer so repeated launches of the same kernel
   skip the loading and parameter-preparation phases.  Offload validates
   residency against the driver's module table before every reuse, so
   context resets and corrupt-cache invalidation fall back to the full
   three-phase path. *)
type launch_cache = {
  lc_file : string;
  lc_entry : string;
  lc_artifact : Nvcc.artifact;
  lc_modul : Driver.loaded_module;
  mutable lc_params : Value.t array; (* reused across launches *)
  mutable lc_hits : int;
}

type device = {
  dev_id : int;
  dev_driver : Driver.t;
  dev_dataenv : Dataenv.t;
  dev_async : Async.t; (* stream pool + dependency tracker for nowait regions *)
  (* the "kernel files next to the executable" *)
  dev_kernels : (string, Nvcc.artifact) Hashtbl.t;
  mutable dev_launch_cache : launch_cache option;
  (* dedicated stream for sharded sub-launches, created on first use so
     single-device runs pay nothing *)
  mutable dev_shard_stream : Driver.stream option;
}

type t = {
  clock : Simclock.t;
  host_mem : Mem.t;
  cpu : Spec.cpu;
  devices : device array;
  mutable default_device : int;
  binary_mode : Nvcc.binary_mode;
  (* occupancy penalty applied to translated (OMPi) kernels at large
     grids; the stand-in for the unexplained gemm@2048 gap, cf. DESIGN.md *)
  mutable translated_kernel_penalty : int -> float; (* total_blocks -> factor *)
  (* when set, launches simulate at most this many blocks (evenly
     spaced) and scale the measured counts to the full grid *)
  mutable sample_max_blocks : int option;
  (* launch-phase tracing; [set_trace] propagates it to the drivers *)
  mutable trace : Perf.Trace.t option;
  (* fault injection; [set_faults] installs the hook into the drivers *)
  mutable faults : Faults.t option;
  (* retry/backoff policy; [set_fault_policy] propagates to data envs *)
  mutable fault_policy : Resilience.policy;
  (* shard `distribute` grids across all devices (on by default when the
     runtime is created with more than one device) *)
  mutable shard : bool;
}

(* Evenly-spaced block sampling filter.  The sample is offset by half a
   stride so that boundary blocks (partially guarded out in most
   kernels) are not over-represented. *)
let sampling_filter ~(total_blocks : int) (max_blocks : int option) : (int -> bool) option =
  match max_blocks with
  | None -> None
  | Some k when total_blocks <= k -> None
  | Some k ->
    let stride = (total_blocks + k - 1) / k in
    let offset = stride / 2 in
    Some (fun b -> b mod stride = offset)

let default_penalty _total_blocks = 1.0

let create ?(binary_mode = Nvcc.Cubin) ?(spec = Spec.jetson_nano_2gb) ?(streams = Async.default_streams)
    ?(devices = 1) ?(specs = []) () : t =
  if devices < 1 then ort_error "need at least one device (got %d)" devices;
  let clock = Simclock.create () in
  let host_mem = Mem.create ~initial:(1 lsl 20) ~space:Addr.Host "host" in
  (* Heterogeneous farms: an explicit spec list overrides the shared
     [spec] position by position; missing positions fall back to [spec]. *)
  let spec_of id = match List.nth_opt specs id with Some s -> s | None -> spec in
  let make_device id =
    let driver = Driver.create ~spec:(spec_of id) ~ordinal:id clock in
    let dataenv = Dataenv.create ~host:host_mem ~driver in
    let async = Async.create ~streams driver in
    (* The data environment must refuse to unmap ranges with queued stream
       work, sync ranges before a `target update`, and advertise zero-copy
       pinned ranges so overlapping stream tasks serialize; it talks to
       the tracker through these closures (keeps Dataenv independent of
       Async). *)
    Dataenv.set_async_hooks dataenv
      ~register_pinned:(fun haddr ~bytes ->
        Async.register_pinned async (Async.range_of_addr haddr ~bytes))
      ~unregister_pinned:(fun haddr ~bytes ->
        Async.unregister_pinned async (Async.range_of_addr haddr ~bytes))
      ~pending:(fun haddr ~bytes -> Async.pending_on async (Async.range_of_addr haddr ~bytes) <> [])
      ~sync_range:(fun haddr ~bytes -> Async.sync_range async (Async.range_of_addr haddr ~bytes));
    {
      dev_id = id;
      dev_driver = driver;
      dev_dataenv = dataenv;
      dev_async = async;
      dev_kernels = Hashtbl.create 16;
      dev_launch_cache = None;
      dev_shard_stream = None;
    }
  in
  {
    clock;
    host_mem;
    cpu = Spec.cortex_a57;
    devices = Array.init devices make_device;
    default_device = 0;
    binary_mode;
    translated_kernel_penalty = default_penalty;
    sample_max_blocks = None;
    trace = None;
    faults = None;
    fault_policy = Resilience.default_policy;
    shard = devices > 1;
  }

(* Attach (or detach) a trace ring; devices share the runtime's ring so
   host- and device-side events interleave on one timeline. *)
let set_trace t (trace : Perf.Trace.t option) : unit =
  t.trace <- trace;
  Array.iter (fun d -> Driver.set_trace d.dev_driver trace) t.devices

(* Arm (or disarm) fault injection by installing the injector's hook
   into every device driver. *)
let set_faults t (faults : Faults.t option) : unit =
  t.faults <- faults;
  let hook = Option.map (fun f s -> Faults.hook f s) faults in
  Array.iter (fun d -> Driver.set_inject d.dev_driver hook) t.devices

let set_fault_policy t (policy : Resilience.policy) : unit =
  t.fault_policy <- policy;
  Array.iter (fun d -> Dataenv.set_policy d.dev_dataenv policy) t.devices

(* Resize every device's stream pool (the --streams N CLI knob). *)
let set_streams t (n : int) : unit = Array.iter (fun d -> Async.set_streams d.dev_async n) t.devices

(* Unified-memory knobs (the --zerocopy / elision CLI and bench modes). *)
let set_zerocopy t (on : bool) : unit =
  Array.iter (fun d -> Dataenv.set_zerocopy d.dev_dataenv on) t.devices

let set_elide t (on : bool) : unit =
  Array.iter (fun d -> Dataenv.set_elide d.dev_dataenv on) t.devices

(* The --mem-policy knob: per-buffer auto policy or one forced mode, on
   every device (each keeps its own buffer histories). *)
let set_mem_mode t (sel : Mempolicy.sel) : unit =
  Array.iter (fun d -> Dataenv.set_mem_mode d.dev_dataenv sel) t.devices

(* Closure-JIT knob (the --no-jit CLI escape hatch disables it). *)
let set_jit t (on : bool) : unit = Array.iter (fun d -> Driver.set_jit d.dev_driver on) t.devices

let device t id =
  if id < 0 || id >= Array.length t.devices then ort_error "no such device %d" id;
  t.devices.(id)

let default_dev t = device t t.default_device

let num_devices t = Array.length t.devices

(* omp_set_default_device / omp_get_default_device *)
let set_default_device t (id : int) : unit =
  if id < 0 || id >= Array.length t.devices then ort_error "no such device %d" id;
  t.default_device <- id

let get_default_device t = t.default_device

let set_shard t (on : bool) : unit = t.shard <- on

(* Device ids every shard planner considers live (context not torn down). *)
let live_devices t : device list =
  Array.to_list t.devices |> List.filter (fun d -> not (Dataenv.is_dead d.dev_dataenv))

(* Register a compiled kernel file with a device (what OMPi's scripts do
   by placing the nvcc output next to the executable). *)
let register_kernel t ~(dev : int) (artifact : Nvcc.artifact) : unit =
  Hashtbl.replace (device t dev).dev_kernels artifact.Nvcc.art_name artifact

let find_kernel t ~(dev : int) (name : string) : Nvcc.artifact =
  match Hashtbl.find_opt (device t dev).dev_kernels name with
  | Some a -> a
  | None -> ort_error "kernel file '%s' not found (was the program compiled with ompicc?)" name

(* Map the scalar num_teams / num_threads values onto CUDA grid/block
   dimensions.  CUDA limits each grid dimension to 65535, so large team
   counts are folded into two dimensions (paper §5: "ompi maps these
   values to two dimensions"). *)
let geometry ~(num_teams : int) ~(num_threads : int) : Simt.dim3 * Simt.dim3 =
  if num_teams <= 0 then ort_error "num_teams must be positive (got %d)" num_teams;
  if num_threads <= 0 then ort_error "num_threads must be positive (got %d)" num_threads;
  let grid =
    if num_teams <= 65535 then Simt.dim3 num_teams
    else begin
      let x = 65535 in
      Simt.dim3 x ~y:((num_teams + x - 1) / x)
    end
  in
  let block = if num_threads mod 32 = 0 then Simt.dim3 32 ~y:(num_threads / 32) else Simt.dim3 num_threads in
  (grid, block)

(* Host-side time accounting for interpreted host code. *)
let host_step_cost_ns t = t.cpu.Spec.cycles_per_interp_step /. t.cpu.Spec.cpu_clock_hz *. 1e9

let now_s t = Simclock.now_s t.clock
