(** The ORT-style host runtime: device registry with lazy
    initialisation, kernel-file registry (OMPi locates kernels as
    separate files next to the executable, paper 3.3), and the glue the
    three-phase launch builds on (paper 4.2.1). *)

open Machine
open Gpusim

exception Ort_error of string

val ort_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Steady-state launch cache (one slot per device): the last
    (kernel file, entry) launched keeps its artifact/module handles and
    a preallocated parameter buffer, so repeated launches of the same
    kernel skip the loading and parameter-preparation phases.  Residency
    is validated against the driver's module table before every reuse. *)
type launch_cache = {
  lc_file : string;
  lc_entry : string;
  lc_artifact : Nvcc.artifact;
  lc_modul : Driver.loaded_module;
  mutable lc_params : Value.t array;
  mutable lc_hits : int;
}

type device = {
  dev_id : int;
  dev_driver : Driver.t;
  dev_dataenv : Dataenv.t;
  dev_async : Async.t;  (** stream pool + dependency tracker for nowait regions *)
  dev_kernels : (string, Nvcc.artifact) Hashtbl.t;  (** the "kernel files on disk" *)
  mutable dev_launch_cache : launch_cache option;
  mutable dev_shard_stream : Driver.stream option;
      (** dedicated stream for sharded sub-launches (lazily created) *)
}

type t = {
  clock : Simclock.t;
  host_mem : Mem.t;
  cpu : Spec.cpu;
  devices : device array;
  mutable default_device : int;
  binary_mode : Nvcc.binary_mode;
  mutable translated_kernel_penalty : int -> float;
      (** occupancy penalty for translated kernels as a function of the
          total block count; the stand-in for the unexplained gemm@2048
          gap (EXPERIMENTS.md, deviation D2) *)
  mutable sample_max_blocks : int option;
      (** when set, launches simulate at most this many blocks (evenly
          spaced) and scale the measured counts to the full grid *)
  mutable trace : Perf.Trace.t option;
      (** launch-phase tracing; set via {!set_trace} *)
  mutable faults : Faults.t option;
      (** fault injection; set via {!set_faults} *)
  mutable fault_policy : Resilience.policy;
      (** retry/backoff policy; set via {!set_fault_policy} *)
  mutable shard : bool;
      (** shard [distribute] grids across all devices; defaults to true
          when the runtime was created with more than one device *)
}

val default_penalty : int -> float

(** [create ~devices:n ~specs ()] builds a farm of [n] simultaneously
    live devices sharing one simulated clock and host memory, each with
    its own driver (spec, global memory, allocation table, engine
    timelines), data environment (present table, resident cache) and
    stream pool.  [specs] overrides the shared [spec] position by
    position for heterogeneous farms. *)
val create :
  ?binary_mode:Nvcc.binary_mode ->
  ?spec:Spec.t ->
  ?streams:int ->
  ?devices:int ->
  ?specs:Spec.t list ->
  unit ->
  t

(** Attach (or detach, with [None]) a trace ring, propagating it to
    every device driver so host- and device-side events interleave on
    one timeline. *)
val set_trace : t -> Perf.Trace.t option -> unit

(** Arm (or disarm, with [None]) fault injection by installing the
    injector's hook into every device driver. *)
val set_faults : t -> Faults.t option -> unit

(** Set the retry/backoff policy, propagating it to every device's data
    environment. *)
val set_fault_policy : t -> Resilience.policy -> unit

(** Resize every device's stream pool (the [--streams N] CLI knob).
    @raise Invalid_argument if non-positive or tasks are in flight *)
val set_streams : t -> int -> unit

(** Enable zero-copy mapping on every device (see {!Dataenv.set_zerocopy}). *)
val set_zerocopy : t -> bool -> unit

(** Enable transfer elision on every device (see {!Dataenv.set_elide}). *)
val set_elide : t -> bool -> unit

(** Select the memory-mode policy on every device (the [--mem-policy]
    CLI knob): [Auto] decides per buffer via {!Mempolicy}, with each
    device keeping its own buffer histories; [Forced m] behaves like the
    corresponding run-level flag. *)
val set_mem_mode : t -> Mempolicy.sel -> unit

(** Enable/disable the closure JIT on every device (see
    {!Gpusim.Driver.set_jit}; the [--no-jit] CLI escape hatch). *)
val set_jit : t -> bool -> unit

val device : t -> int -> device

val default_dev : t -> device

val num_devices : t -> int

(** omp_set_default_device.  @raise Ort_error on an out-of-range id *)
val set_default_device : t -> int -> unit

(** omp_get_default_device *)
val get_default_device : t -> int

(** Enable/disable sharding of [distribute] grids across devices. *)
val set_shard : t -> bool -> unit

(** Devices whose context has not been declared dead. *)
val live_devices : t -> device list

val register_kernel : t -> dev:int -> Nvcc.artifact -> unit

val find_kernel : t -> dev:int -> string -> Nvcc.artifact

(** Map num_teams / num_threads onto CUDA grid/block dimensions; team
    counts beyond 65535 fold into two grid dimensions (paper section 5:
    "ompi maps these values to two dimensions"). *)
val geometry : num_teams:int -> num_threads:int -> Simt.dim3 * Simt.dim3

(** Evenly-spaced block-sampling filter, offset by half a stride so that
    boundary blocks are not over-represented. *)
val sampling_filter : total_blocks:int -> int option -> (int -> bool) option

val host_step_cost_ns : t -> float

val now_s : t -> float
