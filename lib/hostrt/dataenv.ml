(* Device data environment (paper §2, §4.2.1): tracks which host ranges
   are mapped to device memory, with OpenMP present/refcount semantics:

   - mapping an already-present range only increments its refcount (no
     transfer), which is what makes [target data] regions effective at
     eliminating redundant movement;
   - the final unmap performs the from/tofrom copy-back and frees the
     device buffer;
   - [target update] moves data for present ranges without changing
     refcounts.

   On top of that sit the unified-memory strategies.  Each mapping runs
   in one of three modes, fixed at its cold map:

   - copy: the classic alloc + h2d / d2h + free protocol;
   - elide: released buffers are parked in a small resident cache
     instead of freed, and transfers are skipped where host and device
     images provably agree — whole-buffer via a digest taken at the
     last synchronisation point plus the driver's per-allocation store
     counts and write epoch, and page-wise via per-page digests plus the
     driver's store-interval log, so a partially-dirty buffer moves only
     its dirty pages.  [target update] transfers elide their clean pages
     the same way.  A map with the [always] modifier forces full copies;
   - zero-copy: the Nano's CPU and GPU share DRAM, so the map pins the
     host range (cuMemHostRegister) and hands the kernel the host
     address itself — no device buffer and no copies at all; the cost
     model charges the kernel's uncached accesses instead.  Pinned
     ranges are registered with the stream dependency tracker so
     zero-copy composes with [--streams].

   The mode comes either from the forced run-level flags ([set_elide] /
   [set_zerocopy], the PR 5 behaviour) or, under [set_mem_mode Auto],
   from the per-buffer [Mempolicy] cost model fed by each buffer's
   observed history.  Every cold map emits a cat:"mem" "policy_decide"
   instant naming the chosen mode and the signals that drove it.

   Driver calls made here are fallible under fault injection; they are
   wrapped in the Resilience retry policy, and when an operation still
   fails the device is declared dead: live from/tofrom mappings are
   salvaged back to the host (the simulated device's global memory stays
   readable after compute faults) and every subsequent data-environment
   operation degrades to a host-memory no-op, so the program continues
   on the sequential fallback path. *)

open Machine
open Gpusim

exception Map_error of string

let map_error fmt = Format.kasprintf (fun s -> raise (Map_error s)) fmt

type map_type = Alloc | To | From | Tofrom [@@deriving show { with_path = false }, eq]

let map_type_of_int = function
  | 0 -> Alloc
  | 1 -> To
  | 2 -> From
  | 3 -> Tofrom
  | n -> map_error "bad map type code %d" n

(* The generated ort_map calls encode the [always] modifier as bit 4 on
   top of the two-bit map type. *)
let decode_map_code n : map_type * bool = (map_type_of_int (n land 3), n land 4 <> 0)

type entry = {
  e_host : Addr.t;
  e_bytes : int;
  e_dev : Addr.t; (* aliases e_host in zero-copy mode *)
  mutable e_refcount : int;
  e_map : map_type; (* type used at initial mapping *)
  mutable e_launches_at_map : int; (* driver launch count when (re-)mapped *)
  e_mode : Mempolicy.mode; (* transfer strategy fixed at the cold map *)
  e_zerocopy : bool; (* e_mode = Zerocopy, kept for cheap dispatch *)
  e_alloc_id : int; (* device allocation id; -1 for zero-copy entries *)
  mutable e_pin_id : int; (* driver pin id; -1 unless zero-copy *)
  (* Last point where host and device images provably agreed (end of a
     successful h2d or d2h over the full extent).  [e_synced] stays false
     for alloc/from mappings until their first copy-back: their device
     image starts uninitialised, so eliding the d2h would change what
     lands in host memory. *)
  mutable e_synced : bool;
  mutable e_stores_at_sync : int; (* Driver.alloc_stores at that point *)
  mutable e_epoch_at_sync : int; (* Driver.write_epoch at that point *)
  mutable e_digest : Digest.t option; (* host-range digest at that point *)
  (* Per-page refinement of the sync point (elide mode only): digest of
     each host page when the images last agreed ([None] per page =
     unknown, always dirty), plus the driver store-log position, so
     device writes since then resolve to dirty pages. *)
  mutable e_page_digests : Digest.t option array option;
  mutable e_store_mark : int;
  (* Observation snapshot taken at (re-)map, diffed at the final release
     to feed the policy: cumulative loads/stores (allocation counters,
     or pin traffic for zero-copy) and the store-log position. *)
  mutable e_loads_at_map : int;
  mutable e_stores_at_map : int;
  mutable e_map_store_mark : int;
}

type stats = {
  elided_h2d : int;
  elided_d2h : int;
  elided_h2d_pages : int;
  elided_d2h_pages : int;
  elided_update_to : int;
  elided_update_from : int;
  zerocopy_accesses : int;
}

type t = {
  mutable entries : entry list;
  host : Mem.t;
  driver : Driver.t;
  policy : Mempolicy.t; (* per-environment (= per-device) buffer histories *)
  mutable de_dead : string option; (* Some reason once the device is declared dead *)
  mutable de_policy : Resilience.policy;
  (* Async-awareness hooks, installed by Rt against its stream tracker
     (kept as closures so this module does not depend on Async): is any
     queued stream work touching this host range, wait for it, and
     advertise pinned (zero-copy) ranges so overlapping stream tasks
     serialize. *)
  mutable de_pending : (Addr.t -> bytes:int -> bool) option;
  mutable de_sync_range : (Addr.t -> bytes:int -> unit) option;
  mutable de_register_pinned : (Addr.t -> bytes:int -> unit) option;
  mutable de_unregister_pinned : (Addr.t -> bytes:int -> unit) option;
  mutable de_elide : bool;
  mutable de_zerocopy : bool;
  mutable de_auto : bool; (* per-buffer policy decides the mode *)
  mutable de_page_bytes : int; (* dirty-tracking granularity *)
  mutable resident : entry list; (* refcount-0 parked buffers, MRU first *)
  (* Eviction is byte-accounted, not entry-counted: a multiplexing
     server parks buffers of wildly different sizes, and counting
     entries would let one large session flush every small session's
     buffer while staying "under budget". *)
  mutable resident_cap_bytes : int;
  mutable resident_bytes : int;
  mutable elided_h2d : int;
  mutable elided_d2h : int;
  mutable elided_h2d_pages : int;
  mutable elided_d2h_pages : int;
  mutable elided_update_to : int;
  mutable elided_update_from : int;
}

(* Roughly a quarter of the Nano's 4 MiB L2 worth of parked images: big
   enough for a server's worth of small per-session buffers, small
   enough that parking is a cache, not a leak. *)
let default_resident_cap_bytes = 1 lsl 20

let default_page_bytes = 4096

let create ~(host : Mem.t) ~(driver : Driver.t) =
  {
    entries = [];
    host;
    driver;
    policy = Mempolicy.create driver.Driver.spec;
    de_dead = None;
    de_policy = Resilience.default_policy;
    de_pending = None;
    de_sync_range = None;
    de_register_pinned = None;
    de_unregister_pinned = None;
    de_elide = false;
    de_zerocopy = false;
    de_auto = false;
    de_page_bytes = default_page_bytes;
    resident = [];
    resident_cap_bytes = default_resident_cap_bytes;
    resident_bytes = 0;
    elided_h2d = 0;
    elided_d2h = 0;
    elided_h2d_pages = 0;
    elided_d2h_pages = 0;
    elided_update_to = 0;
    elided_update_from = 0;
  }

let is_dead t = t.de_dead <> None

let dead_reason t = t.de_dead

let set_policy t policy = t.de_policy <- policy

let set_elide t on = t.de_elide <- on

let set_zerocopy t on = t.de_zerocopy <- on

let set_mem_mode t (sel : Mempolicy.sel) =
  match sel with
  | Mempolicy.Auto ->
    t.de_auto <- true;
    t.de_elide <- false;
    t.de_zerocopy <- false
  | Mempolicy.Forced m ->
    t.de_auto <- false;
    t.de_elide <- Mempolicy.equal_mode m Mempolicy.Elide;
    t.de_zerocopy <- Mempolicy.equal_mode m Mempolicy.Zerocopy

let mem_mode t : Mempolicy.sel =
  if t.de_auto then Mempolicy.Auto
  else if t.de_zerocopy then Mempolicy.Forced Mempolicy.Zerocopy
  else if t.de_elide then Mempolicy.Forced Mempolicy.Elide
  else Mempolicy.Forced Mempolicy.Copy

let set_page_bytes t n =
  if n <= 0 then invalid_arg "Dataenv.set_page_bytes: non-positive page size";
  t.de_page_bytes <- n

let page_bytes t = t.de_page_bytes

let stats t =
  {
    elided_h2d = t.elided_h2d;
    elided_d2h = t.elided_d2h;
    elided_h2d_pages = t.elided_h2d_pages;
    elided_d2h_pages = t.elided_d2h_pages;
    elided_update_to = t.elided_update_to;
    elided_update_from = t.elided_update_from;
    zerocopy_accesses = t.driver.Driver.zerocopy_total;
  }

let policy_decisions t = Mempolicy.decisions t.policy

let policy_modes_used t = Mempolicy.modes_used t.policy

let set_async_hooks ?register_pinned ?unregister_pinned t
    ~(pending : Addr.t -> bytes:int -> bool) ~(sync_range : Addr.t -> bytes:int -> unit) : unit =
  t.de_pending <- Some pending;
  t.de_sync_range <- Some sync_range;
  t.de_register_pinned <- register_pinned;
  t.de_unregister_pinned <- unregister_pinned

let async_pending t haddr ~bytes =
  match t.de_pending with Some f -> f haddr ~bytes | None -> false

let async_sync_range t haddr ~bytes =
  match t.de_sync_range with Some f -> f haddr ~bytes | None -> ()

let register_pinned t haddr ~bytes =
  match t.de_register_pinned with Some f -> f haddr ~bytes | None -> ()

let unregister_pinned t haddr ~bytes =
  match t.de_unregister_pinned with Some f -> f haddr ~bytes | None -> ()

let tr_instant t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"fault" name
  | None -> ()

let tr_mem t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"mem" name
  | None -> ()

(* Retry-wrap one fallible driver call under this environment's policy. *)
let guard t ~label f =
  Resilience.run ~clock:t.driver.Driver.clock ?trace:t.driver.Driver.trace ~policy:t.de_policy
    ~label f

(* ------------------------- elision bookkeeping ------------------------- *)

let host_digest t e = Digest.subbytes t.host.Mem.data e.e_host.Addr.off e.e_bytes

let digest_matches t e =
  match e.e_digest with Some d -> Digest.equal d (host_digest t e) | None -> false

let npages t bytes = (bytes + t.de_page_bytes - 1) / t.de_page_bytes

let page_digest t e p =
  let off = p * t.de_page_bytes in
  let len = min t.de_page_bytes (e.e_bytes - off) in
  Digest.subbytes t.host.Mem.data (e.e_host.Addr.off + off) len

(* Record "host and device agree over the full extent right now". *)
let mark_synced t e =
  if not e.e_zerocopy then begin
    e.e_stores_at_sync <- Driver.alloc_stores t.driver e.e_alloc_id;
    e.e_epoch_at_sync <- t.driver.Driver.write_epoch;
    e.e_store_mark <- Driver.store_mark t.driver e.e_alloc_id;
    e.e_digest <- Some (host_digest t e);
    (if Mempolicy.equal_mode e.e_mode Mempolicy.Elide then
       e.e_page_digests <- Some (Array.init (npages t e.e_bytes) (fun p -> Some (page_digest t e p)))
     else e.e_page_digests <- None);
    e.e_synced <- true
  end

(* Has no kernel (provably) written this allocation since the sync point?
   A write-epoch bump means some launch's store counts were incomplete
   (block sampling, context reset) — assume everything was written. *)
let device_unwritten t e =
  t.driver.Driver.write_epoch = e.e_epoch_at_sync
  && Driver.alloc_stores t.driver e.e_alloc_id = e.e_stores_at_sync

(* Both images provably identical: safe to skip a transfer entirely. *)
let images_agree t e = e.e_synced && device_unwritten t e && digest_matches t e

(* Per-page dirty map of a synced elide-mode entry: [Some dirty] when
   per-page reasoning applies (true = images may differ on that page),
   [None] when only whole-buffer reasoning is available.  A page is
   clean iff its host content still matches the sync digest AND no
   device store interval has touched it since the sync mark — exactly
   the condition under which skipping it is sound in either transfer
   direction. *)
let dirty_pages t e : bool array option =
  match e.e_page_digests with
  | None -> None
  | Some pds ->
    if (not e.e_synced) || t.driver.Driver.write_epoch <> e.e_epoch_at_sync then None
    else begin
      let pb = t.de_page_bytes in
      let np = Array.length pds in
      if np <> npages t e.e_bytes then None (* page size changed under us *)
      else begin
        let dirty = Array.make np false in
        List.iter
          (fun (lo, hi) ->
            let lo = max 0 lo and hi = min e.e_bytes hi in
            if hi > lo then
              for p = lo / pb to (hi - 1) / pb do
                dirty.(p) <- true
              done)
          (Driver.stores_since t.driver e.e_alloc_id e.e_store_mark);
        for p = 0 to np - 1 do
          if not dirty.(p) then
            match pds.(p) with
            | None -> dirty.(p) <- true
            | Some d -> if not (Digest.equal d (page_digest t e p)) then dirty.(p) <- true
        done;
        Some dirty
      end
    end

let transfer_cost_ns t len =
  (float_of_int len /. t.driver.Driver.spec.Spec.memcpy_bandwidth *. 1e9)
  +. (t.driver.Driver.spec.Spec.memcpy_latency_us *. 1e3)

(* Byte ranges (offset, length relative to the entry base) of maximal
   runs of dirty pages. *)
let dirty_runs t e (dirty : bool array) : (int * int) list =
  let pb = t.de_page_bytes in
  let np = Array.length dirty in
  let runs = ref [] in
  let p = ref 0 in
  while !p < np do
    if dirty.(!p) then begin
      let q = ref !p in
      while !q + 1 < np && dirty.(!q + 1) do
        incr q
      done;
      let off = !p * pb in
      let len = min e.e_bytes ((!q + 1) * pb) - off in
      runs := (off, len) :: !runs;
      p := !q + 1
    end
    else incr p
  done;
  List.rev !runs

let run_copy t e ~label (dir : [ `H2d | `D2h ]) ~(off : int) ~(len : int) =
  let h = Addr.add e.e_host off and d = Addr.add e.e_dev off in
  match dir with
  | `H2d -> guard t ~label (fun () -> Driver.memcpy_h2d t.driver ~host:t.host ~src:h ~dst:d ~len)
  | `D2h -> guard t ~label (fun () -> Driver.memcpy_d2h t.driver ~host:t.host ~src:d ~dst:h ~len)

(* Page-wise partial transfer over the whole extent: move only the dirty
   runs and leave the entry fully synced (every dirty page transferred,
   every clean page proven equal).  Returns [Some pages_elided] when the
   partial path ran; [None] when the caller should fall back to a full
   transfer — no per-page info, nothing to elide, or the summed run
   latency would exceed one full copy (transfers are latency-dominated,
   so many small runs can cost more than moving everything). *)
let partial_transfer t e ~label (dir : [ `H2d | `D2h ]) : int option =
  match dirty_pages t e with
  | None -> None
  | Some dirty ->
    let np = Array.length dirty in
    let n_dirty = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dirty in
    if n_dirty = 0 || n_dirty = np then None
    else begin
      let runs = dirty_runs t e dirty in
      let cost = List.fold_left (fun a (_, len) -> a +. transfer_cost_ns t len) 0.0 runs in
      if cost >= transfer_cost_ns t e.e_bytes then None
      else begin
        List.iter (fun (off, len) -> run_copy t e ~label dir ~off ~len) runs;
        mark_synced t e;
        Some (np - n_dirty)
      end
    end

(* ------------------------- policy bookkeeping ------------------------- *)

let buffer_key (haddr : Addr.t) ~bytes = (haddr.Addr.off, bytes)

(* Snapshot the cumulative access counters at (re-)map time; the final
   release diffs them to feed the policy's history. *)
let snapshot_map_counters t e =
  if e.e_zerocopy then begin
    let l, s = Driver.pin_traffic t.driver e.e_pin_id in
    e.e_loads_at_map <- l;
    e.e_stores_at_map <- s
  end
  else begin
    e.e_loads_at_map <- Driver.alloc_loads t.driver e.e_alloc_id;
    e.e_stores_at_map <- Driver.alloc_stores t.driver e.e_alloc_id;
    e.e_map_store_mark <- Driver.store_mark t.driver e.e_alloc_id
  end

(* Fold one completed map→unmap cycle into the buffer's history. *)
let observe_release t e =
  if not (is_dead t) then begin
    let loads, stores =
      if e.e_zerocopy then begin
        let l, s = Driver.pin_traffic t.driver e.e_pin_id in
        (l - e.e_loads_at_map, s - e.e_stores_at_map)
      end
      else
        ( Driver.alloc_loads t.driver e.e_alloc_id - e.e_loads_at_map,
          Driver.alloc_stores t.driver e.e_alloc_id - e.e_stores_at_map )
    in
    let dev_dirty =
      if e.e_zerocopy then if stores > 0 then 1.0 else 0.0
      else begin
        (* extent of the bytes written since map, from the store log *)
        let lo, hi =
          List.fold_left
            (fun (lo, hi) (l, h) -> (min lo l, max hi h))
            (max_int, 0)
            (Driver.stores_since t.driver e.e_alloc_id e.e_map_store_mark)
        in
        if hi <= lo then 0.0
        else float_of_int (min e.e_bytes hi - max 0 lo) /. float_of_int e.e_bytes
      end
    in
    Mempolicy.observe t.policy ~key:(buffer_key e.e_host ~bytes:e.e_bytes) ~loads ~stores
      ~dev_dirty ~digest:(Some (host_digest t e))
  end

let est_int v = if Float.is_finite v then int_of_float v else -1

let emit_policy_decide t ~(haddr : Addr.t) ~(bytes : int) (d : Mempolicy.decision) =
  tr_mem t "policy_decide"
    ~args:
      [
        ("device", Perf.Trace.Int t.driver.Driver.ordinal);
        ("off", Perf.Trace.Int haddr.Addr.off);
        ("bytes", Perf.Trace.Int bytes);
        ("mode", Perf.Trace.Str (Mempolicy.mode_name d.Mempolicy.d_mode));
        ("reason", Perf.Trace.Str d.Mempolicy.d_reason);
        ("seq", Perf.Trace.Int d.Mempolicy.d_seq);
        ("est_copy_ns", Perf.Trace.Int (est_int d.Mempolicy.d_est_copy_ns));
        ("est_elide_ns", Perf.Trace.Int (est_int d.Mempolicy.d_est_elide_ns));
        ("est_zerocopy_ns", Perf.Trace.Int (est_int d.Mempolicy.d_est_zerocopy_ns));
      ]

let fresh_entry t ~haddr ~bytes ~dev ~(mt : map_type) ~(mode : Mempolicy.mode) =
  let zerocopy = Mempolicy.equal_mode mode Mempolicy.Zerocopy in
  {
    e_host = haddr;
    e_bytes = bytes;
    e_dev = dev;
    e_refcount = 1;
    e_map = mt;
    e_launches_at_map = t.driver.Driver.kernels_launched;
    e_mode = mode;
    e_zerocopy = zerocopy;
    e_alloc_id =
      (if zerocopy then -1 else Option.value ~default:(-1) (Driver.alloc_id_of t.driver dev));
    e_pin_id = -1;
    e_synced = false;
    e_stores_at_sync = 0;
    e_epoch_at_sync = 0;
    e_digest = None;
    e_page_digests = None;
    e_store_mark = 0;
    e_loads_at_map = 0;
    e_stores_at_map = 0;
    e_map_store_mark = 0;
  }

(* Pull a parked buffer covering [haddr, haddr+bytes) out of the resident
   cache, if any. *)
let take_resident t (haddr : Addr.t) ~bytes : entry option =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
      if
        Addr.equal_space e.e_host.Addr.space haddr.Addr.space
        && haddr.Addr.off >= e.e_host.Addr.off
        && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes
      then begin
        t.resident <- List.rev_append acc rest;
        t.resident_bytes <- t.resident_bytes - e.e_bytes;
        Some e
      end
      else go (e :: acc) rest
  in
  go [] t.resident

let peek_resident t (haddr : Addr.t) ~bytes : bool =
  List.exists
    (fun e ->
      Addr.equal_space e.e_host.Addr.space haddr.Addr.space
      && haddr.Addr.off >= e.e_host.Addr.off
      && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes)
    t.resident

(* A fresh device buffer is about to cover this host range: any parked
   buffer overlapping it would go stale, so drop those now. *)
let drop_resident_overlapping t (haddr : Addr.t) ~bytes =
  let overlaps e =
    Addr.equal_space e.e_host.Addr.space haddr.Addr.space
    && haddr.Addr.off < e.e_host.Addr.off + e.e_bytes
    && e.e_host.Addr.off < haddr.Addr.off + bytes
  in
  let dead, keep = List.partition overlaps t.resident in
  List.iter
    (fun e ->
      Driver.mem_free t.driver e.e_dev;
      t.resident_bytes <- t.resident_bytes - e.e_bytes)
    dead;
  t.resident <- keep

(* May this environment have parked buffers at all? *)
let parking_possible t = t.de_elide || t.de_auto

(* Park a released buffer under the byte budget: LRU entries are evicted
   from the tail until the new total fits.  A buffer larger than the
   whole budget is freed outright instead of parked — parking it would
   evict every other session's buffer for a cache entry that cannot be
   joined by any other. *)
let park_resident t e =
  if e.e_bytes > t.resident_cap_bytes then begin
    Driver.mem_free t.driver e.e_dev;
    tr_mem t "resident_evict"
      ~args:[ ("bytes", Perf.Trace.Int e.e_bytes); ("reason", Perf.Trace.Str "oversized") ]
  end
  else begin
    t.resident <- e :: t.resident;
    t.resident_bytes <- t.resident_bytes + e.e_bytes;
    while t.resident_bytes > t.resident_cap_bytes do
      match List.rev t.resident with
      | last :: rev_rest ->
        Driver.mem_free t.driver last.e_dev;
        t.resident_bytes <- t.resident_bytes - last.e_bytes;
        tr_mem t "resident_evict"
          ~args:[ ("bytes", Perf.Trace.Int last.e_bytes); ("reason", Perf.Trace.Str "lru") ];
        t.resident <- List.rev rev_rest
      | [] -> assert false (* resident_bytes > 0 implies a parked entry *)
    done
  end

(* ----------------------------- fault path ----------------------------- *)

(* Declare the device dead (idempotent).  A mapping's device image is
   the current logical value of the data whenever a kernel has launched
   since it was mapped — earlier successful target regions may have
   computed into it regardless of its map type (think [target enter
   data] residency across an iteration loop) — so such entries are
   salvaged with raw copies before the environment is dropped.  Entries
   no kernel could have touched are skipped: for to/tofrom the host copy
   is identical, and for alloc/from the device image is uninitialised
   and salvaging it would clobber live host data.  Zero-copy entries
   need no salvage (the data already lives in host memory), and parked
   resident buffers hold nothing the host does not already have. *)
let declare_dead ?(salvage = true) t ~(reason : string) : unit =
  if not (is_dead t) then begin
    t.de_dead <- Some reason;
    tr_instant t "device_dead"
      ~args:
        [
          ("reason", Perf.Trace.Str reason);
          ("live_mappings", Perf.Trace.Int (List.length t.entries));
        ];
    (* [salvage:false] is for callers who already hold a newer image of
       every live mapping in host memory (the multi-device shard merger):
       copying the dead device's image back would clobber it. *)
    if salvage then
      List.iter
        (fun e ->
          if (not e.e_zerocopy) && t.driver.Driver.kernels_launched > e.e_launches_at_map then
            Driver.salvage_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes)
        t.entries;
    t.entries <- [];
    t.resident <- [];
    t.resident_bytes <- 0
  end

let find_containing t (haddr : Addr.t) ~bytes =
  List.find_opt
    (fun e ->
      Addr.equal_space e.e_host.Addr.space haddr.Addr.space
      && haddr.Addr.off >= e.e_host.Addr.off
      && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes)
    t.entries

(* Translate a host address inside a mapped range to its device image.
   On a dead device the host address is its own image: the fallback
   path works directly on host memory.  (For zero-copy entries the
   translation is the identity, since e_dev aliases e_host.) *)
let lookup t (haddr : Addr.t) : Addr.t option =
  if is_dead t then Some haddr
  else
    match find_containing t haddr ~bytes:1 with
    | Some e -> Some (Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
    | None -> None

let lookup_exn t haddr =
  match lookup t haddr with
  | Some d -> d
  | None -> map_error "host address %s is not mapped on the device" (Addr.show haddr)

let is_present t haddr ~bytes = (not (is_dead t)) && find_containing t haddr ~bytes <> None

let dev_of e (haddr : Addr.t) = Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)

(* Decide the transfer mode for a cold map: the forced run-level flags
   when set, otherwise the per-buffer policy. *)
let resolve_mode ?(async = false) t (haddr : Addr.t) ~(bytes : int) ~(mt : map_type)
    ~(always : bool) : Mempolicy.decision =
  let key = buffer_key haddr ~bytes in
  if not t.de_auto then
    Mempolicy.forced t.policy ~key
      (if t.de_zerocopy then Mempolicy.Zerocopy
       else if t.de_elide then Mempolicy.Elide
       else Mempolicy.Copy)
  else
    Mempolicy.decide t.policy ~key
      {
        Mempolicy.i_bytes = bytes;
        i_needs_h2d = (match mt with To | Tofrom -> true | Alloc | From -> false);
        i_needs_d2h = (match mt with From | Tofrom -> true | Alloc | To -> false);
        i_always = always;
        i_pending = async_pending t haddr ~bytes;
        i_async = async;
        i_zerocopy_safe = (match mt with Tofrom | From -> true | To | Alloc -> false);
        i_can_zerocopy_if_readonly = equal_map_type mt To;
        i_revivable = peek_resident t haddr ~bytes;
        i_host_digest = lazy (Digest.subbytes t.host.Mem.data haddr.Addr.off bytes);
      }

(* Pin a host range for zero-copy: no device buffer, no copies; the
   range is advertised to the stream dependency tracker so overlapping
   async work serializes against it. *)
let map_zerocopy t (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  (* A from map's device image is born zero-filled (cuMemAlloc zeroes),
     and the copying runtime overwrites the full host extent on the
     final release — so presenting that zero image in place keeps the
     pinned path bit-identical even for kernels that read before they
     write, or write only part of the buffer. *)
  if equal_map_type mt From then Bytes.fill t.host.Mem.data haddr.Addr.off bytes '\000';
  Driver.host_register t.driver ~host:t.host ~addr:haddr ~bytes;
  let e = fresh_entry t ~haddr ~bytes ~dev:haddr ~mt ~mode:Mempolicy.Zerocopy in
  e.e_pin_id <- Option.value ~default:(-1) (Driver.pin_id_of t.driver haddr);
  snapshot_map_counters t e;
  register_pinned t haddr ~bytes;
  t.entries <- e :: t.entries;
  tr_mem t "zerocopy_map" ~args:[ ("bytes", Perf.Trace.Int bytes) ];
  haddr

(* Map a host range; returns the corresponding device address. *)
let map ?(always = false) t (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e -> (
      e.e_refcount <- e.e_refcount + 1;
      (* map(always, to:) transfers even when the range is present *)
      (match mt with
      | (To | Tofrom) when always && not e.e_zerocopy -> (
        try
          guard t ~label:"map_h2d" (fun () ->
              Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:(dev_of e haddr) ~len:bytes);
          if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)
      | _ -> ());
      if is_dead t then haddr else dev_of e haddr)
    | None -> (
      let d = resolve_mode t haddr ~bytes ~mt ~always in
      emit_policy_decide t ~haddr ~bytes d;
      match d.Mempolicy.d_mode with
      | Mempolicy.Zerocopy ->
        (* Unified memory: pin the range and let the kernel address it in
           place.  No device buffer, no copies in either direction. *)
        map_zerocopy t haddr ~bytes mt
      | Mempolicy.Elide -> (
        let revived =
          if not always then
            (* only to/tofrom maps may revive a parked buffer: alloc/from
               expect an uninitialised device image, which a reused buffer
               would not provide *)
            match mt with To | Tofrom -> take_resident t haddr ~bytes | Alloc | From -> None
          else None
        in
        match revived with
        | Some e -> (
          e.e_refcount <- 1;
          e.e_launches_at_map <- t.driver.Driver.kernels_launched;
          snapshot_map_counters t e;
          if (not (async_pending t e.e_host ~bytes:e.e_bytes)) && images_agree t e then begin
            (* resident and clean on both sides: the h2d is a no-op *)
            t.elided_h2d <- t.elided_h2d + 1;
            tr_mem t "elide_h2d" ~args:[ ("bytes", Perf.Trace.Int e.e_bytes) ];
            t.entries <- e :: t.entries;
            dev_of e haddr
          end
          else if async_pending t e.e_host ~bytes:e.e_bytes then begin
            (* still in flight: settle any queued work on the range, then
               refresh the reused buffer with a real copy *)
            async_sync_range t e.e_host ~bytes:e.e_bytes;
            try
              guard t ~label:"map_h2d" (fun () ->
                  Driver.memcpy_h2d t.driver ~host:t.host ~src:e.e_host ~dst:e.e_dev
                    ~len:e.e_bytes);
              mark_synced t e;
              t.entries <- e :: t.entries;
              dev_of e haddr
            with Resilience.Device_dead reason ->
              declare_dead t ~reason;
              haddr
          end
          else (
            (* stale: move only the dirty pages when the per-page digests
               prove the remainder still agrees, else the whole extent *)
            try
              (match partial_transfer t e ~label:"map_h2d" `H2d with
              | Some pages ->
                t.elided_h2d_pages <- t.elided_h2d_pages + pages;
                tr_mem t "elide_h2d_pages"
                  ~args:
                    [ ("bytes", Perf.Trace.Int e.e_bytes); ("pages", Perf.Trace.Int pages) ]
              | None ->
                guard t ~label:"map_h2d" (fun () ->
                    Driver.memcpy_h2d t.driver ~host:t.host ~src:e.e_host ~dst:e.e_dev
                      ~len:e.e_bytes);
                mark_synced t e);
              t.entries <- e :: t.entries;
              dev_of e haddr
            with Resilience.Device_dead reason ->
              declare_dead t ~reason;
              haddr))
        | None -> (
          try
            drop_resident_overlapping t haddr ~bytes;
            let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
            let e = fresh_entry t ~haddr ~bytes ~dev ~mt ~mode:Mempolicy.Elide in
            snapshot_map_counters t e;
            (match mt with
            | To | Tofrom ->
              guard t ~label:"map_h2d" (fun () ->
                  Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:dev ~len:bytes);
              mark_synced t e
            | Alloc | From -> ());
            t.entries <- e :: t.entries;
            dev
          with Resilience.Device_dead reason ->
            declare_dead t ~reason;
            haddr))
      | Mempolicy.Copy -> (
        try
          if parking_possible t then drop_resident_overlapping t haddr ~bytes;
          let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
          let e = fresh_entry t ~haddr ~bytes ~dev ~mt ~mode:Mempolicy.Copy in
          snapshot_map_counters t e;
          (match mt with
          | To | Tofrom ->
            guard t ~label:"map_h2d" (fun () ->
                Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:dev ~len:bytes);
            mark_synced t e
          | Alloc | From -> ());
          t.entries <- e :: t.entries;
          dev
        with Resilience.Device_dead reason ->
          declare_dead t ~reason;
          haddr))

(* Unmap (end of construct / target exit data).  The map type decides
   whether data flows back on the final release. *)
let unmap ?(always = false) t (haddr : Addr.t) (mt : map_type) : unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e when e.e_zerocopy ->
    if e.e_refcount <= 1 && async_pending t e.e_host ~bytes:e.e_bytes then
      map_error "unmap of range %s with async work in flight (missing taskwait?)"
        (Addr.show e.e_host);
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then begin
      observe_release t e;
      unregister_pinned t e.e_host ~bytes:e.e_bytes;
      Driver.host_unregister t.driver e.e_host;
      t.entries <- List.filter (fun e' -> e' != e) t.entries
    end
  | Some e -> (
    (* Releasing the device buffer while queued stream work still
       touches the range would free storage in flight: a program bug
       (missing taskwait), reported as such. *)
    if e.e_refcount <= 1 && async_pending t e.e_host ~bytes:e.e_bytes then
      map_error "unmap of range %s with async work in flight (missing taskwait?)"
        (Addr.show e.e_host);
    (* map(always, from:) copies back on every decrement, not only the
       final release *)
    (match mt with
    | (From | Tofrom) when always && e.e_refcount > 1 -> (
      try
        guard t ~label:"unmap_d2h" (fun () ->
            Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes);
        mark_synced t e
      with Resilience.Device_dead reason -> declare_dead t ~reason)
    | _ -> ());
    if not (is_dead t) then begin
      e.e_refcount <- e.e_refcount - 1;
      if e.e_refcount <= 0 then
        try
          let elidable = Mempolicy.equal_mode e.e_mode Mempolicy.Elide && not always in
          (match mt with
          | From | Tofrom ->
            if elidable && images_agree t e then begin
              (* no kernel wrote the buffer and the host range is
                 untouched since the last sync: the d2h is a no-op *)
              t.elided_d2h <- t.elided_d2h + 1;
              tr_mem t "elide_d2h" ~args:[ ("bytes", Perf.Trace.Int e.e_bytes) ]
            end
            else begin
              match if elidable then partial_transfer t e ~label:"unmap_d2h" `D2h else None with
              | Some pages ->
                t.elided_d2h_pages <- t.elided_d2h_pages + pages;
                tr_mem t "elide_d2h_pages"
                  ~args:[ ("bytes", Perf.Trace.Int e.e_bytes); ("pages", Perf.Trace.Int pages) ]
              | None ->
                guard t ~label:"unmap_d2h" (fun () ->
                    Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host
                      ~len:e.e_bytes);
                mark_synced t e
            end
          | Alloc | To -> ());
          observe_release t e;
          t.entries <- List.filter (fun e' -> e' != e) t.entries;
          (* under the automatic policy, a synced copy-mode buffer parks
             too: without a resident image the cost model could never
             find elision cheaper than the copy it just made, so the
             cold copy decision would be self-perpetuating *)
          if
            Mempolicy.equal_mode e.e_mode Mempolicy.Elide
            || (t.de_auto && e.e_synced)
          then park_resident t e
          else Driver.mem_free t.driver e.e_dev
        with Resilience.Device_dead reason ->
          (* declare_dead salvages this still-registered from/tofrom entry,
             completing the copy-back the retries could not *)
          declare_dead t ~reason
    end)

(* Async variants, called from inside a stream task: transfers are
   enqueued on [stream] (memory effects eager, costs on the stream's
   timeline).  Alloc/free stay synchronous — they are CPU-side driver
   calls.  No pending-range checks here: the caller IS the in-flight
   work.  Elision never applies on this path (an in-flight range can
   never be proven clean), but zero-copy does: the pin is a synchronous
   CPU-side call, the pinned range is registered with the dependency
   tracker, and the kernel then addresses host memory in place. *)
let map_async ?(always = false) t ~(stream : Driver.stream) (haddr : Addr.t) ~(bytes : int)
    (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e ->
      e.e_refcount <- e.e_refcount + 1;
      Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)
    | None -> (
      let d = resolve_mode ~async:true t haddr ~bytes ~mt ~always in
      emit_policy_decide t ~haddr ~bytes d;
      match d.Mempolicy.d_mode with
      | Mempolicy.Zerocopy -> map_zerocopy t haddr ~bytes mt
      | Mempolicy.Elide | Mempolicy.Copy -> (
        try
          if parking_possible t then drop_resident_overlapping t haddr ~bytes;
          let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
          let e = fresh_entry t ~haddr ~bytes ~dev ~mt ~mode:Mempolicy.Copy in
          snapshot_map_counters t e;
          (match mt with
          | To | Tofrom ->
            guard t ~label:"map_h2d" (fun () ->
                Driver.memcpy_h2d_async t.driver ~stream ~host:t.host ~src:haddr ~dst:dev
                  ~len:bytes)
          | Alloc | From -> ());
          t.entries <- e :: t.entries;
          dev
        with Resilience.Device_dead reason ->
          declare_dead t ~reason;
          haddr))

let unmap_async ?always:(_ = false) t ~(stream : Driver.stream) (haddr : Addr.t) (mt : map_type) :
    unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e when e.e_zerocopy ->
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then begin
      observe_release t e;
      unregister_pinned t e.e_host ~bytes:e.e_bytes;
      Driver.host_unregister t.driver e.e_host;
      t.entries <- List.filter (fun e' -> e' != e) t.entries
    end
  | Some e -> (
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then
      try
        (match mt with
        | From | Tofrom ->
          guard t ~label:"unmap_d2h" (fun () ->
              Driver.memcpy_d2h_async t.driver ~stream ~host:t.host ~src:e.e_dev ~dst:e.e_host
                ~len:e.e_bytes)
        | Alloc | To -> ());
        observe_release t e;
        Driver.mem_free t.driver e.e_dev;
        t.entries <- List.filter (fun e' -> e' != e) t.entries
      with Resilience.Device_dead reason -> declare_dead t ~reason)

(* Page-wise [target update] elision over a sub-range of an elide-mode
   entry: skip the provably-clean pages, transfer the dirty ones (only
   their intersection with the requested range), and refresh the page
   digests of fully-covered transferred pages — after the copy those
   pages' images agree again, so a repeated update of the same range is
   free.  Returns [None] when per-page reasoning is unavailable or not
   worth it (the caller falls back to the full-range copy, which is
   always sound: stale page digests only ever read as dirty). *)
let update_partial t e (dir : [ `H2d | `D2h ]) ~(rel_off : int) ~(len : int) : int option =
  match dirty_pages t e with
  | None -> None
  | Some dirty ->
    let pb = t.de_page_bytes in
    let p0 = rel_off / pb and p1 = (rel_off + len - 1) / pb in
    let label = match dir with `H2d -> "update_to" | `D2h -> "update_from" in
    let pds = match e.e_page_digests with Some a -> a | None -> assert false in
    let to_copy = ref [] in
    for p = p1 downto p0 do
      if dirty.(p) then to_copy := p :: !to_copy
    done;
    let n_range = p1 - p0 + 1 in
    let n_copy = List.length !to_copy in
    if n_copy = 0 then Some n_range
    else begin
      let cost =
        List.fold_left
          (fun a p ->
            let lo = max rel_off (p * pb) and hi = min (rel_off + len) ((p + 1) * pb) in
            a +. transfer_cost_ns t (hi - lo))
          0.0 !to_copy
      in
      if n_copy = n_range || cost >= transfer_cost_ns t len then None
      else begin
        List.iter
          (fun p ->
            let lo = max rel_off (p * pb) and hi = min (rel_off + len) ((p + 1) * pb) in
            run_copy t e ~label dir ~off:lo ~len:(hi - lo);
            (* fully-covered page: images agree again at the current host
               content; partially-covered: agreement unknown *)
            let page_lo = p * pb and page_hi = min e.e_bytes ((p + 1) * pb) in
            if lo = page_lo && hi = page_hi then pds.(p) <- Some (page_digest t e p)
            else pds.(p) <- None)
          !to_copy;
        Some (n_range - n_copy)
      end
    end

let update_to t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update to: range not mapped"
    | Some e -> (
      (* `target update` on a range mid-flight in a stream: the queued
         work must complete first (emits a cat:"async" range_sync). *)
      async_sync_range t haddr ~bytes;
      if not e.e_zerocopy then
        try
          match update_partial t e `H2d ~rel_off:(haddr.Addr.off - e.e_host.Addr.off) ~len:bytes with
          | Some pages ->
            t.elided_h2d_pages <- t.elided_h2d_pages + pages;
            if pages * t.de_page_bytes >= bytes then begin
              (* every covered page was clean: the whole update is a no-op *)
              t.elided_update_to <- t.elided_update_to + 1;
              tr_mem t "elide_update_to" ~args:[ ("bytes", Perf.Trace.Int bytes) ]
            end
          | None ->
            guard t ~label:"update_to" (fun () ->
                Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:(dev_of e haddr) ~len:bytes);
            if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

let update_from t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update from: range not mapped"
    | Some e -> (
      async_sync_range t haddr ~bytes;
      if not e.e_zerocopy then
        try
          match update_partial t e `D2h ~rel_off:(haddr.Addr.off - e.e_host.Addr.off) ~len:bytes with
          | Some pages ->
            t.elided_d2h_pages <- t.elided_d2h_pages + pages;
            if pages * t.de_page_bytes >= bytes then begin
              t.elided_update_from <- t.elided_update_from + 1;
              tr_mem t "elide_update_from" ~args:[ ("bytes", Perf.Trace.Int bytes) ]
            end
          | None ->
            guard t ~label:"update_from" (fun () ->
                Driver.memcpy_d2h t.driver ~host:t.host ~src:(dev_of e haddr) ~dst:haddr ~len:bytes);
            if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

(* ------------------------- multi-device support ------------------------- *)

(* The extent of the present-table entry containing a host address: what
   the shard planner broadcasts to the other devices. *)
type extent = { x_host : Addr.t; x_bytes : int; x_zerocopy : bool }

let find_extent t (haddr : Addr.t) : extent option =
  if is_dead t then None
  else
    match find_containing t haddr ~bytes:1 with
    | None -> None
    | Some e -> Some { x_host = e.e_host; x_bytes = e.e_bytes; x_zerocopy = e.e_zerocopy }

(* Bring the host image of the containing entry up to date (d2h) unless
   it provably already is.  The shard planner calls this before
   broadcasting an operand to secondary devices, so a range kept
   resident by an enclosing [target data] still broadcasts its current
   value rather than the stale host bytes. *)
let refresh_host t (haddr : Addr.t) : unit =
  if not (is_dead t) then
    match find_containing t haddr ~bytes:1 with
    | None -> ()
    | Some e when e.e_zerocopy -> ()
    | Some e ->
      (* Synced entries know exactly whether a kernel has written the
         allocation since; unsynced ones (alloc/from: device image born
         uninitialised) hold live data only once some kernel has run —
         the same criterion the death-salvage path uses. *)
      let may_hold_live_data =
        if e.e_synced then not (device_unwritten t e)
        else t.driver.Driver.kernels_launched > e.e_launches_at_map
      in
      if may_hold_live_data then (
        try
          guard t ~label:"shard_refresh_d2h" (fun () ->
              Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes);
          mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

let active_mappings t = List.length t.entries

let resident_buffers t = List.length t.resident

let resident_bytes t = t.resident_bytes

let set_resident_cap_bytes t cap =
  if cap < 0 then invalid_arg "Dataenv.set_resident_cap_bytes: negative budget";
  t.resident_cap_bytes <- cap;
  (* Shrinking the budget applies immediately: evict LRU down to it. *)
  while t.resident_bytes > t.resident_cap_bytes do
    match List.rev t.resident with
    | last :: rev_rest ->
      Driver.mem_free t.driver last.e_dev;
      t.resident_bytes <- t.resident_bytes - last.e_bytes;
      tr_mem t "resident_evict"
        ~args:[ ("bytes", Perf.Trace.Int last.e_bytes); ("reason", Perf.Trace.Str "budget") ];
      t.resident <- List.rev rev_rest
    | [] -> assert false
  done
