(* Device data environment (paper §2, §4.2.1): tracks which host ranges
   are mapped to device memory, with OpenMP present/refcount semantics:

   - mapping an already-present range only increments its refcount (no
     transfer), which is what makes [target data] regions effective at
     eliminating redundant movement;
   - the final unmap performs the from/tofrom copy-back and frees the
     device buffer;
   - [target update] moves data for present ranges without changing
     refcounts.

   On top of that sit two unified-memory optimisations, both opt-in:

   - transfer elision ([set_elide]): released buffers are parked in a
     small resident cache instead of freed, and both directions of the
     copy are skipped when host and device images provably still agree —
     the host side via a digest taken at the last synchronisation point,
     the device side via the driver's cumulative per-allocation store
     counts and its conservative write epoch.  A map with the [always]
     modifier forces the copies regardless;
   - zero-copy ([set_zerocopy]): the Nano's CPU and GPU share DRAM, so a
     map pins the host range (cuMemHostRegister) and hands the kernel
     the host address itself — no device buffer and no copies at all;
     the cost model charges the kernel's uncached accesses instead.

   Driver calls made here are fallible under fault injection; they are
   wrapped in the Resilience retry policy, and when an operation still
   fails the device is declared dead: live from/tofrom mappings are
   salvaged back to the host (the simulated device's global memory stays
   readable after compute faults) and every subsequent data-environment
   operation degrades to a host-memory no-op, so the program continues
   on the sequential fallback path. *)

open Machine
open Gpusim

exception Map_error of string

let map_error fmt = Format.kasprintf (fun s -> raise (Map_error s)) fmt

type map_type = Alloc | To | From | Tofrom [@@deriving show { with_path = false }, eq]

let map_type_of_int = function
  | 0 -> Alloc
  | 1 -> To
  | 2 -> From
  | 3 -> Tofrom
  | n -> map_error "bad map type code %d" n

(* The generated ort_map calls encode the [always] modifier as bit 4 on
   top of the two-bit map type. *)
let decode_map_code n : map_type * bool = (map_type_of_int (n land 3), n land 4 <> 0)

type entry = {
  e_host : Addr.t;
  e_bytes : int;
  e_dev : Addr.t; (* aliases e_host in zero-copy mode *)
  mutable e_refcount : int;
  e_map : map_type; (* type used at initial mapping *)
  mutable e_launches_at_map : int; (* driver launch count when (re-)mapped *)
  e_zerocopy : bool;
  e_alloc_id : int; (* device allocation id; -1 for zero-copy entries *)
  (* Last point where host and device images provably agreed (end of a
     successful h2d or d2h over the full extent).  [e_synced] stays false
     for alloc/from mappings until their first copy-back: their device
     image starts uninitialised, so eliding the d2h would change what
     lands in host memory. *)
  mutable e_synced : bool;
  mutable e_stores_at_sync : int; (* Driver.alloc_stores at that point *)
  mutable e_epoch_at_sync : int; (* Driver.write_epoch at that point *)
  mutable e_digest : Digest.t option; (* host-range digest at that point *)
}

type stats = { elided_h2d : int; elided_d2h : int; zerocopy_accesses : int }

type t = {
  mutable entries : entry list;
  host : Mem.t;
  driver : Driver.t;
  mutable de_dead : string option; (* Some reason once the device is declared dead *)
  mutable de_policy : Resilience.policy;
  (* Async-awareness hooks, installed by Rt against its stream tracker
     (kept as closures so this module does not depend on Async): is any
     queued stream work touching this host range, and wait for it. *)
  mutable de_pending : (Addr.t -> bytes:int -> bool) option;
  mutable de_sync_range : (Addr.t -> bytes:int -> unit) option;
  mutable de_elide : bool;
  mutable de_zerocopy : bool;
  mutable resident : entry list; (* refcount-0 parked buffers, MRU first *)
  (* Eviction is byte-accounted, not entry-counted: a multiplexing
     server parks buffers of wildly different sizes, and counting
     entries would let one large session flush every small session's
     buffer while staying "under budget". *)
  mutable resident_cap_bytes : int;
  mutable resident_bytes : int;
  mutable elided_h2d : int;
  mutable elided_d2h : int;
}

(* Roughly a quarter of the Nano's 4 MiB L2 worth of parked images: big
   enough for a server's worth of small per-session buffers, small
   enough that parking is a cache, not a leak. *)
let default_resident_cap_bytes = 1 lsl 20

let create ~(host : Mem.t) ~(driver : Driver.t) =
  {
    entries = [];
    host;
    driver;
    de_dead = None;
    de_policy = Resilience.default_policy;
    de_pending = None;
    de_sync_range = None;
    de_elide = false;
    de_zerocopy = false;
    resident = [];
    resident_cap_bytes = default_resident_cap_bytes;
    resident_bytes = 0;
    elided_h2d = 0;
    elided_d2h = 0;
  }

let is_dead t = t.de_dead <> None

let dead_reason t = t.de_dead

let set_policy t policy = t.de_policy <- policy

let set_elide t on = t.de_elide <- on

let set_zerocopy t on = t.de_zerocopy <- on

let stats t =
  {
    elided_h2d = t.elided_h2d;
    elided_d2h = t.elided_d2h;
    zerocopy_accesses = t.driver.Driver.zerocopy_total;
  }

let set_async_hooks t ~(pending : Addr.t -> bytes:int -> bool)
    ~(sync_range : Addr.t -> bytes:int -> unit) : unit =
  t.de_pending <- Some pending;
  t.de_sync_range <- Some sync_range

let async_pending t haddr ~bytes =
  match t.de_pending with Some f -> f haddr ~bytes | None -> false

let async_sync_range t haddr ~bytes =
  match t.de_sync_range with Some f -> f haddr ~bytes | None -> ()

let tr_instant t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"fault" name
  | None -> ()

let tr_mem t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"mem" name
  | None -> ()

(* Retry-wrap one fallible driver call under this environment's policy. *)
let guard t ~label f =
  Resilience.run ~clock:t.driver.Driver.clock ?trace:t.driver.Driver.trace ~policy:t.de_policy
    ~label f

(* ------------------------- elision bookkeeping ------------------------- *)

let host_digest t e = Digest.subbytes t.host.Mem.data e.e_host.Addr.off e.e_bytes

let digest_matches t e =
  match e.e_digest with Some d -> Digest.equal d (host_digest t e) | None -> false

(* Record "host and device agree over the full extent right now". *)
let mark_synced t e =
  if not e.e_zerocopy then begin
    e.e_stores_at_sync <- Driver.alloc_stores t.driver e.e_alloc_id;
    e.e_epoch_at_sync <- t.driver.Driver.write_epoch;
    e.e_digest <- Some (host_digest t e);
    e.e_synced <- true
  end

(* Has no kernel (provably) written this allocation since the sync point?
   A write-epoch bump means some launch's store counts were incomplete
   (block sampling, context reset) — assume everything was written. *)
let device_unwritten t e =
  t.driver.Driver.write_epoch = e.e_epoch_at_sync
  && Driver.alloc_stores t.driver e.e_alloc_id = e.e_stores_at_sync

(* Both images provably identical: safe to skip a transfer entirely. *)
let images_agree t e = e.e_synced && device_unwritten t e && digest_matches t e

let fresh_entry t ~haddr ~bytes ~dev ~(mt : map_type) ~zerocopy =
  {
    e_host = haddr;
    e_bytes = bytes;
    e_dev = dev;
    e_refcount = 1;
    e_map = mt;
    e_launches_at_map = t.driver.Driver.kernels_launched;
    e_zerocopy = zerocopy;
    e_alloc_id =
      (if zerocopy then -1 else Option.value ~default:(-1) (Driver.alloc_id_of t.driver dev));
    e_synced = false;
    e_stores_at_sync = 0;
    e_epoch_at_sync = 0;
    e_digest = None;
  }

(* Pull a parked buffer covering [haddr, haddr+bytes) out of the resident
   cache, if any. *)
let take_resident t (haddr : Addr.t) ~bytes : entry option =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
      if
        Addr.equal_space e.e_host.Addr.space haddr.Addr.space
        && haddr.Addr.off >= e.e_host.Addr.off
        && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes
      then begin
        t.resident <- List.rev_append acc rest;
        t.resident_bytes <- t.resident_bytes - e.e_bytes;
        Some e
      end
      else go (e :: acc) rest
  in
  go [] t.resident

(* A fresh device buffer is about to cover this host range: any parked
   buffer overlapping it would go stale, so drop those now. *)
let drop_resident_overlapping t (haddr : Addr.t) ~bytes =
  let overlaps e =
    Addr.equal_space e.e_host.Addr.space haddr.Addr.space
    && haddr.Addr.off < e.e_host.Addr.off + e.e_bytes
    && e.e_host.Addr.off < haddr.Addr.off + bytes
  in
  let dead, keep = List.partition overlaps t.resident in
  List.iter
    (fun e ->
      Driver.mem_free t.driver e.e_dev;
      t.resident_bytes <- t.resident_bytes - e.e_bytes)
    dead;
  t.resident <- keep

(* Park a released buffer under the byte budget: LRU entries are evicted
   from the tail until the new total fits.  A buffer larger than the
   whole budget is freed outright instead of parked — parking it would
   evict every other session's buffer for a cache entry that cannot be
   joined by any other. *)
let park_resident t e =
  if e.e_bytes > t.resident_cap_bytes then begin
    Driver.mem_free t.driver e.e_dev;
    tr_mem t "resident_evict"
      ~args:[ ("bytes", Perf.Trace.Int e.e_bytes); ("reason", Perf.Trace.Str "oversized") ]
  end
  else begin
    t.resident <- e :: t.resident;
    t.resident_bytes <- t.resident_bytes + e.e_bytes;
    while t.resident_bytes > t.resident_cap_bytes do
      match List.rev t.resident with
      | last :: rev_rest ->
        Driver.mem_free t.driver last.e_dev;
        t.resident_bytes <- t.resident_bytes - last.e_bytes;
        tr_mem t "resident_evict"
          ~args:[ ("bytes", Perf.Trace.Int last.e_bytes); ("reason", Perf.Trace.Str "lru") ];
        t.resident <- List.rev rev_rest
      | [] -> assert false (* resident_bytes > 0 implies a parked entry *)
    done
  end

(* ----------------------------- fault path ----------------------------- *)

(* Declare the device dead (idempotent).  A mapping's device image is
   the current logical value of the data whenever a kernel has launched
   since it was mapped — earlier successful target regions may have
   computed into it regardless of its map type (think [target enter
   data] residency across an iteration loop) — so such entries are
   salvaged with raw copies before the environment is dropped.  Entries
   no kernel could have touched are skipped: for to/tofrom the host copy
   is identical, and for alloc/from the device image is uninitialised
   and salvaging it would clobber live host data.  Zero-copy entries
   need no salvage (the data already lives in host memory), and parked
   resident buffers hold nothing the host does not already have. *)
let declare_dead ?(salvage = true) t ~(reason : string) : unit =
  if not (is_dead t) then begin
    t.de_dead <- Some reason;
    tr_instant t "device_dead"
      ~args:
        [
          ("reason", Perf.Trace.Str reason);
          ("live_mappings", Perf.Trace.Int (List.length t.entries));
        ];
    (* [salvage:false] is for callers who already hold a newer image of
       every live mapping in host memory (the multi-device shard merger):
       copying the dead device's image back would clobber it. *)
    if salvage then
      List.iter
        (fun e ->
          if (not e.e_zerocopy) && t.driver.Driver.kernels_launched > e.e_launches_at_map then
            Driver.salvage_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes)
        t.entries;
    t.entries <- [];
    t.resident <- [];
    t.resident_bytes <- 0
  end

let find_containing t (haddr : Addr.t) ~bytes =
  List.find_opt
    (fun e ->
      Addr.equal_space e.e_host.Addr.space haddr.Addr.space
      && haddr.Addr.off >= e.e_host.Addr.off
      && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes)
    t.entries

(* Translate a host address inside a mapped range to its device image.
   On a dead device the host address is its own image: the fallback
   path works directly on host memory.  (For zero-copy entries the
   translation is the identity, since e_dev aliases e_host.) *)
let lookup t (haddr : Addr.t) : Addr.t option =
  if is_dead t then Some haddr
  else
    match find_containing t haddr ~bytes:1 with
    | Some e -> Some (Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
    | None -> None

let lookup_exn t haddr =
  match lookup t haddr with
  | Some d -> d
  | None -> map_error "host address %s is not mapped on the device" (Addr.show haddr)

let is_present t haddr ~bytes = (not (is_dead t)) && find_containing t haddr ~bytes <> None

let dev_of e (haddr : Addr.t) = Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)

(* Map a host range; returns the corresponding device address. *)
let map ?(always = false) t (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e -> (
      e.e_refcount <- e.e_refcount + 1;
      (* map(always, to:) transfers even when the range is present *)
      (match mt with
      | (To | Tofrom) when always && not e.e_zerocopy -> (
        try
          guard t ~label:"map_h2d" (fun () ->
              Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:(dev_of e haddr) ~len:bytes);
          if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)
      | _ -> ());
      if is_dead t then haddr else dev_of e haddr)
    | None when t.de_zerocopy ->
      (* Unified memory: pin the range and let the kernel address it in
         place.  No device buffer, no copies in either direction. *)
      Driver.host_register t.driver ~host:t.host ~addr:haddr ~bytes;
      t.entries <- fresh_entry t ~haddr ~bytes ~dev:haddr ~mt ~zerocopy:true :: t.entries;
      tr_mem t "zerocopy_map" ~args:[ ("bytes", Perf.Trace.Int bytes) ];
      haddr
    | None -> (
      let revived =
        if t.de_elide && not always then
          (* only to/tofrom maps may revive a parked buffer: alloc/from
             expect an uninitialised device image, which a reused buffer
             would not provide *)
          match mt with To | Tofrom -> take_resident t haddr ~bytes | Alloc | From -> None
        else None
      in
      match revived with
      | Some e -> (
        e.e_refcount <- 1;
        e.e_launches_at_map <- t.driver.Driver.kernels_launched;
        if (not (async_pending t e.e_host ~bytes:e.e_bytes)) && images_agree t e then begin
          (* resident and clean on both sides: the h2d is a no-op *)
          t.elided_h2d <- t.elided_h2d + 1;
          tr_mem t "elide_h2d" ~args:[ ("bytes", Perf.Trace.Int e.e_bytes) ];
          t.entries <- e :: t.entries;
          dev_of e haddr
        end
        else begin
          (* stale (or still in flight): settle any queued work on the
             range, then refresh the reused buffer with a real copy *)
          if async_pending t e.e_host ~bytes:e.e_bytes then
            async_sync_range t e.e_host ~bytes:e.e_bytes;
          try
            guard t ~label:"map_h2d" (fun () ->
                Driver.memcpy_h2d t.driver ~host:t.host ~src:e.e_host ~dst:e.e_dev ~len:e.e_bytes);
            mark_synced t e;
            t.entries <- e :: t.entries;
            dev_of e haddr
          with Resilience.Device_dead reason ->
            declare_dead t ~reason;
            haddr
        end)
      | None -> (
        try
          if t.de_elide then drop_resident_overlapping t haddr ~bytes;
          let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
          let e = fresh_entry t ~haddr ~bytes ~dev ~mt ~zerocopy:false in
          (match mt with
          | To | Tofrom ->
            guard t ~label:"map_h2d" (fun () ->
                Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:dev ~len:bytes);
            mark_synced t e
          | Alloc | From -> ());
          t.entries <- e :: t.entries;
          dev
        with Resilience.Device_dead reason ->
          declare_dead t ~reason;
          haddr))

(* Unmap (end of construct / target exit data).  The map type decides
   whether data flows back on the final release. *)
let unmap ?(always = false) t (haddr : Addr.t) (mt : map_type) : unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e when e.e_zerocopy ->
    if e.e_refcount <= 1 && async_pending t e.e_host ~bytes:e.e_bytes then
      map_error "unmap of range %s with async work in flight (missing taskwait?)"
        (Addr.show e.e_host);
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then begin
      Driver.host_unregister t.driver e.e_host;
      t.entries <- List.filter (fun e' -> e' != e) t.entries
    end
  | Some e -> (
    (* Releasing the device buffer while queued stream work still
       touches the range would free storage in flight: a program bug
       (missing taskwait), reported as such. *)
    if e.e_refcount <= 1 && async_pending t e.e_host ~bytes:e.e_bytes then
      map_error "unmap of range %s with async work in flight (missing taskwait?)"
        (Addr.show e.e_host);
    (* map(always, from:) copies back on every decrement, not only the
       final release *)
    (match mt with
    | (From | Tofrom) when always && e.e_refcount > 1 -> (
      try
        guard t ~label:"unmap_d2h" (fun () ->
            Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes);
        mark_synced t e
      with Resilience.Device_dead reason -> declare_dead t ~reason)
    | _ -> ());
    if not (is_dead t) then begin
      e.e_refcount <- e.e_refcount - 1;
      if e.e_refcount <= 0 then
        try
          (match mt with
          | From | Tofrom ->
            if t.de_elide && (not always) && images_agree t e then begin
              (* no kernel wrote the buffer and the host range is
                 untouched since the last sync: the d2h is a no-op *)
              t.elided_d2h <- t.elided_d2h + 1;
              tr_mem t "elide_d2h" ~args:[ ("bytes", Perf.Trace.Int e.e_bytes) ]
            end
            else begin
              guard t ~label:"unmap_d2h" (fun () ->
                  Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes);
              mark_synced t e
            end
          | Alloc | To -> ());
          t.entries <- List.filter (fun e' -> e' != e) t.entries;
          if t.de_elide then park_resident t e else Driver.mem_free t.driver e.e_dev
        with Resilience.Device_dead reason ->
          (* declare_dead salvages this still-registered from/tofrom entry,
             completing the copy-back the retries could not *)
          declare_dead t ~reason
    end)

(* Async variants, called from inside a stream task: transfers are
   enqueued on [stream] (memory effects eager, costs on the stream's
   timeline).  Alloc/free stay synchronous — they are CPU-side driver
   calls.  No pending-range checks here: the caller IS the in-flight
   work.  Neither elision nor zero-copy applies on this path: an
   in-flight range can never be proven clean, and zero-copy + streams
   is an open item (see ROADMAP). *)
let map_async ?always:(_ = false) t ~(stream : Driver.stream) (haddr : Addr.t) ~(bytes : int)
    (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e ->
      e.e_refcount <- e.e_refcount + 1;
      Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)
    | None -> (
      try
        if t.de_elide then drop_resident_overlapping t haddr ~bytes;
        let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
        (match mt with
        | To | Tofrom ->
          guard t ~label:"map_h2d" (fun () ->
              Driver.memcpy_h2d_async t.driver ~stream ~host:t.host ~src:haddr ~dst:dev ~len:bytes)
        | Alloc | From -> ());
        t.entries <- fresh_entry t ~haddr ~bytes ~dev ~mt ~zerocopy:false :: t.entries;
        dev
      with Resilience.Device_dead reason ->
        declare_dead t ~reason;
        haddr)

let unmap_async ?always:(_ = false) t ~(stream : Driver.stream) (haddr : Addr.t) (mt : map_type) :
    unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e -> (
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then
      try
        (match mt with
        | From | Tofrom ->
          guard t ~label:"unmap_d2h" (fun () ->
              Driver.memcpy_d2h_async t.driver ~stream ~host:t.host ~src:e.e_dev ~dst:e.e_host
                ~len:e.e_bytes)
        | Alloc | To -> ());
        Driver.mem_free t.driver e.e_dev;
        t.entries <- List.filter (fun e' -> e' != e) t.entries
      with Resilience.Device_dead reason -> declare_dead t ~reason)

let update_to t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update to: range not mapped"
    | Some e -> (
      (* `target update` on a range mid-flight in a stream: the queued
         work must complete first (emits a cat:"async" range_sync). *)
      async_sync_range t haddr ~bytes;
      if not e.e_zerocopy then
        try
          guard t ~label:"update_to" (fun () ->
              Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:(dev_of e haddr) ~len:bytes);
          if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

let update_from t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update from: range not mapped"
    | Some e -> (
      async_sync_range t haddr ~bytes;
      if not e.e_zerocopy then
        try
          guard t ~label:"update_from" (fun () ->
              Driver.memcpy_d2h t.driver ~host:t.host ~src:(dev_of e haddr) ~dst:haddr ~len:bytes);
          if Addr.equal haddr e.e_host && bytes = e.e_bytes then mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

(* ------------------------- multi-device support ------------------------- *)

(* The extent of the present-table entry containing a host address: what
   the shard planner broadcasts to the other devices. *)
type extent = { x_host : Addr.t; x_bytes : int; x_zerocopy : bool }

let find_extent t (haddr : Addr.t) : extent option =
  if is_dead t then None
  else
    match find_containing t haddr ~bytes:1 with
    | None -> None
    | Some e -> Some { x_host = e.e_host; x_bytes = e.e_bytes; x_zerocopy = e.e_zerocopy }

(* Bring the host image of the containing entry up to date (d2h) unless
   it provably already is.  The shard planner calls this before
   broadcasting an operand to secondary devices, so a range kept
   resident by an enclosing [target data] still broadcasts its current
   value rather than the stale host bytes. *)
let refresh_host t (haddr : Addr.t) : unit =
  if not (is_dead t) then
    match find_containing t haddr ~bytes:1 with
    | None -> ()
    | Some e when e.e_zerocopy -> ()
    | Some e ->
      (* Synced entries know exactly whether a kernel has written the
         allocation since; unsynced ones (alloc/from: device image born
         uninitialised) hold live data only once some kernel has run —
         the same criterion the death-salvage path uses. *)
      let may_hold_live_data =
        if e.e_synced then not (device_unwritten t e)
        else t.driver.Driver.kernels_launched > e.e_launches_at_map
      in
      if may_hold_live_data then (
        try
          guard t ~label:"shard_refresh_d2h" (fun () ->
              Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes);
          mark_synced t e
        with Resilience.Device_dead reason -> declare_dead t ~reason)

let active_mappings t = List.length t.entries

let resident_buffers t = List.length t.resident

let resident_bytes t = t.resident_bytes

let set_resident_cap_bytes t cap =
  if cap < 0 then invalid_arg "Dataenv.set_resident_cap_bytes: negative budget";
  t.resident_cap_bytes <- cap;
  (* Shrinking the budget applies immediately: evict LRU down to it. *)
  while t.resident_bytes > t.resident_cap_bytes do
    match List.rev t.resident with
    | last :: rev_rest ->
      Driver.mem_free t.driver last.e_dev;
      t.resident_bytes <- t.resident_bytes - last.e_bytes;
      tr_mem t "resident_evict"
        ~args:[ ("bytes", Perf.Trace.Int last.e_bytes); ("reason", Perf.Trace.Str "budget") ];
      t.resident <- List.rev rev_rest
    | [] -> assert false
  done
