(* Device data environment (paper §2, §4.2.1): tracks which host ranges
   are mapped to device memory, with OpenMP present/refcount semantics:

   - mapping an already-present range only increments its refcount (no
     transfer), which is what makes [target data] regions effective at
     eliminating redundant movement;
   - the final unmap performs the from/tofrom copy-back and frees the
     device buffer;
   - [target update] moves data for present ranges without changing
     refcounts.

   Driver calls made here are fallible under fault injection; they are
   wrapped in the Resilience retry policy, and when an operation still
   fails the device is declared dead: live from/tofrom mappings are
   salvaged back to the host (the simulated device's global memory stays
   readable after compute faults) and every subsequent data-environment
   operation degrades to a host-memory no-op, so the program continues
   on the sequential fallback path. *)

open Machine
open Gpusim

exception Map_error of string

let map_error fmt = Format.kasprintf (fun s -> raise (Map_error s)) fmt

type map_type = Alloc | To | From | Tofrom [@@deriving show { with_path = false }, eq]

let map_type_of_int = function
  | 0 -> Alloc
  | 1 -> To
  | 2 -> From
  | 3 -> Tofrom
  | n -> map_error "bad map type code %d" n

type entry = {
  e_host : Addr.t;
  e_bytes : int;
  e_dev : Addr.t;
  mutable e_refcount : int;
  e_map : map_type; (* type used at initial mapping *)
  e_launches_at_map : int; (* driver launch count when mapped *)
}

type t = {
  mutable entries : entry list;
  host : Mem.t;
  driver : Driver.t;
  mutable de_dead : string option; (* Some reason once the device is declared dead *)
  mutable de_policy : Resilience.policy;
  (* Async-awareness hooks, installed by Rt against its stream tracker
     (kept as closures so this module does not depend on Async): is any
     queued stream work touching this host range, and wait for it. *)
  mutable de_pending : (Addr.t -> bytes:int -> bool) option;
  mutable de_sync_range : (Addr.t -> bytes:int -> unit) option;
}

let create ~(host : Mem.t) ~(driver : Driver.t) =
  {
    entries = [];
    host;
    driver;
    de_dead = None;
    de_policy = Resilience.default_policy;
    de_pending = None;
    de_sync_range = None;
  }

let is_dead t = t.de_dead <> None

let dead_reason t = t.de_dead

let set_policy t policy = t.de_policy <- policy

let set_async_hooks t ~(pending : Addr.t -> bytes:int -> bool)
    ~(sync_range : Addr.t -> bytes:int -> unit) : unit =
  t.de_pending <- Some pending;
  t.de_sync_range <- Some sync_range

let async_pending t haddr ~bytes =
  match t.de_pending with Some f -> f haddr ~bytes | None -> false

let async_sync_range t haddr ~bytes =
  match t.de_sync_range with Some f -> f haddr ~bytes | None -> ()

let tr_instant t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"fault" name
  | None -> ()

(* Retry-wrap one fallible driver call under this environment's policy. *)
let guard t ~label f =
  Resilience.run ~clock:t.driver.Driver.clock ?trace:t.driver.Driver.trace ~policy:t.de_policy
    ~label f

(* Declare the device dead (idempotent).  A mapping's device image is
   the current logical value of the data whenever a kernel has launched
   since it was mapped — earlier successful target regions may have
   computed into it regardless of its map type (think [target enter
   data] residency across an iteration loop) — so such entries are
   salvaged with raw copies before the environment is dropped.  Entries
   no kernel could have touched are skipped: for to/tofrom the host copy
   is identical, and for alloc/from the device image is uninitialised
   and salvaging it would clobber live host data. *)
let declare_dead t ~(reason : string) : unit =
  if not (is_dead t) then begin
    t.de_dead <- Some reason;
    tr_instant t "device_dead"
      ~args:
        [
          ("reason", Perf.Trace.Str reason);
          ("live_mappings", Perf.Trace.Int (List.length t.entries));
        ];
    List.iter
      (fun e ->
        if t.driver.Driver.kernels_launched > e.e_launches_at_map then
          Driver.salvage_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes)
      t.entries;
    t.entries <- []
  end

let find_containing t (haddr : Addr.t) ~bytes =
  List.find_opt
    (fun e ->
      Addr.equal_space e.e_host.Addr.space haddr.Addr.space
      && haddr.Addr.off >= e.e_host.Addr.off
      && haddr.Addr.off + bytes <= e.e_host.Addr.off + e.e_bytes)
    t.entries

(* Translate a host address inside a mapped range to its device image.
   On a dead device the host address is its own image: the fallback
   path works directly on host memory. *)
let lookup t (haddr : Addr.t) : Addr.t option =
  if is_dead t then Some haddr
  else
    match find_containing t haddr ~bytes:1 with
    | Some e -> Some (Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
    | None -> None

let lookup_exn t haddr =
  match lookup t haddr with
  | Some d -> d
  | None -> map_error "host address %s is not mapped on the device" (Addr.show haddr)

let is_present t haddr ~bytes = (not (is_dead t)) && find_containing t haddr ~bytes <> None

(* Map a host range; returns the corresponding device address. *)
let map t (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e ->
      e.e_refcount <- e.e_refcount + 1;
      Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)
    | None -> (
      try
        let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
        (match mt with
        | To | Tofrom ->
          guard t ~label:"map_h2d" (fun () ->
              Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr ~dst:dev ~len:bytes)
        | Alloc | From -> ());
        t.entries <-
          {
            e_host = haddr;
            e_bytes = bytes;
            e_dev = dev;
            e_refcount = 1;
            e_map = mt;
            e_launches_at_map = t.driver.Driver.kernels_launched;
          }
          :: t.entries;
        dev
      with Resilience.Device_dead reason ->
        declare_dead t ~reason;
        haddr)

(* Unmap (end of construct / target exit data).  The map type decides
   whether data flows back on the final release. *)
let unmap t (haddr : Addr.t) (mt : map_type) : unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e -> (
    (* Releasing the device buffer while queued stream work still
       touches the range would free storage in flight: a program bug
       (missing taskwait), reported as such. *)
    if e.e_refcount <= 1 && async_pending t e.e_host ~bytes:e.e_bytes then
      map_error "unmap of range %s with async work in flight (missing taskwait?)"
        (Addr.show e.e_host);
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then
      try
        (match mt with
        | From | Tofrom ->
          guard t ~label:"unmap_d2h" (fun () ->
              Driver.memcpy_d2h t.driver ~host:t.host ~src:e.e_dev ~dst:e.e_host ~len:e.e_bytes)
        | Alloc | To -> ());
        Driver.mem_free t.driver e.e_dev;
        t.entries <- List.filter (fun e' -> e' != e) t.entries
      with Resilience.Device_dead reason ->
        (* declare_dead salvages this still-registered from/tofrom entry,
           completing the copy-back the retries could not *)
        declare_dead t ~reason)

(* Async variants, called from inside a stream task: transfers are
   enqueued on [stream] (memory effects eager, costs on the stream's
   timeline).  Alloc/free stay synchronous — they are CPU-side driver
   calls.  No pending-range checks here: the caller IS the in-flight
   work. *)
let map_async t ~(stream : Driver.stream) (haddr : Addr.t) ~(bytes : int) (mt : map_type) : Addr.t =
  if bytes <= 0 then map_error "mapping of %d bytes" bytes;
  if is_dead t then haddr
  else
    match find_containing t haddr ~bytes with
    | Some e ->
      e.e_refcount <- e.e_refcount + 1;
      Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off)
    | None -> (
      try
        let dev = guard t ~label:"map_alloc" (fun () -> Driver.mem_alloc t.driver bytes) in
        (match mt with
        | To | Tofrom ->
          guard t ~label:"map_h2d" (fun () ->
              Driver.memcpy_h2d_async t.driver ~stream ~host:t.host ~src:haddr ~dst:dev ~len:bytes)
        | Alloc | From -> ());
        t.entries <-
          {
            e_host = haddr;
            e_bytes = bytes;
            e_dev = dev;
            e_refcount = 1;
            e_map = mt;
            e_launches_at_map = t.driver.Driver.kernels_launched;
          }
          :: t.entries;
        dev
      with Resilience.Device_dead reason ->
        declare_dead t ~reason;
        haddr)

let unmap_async t ~(stream : Driver.stream) (haddr : Addr.t) (mt : map_type) : unit =
  match find_containing t haddr ~bytes:1 with
  | None -> if not (is_dead t) then map_error "unmap of address %s that is not mapped" (Addr.show haddr)
  | Some e -> (
    e.e_refcount <- e.e_refcount - 1;
    if e.e_refcount <= 0 then
      try
        (match mt with
        | From | Tofrom ->
          guard t ~label:"unmap_d2h" (fun () ->
              Driver.memcpy_d2h_async t.driver ~stream ~host:t.host ~src:e.e_dev ~dst:e.e_host
                ~len:e.e_bytes)
        | Alloc | To -> ());
        Driver.mem_free t.driver e.e_dev;
        t.entries <- List.filter (fun e' -> e' != e) t.entries
      with Resilience.Device_dead reason -> declare_dead t ~reason)

let update_to t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update to: range not mapped"
    | Some e -> (
      (* `target update` on a range mid-flight in a stream: the queued
         work must complete first (emits a cat:"async" range_sync). *)
      async_sync_range t haddr ~bytes;
      try
        guard t ~label:"update_to" (fun () ->
            Driver.memcpy_h2d t.driver ~host:t.host ~src:haddr
              ~dst:(Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
              ~len:bytes)
      with Resilience.Device_dead reason -> declare_dead t ~reason)

let update_from t (haddr : Addr.t) ~(bytes : int) : unit =
  if is_dead t then ()
  else
    match find_containing t haddr ~bytes with
    | None -> map_error "target update from: range not mapped"
    | Some e -> (
      async_sync_range t haddr ~bytes;
      try
        guard t ~label:"update_from" (fun () ->
            Driver.memcpy_d2h t.driver ~host:t.host
              ~src:(Addr.add e.e_dev (haddr.Addr.off - e.e_host.Addr.off))
              ~dst:haddr ~len:bytes)
      with Resilience.Device_dead reason -> declare_dead t ~reason)

let active_mappings t = List.length t.entries
