(* Recovery policy for injected device faults: bounded retry with
   exponential backoff charged to the simulated clock.  Transient and
   corrupt-cache faults are retried (the caller's [on_fault] gets a
   chance to invalidate state between attempts, e.g. drop a corrupt JIT
   cache entry); fatal faults and retry exhaustion raise {!Device_dead},
   which the data environment and ort_offload translate into graceful
   degradation onto the host path.

   Every decision is traced under cat "fault": fault_injected,
   retry_backoff (with the slept delay), retry_exhausted, fault_fatal —
   so a Chrome export shows the full recovery story. *)

open Machine

type policy = {
  rp_max_retries : int; (* retries per operation, beyond the first try *)
  rp_base_backoff_us : float; (* delay before the first retry *)
  rp_backoff_mult : float; (* delay multiplier per further retry *)
}

(* Defaults follow the usual driver-retry shape: 50us, 200us, 800us. *)
let default_policy = { rp_max_retries = 3; rp_base_backoff_us = 50.0; rp_backoff_mult = 4.0 }

(* Backoff before retry [attempt] (1-based): base * mult^(attempt-1). *)
let backoff_us policy attempt =
  policy.rp_base_backoff_us *. (policy.rp_backoff_mult ** float_of_int (attempt - 1))

exception Device_dead of string

let tr_instant trace ?(args = []) name =
  match trace with Some tr -> Perf.Trace.instant tr ~args ~cat:"fault" name | None -> ()

let run ~(clock : Simclock.t) ?(trace : Perf.Trace.t option) ?(policy = default_policy)
    ?(on_fault : (Faults.site -> Faults.kind -> unit) option) ~(label : string) (f : unit -> 'a) : 'a
    =
  let rec attempt k =
    (* k = retries already spent on this operation *)
    try f ()
    with Faults.Injected { i_site; i_kind; i_count } -> (
      tr_instant trace "fault_injected"
        ~args:
          [
            ("op", Perf.Trace.Str label);
            ("site", Perf.Trace.Str (Faults.site_name i_site));
            ("kind", Perf.Trace.Str (Faults.kind_name i_kind));
            ("site_call", Perf.Trace.Int i_count);
            ("attempt", Perf.Trace.Int (k + 1));
          ];
      match i_kind with
      | Faults.Fatal ->
        tr_instant trace "fault_fatal"
          ~args:[ ("op", Perf.Trace.Str label); ("site", Perf.Trace.Str (Faults.site_name i_site)) ];
        raise
          (Device_dead
             (Printf.sprintf "fatal fault at %s during %s" (Faults.site_name i_site) label))
      | Faults.Transient | Faults.Corrupt_cache ->
        if k >= policy.rp_max_retries then begin
          tr_instant trace "retry_exhausted"
            ~args:
              [
                ("op", Perf.Trace.Str label);
                ("site", Perf.Trace.Str (Faults.site_name i_site));
                ("retries", Perf.Trace.Int k);
              ];
          raise
            (Device_dead
               (Printf.sprintf "%s failed at %s after %d retries" label
                  (Faults.site_name i_site) k))
        end;
        (match on_fault with Some g -> g i_site i_kind | None -> ());
        let delay = backoff_us policy (k + 1) in
        tr_instant trace "retry_backoff"
          ~args:
            [
              ("op", Perf.Trace.Str label);
              ("site", Perf.Trace.Str (Faults.site_name i_site));
              ("attempt", Perf.Trace.Int (k + 1));
              ("delay_us", Perf.Trace.Float delay);
            ];
        Simclock.advance_us clock delay;
        attempt (k + 1))
  in
  attempt 0
