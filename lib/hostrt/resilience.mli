(** Recovery policy for injected device faults: bounded retry with
    exponential backoff charged to the simulated clock.

    Transient and corrupt-cache faults are retried — the caller's
    [on_fault] hook runs between attempts so corrupt JIT cache entries
    can be invalidated before the recompile.  Fatal faults and retry
    exhaustion raise {!Device_dead}; callers translate that into
    graceful degradation (host fallback). *)

open Machine

type policy = {
  rp_max_retries : int;  (** retries per operation, beyond the first try *)
  rp_base_backoff_us : float;  (** delay before the first retry *)
  rp_backoff_mult : float;  (** delay multiplier per further retry *)
}

(** 3 retries, 50us base, x4 per retry: 50us, 200us, 800us. *)
val default_policy : policy

(** Backoff before retry [attempt] (1-based):
    [base * mult^(attempt-1)]. *)
val backoff_us : policy -> int -> float

exception Device_dead of string

(** [run ~clock ~label f] executes [f], retrying per [policy] when it
    raises {!Faults.Injected}.  Backoff sleeps advance [clock]; each
    injection, backoff and exhaustion emits a cat:"fault" trace event
    when [trace] is given.  Raises {!Device_dead} on a fatal fault or
    when retries are exhausted. *)
val run :
  clock:Simclock.t ->
  ?trace:Perf.Trace.t ->
  ?policy:policy ->
  ?on_fault:(Faults.site -> Faults.kind -> unit) ->
  label:string ->
  (unit -> 'a) ->
  'a
