(* Deterministic fault injection for the offload runtime.  Every
   fallible cudadev operation (alloc, transfers, module load, JIT
   compilation, kernel launch) consults an injector before doing real
   work; the injector decides — from scripted "fail the Nth call" plans
   or a seeded per-site probability — whether the call fails, and raises
   {!Injected} carrying the fault's recovery classification.

   Determinism is the point: a fault plan plus a seed reproduces the
   exact same failure schedule on every run, so recovery behaviour
   (retry counts, backoff schedule, fallback decisions) is unit-testable
   and CI-gateable. *)

type site =
  | Alloc (* cuMemAlloc: the 2GB Nano's most likely failure (OOM) *)
  | H2d (* cuMemcpyHtoD *)
  | D2h (* cuMemcpyDtoH *)
  | Module_load (* cuModuleLoad *)
  | Jit_cache (* JIT disk-cache lookup returned a corrupt entry *)
  | Jit_compile (* PTX JIT compilation *)
  | Launch (* cuLaunchKernel *)
[@@deriving show { with_path = false }, eq]

type kind =
  | Transient (* worth retrying in place *)
  | Corrupt_cache (* retry only after invalidating the JIT cache entry *)
  | Fatal (* device unusable: degrade to host execution *)
[@@deriving show { with_path = false }, eq]

exception Injected of { i_site : site; i_kind : kind; i_count : int }

let site_name = function
  | Alloc -> "alloc"
  | H2d -> "h2d"
  | D2h -> "d2h"
  | Module_load -> "module_load"
  | Jit_cache -> "jit_cache"
  | Jit_compile -> "jit_compile"
  | Launch -> "launch"

let kind_name = function
  | Transient -> "transient"
  | Corrupt_cache -> "corrupt_cache"
  | Fatal -> "fatal"

(* The spec groups some sites: a rule on "transfer" counts h2d and d2h
   calls against one shared counter, which is what "fail the 2nd
   transfer" means. *)
type rule = {
  r_sites : site list;
  r_kind : kind;
  r_nths : int list; (* fail these call indices (1-based) *)
  r_from : int option; (* fail every call from this index on *)
  r_every : int option; (* fail every k-th call *)
  r_prob : float; (* per-call failure probability *)
}

type armed = { a_rule : rule; mutable a_count : int; mutable a_fired : int }

type t = { arms : armed list; mutable rng : int64 }

let create ?(seed = 42) (rules : rule list) : t =
  {
    arms = List.map (fun r -> { a_rule = r; a_count = 0; a_fired = 0 }) rules;
    rng = Int64.of_int (seed lxor 0x9e3779b9);
  }

let reset t =
  List.iter
    (fun a ->
      a.a_count <- 0;
      a.a_fired <- 0)
    t.arms

(* 64-bit LCG (Knuth's MMIX constants); the high bits feed the uniform
   draw so the plan is reproducible without OCaml's global Random. *)
let next_float t =
  t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
  let hi = Int64.to_int (Int64.shift_right_logical t.rng 11) in
  float_of_int hi /. 9007199254740992.0 (* 2^53 *)

let rule_fires t (a : armed) : bool =
  let r = a.a_rule in
  let n = a.a_count in
  List.mem n r.r_nths
  || (match r.r_from with Some k -> n >= k | None -> false)
  || (match r.r_every with Some k -> k > 0 && n mod k = 0 | None -> false)
  || (r.r_prob > 0.0 && next_float t < r.r_prob)

(* Count this call against every rule watching [site]; raise on the
   first rule whose plan says the call fails. *)
let check t (site : site) : unit =
  List.iter
    (fun a ->
      if List.mem site a.a_rule.r_sites then begin
        a.a_count <- a.a_count + 1;
        if rule_fires t a then begin
          a.a_fired <- a.a_fired + 1;
          raise (Injected { i_site = site; i_kind = a.a_rule.r_kind; i_count = a.a_count })
        end
      end)
    t.arms

(* Injection hook as the driver sees it: sites by name, so gpusim does
   not depend on this module's types. *)
let site_of_name = function
  | "alloc" -> Some Alloc
  | "h2d" -> Some H2d
  | "d2h" -> Some D2h
  | "module_load" -> Some Module_load
  | "jit_cache" -> Some Jit_cache
  | "jit_compile" -> Some Jit_compile
  | "launch" -> Some Launch
  | _ -> None

let hook t (name : string) : unit =
  match site_of_name name with Some s -> check t s | None -> ()

let total_fired t = List.fold_left (fun acc a -> acc + a.a_fired) 0 t.arms

let total_calls t = List.fold_left (fun acc a -> acc + a.a_count) 0 t.arms

(* ---------------------------------------------------------------- *)
(* Spec parsing:  SITE[:k=v[,k=v...]] [; SITE...]                      *)
(* ---------------------------------------------------------------- *)

(* Site tokens the CLI accepts; "transfer" and "jit" are the grouped /
   idiomatic spellings. *)
let sites_of_token = function
  | "alloc" -> Some [ Alloc ]
  | "h2d" -> Some [ H2d ]
  | "d2h" -> Some [ D2h ]
  | "transfer" -> Some [ H2d; D2h ]
  | "load" | "module_load" -> Some [ Module_load ]
  | "jit" | "jit_cache" -> Some [ Jit_cache ]
  | "jit_compile" -> Some [ Jit_compile ]
  | "launch" -> Some [ Launch ]
  | _ -> None

(* Recovery classification when the spec does not say: allocation
   failures on a 2GB board are hard OOM (fatal), a corrupt JIT cache
   entry needs invalidation, everything else is worth a retry. *)
let default_kind = function
  | [ Alloc ] -> Fatal
  | [ Jit_cache ] -> Corrupt_cache
  | _ -> Transient

let spec_syntax =
  "SPEC is ';'-separated rules: SITE[:KEY=VAL[,KEY=VAL...]] with SITE one of alloc, h2d, d2h, \
   transfer, load, jit, jit_compile, launch; KEY=VAL one of nth=N (fail the Nth call, repeatable), \
   from=N (fail every call from the Nth), every=N, p=PROB, kind=transient|corrupt|fatal. Example: \
   \"transfer:nth=2;launch:p=0.1,kind=transient\""

let parse_rule (text : string) : (rule, string) result =
  let text = String.trim text in
  let site_tok, settings =
    match String.index_opt text ':' with
    | Some i -> (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
    | None -> (text, "")
  in
  match sites_of_token (String.trim site_tok) with
  | None -> Error (Printf.sprintf "unknown fault site '%s'" (String.trim site_tok))
  | Some sites ->
    let rule =
      ref
        {
          r_sites = sites;
          r_kind = default_kind sites;
          r_nths = [];
          r_from = None;
          r_every = None;
          r_prob = 0.0;
        }
    in
    let err = ref None in
    let int_of v k =
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some n
      | _ ->
        err := Some (Printf.sprintf "%s wants a positive integer, got '%s'" k v);
        None
    in
    if String.trim settings <> "" then
      List.iter
        (fun kv ->
          let kv = String.trim kv in
          match String.index_opt kv '=' with
          | None -> err := Some (Printf.sprintf "expected KEY=VAL, got '%s'" kv)
          | Some i ->
            let k = String.sub kv 0 i and v = String.sub kv (i + 1) (String.length kv - i - 1) in
            (match k with
            | "nth" ->
              Option.iter (fun n -> rule := { !rule with r_nths = !rule.r_nths @ [ n ] }) (int_of v k)
            | "from" -> Option.iter (fun n -> rule := { !rule with r_from = Some n }) (int_of v k)
            | "every" -> Option.iter (fun n -> rule := { !rule with r_every = Some n }) (int_of v k)
            | "p" -> (
              match float_of_string_opt v with
              | Some p when p >= 0.0 && p <= 1.0 -> rule := { !rule with r_prob = p }
              | _ -> err := Some (Printf.sprintf "p wants a probability in [0,1], got '%s'" v))
            | "kind" -> (
              match v with
              | "transient" -> rule := { !rule with r_kind = Transient }
              | "corrupt" | "corrupt_cache" -> rule := { !rule with r_kind = Corrupt_cache }
              | "fatal" -> rule := { !rule with r_kind = Fatal }
              | _ -> err := Some (Printf.sprintf "unknown fault kind '%s'" v))
            | _ -> err := Some (Printf.sprintf "unknown fault setting '%s'" k)))
        (String.split_on_char ',' settings);
    (match !err with
    | Some e -> Error e
    | None ->
      let r = !rule in
      if r.r_nths = [] && r.r_from = None && r.r_every = None && r.r_prob = 0.0 then
        (* a bare site means "fail every call": the harshest plan *)
        Ok { r with r_from = Some 1 }
      else Ok r)

let parse (spec : string) : (rule list, string) result =
  let parts = String.split_on_char ';' spec |> List.map String.trim |> List.filter (( <> ) "") in
  if parts = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_rule part) with
        | Error e, _ -> Error e
        | Ok rs, Ok r -> Ok (rs @ [ r ])
        | Ok _, Error e -> Error (Printf.sprintf "in rule '%s': %s" part e))
      (Ok []) parts
