(* Per-buffer memory-mode policy (ROADMAP "adaptive memory policy"):
   decide, at each cold map, whether a buffer should be copied, kept
   resident with transfer elision, or pinned zero-copy — automatically,
   from observed per-buffer signals plus the device's transfer and
   zero-copy bandwidths as a cost model.

   Buffers are identified by their stable host (offset, bytes) key, which
   survives across data environments: the k-th offload of the same array
   consults the history its first k-1 cycles recorded.  One policy
   instance lives per data environment, so multi-device farms keep
   per-device histories (the same array may be hot on one device and
   cold on another).

   Signals per completed map→unmap cycle:
   - device loads/stores into the buffer (allocation counters, or pinned
     zero-copy traffic), the access-volume side of the zero-copy cost;
   - the fraction of bytes the device wrote (store-interval log), which
     bounds the copy-back an elision strategy cannot skip;
   - whether the host image changed between release and re-map (digest),
     which bounds the h2d an elision strategy cannot skip.

   A cold buffer (no history) is decided by the static cost model alone:
   transfers are latency-dominated on the Nano (15 µs per cuMemcpy), so
   small and medium buffers usually pin zero-copy first, and history
   then moves compute-hot buffers to a resident copy once their access
   volume shows the uncached-bandwidth penalty outweighs the copies it
   saves.

   Soundness over speed: zero-copy is only chosen where it is provably
   bit-identical to the copying semantics — tofrom always; from always,
   because the copying runtime gives a from-mapped buffer a zero-filled
   device image (cuMemAlloc semantics here) and overwrites the full host
   extent on the final release, so pinning the range and zeroing it in
   place reproduces that image exactly; to only once history shows the
   kernel reading the buffer without ever storing into it (a store to a
   [to]-mapped buffer is discarded by the copying runtime but would
   leak into host memory in place, and a cycle with no observed
   accesses proves nothing); and never for alloc (no copy-back ever
   happens, so stores leaking into host memory would change the final
   host image).
   [map(always,...)] and ranges with queued stream work force a real
   copy. *)

open Gpusim

type mode = Copy | Elide | Zerocopy [@@deriving show { with_path = false }, eq]

type sel = Auto | Forced of mode [@@deriving show { with_path = false }, eq]

let mode_name = function Copy -> "copy" | Elide -> "elide" | Zerocopy -> "zerocopy"

let sel_of_string = function
  | "auto" -> Some Auto
  | "copy" -> Some (Forced Copy)
  | "elide" -> Some (Forced Elide)
  | "zerocopy" -> Some (Forced Zerocopy)
  | _ -> None

let sel_name = function Auto -> "auto" | Forced m -> mode_name m

(* Exponentially-weighted running history of one buffer.  [alpha] = 0.5
   adapts within a couple of cycles, which matters at bench scale where
   a buffer lives for only a handful of offloads. *)
type hist = {
  mutable h_cycles : int; (* completed map→unmap cycles *)
  mutable h_loads : float; (* device loads per cycle (EWMA) *)
  mutable h_stores : float; (* device stores per cycle (EWMA) *)
  mutable h_dev_dirty : float; (* fraction of bytes the device wrote (EWMA) *)
  mutable h_host_dirty : float; (* fraction of re-maps with a changed host image (EWMA) *)
  mutable h_last_digest : Digest.t option; (* host image at last release *)
}

type decision = {
  d_mode : mode;
  d_reason : string; (* "forced" | "cold" | "history" | "always" | "async_pending" *)
  d_seq : int; (* per-buffer ordinal: this is the buffer's d_seq-th decision *)
  d_est_copy_ns : float;
  d_est_elide_ns : float;
  d_est_zerocopy_ns : float;
}

type t = {
  spec : Spec.t;
  tbl : ((int * int), hist) Hashtbl.t; (* host (off, bytes) -> history *)
  seqs : ((int * int), int) Hashtbl.t; (* decisions made per buffer *)
  (* per-buffer tally of chosen modes, for the [mem:] summary *)
  counts : ((int * int), int array) Hashtbl.t; (* [copy; elide; zerocopy] *)
}

let create (spec : Spec.t) : t =
  { spec; tbl = Hashtbl.create 16; seqs = Hashtbl.create 16; counts = Hashtbl.create 16 }

let alpha = 0.5

let ewma prev x = (alpha *. x) +. ((1.0 -. alpha) *. prev)

let hist t key =
  match Hashtbl.find_opt t.tbl key with
  | Some h -> h
  | None ->
    let h =
      {
        h_cycles = 0;
        h_loads = 0.0;
        h_stores = 0.0;
        h_dev_dirty = 0.0;
        h_host_dirty = 0.0;
        h_last_digest = None;
      }
    in
    Hashtbl.replace t.tbl key h;
    h

(* Record a decision: bump the per-buffer ordinal and the mode tally. *)
let note t key (m : mode) : int =
  let seq = 1 + Option.value ~default:0 (Hashtbl.find_opt t.seqs key) in
  Hashtbl.replace t.seqs key seq;
  let c =
    match Hashtbl.find_opt t.counts key with
    | Some c -> c
    | None ->
      let c = [| 0; 0; 0 |] in
      Hashtbl.replace t.counts key c;
      c
  in
  let i = match m with Copy -> 0 | Elide -> 1 | Zerocopy -> 2 in
  c.(i) <- c.(i) + 1;
  seq

(* ------------------------------ cost model ------------------------------ *)

(* One cuMemcpy of [len] bytes, in ns (same formula the driver charges). *)
let transfer_ns spec len =
  (len /. spec.Spec.memcpy_bandwidth *. 1e9) +. (spec.Spec.memcpy_latency_us *. 1e3)

(* cuMemHostRegister walks and locks the pages; cuMemHostUnregister is a
   flat cost (mirrors the driver's charges). *)
let pin_ns bytes = ((5.0 +. (bytes /. 4096.0 *. 0.4)) *. 1e3) +. 2000.0

(* Extra time of one 4-byte kernel access served uncached from pinned
   host memory instead of from device DRAM behind the L2. *)
let zerocopy_penalty_ns spec =
  (4.0 /. spec.Spec.zerocopy_bandwidth *. 1e9)
  -. ((1.0 -. spec.Spec.l2_hit_fraction) *. 4.0 /. spec.Spec.mem_bandwidth *. 1e9)

type inputs = {
  i_bytes : int;
  i_needs_h2d : bool; (* to / tofrom *)
  i_needs_d2h : bool; (* from / tofrom *)
  i_always : bool;
  i_pending : bool; (* queued stream work overlaps the range *)
  i_async : bool; (* mapping from inside a stream task *)
  i_zerocopy_safe : bool; (* tofrom / from (see header); [to] proves safety via history *)
  i_can_zerocopy_if_readonly : bool; (* to-mapped: safe once stores are provably 0 *)
  i_revivable : bool; (* a parked resident buffer covers the range *)
  i_host_digest : Digest.t Lazy.t; (* current host image (for the host-dirty signal) *)
}

let decide t ~(key : int * int) (i : inputs) : decision =
  let bytes = float_of_int i.i_bytes in
  let tc = transfer_ns t.spec in
  let est_copy =
    (if i.i_needs_h2d then tc bytes else 0.0) +. if i.i_needs_d2h then tc bytes else 0.0
  in
  let h = Hashtbl.find_opt t.tbl key in
  (* Fold the host-side observation in now: did the host image change
     since this buffer was last released? *)
  (match h with
  | Some h -> (
    match h.h_last_digest with
    | Some d ->
      let dirty = if Digest.equal d (Lazy.force i.i_host_digest) then 0.0 else 1.0 in
      h.h_host_dirty <- ewma h.h_host_dirty dirty;
      h.h_last_digest <- None (* consumed; re-armed at the next release *)
    | None -> ())
  | None -> ());
  let est_elide, est_zerocopy, reason =
    match h with
    | Some h when h.h_cycles > 0 ->
      (* dirty fraction neither side can skip: host changes must go down,
         device writes must come back, and each poisons the other side's
         page cleanliness too *)
      let u = Float.min 1.0 (h.h_host_dirty +. h.h_dev_dirty) in
      let dirty_cost = if u <= 0.0 then 0.0 else tc (u *. bytes) in
      let e_h2d =
        if not i.i_needs_h2d then 0.0
        else if not i.i_revivable then tc bytes (* evicted: the first h2d is full *)
        else dirty_cost
      in
      let e_d2h = if i.i_needs_d2h then dirty_cost else 0.0 in
      let accesses = h.h_loads +. h.h_stores in
      (* the read-only proof needs positive evidence: a cycle where the
         kernel never touched the buffer (no loads either) shows nothing
         about whether the next launch will store into it *)
      let zc_ok =
        i.i_zerocopy_safe
        || (i.i_can_zerocopy_if_readonly && h.h_stores <= 0.0 && h.h_loads > 0.0)
      in
      let e_zc =
        if zc_ok then pin_ns bytes +. (accesses *. zerocopy_penalty_ns t.spec) else infinity
      in
      (e_h2d +. e_d2h, e_zc, "history")
    | _ ->
      (* cold: elision cannot beat a copy on its first cycle, and only a
         provably-safe map type may pin; assume one touch per word *)
      let e_zc =
        if i.i_zerocopy_safe then pin_ns bytes +. (bytes /. 4.0 *. zerocopy_penalty_ns t.spec)
        else infinity
      in
      (est_copy +. 1.0, e_zc, "cold")
  in
  let est_elide = if i.i_async then infinity else est_elide in
  let pick, reason =
    if i.i_always then (Copy, "always")
    else if i.i_pending then (Copy, "async_pending")
    else begin
      (* strict-min with Copy first, so exact ties stay with the least
         surprising mode *)
      let best = ref (Copy, est_copy) in
      if est_elide < snd !best then best := (Elide, est_elide);
      if est_zerocopy < snd !best then best := (Zerocopy, est_zerocopy);
      (fst !best, reason)
    end
  in
  let seq = note t key pick in
  {
    d_mode = pick;
    d_reason = reason;
    d_seq = seq;
    d_est_copy_ns = est_copy;
    d_est_elide_ns = est_elide;
    d_est_zerocopy_ns = est_zerocopy;
  }

(* A forced-mode cold map still records a decision (ordinal + tally), so
   summaries and the trace-consistency check are uniform across modes. *)
let forced t ~(key : int * int) (m : mode) : decision =
  let seq = note t key m in
  {
    d_mode = m;
    d_reason = "forced";
    d_seq = seq;
    d_est_copy_ns = 0.0;
    d_est_elide_ns = 0.0;
    d_est_zerocopy_ns = 0.0;
  }

(* Fold in the device-side observations of one completed map→unmap
   cycle.  [dev_dirty] is the fraction of the buffer's bytes the device
   wrote; [digest] is the host image at release (compared against the
   image seen at the next map to detect host mutation). *)
let observe t ~(key : int * int) ~(loads : int) ~(stores : int) ~(dev_dirty : float)
    ~(digest : Digest.t option) : unit =
  let h = hist t key in
  if h.h_cycles = 0 then begin
    h.h_loads <- float_of_int loads;
    h.h_stores <- float_of_int stores;
    h.h_dev_dirty <- dev_dirty
  end
  else begin
    h.h_loads <- ewma h.h_loads (float_of_int loads);
    h.h_stores <- ewma h.h_stores (float_of_int stores);
    h.h_dev_dirty <- ewma h.h_dev_dirty dev_dirty
  end;
  h.h_cycles <- h.h_cycles + 1;
  h.h_last_digest <- digest

(* Per-buffer tally of chosen modes, sorted by buffer offset:
   ((off, bytes), [(mode_name, count); ...]) with zero counts omitted. *)
let decisions t : ((int * int) * (string * int) list) list =
  Hashtbl.fold
    (fun key (c : int array) acc ->
      let row =
        List.filter_map
          (fun (m, n) -> if n > 0 then Some (mode_name m, n) else None)
          [ (Copy, c.(0)); (Elide, c.(1)); (Zerocopy, c.(2)) ]
      in
      (key, row) :: acc)
    t.counts []
  |> List.sort (fun ((o1, _), _) ((o2, _), _) -> compare o1 o2)

(* Distinct modes this policy has chosen across all buffers. *)
let modes_used t : mode list =
  let used = [| false; false; false |] in
  Hashtbl.iter
    (fun _ (c : int array) -> Array.iteri (fun i n -> if n > 0 then used.(i) <- true) c)
    t.counts;
  List.filteri (fun i _ -> used.(i)) [ Copy; Elide; Zerocopy ]
