(* Stream pool and dependency tracker for `target ... nowait` regions.

   Each submitted task names the host byte ranges it reads and writes
   (derived from its map clauses).  Two tasks conflict when one writes
   a range the other touches (RAW / WAR / WAW on host addresses); a new
   task must not start before its conflicting predecessors finish, which
   is enforced with cuStreamWaitEvent-style timeline arithmetic:

   - all dependencies on one stream  -> enqueue behind them on it;
   - dependencies across streams    -> pick the least-loaded stream and
     bump its timeline past every dependency's completion;
   - no dependencies                -> least-loaded stream: maximum
     opportunity for transfer/compute overlap.

   Memory effects of async driver ops are eager (host program order), so
   any admissible schedule replays to the memory image of the fully
   synchronous one; the tracker only shapes the simulated timeline.
   Every enqueue, dependency edge and synchronization point emits a
   cat:"async" trace event. *)

open Machine
open Gpusim

(* A host byte range; [rg_off] is the offset in host memory. *)
type range = { rg_off : int; rg_len : int }

let range_of_addr (a : Addr.t) ~(bytes : int) : range = { rg_off = a.Addr.off; rg_len = bytes }

let ranges_overlap (a : range) (b : range) : bool =
  a.rg_len > 0 && b.rg_len > 0
  && a.rg_off < b.rg_off + b.rg_len
  && b.rg_off < a.rg_off + a.rg_len

let any_overlap (xs : range list) (ys : range list) : bool =
  List.exists (fun x -> List.exists (ranges_overlap x) ys) xs

type task = {
  t_id : int;
  t_label : string;
  t_stream : Driver.stream;
  t_reads : range list;
  t_writes : range list;
  t_deps : int list; (* ids of the pending tasks this one waited on *)
  mutable t_done_ns : float; (* absolute sim time when the task completes *)
}

type t = {
  driver : Driver.t;
  mutable n_streams : int;
  mutable pool : Driver.stream list; (* created lazily on first submit *)
  mutable tasks : task list; (* most recent first; pruned as they retire *)
  mutable next_task_id : int;
  mutable last_task : task option; (* most recently submitted, even if retired *)
  mutable pinned_ranges : range list; (* zero-copy pinned host ranges (see register_pinned) *)
}

let default_streams = 4

let create ?(streams = default_streams) (driver : Driver.t) : t =
  if streams <= 0 then invalid_arg "Async.create: stream count must be positive";
  {
    driver;
    n_streams = streams;
    pool = [];
    tasks = [];
    next_task_id = 0;
    last_task = None;
    pinned_ranges = [];
  }

let submitted_total t = t.next_task_id

let last_task t = t.last_task

let tr_instant t ?(args = []) name =
  match t.driver.Driver.trace with
  | Some tr -> Perf.Trace.instant tr ~args ~cat:"async" name
  | None -> ()

let now_ns t = Simclock.now_ns t.driver.Driver.clock

(* Tasks whose scheduled completion lies ahead of the current time.
   Retired tasks are pruned here; the host clock keeps advancing while
   host code runs, so queued work "completes in the background". *)
let pending t : task list =
  let now = now_ns t in
  t.tasks <- List.filter (fun tk -> tk.t_done_ns > now) t.tasks;
  t.tasks

let pending_count t = List.length (pending t)

(* Zero-copy pinned host ranges, registered by the data environment.
   Kernels address a pinned range in place, uncached and outside any
   stream's copy bookkeeping, so ordering on it cannot be recovered from
   read/write sets alone: any two tasks touching the same pinned range
   are serialized, even read-read.  That is how zero-copy composes with
   [--streams] without giving up eager-memory reproducibility. *)
let register_pinned t (range : range) : unit =
  t.pinned_ranges <- range :: t.pinned_ranges;
  tr_instant t "pin_register"
    ~args:[ ("offset", Perf.Trace.Int range.rg_off); ("bytes", Perf.Trace.Int range.rg_len) ]

let unregister_pinned t (range : range) : unit =
  let rec drop_one = function
    | [] -> []
    | r :: rest ->
      if r.rg_off = range.rg_off && r.rg_len = range.rg_len then rest else r :: drop_one rest
  in
  t.pinned_ranges <- drop_one t.pinned_ranges;
  tr_instant t "pin_unregister"
    ~args:[ ("offset", Perf.Trace.Int range.rg_off); ("bytes", Perf.Trace.Int range.rg_len) ]

let pinned_ranges t = t.pinned_ranges

(* Pending tasks that conflict with an access of [reads]/[writes]:
   RAW / WAR / WAW on host ranges, plus any shared touch of a registered
   pinned range. *)
let conflicting t ~(reads : range list) ~(writes : range list) : task list =
  let pins =
    List.filter (fun p -> any_overlap (reads @ writes) [ p ]) t.pinned_ranges
  in
  List.filter
    (fun tk ->
      any_overlap writes (tk.t_reads @ tk.t_writes)
      || any_overlap reads tk.t_writes
      || List.exists (fun p -> any_overlap (tk.t_reads @ tk.t_writes) [ p ]) pins)
    (pending t)

(* Pending tasks touching [range] at all (read or write) — used by the
   data environment to refuse unmapping a range with work in flight. *)
let pending_on t (range : range) : task list =
  List.filter (fun tk -> any_overlap [ range ] (tk.t_reads @ tk.t_writes)) (pending t)

let ensure_pool t : unit =
  if t.pool = [] then
    t.pool <- List.init t.n_streams (fun _ -> Driver.stream_create t.driver)

(* Resize the pool; only legal while no work is in flight. *)
let set_streams t (n : int) : unit =
  if n <= 0 then invalid_arg "Async.set_streams: stream count must be positive";
  if pending t <> [] then invalid_arg "Async.set_streams: tasks in flight";
  t.n_streams <- n;
  t.pool <- []

(* Stream choice: all dependencies on a single stream reuse it (the
   in-order queue serializes for free); otherwise the least-loaded
   stream, ties to the lowest id. *)
let choose_stream t (deps : task list) : Driver.stream =
  ensure_pool t;
  match deps with
  | first :: rest when List.for_all (fun d -> d.t_stream == first.t_stream) rest -> first.t_stream
  | _ ->
    List.fold_left
      (fun best s ->
        if s.Driver.str_done_ns < best.Driver.str_done_ns then s else best)
      (List.hd t.pool) (List.tl t.pool)

(* Submit a region: compute dependencies, pick a stream, block it behind
   cross-stream dependencies, then run [f stream] — which enqueues the
   region's transfers and launch on that stream.  Returns [f]'s result.
   If [f] raises (e.g. the device died), no task is recorded. *)
let submit t ~(label : string) ~(reads : range list) ~(writes : range list)
    (f : Driver.stream -> 'a) : 'a =
  let deps = conflicting t ~reads ~writes in
  let stream = choose_stream t deps in
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  tr_instant t "enqueue"
    ~args:
      [
        ("task", Perf.Trace.Int id);
        ("label", Perf.Trace.Str label);
        ("stream", Perf.Trace.Int stream.Driver.str_id);
        ("deps", Perf.Trace.Int (List.length deps));
      ];
  List.iter
    (fun (d : task) ->
      if d.t_stream != stream then Driver.stream_wait_until stream d.t_done_ns;
      tr_instant t "dep_edge"
        ~args:
          [
            ("from", Perf.Trace.Int d.t_id);
            ("to", Perf.Trace.Int id);
            ("from_stream", Perf.Trace.Int d.t_stream.Driver.str_id);
            ("to_stream", Perf.Trace.Int stream.Driver.str_id);
          ])
    deps;
  let result = f stream in
  let task =
    {
      t_id = id;
      t_label = label;
      t_stream = stream;
      t_reads = reads;
      t_writes = writes;
      t_deps = List.map (fun d -> d.t_id) deps;
      t_done_ns = stream.Driver.str_done_ns;
    }
  in
  t.tasks <- task :: t.tasks;
  t.last_task <- Some task;
  result

(* ort_taskwait / end-of-data-environment barrier: the host blocks until
   every queued task completes — the global clock advances to the max
   over the stream timelines. *)
let wait_all t : unit =
  let n = pending_count t in
  tr_instant t "taskwait" ~args:[ ("pending", Perf.Trace.Int n) ];
  if n > 0 then Driver.device_sync t.driver;
  t.tasks <- []

(* Synchronize just the tasks touching [range] (a `target update` on a
   range mid-flight must wait for it): advance the clock past their
   completion times. *)
let sync_range t (range : range) : unit =
  match pending_on t range with
  | [] -> ()
  | victims ->
    let target = List.fold_left (fun acc tk -> Float.max acc tk.t_done_ns) 0.0 victims in
    tr_instant t "range_sync"
      ~args:
        [
          ("offset", Perf.Trace.Int range.rg_off);
          ("bytes", Perf.Trace.Int range.rg_len);
          ("pending", Perf.Trace.Int (List.length victims));
        ];
    let now = now_ns t in
    if target > now then Simclock.advance_ns t.driver.Driver.clock (target -. now)

(* Device died with work queued: advance the clock past whatever was
   enqueued and forget the records, so the host fallback resumes on a
   coherent timeline.  Memory is already coherent — effects were eager
   and the data environment's salvage handles device-resident images. *)
let quiesce t : unit =
  if pending_count t > 0 then Driver.device_sync t.driver;
  t.tasks <- []
