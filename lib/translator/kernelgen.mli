(** Kernel construction for target regions (paper section 3).

    Two lowering strategies, as in OMPi:
    - combined constructs ([target teams distribute parallel for] and
      friends) map the iteration space onto the grid through the device
      library's chunk calculators (3.1);
    - any other target body goes through the master/worker
      transformation (3.2, Fig. 3): the kernel is launched with 128
      threads, warp 0's lane 0 becomes the master executing sequential
      code, the other 96 threads become workers serving parallel regions
      registered by the master. *)

open Minic

exception Unsupported of string

type mode = Combined | Masterworker

val pp_mode : Format.formatter -> mode -> unit

val show_mode : mode -> string

val equal_mode : mode -> mode -> bool

type kernel = {
  k_entry : string;  (** kernel function and file name *)
  k_program : Ast.program;  (** the generated kernel file *)
  k_params : Region.mapped_var list;  (** in kernel-parameter order *)
  k_teams : Ast.expr;  (** host-side num_teams expression *)
  k_threads : Ast.expr;  (** host-side num_threads expression *)
  k_mode : mode;
}

(** Fixed launch size for master/worker kernels (128 threads: one master
    warp + 96 workers, paper 4.2.2). *)
val mw_block_threads : int

val default_threads : int

(** Does the directive carry a [nowait] clause?  Shared with the host
    pipeline: on device-side worksharing constructs (for / sections /
    single) it omits the closing barrier; on [target] directives the
    pipeline routes the region to the asynchronous offload entry
    point. *)
val has_nowait : Ast.directive -> bool

(** Build the kernel for a directive whose constructs start with
    [target], choosing the lowering strategy from the combination. *)
val build : env:Typecheck.env -> program:Ast.program -> name:string -> Ast.directive ->
  Ast.stmt -> kernel
