(* Whole-program translation driver (the ompicc pipeline of Fig. 2):

     source --parse--> AST --pragma rewrite--> typed directives
            --transform--> host AST with ort_* calls  +  kernel files

   Each target construct is outlined into its own kernel file, named
   <function>_kernel<N>, matching OMPi's one-file-per-kernel layout
   (§3.3). *)

open Machine
open Minic

exception Translate_error of string

let translate_error fmt = Format.kasprintf (fun s -> raise (Translate_error s)) fmt

type output = {
  out_host : Ast.program;
  out_kernels : Kernelgen.kernel list;
}

type state = {
  s_env : Typecheck.env;
  s_program : Ast.program;
  mutable s_kernels : Kernelgen.kernel list;
  mutable s_counter : int;
  mutable s_nowait : int; (* nowait target regions lowered so far *)
}

(* Device id argument of the generated ort_* calls: the constant of an
   explicit device(n) clause, or -1 = "the current default device",
   resolved by the host runtime at call time (after any
   omp_set_default_device).  Only default-device launches are eligible
   for multi-device sharding — an explicit device(n) pins the region. *)
let dev_default = Ast.int_lit (-1)

let dev_of (dir : Ast.directive) : Ast.expr =
  match Ast.find_clause dir (function Ast.Cdevice e -> Some e | _ -> None) with
  | Some e -> (
    match Ast.const_eval_opt e with Some n -> Ast.int_lit (Int64.to_int n) | None -> e)
  | None -> dev_default

let cvoid e = Ast.Cast (Cty.Ptr Cty.Void, e)

(* ort_map / ort_unmap / offload call builders *)
let map_call dev (mv : Region.mapped_var) =
  Ast.expr_stmt
    (Ast.call "ort_map"
       [ dev; cvoid mv.Region.mv_base; mv.Region.mv_bytes; Ast.int_lit (Region.map_code mv) ])

let unmap_call dev (mv : Region.mapped_var) =
  Ast.expr_stmt
    (Ast.call "ort_unmap" [ dev; cvoid mv.Region.mv_base; Ast.int_lit (Region.map_code mv) ])

let offload_expr dev (k : Kernelgen.kernel) =
  Ast.call "ort_offload"
    ([ dev; Ast.StrLit k.Kernelgen.k_entry; Ast.StrLit k.Kernelgen.k_entry; k.Kernelgen.k_teams; k.Kernelgen.k_threads ]
    @ List.map (fun (mv : Region.mapped_var) -> cvoid mv.Region.mv_base) k.Kernelgen.k_params)

(* The async entry point owns the whole map/launch/unmap sequence (it is
   enqueued as one stream task), so the maps travel with the call as
   (base, bytes, map_type) triples instead of surrounding ort_map /
   ort_unmap statements. *)
let offload_nowait_expr dev (k : Kernelgen.kernel) =
  Ast.call "ort_offload_nowait"
    ([ dev; Ast.StrLit k.Kernelgen.k_entry; Ast.StrLit k.Kernelgen.k_entry; k.Kernelgen.k_teams; k.Kernelgen.k_threads ]
    @ List.concat_map
        (fun (mv : Region.mapped_var) ->
          [ cvoid mv.Region.mv_base; mv.Region.mv_bytes; Ast.int_lit (Region.map_code mv) ])
        k.Kernelgen.k_params)

(* ort_taskwait with the -1 sentinel drains every device's queue. *)
let taskwait_call = Ast.expr_stmt (Ast.call "ort_taskwait" [ dev_default ])

(* ort_offload returns 1 on device execution, 0 when the runtime has
   declared the device dead — then the stripped (sequential) region body
   runs inline on the host, inside the surrounding map/unmap pair, as
   graceful degradation.  The data environment is in dead mode at that
   point, so the maps are host-memory no-ops. *)
let offload_call dev (k : Kernelgen.kernel) (fallback : Ast.stmt) =
  Ast.Sif (Ast.Unop (Ast.Not, offload_expr dev k), fallback, None)

(* Lower a target-family construct at the host level. *)
let rec lower_target st (enclosing_fn : string) (dir : Ast.directive) (body : Ast.stmt option) :
    Ast.stmt =
  let has c = Ast.has_construct dir c in
  let dev = dev_of dir in
  if has Ast.C_target then begin
    match body with
    | None -> translate_error "target construct requires a body"
    | Some body ->
      st.s_counter <- st.s_counter + 1;
      let name = Printf.sprintf "%s_kernel%d" enclosing_fn (st.s_counter - 1) in
      let kernel = Kernelgen.build ~env:st.s_env ~program:st.s_program ~name dir body in
      st.s_kernels <- st.s_kernels @ [ kernel ];
      let offload_block =
        if Kernelgen.has_nowait dir then begin
          (* nowait: one async entry point carrying the maps; 0 means the
             device is dead and the stripped body runs inline, exactly as
             in the synchronous protocol *)
          st.s_nowait <- st.s_nowait + 1;
          Ast.Sif (Ast.Unop (Ast.Not, offload_nowait_expr dev kernel), Strip.strip_stmt body, None)
        end
        else
          Ast.Sblock
            (List.map (map_call dev) kernel.Kernelgen.k_params
            @ [ offload_call dev kernel (Strip.strip_stmt body) ]
            @ List.rev_map (unmap_call dev) kernel.Kernelgen.k_params)
      in
      (* if() clause: host fallback executes the stripped body *)
      (match Ast.find_clause dir (function Ast.Cif e -> Some e | _ -> None) with
      | Some cond -> Ast.Sif (cond, offload_block, Some (Strip.strip_stmt body))
      | None -> offload_block)
  end
  else if has Ast.C_target_data then begin
    match body with
    | None -> translate_error "target data requires a body"
    | Some body ->
      let items = data_maps st dir in
      let before = st.s_nowait in
      let body' = xform_stmt st enclosing_fn body in
      (* End-of-data-environment barrier: if the region body launched
         nowait work, it must drain before the unmaps release (and copy
         back) the enclosing mappings.  Regions with no async work keep
         their exact synchronous lowering. *)
      let barrier = if st.s_nowait > before then [ taskwait_call ] else [] in
      Ast.Sblock
        (List.map (map_call dev) items @ [ body' ] @ barrier @ List.rev_map (unmap_call dev) items)
  end
  else if has Ast.C_target_enter_data then Ast.Sblock (List.map (map_call dev) (data_maps st dir))
  else if has Ast.C_target_exit_data then Ast.Sblock (List.map (unmap_call dev) (data_maps st dir))
  else if has Ast.C_target_update then begin
    let updates =
      List.concat_map
        (function
          | Ast.Cupdate_to items ->
            List.map
              (fun item ->
                let mv = Region.plan_one st.s_env Ast.Map_to item in
                Ast.expr_stmt
                  (Ast.call "ort_update_to" [ dev; cvoid mv.Region.mv_base; mv.Region.mv_bytes ]))
              items
          | Ast.Cupdate_from items ->
            List.map
              (fun item ->
                let mv = Region.plan_one st.s_env Ast.Map_from item in
                Ast.expr_stmt
                  (Ast.call "ort_update_from" [ dev; cvoid mv.Region.mv_base; mv.Region.mv_bytes ]))
              items
          | _ -> [])
        dir.Ast.dir_clauses
    in
    Ast.Sblock updates
  end
  else
    translate_error "unexpected host-level OpenMP construct '%s'"
      (String.concat " " (List.map Pretty.construct_str dir.Ast.dir_constructs))

and data_maps st (dir : Ast.directive) : Region.mapped_var list =
  List.concat_map
    (function
      | Ast.Cmap (mt, always, items) -> List.map (Region.plan_one ~always st.s_env mt) items
      | _ -> [])
    dir.Ast.dir_clauses

(* Host-level statement transformation, maintaining the typing scope. *)
and xform_stmt st (fn : string) (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Sdecl ds ->
    List.iter (fun (d : Ast.decl) -> Typecheck.add_var st.s_env d.Ast.d_name d.Ast.d_ty) ds;
    s
  | Ast.Sblock ss ->
    Typecheck.in_scope (fun () -> Ast.Sblock (List.map (xform_stmt st fn) ss)) st.s_env
  | Ast.Sif (c, t, e) -> Ast.Sif (c, xform_stmt st fn t, Option.map (xform_stmt st fn) e)
  | Ast.Swhile (c, b) -> Ast.Swhile (c, xform_stmt st fn b)
  | Ast.Sdo (b, c) -> Ast.Sdo (xform_stmt st fn b, c)
  | Ast.Sfor (init, c, u, b) ->
    Typecheck.in_scope
      (fun () ->
        let init' = Option.map (xform_stmt st fn) init in
        Ast.Sfor (init', c, u, xform_stmt st fn b))
      st.s_env
  | Ast.Spragma (Ast.Omp dir, body) ->
    if dir.Ast.dir_constructs = [ Ast.C_taskwait ] then taskwait_call
    else if
      List.exists
        (fun c ->
          match c with
          | Ast.C_target | Ast.C_target_data | Ast.C_target_enter_data | Ast.C_target_exit_data
          | Ast.C_target_update -> true
          | _ -> false)
        dir.Ast.dir_constructs
    then lower_target st fn dir body
    else
      (* host-side parallel/worksharing constructs: sequential lowering
         (the host side is beyond the paper's scope) *)
      Strip.strip_stmt s
  | Ast.Spragma (Ast.Raw _, body) -> (
    match body with Some b -> xform_stmt st fn b | None -> Ast.Snop)
  | s -> s

let translate (program : Ast.program) : output =
  let env = Typecheck.of_program program in
  let st = { s_env = env; s_program = program; s_kernels = []; s_counter = 0; s_nowait = 0 } in
  let host =
    List.map
      (fun g ->
        match g with
        | Ast.Gfun f ->
          let body' =
            Typecheck.in_scope
              (fun () ->
                List.iter (fun (n, ty) -> Typecheck.add_var env n ty) f.Ast.f_params;
                xform_stmt st f.Ast.f_name f.Ast.f_body)
              env
          in
          Ast.Gfun { f with f_body = body' }
        | Ast.Gpragma (Ast.Omp _) -> Ast.Gpragma (Ast.Raw []) (* consumed *)
        | g -> g)
      program
  in
  (* drop consumed pragma markers *)
  let host = List.filter (function Ast.Gpragma (Ast.Raw []) -> false | _ -> true) host in
  { out_host = host; out_kernels = st.s_kernels }

(* Front-to-back compilation of a source string. *)
type compiled = {
  c_source_name : string;
  c_host : Ast.program;
  c_kernels : Kernelgen.kernel list;
  c_host_text : string;
  c_kernel_texts : (string * string) list; (* kernel file name -> CUDA C *)
}

let compile_source ~(name : string) (source : string) : compiled =
  let program = Parser.parse_program source in
  let program = Omp.Rewrite.rewrite_program program in
  (match Omp.Validate.check_program program with
  | [] -> ()
  | diags ->
    translate_error "OpenMP validation failed:\n%s"
      (String.concat "\n" (List.map (fun d -> "  " ^ d.Omp.Validate.diag_msg) diags)));
  (match Typecheck.check_program program with
  | [] -> ()
  | errs -> translate_error "type errors:\n%s" (String.concat "\n" (List.map (fun e -> "  " ^ e) errs)));
  let { out_host; out_kernels } = translate program in
  {
    c_source_name = name;
    c_host = out_host;
    c_kernels = out_kernels;
    c_host_text = Pretty.program_to_string out_host;
    c_kernel_texts =
      List.map
        (fun (k : Kernelgen.kernel) -> (k.Kernelgen.k_entry, Pretty.program_to_string k.Kernelgen.k_program))
        out_kernels;
  }
