(** Data-environment planning for a target region: reconcile the map
    clauses with the variables actually referenced in the region body
    and derive, for each variable, the host base-address and byte-size
    expressions (for the generated ort_map calls) and the kernel
    parameter type. *)

open Machine
open Minic

(** Raised for inputs the translator cannot lower (with a diagnostic). *)
exception Unsupported of string

val unsupported : ('a, Format.formatter, unit, 'b) format4 -> 'a

type mapped_var = {
  mv_name : string;
  mv_host_ty : Cty.t;
  mv_map : Ast.map_type;
  mv_always : bool;  (** the [always] map modifier: force transfers *)
  mv_base : Ast.expr;  (** host address expression *)
  mv_bytes : Ast.expr;  (** byte count expression *)
  mv_param_ty : Cty.t;  (** kernel parameter type (always a pointer) *)
  mv_scalar : bool;  (** region references become derefs of the parameter *)
}

(** Plan one explicit map item against the typing environment. *)
val plan_one : ?always:bool -> Typecheck.env -> Ast.map_type -> Ast.map_item -> mapped_var

(** Full plan for a target directive: explicit map clauses first (in
    clause order), then implicit captures — referenced scalars map [to],
    complete arrays map [tofrom] (the runtime's present check makes
    enclosing [target data] regions effective); unmapped pointers are an
    error. *)
val plan : Typecheck.env -> Ast.directive -> referenced:string list -> mapped_var list

(** Integer code used by the generated ort_map calls. *)
val map_type_code : Ast.map_type -> int

(** Full ort_map code: two-bit map type, [always] as bit 4 (decoded by
    [Hostrt.Dataenv.decode_map_code]). *)
val map_code : mapped_var -> int
