(* Kernel construction for target regions (paper §3).

   Two lowering strategies, as in OMPi:
   - combined constructs (target teams distribute parallel for and
     friends) map the iteration space directly onto the grid through the
     device library's chunk calculators (§3.1);
   - any other target body goes through the master/worker transformation
     (§3.2, Fig. 3): the kernel is launched with 128 threads, warp 0's
     lane 0 becomes the master executing sequential code, the other 96
     threads become workers serving parallel regions registered by the
     master. *)

open Machine
open Minic

exception Unsupported = Region.Unsupported

let unsupported = Region.unsupported

type mode = Combined | Masterworker [@@deriving show { with_path = false }, eq]

type kernel = {
  k_entry : string; (* kernel function and file name *)
  k_program : Ast.program; (* the generated kernel file *)
  k_params : Region.mapped_var list; (* in kernel-parameter order *)
  k_teams : Ast.expr; (* host-side num_teams expression *)
  k_threads : Ast.expr; (* host-side num_threads expression *)
  k_mode : mode;
}

type gen = {
  g_env : Typecheck.env; (* typing context at the target directive *)
  g_program : Ast.program; (* enclosing program, for the call graph *)
  mutable g_fresh : int;
  mutable g_aux : Ast.global list; (* thread funcs, vars structs, lock words *)
}

let fresh g =
  g.g_fresh <- g.g_fresh + 1;
  g.g_fresh

let mw_block_threads = 128 (* fixed launch size for master/worker kernels (§4.2.2) *)

(* ---------------------------------------------------------------- *)
(* Clause helpers                                                     *)
(* ---------------------------------------------------------------- *)

let clause_num_teams dir = Ast.find_clause dir (function Ast.Cnum_teams e -> Some e | _ -> None)

let clause_num_threads dir =
  Ast.find_clause dir (function Ast.Cnum_threads e -> Some e | _ -> None)

let clause_schedule dir =
  Ast.find_clause dir (function Ast.Cschedule (k, c) -> Some (k, c) | _ -> None)

let clause_collapse dir = Ast.find_clause dir (function Ast.Ccollapse n -> Some n | _ -> None)

let clause_reductions dir =
  List.concat_map
    (function Ast.Creduction (op, vars) -> List.map (fun v -> (v, op)) vars | _ -> [])
    dir.Ast.dir_clauses

let clause_privates dir =
  List.concat_map (function Ast.Cprivate vs -> vs | _ -> []) dir.Ast.dir_clauses

let clause_firstprivates dir =
  List.concat_map (function Ast.Cfirstprivate vs -> vs | _ -> []) dir.Ast.dir_clauses

let has_nowait dir = List.mem Ast.Cnowait dir.Ast.dir_clauses

(* ---------------------------------------------------------------- *)
(* Reductions                                                         *)
(* ---------------------------------------------------------------- *)

let reduction_identity (op : Ast.reduction_op) (ty : Cty.t) : Ast.expr =
  let is_f = Cty.is_float ty in
  match op with
  | Ast.Rd_add | Ast.Rd_lor | Ast.Rd_bor | Ast.Rd_bxor ->
    if is_f then Ast.FloatLit (0.0, ty) else Ast.int_lit 0
  | Ast.Rd_mul | Ast.Rd_land -> if is_f then Ast.FloatLit (1.0, ty) else Ast.int_lit 1
  | Ast.Rd_max ->
    if is_f then Ast.FloatLit (-3.0e38, ty) else Ast.IntLit (Int64.of_int32 Int32.min_int, Cty.Int)
  | Ast.Rd_min ->
    if is_f then Ast.FloatLit (3.0e38, ty) else Ast.IntLit (Int64.of_int32 Int32.max_int, Cty.Int)
  | Ast.Rd_band -> Ast.IntLit (-1L, Cty.Int)

let reduction_builtin (op : Ast.reduction_op) (ty : Cty.t) : string =
  let f = Cty.is_float ty in
  match op with
  | Ast.Rd_add -> if f then "cudadev_reduce_fadd" else "cudadev_reduce_iadd"
  | Ast.Rd_mul -> if f then "cudadev_reduce_fmul" else "cudadev_reduce_imul"
  | Ast.Rd_max -> if f then "cudadev_reduce_fmax" else "cudadev_reduce_imax"
  | Ast.Rd_min -> if f then "cudadev_reduce_fmin" else "cudadev_reduce_imin"
  | Ast.Rd_band -> "cudadev_reduce_iand"
  | Ast.Rd_bor -> "cudadev_reduce_ior"
  | Ast.Rd_lor -> if f then "cudadev_reduce_flor" else "cudadev_reduce_ior"
  | Ast.Rd_bxor -> "cudadev_reduce_ixor"
  | Ast.Rd_land -> if f then "cudadev_reduce_fland" else "cudadev_reduce_iland"

(* One pairwise combining step of the shared-memory tree. *)
let reduction_combine (op : Ast.reduction_op) (a : Ast.expr) (b : Ast.expr) : Ast.expr =
  match op with
  | Ast.Rd_add -> Ast.add a b
  | Ast.Rd_mul -> Ast.mul a b
  | Ast.Rd_max -> Ast.Cond (Ast.lt a b, b, a)
  | Ast.Rd_min -> Ast.Cond (Ast.lt b a, b, a)
  | Ast.Rd_band -> Ast.Binop (Ast.BitAnd, a, b)
  | Ast.Rd_bor -> Ast.Binop (Ast.BitOr, a, b)
  | Ast.Rd_bxor -> Ast.Binop (Ast.BitXor, a, b)
  | Ast.Rd_land -> Ast.Binop (Ast.LogAnd, a, b)
  | Ast.Rd_lor -> Ast.Binop (Ast.LogOr, a, b)

(* ---------------------------------------------------------------- *)
(* Worksharing-loop lowering                                          *)
(* ---------------------------------------------------------------- *)

let decl_int ?init name = Ast.Sdecl [ Ast.mk_decl ?init name Cty.Int ]

let addr_of name = Ast.AddrOf (Ast.Ident name)

(* ---------------------------------------------------------------- *)
(* Shared-memory tree reduction                                       *)
(* ---------------------------------------------------------------- *)

(* Static size of the per-team slot arrays; covers any block size the
   device spec admits (max_threads_per_block = 1024 on the Nano). *)
let reduce_slots = 1024

(* The classic CUDA log-step reduce, emitted once per construct that
   carries reduction clauses: every thread parks its private
   accumulator [_red_v] in its team-shared slot, the team combines
   slots pairwise — stride halving from the next power of two, a team
   barrier between levels, the [tid + s < n] guard covering
   non-power-of-two team sizes — and thread 0 alone publishes the
   team's partial value into the reduction target with a single
   atomic.  All reduction variables of the construct ride the same
   barrier ladder.  [target_of] yields the device pointer the combined
   value is published to; [uniq] keeps slot arrays of distinct
   parallel regions in one kernel apart. *)
let tree_reduce ?(uniq = "") (reductions : (string * Ast.reduction_op) list)
    ~(ty_of : string -> Cty.t) ~(target_of : string -> Ast.expr) : Ast.stmt list =
  if reductions = [] then []
  else begin
    let tid = "_rtid" ^ uniq and num = "_rnum" ^ uniq and s = "_rs" ^ uniq in
    let sh name = Printf.sprintf "_redsh%s_%s" uniq name in
    let slot name i = Ast.Index (Ast.ident (sh name), i) in
    let barrier = Ast.expr_stmt (Ast.call "cudadev_barrier" [ Ast.int_lit 0 ]) in
    let half e = Ast.Sexpr (Ast.assign e (Ast.Binop (Ast.Div, e, Ast.int_lit 2))) in
    List.map
      (fun (name, _) ->
        Ast.Sdecl [ Ast.mk_decl ~shared:true (sh name) (Cty.Array (ty_of name, Some reduce_slots)) ])
      reductions
    @ [
        decl_int ~init:(Ast.Iexpr (Ast.call "omp_get_thread_num" [])) tid;
        decl_int ~init:(Ast.Iexpr (Ast.call "omp_get_num_threads" [])) num;
      ]
    @ List.map
        (fun (name, _) ->
          Ast.expr_stmt (Ast.assign (slot name (Ast.ident tid)) (Ast.ident ("_red_" ^ name))))
        reductions
    @ [
        barrier;
        (* s = next power of two >= num, then halve into the first stride *)
        decl_int ~init:(Ast.Iexpr (Ast.int_lit 1)) s;
        Ast.Swhile
          ( Ast.lt (Ast.ident s) (Ast.ident num),
            Ast.Sexpr (Ast.assign (Ast.ident s) (Ast.mul (Ast.ident s) (Ast.int_lit 2))) );
        half (Ast.ident s);
        Ast.Swhile
          ( Ast.Binop (Ast.Gt, Ast.ident s, Ast.int_lit 0),
            Ast.Sblock
              [
                Ast.Sif
                  ( Ast.Binop
                      ( Ast.LogAnd,
                        Ast.lt (Ast.ident tid) (Ast.ident s),
                        Ast.lt (Ast.add (Ast.ident tid) (Ast.ident s)) (Ast.ident num) ),
                    Ast.Sblock
                      (List.map
                         (fun (name, op) ->
                           Ast.expr_stmt
                             (Ast.assign
                                (slot name (Ast.ident tid))
                                (reduction_combine op
                                   (slot name (Ast.ident tid))
                                   (slot name (Ast.add (Ast.ident tid) (Ast.ident s))))))
                         reductions),
                    None );
                barrier;
                half (Ast.ident s);
              ] );
        Ast.Sif
          ( Ast.Binop (Ast.Eq, Ast.ident tid, Ast.int_lit 0),
            Ast.Sblock
              (List.map
                 (fun (name, op) ->
                   Ast.expr_stmt
                     (Ast.call (reduction_builtin op (ty_of name))
                        [ target_of name; slot name (Ast.int_lit 0) ]))
                 reductions),
            None );
      ]
  end

(* Hoist non-trivial loop bounds and per-dimension extents into local
   variables: the common-subexpression elimination a production compiler
   performs, which keeps the per-thread cost of the chunk machinery
   small.  Returns the declarations, the rewritten nest and the extent
   expressions to reuse. *)
let hoist_nest g (loops : Loops.canon list) : Ast.stmt list * Loops.canon list * Ast.expr list =
  let id = fresh g in
  let decls = ref [] in
  let simple = function Ast.IntLit _ | Ast.Ident _ -> true | _ -> false in
  let hoist tag i e =
    if simple e then e
    else begin
      let name = Printf.sprintf "_%s%d_%d" tag id i in
      decls := !decls @ [ decl_int ~init:(Ast.Iexpr e) name ];
      Ast.ident name
    end
  in
  let loops =
    List.mapi
      (fun i (c : Loops.canon) ->
        {
          c with
          Loops.cl_lb = hoist "lb" i c.Loops.cl_lb;
          cl_ub = hoist "ub" i c.Loops.cl_ub;
          cl_step = hoist "st" i c.Loops.cl_step;
        })
      loops
  in
  let extents = List.mapi (fun i c -> hoist "ext" i (Loops.extent c)) loops in
  (!decls, loops, extents)

(* Emit the statements executing iterations [lo, hi) of the flattened
   nest, distributed over the current team's threads according to the
   schedule.  [recover body] wraps the loop body with the original index
   declarations. *)
let lower_thread_loop g ~(sched : Ast.sched_kind * Ast.expr option) ~(loops : Loops.canon list)
    ?(extents : Ast.expr list option) ~(body : Ast.stmt) ~(lo : Ast.expr) ~(hi : Ast.expr) () :
    Ast.stmt list * int option =
  let id = fresh g in
  let it = Printf.sprintf "_it%d" id in
  (* Iterations of a contiguous chunk: recover the original loop indices
     from the flat start with div/mod once, then maintain them by a
     carry chain in the loop update (strength reduction a production
     compiler performs for collapsed nests). *)
  let inner_for lo hi =
    let inits, carry = Loops.incremental_recovery ?extents loops ~flat_start:lo in
    let update =
      match carry with
      | Some c -> Ast.Comma (Ast.Unop (Ast.PostInc, Ast.ident it), c)
      | None -> Ast.Unop (Ast.PostInc, Ast.ident it)
    in
    (* the guard protects the div/mod recovery from empty chunks *)
    Ast.Sif
      ( Ast.lt lo hi,
        Ast.Sblock
          (inits
          @ [
              Ast.Sfor
                ( Some (decl_int ~init:(Ast.Iexpr lo) it),
                  Some (Ast.lt (Ast.ident it) hi),
                  Some update,
                  body );
            ]),
        None )
  in
  match sched with
  | Ast.Sch_static, None | Ast.Sch_auto, None | Ast.Sch_runtime, None ->
    let tlb = Printf.sprintf "_tlb%d" id and tub = Printf.sprintf "_tub%d" id in
    ( [
        decl_int tlb;
        decl_int tub;
        Ast.expr_stmt (Ast.call "cudadev_get_static_chunk" [ addr_of tlb; addr_of tub; lo; hi ]);
        inner_for (Ast.ident tlb) (Ast.ident tub);
      ],
      None )
  | (Ast.Sch_static | Ast.Sch_auto | Ast.Sch_runtime), Some chunk ->
    let k = Printf.sprintf "_k%d" id and clb = Printf.sprintf "_clb%d" id and cub = Printf.sprintf "_cub%d" id in
    ( [
        Ast.Sfor
          ( Some (decl_int ~init:(Ast.Iexpr (Ast.int_lit 0)) k),
            None,
            Some (Ast.Unop (Ast.PostInc, Ast.ident k)),
            Ast.Sblock
              [
                decl_int
                  ~init:
                    (Ast.Iexpr
                       (Ast.add lo
                          (Ast.mul
                             (Ast.add
                                (Ast.mul (Ast.ident k) (Ast.call "omp_get_num_threads" []))
                                (Ast.call "omp_get_thread_num" []))
                             chunk)))
                  clb;
                Ast.Sif (Ast.Binop (Ast.Ge, Ast.ident clb, hi), Ast.Sbreak, None);
                decl_int ~init:(Ast.Iexpr (Ast.add (Ast.ident clb) chunk)) cub;
                Ast.Sif
                  (Ast.Binop (Ast.Gt, Ast.ident cub, hi), Ast.Sexpr (Ast.assign (Ast.ident cub) hi), None);
                inner_for (Ast.ident clb) (Ast.ident cub);
              ] );
      ],
      None )
  | Ast.Sch_dynamic, chunk ->
    let chunk = Option.value chunk ~default:(Ast.int_lit 1) in
    let clb = Printf.sprintf "_clb%d" id and cub = Printf.sprintf "_cub%d" id in
    ( [
        decl_int clb;
        decl_int cub;
        Ast.Swhile
          ( Ast.call "cudadev_get_dynamic_chunk"
              [ Ast.int_lit id; chunk; lo; hi; addr_of clb; addr_of cub ],
            Ast.Sblock [ inner_for (Ast.ident clb) (Ast.ident cub) ] );
      ],
      Some id )
  | Ast.Sch_guided, chunk ->
    let chunk = Option.value chunk ~default:(Ast.int_lit 1) in
    let clb = Printf.sprintf "_clb%d" id and cub = Printf.sprintf "_cub%d" id in
    ( [
        decl_int clb;
        decl_int cub;
        Ast.Swhile
          ( Ast.call "cudadev_get_guided_chunk"
              [ Ast.int_lit id; chunk; lo; hi; addr_of clb; addr_of cub ],
            Ast.Sblock [ inner_for (Ast.ident clb) (Ast.ident cub) ] );
      ],
      Some id )

(* ---------------------------------------------------------------- *)
(* Scalar-parameter substitution                                      *)
(* ---------------------------------------------------------------- *)

(* Region references to mapped scalars become dereferences of the kernel
   parameter; reduction variables instead use a thread-private
   accumulator.  Read-only scalars (map(to:), which includes all
   implicit scalars) are pre-loaded into a local copy at region entry so
   that hot loops do not re-read them from device global memory — the
   register promotion a real compiler performs. *)
let scalar_subst (params : Region.mapped_var list) (reductions : (string * Ast.reduction_op) list) :
    (string * Ast.expr) list * Ast.stmt list =
  let subst = ref [] and prologue = ref [] in
  List.iter
    (fun (mv : Region.mapped_var) ->
      let name = mv.Region.mv_name in
      if List.mem_assoc name reductions then subst := (name, Ast.ident ("_red_" ^ name)) :: !subst
      else if mv.Region.mv_scalar then
        match mv.Region.mv_map with
        | Ast.Map_to | Ast.Map_alloc ->
          let local = "_loc_" ^ name in
          subst := (name, Ast.ident local) :: !subst;
          prologue :=
            Ast.Sdecl
              [ Ast.mk_decl ~init:(Ast.Iexpr (Ast.Deref (Ast.ident name))) local mv.Region.mv_host_ty ]
            :: !prologue
        | Ast.Map_from | Ast.Map_tofrom ->
          subst := (name, Ast.Deref (Ast.ident name)) :: !subst)
    params;
  (List.rev !subst, List.rev !prologue)

let reduction_prologue_epilogue (params : Region.mapped_var list)
    (reductions : (string * Ast.reduction_op) list) : Ast.stmt list * Ast.stmt list =
  let ty_of name =
    match List.find_opt (fun mv -> mv.Region.mv_name = name) params with
    | Some mv when mv.Region.mv_scalar -> mv.Region.mv_host_ty
    | Some _ -> unsupported "reduction variable '%s' must be a scalar" name
    | None -> unsupported "reduction variable '%s' is not mapped into the region" name
  in
  let pro =
    List.map
      (fun (name, op) ->
        let ty = ty_of name in
        Ast.Sdecl [ Ast.mk_decl ~init:(Ast.Iexpr (reduction_identity op ty)) ("_red_" ^ name) ty ])
      reductions
  in
  (* the reduction variable's kernel parameter is the device pointer *)
  let epi = tree_reduce reductions ~ty_of ~target_of:(fun name -> Ast.ident name) in
  (pro, epi)

(* ---------------------------------------------------------------- *)
(* Call graph (paper §3: inject called functions into the kernel file) *)
(* ---------------------------------------------------------------- *)

let builtin_names =
  let names = List.map fst Typecheck.builtin_return_types in
  fun n -> List.mem n names || String.length n > 8 && String.sub n 0 8 = "cudadev_"

let calls_in_stmt (s : Ast.stmt) : string list =
  let acc = ref [] in
  Ast.iter_stmt
    ~on_expr:(function
      | Ast.Call (f, _) -> if not (List.mem f !acc) then acc := f :: !acc
      | _ -> ())
    ~on_stmt:(fun _ -> ())
    s;
  List.rev !acc

let calls_in_fundef (f : Ast.fundef) = calls_in_stmt f.Ast.f_body

(* Transitive closure of functions called from the kernel code that are
   defined in the host program. *)
let callgraph_functions (g : gen) (roots : Ast.stmt list) : Ast.fundef list =
  let defined = Hashtbl.create 16 in
  List.iter
    (function Ast.Gfun f -> Hashtbl.replace defined f.Ast.f_name f | _ -> ())
    g.g_program;
  let included = ref [] in
  let rec visit name =
    if (not (List.exists (fun f -> f.Ast.f_name = name) !included)) && not (builtin_names name) then
      match Hashtbl.find_opt defined name with
      | Some f ->
        included := f :: !included;
        List.iter visit (calls_in_fundef f)
      | None -> unsupported "function '%s' called inside a target region has no visible definition" name
  in
  List.iter (fun s -> List.iter visit (calls_in_stmt s)) roots;
  List.rev !included

(* ---------------------------------------------------------------- *)
(* Combined-construct kernels (§3.1)                                  *)
(* ---------------------------------------------------------------- *)

(* Default number of threads per block when no num_threads clause is
   given; 128 matches the core count of the Nano's SM. *)
let default_threads = 128

let build_combined g ~(name : string) (dir : Ast.directive) (loop_stmt : Ast.stmt) ~(with_teams : bool)
    ~(with_parallel_for : bool)
    ~(lower_nested : (string * Ast.expr) list -> Ast.stmt -> Ast.stmt) : kernel =
  let collapse = Option.value (clause_collapse dir) ~default:1 in
  let loops, body = Loops.analyze_nest collapse loop_stmt in
  let loop_vars = List.map (fun (c : Loops.canon) -> c.Loops.cl_var) loops in
  let referenced =
    List.filter (fun v -> not (List.mem v loop_vars)) (Subst.free_vars (Ast.Sblock [ loop_stmt ]))
  in
  let params = Region.plan g.g_env dir ~referenced in
  let reductions = clause_reductions dir in
  let subst, scalar_prologue = scalar_subst params reductions in
  let sub_e e = Subst.subst_expr_assoc subst e in
  let body = lower_nested subst (Subst.subst_assoc subst body) in
  let loops =
    List.map
      (fun (c : Loops.canon) ->
        { c with Loops.cl_lb = sub_e c.Loops.cl_lb; cl_ub = sub_e c.Loops.cl_ub; cl_step = sub_e c.Loops.cl_step })
      loops
  in
  let hoist_decls, loops, extents = hoist_nest g loops in
  let total = Loops.total_extent ~extents loops in
  let red_pro, red_epi = reduction_prologue_epilogue params reductions in
  let sched = Option.value (clause_schedule dir) ~default:(Ast.Sch_static, None) in
  let dist_schedule =
    Ast.find_clause dir (function Ast.Cdist_schedule (k, c) -> Some (k, c) | _ -> None)
  in
  (match (dist_schedule, sched) with
  | Some (_, Some _), ((Ast.Sch_dynamic | Ast.Sch_guided), _) ->
    unsupported "dist_schedule(static, c) combined with a dynamic/guided schedule is not supported"
  | _ -> ());
  let kernel_stmts =
    if with_parallel_for then begin
      if with_teams then begin
        let dlb = "_dlb" and dub = "_dub" in
        let loop_stmts, _rid =
          lower_thread_loop g ~sched ~loops ~extents ~body ~lo:(Ast.ident dlb) ~hi:(Ast.ident dub) ()
        in
        match dist_schedule with
        | Some (Ast.Sch_static, Some chunk) ->
          (* dist_schedule(static, c): the team walks its block-cyclic
             chunks; the thread-level schedule applies within each.  The
             reduction accumulator lives outside the chunk loop — one
             tree combine per team, not one per chunk — which is safe
             because every thread of the team sees the same chunk
             sequence (the cyclic walk depends only on the team id). *)
          let dk = "_dk" in
          hoist_decls
          @ [ decl_int dlb; decl_int dub ]
          @ red_pro
          @ [
              Ast.Sfor
                ( Some (decl_int ~init:(Ast.Iexpr (Ast.int_lit 0)) dk),
                  Some
                    (Ast.call "cudadev_get_distribute_cyclic"
                       [ Ast.ident dk; chunk; Ast.int_lit 0; total; addr_of dlb; addr_of dub ]),
                  Some (Ast.Unop (Ast.PostInc, Ast.ident dk)),
                  Ast.Sblock loop_stmts );
            ]
          @ red_epi
        | Some _ | None ->
          hoist_decls
          @ [
              decl_int dlb;
              decl_int dub;
              Ast.expr_stmt
                (Ast.call "cudadev_get_distribute_chunk" [ addr_of dlb; addr_of dub; Ast.int_lit 0; total ]);
            ]
          @ red_pro @ loop_stmts @ red_epi
      end
      else begin
        let loop_stmts, _rid =
          lower_thread_loop g ~sched ~loops ~extents ~body ~lo:(Ast.int_lit 0) ~hi:total ()
        in
        hoist_decls @ red_pro @ loop_stmts @ red_epi
      end
    end
    else begin
      (* target teams distribute: the team master alone runs its chunk *)
      let dlb = "_dlb" and dub = "_dub" in
      let it = "_it" in
      let inits, carry = Loops.incremental_recovery ~extents loops ~flat_start:(Ast.ident dlb) in
      let update =
        match carry with
        | Some c -> Ast.Comma (Ast.Unop (Ast.PostInc, Ast.ident it), c)
        | None -> Ast.Unop (Ast.PostInc, Ast.ident it)
      in
      hoist_decls
      @ [
          decl_int dlb;
          decl_int dub;
          Ast.expr_stmt
            (Ast.call "cudadev_get_distribute_chunk" [ addr_of dlb; addr_of dub; Ast.int_lit 0; total ]);
        ]
      @ red_pro
      @ [
          Ast.Sif
            ( Ast.lt (Ast.ident dlb) (Ast.ident dub),
              Ast.Sblock
                (inits
                @ [
                    Ast.Sfor
                      ( Some (decl_int ~init:(Ast.Iexpr (Ast.ident dlb)) it),
                        Some (Ast.lt (Ast.ident it) (Ast.ident dub)),
                        Some update,
                        body );
                  ]),
              None );
        ]
      @ red_epi
    end
  in
  let entry_params =
    List.map (fun (mv : Region.mapped_var) -> (mv.Region.mv_name, mv.Region.mv_param_ty)) params
  in
  let entry =
    {
      Ast.f_name = name;
      f_ret = Cty.Void;
      f_params = entry_params;
      f_body = Ast.Sblock (scalar_prologue @ kernel_stmts);
      f_static = false;
      f_device = true;
    }
  in
  let aux_fns = callgraph_functions g [ entry.Ast.f_body ] in
  let structs = List.filter (function Ast.Gstruct _ -> true | _ -> false) g.g_program in
  let program = structs @ g.g_aux @ List.map (fun f -> Ast.Gfun f) aux_fns @ [ Ast.Gfun entry ] in
  (* host-side geometry *)
  let threads =
    match clause_num_threads dir with
    | Some e -> e
    | None -> Ast.int_lit default_threads
  in
  (* thread_limit caps the team size at run time *)
  let threads =
    match Ast.find_clause dir (function Ast.Cthread_limit e -> Some e | _ -> None) with
    | Some limit -> Ast.Cond (Ast.lt threads limit, threads, limit)
    | None -> threads
  in
  let teams =
    if not with_teams then Ast.int_lit 1
    else
      match clause_num_teams dir with
      | Some e -> e
      | None ->
        (* one iteration per thread by default: ceil(total / threads) *)
        let total_host = Loops.total_extent (List.map (fun c -> c) loops) in
        (* careful: [loops] bounds were substituted for the kernel; the
           host needs the original expressions.  Re-analyze. *)
        ignore total_host;
        let orig_loops, _ = Loops.analyze_nest collapse loop_stmt in
        let t = Loops.total_extent orig_loops in
        Ast.Binop (Ast.Div, Ast.sub (Ast.add t threads) (Ast.int_lit 1), threads)
  in
  (* target teams distribute without parallel for: only the team master
     executes, so launch one thread per team instead of a full block of
     threads redundantly running the same chunk (which would also
     multiply reduction contributions). *)
  let threads = if with_parallel_for then threads else Ast.int_lit 1 in
  {
    k_entry = name;
    k_program = program;
    k_params = params;
    k_teams = teams;
    k_threads = threads;
    k_mode = Combined;
  }

(* ---------------------------------------------------------------- *)
(* Master/worker kernels (§3.2, Fig. 3)                               *)
(* ---------------------------------------------------------------- *)

(* Classification of a variable shared with a parallel region. *)
type shared_kind =
  | Sh_param of Region.mapped_var (* kernel parameter: pointer copied by value *)
  | Sh_local of Cty.t (* master-local variable: staged through shared memory *)

let find_param params name = List.find_opt (fun mv -> mv.Region.mv_name = name) params

let lock_global_name tag = "_ompi_lock_" ^ tag

let ensure_lock_global g tag =
  let name = lock_global_name tag in
  let exists =
    List.exists (function Ast.Gvar (d, _) -> d.Ast.d_name = name | _ -> false) g.g_aux
  in
  if not exists then g.g_aux <- g.g_aux @ [ Ast.Gvar (Ast.mk_decl name Cty.Int, true) ];
  name

(* Lower worksharing constructs appearing inside a parallel region body
   (executed by the region's threads). *)
let rec lower_parallel_body g (subst : (string * Ast.expr) list) (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Spragma (Ast.Omp dir, body) -> lower_ws_directive g subst dir body
  | Ast.Sblock ss -> Ast.Sblock (List.map (lower_parallel_body g subst) ss)
  | Ast.Sif (c, t, e) ->
    Ast.Sif (c, lower_parallel_body g subst t, Option.map (lower_parallel_body g subst) e)
  | Ast.Swhile (c, b) -> Ast.Swhile (c, lower_parallel_body g subst b)
  | Ast.Sdo (b, c) -> Ast.Sdo (lower_parallel_body g subst b, c)
  | Ast.Sfor (i, c, u, b) -> Ast.Sfor (i, c, u, lower_parallel_body g subst b)
  | s -> s

and lower_ws_directive g subst (dir : Ast.directive) (body : Ast.stmt option) : Ast.stmt =
  let sub_clause_e e = Subst.subst_expr_assoc subst e in
  match (dir.Ast.dir_constructs, body) with
  | [ Ast.C_barrier ], None -> Ast.expr_stmt (Ast.call "cudadev_barrier" [ Ast.int_lit 0 ])
  | [ Ast.C_atomic ], Some body -> (
    (* atomic update: x op= e becomes a hardware atomic where the device
       runtime has one; other statements fall back to the CAS lock *)
    match body with
    | Ast.Sexpr (Ast.Assign (Some Ast.Add, lhs, rhs)) ->
      Ast.expr_stmt (Ast.call "atomicAdd" [ Ast.AddrOf lhs; rhs ])
    | Ast.Sexpr (Ast.Assign (Some Ast.Sub, lhs, rhs)) ->
      Ast.expr_stmt (Ast.call "atomicAdd" [ Ast.AddrOf lhs; Ast.Unop (Ast.Neg, rhs) ])
    | body ->
      let lock = ensure_lock_global g "atomic" in
      Ast.Sblock
        [
          Ast.expr_stmt (Ast.call "cudadev_lock" [ addr_of lock ]);
          body;
          Ast.expr_stmt (Ast.call "cudadev_unlock" [ addr_of lock ]);
        ])
  | [ Ast.C_for ], Some loop_stmt ->
    let collapse = Option.value (clause_collapse dir) ~default:1 in
    let loops, lbody = Loops.analyze_nest collapse loop_stmt in
    let lbody = lower_parallel_body g subst lbody in
    let sched = Option.value (clause_schedule dir) ~default:(Ast.Sch_static, None) in
    let sched = (fst sched, Option.map sub_clause_e (snd sched)) in
    let hoist_decls, loops, extents = hoist_nest g loops in
    let total = Loops.total_extent ~extents loops in
    let stmts, rid =
      lower_thread_loop g ~sched ~loops ~extents ~body:lbody ~lo:(Ast.int_lit 0) ~hi:total ()
    in
    let stmts = hoist_decls @ stmts in
    let closing =
      if has_nowait dir then []
      else
        match rid with
        | Some rid -> [ Ast.expr_stmt (Ast.call "cudadev_ws_barrier" [ Ast.int_lit rid; Ast.int_lit 0 ]) ]
        | None -> [ Ast.expr_stmt (Ast.call "cudadev_barrier" [ Ast.int_lit 0 ]) ]
    in
    Ast.Sblock (stmts @ closing)
  | [ Ast.C_sections ], Some body ->
    let sections =
      match body with
      | Ast.Sblock ss ->
        List.map
          (function
            | Ast.Spragma (Ast.Omp { Ast.dir_constructs = [ Ast.C_section ]; _ }, Some b) ->
              lower_parallel_body g subst b
            | s -> lower_parallel_body g subst s)
          ss
      | s -> [ lower_parallel_body g subst s ]
    in
    let rid = fresh g in
    let sv = Printf.sprintf "_sec%d" rid in
    let dispatch =
      List.mapi (fun i s -> (i, s)) sections
      |> List.rev
      |> List.fold_left
           (fun acc (i, s) ->
             Some
               (Ast.Sif (Ast.Binop (Ast.Eq, Ast.ident sv, Ast.int_lit i), s, acc)))
           None
      |> Option.value ~default:Ast.Snop
    in
    let loop =
      Ast.Swhile
        ( Ast.Binop
            ( Ast.Ge,
              Ast.assign (Ast.ident sv)
                (Ast.call "cudadev_sections_next" [ Ast.int_lit rid; Ast.int_lit (List.length sections) ]),
              Ast.int_lit 0 ),
          Ast.Sblock [ dispatch ] )
    in
    let closing =
      if has_nowait dir then []
      else [ Ast.expr_stmt (Ast.call "cudadev_ws_barrier" [ Ast.int_lit rid; Ast.int_lit 0 ]) ]
    in
    Ast.Sblock ((decl_int sv :: [ loop ]) @ closing)
  | [ Ast.C_single ], Some body ->
    let body = lower_parallel_body g subst body in
    let guarded =
      Ast.Sif (Ast.Binop (Ast.Eq, Ast.call "omp_get_thread_num" [], Ast.int_lit 0), body, None)
    in
    if has_nowait dir then guarded
    else Ast.Sblock [ guarded; Ast.expr_stmt (Ast.call "cudadev_barrier" [ Ast.int_lit 0 ]) ]
  | [ Ast.C_master ], Some body ->
    Ast.Sif
      ( Ast.Binop (Ast.Eq, Ast.call "omp_get_thread_num" [], Ast.int_lit 0),
        lower_parallel_body g subst body,
        None )
  | [ Ast.C_critical name ], Some body ->
    let tag = match name with Some n -> n | None -> "default" in
    let lock = ensure_lock_global g tag in
    Ast.Sblock
      [
        Ast.expr_stmt (Ast.call "cudadev_lock" [ addr_of lock ]);
        lower_parallel_body g subst body;
        Ast.expr_stmt (Ast.call "cudadev_unlock" [ addr_of lock ]);
      ]
  | constructs, _ when List.mem Ast.C_parallel constructs ->
    unsupported "nested parallel regions inside a device parallel region are not supported"
  | constructs, _ ->
    unsupported "construct '%s' is not supported inside a device parallel region"
      (String.concat " " (List.map Pretty.construct_str constructs))

(* Generate the master-side code and the thread function for one
   standalone parallel region (Fig. 3b). *)
let gen_parallel g (params : Region.mapped_var list) (locals : (string * Cty.t) list)
    (scalar_sub : (string * Ast.expr) list) (dir : Ast.directive) (pbody : Ast.stmt) : Ast.stmt =
  let id = fresh g in
  let struct_name = Printf.sprintf "_vars_st%d" id in
  let thr_name = Printf.sprintf "_thrFunc%d" id in
  let vars = "_vars" in
  let privates = clause_privates dir in
  let firstprivates = clause_firstprivates dir in
  let reductions = clause_reductions dir in
  let red_names = List.map fst reductions in
  (* The region body may itself be a combined parallel-for. *)
  let is_parallel_for = List.mem Ast.C_for dir.Ast.dir_constructs in
  let loop_vars =
    if is_parallel_for then begin
      let collapse = Option.value (clause_collapse dir) ~default:1 in
      let loops, _ = Loops.analyze_nest collapse pbody in
      List.map (fun (c : Loops.canon) -> c.Loops.cl_var) loops
    end
    else []
  in
  let free = Subst.free_vars pbody in
  let shared =
    List.filter
      (fun v ->
        (not (List.mem v privates)) && (not (List.mem v firstprivates)) && (not (List.mem v loop_vars))
        && not (List.mem v red_names))
      free
  in
  let var_ty v =
    match (find_param params v, List.assoc_opt v locals) with
    | Some mv, _ -> Some (`Param mv)
    | None, Some ty -> Some (`Local ty)
    | None, None -> None
  in
  let classified =
    List.filter_map
      (fun v ->
        match var_ty v with
        | Some (`Param mv) -> Some (v, Sh_param mv)
        | Some (`Local ty) -> Some (v, Sh_local ty)
        | None -> None (* device global or function: accessible directly *))
      shared
  in
  (* struct fields *)
  let fields =
    List.map
      (fun (v, kind) ->
        match kind with
        | Sh_param mv -> (v, mv.Region.mv_param_ty)
        | Sh_local ty -> (v, Cty.Ptr ty))
      classified
    @ List.filter_map
        (fun v ->
          match var_ty v with
          | Some (`Param mv) when mv.Region.mv_scalar -> Some (v, mv.Region.mv_host_ty)
          | Some (`Local ty) -> Some (v, ty)
          | Some (`Param _) -> unsupported "firstprivate on aggregate '%s' is not supported" v
          | None -> unsupported "firstprivate variable '%s' not found" v)
        firstprivates
    @ List.filter_map
        (fun v ->
          (* reduction targets travel as pointers *)
          match var_ty v with
          | Some (`Param mv) when mv.Region.mv_scalar -> Some (v, Cty.Ptr mv.Region.mv_host_ty)
          | Some (`Local ty) -> Some (v, Cty.Ptr ty)
          | _ -> unsupported "reduction variable '%s' not found" v)
        red_names
  in
  g.g_aux <- g.g_aux @ [ Ast.Gstruct (struct_name, fields) ];
  (* master-side field initialisation *)
  let inits, pops =
    List.split
      (List.map
         (fun (v, kind) ->
           match kind with
           | Sh_param _ ->
             ( Ast.expr_stmt
                 (Ast.assign (Ast.Member (Ast.ident vars, v)) (Ast.call "cudadev_getaddr" [ Ast.ident v ])),
               [] )
           | Sh_local ty ->
             ( Ast.expr_stmt
                 (Ast.assign
                    (Ast.Member (Ast.ident vars, v))
                    (Ast.Cast (Cty.Ptr ty, Ast.call "cudadev_push_shmem" [ addr_of v; Ast.SizeofE (Ast.ident v) ]))),
               [ Ast.expr_stmt (Ast.call "cudadev_pop_shmem" [ addr_of v; Ast.SizeofE (Ast.ident v) ]) ] ))
         classified)
  in
  let fp_inits =
    List.map
      (fun v ->
        let value =
          match var_ty v with
          | Some (`Param mv) when mv.Region.mv_scalar -> Ast.Deref (Ast.ident v)
          | _ -> Ast.ident v
        in
        Ast.expr_stmt (Ast.assign (Ast.Member (Ast.ident vars, v)) value))
      firstprivates
  in
  let red_inits =
    List.map
      (fun v ->
        let ptr =
          match var_ty v with
          | Some (`Param _) -> Ast.ident v (* already a pointer parameter *)
          | Some (`Local _) ->
            Ast.Cast
              ( Cty.Ptr Cty.Void,
                Ast.call "cudadev_push_shmem" [ addr_of v; Ast.SizeofE (Ast.ident v) ] )
          | None -> unsupported "reduction variable '%s' not found" v
        in
        Ast.expr_stmt (Ast.assign (Ast.Member (Ast.ident vars, v)) ptr))
      red_names
  in
  let red_pops =
    List.filter_map
      (fun v ->
        match var_ty v with
        | Some (`Local _) ->
          Some (Ast.expr_stmt (Ast.call "cudadev_pop_shmem" [ addr_of v; Ast.SizeofE (Ast.ident v) ]))
        | _ -> None)
      red_names
  in
  let nthreads =
    match clause_num_threads dir with
    | Some e -> Subst.subst_expr_assoc scalar_sub e
    | None -> Ast.int_lit 0 (* 0 = all available workers *)
  in
  (* thread-function body *)
  let thr_subst =
    List.map
      (fun (v, kind) ->
        match kind with
        | Sh_param _ -> (v, Ast.Arrow (Ast.ident vars, v))
        | Sh_local _ -> (v, Ast.Deref (Ast.Arrow (Ast.ident vars, v))))
      classified
    @ List.map (fun (v, _) -> (v, Ast.ident ("_red_" ^ v))) reductions
  in
  let thr_prologue =
    List.map
      (fun v ->
        let ty =
          match var_ty v with
          | Some (`Param mv) -> mv.Region.mv_host_ty
          | Some (`Local ty) -> ty
          | None -> unsupported "private variable '%s' not found" v
        in
        Ast.Sdecl [ Ast.mk_decl v ty ])
      privates
    @ List.map
        (fun v ->
          let ty =
            match var_ty v with
            | Some (`Param mv) -> mv.Region.mv_host_ty
            | Some (`Local ty) -> ty
            | None -> unsupported "firstprivate variable '%s' not found" v
          in
          Ast.Sdecl [ Ast.mk_decl ~init:(Ast.Iexpr (Ast.Arrow (Ast.ident vars, v))) v ty ])
        firstprivates
    @ List.map
        (fun (v, op) ->
          let ty =
            match var_ty v with
            | Some (`Param mv) -> mv.Region.mv_host_ty
            | Some (`Local ty) -> ty
            | None -> unsupported "reduction variable '%s' not found" v
          in
          Ast.Sdecl [ Ast.mk_decl ~init:(Ast.Iexpr (reduction_identity op ty)) ("_red_" ^ v) ty ])
        reductions
  in
  let thr_epilogue =
    let ty_of v =
      match var_ty v with
      | Some (`Param mv) -> mv.Region.mv_host_ty
      | Some (`Local ty) -> ty
      | None -> assert false
    in
    tree_reduce ~uniq:(string_of_int id) reductions ~ty_of
      ~target_of:(fun v -> Ast.Arrow (Ast.ident vars, v))
  in
  let thr_core =
    if is_parallel_for then begin
      let collapse = Option.value (clause_collapse dir) ~default:1 in
      let loops, lbody = Loops.analyze_nest collapse pbody in
      let lbody = Subst.subst_assoc thr_subst (lower_parallel_body g thr_subst lbody) in
      let loops =
        List.map
          (fun (c : Loops.canon) ->
            {
              c with
              Loops.cl_lb = Subst.subst_expr_assoc thr_subst c.Loops.cl_lb;
              cl_ub = Subst.subst_expr_assoc thr_subst c.Loops.cl_ub;
              cl_step = Subst.subst_expr_assoc thr_subst c.Loops.cl_step;
            })
          loops
      in
      let sched = Option.value (clause_schedule dir) ~default:(Ast.Sch_static, None) in
      let hoist_decls, loops, extents = hoist_nest g loops in
      let total = Loops.total_extent ~extents loops in
      let stmts, _rid =
        lower_thread_loop g ~sched ~loops ~extents ~body:lbody ~lo:(Ast.int_lit 0) ~hi:total ()
      in
      hoist_decls @ stmts
    end
    else [ Subst.subst_assoc thr_subst (lower_parallel_body g thr_subst pbody) ]
  in
  let thr_fn =
    {
      Ast.f_name = thr_name;
      f_ret = Cty.Void;
      f_params = [ (vars, Cty.Ptr (Cty.Struct struct_name)) ];
      f_body = Ast.Sblock (thr_prologue @ thr_core @ thr_epilogue);
      f_static = false;
      f_device = true;
    }
  in
  g.g_aux <- g.g_aux @ [ Ast.Gfun thr_fn ];
  (* master-side block *)
  Ast.Sblock
    ([ Ast.Sdecl [ Ast.mk_decl ~shared:true vars (Cty.Struct struct_name) ] ]
    @ inits @ fp_inits @ red_inits
    @ [
        Ast.expr_stmt
          (Ast.call "cudadev_register_parallel" [ Ast.ident thr_name; addr_of vars; nthreads ]);
      ]
    @ List.concat (List.rev pops)
    @ red_pops)

(* Transform the sequential (master) part of a target body: standalone
   parallel regions become register_parallel blocks; orphaned
   worksharing executes on the master alone. *)
let rec xform_master g params scalar_sub (locals : (string * Cty.t) list) (s : Ast.stmt) :
    Ast.stmt * (string * Cty.t) list =
  match s with
  | Ast.Sdecl ds ->
    let locals = List.fold_left (fun acc (d : Ast.decl) -> (d.Ast.d_name, d.Ast.d_ty) :: acc) locals ds in
    (s, locals)
  | Ast.Sblock ss ->
    let ss', _ =
      List.fold_left
        (fun (acc, locals) s ->
          let s', locals' = xform_master g params scalar_sub locals s in
          (s' :: acc, locals'))
        ([], locals) ss
    in
    (Ast.Sblock (List.rev ss'), locals)
  | Ast.Sif (c, t, e) ->
    let t', _ = xform_master g params scalar_sub locals t in
    let e' = Option.map (fun e -> fst (xform_master g params scalar_sub locals e)) e in
    (Ast.Sif (c, t', e'), locals)
  | Ast.Swhile (c, b) ->
    let b', _ = xform_master g params scalar_sub locals b in
    (Ast.Swhile (c, b'), locals)
  | Ast.Sdo (b, c) ->
    let b', _ = xform_master g params scalar_sub locals b in
    (Ast.Sdo (b', c), locals)
  | Ast.Sfor (init, c, u, b) ->
    let locals' =
      match init with
      | Some (Ast.Sdecl ds) ->
        List.fold_left (fun acc (d : Ast.decl) -> (d.Ast.d_name, d.Ast.d_ty) :: acc) locals ds
      | _ -> locals
    in
    let b', _ = xform_master g params scalar_sub locals' b in
    (Ast.Sfor (init, c, u, b'), locals)
  | Ast.Spragma (Ast.Omp dir, body) -> (xform_master_directive g params scalar_sub locals dir body, locals)
  | s -> (s, locals)

and xform_master_directive g params scalar_sub locals (dir : Ast.directive) (body : Ast.stmt option)
    : Ast.stmt =
  match (dir.Ast.dir_constructs, body) with
  | constructs, Some pbody when List.hd constructs = Ast.C_parallel ->
    gen_parallel g params locals scalar_sub dir pbody
  | [ Ast.C_barrier ], None -> Ast.Snop (* master alone: no-op *)
  | ([ Ast.C_for ] | [ Ast.C_single ] | [ Ast.C_master ] | [ Ast.C_critical _ ] | [ Ast.C_atomic ]), Some b
    ->
    fst (xform_master g params scalar_sub locals b)
  | [ Ast.C_sections ], Some b -> fst (xform_master g params scalar_sub locals (Strip.strip_sections b))
  | constructs, _ ->
    unsupported "construct '%s' is not supported inside a target region"
      (String.concat " " (List.map Pretty.construct_str constructs))

let build_masterworker g ~(name : string) (dir : Ast.directive) (body : Ast.stmt) : kernel =
  let referenced = Subst.free_vars body in
  let params = Region.plan g.g_env dir ~referenced in
  let scalar_sub, scalar_prologue = scalar_subst params [] in
  let body = Subst.subst_assoc scalar_sub body in
  (* hoisted scalar copies are master locals, so parallel regions stage
     them through the shared-memory stack like any other local *)
  let hoisted_locals =
    List.filter_map
      (fun (mv : Region.mapped_var) ->
        match (mv.Region.mv_scalar, mv.Region.mv_map) with
        | true, (Ast.Map_to | Ast.Map_alloc) -> Some ("_loc_" ^ mv.Region.mv_name, mv.Region.mv_host_ty)
        | _ -> None)
      params
  in
  let body', _ = xform_master g params scalar_sub hoisted_locals body in
  let body' = Ast.Sblock (scalar_prologue @ [ body' ]) in
  let thrid = "_mw_thrid" in
  let entry_body =
    Ast.Sblock
      [
        decl_int ~init:(Ast.Iexpr (Ast.call "cudadev_thread_id" [])) thrid;
        Ast.Sif
          ( Ast.call "cudadev_in_masterwarp" [ Ast.ident thrid ],
            Ast.Sblock
              [
                Ast.Sif
                  ( Ast.Unop (Ast.Not, Ast.call "cudadev_is_masterthr" [ Ast.ident thrid ]),
                    Ast.Sreturn None,
                    None );
                body';
                Ast.expr_stmt (Ast.call "cudadev_exit_target" []);
              ],
            Some (Ast.Sblock [ Ast.expr_stmt (Ast.call "cudadev_workerfunc" [ Ast.ident thrid ]) ]) );
      ]
  in
  let entry_params =
    List.map (fun (mv : Region.mapped_var) -> (mv.Region.mv_name, mv.Region.mv_param_ty)) params
  in
  let entry =
    {
      Ast.f_name = name;
      f_ret = Cty.Void;
      f_params = entry_params;
      f_body = entry_body;
      f_static = false;
      f_device = true;
    }
  in
  let aux_bodies =
    List.filter_map (function Ast.Gfun f -> Some f.Ast.f_body | _ -> None) g.g_aux
  in
  let aux_fns = callgraph_functions g (entry.Ast.f_body :: aux_bodies) in
  let structs = List.filter (function Ast.Gstruct _ -> true | _ -> false) g.g_program in
  let program = structs @ g.g_aux @ List.map (fun f -> Ast.Gfun f) aux_fns @ [ Ast.Gfun entry ] in
  {
    k_entry = name;
    k_program = program;
    k_params = params;
    k_teams = Ast.int_lit 1;
    k_threads = Ast.int_lit mw_block_threads;
    k_mode = Masterworker;
  }

(* ---------------------------------------------------------------- *)
(* Dispatch                                                           *)
(* ---------------------------------------------------------------- *)

(* Build the kernel for a directive whose constructs start with target. *)
let build ~(env : Typecheck.env) ~(program : Ast.program) ~(name : string) (dir : Ast.directive)
    (body : Ast.stmt) : kernel =
  let g = { g_env = env; g_program = program; g_fresh = 0; g_aux = [] } in
  let has c = Ast.has_construct dir c in
  if has Ast.C_for && has Ast.C_parallel then begin
    (* target [teams distribute] parallel for *)
    let loop_stmt =
      match body with
      | Ast.Sfor _ -> body
      | Ast.Sblock [ (Ast.Sfor _ as f) ] -> f
      | _ -> unsupported "combined loop construct must be applied to a for loop"
    in
    build_combined g ~name dir loop_stmt ~with_teams:(has Ast.C_teams) ~with_parallel_for:true
      ~lower_nested:(fun subst stmt -> lower_parallel_body g subst stmt)
  end
  else if has Ast.C_distribute then begin
    let loop_stmt =
      match body with
      | Ast.Sfor _ -> body
      | Ast.Sblock [ (Ast.Sfor _ as f) ] -> f
      | _ -> unsupported "distribute must be applied to a for loop"
    in
    build_combined g ~name dir loop_stmt ~with_teams:true ~with_parallel_for:false
      ~lower_nested:(fun subst stmt -> lower_parallel_body g subst stmt)
  end
  else begin
    (* general target (possibly target teams / target parallel): the
       master/worker scheme handles arbitrary inner structure *)
    let body =
      if has Ast.C_parallel then
        (* target parallel { B } == target { parallel { B } } *)
        Ast.Sblock
          [
            Ast.Spragma
              ( Ast.Omp { Ast.dir_constructs = [ Ast.C_parallel ]; dir_clauses = dir.Ast.dir_clauses },
                Some body );
          ]
      else body
    in
    build_masterworker g ~name dir body
  end
