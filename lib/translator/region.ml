(* Data-environment planning for a target region: reconcile the map
   clauses with the variables actually referenced in the region body and
   derive, for each variable, the host base-address and byte-size
   expressions (used by the generated ort_map calls) and the kernel
   parameter type. *)

open Machine
open Minic

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type mapped_var = {
  mv_name : string;
  mv_host_ty : Cty.t;
  mv_map : Ast.map_type;
  mv_always : bool; (* the [always] map modifier: force transfers *)
  mv_base : Ast.expr; (* host address expression *)
  mv_bytes : Ast.expr; (* byte count expression *)
  mv_param_ty : Cty.t; (* kernel parameter type (always a pointer) *)
  mv_scalar : bool; (* region references become derefs of the parameter *)
}

let sizeof_expr ty = Ast.SizeofT ty

(* Section length in elements, for one map item applied to [ty]. *)
let section_bytes (ty : Cty.t) (sections : (Ast.expr option * Ast.expr option) list) : Ast.expr =
  match (ty, sections) with
  | _, [] -> sizeof_expr ty
  | (Cty.Array (elt, _) | Cty.Ptr elt), [ (lb, len) ] ->
    (match lb with
    | None | Some (Ast.IntLit (0L, _)) -> ()
    | Some _ -> unsupported "array sections must start at 0 (x[0:n] or x[:n])");
    let len =
      match (len, ty) with
      | Some len, _ -> len
      | None, Cty.Array (_, Some n) -> Ast.int_lit n
      | None, _ -> unsupported "array section needs an explicit length for pointer types"
    in
    Ast.mul len (sizeof_expr elt)
  | _, _ -> unsupported "multi-dimensional array sections are not supported; map the whole array"

let plan_one ?(always = false) (env : Typecheck.env) (mt : Ast.map_type) (item : Ast.map_item) : mapped_var =
  let name = item.Ast.mi_var in
  let ty =
    match Typecheck.lookup_var env name with
    | Some ty -> ty
    | None -> unsupported "mapped variable '%s' is not in scope" name
  in
  match ty with
  | Cty.Void | Cty.Func _ -> unsupported "cannot map variable '%s' of type %s" name (Cty.show ty)
  | Cty.Array (elt, _) ->
    ignore elt;
    {
      mv_name = name;
      mv_host_ty = ty;
      mv_map = mt;
      mv_always = always;
      mv_base = Ast.Ident name (* decays to the base pointer *);
      mv_bytes = section_bytes ty item.Ast.mi_sections;
      mv_param_ty = Cty.decay ty;
      mv_scalar = false;
    }
  | Cty.Ptr elt ->
    if item.Ast.mi_sections = [] then
      unsupported "pointer '%s' needs an array section in its map clause (e.g. %s[0:n])" name name;
    {
      mv_name = name;
      mv_host_ty = ty;
      mv_map = mt;
      mv_always = always;
      mv_base = Ast.Ident name;
      mv_bytes = section_bytes ty item.Ast.mi_sections;
      mv_param_ty = Cty.Ptr elt;
      mv_scalar = false;
    }
  | Cty.Char | Cty.Short | Cty.Int | Cty.Long | Cty.Uchar | Cty.Ushort | Cty.Uint | Cty.Ulong
  | Cty.Float | Cty.Double | Cty.Struct _ ->
    {
      mv_name = name;
      mv_host_ty = ty;
      mv_map = mt;
      mv_always = always;
      mv_base = Ast.AddrOf (Ast.Ident name);
      mv_bytes = sizeof_expr ty;
      mv_param_ty = Cty.Ptr ty;
      mv_scalar = true;
    }

(* Build the full plan for a target-family directive: explicit map
   clauses first (in clause order), then implicit captures.  Referenced
   scalars not mentioned in any map clause are mapped [to] (initialised
   copies, OMPi's behaviour); unmapped aggregates are an error. *)
let plan (env : Typecheck.env) (dir : Ast.directive) ~(referenced : string list) : mapped_var list =
  let explicit =
    List.concat_map
      (function
        | Ast.Cmap (mt, always, items) -> List.map (plan_one ~always env mt) items
        | _ -> [])
      dir.Ast.dir_clauses
  in
  let explicit_names = List.map (fun mv -> mv.mv_name) explicit in
  let reduction_names =
    List.concat_map
      (function Ast.Creduction (_, vs) -> vs | _ -> [])
      dir.Ast.dir_clauses
  in
  let implicit =
    List.filter_map
      (fun name ->
        if List.mem name explicit_names then None
        else
          match Typecheck.lookup_var env name with
          | None -> None (* function name or builtin; calls are handled separately *)
          | Some ty when Cty.is_arith ty ->
            (* implicit scalars: initialised device copies (OMPi maps
               them to) — except reduction targets, whose combined value
               must travel back (OpenMP 5: reduction implies tofrom) *)
            let mt = if List.mem name reduction_names then Ast.Map_tofrom else Ast.Map_to in
            Some (plan_one env mt { Ast.mi_var = name; mi_sections = [] })
          | Some (Cty.Array (_, Some _)) ->
            (* implicit aggregates default to tofrom; if an enclosing
               target data region already mapped them, the runtime's
               present check avoids any transfer *)
            Some (plan_one env Ast.Map_tofrom { Ast.mi_var = name; mi_sections = [] })
          | Some ty ->
            unsupported "variable '%s' of type %s is referenced in a target region but not mapped"
              name (Cty.show ty))
      referenced
  in
  explicit @ implicit

let map_type_code = function
  | Ast.Map_alloc -> 0
  | Ast.Map_to -> 1
  | Ast.Map_from -> 2
  | Ast.Map_tofrom -> 3

(* Full ort_map code: two-bit map type, [always] as bit 4 (decoded by
   Hostrt.Dataenv.decode_map_code). *)
let map_code mv = map_type_code mv.mv_map lor (if mv.mv_always then 4 else 0)
