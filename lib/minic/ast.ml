(* Abstract syntax of the C subset, including OpenMP directive nodes.
   The parser attaches pragmas as [Raw] token lists; the OpenMP pragma
   parser (lib/omp) rewrites them into typed [Omp] directives before the
   translator runs — the same two-stage structure OMPi uses. *)

open Machine

type unop =
  | Neg
  | Not
  | BitNot
  | PreInc
  | PreDec
  | PostInc
  | PostDec
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | BitAnd
  | BitXor
  | BitOr
  | LogAnd
  | LogOr
[@@deriving show { with_path = false }, eq]

type expr =
  | IntLit of int64 * Cty.t
  | FloatLit of float * Cty.t
  | CharLit of char
  | StrLit of string
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of binop option * expr * expr (* lhs (op)= rhs *)
  | Call of string * expr list
  | Index of expr * expr
  | Member of expr * string
  | Arrow of expr * string
  | Deref of expr
  | AddrOf of expr
  | Cast of Cty.t * expr
  | SizeofT of Cty.t
  | SizeofE of expr
  | Cond of expr * expr * expr
  | Comma of expr * expr
[@@deriving show { with_path = false }, eq]

(* ---------------------------------------------------------------- *)
(* OpenMP directives                                                 *)
(* ---------------------------------------------------------------- *)

type sched_kind = Sch_static | Sch_dynamic | Sch_guided | Sch_auto | Sch_runtime
[@@deriving show { with_path = false }, eq]

type map_type = Map_to | Map_from | Map_tofrom | Map_alloc
[@@deriving show { with_path = false }, eq]

(* x[lb:len] array sections; a bare variable has no sections. *)
type map_item = { mi_var : string; mi_sections : (expr option * expr option) list }
[@@deriving show { with_path = false }, eq]

type reduction_op = Rd_add | Rd_mul | Rd_max | Rd_min | Rd_land | Rd_lor | Rd_band | Rd_bor | Rd_bxor
[@@deriving show { with_path = false }, eq]

type clause =
  | Cnum_teams of expr
  | Cnum_threads of expr
  | Cthread_limit of expr
  | Cmap of map_type * bool * map_item list (* bool: the [always] modifier *)
  | Cprivate of string list
  | Cfirstprivate of string list
  | Cshared of string list
  | Cdefault_shared
  | Cdefault_none
  | Cschedule of sched_kind * expr option
  | Cdist_schedule of sched_kind * expr option
  | Ccollapse of int
  | Creduction of reduction_op * string list
  | Cif of expr
  | Cdevice of expr
  | Cnowait
  | Cupdate_to of map_item list
  | Cupdate_from of map_item list
[@@deriving show { with_path = false }, eq]

(* A directive is an ordered combination of base constructs, e.g.
   "target teams distribute parallel for" = [Target;Teams;Distribute;
   Parallel;For].  Stand-alone directives appear with [body = None] at
   the statement level. *)
type construct =
  | C_target
  | C_teams
  | C_distribute
  | C_parallel
  | C_for
  | C_sections
  | C_section
  | C_single
  | C_master
  | C_critical of string option
  | C_barrier
  | C_taskwait
  | C_atomic
  | C_target_data
  | C_target_enter_data
  | C_target_exit_data
  | C_target_update
  | C_declare_target
  | C_end_declare_target
[@@deriving show { with_path = false }, eq]

type directive = { dir_constructs : construct list; dir_clauses : clause list }
[@@deriving show { with_path = false }, eq]

type pragma =
  | Raw of Token.t list
  | Omp of directive
[@@deriving show { with_path = false }, eq]

(* ---------------------------------------------------------------- *)
(* Statements and declarations                                       *)
(* ---------------------------------------------------------------- *)

type init = Iexpr of expr | Ilist of init list [@@deriving show { with_path = false }, eq]

type decl = { d_name : string; d_ty : Cty.t; d_init : init option; d_shared : bool }
[@@deriving show { with_path = false }, eq]

let mk_decl ?(shared = false) ?init name ty = { d_name = name; d_ty = ty; d_init = init; d_shared = shared }

type stmt =
  | Sexpr of expr
  | Sdecl of decl list
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
      (* init is Sexpr or Sdecl *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Snop
  | Spragma of pragma * stmt option (* None for stand-alone directives *)
[@@deriving show { with_path = false }, eq]

type fundef = {
  f_name : string;
  f_ret : Cty.t;
  f_params : (string * Cty.t) list;
  f_body : stmt;
  f_static : bool;
  f_device : bool; (* inside a declare-target region *)
}
[@@deriving show { with_path = false }, eq]

type global =
  | Gfun of fundef
  | Gfundecl of string * Cty.t * (string * Cty.t) list
  | Gvar of decl * bool (* decl, is_device (declare target) *)
  | Gstruct of string * (string * Cty.t) list
  | Gpragma of pragma
[@@deriving show { with_path = false }, eq]

type program = global list [@@deriving show { with_path = false }, eq]

(* ---------------------------------------------------------------- *)
(* Convenience constructors used heavily by the translator.          *)
(* ---------------------------------------------------------------- *)

let int_lit i = IntLit (Int64.of_int i, Cty.Int)

let ident x = Ident x

let call f args = Call (f, args)

let assign lhs rhs = Assign (None, lhs, rhs)

let expr_stmt e = Sexpr e

let block stmts = Sblock stmts

let lt a b = Binop (Lt, a, b)

let add a b = Binop (Add, a, b)

let sub a b = Binop (Sub, a, b)

let mul a b = Binop (Mul, a, b)

(* Fold integer constant expressions (array dimensions, collapse args). *)
let rec const_eval_opt (e : expr) : int64 option =
  let open Int64 in
  let bin f a b =
    match (const_eval_opt a, const_eval_opt b) with
    | Some x, Some y -> Some (f x y)
    | _ -> None
  in
  match e with
  | IntLit (i, _) -> Some i
  | CharLit c -> Some (of_int (Char.code c))
  | Unop (Neg, a) -> Option.map neg (const_eval_opt a)
  | Unop (BitNot, a) -> Option.map lognot (const_eval_opt a)
  | Unop (Not, a) -> Option.map (fun v -> if v = 0L then 1L else 0L) (const_eval_opt a)
  | Binop (Add, a, b) -> bin add a b
  | Binop (Sub, a, b) -> bin sub a b
  | Binop (Mul, a, b) -> bin mul a b
  | Binop (Div, a, b) -> (
    match bin div a b with exception Division_by_zero -> None | v -> v)
  | Binop (Mod, a, b) -> (
    match bin rem a b with exception Division_by_zero -> None | v -> v)
  | Binop (Shl, a, b) -> bin (fun x y -> shift_left x (to_int y)) a b
  | Binop (Shr, a, b) -> bin (fun x y -> shift_right x (to_int y)) a b
  | Binop (BitAnd, a, b) -> bin logand a b
  | Binop (BitOr, a, b) -> bin logor a b
  | Binop (BitXor, a, b) -> bin logxor a b
  | Cast (ty, a) when Cty.is_integer ty -> const_eval_opt a
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Generic traversal helpers                                         *)
(* ---------------------------------------------------------------- *)

let rec iter_expr f (e : expr) =
  f e;
  match e with
  | IntLit _ | FloatLit _ | CharLit _ | StrLit _ | Ident _ | SizeofT _ -> ()
  | Unop (_, a) | Cast (_, a) | SizeofE a | Deref a | AddrOf a | Member (a, _) | Arrow (a, _) ->
    iter_expr f a
  | Binop (_, a, b) | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
    iter_expr f a;
    iter_expr f b
  | Cond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c
  | Call (_, args) -> List.iter (iter_expr f) args

let rec iter_stmt ?(enter_pragma = true) ~on_expr ~on_stmt (s : stmt) =
  on_stmt s;
  let iter_e = iter_expr on_expr in
  let iter_s = iter_stmt ~enter_pragma ~on_expr ~on_stmt in
  match s with
  | Sexpr e -> iter_e e
  | Sdecl ds ->
    List.iter
      (fun d ->
        match d.d_init with
        | Some i ->
          let rec init = function Iexpr e -> iter_e e | Ilist l -> List.iter init l in
          init i
        | None -> ())
      ds
  | Sblock ss -> List.iter iter_s ss
  | Sif (c, t, e) ->
    iter_e c;
    iter_s t;
    Option.iter iter_s e
  | Swhile (c, b) ->
    iter_e c;
    iter_s b
  | Sdo (b, c) ->
    iter_s b;
    iter_e c
  | Sfor (i, c, u, b) ->
    Option.iter iter_s i;
    Option.iter iter_e c;
    Option.iter iter_e u;
    iter_s b
  | Sreturn e -> Option.iter iter_e e
  | Sbreak | Scontinue | Snop -> ()
  | Spragma (_, body) -> if enter_pragma then Option.iter iter_s body

(* Map over statements bottom-up; used by rewrite passes. *)
let rec map_stmt (f : stmt -> stmt) (s : stmt) : stmt =
  let recurse = map_stmt f in
  let s' =
    match s with
    | Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Snop -> s
    | Sblock ss -> Sblock (List.map recurse ss)
    | Sif (c, t, e) -> Sif (c, recurse t, Option.map recurse e)
    | Swhile (c, b) -> Swhile (c, recurse b)
    | Sdo (b, c) -> Sdo (recurse b, c)
    | Sfor (i, c, u, b) -> Sfor (Option.map recurse i, c, u, recurse b)
    | Spragma (p, body) -> Spragma (p, Option.map recurse body)
  in
  f s'

(* Collect free identifiers referenced in an expression. *)
let expr_idents e =
  let acc = ref [] in
  iter_expr (function Ident x -> if not (List.mem x !acc) then acc := x :: !acc | _ -> ()) e;
  List.rev !acc

let find_clause (dir : directive) (pick : clause -> 'a option) : 'a option =
  List.find_map pick dir.dir_clauses

let has_construct (dir : directive) (c : construct) = List.mem c dir.dir_constructs
