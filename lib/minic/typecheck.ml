(* Scoped symbol table and expression typing for the mini-C AST.  The
   translator uses it to find the types of variables referenced in a
   target region (for map sizes and kernel parameter structs); the
   interpreter uses it for struct layouts. *)

open Machine

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type env = {
  structs : Cty.layout_env;
  funcs : (string, Cty.t * (string * Cty.t) list) Hashtbl.t;
  globals : (string, Cty.t) Hashtbl.t;
  mutable scopes : (string, Cty.t) Hashtbl.t list;
}

(* Return types of the builtin functions available inside kernels and
   host code; calls to names absent from this table and from the program
   are reported by [check_program]. *)
let builtin_return_types : (string * Cty.t) list =
  [
    ("omp_get_thread_num", Cty.Int);
    ("omp_get_num_threads", Cty.Int);
    ("omp_get_team_num", Cty.Int);
    ("omp_get_num_teams", Cty.Int);
    ("omp_get_num_devices", Cty.Int);
    ("omp_set_default_device", Cty.Void);
    ("omp_get_default_device", Cty.Int);
    ("omp_get_wtime", Cty.Double);
    ("omp_is_initial_device", Cty.Int);
    ("printf", Cty.Int);
    ("malloc", Cty.Ptr Cty.Void);
    ("free", Cty.Void);
    ("sqrt", Cty.Double);
    ("sqrtf", Cty.Float);
    ("fabs", Cty.Double);
    ("fabsf", Cty.Float);
    ("exp", Cty.Double);
    ("expf", Cty.Float);
    ("pow", Cty.Double);
    ("abs", Cty.Int);
    (* cudadev device-library entry points (generated code only) *)
    ("cudadev_in_masterwarp", Cty.Int);
    ("cudadev_is_masterthr", Cty.Int);
    ("cudadev_register_parallel", Cty.Void);
    ("cudadev_workerfunc", Cty.Void);
    ("cudadev_exit_target", Cty.Void);
    ("cudadev_push_shmem", Cty.Ptr Cty.Void);
    ("cudadev_pop_shmem", Cty.Void);
    ("cudadev_getaddr", Cty.Ptr Cty.Void);
    ("cudadev_barrier", Cty.Void);
    ("cudadev_lock", Cty.Void);
    ("cudadev_unlock", Cty.Void);
    ("cudadev_get_distribute_chunk", Cty.Void);
    ("cudadev_get_distribute_cyclic", Cty.Int);
    ("cudadev_get_static_chunk", Cty.Int);
    ("cudadev_get_dynamic_chunk", Cty.Int);
    ("cudadev_get_guided_chunk", Cty.Int);
    ("cudadev_sections_next", Cty.Int);
    ("cudadev_ws_barrier", Cty.Void);
    ("cudadev_reduce_fadd", Cty.Void);
    ("cudadev_reduce_iadd", Cty.Void);
    ("cudadev_reduce_fmul", Cty.Void);
    ("cudadev_reduce_imul", Cty.Void);
    ("cudadev_reduce_fmax", Cty.Void);
    ("cudadev_reduce_fmin", Cty.Void);
    ("cudadev_reduce_imax", Cty.Void);
    ("cudadev_reduce_imin", Cty.Void);
    ("cudadev_reduce_iand", Cty.Void);
    ("cudadev_reduce_ior", Cty.Void);
    ("cudadev_reduce_ixor", Cty.Void);
    ("cudadev_reduce_iland", Cty.Void);
    ("cudadev_reduce_fland", Cty.Void);
    ("cudadev_reduce_flor", Cty.Void);
    ("cudadev_thread_id", Cty.Int);
    (* CUDA intrinsics available to hand-written kernels *)
    ("__syncthreads", Cty.Void);
    ("atomicAdd", Cty.Int);
    ("atomicCAS", Cty.Int);
    ("atomicExch", Cty.Int);
    ("cudadev_team_id", Cty.Int);
    ("cudadev_num_teams", Cty.Int);
    ("cudadev_num_threads", Cty.Int);
  ]

let create () =
  {
    structs = Cty.create_layout_env ();
    funcs = Hashtbl.create 32;
    globals = Hashtbl.create 32;
    scopes = [];
  }

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> error "pop_scope on empty scope stack"
  | _ :: rest -> env.scopes <- rest

let add_var env name ty =
  match env.scopes with
  | [] -> Hashtbl.replace env.globals name ty
  | scope :: _ -> Hashtbl.replace scope name ty

let lookup_var env name : Cty.t option =
  let rec go = function
    | [] -> Hashtbl.find_opt env.globals name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some ty -> Some ty
      | None -> go rest)
  in
  go env.scopes

let in_scope f env =
  push_scope env;
  Fun.protect ~finally:(fun () -> pop_scope env) f

(* Collect top-level declarations: struct layouts, function signatures,
   globals.  Does not enter function bodies. *)
let of_program (p : Ast.program) : env =
  let env = create () in
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct (name, fields) -> ignore (Cty.define_struct env.structs name fields)
      | Ast.Gfun f -> Hashtbl.replace env.funcs f.f_name (f.f_ret, f.f_params)
      | Ast.Gfundecl (name, ret, params) -> Hashtbl.replace env.funcs name (ret, params)
      | Ast.Gvar (d, _) -> Hashtbl.replace env.globals d.d_name d.d_ty
      | Ast.Gpragma _ -> ())
    p;
  env

let rec type_of_expr env (e : Ast.expr) : Cty.t =
  match e with
  | Ast.IntLit (_, ty) | Ast.FloatLit (_, ty) -> ty
  | Ast.CharLit _ -> Cty.Int
  | Ast.StrLit _ -> Cty.Ptr Cty.Char
  | Ast.Ident x -> (
    match lookup_var env x with
    | Some ty -> ty
    | None -> (
      match Hashtbl.find_opt env.funcs x with
      | Some (ret, params) -> Cty.Func (ret, List.map snd params, false)
      | None -> error "unbound identifier '%s'" x))
  | Ast.Unop ((Ast.PreInc | Ast.PreDec | Ast.PostInc | Ast.PostDec), a) -> type_of_expr env a
  | Ast.Unop (Ast.Not, _) -> Cty.Int
  | Ast.Unop ((Ast.Neg | Ast.BitNot), a) ->
    let ty = Cty.decay (type_of_expr env a) in
    if Cty.is_integer ty then Cty.common_arith ty Cty.Int else ty
  | Ast.Binop ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne | Ast.LogAnd | Ast.LogOr), _, _) ->
    Cty.Int
  | Ast.Binop ((Ast.Add | Ast.Sub) as op, a, b) -> (
    let ta = Cty.decay (type_of_expr env a) and tb = Cty.decay (type_of_expr env b) in
    match (ta, tb) with
    | Cty.Ptr _, Cty.Ptr _ when op = Ast.Sub -> Cty.Long
    | Cty.Ptr _, _ -> ta
    | _, Cty.Ptr _ -> tb
    | _ -> Cty.common_arith ta tb)
  | Ast.Binop ((Ast.Shl | Ast.Shr), a, _) ->
    let ta = Cty.decay (type_of_expr env a) in
    if Cty.is_integer ta then Cty.common_arith ta Cty.Int else error "shift of non-integer"
  | Ast.Binop (_, a, b) ->
    Cty.common_arith (Cty.decay (type_of_expr env a)) (Cty.decay (type_of_expr env b))
  | Ast.Assign (_, lhs, _) -> Cty.decay (type_of_expr env lhs)
  | Ast.Call (f, _) -> (
    match Hashtbl.find_opt env.funcs f with
    | Some (ret, _) -> ret
    | None -> (
      match List.assoc_opt f builtin_return_types with
      | Some ty -> ty
      | None -> error "call to unknown function '%s'" f))
  | Ast.Index (a, _) -> Cty.pointee (Cty.decay (type_of_expr env a))
  | Ast.Member (a, fld) -> (
    match type_of_expr env a with
    | Cty.Struct s -> (Cty.find_field env.structs s fld).fld_ty
    | ty -> error "member access on non-struct type %s" (Cty.show ty))
  | Ast.Arrow (a, fld) -> (
    match Cty.decay (type_of_expr env a) with
    | Cty.Ptr (Cty.Struct s) -> (Cty.find_field env.structs s fld).fld_ty
    | ty -> error "arrow access on type %s" (Cty.show ty))
  | Ast.Deref a -> Cty.pointee (Cty.decay (type_of_expr env a))
  | Ast.AddrOf a -> Cty.Ptr (type_of_expr env a)
  | Ast.Cast (ty, _) -> ty
  | Ast.SizeofT _ | Ast.SizeofE _ -> Cty.Ulong
  | Ast.Cond (_, t, f) ->
    let tt = Cty.decay (type_of_expr env t) and tf = Cty.decay (type_of_expr env f) in
    if Cty.is_arith tt && Cty.is_arith tf then Cty.common_arith tt tf else tt
  | Ast.Comma (_, b) -> type_of_expr env b

(* Walk a statement, maintaining scopes, and run [f env stmt] at each
   node top-down.  This is the workhorse for translator analyses that
   need typing context at arbitrary program points. *)
let rec walk_stmt env ~(on_stmt : env -> Ast.stmt -> unit) (s : Ast.stmt) : unit =
  on_stmt env s;
  match s with
  | Ast.Sdecl ds -> List.iter (fun (d : Ast.decl) -> add_var env d.d_name d.d_ty) ds
  | Ast.Sblock ss -> in_scope (fun () -> List.iter (walk_stmt env ~on_stmt) ss) env
  | Ast.Sif (_, t, e) ->
    walk_stmt env ~on_stmt t;
    Option.iter (walk_stmt env ~on_stmt) e
  | Ast.Swhile (_, b) | Ast.Sdo (b, _) -> walk_stmt env ~on_stmt b
  | Ast.Sfor (init, _, _, b) ->
    in_scope
      (fun () ->
        Option.iter (walk_stmt env ~on_stmt) init;
        walk_stmt env ~on_stmt b)
      env
  | Ast.Spragma (_, body) -> Option.iter (walk_stmt env ~on_stmt) body
  | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snop -> ()

(* CUDA's implicit device variables, available when checking kernel
   files written against the simulator's CUDA dialect. *)
let cuda_globals = [ "threadIdx"; "blockIdx"; "blockDim"; "gridDim" ]

(* Whole-program check: every expression types, every called function is
   known.  Returns the list of errors (empty = well-typed). *)
let check_program ?(cuda = false) (p : Ast.program) : string list =
  let env = of_program p in
  if cuda then begin
    if not (Cty.has_layout env.structs "dim3") then
      ignore (Cty.define_struct env.structs "dim3" [ ("x", Cty.Int); ("y", Cty.Int); ("z", Cty.Int) ]);
    List.iter (fun v -> Hashtbl.replace env.globals v (Cty.Struct "dim3")) cuda_globals
  end;
  let errors = ref [] in
  let check_expr e = try ignore (type_of_expr env e) with Error m -> errors := m :: !errors in
  let check_stmt env s =
    match s with
    | Ast.Sexpr e -> check_expr e
    | Ast.Sif (c, _, _) | Ast.Swhile (c, _) | Ast.Sdo (_, c) -> check_expr c
    | Ast.Sfor (init, c, u, _) ->
      (* the condition/update may reference a variable declared in the
         init clause, which the scoped walk only adds when recursing *)
      in_scope
        (fun () ->
          (match init with
          | Some (Ast.Sdecl ds) ->
            List.iter (fun (d : Ast.decl) -> add_var env d.d_name d.d_ty) ds
          | _ -> ());
          Option.iter check_expr c;
          Option.iter check_expr u)
        env
    | Ast.Sreturn (Some e) -> check_expr e
    | Ast.Sdecl ds ->
      List.iter
        (fun (d : Ast.decl) ->
          match d.d_init with
          | Some (Ast.Iexpr e) -> check_expr e
          | Some (Ast.Ilist _) | None -> ())
        ds
    | _ -> ()
  in
  List.iter
    (function
      | Ast.Gfun f ->
        in_scope
          (fun () ->
            List.iter (fun (n, ty) -> add_var env n ty) f.f_params;
            walk_stmt env ~on_stmt:check_stmt f.f_body)
          env
      | Ast.Gvar _ | Ast.Gstruct _ | Ast.Gfundecl _ | Ast.Gpragma _ -> ())
    p;
  List.rev !errors
