(* C source emission for the mini-C AST.  Used to write translated host
   files and generated CUDA kernel files, and by golden tests. *)

open Machine
open Format

let unop_prefix = function
  | Ast.Neg -> "-"
  | Ast.Not -> "!"
  | Ast.BitNot -> "~"
  | Ast.PreInc -> "++"
  | Ast.PreDec -> "--"
  | Ast.PostInc | Ast.PostDec -> ""

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.BitAnd -> "&"
  | Ast.BitXor -> "^"
  | Ast.BitOr -> "|"
  | Ast.LogAnd -> "&&"
  | Ast.LogOr -> "||"

let binop_prec = function
  | Ast.Mul | Ast.Div | Ast.Mod -> 10
  | Ast.Add | Ast.Sub -> 9
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> 7
  | Ast.Eq | Ast.Ne -> 6
  | Ast.BitAnd -> 5
  | Ast.BitXor -> 4
  | Ast.BitOr -> 3
  | Ast.LogAnd -> 2
  | Ast.LogOr -> 1

(* Emit [e] parenthesised if its precedence is below [min_prec].
   Precedence scale: 0 assignment/conditional/comma, 1-10 binops,
   11 unary, 12 postfix/primary. *)
let rec pp_expr_prec fmt min_prec (e : Ast.expr) =
  let prec =
    match e with
    | Ast.Comma _ -> -1
    | Ast.Assign _ | Ast.Cond _ -> 0
    | Ast.Binop (op, _, _) -> binop_prec op
    | Ast.Unop _ | Ast.Deref _ | Ast.AddrOf _ | Ast.Cast _ | Ast.SizeofT _ | Ast.SizeofE _ -> 11
    | _ -> 12
  in
  if prec < min_prec then fprintf fmt "(%a)" pp_expr e else pp_expr fmt e

and pp_expr fmt (e : Ast.expr) =
  match e with
  | Ast.IntLit (i, Cty.Long) -> fprintf fmt "%LdL" i
  | Ast.IntLit (i, _) -> fprintf fmt "%Ld" i
  | Ast.FloatLit (f, Cty.Float) ->
    let s = sprintf "%.9g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    fprintf fmt "%sf" s
  | Ast.FloatLit (f, _) ->
    let s = sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    pp_print_string fmt s
  | Ast.CharLit c -> fprintf fmt "%C" c
  | Ast.StrLit s -> fprintf fmt "%S" s
  | Ast.Ident x -> pp_print_string fmt x
  | Ast.Unop (Ast.PostInc, a) -> fprintf fmt "%a++" (fun fmt -> pp_expr_prec fmt 12) a
  | Ast.Unop (Ast.PostDec, a) -> fprintf fmt "%a--" (fun fmt -> pp_expr_prec fmt 12) a
  | Ast.Unop (op, a) -> fprintf fmt "%s%a" (unop_prefix op) (fun fmt -> pp_expr_prec fmt 11) a
  | Ast.Binop (op, a, b) ->
    let p = binop_prec op in
    fprintf fmt "%a %s %a"
      (fun fmt -> pp_expr_prec fmt p) a
      (binop_str op)
      (fun fmt -> pp_expr_prec fmt (p + 1)) b
  | Ast.Assign (None, lhs, rhs) ->
    fprintf fmt "%a = %a" (fun fmt -> pp_expr_prec fmt 11) lhs (fun fmt -> pp_expr_prec fmt 0) rhs
  | Ast.Assign (Some op, lhs, rhs) ->
    fprintf fmt "%a %s= %a"
      (fun fmt -> pp_expr_prec fmt 11) lhs
      (binop_str op)
      (fun fmt -> pp_expr_prec fmt 0) rhs
  | Ast.Call (f, args) ->
    fprintf fmt "%s(%a)" f
      (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") (fun fmt -> pp_expr_prec fmt 0))
      args
  | Ast.Index (a, i) ->
    fprintf fmt "%a[%a]" (fun fmt -> pp_expr_prec fmt 12) a pp_expr i
  | Ast.Member (a, f) -> fprintf fmt "%a.%s" (fun fmt -> pp_expr_prec fmt 12) a f
  | Ast.Arrow (a, f) -> fprintf fmt "%a->%s" (fun fmt -> pp_expr_prec fmt 12) a f
  | Ast.Deref a -> fprintf fmt "*%a" (fun fmt -> pp_expr_prec fmt 11) a
  | Ast.AddrOf a -> fprintf fmt "&%a" (fun fmt -> pp_expr_prec fmt 11) a
  | Ast.Cast (ty, a) -> fprintf fmt "(%s)%a" (Cty.to_c_string ty) (fun fmt -> pp_expr_prec fmt 11) a
  | Ast.SizeofT ty -> fprintf fmt "sizeof(%s)" (Cty.to_c_string ty)
  | Ast.SizeofE a -> fprintf fmt "sizeof(%a)" (fun fmt -> pp_expr_prec fmt 11) a
  | Ast.Cond (c, t, f) ->
    fprintf fmt "%a ? %a : %a"
      (fun fmt -> pp_expr_prec fmt 1) c
      (fun fmt -> pp_expr_prec fmt 0) t
      (fun fmt -> pp_expr_prec fmt 0) f
  | Ast.Comma (a, b) -> fprintf fmt "%a, %a" (fun fmt -> pp_expr_prec fmt 0) a (fun fmt -> pp_expr_prec fmt 0) b

let rec pp_init fmt = function
  | Ast.Iexpr e -> pp_expr fmt e
  | Ast.Ilist items ->
    fprintf fmt "{ %a }"
      (pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_init)
      items

let pp_decl fmt (d : Ast.decl) =
  if d.d_shared then pp_print_string fmt "__shared__ ";
  fprintf fmt "%s" (Cty.to_c_string ~name:d.d_name d.d_ty);
  match d.d_init with
  | Some i -> fprintf fmt " = %a" pp_init i
  | None -> ()

(* Comma-separated declarator group sharing one specifier, as required
   in for-init clauses: "int i = 0, *p = a".  The declarator text of
   later entries is the full rendering minus the specifier prefix. *)
let rec base_specifier (ty : Cty.t) : Cty.t =
  match ty with
  | Cty.Ptr t | Cty.Array (t, _) | Cty.Func (t, _, _) -> base_specifier t
  | t -> t

let pp_decl_group fmt (ds : Ast.decl list) =
  match ds with
  | [] -> ()
  | [ d ] -> pp_decl fmt d
  | d0 :: rest when List.for_all (fun (d : Ast.decl) -> Cty.equal (base_specifier d.Ast.d_ty) (base_specifier d0.Ast.d_ty)) rest ->
    let spec = Cty.to_c_string (base_specifier d0.Ast.d_ty) in
    pp_decl fmt d0;
    List.iter
      (fun (d : Ast.decl) ->
        let full = Cty.to_c_string ~name:d.Ast.d_name d.Ast.d_ty in
        let declarator =
          let prefix = spec ^ " " in
          let lp = String.length prefix in
          if String.length full >= lp && String.sub full 0 lp = prefix then
            String.sub full lp (String.length full - lp)
          else full
        in
        fprintf fmt ", %s" declarator;
        match d.Ast.d_init with Some i -> fprintf fmt " = %a" pp_init i | None -> ())
      rest
  | ds -> pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_decl fmt ds

(* ---------------------------------------------------------------- *)
(* OpenMP directives back to pragma syntax (for diagnostics/goldens)  *)
(* ---------------------------------------------------------------- *)

let sched_str = function
  | Ast.Sch_static -> "static"
  | Ast.Sch_dynamic -> "dynamic"
  | Ast.Sch_guided -> "guided"
  | Ast.Sch_auto -> "auto"
  | Ast.Sch_runtime -> "runtime"

let map_type_str = function
  | Ast.Map_to -> "to"
  | Ast.Map_from -> "from"
  | Ast.Map_tofrom -> "tofrom"
  | Ast.Map_alloc -> "alloc"

let red_op_str = function
  | Ast.Rd_add -> "+"
  | Ast.Rd_mul -> "*"
  | Ast.Rd_max -> "max"
  | Ast.Rd_min -> "min"
  | Ast.Rd_land -> "&&"
  | Ast.Rd_lor -> "||"
  | Ast.Rd_band -> "&"
  | Ast.Rd_bor -> "|"
  | Ast.Rd_bxor -> "^"

let pp_map_item fmt (mi : Ast.map_item) =
  pp_print_string fmt mi.mi_var;
  List.iter
    (fun (lb, len) ->
      fprintf fmt "[%a:%a]"
        (pp_print_option pp_expr) lb
        (pp_print_option pp_expr) len)
    mi.mi_sections

let pp_strings fmt xs = pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_print_string fmt xs

let pp_items fmt xs = pp_print_list ~pp_sep:(fun fmt () -> pp_print_string fmt ", ") pp_map_item fmt xs

let pp_clause fmt (c : Ast.clause) =
  match c with
  | Ast.Cnum_teams e -> fprintf fmt "num_teams(%a)" pp_expr e
  | Ast.Cnum_threads e -> fprintf fmt "num_threads(%a)" pp_expr e
  | Ast.Cthread_limit e -> fprintf fmt "thread_limit(%a)" pp_expr e
  | Ast.Cmap (mt, always, items) ->
    fprintf fmt "map(%s%s: %a)" (if always then "always, " else "") (map_type_str mt) pp_items items
  | Ast.Cprivate xs -> fprintf fmt "private(%a)" pp_strings xs
  | Ast.Cfirstprivate xs -> fprintf fmt "firstprivate(%a)" pp_strings xs
  | Ast.Cshared xs -> fprintf fmt "shared(%a)" pp_strings xs
  | Ast.Cdefault_shared -> pp_print_string fmt "default(shared)"
  | Ast.Cdefault_none -> pp_print_string fmt "default(none)"
  | Ast.Cschedule (k, None) -> fprintf fmt "schedule(%s)" (sched_str k)
  | Ast.Cschedule (k, Some e) -> fprintf fmt "schedule(%s, %a)" (sched_str k) pp_expr e
  | Ast.Cdist_schedule (k, None) -> fprintf fmt "dist_schedule(%s)" (sched_str k)
  | Ast.Cdist_schedule (k, Some e) -> fprintf fmt "dist_schedule(%s, %a)" (sched_str k) pp_expr e
  | Ast.Ccollapse n -> fprintf fmt "collapse(%d)" n
  | Ast.Creduction (op, xs) -> fprintf fmt "reduction(%s: %a)" (red_op_str op) pp_strings xs
  | Ast.Cif e -> fprintf fmt "if(%a)" pp_expr e
  | Ast.Cdevice e -> fprintf fmt "device(%a)" pp_expr e
  | Ast.Cnowait -> pp_print_string fmt "nowait"
  | Ast.Cupdate_to items -> fprintf fmt "to(%a)" pp_items items
  | Ast.Cupdate_from items -> fprintf fmt "from(%a)" pp_items items

let construct_str = function
  | Ast.C_target -> "target"
  | Ast.C_teams -> "teams"
  | Ast.C_distribute -> "distribute"
  | Ast.C_parallel -> "parallel"
  | Ast.C_for -> "for"
  | Ast.C_sections -> "sections"
  | Ast.C_section -> "section"
  | Ast.C_single -> "single"
  | Ast.C_master -> "master"
  | Ast.C_critical None -> "critical"
  | Ast.C_critical (Some n) -> "critical(" ^ n ^ ")"
  | Ast.C_barrier -> "barrier"
  | Ast.C_taskwait -> "taskwait"
  | Ast.C_atomic -> "atomic"
  | Ast.C_target_data -> "target data"
  | Ast.C_target_enter_data -> "target enter data"
  | Ast.C_target_exit_data -> "target exit data"
  | Ast.C_target_update -> "target update"
  | Ast.C_declare_target -> "declare target"
  | Ast.C_end_declare_target -> "end declare target"

let pp_directive fmt (d : Ast.directive) =
  fprintf fmt "#pragma omp %s"
    (String.concat " " (List.map construct_str d.dir_constructs));
  List.iter (fun c -> fprintf fmt " %a" pp_clause c) d.dir_clauses

(* ---------------------------------------------------------------- *)
(* Statements                                                         *)
(* ---------------------------------------------------------------- *)

let rec pp_stmt fmt (s : Ast.stmt) =
  match s with
  | Ast.Sexpr e -> fprintf fmt "@[<h>%a;@]" pp_expr e
  | Ast.Sdecl ds ->
    pp_print_list ~pp_sep:pp_print_cut (fun fmt d -> fprintf fmt "@[<h>%a;@]" pp_decl d) fmt ds
  | Ast.Sblock ss ->
    fprintf fmt "{@;<0 2>@[<v>%a@]@,}" (pp_print_list ~pp_sep:pp_print_cut pp_stmt) ss
  | Ast.Sif (c, t, None) -> fprintf fmt "@[<v>if (%a)@,%a@]" pp_expr c pp_substmt t
  | Ast.Sif (c, t, Some e) ->
    fprintf fmt "@[<v>if (%a)@,%a@,else@,%a@]" pp_expr c pp_substmt t pp_substmt e
  | Ast.Swhile (c, b) -> fprintf fmt "@[<v>while (%a)@,%a@]" pp_expr c pp_substmt b
  | Ast.Sdo (b, c) -> fprintf fmt "@[<v>do@,%a@,while (%a);@]" pp_substmt b pp_expr c
  | Ast.Sfor (init, cond, update, b) ->
    let pp_init fmt = function
      | Some (Ast.Sexpr e) -> pp_expr fmt e
      | Some (Ast.Sdecl ds) -> pp_decl_group fmt ds
      | Some _ | None -> ()
    in
    fprintf fmt "@[<v>for (%a; %a; %a)@,%a@]"
      pp_init init
      (pp_print_option pp_expr) cond
      (pp_print_option pp_expr) update
      pp_substmt b
  | Ast.Sreturn None -> pp_print_string fmt "return;"
  | Ast.Sreturn (Some e) -> fprintf fmt "return %a;" pp_expr e
  | Ast.Sbreak -> pp_print_string fmt "break;"
  | Ast.Scontinue -> pp_print_string fmt "continue;"
  | Ast.Snop -> pp_print_string fmt ";"
  | Ast.Spragma (Ast.Omp d, body) ->
    fprintf fmt "@[<v>%a%a@]" pp_directive d
      (fun fmt -> function None -> () | Some b -> fprintf fmt "@,%a" pp_substmt b)
      body
  | Ast.Spragma (Ast.Raw toks, body) ->
    fprintf fmt "@[<v>#pragma %s%a@]"
      (String.concat " " (List.map Token.to_source toks))
      (fun fmt -> function None -> () | Some b -> fprintf fmt "@,%a" pp_substmt b)
      body

and pp_substmt fmt s =
  (* Sub-statements of if/while/for: blocks print as-is, others indented. *)
  match s with
  | Ast.Sblock _ -> pp_stmt fmt s
  | _ -> fprintf fmt "@;<0 2>@[<v>%a@]" pp_stmt s

let pp_fundef ?(cuda_global = false) fmt (f : Ast.fundef) =
  let params =
    match f.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun (n, ty) -> Cty.to_c_string ~name:n ty) ps)
  in
  let qual = if cuda_global then "__global__ " else if f.f_static then "static " else "" in
  fprintf fmt "@[<v>%s%s(%s)@,%a@]" qual
    (Cty.to_c_string ~name:f.f_name f.f_ret)
    params pp_stmt f.f_body

let pp_global fmt (g : Ast.global) =
  match g with
  | Ast.Gfun f -> pp_fundef fmt f
  | Ast.Gfundecl (name, ret, params) ->
    let params =
      match params with
      | [] -> "void"
      | ps -> String.concat ", " (List.map (fun (n, ty) -> Cty.to_c_string ~name:n ty) ps)
    in
    fprintf fmt "%s(%s);" (Cty.to_c_string ~name ret) params
  | Ast.Gvar (d, _) -> fprintf fmt "%a;" pp_decl d
  | Ast.Gstruct (name, fields) ->
    fprintf fmt "@[<v>struct %s {@;<0 2>@[<v>%a@]@,};@]" name
      (pp_print_list ~pp_sep:pp_print_cut (fun fmt (n, ty) ->
           fprintf fmt "%s;" (Cty.to_c_string ~name:n ty)))
      fields
  | Ast.Gpragma (Ast.Omp d) -> pp_directive fmt d
  | Ast.Gpragma (Ast.Raw toks) ->
    fprintf fmt "#pragma %s" (String.concat " " (List.map Token.to_source toks))

let pp_program fmt (p : Ast.program) =
  fprintf fmt "@[<v>%a@]@." (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "@,@,") pp_global) p

let program_to_string p = asprintf "%a" pp_program p

let stmt_to_string s = asprintf "@[<v>%a@]" pp_stmt s

let expr_to_string e = asprintf "%a" pp_expr e
