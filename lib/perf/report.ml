(* Result tables for the benchmark harness: per-figure series in the
   shape the paper plots them (problem size on the x-axis, one line per
   implementation), printed both as aligned text and as CSV. *)

type series = { s_label : string; s_points : (int * float) list (* size, seconds *) }

type figure = {
  f_id : string; (* e.g. "fig4e" *)
  f_title : string; (* e.g. "gemm kernel" *)
  f_series : series list;
  f_notes : string list;
}

let find_point series size = List.assoc_opt size series.s_points

let sizes_of figure =
  List.concat_map (fun s -> List.map fst s.s_points) figure.f_series
  |> List.sort_uniq compare

let print_figure ?(oc = stdout) (f : figure) : unit =
  let pr fmt = Printf.fprintf oc fmt in
  pr "\n=== %s: %s ===\n" f.f_id f.f_title;
  let sizes = sizes_of f in
  pr "%-10s" "size";
  List.iter (fun s -> pr "%14s" s.s_label) f.f_series;
  if List.length f.f_series = 2 then pr "%10s" "ratio";
  pr "\n";
  List.iter
    (fun size ->
      pr "%-10d" size;
      List.iter
        (fun s ->
          match find_point s size with
          | Some t -> pr "%14.4f" t
          | None -> pr "%14s" "-")
        f.f_series;
      (match f.f_series with
      | [ a; b ] -> (
        match (find_point a size, find_point b size) with
        | Some ta, Some tb when ta > 0.0 -> pr "%10.3f" (tb /. ta)
        | _ -> pr "%10s" "-")
      | _ -> ());
      pr "\n")
    sizes;
  List.iter (fun n -> pr "  note: %s\n" n) f.f_notes

let print_csv ?(oc = stdout) (f : figure) : unit =
  let pr fmt = Printf.fprintf oc fmt in
  pr "# %s,%s\n" f.f_id f.f_title;
  pr "size%s\n" (String.concat "" (List.map (fun s -> "," ^ s.s_label) f.f_series));
  List.iter
    (fun size ->
      pr "%d" size;
      List.iter
        (fun s ->
          match find_point s size with
          | Some t -> pr ",%.6f" t
          | None -> pr ",")
        f.f_series;
      pr "\n")
    (sizes_of f)

(* Human-readable roll-up of a trace: completed spans grouped by
   (category, name) with count / total / mean / max, then instant and
   counter events grouped the same way.  This is the `-v` companion to
   the Chrome JSON export. *)
let print_trace_summary ?(oc = stdout) (t : Trace.t) : unit =
  let pr fmt = Printf.fprintf oc fmt in
  let groups : (string * string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (sp : Trace.span) ->
      let key = (sp.Trace.sp_cat, sp.Trace.sp_name) in
      match Hashtbl.find_opt groups key with
      | Some durs -> durs := sp.Trace.sp_dur_ns :: !durs
      | None -> Hashtbl.add groups key (ref [ sp.Trace.sp_dur_ns ]))
    (Trace.spans t);
  let rows =
    Hashtbl.fold (fun key durs acc -> (key, !durs) :: acc) groups []
    |> List.sort (fun ((c1, n1), _) ((c2, n2), _) -> compare (c1, n1) (c2, n2))
  in
  pr "\n=== trace summary (%d events, %d dropped) ===\n" (Trace.length t) (Trace.dropped t);
  if rows <> [] then (
    pr "%-14s %-26s %8s %14s %14s %14s\n" "category" "span" "count" "total(us)" "mean(us)" "max(us)";
    List.iter
      (fun ((cat, name), durs) ->
        let n = List.length durs in
        let total = List.fold_left ( +. ) 0.0 durs in
        let mx = List.fold_left Float.max 0.0 durs in
        pr "%-14s %-26s %8d %14.3f %14.3f %14.3f\n" cat name n (total /. 1000.0)
          (total /. float_of_int n /. 1000.0)
          (mx /. 1000.0))
      rows);
  let points : (string * string * Trace.kind, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.ev_kind with
      | Trace.Instant | Trace.Counter ->
        let key = (ev.Trace.ev_cat, ev.Trace.ev_name, ev.Trace.ev_kind) in
        Hashtbl.replace points key (1 + Option.value ~default:0 (Hashtbl.find_opt points key))
      | Trace.Begin | Trace.End | Trace.Complete -> () (* Complete already counted via spans *))
    (Trace.events t);
  let point_rows =
    Hashtbl.fold (fun key n acc -> (key, n) :: acc) points []
    |> List.sort (fun ((c1, n1, _), _) ((c2, n2, _), _) -> compare (c1, n1) (c2, n2))
  in
  if point_rows <> [] then (
    pr "%-14s %-26s %8s\n" "category" "event" "count";
    List.iter
      (fun ((cat, name, kind), n) ->
        let tag = match kind with Trace.Counter -> name ^ " [C]" | _ -> name in
        pr "%-14s %-26s %8d\n" cat tag n)
      point_rows)

(* Shape checks used by EXPERIMENTS.md: is the second series within
   [tolerance] (relative) of the first at every size? *)
let max_relative_gap (f : figure) : (int * float) option =
  match f.f_series with
  | [ a; b ] ->
    List.fold_left
      (fun acc size ->
        match (find_point a size, find_point b size) with
        | Some ta, Some tb when ta > 0.0 ->
          let gap = Float.abs (tb -. ta) /. ta in
          (match acc with
          | Some (_, g) when g >= gap -> acc
          | _ -> Some (size, gap))
        | _ -> acc)
      None (sizes_of f)
  | _ -> None
