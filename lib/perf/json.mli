(** Minimal self-contained JSON value type, printer and parser — just
    enough for the Chrome-trace exporter and the trace-schema smoke
    check (the toolchain ships no JSON library). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization with proper string escaping. *)
val to_string : t -> string

(** Parse a complete JSON document; trailing garbage is an error. *)
val of_string : string -> (t, string) result

(** Object field lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option

val to_string_opt : t -> string option

val to_number_opt : t -> float option

val to_bool_opt : t -> bool option
