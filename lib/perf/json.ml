(* Minimal JSON support for the trace exporters and the trace-schema
   smoke check.  The toolchain ships no JSON library, and the subset the
   Chrome trace format needs is small, so we keep a self-contained
   value type, printer and recursive-descent parser here. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Printing                                                           *)
(* ---------------------------------------------------------------- *)

let escape_string (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write (buf : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        write buf item)
      fields;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Parsing                                                            *)
(* ---------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let expect_word c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then (
    c.pos <- c.pos + n;
    v)
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_lit c : string =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code = try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape" in
        c.pos <- c.pos + 4;
        (* good enough for trace data: encode as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then (
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
        else (
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c : float =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then fail c "expected number";
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with Some f -> f | None -> fail c "bad number"

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string_lit c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some 't' -> expect_word c "true" (Bool true)
  | Some 'f' -> expect_word c "false" (Bool false)
  | Some 'n' -> expect_word c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

and parse_obj c : t =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then (
    advance c;
    Obj [])
  else
    let rec fields acc =
      skip_ws c;
      let key = parse_string_lit c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        fields ((key, v) :: acc)
      | Some '}' ->
        advance c;
        Obj (List.rev ((key, v) :: acc))
      | _ -> fail c "expected ',' or '}'"
    in
    fields []

and parse_list c : t =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then (
    advance c;
    List [])
  else
    let rec items acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        items (v :: acc)
      | Some ']' ->
        advance c;
        List (List.rev (v :: acc))
      | _ -> fail c "expected ',' or ']'"
    in
    items []

let of_string (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------------------------------------------------------- *)
(* Accessors                                                          *)
(* ---------------------------------------------------------------- *)

let member (key : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_list_opt (v : t) : t list option = match v with List items -> Some items | _ -> None

let to_string_opt (v : t) : string option = match v with Str s -> Some s | _ -> None

let to_number_opt (v : t) : float option = match v with Num f -> Some f | _ -> None

let to_bool_opt (v : t) : bool option = match v with Bool b -> Some b | _ -> None
