(* Export a Trace ring as Chrome trace-event JSON ("JSON Object
   Format": an object with a "traceEvents" array), loadable in
   chrome://tracing and Perfetto.  Timestamps are microseconds; the sim
   clock is nanoseconds, hence the /1000. *)

let ph_of_kind (k : Trace.kind) : string =
  match k with
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter -> "C"
  | Trace.Complete -> "X"

let json_of_value (v : Trace.value) : Json.t =
  match v with
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_of_event (ev : Trace.event) : Json.t =
  let base =
    [
      ("name", Json.Str ev.Trace.ev_name);
      ("cat", Json.Str ev.Trace.ev_cat);
      ("ph", Json.Str (ph_of_kind ev.Trace.ev_kind));
      ("ts", Json.Num (ev.Trace.ev_ts_ns /. 1000.0));
      ("pid", Json.Num 0.0);
      ("tid", Json.Num (float_of_int ev.Trace.ev_tid));
    ]
  in
  let scope =
    match ev.Trace.ev_kind with
    | Trace.Instant -> [ ("s", Json.Str "g") ]
    | Trace.Complete -> [ ("dur", Json.Num (ev.Trace.ev_dur_ns /. 1000.0)) ]
    | _ -> []
  in
  let args =
    match ev.Trace.ev_args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) kvs)) ]
  in
  Json.Obj (base @ scope @ args)

let to_json (t : Trace.t) : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (Trace.events t)));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.Str "ompi-jetson-sim");
            ("droppedEvents", Json.Num (float_of_int (Trace.dropped t)));
          ] );
    ]

let to_string (t : Trace.t) : string = Json.to_string (to_json t)

let write_file (path : string) (t : Trace.t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
