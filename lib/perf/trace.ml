(* Launch-phase tracing (paper §4.2.1 made observable): a bounded ring
   of typed events stamped with the simulated clock.  The host runtime
   and the device driver emit span begin/end pairs around the phases the
   paper names (load, parameter preparation, launch), instants for
   one-shot facts (JIT compile, cache hit, allocations) and counter
   samples for per-launch dynamic statistics.  The ring never grows, so
   tracing can stay on for a whole PolyBench sweep; when it wraps, the
   oldest events are dropped and accounted in [dropped]. *)

open Machine

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
[@@deriving show { with_path = false }, eq]

type kind = Begin | End | Instant | Counter | Complete
[@@deriving show { with_path = false }, eq]

type event = {
  ev_seq : int; (* monotone emission index, survives ring wraps *)
  ev_ts_ns : float; (* simulated-clock timestamp *)
  ev_kind : kind;
  ev_cat : string; (* e.g. "launch", "transfer", "jit", "kernel", "async" *)
  ev_name : string;
  ev_args : (string * value) list;
  ev_dur_ns : float; (* Complete events only; 0 otherwise *)
  ev_tid : int; (* timeline id: 0 = host, 1+N = device stream N *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  clock : Simclock.t;
  capacity : int;
  ring : event array; (* slot i valid iff i < min next_seq capacity *)
  mutable next_seq : int; (* total events ever emitted *)
}

let dummy_event =
  {
    ev_seq = -1;
    ev_ts_ns = 0.0;
    ev_kind = Instant;
    ev_cat = "";
    ev_name = "";
    ev_args = [];
    ev_dur_ns = 0.0;
    ev_tid = 0;
  }

let default_capacity = 65536

let create ?(capacity = default_capacity) (clock : Simclock.t) : t =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { clock; capacity; ring = Array.make capacity dummy_event; next_seq = 0 }

let length t = min t.next_seq t.capacity

let dropped t = max 0 (t.next_seq - t.capacity)

let clear t = t.next_seq <- 0

let now_ns t = Simclock.now_ns t.clock

let push t (ev : event) : unit =
  t.ring.(t.next_seq mod t.capacity) <- ev;
  t.next_seq <- t.next_seq + 1

let emit t (kind : kind) ~(cat : string) (name : string) (args : (string * value) list) : unit =
  push t
    {
      ev_seq = t.next_seq;
      ev_ts_ns = now_ns t;
      ev_kind = kind;
      ev_cat = cat;
      ev_name = name;
      ev_args = args;
      ev_dur_ns = 0.0;
      ev_tid = 0;
    }

(* Retained events, oldest first. *)
let events t : event list =
  let n = length t in
  let first = t.next_seq - n in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

let instant t ?(args = []) ~cat name = emit t Instant ~cat name args

let counter t ?(args = []) ~cat name = emit t Counter ~cat name args

let begin_span t ?(args = []) ~cat name = emit t Begin ~cat name args

let end_span t ?(args = []) ~cat name = emit t End ~cat name args

(* Complete ("X") event with an explicit start/duration/timeline, for
   work whose wall-clock interval is known only at enqueue time (async
   stream operations).  Unlike [emit], the timestamp is caller-supplied:
   the interval may lie ahead of the current clock. *)
let complete t ?(args = []) ?(tid = 0) ~cat ~(ts_ns : float) ~(dur_ns : float) name : unit =
  if dur_ns < 0.0 then invalid_arg "Trace.complete: negative duration";
  push t
    {
      ev_seq = t.next_seq;
      ev_ts_ns = ts_ns;
      ev_kind = Complete;
      ev_cat = cat;
      ev_name = name;
      ev_args = args;
      ev_dur_ns = dur_ns;
      ev_tid = tid;
    }

(* Span around [f]; the end event repeats the name so B/E pairs can be
   matched even when nested. *)
let with_span t ?(args = []) ~cat name (f : unit -> 'a) : 'a =
  begin_span t ~args ~cat name;
  match f () with
  | result ->
    end_span t ~cat name;
    result
  | exception e ->
    end_span t ~args:[ ("error", Str (Printexc.to_string e)) ] ~cat name;
    raise e

(* ---------------------------------------------------------------- *)
(* Derived views                                                      *)
(* ---------------------------------------------------------------- *)

type span = {
  sp_cat : string;
  sp_name : string;
  sp_ts_ns : float;
  sp_dur_ns : float;
  sp_args : (string * value) list; (* begin-event args *)
}

(* Pair begin/end events into completed spans.  Emission is
   single-threaded, so a stack suffices; begins whose ends were dropped
   by the ring (or vice versa) are skipped. *)
let spans t : span list =
  let stack = ref [] in
  let out = ref [] in
  List.iter
    (fun ev ->
      match ev.ev_kind with
      | Begin -> stack := ev :: !stack
      | End -> (
        match !stack with
        | b :: rest when b.ev_cat = ev.ev_cat && b.ev_name = ev.ev_name ->
          stack := rest;
          out :=
            {
              sp_cat = b.ev_cat;
              sp_name = b.ev_name;
              sp_ts_ns = b.ev_ts_ns;
              sp_dur_ns = ev.ev_ts_ns -. b.ev_ts_ns;
              sp_args = b.ev_args;
            }
            :: !out
        | _ -> () (* unmatched end: its begin fell off the ring *))
      | Complete ->
        out :=
          {
            sp_cat = ev.ev_cat;
            sp_name = ev.ev_name;
            sp_ts_ns = ev.ev_ts_ns;
            sp_dur_ns = ev.ev_dur_ns;
            sp_args = ev.ev_args;
          }
          :: !out
      | Instant | Counter -> ())
    (events t);
  List.rev !out

let find_events t ?cat ?name () : event list =
  List.filter
    (fun ev ->
      (match cat with Some c -> ev.ev_cat = c | None -> true)
      && match name with Some n -> ev.ev_name = n | None -> true)
    (events t)

let count_events t ?cat ?name () = List.length (find_events t ?cat ?name ())

let int_arg (ev : event) (key : string) : int option =
  match List.assoc_opt key ev.ev_args with
  | Some (Int i) -> Some i
  | Some (Float f) -> Some (int_of_float f)
  | _ -> None

let bool_arg (ev : event) (key : string) : bool option =
  match List.assoc_opt key ev.ev_args with Some (Bool b) -> Some b | _ -> None

let str_arg (ev : event) (key : string) : string option =
  match List.assoc_opt key ev.ev_args with Some (Str s) -> Some s | _ -> None
