(** Launch-phase tracing: a bounded ring of typed events stamped with
    the simulated clock.  The host runtime and device driver emit span
    begin/end pairs around the paper's three launch phases (load,
    parameter preparation, launch), instants for one-shot facts (JIT
    compile, cache hit, allocations, transfers) and counter samples for
    per-launch dynamic statistics.  Export via {!Chrome_trace} or
    {!Report.print_trace_summary}. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val pp_value : Format.formatter -> value -> unit

val show_value : value -> string

val equal_value : value -> value -> bool

type kind = Begin | End | Instant | Counter | Complete

val pp_kind : Format.formatter -> kind -> unit

val show_kind : kind -> string

val equal_kind : kind -> kind -> bool

type event = {
  ev_seq : int;  (** monotone emission index, survives ring wraps *)
  ev_ts_ns : float;  (** simulated-clock timestamp *)
  ev_kind : kind;
  ev_cat : string;  (** e.g. "launch", "transfer", "jit", "kernel", "async" *)
  ev_name : string;
  ev_args : (string * value) list;
  ev_dur_ns : float;  (** Complete events only; 0 otherwise *)
  ev_tid : int;  (** timeline id: 0 = host, 1+N = device stream N *)
}

val pp_event : Format.formatter -> event -> unit

val show_event : event -> string

val equal_event : event -> event -> bool

type t

val default_capacity : int

(** Fixed-capacity ring; when full, the oldest events are overwritten
    and counted by {!dropped}.  @raise Invalid_argument on capacity <= 0 *)
val create : ?capacity:int -> Machine.Simclock.t -> t

(** Number of retained events. *)
val length : t -> int

(** Events lost to ring wrap-around. *)
val dropped : t -> int

val clear : t -> unit

val instant : t -> ?args:(string * value) list -> cat:string -> string -> unit

val counter : t -> ?args:(string * value) list -> cat:string -> string -> unit

val begin_span : t -> ?args:(string * value) list -> cat:string -> string -> unit

val end_span : t -> ?args:(string * value) list -> cat:string -> string -> unit

(** Complete ("X") event with an explicit start, duration and timeline
    id, for work whose interval is known only at enqueue time (async
    stream operations); [ts_ns] may lie ahead of the current clock.
    @raise Invalid_argument on negative [dur_ns] *)
val complete :
  t ->
  ?args:(string * value) list ->
  ?tid:int ->
  cat:string ->
  ts_ns:float ->
  dur_ns:float ->
  string ->
  unit

(** [with_span t ~cat name f] brackets [f] with begin/end events; on
    exception the end event carries an ["error"] arg and the exception
    is re-raised. *)
val with_span : t -> ?args:(string * value) list -> cat:string -> string -> (unit -> 'a) -> 'a

(** Retained events, oldest first. *)
val events : t -> event list

type span = {
  sp_cat : string;
  sp_name : string;
  sp_ts_ns : float;
  sp_dur_ns : float;
  sp_args : (string * value) list;  (** begin-event args *)
}

(** Completed begin/end pairs (in completion order) plus Complete
    events (in emission order).  Pairs whose begin or end fell off the
    ring are skipped. *)
val spans : t -> span list

(** Retained events filtered by category and/or name, oldest first. *)
val find_events : t -> ?cat:string -> ?name:string -> unit -> event list

val count_events : t -> ?cat:string -> ?name:string -> unit -> int

val int_arg : event -> string -> int option

val bool_arg : event -> string -> bool option

val str_arg : event -> string -> string option
