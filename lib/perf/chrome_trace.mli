(** Export a {!Trace} ring as Chrome trace-event JSON (the "JSON Object
    Format": an object with a ["traceEvents"] array), loadable in
    chrome://tracing and Perfetto.  Timestamps are microseconds. *)

val json_of_event : Trace.event -> Json.t

val to_json : Trace.t -> Json.t

val to_string : Trace.t -> string

val write_file : string -> Trace.t -> unit
