(** Result tables for the benchmark harness: per-figure series in the
    shape the paper plots them (problem size on the x-axis, one line per
    implementation). *)

type series = { s_label : string; s_points : (int * float) list  (** size, seconds *) }

type figure = {
  f_id : string;  (** e.g. "fig4e" *)
  f_title : string;
  f_series : series list;
  f_notes : string list;
}

val find_point : series -> int -> float option

val sizes_of : figure -> int list

(** Aligned text table; with exactly two series an OMPi/CUDA ratio
    column is appended. *)
val print_figure : ?oc:out_channel -> figure -> unit

val print_csv : ?oc:out_channel -> figure -> unit

(** Largest relative gap between the first two series, with the size at
    which it occurs. *)
val max_relative_gap : figure -> (int * float) option

(** Human-readable roll-up of a trace: completed spans grouped by
    (category, name) with count / total / mean / max durations, then
    instant/counter event counts. *)
val print_trace_summary : ?oc:out_channel -> Trace.t -> unit
