(* Public facade of the OpenMP offloading infrastructure for the
   (simulated) Jetson Nano platform.

   Typical use:

   {[
     let result = Ompi.compile_and_run ~name:"saxpy" source in
     print_string result.Ompi.run_output
   ]}

   which performs the full paper pipeline: OMPi-style source-to-source
   translation (host C + one CUDA kernel file per target region), nvcc
   "compilation" of the kernel files (PTX or CUBIN mode), and execution
   of the host program on a simulated quad-core A57 host driving a
   simulated 128-core Maxwell GPU. *)

open Gpusim

type config = {
  binary_mode : Nvcc.binary_mode; (* CUBIN is OMPi's default (§3.3) *)
  spec : Spec.t;
  faults : Hostrt.Faults.rule list; (* fault-injection plan; [] = off *)
  fault_seed : int; (* seed for probabilistic fault rules *)
  max_retries : int option; (* retry-policy override; None = default *)
  streams : int; (* stream-pool size for `target ... nowait` regions *)
  zerocopy : bool; (* pin-and-share host memory instead of copying (unified DRAM) *)
  elide : bool; (* park released buffers and skip provably redundant transfers *)
  mem_policy : Hostrt.Mempolicy.sel option;
  (* per-buffer memory-mode policy (--mem-policy); None keeps the
     zerocopy/elide flags above (the legacy forced knobs) *)
  jit : bool; (* closure-compile kernels at module load (--no-jit disables) *)
  devices : int; (* simultaneously-live device instances (--devices N) *)
  specs : Spec.t list; (* per-device spec overrides for heterogeneous farms *)
}

let default_config =
  {
    binary_mode = Nvcc.Cubin;
    spec = Spec.jetson_nano_2gb;
    faults = [];
    fault_seed = 42;
    max_retries = None;
    streams = Hostrt.Async.default_streams;
    zerocopy = false;
    elide = false;
    mem_policy = None;
    jit = true;
    devices = 1;
    specs = [];
  }

type compiled = Translator.Pipeline.compiled = {
  c_source_name : string;
  c_host : Minic.Ast.program;
  c_kernels : Translator.Kernelgen.kernel list;
  c_host_text : string;
  c_kernel_texts : (string * string) list;
}

(* Source-to-source compilation only (what `ompicc` does). *)
let compile ?(config = default_config) ~(name : string) (source : string) : compiled =
  ignore config;
  Translator.Pipeline.compile_source ~name source

(* A ready-to-run instance: translated program + runtime with all kernel
   files compiled and registered. *)
type instance = {
  i_compiled : compiled;
  i_rt : Hostrt.Rt.t;
  i_artifacts : Nvcc.artifact list;
  i_trace : Perf.Trace.t option;
}

let load ?(config = default_config) ?(trace = false) (compiled : compiled) : instance =
  let rt =
    Hostrt.Rt.create ~binary_mode:config.binary_mode ~spec:config.spec ~streams:config.streams
      ~devices:config.devices ~specs:config.specs ()
  in
  let tr = if trace then Some (Perf.Trace.create rt.Hostrt.Rt.clock) else None in
  Hostrt.Rt.set_trace rt tr;
  if config.faults <> [] then
    Hostrt.Rt.set_faults rt (Some (Hostrt.Faults.create ~seed:config.fault_seed config.faults));
  if config.zerocopy then Hostrt.Rt.set_zerocopy rt true;
  if config.elide then Hostrt.Rt.set_elide rt true;
  Option.iter (Hostrt.Rt.set_mem_mode rt) config.mem_policy;
  if not config.jit then Hostrt.Rt.set_jit rt false;
  (match config.max_retries with
  | Some n ->
    Hostrt.Rt.set_fault_policy rt
      { Hostrt.Resilience.default_policy with Hostrt.Resilience.rp_max_retries = n }
  | None -> ());
  let artifacts =
    List.map
      (fun (k : Translator.Kernelgen.kernel) ->
        let artifact =
          Nvcc.compile ?trace:tr ~mode:config.binary_mode ~name:k.Translator.Kernelgen.k_entry
            k.Translator.Kernelgen.k_program
        in
        (* every device gets its own copy of the kernel file, so sharded
           sub-launches (and explicit device(n) regions) find it locally *)
        for d = 0 to Hostrt.Rt.num_devices rt - 1 do
          Hostrt.Rt.register_kernel rt ~dev:d artifact
        done;
        artifact)
      compiled.c_kernels
  in
  { i_compiled = compiled; i_rt = rt; i_artifacts = artifacts; i_trace = tr }

type run_result = {
  run_output : string;
  run_exit : int;
  run_time_s : float; (* simulated seconds *)
  run_kernel_launches : int;
}

let run (instance : instance) ?(entry = "main") () : run_result =
  let r = Hostrt.Hostexec.run instance.i_rt instance.i_compiled.c_host ~entry () in
  let launches =
    Array.fold_left
      (fun acc (d : Hostrt.Rt.device) -> acc + d.Hostrt.Rt.dev_driver.Driver.kernels_launched)
      0 instance.i_rt.Hostrt.Rt.devices
  in
  {
    run_output = r.Hostrt.Hostexec.rr_output;
    run_exit = r.Hostrt.Hostexec.rr_exit;
    run_time_s = r.Hostrt.Hostexec.rr_time_s;
    run_kernel_launches = launches;
  }

let compile_and_run ?(config = default_config) ?(entry = "main") ~(name : string) (source : string)
    : run_result =
  let compiled = compile ~config ~name source in
  let instance = load ~config compiled in
  run instance ~entry ()

(* Convenience: emit all translated outputs to a directory, the way
   ompicc leaves the host file and the kernel files next to each other. *)
let emit_files (compiled : compiled) ~(dir : string) : string list =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let host_path = Filename.concat dir (compiled.c_source_name ^ "_host.c") in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    path
  in
  write host_path compiled.c_host_text
  :: List.map
       (fun (kname, text) -> write (Filename.concat dir (kname ^ ".cu")) text)
       compiled.c_kernel_texts
