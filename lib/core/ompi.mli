(** Public facade of the OpenMP offloading infrastructure for the
    (simulated) Jetson Nano platform.

    Typical use:
    {[
      let result = Ompi.compile_and_run ~name:"saxpy" source in
      print_string result.Ompi.run_output
    ]}

    which performs the full paper pipeline: OMPi-style source-to-source
    translation (host C + one CUDA kernel file per target region), nvcc
    "compilation" of the kernel files (PTX or CUBIN mode), and execution
    of the host program on a simulated quad-core A57 host driving a
    simulated 128-core Maxwell GPU. *)

open Gpusim

type config = {
  binary_mode : Nvcc.binary_mode;  (** CUBIN is OMPi's default (paper 3.3) *)
  spec : Spec.t;
  faults : Hostrt.Faults.rule list;
      (** deterministic fault-injection plan armed at [load]; [[]] = off *)
  fault_seed : int;  (** seed for probabilistic fault rules *)
  max_retries : int option;
      (** override the retry policy's bounded-retry count; [None] keeps
          {!Hostrt.Resilience.default_policy} *)
  streams : int;
      (** stream-pool size used by [target ... nowait] regions (default
          {!Hostrt.Async.default_streams}) *)
  zerocopy : bool;
      (** map via pinned host memory instead of device buffers — the
          Nano's CPU and GPU share DRAM (see
          {!Hostrt.Dataenv.set_zerocopy}); default off *)
  elide : bool;
      (** park released device buffers and skip provably redundant
          transfers (see {!Hostrt.Dataenv.set_elide}); default off *)
  mem_policy : Hostrt.Mempolicy.sel option;
      (** per-buffer memory-mode policy (the [--mem-policy] CLI knob):
          [Some Auto] classifies each buffer copy/elide/zero-copy from
          its observed history (see {!Hostrt.Mempolicy}), [Some (Forced
          m)] forces one mode everywhere; [None] (default) keeps the
          [zerocopy]/[elide] flags above *)
  jit : bool;
      (** closure-compile kernel ASTs at module load (see
          {!Cinterp.Jit}); default on — [--no-jit] falls back to the
          reference tree-walking interpreter *)
  devices : int;
      (** number of simultaneously-live device instances; with more than
          one, default-device [distribute] launches shard across the
          farm (see {!Hostrt.Multidev}); default 1 *)
  specs : Spec.t list;
      (** per-device spec overrides (position [i] configures device
          [i]); positions beyond the list fall back to [spec] —
          heterogeneous farms get weight-proportional shards *)
}

val default_config : config

(** Result of source-to-source compilation (what [ompicc] emits). *)
type compiled = Translator.Pipeline.compiled = {
  c_source_name : string;
  c_host : Minic.Ast.program;  (** translated host program (ort_* calls) *)
  c_kernels : Translator.Kernelgen.kernel list;
  c_host_text : string;
  c_kernel_texts : (string * string) list;  (** kernel file name -> CUDA C *)
}

(** Parse, validate, typecheck and translate.  Raises
    {!Translator.Pipeline.Translate_error} (or the front end's errors)
    on invalid input. *)
val compile : ?config:config -> name:string -> string -> compiled

(** A ready-to-run instance: translated program plus a runtime with all
    kernel files compiled and registered. *)
type instance = {
  i_compiled : compiled;
  i_rt : Hostrt.Rt.t;
  i_artifacts : Nvcc.artifact list;
  i_trace : Perf.Trace.t option;  (** present when loaded with [~trace:true] *)
}

(** [load ?trace compiled] builds a runtime with all kernel files
    compiled and registered; [~trace:true] attaches a {!Perf.Trace}
    ring that records compilation, init, transfer and launch events. *)
val load : ?config:config -> ?trace:bool -> compiled -> instance

type run_result = {
  run_output : string;  (** everything the program printed *)
  run_exit : int;
  run_time_s : float;  (** simulated seconds *)
  run_kernel_launches : int;
}

val run : instance -> ?entry:string -> unit -> run_result

val compile_and_run : ?config:config -> ?entry:string -> name:string -> string -> run_result

(** Write the translated host file and the kernel [.cu] files into
    [dir], the artefact layout OMPi produces; returns the paths. *)
val emit_files : compiled -> dir:string -> string list
