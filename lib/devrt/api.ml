(* The cudadev device runtime library (paper §4.2.2), exposed to kernel
   code as interpreter builtins.  One [install] call per GPU thread wires
   the library to that thread's interpreter instance, closing over the
   SIMT block/thread state. *)

open Machine
open Gpusim

exception Devrt_error of string

let devrt_error fmt = Format.kasprintf (fun s -> raise (Devrt_error s)) fmt

(* Per-thread OpenMP execution context.  Defaults describe the combined
   target teams distribute parallel for mode, where every launched
   thread is a team member; the master/worker engine overrides them for
   the duration of a parallel region. *)
type omp_ctx = { mutable omp_id : int; mutable omp_num : int }

let int_arg = Value.to_int

let ret_int i = Value.of_int i

let ret_void = Value.VVoid

let store_int ctx addr_v (i : int) =
  let addr = Value.as_addr addr_v in
  Cinterp.Interp.store ctx addr Cty.Int (Value.of_int i)

let bad_args name = devrt_error "%s: bad argument list" name

(* Participants of the B1 barrier: the master thread plus all worker
   threads (block size minus the masked-out master warp). *)
let b1_participants (bs : Simt.block_state) =
  1 + (Simt.dim3_total bs.bs_block_dim - bs.bs_spec.Spec.warp_size)

let barrier_id_b1 = 1

let barrier_id_b2 = 2

let barrier_id_user = 3

(* ---------------------------------------------------------------- *)
(* Worksharing helpers                                                *)
(* ---------------------------------------------------------------- *)

let team_linear (bs : Simt.block_state) = bs.bs_block_lin

let num_teams (bs : Simt.block_state) = Simt.dim3_total bs.bs_grid_dim

let dyn_counter (bs : Simt.block_state) rid ~init =
  match Hashtbl.find_opt bs.bs_dyn_counters rid with
  | Some r -> r
  | None ->
    let r = ref init in
    Hashtbl.replace bs.bs_dyn_counters rid r;
    r

(* A dynamic/guided region's shared counter must not survive into a
   sequential re-entry of the same region: a nowait worksharing loop
   nested in a sequential loop never passes through ws_finish, so the
   counter would stay parked at range.hi and the re-entered loop would
   silently get zero iterations.  Each participant that drains the range
   (gets None) is counted here; once every team member has drained, the
   region's state is recycled so the next entry reinitializes it. *)
let dyn_drained (bs : Simt.block_state) rid nthr =
  let r =
    match Hashtbl.find_opt bs.bs_dyn_drained rid with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace bs.bs_dyn_drained rid r;
      r
  in
  incr r;
  if !r >= nthr then begin
    Hashtbl.remove bs.bs_dyn_drained rid;
    Hashtbl.remove bs.bs_dyn_counters rid
  end

let section_counter (bs : Simt.block_state) rid =
  match Hashtbl.find_opt bs.bs_section_counters rid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace bs.bs_section_counters rid r;
    r

(* End-of-worksharing bookkeeping: the last participant to reach the
   closing barrier clears the region's shared counters, making the
   region re-enterable (e.g. a worksharing loop nested in a sequential
   loop).  Runs before the bar.sync, so no participant can re-enter the
   region while state is being recycled. *)
let ws_finish (bs : Simt.block_state) rid nthr =
  let done_r =
    match Hashtbl.find_opt bs.bs_ws_done rid with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace bs.bs_ws_done rid r;
      r
  in
  incr done_r;
  if !done_r >= nthr then begin
    Hashtbl.remove bs.bs_ws_done rid;
    Hashtbl.remove bs.bs_dyn_counters rid;
    Hashtbl.remove bs.bs_dyn_drained rid;
    Hashtbl.remove bs.bs_section_counters rid
  end

(* ---------------------------------------------------------------- *)
(* Atomic read-modify-write on device memory                          *)
(* ---------------------------------------------------------------- *)

(* Threads are scheduled cooperatively, so a builtin body is atomic by
   construction; we still count the operation for the cost model. *)
let atomic_rmw ctx (bs : Simt.block_state) (ptr : Value.t) (f : Value.t -> Value.t) : Value.t =
  bs.bs_counters.Counters.atomics <- bs.bs_counters.Counters.atomics + 1;
  match ptr with
  | Value.VPtr (addr, ty) ->
    (if addr.Addr.space = Addr.Global then
       Counters.note_atomic bs.bs_counters ~off:addr.Addr.off ~len:(Cinterp.Interp.sizeof ctx ty));
    let old = Cinterp.Interp.load ctx addr ty in
    Cinterp.Interp.store ctx addr ty (f old);
    old
  | v -> devrt_error "atomic operation on non-pointer %s" (Value.show v)

(* ---------------------------------------------------------------- *)
(* Installation                                                       *)
(* ---------------------------------------------------------------- *)

let install (ctx : Cinterp.Interp.t) (bs : Simt.block_state) (ts : Simt.thread_state) : unit =
  let spec = bs.bs_spec in
  let block_threads = Simt.dim3_total bs.bs_block_dim in
  let omp = { omp_id = ts.ts_lin; omp_num = block_threads } in
  let reg name fn = Cinterp.Interp.register_builtin ctx name fn in

  (* -------- identity -------- *)
  reg "cudadev_thread_id" (fun _ _ -> ret_int ts.ts_lin);
  reg "cudadev_team_id" (fun _ _ -> ret_int (team_linear bs));
  reg "cudadev_num_teams" (fun _ _ -> ret_int (num_teams bs));
  reg "cudadev_num_threads" (fun _ _ -> ret_int block_threads);
  reg "omp_get_thread_num" (fun _ _ -> ret_int omp.omp_id);
  reg "omp_get_num_threads" (fun _ _ -> ret_int omp.omp_num);
  reg "omp_get_team_num" (fun _ _ -> ret_int (team_linear bs));
  reg "omp_get_num_teams" (fun _ _ -> ret_int (num_teams bs));
  reg "omp_is_initial_device" (fun _ _ -> ret_int 0);

  (* -------- master/worker scheme (§3.2) -------- *)
  reg "cudadev_in_masterwarp" (fun _ args ->
      match args with
      | [ thrid ] -> ret_int (if int_arg thrid < spec.Spec.warp_size then 1 else 0)
      | _ -> bad_args "cudadev_in_masterwarp");
  reg "cudadev_is_masterthr" (fun _ args ->
      match args with
      | [ thrid ] -> ret_int (if int_arg thrid = 0 then 1 else 0)
      | _ -> bad_args "cudadev_is_masterthr");
  reg "cudadev_register_parallel" (fun ctx args ->
      match args with
      | [ fnptr; vars; nthreads ] ->
        let fd = Cinterp.Interp.function_of_pointer ctx fnptr in
        let workers = block_threads - spec.Spec.warp_size in
        let requested = int_arg nthreads in
        let n = if requested <= 0 then workers else min requested workers in
        bs.bs_region <- Some { Simt.pr_fn = fd.Minic.Ast.f_name; pr_args = [ vars ]; pr_nthreads = n };
        Simt.bar_sync barrier_id_b1 (b1_participants bs); (* release workers *)
        Simt.bar_sync barrier_id_b1 (b1_participants bs); (* wait for completion *)
        bs.bs_region <- None;
        ret_void
      | _ -> bad_args "cudadev_register_parallel");
  reg "cudadev_workerfunc" (fun ctx args ->
      match args with
      | [ thrid ] ->
        let thrid = int_arg thrid in
        let wid = thrid - spec.Spec.warp_size in
        if wid < 0 then devrt_error "cudadev_workerfunc called from the master warp";
        let rec serve () =
          Simt.bar_sync barrier_id_b1 (b1_participants bs);
          if not bs.bs_target_done then begin
            (match bs.bs_region with
            | Some r when wid < r.Simt.pr_nthreads ->
              let saved_id = omp.omp_id and saved_num = omp.omp_num in
              omp.omp_id <- wid;
              omp.omp_num <- r.Simt.pr_nthreads;
              let fd =
                match Hashtbl.find_opt ctx.Cinterp.Interp.funcs r.Simt.pr_fn with
                | Some fd -> fd
                | None -> devrt_error "worker: unknown thread function '%s'" r.Simt.pr_fn
              in
              ignore (Cinterp.Interp.call_fundef ctx fd r.Simt.pr_args);
              omp.omp_id <- saved_id;
              omp.omp_num <- saved_num;
              Simt.bar_sync barrier_id_b2 r.Simt.pr_nthreads
            | Some _ | None -> ());
            Simt.bar_sync barrier_id_b1 (b1_participants bs);
            serve ()
          end
        in
        serve ();
        ret_void
      | _ -> bad_args "cudadev_workerfunc");
  reg "cudadev_exit_target" (fun _ args ->
      match args with
      | [] ->
        bs.bs_target_done <- true;
        Simt.bar_sync barrier_id_b1 (b1_participants bs);
        ret_void
      | _ -> bad_args "cudadev_exit_target");

  (* -------- shared-memory stack (§3.2) -------- *)
  reg "cudadev_push_shmem" (fun ctx args ->
      match args with
      | [ Value.VPtr (origin, ty); size ] ->
        let size = int_arg size in
        let mark = Mem.mark bs.bs_shared in
        let sh = Mem.push bs.bs_shared size in
        Mem.copy ~src:(ctx.Cinterp.Interp.resolve origin.Addr.space) ~src_off:origin.Addr.off
          ~dst:bs.bs_shared ~dst_off:sh.Addr.off ~len:size;
        Stack.push (sh, origin, size, mark) bs.bs_shmem_stack;
        Value.ptr ~ty sh
      | _ -> bad_args "cudadev_push_shmem");
  reg "cudadev_pop_shmem" (fun ctx args ->
      match args with
      | [ Value.VPtr (origin, _); size ] ->
        let size = int_arg size in
        (match Stack.pop_opt bs.bs_shmem_stack with
        | Some (sh, origin', size', mark) ->
          if not (Addr.equal origin origin') || size <> size' then
            devrt_error "cudadev_pop_shmem: mismatched push/pop pair";
          Mem.copy ~src:bs.bs_shared ~src_off:sh.Addr.off
            ~dst:(ctx.Cinterp.Interp.resolve origin.Addr.space) ~dst_off:origin.Addr.off ~len:size;
          Mem.release bs.bs_shared mark
        | None -> devrt_error "cudadev_pop_shmem: empty shared-memory stack");
        ret_void
      | _ -> bad_args "cudadev_pop_shmem");
  reg "cudadev_getaddr" (fun _ args ->
      (* Kernel parameters already carry device addresses; the lookup the
         real runtime performs is an identity here. *)
      match args with
      | [ v ] -> v
      | _ -> bad_args "cudadev_getaddr");

  (* -------- worksharing (§3.1, §4.2.2) -------- *)
  reg "cudadev_get_distribute_chunk" (fun ctx args ->
      match args with
      | [ lb_out; ub_out; lo; hi ] ->
        let r =
          Sched.distribute_chunk ~team:(team_linear bs) ~num_teams:(num_teams bs)
            { Sched.lo = int_arg lo; hi = int_arg hi }
        in
        store_int ctx lb_out r.Sched.lo;
        store_int ctx ub_out r.Sched.hi;
        ret_void
      | _ -> bad_args "cudadev_get_distribute_chunk");
  reg "cudadev_get_distribute_cyclic" (fun ctx args ->
      (* dist_schedule(static, c): the team's k-th block-cyclic chunk *)
      match args with
      | [ k; chunk; lo; hi; lb_out; ub_out ] ->
        let range = { Sched.lo = int_arg lo; hi = int_arg hi } in
        (match
           Sched.static_cyclic_chunk ~thread:(team_linear bs) ~num_threads:(num_teams bs)
             ~chunk:(max 1 (int_arg chunk)) ~k:(int_arg k) range
         with
        | Some r ->
          store_int ctx lb_out r.Sched.lo;
          store_int ctx ub_out r.Sched.hi;
          ret_int 1
        | None -> ret_int 0)
      | _ -> bad_args "cudadev_get_distribute_cyclic");
  reg "cudadev_get_static_chunk" (fun ctx args ->
      match args with
      | [ lb_out; ub_out; lo; hi ] ->
        let r =
          Sched.static_chunk ~thread:omp.omp_id ~num_threads:omp.omp_num
            { Sched.lo = int_arg lo; hi = int_arg hi }
        in
        store_int ctx lb_out r.Sched.lo;
        store_int ctx ub_out r.Sched.hi;
        ret_int (if Sched.range_len r > 0 then 1 else 0)
      | _ -> bad_args "cudadev_get_static_chunk");
  reg "cudadev_get_dynamic_chunk" (fun ctx args ->
      match args with
      | [ rid; chunk; lo; hi; lb_out; ub_out ] ->
        let rid = int_arg rid and chunk = max 1 (int_arg chunk) in
        if rid < 0 then devrt_error "cudadev_get_dynamic_chunk: invalid region id %d" rid;
        let range = { Sched.lo = int_arg lo; hi = int_arg hi } in
        let counter = dyn_counter bs rid ~init:range.Sched.lo in
        bs.bs_counters.Counters.atomics <- bs.bs_counters.Counters.atomics + 1;
        (match Sched.dynamic_chunk ~counter:!counter ~chunk range with
        | Some r ->
          counter := r.Sched.hi;
          bs.bs_counters.Counters.chunk_grabs <- bs.bs_counters.Counters.chunk_grabs + 1;
          store_int ctx lb_out r.Sched.lo;
          store_int ctx ub_out r.Sched.hi;
          (* yield so that other threads interleave their grabs, as the
             hardware scheduler would *)
          Simt.yield ();
          ret_int 1
        | None ->
          dyn_drained bs rid (max 1 omp.omp_num);
          ret_int 0)
      | _ -> bad_args "cudadev_get_dynamic_chunk");
  reg "cudadev_get_guided_chunk" (fun ctx args ->
      match args with
      | [ rid; minchunk; lo; hi; lb_out; ub_out ] ->
        let rid = int_arg rid and minchunk = max 1 (int_arg minchunk) in
        if rid < 0 then devrt_error "cudadev_get_guided_chunk: invalid region id %d" rid;
        let range = { Sched.lo = int_arg lo; hi = int_arg hi } in
        let counter = dyn_counter bs rid ~init:range.Sched.lo in
        bs.bs_counters.Counters.atomics <- bs.bs_counters.Counters.atomics + 1;
        (match Sched.guided_chunk ~counter:!counter ~num_threads:(max 1 omp.omp_num) ~min_chunk:minchunk range with
        | Some r ->
          counter := r.Sched.hi;
          bs.bs_counters.Counters.chunk_grabs <- bs.bs_counters.Counters.chunk_grabs + 1;
          store_int ctx lb_out r.Sched.lo;
          store_int ctx ub_out r.Sched.hi;
          Simt.yield ();
          ret_int 1
        | None ->
          dyn_drained bs rid (max 1 omp.omp_num);
          ret_int 0)
      | _ -> bad_args "cudadev_get_guided_chunk");
  reg "cudadev_ws_barrier" (fun _ args ->
      match args with
      | [ rid; nthr ] ->
        let nthr = int_arg nthr in
        let nthr = if nthr <= 0 then omp.omp_num else nthr in
        ws_finish bs (int_arg rid) nthr;
        Simt.bar_sync barrier_id_user nthr;
        ret_void
      | _ -> bad_args "cudadev_ws_barrier");
  reg "cudadev_barrier" (fun _ args ->
      match args with
      | [ nthr ] ->
        let n = int_arg nthr in
        let n = if n <= 0 then omp.omp_num else n in
        (* The paper's rounding rule X = W * ceil(N/W) is applied for the
           cost side inside the scheduler; participation is exact. *)
        Simt.bar_sync barrier_id_user n;
        ret_void
      | _ -> bad_args "cudadev_barrier");

  (* -------- sections -------- *)
  (* "To avoid warp divergence, each section is assigned to threads from
     different warps" (§4.2.2): the first sections are reserved for one
     leader lane per warp; only once every warp leader is busy does the
     shared counter hand sections to arbitrary threads. *)
  reg "cudadev_sections_next" (fun _ args ->
      match args with
      | [ rid; nsections ] ->
        let rid = int_arg rid and nsections = int_arg nsections in
        let c = section_counter bs rid in
        bs.bs_counters.Counters.atomics <- bs.bs_counters.Counters.atomics + 1;
        let warp = spec.Spec.warp_size in
        let my_warp = ts.Simt.ts_lin / warp in
        let grant mine =
          incr c;
          (* ablation bookkeeping: did this warp already own a section? *)
          incr Config.sections_total_grants;
          (match Hashtbl.find_opt Config.sections_warp_owners (bs.bs_block_lin, rid) with
          | Some warps ->
            if List.mem my_warp !warps then incr Config.sections_same_warp_grants
            else warps := my_warp :: !warps
          | None -> Hashtbl.replace Config.sections_warp_owners (bs.bs_block_lin, rid) (ref [ my_warp ]));
          Simt.yield ();
          ret_int mine
        in
        let reserved =
          if !Config.sections_anti_divergence then min nsections ((omp.omp_num + warp - 1) / warp)
          else 0
        in
        let is_leader = omp.omp_id mod warp = 0 && omp.omp_id / warp < reserved in
        if is_leader && !c <= omp.omp_id / warp then begin
          (* leaders take their reserved section exactly once *)
          let mine = omp.omp_id / warp in
          if !c = mine then grant mine
          else begin
            (* another leader has not arrived yet; wait for our slot *)
            while !c < mine do
              Simt.yield ()
            done;
            if !c = mine then grant mine else ret_int (-1)
          end
        end
        else if !c >= nsections then ret_int (-1)
        else if !c < reserved then begin
          (* reserved slots pending: non-leaders wait their turn *)
          while !c < reserved && !c < nsections do
            Simt.yield ()
          done;
          if !c >= nsections then ret_int (-1) else grant !c
        end
        else grant !c
      | _ -> bad_args "cudadev_sections_next");

  (* -------- locks / critical (§4.2.2) -------- *)
  reg "cudadev_lock" (fun ctx args ->
      match args with
      | [ Value.VPtr (addr, _) ] ->
        let rec spin () =
          bs.bs_counters.Counters.atomics <- bs.bs_counters.Counters.atomics + 1;
          let cur = Value.to_int (Cinterp.Interp.load ctx addr Cty.Int) in
          if cur = 0 then Cinterp.Interp.store ctx addr Cty.Int (Value.of_int 1)
          else begin
            Simt.yield ();
            spin ()
          end
        in
        spin ();
        ret_void
      | _ -> bad_args "cudadev_lock");
  reg "cudadev_unlock" (fun ctx args ->
      match args with
      | [ Value.VPtr (addr, _) ] ->
        Cinterp.Interp.store ctx addr Cty.Int (Value.of_int 0);
        ret_void
      | _ -> bad_args "cudadev_unlock");

  (* -------- reductions -------- *)
  let reduce name f =
    reg name (fun ctx args ->
        match args with
        | [ ptr; v ] -> ignore (atomic_rmw ctx bs ptr (fun old -> f old v)); ret_void
        | _ -> bad_args name)
  in
  reduce "cudadev_reduce_fadd" (fun old v ->
      Value.flt ~ty:(Value.ty_of old) (Value.as_float old +. Value.as_float v));
  reduce "cudadev_reduce_iadd" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (Int64.add (Value.as_int old) (Value.as_int v)));
  reduce "cudadev_reduce_fmul" (fun old v ->
      Value.flt ~ty:(Value.ty_of old) (Value.as_float old *. Value.as_float v));
  reduce "cudadev_reduce_imul" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (Int64.mul (Value.as_int old) (Value.as_int v)));
  reduce "cudadev_reduce_fmax" (fun old v ->
      Value.flt ~ty:(Value.ty_of old) (Float.max (Value.as_float old) (Value.as_float v)));
  reduce "cudadev_reduce_fmin" (fun old v ->
      Value.flt ~ty:(Value.ty_of old) (Float.min (Value.as_float old) (Value.as_float v)));
  reduce "cudadev_reduce_imax" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (if Value.as_int v > Value.as_int old then Value.as_int v else Value.as_int old));
  reduce "cudadev_reduce_imin" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (if Value.as_int v < Value.as_int old then Value.as_int v else Value.as_int old));
  reduce "cudadev_reduce_iand" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (Int64.logand (Value.as_int old) (Value.as_int v)));
  reduce "cudadev_reduce_ior" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (Int64.logor (Value.as_int old) (Value.as_int v)));
  reduce "cudadev_reduce_ixor" (fun old v ->
      Value.int ~ty:(Value.ty_of old) (Int64.logxor (Value.as_int old) (Value.as_int v)));
  reduce "cudadev_reduce_iland" (fun old v ->
      Value.int ~ty:(Value.ty_of old)
        (if Value.as_int old <> 0L && Value.as_int v <> 0L then 1L else 0L));
  reduce "cudadev_reduce_fland" (fun old v ->
      Value.flt ~ty:(Value.ty_of old)
        (if Value.as_float old <> 0.0 && Value.as_float v <> 0.0 then 1.0 else 0.0));
  reduce "cudadev_reduce_flor" (fun old v ->
      Value.flt ~ty:(Value.ty_of old)
        (if Value.as_float old <> 0.0 || Value.as_float v <> 0.0 then 1.0 else 0.0));

  (* -------- CUDA intrinsics for hand-written kernels -------- *)
  reg "__syncthreads" (fun _ args ->
      match args with
      | [] ->
        Simt.bar_sync 0 0 (* all live threads *);
        ret_void
      | _ -> bad_args "__syncthreads");
  reg "atomicAdd" (fun ctx args ->
      match args with
      | [ ptr; v ] ->
        atomic_rmw ctx bs ptr (fun old ->
            match old with
            | Value.VFlt (f, ty) -> Value.flt ~ty (f +. Value.as_float v)
            | Value.VInt (i, ty) -> Value.int ~ty (Int64.add i (Value.as_int v))
            | o -> devrt_error "atomicAdd on %s" (Value.show o))
      | _ -> bad_args "atomicAdd");
  reg "atomicCAS" (fun ctx args ->
      match args with
      | [ ptr; cmp; v ] ->
        atomic_rmw ctx bs ptr (fun old -> if Value.as_int old = Value.as_int cmp then v else old)
      | _ -> bad_args "atomicCAS");
  reg "atomicExch" (fun ctx args ->
      match args with
      | [ ptr; v ] -> atomic_rmw ctx bs ptr (fun _ -> v)
      | _ -> bad_args "atomicExch")
