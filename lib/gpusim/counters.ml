(* Dynamic statistics of a kernel launch, feeding the cost model.

   Instruction counts are kept per thread within the running block and
   folded into per-warp maxima at block retirement, which approximates
   SIMT lockstep cost under divergence.  Global-memory coalescing is
   sampled on warp 0 of the first executed block: the k-th access of
   each lane to a given allocation is assumed to correspond to the same
   static memory instruction, so the number of distinct transaction
   segments covered by the 32 lanes at position k estimates the
   transactions issued for that warp-instruction. *)

open Machine

module Int_set = Set.Make (Int)

type class_counts = {
  mutable arith : int;
  mutable mul : int;
  mutable div : int;
  mutable branch : int;
  mutable call : int;
  mutable special : int;
}

let zero_classes () = { arith = 0; mul = 0; div = 0; branch = 0; call = 0; special = 0 }

let class_total c = c.arith + c.mul + c.div + c.branch + c.call + c.special

type alloc_stats = {
  mutable a_loads : int;
  mutable a_stores : int;
  (* byte interval written within the allocation (relative to its base;
     lo >= hi means no store was observed).  Multi-device sharding uses
     these to merge exactly the bytes each shard produced. *)
  mutable a_store_lo : int;
  mutable a_store_hi : int;
  (* byte interval touched by atomic read-modify-writes: the only bytes a
     later shard may legally read after another shard wrote them *)
  mutable a_atomic_lo : int;
  mutable a_atomic_hi : int;
  (* warp-0 sampling: (block, access index) -> segment set + lane count *)
  samples : (int, Int_set.t ref * int ref) Hashtbl.t;
}

(* Zero-copy traffic per pinned range, so the memory policy can weigh a
   specific buffer's observed access volume against its transfer cost. *)
type pin_stats = {
  mutable p_loads : int;
  mutable p_stores : int;
}

type t = {
  spec : Spec.t;
  classes : class_counts;
  mutable thread_insts : int array; (* per linear thread of current block *)
  mutable warp_inst_sum : float; (* sum over retired warps of max-in-warp *)
  mutable warp_inst_max : float; (* heaviest single warp (makespan floor) *)
  mutable thread_inst_sum : float;
  mutable shared_accesses : int;
  mutable local_accesses : int;
  mutable barrier_warp_arrivals : int; (* rounded, for cost *)
  mutable atomics : int;
  mutable chunk_grabs : int; (* dynamic/guided scheduler chunk grants *)
  mutable blocks_executed : int;
  mutable blocks_total : int; (* including non-simulated (sampled-out) ones *)
  mutable zerocopy_loads : int; (* kernel accesses to pinned host memory *)
  mutable zerocopy_stores : int;
  per_alloc : (int, alloc_stats) Hashtbl.t;
  per_pin : (int, pin_stats) Hashtbl.t; (* zero-copy accesses keyed by pin id *)
  (* allocation table for addr -> allocation id: sorted (off, len, id) *)
  mutable alloc_table : (int * int * int) array;
  (* stats record for each [alloc_table] entry, so the per-access hot
     path resolves stats by binary search alone (no hashtable probe) *)
  mutable alloc_table_stats : alloc_stats array;
  (* pinned host ranges visible to the device (zero-copy): sorted (off, len, id) *)
  mutable pinned_table : (int * int * int) array;
  (* Coalescing is sampled on warp 0 of the first [max_sample_blocks]
     simulated blocks; [sample_block_seq] is the index of the block
     currently contributing samples, or -1 when sampling is off. *)
  mutable sample_block_seq : int;
  mutable block_contributed : bool; (* did the current sampled block produce any sample? *)
  max_sample_blocks : int;
  sample_cap : int;
}

let create spec =
  {
    spec;
    classes = zero_classes ();
    thread_insts = [||];
    warp_inst_sum = 0.0;
    warp_inst_max = 0.0;
    thread_inst_sum = 0.0;
    shared_accesses = 0;
    local_accesses = 0;
    barrier_warp_arrivals = 0;
    atomics = 0;
    chunk_grabs = 0;
    blocks_executed = 0;
    blocks_total = 0;
    zerocopy_loads = 0;
    zerocopy_stores = 0;
    per_alloc = Hashtbl.create 16;
    per_pin = Hashtbl.create 4;
    alloc_table = [||];
    alloc_table_stats = [||];
    pinned_table = [||];
    sample_block_seq = -1;
    block_contributed = false;
    max_sample_blocks = 8;
    sample_cap = 2048;
  }

let sorted_ranges (allocs : (int * int * int) array) =
  let allocs = Array.copy allocs in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) allocs;
  allocs

let alloc_stats t id =
  match Hashtbl.find_opt t.per_alloc id with
  | Some s -> s
  | None ->
    let s =
      {
        a_loads = 0;
        a_stores = 0;
        a_store_lo = max_int;
        a_store_hi = 0;
        a_atomic_lo = max_int;
        a_atomic_hi = 0;
        samples = Hashtbl.create 64;
      }
    in
    Hashtbl.replace t.per_alloc id s;
    s

let set_alloc_table t (allocs : (int * int * int) array) =
  let sorted = sorted_ranges allocs in
  t.alloc_table <- sorted;
  t.alloc_table_stats <- Array.map (fun (_, _, id) -> alloc_stats t id) sorted

let set_pinned_table t (ranges : (int * int * int) array) = t.pinned_table <- sorted_ranges ranges

let find_range (arr : (int * int * int) array) off : int option =
  let n = Array.length arr in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let o, len, id = arr.(mid) in
      if off < o then bsearch lo mid
      else if off >= o + len then bsearch (mid + 1) hi
      else Some id
  in
  bsearch 0 n

(* Like [find_range] but yielding the entry index (-1 when absent), so
   the caller can reach the parallel stats array without a probe. *)
let find_range_idx (arr : (int * int * int) array) off : int =
  let n = Array.length arr in
  let rec bsearch lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let o, len, _ = Array.unsafe_get arr mid in
      if off < o then bsearch lo mid
      else if off >= o + len then bsearch (mid + 1) hi
      else mid
  in
  bsearch 0 n

let find_alloc t off : int option = find_range t.alloc_table off

let find_pinned t off : int option = find_range t.pinned_table off

let begin_block t n_threads =
  if Array.length t.thread_insts < n_threads then t.thread_insts <- Array.make n_threads 0
  else Array.fill t.thread_insts 0 n_threads 0

let retire_block t n_threads =
  t.blocks_executed <- t.blocks_executed + 1;
  let w = t.spec.Spec.warp_size in
  let nwarps = (n_threads + w - 1) / w in
  for wi = 0 to nwarps - 1 do
    let m = ref 0 in
    for lane = wi * w to min ((wi + 1) * w) n_threads - 1 do
      if t.thread_insts.(lane) > !m then m := t.thread_insts.(lane);
      t.thread_inst_sum <- t.thread_inst_sum +. float_of_int t.thread_insts.(lane)
    done;
    t.warp_inst_sum <- t.warp_inst_sum +. float_of_int !m;
    if float_of_int !m > t.warp_inst_max then t.warp_inst_max <- float_of_int !m
  done

let on_step t (lin : int) (k : Cinterp.Interp.step) =
  t.thread_insts.(lin) <- t.thread_insts.(lin) + 1;
  let c = t.classes in
  match k with
  | Cinterp.Interp.St_arith -> c.arith <- c.arith + 1
  | Cinterp.Interp.St_mul -> c.mul <- c.mul + 1
  | Cinterp.Interp.St_div -> c.div <- c.div + 1
  | Cinterp.Interp.St_branch -> c.branch <- c.branch + 1
  | Cinterp.Interp.St_call -> c.call <- c.call + 1
  | Cinterp.Interp.St_special -> c.special <- c.special + 1

(* [seq] is the per-thread per-allocation access counter, provided by the
   thread state so that lanes can be aligned. *)
let on_global_access t ~(lin : int) ~(seq : (int, int ref) Hashtbl.t) (acc : Cinterp.Interp.access) =
  let off = acc.acc_addr.Addr.off in
  match find_range_idx t.alloc_table off with
  | -1 -> ()
  | i ->
    let base, _, id = Array.unsafe_get t.alloc_table i in
    let s = Array.unsafe_get t.alloc_table_stats i in
    (match acc.acc_kind with
    | `Load -> s.a_loads <- s.a_loads + 1
    | `Store ->
      s.a_stores <- s.a_stores + 1;
      let rel = off - base in
      if rel < s.a_store_lo then s.a_store_lo <- rel;
      if rel + acc.acc_bytes > s.a_store_hi then s.a_store_hi <- rel + acc.acc_bytes);
    if t.sample_block_seq >= 0 then begin
      let warp = lin / t.spec.Spec.warp_size in
      let k =
        match Hashtbl.find_opt seq id with
        | Some r ->
          incr r;
          !r - 1
        | None ->
          Hashtbl.replace seq id (ref 1);
          0
      in
      if k < t.sample_cap then begin
        t.block_contributed <- true;
        let seg = off / t.spec.Spec.transaction_bytes in
        let key = (((t.sample_block_seq * 32) + warp) * t.sample_cap) + k in
        match Hashtbl.find_opt s.samples key with
        | Some (set, count) ->
          set := Int_set.add seg !set;
          incr count
        | None -> Hashtbl.replace s.samples key (ref (Int_set.singleton seg), ref 1)
      end
    end

(* Record an atomic read-modify-write's target bytes.  Called from the
   device-runtime atomics (which know the address), not from the access
   hook: only RMWs matter for cross-shard exchange, and only they may
   legally carry values between teams of one distribute. *)
let note_atomic t ~(off : int) ~(len : int) =
  match find_range_idx t.alloc_table off with
  | -1 -> ()
  | i ->
    let base, _, _ = Array.unsafe_get t.alloc_table i in
    let s = Array.unsafe_get t.alloc_table_stats i in
    let rel = off - base in
    if rel < s.a_atomic_lo then s.a_atomic_lo <- rel;
    if rel + len > s.a_atomic_hi then s.a_atomic_hi <- rel + len

let interval_opt lo hi = if hi > lo then Some (lo, hi) else None

(* Byte interval (relative to the allocation base, hi exclusive) written
   by this launch into allocation [id], if any. *)
let store_interval t (id : int) : (int * int) option =
  match Hashtbl.find_opt t.per_alloc id with
  | None -> None
  | Some s -> interval_opt s.a_store_lo s.a_store_hi

let atomic_interval t (id : int) : (int * int) option =
  match Hashtbl.find_opt t.per_alloc id with
  | None -> None
  | Some s -> interval_opt s.a_atomic_lo s.a_atomic_hi

(* Zero-copy: a kernel access that resolved to pinned host memory.  These
   bypass the GPU caches entirely, so there is no coalescing sample to
   keep — the cost model charges them at the uncached bandwidth.  Traffic
   is also attributed to the pinned range it hit, so the memory policy
   can weigh a specific buffer's access volume against its pin cost. *)
let pin_stats t id =
  match Hashtbl.find_opt t.per_pin id with
  | Some s -> s
  | None ->
    let s = { p_loads = 0; p_stores = 0 } in
    Hashtbl.replace t.per_pin id s;
    s

let on_zerocopy_access t ~(pin : int) (acc : Cinterp.Interp.access) =
  let s = pin_stats t pin in
  match acc.acc_kind with
  | `Load ->
    t.zerocopy_loads <- t.zerocopy_loads + 1;
    s.p_loads <- s.p_loads + 1
  | `Store ->
    t.zerocopy_stores <- t.zerocopy_stores + 1;
    s.p_stores <- s.p_stores + 1

let zerocopy_accesses t = t.zerocopy_loads + t.zerocopy_stores

(* Estimated DRAM transactions for one allocation: transactions per
   sampled access (so partially-populated edge warps are weighted by
   their actual lane count), scaled to all accesses. *)
let alloc_transactions t (s : alloc_stats) : float =
  let accesses = s.a_loads + s.a_stores in
  if accesses = 0 then 0.0
  else begin
    let total_tx, total_sampled =
      Hashtbl.fold
        (fun _ (set, count) (tx, n) -> (tx + Int_set.cardinal !set, n + !count))
        s.samples (0, 0)
    in
    if total_sampled = 0 then
      (* no sample: assume perfectly coalesced *)
      float_of_int accesses /. float_of_int t.spec.Spec.warp_size
    else float_of_int accesses *. float_of_int total_tx /. float_of_int total_sampled
  end

let global_transactions t =
  Hashtbl.fold (fun _ s acc -> acc +. alloc_transactions t s) t.per_alloc 0.0

let global_accesses t =
  Hashtbl.fold (fun _ s acc -> acc + s.a_loads + s.a_stores) t.per_alloc 0

(* Scale factor applied when only a subset of blocks was simulated. *)
let block_scale t =
  if t.blocks_executed = 0 then 1.0
  else float_of_int t.blocks_total /. float_of_int t.blocks_executed
