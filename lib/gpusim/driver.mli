(** CUDA-driver-style API over the simulated device: contexts, module
    loading, memory management, transfers and kernel launches.  This is
    the layer the paper's cudadev host module calls into (cuMemAlloc,
    cuMemcpyHtoD/DtoH, cuModuleLoad, cuLaunchKernel — paper 4.2.1). *)

open Machine
open Minic

exception Cuda_error of string

type loaded_module = {
  lm_artifact : Nvcc.artifact;
  lm_source : Simt.kernel_source;
  lm_compiled : Cinterp.Jit.compiled option;
      (** closure-compiled form of the module's functions, produced once
          at load time ([None] when the closure JIT is disabled) *)
}

type launch_stats = {
  st_entry : string;
  st_grid : Simt.dim3;
  st_block : Simt.dim3;
  st_breakdown : Costmodel.breakdown;
  st_blocks_simulated : int;
  st_blocks_total : int;
  st_counters : Counters.t;  (** raw dynamic statistics of the launch *)
}

(** One allocation's log of written byte intervals (relative to the
    allocation base, most recent first, tagged with a monotonically
    increasing sequence number). *)
type store_log = {
  mutable sl_seq : int;
  mutable sl_items : (int * int * int) list;  (** seq, lo, hi (exclusive) *)
}

(** A device stream: a work queue with its own timeline on the shared
    simulated clock.  Async enqueues advance only [str_done_ns]; the
    global clock catches up at synchronization points. *)
type stream = {
  str_id : int;  (** 1-based: trace timeline ("tid") 0 is the host *)
  mutable str_done_ns : float;  (** absolute sim time when the queue drains *)
}

type t = {
  spec : Spec.t;
  clock : Simclock.t;
  ordinal : int;  (** position in a multi-device farm; 0 is the default *)
  tid_base : int;
      (** trace-timeline offset ([ordinal * 1000]) so no two devices share
          a tid: device d's stream s completes on tid [d*1000 + s] *)
  global : Mem.t;  (** device global memory *)
  jit_cache : (string, unit) Hashtbl.t;  (** the on-disk JIT cache (survives contexts) *)
  mutable initialized : bool;
  mutable context_alive : bool;
  modules : (string, loaded_module) Hashtbl.t;
  mutable allocs : (int * int * int) list;
  mutable next_alloc_id : int;
  output : Buffer.t;  (** device-side printf *)
  mutable launches : launch_stats list;  (** most recent first *)
  mutable kernels_launched : int;
  mutable trace : Perf.Trace.t option;  (** launch-phase tracing, off by default *)
  mutable inject : (string -> unit) option;  (** fault-injection hook, off by default *)
  mutable streams : stream list;  (** creation order *)
  mutable next_stream_id : int;
  mutable copy_busy : (float * float) list;
      (** single copy engine: busy intervals (start_ns, end_ns), sorted by
          start.  Placement is work-conserving first-fit: the hardware
          channels feed the engine with whichever queued op is ready. *)
  mutable compute_busy : (float * float) list;  (** single compute engine, same scheme *)
  mutable pinned : (int * int * int) list;
      (** zero-copy: pinned host ranges (off, len, id) kernels may address in place *)
  mutable pinned_host : Mem.t option;  (** the host image, [Some] iff [pinned <> []] *)
  mutable next_pin_id : int;
  mutable zerocopy_total : int;  (** zero-copy kernel accesses across launches *)
  dev_stores : (int, int) Hashtbl.t;  (** cumulative kernel stores per allocation id *)
  dev_loads : (int, int) Hashtbl.t;  (** cumulative kernel loads per allocation id *)
  store_intervals : (int, store_log) Hashtbl.t;
      (** per-allocation log of written byte intervals; see [store_mark] *)
  pin_loads : (int, int) Hashtbl.t;  (** cumulative zero-copy loads per pin id *)
  pin_stores : (int, int) Hashtbl.t;  (** cumulative zero-copy stores per pin id *)
  mutable write_epoch : int;
      (** bumped whenever store counts may be incomplete (block-sampled
          launches, context reset): elision must not trust older counts *)
  mutable closure_jit : bool;
      (** compile kernel ASTs to OCaml closures at module load (default
          true); the tree-walker remains the reference executor *)
}

val create : ?spec:Spec.t -> ?ordinal:int -> Simclock.t -> t

(** Attach (or detach, with [None]) a trace ring; the driver then emits
    init/mem/transfer/load/jit/kernel events into it. *)
val set_trace : t -> Perf.Trace.t option -> unit

(** Enable/disable the closure JIT.  Affects subsequent module loads
    (whether a compiled form is built, with a cat:"jit"
    "closure_compile" instant) and subsequent launches of
    already-loaded modules (whether their compiled form is used).
    Simulated times are identical either way — compilation is host-side
    simulator work, not a modelled device cost. *)
val set_jit : t -> bool -> unit

(** Attach (or detach, with [None]) a fault-injection hook.  It is
    called with a site name ("alloc", "h2d", "d2h", "module_load",
    "jit_cache", "jit_compile", "launch") at the entry of each fallible
    operation — before any clock advance or memory mutation — and may
    raise to make the operation fail. *)
val set_inject : t -> (string -> unit) option -> unit

(** Lazy device initialisation (paper 4.2.1): the first real use pays
    for cuInit + primary-context creation. *)
val ensure_initialized : t -> unit

val properties : t -> Spec.t

(** {1 Memory management} *)

val mem_alloc : t -> int -> Addr.t

val mem_free : t -> Addr.t -> unit

val memcpy_h2d : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

val memcpy_d2h : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

val memset_d : t -> dst:Addr.t -> len:int -> unit

(** cuMemHostRegister: pin a host range so kernels address it in place
    (the Nano's CPU and GPU share the same LPDDR4).  Charges the
    page-locking cost; emits a cat:"mem" "host_register" instant. *)
val host_register : t -> host:Mem.t -> addr:Addr.t -> bytes:int -> unit

val host_unregister : t -> Addr.t -> unit

(** {1 Transfer-elision accessors (Hostrt.Dataenv)} *)

(** Allocation id owning a device address, if any. *)
val alloc_id_of : t -> Addr.t -> int option

(** Cumulative kernel stores recorded against an allocation id. *)
val alloc_stores : t -> int -> int

(** Cumulative kernel loads recorded against an allocation id. *)
val alloc_loads : t -> int -> int

(** Current position in an allocation's store-interval log.  Snapshot at
    a sync point; [stores_since] then yields the byte intervals
    (relative to the allocation base, hi exclusive) written after that
    mark.  The log is capped: when it overflows it collapses to one
    full-extent interval, so stale marks read as "everything dirty" —
    conservative, never unsound. *)
val store_mark : t -> int -> int

val stores_since : t -> int -> int -> (int * int) list

(** Record device-side writes that bypassed a kernel (tests, salvage).
    No byte interval is known, so the full extent is logged as dirty. *)
val note_stores : t -> int -> int -> unit

(** Cumulative zero-copy (loads, stores) recorded against a pin id. *)
val pin_traffic : t -> int -> int * int

(** Pin id owning a pinned host address, if any. *)
val pin_id_of : t -> Addr.t -> int option

(** {1 Modules and launch} *)

(** Loading phase: charge the artifact's load cost (JIT on a PTX cache
    miss) and build the executable kernel source; cached per context. *)
val load_module : t -> Nvcc.artifact -> loaded_module

val get_function : loaded_module -> string -> Ast.fundef

(** Launch phase: run the grid on the SIMT engine, convert the measured
    counts to time, and advance the simulated clock. *)
val launch_kernel :
  t ->
  modul:loaded_module ->
  entry:string ->
  grid:Simt.dim3 ->
  block:Simt.dim3 ->
  args:Value.t list ->
  install_builtins:(Cinterp.Interp.t -> Simt.block_state -> Simt.thread_state -> unit) ->
  ?block_filter:(int -> bool) ->
  ?logical_blocks:int ->
  ?occupancy_penalty:float ->
  unit ->
  launch_stats

(** {1 Streams (asynchronous copies and launches)}

    Async operations perform their memory effect eagerly, in enqueue
    (= host program) order — only the {e time} is modelled
    asynchronously, on per-stream timelines behind a single copy engine
    and a single compute engine (the Nano has one of each, so only
    transfer/compute overlap is possible).  Any enqueue order the
    dependency tracker admits therefore replays to the same memory
    image as the synchronous schedule. *)

(** CPU-side cost (µs) of issuing one async driver call, charged to the
    global clock at enqueue. *)
val async_api_overhead_us : float

val stream_create : t -> stream

(** Is there enqueued work on this stream that completes after the
    current simulated time? *)
val stream_busy : t -> stream -> bool

(** cuStreamWaitEvent: the stream will not start new work before the
    given absolute time (pure timeline arithmetic, no trace event). *)
val stream_wait_until : stream -> float -> unit

(** cuStreamSynchronize: advance the global clock to the stream's
    completion timestamp.  Emits a cat:"async" "stream_sync" instant. *)
val stream_sync : t -> stream -> unit

(** cuCtxSynchronize: advance the global clock past every stream. *)
val device_sync : t -> unit

val memcpy_h2d_async : t -> stream:stream -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

val memcpy_d2h_async : t -> stream:stream -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

(** Async launch: the SIMT run (and its memory effects) happens eagerly
    at enqueue; the kernel's modelled duration lands on the stream's
    timeline.  The host clock pays only the launch-issue overhead.
    Emits a cat:"async" Complete event spanning the scheduled run. *)
val launch_kernel_async :
  t ->
  stream:stream ->
  modul:loaded_module ->
  entry:string ->
  grid:Simt.dim3 ->
  block:Simt.dim3 ->
  args:Value.t list ->
  install_builtins:(Cinterp.Interp.t -> Simt.block_state -> Simt.thread_state -> unit) ->
  ?block_filter:(int -> bool) ->
  ?logical_blocks:int ->
  ?occupancy_penalty:float ->
  unit ->
  launch_stats

(** Last-ditch device-to-host copy used when declaring the device dead:
    bypasses fault injection (simulated global memory stays readable
    after compute faults) so live mappings can be rescued before host
    fallback.  Emits a cat:"fault" "salvage" instant. *)
val salvage_d2h : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

(** Drain the device-side printf buffer. *)
val take_output : t -> string

val reset : t -> unit
