(** CUDA-driver-style API over the simulated device: contexts, module
    loading, memory management, transfers and kernel launches.  This is
    the layer the paper's cudadev host module calls into (cuMemAlloc,
    cuMemcpyHtoD/DtoH, cuModuleLoad, cuLaunchKernel — paper 4.2.1). *)

open Machine
open Minic

exception Cuda_error of string

type loaded_module = { lm_artifact : Nvcc.artifact; lm_source : Simt.kernel_source }

type launch_stats = {
  st_entry : string;
  st_grid : Simt.dim3;
  st_block : Simt.dim3;
  st_breakdown : Costmodel.breakdown;
  st_blocks_simulated : int;
  st_blocks_total : int;
  st_counters : Counters.t;  (** raw dynamic statistics of the launch *)
}

type t = {
  spec : Spec.t;
  clock : Simclock.t;
  global : Mem.t;  (** device global memory *)
  jit_cache : (string, unit) Hashtbl.t;  (** the on-disk JIT cache (survives contexts) *)
  mutable initialized : bool;
  mutable context_alive : bool;
  modules : (string, loaded_module) Hashtbl.t;
  mutable allocs : (int * int * int) list;
  mutable next_alloc_id : int;
  output : Buffer.t;  (** device-side printf *)
  mutable launches : launch_stats list;  (** most recent first *)
  mutable kernels_launched : int;
  mutable trace : Perf.Trace.t option;  (** launch-phase tracing, off by default *)
  mutable inject : (string -> unit) option;  (** fault-injection hook, off by default *)
}

val create : ?spec:Spec.t -> Simclock.t -> t

(** Attach (or detach, with [None]) a trace ring; the driver then emits
    init/mem/transfer/load/jit/kernel events into it. *)
val set_trace : t -> Perf.Trace.t option -> unit

(** Attach (or detach, with [None]) a fault-injection hook.  It is
    called with a site name ("alloc", "h2d", "d2h", "module_load",
    "jit_cache", "jit_compile", "launch") at the entry of each fallible
    operation — before any clock advance or memory mutation — and may
    raise to make the operation fail. *)
val set_inject : t -> (string -> unit) option -> unit

(** Lazy device initialisation (paper 4.2.1): the first real use pays
    for cuInit + primary-context creation. *)
val ensure_initialized : t -> unit

val properties : t -> Spec.t

(** {1 Memory management} *)

val mem_alloc : t -> int -> Addr.t

val mem_free : t -> Addr.t -> unit

val memcpy_h2d : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

val memcpy_d2h : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

val memset_d : t -> dst:Addr.t -> len:int -> unit

(** {1 Modules and launch} *)

(** Loading phase: charge the artifact's load cost (JIT on a PTX cache
    miss) and build the executable kernel source; cached per context. *)
val load_module : t -> Nvcc.artifact -> loaded_module

val get_function : loaded_module -> string -> Ast.fundef

(** Launch phase: run the grid on the SIMT engine, convert the measured
    counts to time, and advance the simulated clock. *)
val launch_kernel :
  t ->
  modul:loaded_module ->
  entry:string ->
  grid:Simt.dim3 ->
  block:Simt.dim3 ->
  args:Value.t list ->
  install_builtins:(Cinterp.Interp.t -> Simt.block_state -> Simt.thread_state -> unit) ->
  ?block_filter:(int -> bool) ->
  ?occupancy_penalty:float ->
  unit ->
  launch_stats

(** Last-ditch device-to-host copy used when declaring the device dead:
    bypasses fault injection (simulated global memory stays readable
    after compute faults) so live mappings can be rescued before host
    fallback.  Emits a cat:"fault" "salvage" instant. *)
val salvage_d2h : t -> host:Mem.t -> src:Addr.t -> dst:Addr.t -> len:int -> unit

(** Drain the device-side printf buffer. *)
val take_output : t -> string

val reset : t -> unit
