(** SIMT execution engine.

    Each GPU thread is a coroutine (OCaml effect-handler fiber) running
    one mini-C interpreter instance over the kernel AST.  Blocks execute
    sequentially; threads within a block are interleaved cooperatively.
    Named barriers (PTX bar.sync) suspend threads until the expected
    number of participants arrive — the mechanism behind the paper's
    B1/B2 master/worker protocol.  Divergence, locks and atomics are
    modelled at scheduling points ({!yield}) rather than in instruction
    lockstep; cost is reconstructed per warp from per-thread instruction
    counts. *)

open Machine
open Minic

exception Simt_error of string

val simt_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type dim3 = { x : int; y : int; z : int }

val pp_dim3 : Format.formatter -> dim3 -> unit

val show_dim3 : dim3 -> string

val equal_dim3 : dim3 -> dim3 -> bool

val dim3 : ?y:int -> ?z:int -> int -> dim3

val dim3_total : dim3 -> int

(** {1 Scheduling effects} (performed by device-runtime builtins) *)

(** Arrive at named barrier [id], expecting [n] arrivals; [n <= 0] means
    "all currently live threads" (__syncthreads semantics, re-evaluated
    when threads retire). *)
val bar_sync : int -> int -> unit

(** Let other threads of the block run (spin locks, chunk grabs). *)
val yield : unit -> unit

type barrier = {
  mutable arrived : int;
  mutable expected : int;
  mutable live_count : bool;
  mutable waiting : (unit -> unit) list;
}

type thread_state = {
  ts_lin : int;  (** linear id within the block *)
  ts_tid : dim3;
  ts_alloc_seq : (int, int ref) Hashtbl.t;  (** per-allocation access counters *)
}

(** Master/worker region descriptor registered by the master thread
    (cudadev_register_parallel) and consumed by the workers. *)
type parallel_region = { pr_fn : string; pr_args : Value.t list; pr_nthreads : int }

type block_state = {
  bs_block_idx : dim3;
  bs_block_dim : dim3;
  bs_grid_dim : dim3;
  bs_block_lin : int;
  bs_shared : Mem.t;
  bs_shared_vars : (string, Addr.t) Hashtbl.t;
  bs_barriers : barrier array;
  bs_runq : (unit -> unit) Queue.t;
  mutable bs_live : int;
  mutable bs_region : parallel_region option;
  mutable bs_target_done : bool;
  bs_dyn_counters : (int, int ref) Hashtbl.t;
  bs_dyn_drained : (int, int ref) Hashtbl.t;
  bs_section_counters : (int, int ref) Hashtbl.t;
  bs_ws_done : (int, int ref) Hashtbl.t;
  bs_shmem_stack : (Addr.t * Addr.t * int * int) Stack.t;
  bs_counters : Counters.t;
  bs_spec : Spec.t;
}

type kernel_source = {
  ks_structs : Cty.layout_env;
  ks_funcs : (string, Ast.fundef) Hashtbl.t;
  ks_globals : (string, Cty.t * Addr.t) Hashtbl.t;
}

(** Build the executable kernel source of a module; [alloc_global]
    places device globals (lock words etc.) in global memory. *)
val kernel_source_of_program : ?alloc_global:(int -> Addr.t) -> Ast.program -> kernel_source

val ensure_dim3 : Cty.layout_env -> unit

type launch_config = {
  lc_grid : dim3;
  lc_block : dim3;
  lc_entry : string;
  lc_args : Value.t list;
  lc_block_filter : (int -> bool) option;
}

(** [dm_host] is the host memory image as seen from the device — present
    only when pinned (zero-copy) host ranges are registered. *)
type device_memories = { dm_global : Mem.t; dm_host : Mem.t option }

(** Launch a kernel over the grid (subject to the block filter),
    detecting barrier deadlocks and illegal memory-space accesses.
    With [?compiled], each thread executes the module's
    closure-compiled form instead of tree-walking the AST (identical
    semantics, hooks and yield points; see {!Cinterp.Jit}). *)
val launch :
  spec:Spec.t ->
  mem:device_memories ->
  source:kernel_source ->
  ?compiled:Cinterp.Jit.compiled ->
  counters:Counters.t ->
  install_builtins:(Cinterp.Interp.t -> block_state -> thread_state -> unit) ->
  output:Buffer.t ->
  launch_config ->
  unit
