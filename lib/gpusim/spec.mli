(** Hardware description of the simulated device and the calibration
    constants of the cost model.  The default instance models the NVIDIA
    Jetson Nano 2GB developer kit used in the paper: one Maxwell SM with
    128 CUDA cores (sm_53) next to a quad-core Cortex-A57, sharing 2GB
    of LPDDR4. *)

type t = {
  name : string;
  compute_capability : int * int;
  sm_count : int;
  cores_per_sm : int;
  warp_size : int;
  max_threads_per_block : int;
  max_named_barriers : int;  (** PTX bar.sync ids per block *)
  shared_mem_per_block : int;
  global_mem_bytes : int;
  gpu_clock_hz : float;
  mem_bandwidth : float;  (** device-visible DRAM bandwidth, bytes/s *)
  memcpy_bandwidth : float;  (** effective cudaMemcpy bandwidth, bytes/s *)
  kernel_launch_overhead_us : float;
  memcpy_latency_us : float;
  cycles_per_interp_step : float;  (** calibration: interpreter steps vs ISA *)
  mem_issue_cycles : float;  (** LSU occupancy per warp memory instruction *)
  transaction_bytes : int;  (** DRAM transaction granularity *)
  warp_schedulers : int;
  l2_hit_fraction : float;  (** share of transactions served by the caches *)
  zerocopy_bandwidth : float;  (** uncached pinned-host access bandwidth, bytes/s *)
}

val jetson_nano_2gb : t

(** Host CPU model, used to time interpreted host code. *)
type cpu = { cpu_name : string; cores : int; cpu_clock_hz : float; cycles_per_interp_step : float }

val cortex_a57 : cpu

val warps_per_block : t -> int -> int

(** The paper's named-barrier rounding rule: X = W * ceil(N / W). *)
val barrier_round : t -> int -> int
