(** Emulation of the NVIDIA compilation tools that OMPi drives via
    scripts (paper section 3.3): kernel files are "compiled" into either
    PTX (architecture-agnostic, finished by JIT at first load, with a
    disk cache) or CUBIN (fully compiled ahead of time, OMPi's default).

    The "binary" keeps the kernel AST as its payload — the simulator
    executes ASTs — plus the emitted CUDA C text, whose size drives the
    modelled compile/load costs. *)

open Minic

type binary_mode = Ptx | Cubin

val pp_binary_mode : Format.formatter -> binary_mode -> unit

val show_binary_mode : binary_mode -> string

val equal_binary_mode : binary_mode -> binary_mode -> bool

type artifact = {
  art_name : string;
  art_mode : binary_mode;
  art_program : Ast.program;  (** the kernel file contents *)
  art_text : string;  (** emitted CUDA C source *)
  art_size_bytes : int;  (** modelled binary size; cubins are heavier *)
  art_hash : string;  (** content hash, the JIT disk-cache key *)
  art_arch : string;  (** "sm_53" or "compute_53" *)
}

(** Compile a kernel file; when [trace] is given an ["nvcc_compile"]
    instant event records the emitted artifact. *)
val compile : ?trace:Perf.Trace.t -> mode:binary_mode -> name:string -> Ast.program -> artifact

type load_cost = { lc_ns : float; lc_jit_compiled : bool; lc_cache_hit : bool }

(** Cost of loading the artifact into a context: plain file load for
    cubins; for PTX either a JIT compilation (cache miss, dominant) or a
    disk-cache hit.  Updates [jit_cache].  When [inject] is given it is
    called with ["jit_cache"] on the hit path and ["jit_compile"] on the
    miss path (before the cache insert, so an injected JIT failure
    leaves no entry behind) and may raise to signal a fault. *)
val load_cost : ?inject:(string -> unit) -> jit_cache:(string, unit) Hashtbl.t -> artifact -> load_cost

(** Drop an artifact's (corrupt) JIT cache entry so the next load
    re-compiles.  When the caller's module table is supplied, the
    resident module built from the tainted entry (including its
    closure-compiled form) is evicted as well, forcing the next load to
    redo both the PTX JIT and the closure compile. *)
val invalidate :
  jit_cache:(string, unit) Hashtbl.t -> ?modules:(string, 'm) Hashtbl.t -> artifact -> unit
