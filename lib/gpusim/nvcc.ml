(* Emulation of the NVIDIA compilation tools that OMPi drives via
   scripts (paper §3.3): kernel files are "compiled" into either PTX
   (architecture-agnostic, finished by JIT at first launch, with a disk
   cache) or CUBIN (fully compiled, larger, loaded directly).

   The "binary" keeps the kernel AST as its payload — the simulator
   executes ASTs — plus the emitted CUDA C text, whose size drives the
   modelled compile/load costs. *)

open Minic

type binary_mode = Ptx | Cubin [@@deriving show { with_path = false }, eq]

type artifact = {
  art_name : string; (* kernel file name, e.g. "saxpy_device_kernel0" *)
  art_mode : binary_mode;
  art_program : Ast.program; (* the kernel file contents as an AST *)
  art_text : string; (* CUDA C source emitted for the kernel file *)
  art_size_bytes : int; (* modelled binary size *)
  art_hash : string; (* content hash, used by the JIT disk cache *)
  art_arch : string; (* "sm_53" for cubins, "compute_53" for ptx *)
}

(* Modelled size ratios: PTX is lighter than a fat cubin (paper §3.3:
   "tends to produce lighter kernel binaries"). *)
let compile ?(trace : Perf.Trace.t option) ~(mode : binary_mode) ~(name : string)
    (program : Ast.program) : artifact =
  let text = Pretty.program_to_string program in
  let src_len = String.length text in
  let size, arch =
    match mode with
    | Ptx -> (src_len * 2, "compute_53")
    | Cubin -> (src_len * 5 + 4096, "sm_53")
  in
  let a =
    {
      art_name = name;
      art_mode = mode;
      art_program = program;
      art_text = text;
      art_size_bytes = size;
      art_hash = Digest.to_hex (Digest.string text);
      art_arch = arch;
    }
  in
  (match trace with
  | Some tr ->
    Perf.Trace.instant tr ~cat:"compile" "nvcc_compile"
      ~args:
        [
          ("module", Perf.Trace.Str name);
          ("mode", Perf.Trace.Str (show_binary_mode mode));
          ("arch", Perf.Trace.Str arch);
          ("size_bytes", Perf.Trace.Int size);
        ]
  | None -> ());
  a

(* Load-time costs (charged to the simulated clock by the driver):
   - cubin: plain file load, proportional to size;
   - ptx, cache miss: JIT compilation (dominant, roughly linear in the
     source size) followed by linking with the device library;
   - ptx, cache hit: the CUDA disk cache returns the compiled module. *)
type load_cost = { lc_ns : float; lc_jit_compiled : bool; lc_cache_hit : bool }

let load_cost ?(inject : (string -> unit) option) ~(jit_cache : (string, unit) Hashtbl.t)
    (a : artifact) : load_cost =
  let inj site = match inject with Some f -> f site | None -> () in
  match a.art_mode with
  | Cubin ->
    { lc_ns = 150_000.0 +. (float_of_int a.art_size_bytes *. 2.0); lc_jit_compiled = false; lc_cache_hit = false }
  | Ptx ->
    if Hashtbl.mem jit_cache a.art_hash then begin
      (* a corrupt-cache fault means this hit returned garbage *)
      inj "jit_cache";
      { lc_ns = 400_000.0 +. (float_of_int a.art_size_bytes *. 2.0); lc_jit_compiled = false; lc_cache_hit = true }
    end
    else begin
      (* injection precedes the cache insert: a failed JIT leaves no
         cache entry behind, so the retry compiles again *)
      inj "jit_compile";
      Hashtbl.replace jit_cache a.art_hash ();
      (* JIT of a small kernel on the Nano's A57 takes tens of ms. *)
      {
        lc_ns = 30_000_000.0 +. (float_of_int a.art_size_bytes *. 2500.0);
        lc_jit_compiled = true;
        lc_cache_hit = false;
      }
    end

(* Drop a (corrupt) cache entry so the next load re-JITs.  A resident
   module built from the corrupt entry is just as tainted — and it
   carries the closure-compiled form of the kernels — so when the
   caller's module table is supplied, the module is evicted too and the
   next load redoes BOTH the PTX JIT and the closure compile. *)
let invalidate ~(jit_cache : (string, unit) Hashtbl.t) ?(modules : (string, 'm) Hashtbl.t option)
    (a : artifact) : unit =
  Hashtbl.remove jit_cache a.art_hash;
  match modules with Some m -> Hashtbl.remove m a.art_hash | None -> ()
