(* SIMT execution engine.

   Each GPU thread is a coroutine (OCaml effect handler fiber) running
   one mini-C interpreter instance over the kernel AST.  Blocks execute
   sequentially; threads within a block are interleaved cooperatively.
   Named barriers (PTX bar.sync) suspend threads until the expected
   number of participants arrive — the mechanism behind the paper's B1/B2
   master/worker protocol.  Divergence, locks and atomics are modelled at
   scheduling points (Yield) rather than in instruction lockstep; cost is
   reconstructed per warp from per-thread instruction counts. *)

open Machine
open Minic

exception Simt_error of string

let simt_error fmt = Format.kasprintf (fun s -> raise (Simt_error s)) fmt

type dim3 = { x : int; y : int; z : int } [@@deriving show { with_path = false }, eq]

let dim3 ?(y = 1) ?(z = 1) x = { x; y; z }

let dim3_total d = d.x * d.y * d.z

type _ Effect.t += Bar_sync : int * int -> unit Effect.t (* barrier id, expected arrivals *)
type _ Effect.t += Yield : unit Effect.t

let bar_sync id expected = Effect.perform (Bar_sync (id, expected))

let yield () = Effect.perform Yield

type barrier = {
  mutable arrived : int;
  mutable expected : int; (* -1 when idle *)
  mutable live_count : bool; (* __syncthreads semantics: all live threads *)
  mutable waiting : (unit -> unit) list;
}

type thread_state = {
  ts_lin : int; (* linear id within block *)
  ts_tid : dim3;
  ts_alloc_seq : (int, int ref) Hashtbl.t; (* per-allocation access counter *)
}

(* Master/worker region descriptor registered by the master thread
   (cudadev_register_parallel) and consumed by the workers. *)
type parallel_region = { pr_fn : string; pr_args : Value.t list; pr_nthreads : int }

type block_state = {
  bs_block_idx : dim3;
  bs_block_dim : dim3;
  bs_grid_dim : dim3;
  bs_block_lin : int;
  bs_shared : Mem.t;
  bs_shared_vars : (string, Addr.t) Hashtbl.t;
  bs_barriers : barrier array;
  bs_runq : (unit -> unit) Queue.t;
  mutable bs_live : int;
  (* device-runtime scratch *)
  mutable bs_region : parallel_region option;
  mutable bs_target_done : bool;
  bs_dyn_counters : (int, int ref) Hashtbl.t; (* dynamic/guided schedule state *)
  bs_dyn_drained : (int, int ref) Hashtbl.t; (* threads that saw a region run dry *)
  bs_section_counters : (int, int ref) Hashtbl.t;
  bs_ws_done : (int, int ref) Hashtbl.t; (* end-of-worksharing bookkeeping *)
  bs_shmem_stack : (Addr.t * Addr.t * int * int) Stack.t; (* shared addr, origin, size, mark *)
  bs_counters : Counters.t;
  bs_spec : Spec.t;
}

type kernel_source = {
  ks_structs : Cty.layout_env;
  ks_funcs : (string, Ast.fundef) Hashtbl.t;
  ks_globals : (string, Cty.t * Addr.t) Hashtbl.t; (* device globals, filled at module load *)
}

let kernel_source_of_program ?(alloc_global : (int -> Addr.t) option) (p : Ast.program) :
    kernel_source =
  let ks =
    { ks_structs = Cty.create_layout_env (); ks_funcs = Hashtbl.create 16; ks_globals = Hashtbl.create 8 }
  in
  (* structs first so that global variables of struct type can be sized *)
  List.iter
    (function
      | Ast.Gstruct (name, fields) -> ignore (Cty.define_struct ks.ks_structs name fields)
      | Ast.Gfun _ | Ast.Gvar _ | Ast.Gfundecl _ | Ast.Gpragma _ -> ())
    p;
  List.iter
    (function
      | Ast.Gfun f -> Hashtbl.replace ks.ks_funcs f.f_name f
      | Ast.Gvar (d, _) -> (
        match alloc_global with
        | Some alloc ->
          Hashtbl.replace ks.ks_globals d.Ast.d_name
            (d.Ast.d_ty, alloc (Cty.sizeof ks.ks_structs d.Ast.d_ty))
        | None -> ())
      | Ast.Gstruct _ | Ast.Gfundecl _ | Ast.Gpragma _ -> ())
    p;
  ks

(* The dim3 struct used for threadIdx/blockIdx/blockDim/gridDim. *)
let ensure_dim3 structs =
  if not (Cty.has_layout structs "dim3") then
    ignore (Cty.define_struct structs "dim3" [ ("x", Cty.Int); ("y", Cty.Int); ("z", Cty.Int) ])

type launch_config = {
  lc_grid : dim3;
  lc_block : dim3;
  lc_entry : string;
  lc_args : Value.t list;
  (* simulate only blocks whose linear id passes the filter; counters are
     scaled back up by the caller via [Counters.block_scale]. *)
  lc_block_filter : (int -> bool) option;
}

(* [dm_host] is the host memory image as seen from the device: present
   only when the driver has pinned (zero-copy) host ranges registered, so
   plain host addresses still fault with a helpful message. *)
type device_memories = { dm_global : Mem.t; dm_host : Mem.t option }

(* Write a dim3 value into thread-local memory and register it. *)
let bind_dim3 (ctx : Cinterp.Interp.t) name (d : dim3) =
  let addr = Cinterp.Interp.declare_var ctx name (Cty.Struct "dim3") in
  let store off v =
    Mem.store_scalar ctx.Cinterp.Interp.local ctx.Cinterp.Interp.structs (Addr.add addr off) Cty.Int
      (Value.of_int v)
  in
  store 0 d.x;
  store 4 d.y;
  store 8 d.z;
  Cinterp.Interp.register_global ctx name (Cty.Struct "dim3") addr

(* Execute one block to completion. *)
let run_block ~(spec : Spec.t) ~(mem : device_memories) ~(source : kernel_source)
    ~(compiled : Cinterp.Jit.compiled option) ~(counters : Counters.t)
    ~(install_builtins : Cinterp.Interp.t -> block_state -> thread_state -> unit)
    ~(local_pool : Mem.t array) ~(output : Buffer.t) ~(config : launch_config) ~(block_idx : dim3)
    ~(block_lin : int) : unit =
  let n_threads = dim3_total config.lc_block in
  let bs =
    {
      bs_block_idx = block_idx;
      bs_block_dim = config.lc_block;
      bs_grid_dim = config.lc_grid;
      bs_block_lin = block_lin;
      bs_shared = Mem.create ~initial:4096 ~limit:spec.Spec.shared_mem_per_block ~space:(Addr.Shared block_lin) "shared";
      bs_shared_vars = Hashtbl.create 8;
      bs_barriers =
        Array.init spec.Spec.max_named_barriers (fun _ ->
            { arrived = 0; expected = -1; live_count = false; waiting = [] });
      bs_runq = Queue.create ();
      bs_live = n_threads;
      bs_region = None;
      bs_target_done = false;
      bs_dyn_counters = Hashtbl.create 8;
      bs_dyn_drained = Hashtbl.create 8;
      bs_section_counters = Hashtbl.create 8;
      bs_ws_done = Hashtbl.create 8;
      bs_shmem_stack = Stack.create ();
      bs_counters = counters;
      bs_spec = spec;
    }
  in
  Counters.begin_block counters n_threads;
  let entry_fn =
    match Hashtbl.find_opt source.ks_funcs config.lc_entry with
    | Some f -> f
    | None -> simt_error "kernel entry '%s' not found in kernel source" config.lc_entry
  in
  let make_thread_body lin =
    let tid =
      {
        x = lin mod config.lc_block.x;
        y = lin / config.lc_block.x mod config.lc_block.y;
        z = lin / (config.lc_block.x * config.lc_block.y);
      }
    in
    let ts = { ts_lin = lin; ts_tid = tid; ts_alloc_seq = Hashtbl.create 4 } in
    let local = local_pool.(lin) in
    Mem.release local 16;
    let resolve = function
      | Addr.Global -> mem.dm_global
      | Addr.Shared b when b = block_lin -> bs.bs_shared
      | Addr.Shared b -> simt_error "access to shared memory of another block (%d)" b
      | Addr.Local i when i < Array.length local_pool -> local_pool.(i)
      | Addr.Local i -> simt_error "access to foreign local memory %d" i
      | Addr.Host -> (
        match mem.dm_host with
        | Some m -> m
        | None -> simt_error "device code accessed host memory (missing map clause?)")
      | Addr.Strings -> simt_error "unreachable: string arena is resolved inside the interpreter"
    in
    let shared_decl name ty =
      match Hashtbl.find_opt bs.bs_shared_vars name with
      | Some a -> a
      | None ->
        let a = Mem.push bs.bs_shared (Cty.sizeof source.ks_structs ty) in
        Hashtbl.replace bs.bs_shared_vars name a;
        a
    in
    let ctx =
      Cinterp.Interp.create ~structs:source.ks_structs ~funcs:source.ks_funcs ~resolve ~local
        ~shared_decl ~output ()
    in
    ctx.Cinterp.Interp.on_step <- (fun k -> Counters.on_step counters lin k);
    ctx.Cinterp.Interp.on_access <-
      (fun acc ->
        match acc.Cinterp.Interp.acc_addr.Addr.space with
        | Addr.Global -> Counters.on_global_access counters ~lin ~seq:ts.ts_alloc_seq acc
        | Addr.Shared _ -> counters.Counters.shared_accesses <- counters.Counters.shared_accesses + 1
        | Addr.Host -> (
          (* only pinned (zero-copy) ranges are reachable: dm_host is None
             otherwise and [resolve] has already faulted *)
          match Counters.find_pinned counters acc.Cinterp.Interp.acc_addr.Addr.off with
          | Some pin -> Counters.on_zerocopy_access counters ~pin acc
          | None ->
            simt_error "device code accessed unpinned host memory at %d (missing map clause?)"
              acc.Cinterp.Interp.acc_addr.Addr.off)
        | Addr.Local _ | Addr.Strings ->
          counters.Counters.local_accesses <- counters.Counters.local_accesses + 1);
    Cinterp.Interp.install_common_builtins ctx;
    Hashtbl.iter (fun name (ty, addr) -> Cinterp.Interp.register_global ctx name ty addr) source.ks_globals;
    (* base frame for the implicit thread context (threadIdx etc.) *)
    Cinterp.Interp.push_frame ctx;
    bind_dim3 ctx "threadIdx" tid;
    bind_dim3 ctx "blockIdx" block_idx;
    bind_dim3 ctx "blockDim" config.lc_block;
    bind_dim3 ctx "gridDim" config.lc_grid;
    install_builtins ctx bs ts;
    (* Route this thread's calls through the module's closure-compiled
       form (if any); builtins and the effects-based yield points are
       untouched, so scheduling semantics do not change. *)
    (match compiled with Some c -> Cinterp.Jit.attach c ctx | None -> ());
    fun () -> ignore (Cinterp.Interp.call_fundef ctx entry_fn config.lc_args)
  in
  (* Spawn all threads as fibers. *)
  let open Effect.Deep in
  (* A live-count barrier (__syncthreads) can become satisfied when a
     non-participating thread retires. *)
  let trip_barrier (b : barrier) =
    counters.Counters.barrier_warp_arrivals <-
      counters.Counters.barrier_warp_arrivals + (Spec.barrier_round spec b.expected / spec.Spec.warp_size);
    let ws = b.waiting in
    b.waiting <- [];
    b.arrived <- 0;
    b.expected <- -1;
    b.live_count <- false;
    List.iter (fun w -> Queue.add w bs.bs_runq) ws
  in
  let recheck_live_barriers () =
    Array.iter
      (fun b -> if b.live_count && b.waiting <> [] && b.arrived >= bs.bs_live then trip_barrier b)
      bs.bs_barriers
  in
  let spawn body =
    Queue.add
      (fun () ->
        match_with body ()
          {
            retc =
              (fun () ->
                bs.bs_live <- bs.bs_live - 1;
                recheck_live_barriers ());
            exnc = raise;
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Bar_sync (id, expected) ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      if id < 0 || id >= Array.length bs.bs_barriers then
                        simt_error "bar.sync id %d out of range" id;
                      let b = bs.bs_barriers.(id) in
                      (* expected <= 0 means "all currently live threads"
                         (__syncthreads semantics): refreshed on every
                         arrival and whenever a thread retires. *)
                      if expected <= 0 then begin
                        b.expected <- bs.bs_live;
                        b.live_count <- true
                      end
                      else if b.expected = -1 then b.expected <- expected
                      else if b.expected <> expected then
                        simt_error "barrier %d: mismatched participant counts (%d vs %d)" id
                          b.expected expected;
                      b.arrived <- b.arrived + 1;
                      if b.arrived >= b.expected then begin
                        b.waiting <- (fun () -> continue k ()) :: b.waiting;
                        trip_barrier b
                      end
                      else b.waiting <- (fun () -> continue k ()) :: b.waiting)
                | Yield ->
                  Some (fun (k : (a, _) continuation) -> Queue.add (fun () -> continue k ()) bs.bs_runq)
                | _ -> None);
          })
      bs.bs_runq
  in
  for lin = 0 to n_threads - 1 do
    spawn (make_thread_body lin)
  done;
  (* Scheduler loop. *)
  while not (Queue.is_empty bs.bs_runq) do
    let job = Queue.pop bs.bs_runq in
    job ()
  done;
  if bs.bs_live > 0 then begin
    let stuck =
      Array.to_list bs.bs_barriers
      |> List.mapi (fun i b -> (i, b))
      |> List.filter (fun (_, b) -> b.waiting <> [])
      |> List.map (fun (i, b) -> Printf.sprintf "barrier %d: %d/%d arrived" i b.arrived b.expected)
    in
    simt_error "deadlock in block (%d,%d,%d): %d threads never finished (%s)" block_idx.x
      block_idx.y block_idx.z bs.bs_live
      (if stuck = [] then "no barrier waiters; thread starved?" else String.concat "; " stuck)
  end;
  Counters.retire_block counters n_threads

(* Launch a kernel over the whole grid (subject to the block filter). *)
let launch ~(spec : Spec.t) ~(mem : device_memories) ~(source : kernel_source)
    ?(compiled : Cinterp.Jit.compiled option) ~(counters : Counters.t)
    ~(install_builtins : Cinterp.Interp.t -> block_state -> thread_state -> unit)
    ~(output : Buffer.t) (config : launch_config) : unit =
  ensure_dim3 source.ks_structs;
  let n_threads = dim3_total config.lc_block in
  if n_threads > spec.Spec.max_threads_per_block then
    simt_error "block of %d threads exceeds device limit %d" n_threads spec.Spec.max_threads_per_block;
  if n_threads = 0 then simt_error "empty thread block";
  let local_pool =
    Array.init n_threads (fun i -> Mem.create ~initial:8192 ~space:(Addr.Local i) "local")
  in
  let total_blocks = dim3_total config.lc_grid in
  counters.Counters.blocks_total <- counters.Counters.blocks_total + total_blocks;
  let sampled_blocks = ref 0 in
  for bz = 0 to config.lc_grid.z - 1 do
    for by = 0 to config.lc_grid.y - 1 do
      for bx = 0 to config.lc_grid.x - 1 do
        let block_lin = bx + (config.lc_grid.x * (by + (config.lc_grid.y * bz))) in
        let simulate =
          match config.lc_block_filter with None -> true | Some f -> f block_lin
        in
        if simulate then begin
          (* sample warp 0 of the first blocks that actually touch
             global memory (fully guarded-out warps teach us nothing) *)
          if !sampled_blocks < counters.Counters.max_sample_blocks then begin
            counters.Counters.sample_block_seq <- !sampled_blocks;
            counters.Counters.block_contributed <- false
          end
          else counters.Counters.sample_block_seq <- -1;
          run_block ~spec ~mem ~source ~compiled ~counters ~install_builtins ~local_pool ~output
            ~config ~block_idx:{ x = bx; y = by; z = bz } ~block_lin;
          if counters.Counters.sample_block_seq >= 0 && counters.Counters.block_contributed then
            incr sampled_blocks
        end
      done
    done
  done;
  counters.Counters.sample_block_seq <- -1
