(* Converts dynamic launch statistics into simulated kernel time.

   The model is a roofline over two components:
   - issue time: per-warp instructions (max over lanes, so divergence is
     charged) spread over the SM's warp schedulers, weighted by a
     per-class CPI mix;
   - memory time: estimated DRAM transactions at the device bandwidth.

   Absolute constants are calibrated against the magnitudes reported in
   the paper (Section 5); see EXPERIMENTS.md. *)

type breakdown = {
  bd_issue_cycles : float;
  bd_mem_cycles : float;
  bd_barrier_cycles : float;
  bd_total_cycles : float;
  bd_time_ns : float;
  bd_global_bytes : float;
  bd_zerocopy_bytes : float; (* uncached pinned-host traffic (zero-copy maps) *)
  bd_divergence : float; (* warp-max sum vs thread-average ratio, >= 1 *)
}

let cpi (spec : Spec.t) (c : Counters.class_counts) : float =
  let total = float_of_int (Counters.class_total c) in
  if total = 0.0 then 1.0
  else
    let f n w = float_of_int n *. w in
    (f c.arith 1.0 +. f c.mul 1.6 +. f c.div 5.0 +. f c.branch 1.4 +. f c.call 2.0 +. f c.special 7.0)
    /. total
    *. spec.Spec.cycles_per_interp_step

(* Resident parallelism: how many of the SM's warp slots are actually
   covered by this launch. *)
let issue_parallelism (spec : Spec.t) ~block_threads ~total_blocks =
  let warps_per_block = Spec.warps_per_block spec block_threads in
  let max_resident_threads = 2048 in
  let resident_blocks = max 1 (min total_blocks (max_resident_threads / max 1 block_threads)) in
  float_of_int (min spec.Spec.warp_schedulers (warps_per_block * resident_blocks))

let kernel_time (spec : Spec.t) (t : Counters.t) ~block_threads ~total_blocks
    ?(occupancy_penalty = 1.0) () : breakdown =
  let scale = Counters.block_scale t in
  let warp_insts = t.Counters.warp_inst_sum *. scale in
  let thread_insts = t.Counters.thread_inst_sum *. scale in
  let divergence = if thread_insts = 0.0 then 1.0 else warp_insts *. 32.0 /. thread_insts in
  (* memory instructions occupy the LSU pipeline for several cycles per
     warp; this is what makes load-heavy kernels insensitive to modest
     amounts of extra integer arithmetic *)
  let mem_insts =
    (float_of_int (Counters.global_accesses t) +. float_of_int t.Counters.shared_accesses
   +. float_of_int (Counters.zerocopy_accesses t))
    *. scale /. float_of_int spec.Spec.warp_size
  in
  let mix = cpi spec t.Counters.classes in
  let throughput_cycles =
    ((warp_insts *. mix) +. (mem_insts *. spec.Spec.mem_issue_cycles))
    /. issue_parallelism spec ~block_threads ~total_blocks
  in
  (* makespan floor: the heaviest single warp cannot be split across
     schedulers — this is what an imbalanced schedule or a serial master
     thread costs *)
  let makespan_cycles = t.Counters.warp_inst_max *. mix in
  let issue_cycles = Float.max throughput_cycles makespan_cycles in
  let transactions = Counters.global_transactions t *. scale in
  let global_bytes =
    transactions *. float_of_int spec.Spec.transaction_bytes *. (1.0 -. spec.Spec.l2_hit_fraction)
  in
  let bytes_per_cycle = spec.Spec.mem_bandwidth /. spec.Spec.gpu_clock_hz in
  let bandwidth_cycles = global_bytes /. bytes_per_cycle in
  (* At low occupancy there are not enough warps in flight to hide DRAM
     latency, so accesses serialise (the regime of gramschmidt's
     single-thread normalisation kernel). *)
  let warps_per_block = Spec.warps_per_block spec block_threads in
  let resident_blocks = max 1 (min total_blocks (2048 / max 1 block_threads)) in
  let resident_warps = warps_per_block * resident_blocks in
  let mem_latency_cycles = 400.0 in
  let latency_cycles =
    if resident_warps >= 8 then 0.0
    else transactions *. mem_latency_cycles /. (float_of_int resident_warps *. 4.0)
  in
  (* Zero-copy traffic bypasses L2 entirely and streams over the shared
     DRAM at the (lower) uncached pinned bandwidth.  There is no cache
     discount and no coalescing sample: one warp-wide transaction per
     warp memory instruction. *)
  let zc_transactions =
    float_of_int (Counters.zerocopy_accesses t) *. scale /. float_of_int spec.Spec.warp_size
  in
  let zc_bytes = zc_transactions *. float_of_int spec.Spec.transaction_bytes in
  let zc_cycles = zc_bytes /. (spec.Spec.zerocopy_bandwidth /. spec.Spec.gpu_clock_hz) in
  let mem_cycles = Float.max bandwidth_cycles latency_cycles +. zc_cycles in
  let barrier_cycles = float_of_int t.Counters.barrier_warp_arrivals *. scale *. 24.0 in
  let total = (Float.max issue_cycles mem_cycles +. barrier_cycles) *. occupancy_penalty in
  {
    bd_issue_cycles = issue_cycles;
    bd_mem_cycles = mem_cycles;
    bd_barrier_cycles = barrier_cycles;
    bd_total_cycles = total;
    bd_time_ns = total /. spec.Spec.gpu_clock_hz *. 1e9;
    bd_global_bytes = global_bytes;
    bd_zerocopy_bytes = zc_bytes;
    bd_divergence = divergence;
  }

let pp_breakdown fmt b =
  Format.fprintf fmt
    "issue=%.0f cyc, mem=%.0f cyc (%.1f MB), barriers=%.0f cyc, total=%.0f cyc (%.3f ms), divergence=%.2f"
    b.bd_issue_cycles b.bd_mem_cycles
    (b.bd_global_bytes /. 1e6)
    b.bd_barrier_cycles b.bd_total_cycles (b.bd_time_ns /. 1e6) b.bd_divergence
