(** Converts dynamic launch statistics into simulated kernel time.

    Roofline over two components:
    - issue time: per-warp instruction counts (max over lanes, so
      divergence is charged) weighted by a CPI mix and spread over the
      SM's warp schedulers, floored by the heaviest single warp
      (makespan — what an imbalanced schedule or a serial master costs);
    - memory time: estimated DRAM transactions at device bandwidth,
      floored by a latency term when too few warps are resident to hide
      it.

    Calibration constants live in {!Spec.t}; the anchoring against the
    paper's magnitudes is described in EXPERIMENTS.md. *)

type breakdown = {
  bd_issue_cycles : float;
  bd_mem_cycles : float;
  bd_barrier_cycles : float;
  bd_total_cycles : float;
  bd_time_ns : float;
  bd_global_bytes : float;
  bd_zerocopy_bytes : float;  (** uncached pinned-host traffic (zero-copy maps) *)
  bd_divergence : float;  (** warp-max sum vs thread-average ratio, >= 1 *)
}

(** Mean cycles-per-instruction of the launch's instruction mix. *)
val cpi : Spec.t -> Counters.class_counts -> float

val issue_parallelism : Spec.t -> block_threads:int -> total_blocks:int -> float

val kernel_time :
  Spec.t -> Counters.t -> block_threads:int -> total_blocks:int -> ?occupancy_penalty:float ->
  unit -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit
